package device

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PerfMonitor is a perf(1)-style accumulator of named cycle counters. The
// overhead experiment records baseline training cycles and the extra
// cycles attributable to each AdaFL component, then reports relative
// expansion exactly as the paper does.
type PerfMonitor struct {
	mu       sync.Mutex
	counters map[string]float64
}

// NewPerfMonitor returns an empty monitor.
func NewPerfMonitor() *PerfMonitor {
	return &PerfMonitor{counters: make(map[string]float64)}
}

// Record adds cycles to the named counter.
func (m *PerfMonitor) Record(name string, cycles float64) {
	if cycles < 0 {
		panic("device: negative cycle count")
	}
	m.mu.Lock()
	m.counters[name] += cycles
	m.mu.Unlock()
}

// Get returns the named counter's value (0 if absent).
func (m *PerfMonitor) Get(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Total returns the sum of all counters.
func (m *PerfMonitor) Total() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := 0.0
	for _, v := range m.counters {
		t += v
	}
	return t
}

// Expansion returns the relative cycle expansion of counter name over
// counter base: counters[name] / counters[base]. It returns 0 when the
// base counter is empty.
func (m *PerfMonitor) Expansion(name, base string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.counters[base]
	if b == 0 {
		return 0
	}
	return m.counters[name] / b
}

// Report renders the counters sorted by descending cycles.
func (m *PerfMonitor) Report() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	type kv struct {
		name   string
		cycles float64
	}
	rows := make([]kv, 0, len(m.counters))
	for k, v := range m.counters {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles > rows[j].cycles })
	var b strings.Builder
	b.WriteString("perf cycle counters:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %18.0f\n", r.name, r.cycles)
	}
	return b.String()
}
