// Package device models embedded compute hardware: per-device cycle/FLOP
// throughput profiles (standing in for the paper's Raspberry Pi cluster)
// and perf-style cycle counters used by the overhead experiment (§V Q3).
package device

import "fmt"

// Profile characterises one device class's arithmetic throughput.
type Profile struct {
	Name string
	// ClockHz is the CPU clock frequency.
	ClockHz float64
	// FLOPsPerCycle is the sustained multiply-accumulate throughput per
	// cycle for the dense kernels the nn package runs (well below peak —
	// these are cache-unfriendly scalar loops on small cores).
	FLOPsPerCycle float64
	// BackwardFactor scales forward cost to estimate the backward pass
	// (weight + input gradients roughly double the forward work).
	BackwardFactor float64
}

// Validate reports whether the profile is physically meaningful.
func (p Profile) Validate() error {
	if p.ClockHz <= 0 || p.FLOPsPerCycle <= 0 || p.BackwardFactor <= 0 {
		return fmt.Errorf("device: invalid profile %+v", p)
	}
	return nil
}

// CyclesForFLOPs converts an arithmetic cost to CPU cycles.
func (p Profile) CyclesForFLOPs(flops float64) float64 {
	return flops / p.FLOPsPerCycle
}

// SecondsForCycles converts cycles to wall-clock seconds on this device.
func (p Profile) SecondsForCycles(cycles float64) float64 {
	return cycles / p.ClockHz
}

// SecondsForFLOPs converts an arithmetic cost directly to seconds.
func (p Profile) SecondsForFLOPs(flops float64) float64 {
	return p.SecondsForCycles(p.CyclesForFLOPs(flops))
}

// TrainSeconds estimates the wall time of training over the given number
// of samples for a model of the given forward cost per sample (forward +
// backward).
func (p Profile) TrainSeconds(flopsPerSample float64, samples int) float64 {
	return p.SecondsForFLOPs(flopsPerSample * (1 + p.BackwardFactor) * float64(samples))
}

// TrainCycles is TrainSeconds in cycle units, for perf-style accounting.
func (p Profile) TrainCycles(flopsPerSample float64, samples int) float64 {
	return p.CyclesForFLOPs(flopsPerSample * (1 + p.BackwardFactor) * float64(samples))
}

// Device profiles. The Raspberry Pi numbers are calibrated to the class of
// hardware in the paper's ablation cluster; Workstation approximates the
// paper's i9 server.
var (
	RaspberryPi3 = Profile{Name: "rpi3", ClockHz: 1.2e9, FLOPsPerCycle: 0.25, BackwardFactor: 2}
	RaspberryPi4 = Profile{Name: "rpi4", ClockHz: 1.5e9, FLOPsPerCycle: 0.5, BackwardFactor: 2}
	Workstation  = Profile{Name: "workstation", ClockHz: 3.0e9, FLOPsPerCycle: 4, BackwardFactor: 2}
)

// Scaled returns a copy of the profile with throughput multiplied by
// factor, modelling heterogeneous or throttled devices (e.g. the paper's
// 3× slower stragglers use factor 1/3).
func (p Profile) Scaled(factor float64) Profile {
	if factor <= 0 {
		panic("device: non-positive scale factor")
	}
	q := p
	q.Name = fmt.Sprintf("%s(x%.2f)", p.Name, factor)
	q.FLOPsPerCycle *= factor
	return q
}

// Arithmetic cost models for the AdaFL components, in FLOPs over a
// dim-dimensional gradient. They are used both by the cycle-count overhead
// experiment and by the simulated per-round compute times.

// UtilityScoreFLOPs is the cost of one cosine-similarity utility score:
// a dot product plus two norms (3 multiply-adds per coordinate) plus the
// negligible bandwidth term.
func UtilityScoreFLOPs(dim int) float64 { return 3 * float64(dim) }

// DGCEncodeFLOPs is the cost of one DGC encode: clipping (2/coord),
// momentum + accumulation updates (2/coord), and quickselect-based top-k
// (≈2 comparisons/coord amortised).
func DGCEncodeFLOPs(dim int) float64 { return 6 * float64(dim) }
