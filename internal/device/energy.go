package device

import (
	"fmt"
	"math"
)

// Battery models a client device's energy store for the scenario engine.
// All quantities are joules and watts. A zero CapacityJ means the device
// is mains-powered: it never drains and never depletes.
//
// Drains are additive and clamp at zero; Depleted reports LevelJ == 0 so
// a drain that lands exactly on the remaining charge (depletion exactly
// at a round boundary) counts as depleted.
type Battery struct {
	// CapacityJ is the full charge in joules (0 = mains powered).
	CapacityJ float64
	// LevelJ is the current charge, in [0, CapacityJ].
	LevelJ float64
	// TrainW is the power draw during local training.
	TrainW float64
	// IdleW is the baseline draw while powered on but not training.
	IdleW float64
	// TxJPerByte is the transmit energy per uplink byte.
	TxJPerByte float64
}

// Validate reports whether the battery parameters are physically
// meaningful. Mains batteries (CapacityJ 0) are valid as long as no other
// field is negative or non-finite.
func (b Battery) Validate() error {
	for _, v := range []float64{b.CapacityJ, b.LevelJ, b.TrainW, b.IdleW, b.TxJPerByte} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("device: invalid battery %+v", b)
		}
	}
	if b.LevelJ > b.CapacityJ {
		return fmt.Errorf("device: battery level %v exceeds capacity %v", b.LevelJ, b.CapacityJ)
	}
	return nil
}

// Mains reports whether the device is mains-powered (never depletes).
func (b Battery) Mains() bool { return b.CapacityJ == 0 }

// Level returns the state of charge as a fraction in [0, 1]; mains
// devices report 1.
func (b Battery) Level() float64 {
	if b.Mains() {
		return 1
	}
	return b.LevelJ / b.CapacityJ
}

// Depleted reports whether the battery has fully drained. Mains devices
// never deplete.
func (b Battery) Depleted() bool { return !b.Mains() && b.LevelJ <= 0 }

// drain removes joules from the battery, clamping at zero. Mains devices
// ignore drains.
func (b *Battery) drain(joules float64) {
	if b.Mains() || joules <= 0 {
		return
	}
	b.LevelJ -= joules
	if b.LevelJ < 0 {
		b.LevelJ = 0
	}
}

// DrainTrain accounts the given seconds of local training.
func (b *Battery) DrainTrain(seconds float64) { b.drain(b.TrainW * seconds) }

// DrainIdle accounts the given seconds of baseline draw.
func (b *Battery) DrainIdle(seconds float64) { b.drain(b.IdleW * seconds) }

// DrainTx accounts the transmission of the given number of uplink bytes.
func (b *Battery) DrainTx(bytes int64) { b.drain(b.TxJPerByte * float64(bytes)) }

// Charge adds joules to the battery, clamping at capacity. Mains devices
// ignore charges.
func (b *Battery) Charge(joules float64) {
	if b.Mains() || joules <= 0 {
		return
	}
	b.LevelJ += joules
	if b.LevelJ > b.CapacityJ {
		b.LevelJ = b.CapacityJ
	}
}

// RechargeWindow is a recurring plug-in interval: the device charges at
// Watts during [StartS, EndS) of every PeriodS-second cycle (the diurnal
// overnight-charging wave). PeriodS 0 means a one-shot window.
type RechargeWindow struct {
	StartS, EndS float64
	PeriodS      float64
	Watts        float64
}

// Validate reports whether the window is well-formed.
func (w RechargeWindow) Validate() error {
	for _, v := range []float64{w.StartS, w.EndS, w.PeriodS, w.Watts} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("device: invalid recharge window %+v", w)
		}
	}
	if w.EndS <= w.StartS {
		return fmt.Errorf("device: recharge window end %v not after start %v", w.EndS, w.StartS)
	}
	if w.PeriodS > 0 && w.EndS-w.StartS > w.PeriodS {
		return fmt.Errorf("device: recharge window longer than its period %+v", w)
	}
	return nil
}

// EnergyOver returns the joules delivered over simulated time [t0, t1),
// in closed form (no per-second stepping), so scenario resume can
// integrate arbitrary gaps exactly.
func (w RechargeWindow) EnergyOver(t0, t1 float64) float64 {
	if t1 <= t0 || w.Watts <= 0 {
		return 0
	}
	overlap := func(a0, a1 float64) float64 {
		lo := math.Max(a0, t0)
		hi := math.Min(a1, t1)
		if hi > lo {
			return hi - lo
		}
		return 0
	}
	if w.PeriodS <= 0 {
		return w.Watts * overlap(w.StartS, w.EndS)
	}
	// Sum the overlap of every periodic occurrence intersecting [t0, t1).
	k0 := math.Floor((t0 - w.EndS) / w.PeriodS)
	k1 := math.Ceil((t1 - w.StartS) / w.PeriodS)
	var secs float64
	for k := k0; k <= k1; k++ {
		secs += overlap(w.StartS+k*w.PeriodS, w.EndS+k*w.PeriodS)
	}
	return w.Watts * secs
}
