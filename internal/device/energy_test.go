package device

import (
	"math"
	"testing"
)

func TestBatteryValidate(t *testing.T) {
	cases := []struct {
		name string
		b    Battery
		ok   bool
	}{
		{"mains", Battery{}, true},
		{"full", Battery{CapacityJ: 100, LevelJ: 100, TrainW: 2, IdleW: 0.1, TxJPerByte: 1e-6}, true},
		{"zero capacity nonzero level", Battery{CapacityJ: 0, LevelJ: 1}, false},
		{"level over capacity", Battery{CapacityJ: 10, LevelJ: 11}, false},
		{"negative train", Battery{CapacityJ: 10, LevelJ: 5, TrainW: -1}, false},
		{"nan capacity", Battery{CapacityJ: math.NaN()}, false},
		{"inf idle", Battery{CapacityJ: 10, LevelJ: 5, IdleW: math.Inf(1)}, false},
	}
	for _, c := range cases {
		if err := c.b.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBatteryDepletionExactlyAtRoundBoundary(t *testing.T) {
	// A round's train drain that lands exactly on the remaining charge
	// must count as depleted, not hover at an epsilon above zero.
	b := Battery{CapacityJ: 100, LevelJ: 20, TrainW: 4}
	b.DrainTrain(5) // 4 W × 5 s = 20 J, exactly the remaining level
	if b.LevelJ != 0 {
		t.Fatalf("level after exact drain = %v, want 0", b.LevelJ)
	}
	if !b.Depleted() {
		t.Fatal("exact-boundary drain not reported as depleted")
	}
	// Over-drain clamps at zero rather than going negative.
	b.DrainTrain(100)
	if b.LevelJ != 0 {
		t.Fatalf("level after over-drain = %v", b.LevelJ)
	}
}

func TestBatteryMainsNeverDepletes(t *testing.T) {
	b := Battery{} // zero capacity = mains
	b.DrainTrain(1e9)
	b.DrainTx(1 << 40)
	b.DrainIdle(1e9)
	if b.Depleted() {
		t.Fatal("mains device depleted")
	}
	if b.Level() != 1 {
		t.Fatalf("mains level = %v, want 1", b.Level())
	}
	b.Charge(1e9)
	if b.LevelJ != 0 {
		t.Fatal("mains charge changed level")
	}
}

func TestBatteryTxDrain(t *testing.T) {
	b := Battery{CapacityJ: 10, LevelJ: 10, TxJPerByte: 1e-3}
	b.DrainTx(5000) // 5 J
	if math.Abs(b.LevelJ-5) > 1e-12 {
		t.Fatalf("level after tx = %v, want 5", b.LevelJ)
	}
}

func TestBatteryChargeClampsAtCapacity(t *testing.T) {
	b := Battery{CapacityJ: 50, LevelJ: 40}
	b.Charge(100)
	if b.LevelJ != 50 {
		t.Fatalf("level after over-charge = %v, want 50", b.LevelJ)
	}
}

func TestRechargeWindowValidate(t *testing.T) {
	cases := []struct {
		name string
		w    RechargeWindow
		ok   bool
	}{
		{"one shot", RechargeWindow{StartS: 0, EndS: 10, Watts: 5}, true},
		{"periodic", RechargeWindow{StartS: 10, EndS: 20, PeriodS: 60, Watts: 5}, true},
		{"end before start", RechargeWindow{StartS: 10, EndS: 5, Watts: 5}, false},
		{"window longer than period", RechargeWindow{StartS: 0, EndS: 30, PeriodS: 20, Watts: 5}, false},
		{"negative watts", RechargeWindow{StartS: 0, EndS: 10, Watts: -1}, false},
		{"nan start", RechargeWindow{StartS: math.NaN(), EndS: 10, Watts: 1}, false},
	}
	for _, c := range cases {
		if err := c.w.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRechargeWindowEnergyOneShot(t *testing.T) {
	w := RechargeWindow{StartS: 10, EndS: 20, Watts: 2}
	cases := []struct {
		t0, t1, want float64
	}{
		{0, 5, 0},    // entirely before
		{0, 15, 10},  // crosses the start boundary: 5 s inside
		{12, 18, 12}, // entirely inside
		{15, 30, 10}, // crosses the end boundary: 5 s inside
		{25, 40, 0},  // entirely after
		{0, 40, 20},  // covers the whole window
	}
	for _, c := range cases {
		if got := w.EnergyOver(c.t0, c.t1); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("EnergyOver(%v, %v) = %v, want %v", c.t0, c.t1, got, c.want)
		}
	}
}

func TestRechargeWindowEnergyPeriodicCrossing(t *testing.T) {
	// Charge during [0, 10) of every 100 s cycle at 3 W.
	w := RechargeWindow{StartS: 0, EndS: 10, PeriodS: 100, Watts: 3}
	// An interval crossing two cycles: [95, 205) sees the full [100, 110)
	// window and half of [200, 210).
	if got, want := w.EnergyOver(95, 205), 3*15.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("crossing interval energy = %v, want %v", got, want)
	}
	// A split integration must equal the whole (scenario resume gap).
	whole := w.EnergyOver(0, 1000)
	split := w.EnergyOver(0, 333) + w.EnergyOver(333, 1000)
	if math.Abs(whole-split) > 1e-9 {
		t.Fatalf("split integration %v != whole %v", split, whole)
	}
	if math.Abs(whole-3*10*10) > 1e-9 {
		t.Fatalf("10 cycles energy = %v, want %v", whole, 300.0)
	}
}

func TestRechargeWindowEmptyAndReversedIntervals(t *testing.T) {
	w := RechargeWindow{StartS: 0, EndS: 10, PeriodS: 100, Watts: 3}
	if w.EnergyOver(5, 5) != 0 {
		t.Fatal("empty interval delivered energy")
	}
	if w.EnergyOver(10, 5) != 0 {
		t.Fatal("reversed interval delivered energy")
	}
}

func TestBatteryRechargeCrossingRestoresAvailability(t *testing.T) {
	// End-to-end battery cycle: drain to depletion, then a recharge
	// window crossing brings the level back above zero.
	b := Battery{CapacityJ: 100, LevelJ: 10, TrainW: 5}
	b.DrainTrain(2) // exactly depleted
	if !b.Depleted() {
		t.Fatal("not depleted")
	}
	w := RechargeWindow{StartS: 100, EndS: 200, Watts: 0.5}
	b.Charge(w.EnergyOver(90, 150)) // 50 s inside the window = 25 J
	if b.Depleted() {
		t.Fatal("still depleted after recharge crossing")
	}
	if math.Abs(b.LevelJ-25) > 1e-9 {
		t.Fatalf("level after recharge = %v, want 25", b.LevelJ)
	}
}
