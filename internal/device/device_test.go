package device

import (
	"math"
	"strings"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range []Profile{RaspberryPi3, RaspberryPi4, Workstation} {
		if err := p.Validate(); err != nil {
			t.Errorf("builtin profile invalid: %v", err)
		}
	}
	bad := Profile{Name: "x", ClockHz: 0, FLOPsPerCycle: 1, BackwardFactor: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestCycleAndTimeConversions(t *testing.T) {
	p := Profile{Name: "t", ClockHz: 1e9, FLOPsPerCycle: 2, BackwardFactor: 2}
	if c := p.CyclesForFLOPs(4e9); c != 2e9 {
		t.Fatalf("cycles = %v", c)
	}
	if s := p.SecondsForCycles(2e9); s != 2 {
		t.Fatalf("seconds = %v", s)
	}
	if s := p.SecondsForFLOPs(4e9); s != 2 {
		t.Fatalf("direct seconds = %v", s)
	}
}

func TestTrainSecondsIncludesBackward(t *testing.T) {
	p := Profile{Name: "t", ClockHz: 1e9, FLOPsPerCycle: 1, BackwardFactor: 2}
	// 100 flops/sample forward, 10 samples, 3x total = 3000 flops = 3e-6 s.
	if s := p.TrainSeconds(100, 10); math.Abs(s-3e-6) > 1e-18 {
		t.Fatalf("train seconds = %v", s)
	}
	if c := p.TrainCycles(100, 10); c != 3000 {
		t.Fatalf("train cycles = %v", c)
	}
}

func TestDeviceOrdering(t *testing.T) {
	// Same workload must take longer on a Pi 3 than on the workstation.
	flops := 1e9
	if RaspberryPi3.SecondsForFLOPs(flops) <= Workstation.SecondsForFLOPs(flops) {
		t.Fatal("Pi not slower than workstation")
	}
}

func TestScaled(t *testing.T) {
	slow := RaspberryPi4.Scaled(1.0 / 3)
	base := RaspberryPi4.SecondsForFLOPs(1e9)
	if s := slow.SecondsForFLOPs(1e9); math.Abs(s-3*base) > 1e-9 {
		t.Fatalf("scaled time %v, want %v", s, 3*base)
	}
}

func TestScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) did not panic")
		}
	}()
	RaspberryPi4.Scaled(0)
}

func TestCostModelsScaleLinearly(t *testing.T) {
	if UtilityScoreFLOPs(2000) != 2*UtilityScoreFLOPs(1000) {
		t.Error("utility cost not linear")
	}
	if DGCEncodeFLOPs(2000) != 2*DGCEncodeFLOPs(1000) {
		t.Error("DGC cost not linear")
	}
	// DGC encode is more expensive than a utility score, as the paper
	// observes ("overhead added for gradient compression is larger").
	if DGCEncodeFLOPs(1000) <= UtilityScoreFLOPs(1000) {
		t.Error("DGC should cost more than utility score")
	}
}

func TestUtilityOverheadIsSmallFractionOfTraining(t *testing.T) {
	// The paper's headline: utility scoring adds ~0.05% cycles relative to
	// training. With the paper CNN (~2.3 MFLOP/sample forward) and a
	// realistic local workload, our model must land well under 1%.
	const cnnFLOPs = 2.3e6
	p := RaspberryPi4
	trainingCycles := p.TrainCycles(cnnFLOPs, 500)
	utilityCycles := p.CyclesForFLOPs(UtilityScoreFLOPs(431080))
	frac := utilityCycles / trainingCycles
	if frac > 0.01 {
		t.Fatalf("utility overhead fraction %v too large", frac)
	}
}

func TestPerfMonitorBasics(t *testing.T) {
	m := NewPerfMonitor()
	m.Record("train", 1000)
	m.Record("train", 500)
	m.Record("utility", 3)
	if m.Get("train") != 1500 {
		t.Fatalf("train counter %v", m.Get("train"))
	}
	if m.Total() != 1503 {
		t.Fatalf("total %v", m.Total())
	}
	if e := m.Expansion("utility", "train"); math.Abs(e-0.002) > 1e-12 {
		t.Fatalf("expansion %v", e)
	}
	if m.Expansion("utility", "missing") != 0 {
		t.Fatal("missing base should yield 0")
	}
}

func TestPerfMonitorReportSorted(t *testing.T) {
	m := NewPerfMonitor()
	m.Record("small", 1)
	m.Record("big", 100)
	rep := m.Report()
	if !strings.Contains(rep, "big") || !strings.Contains(rep, "small") {
		t.Fatalf("report missing counters: %s", rep)
	}
	if strings.Index(rep, "big") > strings.Index(rep, "small") {
		t.Fatal("report not sorted by cycles")
	}
}

func TestPerfMonitorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative record did not panic")
		}
	}()
	NewPerfMonitor().Record("x", -1)
}

func TestPerfMonitorConcurrentRecord(t *testing.T) {
	m := NewPerfMonitor()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				m.Record("c", 1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if m.Get("c") != 8000 {
		t.Fatalf("concurrent count %v, want 8000", m.Get("c"))
	}
}
