// Package trace renders experiment results: aligned text tables matching
// the paper's Table I/II layout, CSV series for the figures, and learning
// curves. Everything writes to an io.Writer so the bench harness can tee
// results to stdout and files.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named sequence of (x, y) points, one line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Figure is a set of series sharing axes — one paper subplot.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a new named series and returns it.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// WriteCSV emits the figure as CSV: header "x,<series...>", one row per
// x-position (series are aligned by index; shorter series leave blanks).
func (f *Figure) WriteCSV(w io.Writer) error {
	names := make([]string, 0, len(f.Series)+1)
	names = append(names, f.XLabel)
	maxLen := 0
	for _, s := range f.Series {
		names = append(names, s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if _, err := fmt.Fprintf(w, "# %s\n%s\n", f.Title, strings.Join(names, ",")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		cells := make([]string, 0, len(f.Series)+1)
		x := ""
		for _, s := range f.Series {
			if i < s.Len() {
				x = fmt.Sprintf("%g", s.X[i])
				break
			}
		}
		cells = append(cells, x)
		for _, s := range f.Series {
			if i < s.Len() {
				cells = append(cells, fmt.Sprintf("%g", s.Y[i]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws a crude terminal plot of the figure (y range
// auto-scaled, one glyph per series), good enough to eyeball curve shapes
// in bench output.
func (f *Figure) RenderASCII(w io.Writer, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX, minY, maxY := f.bounds()
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := "*+xo#@%&"
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := 0; i < s.Len(); i++ {
			px := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			py := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
			grid[height-1-py][px] = g
		}
	}
	fmt.Fprintf(w, "%s  (y: %.3g..%.3g, x: %.3g..%.3g)\n", f.Title, minY, maxY, minX, maxX)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s|\n", string(row))
	}
	legend := make([]string, 0, len(f.Series))
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(legend, "  "))
}

func (f *Figure) bounds() (minX, maxX, minY, maxY float64) {
	first := true
	for _, s := range f.Series {
		for i := 0; i < s.Len(); i++ {
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	return
}
