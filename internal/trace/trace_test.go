package trace

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Results", "Method", "Acc")
	tb.AddRow("fedavg", 0.936)
	tb.AddRow("adafl", 0.9343)
	out := tb.String()
	for _, want := range []string{"Results", "Method", "fedavg", "0.936", "adafl"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "A", "LongHeader")
	tb.AddRow("xxxxxxxxxx", "y")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	if len(lines[0]) != len(lines[2]) {
		t.Fatalf("misaligned rows:\n%s", tb.String())
	}
}

func TestSeriesAndFigureCSV(t *testing.T) {
	f := NewFigure("fig", "round", "acc")
	a := f.AddSeries("fedavg")
	a.Add(1, 0.5)
	a.Add(2, 0.6)
	b := f.AddSeries("adafl")
	b.Add(1, 0.55)
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "round,fedavg,adafl") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, "1,0.5,0.55") {
		t.Fatalf("missing row: %s", out)
	}
	// Shorter series leaves a blank cell.
	if !strings.Contains(out, "2,0.6,") {
		t.Fatalf("missing ragged row: %s", out)
	}
}

func TestFigureASCIIRender(t *testing.T) {
	f := NewFigure("curve", "x", "y")
	s := f.AddSeries("s")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	var sb strings.Builder
	f.RenderASCII(&sb, 40, 10)
	out := sb.String()
	if !strings.Contains(out, "curve") || !strings.Contains(out, "*") {
		t.Fatalf("ASCII render broken:\n%s", out)
	}
	if !strings.Contains(out, "*=s") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestFigureASCIIDegenerate(t *testing.T) {
	f := NewFigure("flat", "x", "y")
	s := f.AddSeries("s")
	s.Add(1, 5)
	var sb strings.Builder
	f.RenderASCII(&sb, 20, 5) // must not divide by zero
	if !strings.Contains(sb.String(), "flat") {
		t.Fatal("degenerate figure did not render")
	}
}

func TestWriteSVGStructure(t *testing.T) {
	f := NewFigure("Accuracy & cost", "round", "acc")
	a := f.AddSeries("fedavg <1>")
	a.Add(0, 0.1)
	a.Add(10, 0.8)
	b := f.AddSeries("adafl")
	b.Add(0, 0.1)
	b.Add(10, 0.85)
	var sb strings.Builder
	if err := f.WriteSVG(&sb, 480, 300); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Accuracy &amp; cost",
		"fedavg &lt;1&gt;", "adafl", "round",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("expected 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
}

func TestWriteSVGDegenerate(t *testing.T) {
	f := NewFigure("flat", "x", "y")
	s := f.AddSeries("s")
	s.Add(1, 5) // single point, zero ranges
	var sb strings.Builder
	if err := f.WriteSVG(&sb, 10, 10); err != nil { // forces min dimensions
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Fatal("degenerate SVG not rendered")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		50000:   "50k",
		42:      "42",
		0.125:   "0.12",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
