package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// svgPalette holds the line colours used for successive series.
var svgPalette = []string{
	"#4363d8", "#e6194b", "#3cb44b", "#f58231",
	"#911eb4", "#46f0f0", "#808000", "#000075",
}

// WriteSVG renders the figure as a standalone SVG document: axes with
// tick labels, one polyline per series, and a legend. Dimensions are the
// outer pixel size.
func (f *Figure) WriteSVG(w io.Writer, width, height int) error {
	if width < 160 {
		width = 160
	}
	if height < 120 {
		height = 120
	}
	const (
		marginL = 56
		marginR = 16
		marginT = 28
		marginB = 40
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	minX, maxX, minY, maxY := f.bounds()
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return float64(marginL) + plotW*(x-minX)/(maxX-minX) }
	py := func(y float64) float64 { return float64(marginT) + plotH*(1-(y-minY)/(maxY-minY)) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(f.Title))
	fmt.Fprintf(&b, `<text x="%g" y="%d" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, height-8, xmlEscape(f.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, xmlEscape(f.YLabel))
	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%g" height="%g" fill="none" stroke="#999"/>`+"\n",
		marginL, marginT, plotW, plotH)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		xv := minX + frac*(maxX-minX)
		yv := minY + frac*(maxY-minY)
		fmt.Fprintf(&b, `<text x="%g" y="%d" text-anchor="middle" fill="#555">%s</text>`+"\n",
			px(xv), height-marginB+14, fmtTick(xv))
		fmt.Fprintf(&b, `<text x="%d" y="%g" text-anchor="end" fill="#555">%s</text>`+"\n",
			marginL-4, py(yv)+4, fmtTick(yv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%g" y2="%g" stroke="#eee"/>`+"\n",
			marginL, py(yv), float64(marginL)+plotW, py(yv))
	}
	// Series.
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := 0; i < s.Len(); i++ {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// Legend entry.
		ly := marginT + 6 + si*14
		fmt.Fprintf(&b, `<line x1="%g" y1="%d" x2="%g" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			float64(marginL)+plotW-78, ly, float64(marginL)+plotW-62, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%d" fill="#333">%s</text>`+"\n",
			float64(marginL)+plotW-58, ly+4, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtTick formats an axis tick compactly.
func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case a >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
