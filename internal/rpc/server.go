package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"adafl/internal/checkpoint"
	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/scenario"
	"adafl/internal/shard"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// DefaultStragglerTimeout bounds each collect phase when the caller does
// not configure one.
const DefaultStragglerTimeout = 30 * time.Second

// helloTimeout bounds the registration handshake on a freshly accepted
// connection so a dialer that never speaks cannot pin a server goroutine.
const helloTimeout = 5 * time.Second

// ServerConfig configures a federation server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":7070". Ignored by
	// NewManagedServer, which receives connections from a session.Manager
	// instead of its own listener.
	Addr string
	// Session names this session in a multi-session control plane. When
	// non-empty it is merged into every metric series as a
	// session="..." label; "" keeps the historical unlabeled names.
	Session string
	// MaxClients is the admission cap: a registration arriving while
	// roster+pending is at the cap is turned away with a shutdown notice
	// instead of queued. 0 disables the cap (NumClients stays the quorum,
	// not a ceiling, so evicted clients can always re-join).
	MaxClients int
	// NumClients is how many registrations to wait for before round 1.
	NumClients int
	// Rounds is the training budget.
	Rounds int
	// Cfg is the AdaFL configuration (selection + compression).
	Cfg core.Config
	// NewModel builds the shared architecture.
	NewModel func() *nn.Model
	// Test, when non-nil, is evaluated after every EvalEvery rounds.
	Test      *dataset.Dataset
	EvalEvery int
	// Logf receives progress lines (log.Printf if nil).
	Logf func(format string, args ...interface{})

	// StragglerTimeout bounds each per-client collect (score and update).
	// A client that has not answered within it is evicted and the round
	// proceeds with the partial set. 0 means DefaultStragglerTimeout.
	StragglerTimeout time.Duration
	// WriteTimeout bounds each per-client send. 0 means StragglerTimeout.
	WriteTimeout time.Duration
	// MinClients is the roster floor: when evictions leave fewer live
	// clients, the session ends cleanly with the rounds completed so far
	// instead of erroring. 0 means 1.
	MinClients int
	// Fault, when non-nil, wraps every accepted connection with injected
	// link faults (chaos testing and demos).
	Fault *FaultConfig
	// OnRound, when non-nil, is invoked synchronously after each round
	// (after the round's checkpoint, if any, has been written).
	OnRound func(RoundRecord)

	// CheckpointDir, when non-empty, makes the session crash-safe: after
	// every completed round an atomic, CRC-verified snapshot of the
	// session state (global params, previous global delta, selector
	// state, round history, accounting, RNG) is written to
	// CheckpointDir/session.ckpt. A failed write is logged and training
	// continues; the previous snapshot stays intact.
	CheckpointDir string
	// DeltaCheckpoints switches CheckpointDir to the chunked
	// content-hash delta format (checkpoint.DeltaWriter): each round
	// writes an epoch whose unchanged chunks reference the previous
	// epoch, with periodic full rebases and GC of unreachable epochs.
	// A directory holding the other format is refused on resume rather
	// than silently restarted.
	DeltaCheckpoints bool
	// Resume restores the snapshot in CheckpointDir on startup and
	// continues from the round after the last completed one. With no
	// snapshot present the session starts fresh (so a supervisor can
	// always pass Resume); a corrupt snapshot is a hard error — training
	// silently from scratch would masquerade as a resumed session.
	Resume bool
	// MaxUpdateNorm is the update-integrity outlier gate: a received
	// update whose L2 norm exceeds MaxUpdateNorm times the round's
	// median update norm is quarantined (rejected, logged, client
	// evicted) instead of aggregated. 0 disables the gate. Structural
	// validation (index bounds, length pairing) and NaN/Inf scrubbing
	// are always on.
	MaxUpdateNorm float64
	// QuarantineLogCap bounds the quarantine log carried in the result
	// and in session checkpoints: only the most recent cap records are
	// retained (drop-oldest ring semantics) so a long multi-session run
	// under sustained attack cannot grow snapshots without limit. 0
	// means DefaultQuarantineLogCap; negative disables the bound. The
	// drop count is reported in ServerResult.QuarantinesDropped.
	QuarantineLogCap int
	// Shards, when positive, streams arriving updates through an
	// internal/shard aggregation tree instead of buffering the round's
	// update set: each update folds into its shard's running partial as
	// it is received, so server memory per round is O(Shards·dim)
	// rather than O(clients·nnz). Shards=1 reproduces the buffered
	// aggregation bit for bit; Shards>1 is deterministic for a fixed
	// shard count. With MaxUpdateNorm set, the norm gate runs in its
	// causal per-shard form (see internal/shard) instead of the
	// buffered retrospective one. The shard tree's geometry joins the
	// session checkpoint, so a resume with a different -shards value is
	// refused.
	Shards int
	// ShardQueueDepth overrides the per-shard ingest queue depth
	// (default shard.DefaultQueueDepth).
	ShardQueueDepth int
	// Metrics, when non-nil, receives the server's operational metrics:
	// round/phase latencies, uplink/downlink bytes, evictions,
	// quarantines, reconnects, utility-score and compression-ratio
	// distributions (metric catalogue in DESIGN.md §Observability). Nil
	// disables metrics at zero cost.
	Metrics *obs.Registry
	// Events, when non-nil, receives one structured JSONL record per
	// round event: selection with scores, per-client ratio assignment,
	// update received/evicted/quarantined, aggregation, the round
	// summary, and checkpoint saves. The log is flushed (and fsynced)
	// at every round boundary.
	Events *obs.EventLog
	// Wire selects the accepted wire codecs: "" or WireBinary sniffs each
	// accepted connection and speaks whichever codec the client opened
	// with (binary preamble or plain gob); WireGob declines binary
	// preambles so every session runs the legacy gob path (binary-capable
	// clients fall back automatically).
	Wire string
	// Scenario, when non-nil, overlays a declarative fleet scenario on
	// the session: per-round availability (diurnal waves, correlated
	// regional outages, battery depletion) gates selection, each
	// delivered update drains its client's battery by the round's
	// training time and transmitted bytes, and battery level scales the
	// utility score before Algorithm 1 ranks it. The fleet's state joins
	// the session checkpoint so -resume rejoins the schedule
	// mid-scenario. The round loop drives the fleet single-threadedly;
	// callers must not touch it while Run is live.
	Scenario *scenario.Fleet
	// ScenarioLog, when non-nil, receives one deterministic JSONL record
	// per round describing the scenario schedule (availability,
	// depletions, outages, battery levels). Unlike the wall-clock-stamped
	// event log, these lines are byte-identical across runs of the same
	// scenario — the observable the golden replay tests compare.
	ScenarioLog io.Writer
	// Negotiation, when Enabled, turns on per-round codec negotiation:
	// each selected client's Select broadcast carries a codec+ratio (and,
	// for the quantizing codec, a level count) derived from its observed
	// link state — EWMA uplink bytes, the scenario's bandwidth multiplier
	// for the round, and the utility-ranked plan. Assignments are a pure
	// function of (config, round, plan, recorded history), so negotiated
	// sessions replay byte-identically and survive checkpoint/resume; the
	// negotiator's state joins the session snapshot and a resume under a
	// different negotiation config is refused.
	Negotiation core.NegotiationConfig
	// AssignLog, when non-nil, receives one deterministic JSONL record
	// per negotiated round listing the assignments sorted by client id.
	// Like ScenarioLog, lines are byte-identical across replays of the
	// same session — the observable the negotiation golden tests compare.
	AssignLog io.Writer
	// RNG, when non-nil, is the session RNG: server-side stochastic
	// decisions must draw from it so that its position can be captured
	// in checkpoints and resumed sessions replay identically. The
	// current synchronous round engine is deterministic given the roster
	// and scores, so the field exists for engines layered on top; it is
	// saved and restored with the snapshot.
	RNG *stats.RNG
}

// RoundRecord is the server's per-round log entry.
type RoundRecord struct {
	Round    int
	Clients  int // live roster size at round start
	Selected int
	Received int // updates that passed integrity screening and were aggregated
	Evicted  int // clients evicted during this round (deadline, link or quarantine)
	// Quarantined counts updates rejected by the integrity screen this
	// round (a subset of Evicted).
	Quarantined int
	TestAcc     float64
	Bytes       int64 // uplink bytes received during this round
}

// ServerResult summarises a completed session.
type ServerResult struct {
	Rounds   []RoundRecord
	FinalAcc float64
	// BytesReceived is the total uplink volume across all clients,
	// accumulated round by round (evicted clients included).
	BytesReceived int64
	// Evictions counts clients dropped for deadline misses or dead links.
	Evictions int
	// EndedEarly is set when the roster fell below MinClients and the
	// session stopped before completing the configured rounds.
	EndedEarly bool
	// Quarantines lists the most recent updates rejected by the integrity
	// screen across the session (including rounds restored from a
	// checkpoint), bounded by ServerConfig.QuarantineLogCap.
	Quarantines []QuarantineRecord
	// QuarantinesDropped counts older quarantine records discarded to
	// keep Quarantines within the cap.
	QuarantinesDropped int
	// ResumedFrom is the round the session resumed at (-1 for a fresh
	// session): Rounds[:ResumedFrom] were restored from the checkpoint,
	// the rest were run by this process.
	ResumedFrom int
}

// Server drives synchronous AdaFL over TCP. The round engine is straggler-
// and fault-tolerant: broadcasts and collects run concurrently per client
// under per-phase deadlines, laggards and dead links are evicted with
// their samples removed from the FedAvg normalisation, and evicted or
// late clients may re-register (a re-Hello) to join at the next round.
type Server struct {
	cfg ServerConfig
	// listener is nil on a managed server (session.Manager owns the
	// socket and hands connections in through Deliver).
	listener net.Listener
	managed  bool

	mu        sync.Mutex
	cond      *sync.Cond
	roster    map[int]*clientConn // live, participating this round
	pending   map[int]*clientConn // registered, admitted at next round start
	closing   bool                // shutdown underway: reject new registrations
	dead      bool                // Kill() called: crash simulation, no farewells
	nextRound int                 // round a client registering now will join (under mu)
	acceptErr error               // terminal listener failure

	evictedBytes int64 // uplink bytes from already-closed conns (under mu)
	prevBytes    int64 // cumulative uplink total at end of previous round

	evictedSent int64 // downlink bytes to already-closed conns (under mu)
	prevSent    int64 // cumulative downlink total at end of previous round

	seen map[int]bool // client ids that have registered at least once (under mu)
	met  serverMetrics

	quarantines        []QuarantineRecord // touched only by the round loop goroutine
	quarantinesDropped int                // records discarded by the log cap
	tree               *shard.Tree        // streaming aggregation tree (nil when Shards == 0)
	neg                *core.Negotiator   // codec negotiator (nil when Negotiation disabled)
	deltaW             *checkpoint.DeltaWriter
}

// DefaultQuarantineLogCap bounds the quarantine log when
// ServerConfig.QuarantineLogCap is zero.
const DefaultQuarantineLogCap = 4096

// appendQuarantines appends new records to the session's quarantine log,
// discarding the oldest entries beyond the configured cap so checkpoints
// stay bounded under a sustained attack. Called only from the round loop
// goroutine (and once at resume, before it starts).
func (s *Server) appendQuarantines(quarantined []QuarantineRecord) {
	s.quarantines = append(s.quarantines, quarantined...)
	max := s.cfg.QuarantineLogCap
	if max == 0 {
		max = DefaultQuarantineLogCap
	}
	if over := len(s.quarantines) - max; max > 0 && over > 0 {
		s.quarantinesDropped += over
		s.quarantines = append(s.quarantines[:0], s.quarantines[over:]...)
	}
}

// ErrServerKilled is returned by Run when Kill interrupted the session:
// the crash-simulation hook for restart/resume testing.
var ErrServerKilled = fmt.Errorf("rpc: server killed")

type clientConn struct {
	id      int
	conn    *Conn
	samples int
	// env is the connection's receive scratch (RecvInto): the round
	// engine's per-client phases are strictly sequential per connection,
	// and an update payload handed to the aggregation path is consumed
	// before the connection's next receive (the round boundary), so one
	// envelope per connection keeps the steady-state receive path
	// allocation-free.
	env Envelope
}

// prepareConfig validates and defaults a ServerConfig for both the
// listening and the managed construction paths.
func prepareConfig(cfg ServerConfig) (ServerConfig, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 {
		return cfg, fmt.Errorf("rpc: need positive NumClients and Rounds")
	}
	if cfg.MinClients > cfg.NumClients {
		return cfg, fmt.Errorf("rpc: MinClients %d exceeds NumClients %d", cfg.MinClients, cfg.NumClients)
	}
	if cfg.MaxClients > 0 && cfg.MaxClients < cfg.NumClients {
		return cfg, fmt.Errorf("rpc: MaxClients %d below NumClients %d: the quorum could never form", cfg.MaxClients, cfg.NumClients)
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	if cfg.StragglerTimeout <= 0 {
		cfg.StragglerTimeout = DefaultStragglerTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = cfg.StragglerTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	if cfg.Wire != "" && cfg.Wire != WireBinary && cfg.Wire != WireGob {
		return cfg, fmt.Errorf("rpc: unknown wire codec %q (want %q or %q)", cfg.Wire, WireBinary, WireGob)
	}
	if cfg.CheckpointDir != "" {
		// The atomic rename in checkpoint.Save needs the directory to
		// exist; creating it here surfaces a bad path at startup instead
		// of as a failed-checkpoint log line every round.
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return cfg, fmt.Errorf("rpc: checkpoint dir: %w", err)
		}
	}
	return cfg, nil
}

func newServer(cfg ServerConfig, ln net.Listener) (*Server, error) {
	var neg *core.Negotiator
	if cfg.Negotiation.Enabled {
		var err error
		neg, err = core.NewNegotiator(cfg.Negotiation, cfg.Cfg.Compression)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:      cfg,
		listener: ln,
		managed:  ln == nil,
		roster:   map[int]*clientConn{},
		pending:  map[int]*clientConn{},
		seen:     map[int]bool{},
		met:      newServerMetrics(cfg.Metrics, cfg.Session),
		neg:      neg,
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// NewServer binds the listen socket (so callers know the port before
// clients dial) and returns the server.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg, err := prepareConfig(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s, err := newServer(cfg, ln)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// NewManagedServer returns a server with no listener of its own: a
// session.Manager multiplexing one socket across sessions negotiates and
// routes each accepted connection, then hands it in through Deliver.
// cfg.Addr is ignored.
func NewManagedServer(cfg ServerConfig) (*Server, error) {
	cfg, err := prepareConfig(cfg)
	if err != nil {
		return nil, err
	}
	return newServer(cfg, nil)
}

// Addr returns the bound listen address ("" on a managed server).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// closeListener is a nil-safe close of the (possibly absent) listener.
func (s *Server) closeListener() {
	if s.listener != nil {
		s.listener.Close()
	}
}

// Run accepts NumClients registrations, executes the configured rounds
// (tolerating stragglers, dead links and re-joins), shuts the surviving
// clients down and returns the session result. With CheckpointDir set,
// every completed round is snapshotted; with Resume set, the session
// restores the snapshot and continues from the round after the crash.
func (s *Server) Run() (*ServerResult, error) {
	model := s.cfg.NewModel()
	global := model.ParamVector()
	globalDelta := make([]float64, len(global))

	if s.cfg.Shards > 0 {
		s.tree = shard.NewTree(shard.Config{
			Shards:      s.cfg.Shards,
			Dim:         len(global),
			QueueDepth:  s.cfg.ShardQueueDepth,
			MaxNormMult: s.cfg.MaxUpdateNorm,
			Metrics:     s.cfg.Metrics,
			Logf:        s.cfg.Logf,
		})
		defer s.tree.Close()
	}

	res := &ServerResult{ResumedFrom: -1}
	planner := newServerSelector(s.cfg.Cfg)
	startRound := 0
	if s.cfg.Resume && s.cfg.CheckpointDir != "" {
		snap, err := s.loadCheckpoint(len(global))
		if err != nil {
			s.closeListener()
			return nil, err
		}
		if snap != nil {
			startRound = snap.CompletedRound + 1
			copy(global, snap.Global)
			copy(globalDelta, snap.GlobalDelta)
			planner.lastSel = snap.SelectorLastSel
			if planner.lastSel == nil {
				planner.lastSel = map[int]int{}
			}
			res.Rounds = snap.History
			res.BytesReceived = snap.BytesReceived
			res.Evictions = snap.Evictions
			res.FinalAcc = snap.FinalAcc
			s.quarantines = snap.Quarantines
			s.quarantinesDropped = snap.QuarantinesDropped
			// Re-bound: the snapshot may predate the cap or carry a
			// bigger one. Old (unbounded) checkpoints restore fine.
			s.appendQuarantines(nil)
			res.Quarantines = s.quarantines
			res.QuarantinesDropped = s.quarantinesDropped
			res.ResumedFrom = startRound
			if s.cfg.RNG != nil && snap.RNG != nil {
				*s.cfg.RNG = *snap.RNG
			}
			if s.tree != nil {
				// A snapshot from an older binary (no shard state) restores
				// as a no-op; a snapshot taken under a different -shards
				// value is refused — silently re-routing clients would break
				// the fixed-shard-count determinism contract.
				if err := s.tree.Restore(snap.ShardState); err != nil {
					s.closeListener()
					return nil, fmt.Errorf("rpc: resume from %s: %w", s.checkpointPath(), err)
				}
			}
			if s.cfg.Scenario != nil {
				if snap.Scenario != nil {
					// A snapshot from a different scenario (name, seed or
					// fleet size) is refused: continuing would splice two
					// unrelated schedules together and the replayed run
					// would diverge from an uninterrupted one.
					if err := s.cfg.Scenario.Restore(snap.Scenario); err != nil {
						s.closeListener()
						return nil, fmt.Errorf("rpc: resume from %s: %w", s.checkpointPath(), err)
					}
				} else {
					s.cfg.Logf("server: resume: snapshot has no scenario state; energy accounting restarts from the scenario's initial conditions")
				}
			} else if snap.Scenario != nil {
				s.cfg.Logf("server: resume: ignoring scenario state %q in snapshot (no -scenario configured)", snap.Scenario.Name)
			}
			// Negotiation state must match exactly: the assignment stream is
			// a pure function of (config, history), so resuming with
			// negotiation toggled or reconfigured would silently diverge
			// from the uninterrupted run. Restore refuses a config mismatch.
			switch {
			case s.neg != nil && snap.Negotiation != nil:
				if err := s.neg.Restore(snap.Negotiation); err != nil {
					s.closeListener()
					return nil, fmt.Errorf("rpc: resume from %s: %w", s.checkpointPath(), err)
				}
			case s.neg != nil:
				s.closeListener()
				return nil, fmt.Errorf("rpc: resume from %s: snapshot has no negotiation state but negotiation is enabled; rerun without -negotiate or start fresh", s.checkpointPath())
			case snap.Negotiation != nil:
				s.closeListener()
				return nil, fmt.Errorf("rpc: resume from %s: snapshot is from a negotiated session; rerun with -negotiate and the same negotiation flags", s.checkpointPath())
			}
			s.cfg.Logf("server: resumed session at round %d (%d rounds restored, final acc so far %.3f)",
				startRound+1, len(snap.History), snap.FinalAcc)
		}
	}
	if startRound >= s.cfg.Rounds {
		// Crash landed after the final round's checkpoint: nothing left
		// to train. Don't block on a quorum that may never re-form; any
		// straggling redials are turned away with a shutdown notice.
		s.shutdown(fmt.Sprintf("done (resumed complete session): %d rounds, final acc %.3f",
			len(res.Rounds), res.FinalAcc))
		return res, nil
	}
	s.mu.Lock()
	s.nextRound = startRound
	s.mu.Unlock()

	if !s.managed {
		go s.acceptLoop()
	}
	if err := s.waitForQuorum(); err != nil {
		s.shutdown("listener failed")
		return nil, err
	}

	for round := startRound; round < s.cfg.Rounds; round++ {
		s.admitPending(round)
		if live := s.liveCount(); live < s.cfg.MinClients {
			s.cfg.Logf("server: %d live clients < MinClients %d, ending session after %d rounds",
				live, s.cfg.MinClients, len(res.Rounds))
			res.EndedEarly = true
			break
		}
		rec := s.runRound(round, planner, model, global, globalDelta)
		res.Rounds = append(res.Rounds, rec)
		res.BytesReceived += rec.Bytes
		res.Evictions += rec.Evicted
		if !math.IsNaN(rec.TestAcc) && rec.TestAcc > 0 {
			res.FinalAcc = rec.TestAcc
		}
		res.Quarantines = s.quarantines
		res.QuarantinesDropped = s.quarantinesDropped
		if s.cfg.CheckpointDir != "" {
			ckptStart := time.Now()
			size, err := s.saveCheckpoint(round, global, globalDelta, planner, res)
			if err != nil {
				s.cfg.Logf("server: checkpoint after round %d failed (continuing): %v", round+1, err)
			} else {
				sec := time.Since(ckptStart).Seconds()
				s.met.ckptSec.Observe(sec)
				s.met.ckptBytes.Set(float64(size))
				s.cfg.Events.Emit(obs.Event{Type: "checkpoint", Round: round, Client: -1, Bytes: size, Seconds: sec})
			}
		}
		// Round boundary: make the round's event records crash-durable.
		if err := s.cfg.Events.Flush(); err != nil {
			s.cfg.Logf("server: event log flush after round %d failed: %v", round+1, err)
		}
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(rec)
		}
		if s.isDead() {
			return res, ErrServerKilled
		}
	}
	s.shutdown(fmt.Sprintf("done: %d rounds, final acc %.3f", len(res.Rounds), res.FinalAcc))
	return res, nil
}

// Kill simulates a server crash for restart testing: the listener and
// every connection are torn down with no farewell messages, and Run
// returns ErrServerKilled at the next round boundary. State not yet
// checkpointed is lost, exactly as in a real crash.
func (s *Server) Kill() {
	s.mu.Lock()
	s.dead = true
	s.closing = true
	conns := make([]*clientConn, 0, len(s.roster)+len(s.pending))
	for _, c := range s.roster {
		conns = append(conns, c)
	}
	for _, c := range s.pending {
		conns = append(conns, c)
	}
	// Wake a pre-quorum waitForQuorum: with the listener gone (or absent,
	// on a managed server) nothing else would, and Run must return
	// ErrServerKilled rather than wait for clients that can never arrive.
	s.cond.Broadcast()
	s.mu.Unlock()
	s.closeListener()
	for _, c := range conns {
		c.conn.Close()
	}
	// A crash takes every connection with it; the round engine's evict
	// path may still run for roster entries, so set rather than decrement.
	s.met.connections.Set(0)
}

func (s *Server) isDead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// acceptLoop admits registrations for the whole session so that evicted
// or slow-to-start clients can (re-)join at the next round boundary.
func (s *Server) acceptLoop() {
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			if !s.closing {
				s.acceptErr = err
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		go s.handshake(raw)
	}
}

func (s *Server) handshake(raw net.Conn) {
	wrapped := WrapFault(raw, s.cfg.Fault)
	// Codec sniff under the hello deadline: a dialer that never speaks
	// cannot pin this goroutine, and the first byte decides gob vs binary
	// (see serverNegotiate).
	wrapped.SetReadDeadline(time.Now().Add(helloTimeout))
	conn, err := serverNegotiate(wrapped, s.cfg.Wire != WireGob)
	if err != nil {
		wrapped.Close()
		return
	}
	hello, err := conn.Recv()
	if err != nil || hello.Type != MsgHello {
		conn.Close()
		return
	}
	s.Deliver(conn, hello)
}

// Deliver admits an already-negotiated connection whose hello has been
// read — the entry point a session.Manager uses after routing the
// handshake itself (the server's own acceptLoop funnels through it too).
// The hello envelope is only read during the call. A rejected connection
// is closed after a shutdown notice and the error says why; nil means the
// client is registered and welcomed.
func (s *Server) Deliver(conn *Conn, hello *Envelope) error {
	id := hello.ClientID
	s.met.countWire(conn)
	conn.SetReadDeadline(time.Time{})

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		conn.Send(&Envelope{Type: MsgShutdown, Info: "session over"})
		conn.Close()
		return fmt.Errorf("rpc: session over")
	}
	_, live := s.roster[id]
	_, queued := s.pending[id]
	if live || queued {
		s.mu.Unlock()
		s.cfg.Logf("server: rejecting duplicate client id %d", id)
		conn.Send(&Envelope{Type: MsgShutdown, Info: fmt.Sprintf("duplicate client id %d", id)})
		conn.Close()
		return fmt.Errorf("rpc: duplicate client id %d", id)
	}
	if limit := s.cfg.MaxClients; limit > 0 && len(s.roster)+len(s.pending) >= limit {
		s.mu.Unlock()
		s.cfg.Logf("server: rejecting client %d: session at its admission cap (%d clients)", id, limit)
		conn.Send(&Envelope{Type: MsgShutdown, Info: fmt.Sprintf("session full (%d clients)", limit)})
		conn.Close()
		return fmt.Errorf("rpc: session full (%d clients)", limit)
	}
	s.pending[id] = &clientConn{id: id, conn: conn, samples: hello.NumSamples}
	s.met.connections.Add(1)
	s.met.registrations.Inc()
	if s.seen[id] {
		s.met.reconnects.Inc()
	}
	s.seen[id] = true
	next := s.nextRound
	s.cfg.Logf("server: client %d registered (%d samples), joins at round %d", id, hello.NumSamples, next+1)
	s.cond.Broadcast()
	s.mu.Unlock()

	// Welcome outside the lock: a stalled peer must not block round
	// machinery that needs s.mu. Round tells a redialling client it is
	// joining a resumed/in-progress session, not round 0.
	conn.SetWriteDeadline(time.Now().Add(helloTimeout))
	if err := conn.Send(&Envelope{Type: MsgWelcome, Round: next}); err != nil {
		s.mu.Lock()
		if c, ok := s.pending[id]; ok && c.conn == conn {
			delete(s.pending, id)
			s.met.connections.Add(-1)
		}
		s.mu.Unlock()
		// If admitPending already moved it to the roster, the dead link
		// surfaces at the next phase and the normal eviction path runs.
		conn.Close()
		return fmt.Errorf("rpc: welcome client %d: %w", id, err)
	}
	conn.SetWriteDeadline(time.Time{})
	return nil
}

func (s *Server) waitForQuorum() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.roster)+len(s.pending) < s.cfg.NumClients && s.acceptErr == nil && !s.dead {
		s.cond.Wait()
	}
	if s.dead {
		// Kill landed before the quorum formed (a managed server has no
		// listener whose Accept failure would wake this wait).
		return ErrServerKilled
	}
	return s.acceptErr
}

// admitPending moves registered clients into the live roster at a round
// boundary, the only point where the lockstep protocol can take them.
func (s *Server) admitPending(round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextRound = round + 1 // registrations from here on join the next round
	for id, c := range s.pending {
		delete(s.pending, id)
		s.roster[id] = c
		if round > 0 {
			s.cfg.Logf("server: client %d joins at round %d", id, round+1)
		}
	}
}

func (s *Server) liveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.roster)
}

// snapshotRoster returns the live clients sorted by id for deterministic
// iteration.
func (s *Server) snapshotRoster() []*clientConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*clientConn, 0, len(s.roster))
	for _, c := range s.roster {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// evict removes a client whose link failed or who missed a phase
// deadline. Its uplink bytes are folded into the session accounting and
// its connection closed; a later re-Hello may bring it back.
func (s *Server) evict(c *clientConn, round int, err error) {
	s.mu.Lock()
	if _, ok := s.roster[c.id]; ok {
		delete(s.roster, c.id)
		s.evictedBytes += c.conn.BytesReceived()
		s.evictedSent += c.conn.BytesSent()
		if !s.dead { // after Kill the gauge is already forced to 0
			s.met.connections.Add(-1)
		}
	}
	s.mu.Unlock()
	c.conn.Close()
	s.met.evictions.Inc()
	s.cfg.Events.Emit(obs.Event{Type: "evict", Round: round, Client: c.id, Reason: err.Error()})
	s.cfg.Logf("server: round %d: evicting client %d: %v", round+1, c.id, err)
}

func (s *Server) totalBytesReceived() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.evictedBytes
	for _, c := range s.roster {
		total += c.conn.BytesReceived()
	}
	return total
}

func (s *Server) totalBytesSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.evictedSent
	for _, c := range s.roster {
		total += c.conn.BytesSent()
	}
	return total
}

func (s *Server) sendTimed(c *clientConn, e *Envelope) error {
	c.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return c.conn.Send(e)
}

// recvTimed receives into the connection's scratch envelope (see
// clientConn.env): the returned envelope is owned by the connection and
// valid until its next recvTimed.
func (s *Server) recvTimed(c *clientConn) (*Envelope, error) {
	c.conn.SetReadDeadline(time.Now().Add(s.cfg.StragglerTimeout))
	if err := c.conn.RecvInto(&c.env); err != nil {
		return nil, err
	}
	s.met.countWire(c.conn)
	return &c.env, nil
}

// runRound executes one federated round against the current roster. It
// never fails the session: clients that error or dawdle are evicted and
// the round aggregates whatever arrived in time (Received may be smaller
// than Selected).
func (s *Server) runRound(round int, sel *serverSelector, model *nn.Model,
	global, globalDelta []float64) RoundRecord {
	rec := RoundRecord{Round: round, TestAcc: nan()}
	roundStart := time.Now()
	if s.cfg.Scenario != nil {
		// Advance the scenario clock first: availability and battery
		// state for this round are fixed here, before any network I/O,
		// so the schedule cannot depend on message timing.
		s.cfg.Scenario.BeginRound(round)
	}
	roster := s.snapshotRoster()
	rec.Clients = len(roster)
	totalSamples := 0
	for _, c := range roster {
		totalSamples += c.samples
	}

	// Phase 1+2: concurrent broadcast + score collection, one goroutine
	// per connection. Every goroutine reports exactly once, and the phase
	// deadline guarantees it returns.
	type scoreRes struct {
		c     *clientConn
		score float64
		err   error
	}
	scoreCh := make(chan scoreRes, len(roster))
	for _, c := range roster {
		c := c
		go func() {
			if err := s.sendTimed(c, &Envelope{Type: MsgModel, Round: round, Params: global, GlobalDelta: globalDelta}); err != nil {
				scoreCh <- scoreRes{c: c, err: err}
				return
			}
			e, err := s.recvTimed(c)
			if err != nil {
				scoreCh <- scoreRes{c: c, err: err}
				return
			}
			if e.Type != MsgScore {
				scoreCh <- scoreRes{c: c, err: fmt.Errorf("expected score, got %v", e.Type)}
				return
			}
			scoreCh <- scoreRes{c: c, score: e.Score}
		}()
	}
	scores := make(map[int]float64, len(roster))
	alive := make([]*clientConn, 0, len(roster))
	for range roster {
		r := <-scoreCh
		if r.err != nil {
			s.evict(r.c, round, r.err)
			rec.Evicted++
			continue
		}
		scores[r.c.id] = r.score
		alive = append(alive, r.c)
	}
	s.met.scoreSec.Observe(time.Since(roundStart).Seconds())

	// Scenario gate: clients the scenario has offline this round cannot
	// be selected (they stay connected and receive a ratio-0 select, the
	// protocol's existing not-selected path), and battery level scales
	// the remaining scores so low-battery clients are deprioritised.
	if sc := s.cfg.Scenario; sc != nil {
		for id := range scores {
			if !sc.Available(id) {
				delete(scores, id)
				continue
			}
			scores[id] *= sc.ScoreMult(id)
		}
	}

	// Negotiation feedback: a client whose last assignment compressed at
	// the deep end of the range ranks higher, so cheap-to-upload clients
	// win ties in Algorithm 1.
	if s.neg != nil {
		for id := range scores {
			scores[id] *= s.neg.ScoreMult(id)
		}
	}

	// Phase 3+4: selection, then concurrent notify + update collection.
	plan := sel.plan(round, scores)
	rec.Selected = len(plan)
	for _, score := range scores {
		s.met.scores.Observe(score)
	}
	for _, ratio := range plan {
		s.met.ratios.Observe(ratio)
	}
	var assigns map[int]core.CodecAssignment
	if s.neg != nil {
		var bw func(int) float64
		if sc := s.cfg.Scenario; sc != nil {
			bw = func(id int) float64 {
				up, _ := sc.LinkBandwidth(id, round, 1, 1)
				return up
			}
		}
		assigns = s.neg.Assign(round, plan, bw)
		for _, a := range assigns {
			if a.Codec == core.CodecDAdaQuant {
				s.met.codecDAda.Inc()
			} else {
				s.met.codecDGC.Inc()
			}
			s.met.negRatios.Observe(a.Ratio)
		}
		s.logAssignments(round, assigns)
	}
	s.cfg.Events.Emit(obs.Event{Type: "selection", Round: round, Client: -1, Scores: scores, Ratios: plan})
	updatePhaseStart := time.Now()
	type updRes struct {
		c   *clientConn
		upd *compress.Sparse
		err error
	}
	updCh := make(chan updRes, len(alive))
	for _, c := range alive {
		c := c
		ratio := plan[c.id] // 0 when not selected this round
		sel := &Envelope{Type: MsgSelect, Round: round, Ratio: ratio}
		if a, ok := assigns[c.id]; ok {
			// Negotiated order: the assignment's codec+ratio (and level
			// count) supersede the plan's bare ratio.
			sel.Ratio, sel.Codec, sel.Levels = a.Ratio, a.Codec, a.Levels
			ratio = a.Ratio
		}
		go func() {
			if err := s.sendTimed(c, sel); err != nil {
				updCh <- updRes{c: c, err: err}
				return
			}
			if ratio <= 0 {
				updCh <- updRes{c: c}
				return
			}
			e, err := s.recvTimed(c)
			if err != nil {
				updCh <- updRes{c: c, err: err}
				return
			}
			if e.Type != MsgUpdate || e.Update == nil {
				updCh <- updRes{c: c, err: fmt.Errorf("expected update, got %v", e.Type)}
				return
			}
			updCh <- updRes{c: c, upd: e.Update}
		}()
	}
	// Collect the partial set, then screen and aggregate. Two paths:
	//
	// Buffered (Shards == 0): the round's updates are held back, the
	// retrospective integrity screen (structural validation, NaN/Inf
	// scrubbing, median-relative norm gate) runs over the full set, and
	// the survivors fold into one accumulator.
	//
	// Streaming (Shards > 0): each update is handed to the shard tree
	// the moment it arrives; the workers run the same validation and
	// scrubbing plus the causal per-shard norm gate, folding survivors
	// into running partials, so the server never holds more than the
	// in-flight queues. Finish() merges the partials in shard order.
	//
	// Either way, quarantined clients are evicted exactly like
	// stragglers: their weight leaves the renormalisation and the
	// global model is bitwise unaffected by the rejected update.
	received := make([]roundUpdate, 0, len(alive))
	connByID := make(map[int]*clientConn, len(alive))
	for range alive {
		r := <-updCh
		if r.err != nil {
			s.evict(r.c, round, r.err)
			rec.Evicted++
			continue
		}
		if r.upd != nil {
			connByID[r.c.id] = r.c
			if s.neg != nil {
				// Per-client EWMA fold: order-independent across clients,
				// so receipt order cannot perturb the replayed assignments.
				s.neg.RecordUpload(r.c.id, r.upd.WireBytes())
			}
			s.met.updRatios.Observe(r.upd.CompressionRatio())
			if sc := s.cfg.Scenario; sc != nil {
				// Energy accounting: one round of training plus the
				// update's wire bytes, against the client's class battery.
				sc.Account(r.c.id, sc.TrainSeconds(r.c.id), int64(r.upd.WireBytes()))
			}
			s.cfg.Events.Emit(obs.Event{Type: "update", Round: round, Client: r.c.id, Bytes: int64(r.upd.WireBytes())})
			if s.tree != nil {
				s.tree.Ingest(round, shard.Update{
					Client: r.c.id,
					Weight: float64(r.c.samples) / float64(totalSamples),
					Delta:  r.upd,
				})
			} else {
				received = append(received, roundUpdate{clientID: r.c.id, samples: r.c.samples, upd: r.upd})
			}
		}
	}
	s.met.updateSec.Observe(time.Since(updatePhaseStart).Seconds())

	aggStart := time.Now()
	var part *shard.Partial
	var quarantined []QuarantineRecord
	if s.tree != nil {
		part, quarantined = s.tree.Finish()
	} else {
		// Fold in client-id order, not receipt order: float accumulation is
		// not associative, and the negotiated golden-replay contract needs
		// two identical sessions to produce bit-identical globals.
		sort.Slice(received, func(i, j int) bool { return received[i].clientID < received[j].clientID })
		var kept []roundUpdate
		kept, quarantined = screenUpdates(round, len(global), s.cfg.MaxUpdateNorm, received, s.cfg.Logf)
		part = shard.NewPartial(len(global))
		for _, u := range kept {
			part.Fold(shard.Update{
				Client: u.clientID,
				Weight: float64(u.samples) / float64(totalSamples),
				Delta:  u.upd,
			}, false)
		}
	}
	for _, q := range quarantined {
		s.met.quarantines.Inc()
		s.cfg.Events.Emit(obs.Event{Type: "quarantine", Round: round, Client: q.ClientID, Reason: q.Reason, Norm: q.Norm})
		s.evict(connByID[q.ClientID], round, fmt.Errorf("quarantined update: %s", q.Reason))
		rec.Evicted++
		rec.Quarantined++
	}
	s.appendQuarantines(quarantined)

	// Apply the merged partial (FedAvg weighted by sample counts of the
	// round's roster; the 1/WeightSum renormalisation keeps the average
	// well-formed when some selected updates never arrive).
	rec.Received = part.Count
	before := tensor.CopyVec(global)
	if part.WeightSum > 0 {
		tensor.Axpy(1/part.WeightSum, part.Sum, global)
	}
	tensor.SubVec(globalDelta, global, before)
	s.cfg.Events.Emit(obs.Event{Type: "aggregate", Round: round, Client: -1,
		Received: rec.Received, Seconds: time.Since(aggStart).Seconds()})

	// Phase 5: evaluate.
	if s.cfg.Test != nil && (round+1)%s.cfg.EvalEvery == 0 {
		model.SetParamVector(global)
		acc, _ := model.EvaluateBatched(s.cfg.Test.X, s.cfg.Test.Labels, 64)
		rec.TestAcc = acc
		s.cfg.Logf("server: round %d acc=%.3f selected=%d received=%d clients=%d",
			round+1, acc, rec.Selected, rec.Received, rec.Clients)
	}
	total := s.totalBytesReceived()
	rec.Bytes = total - s.prevBytes
	s.prevBytes = total

	sent := s.totalBytesSent()
	s.met.rounds.Inc()
	s.met.bytesUp.Add(rec.Bytes)
	s.met.bytesDown.Add(sent - s.prevSent)
	s.prevSent = sent
	s.met.roundSec.Observe(time.Since(roundStart).Seconds())
	s.met.clients.Set(float64(rec.Clients))
	s.met.selected.Set(float64(rec.Selected))
	s.met.received.Set(float64(rec.Received))
	if !math.IsNaN(rec.TestAcc) {
		s.met.accuracy.Set(rec.TestAcc)
	}
	s.cfg.Events.Emit(obs.Event{Type: "round", Round: round, Client: -1,
		Clients: rec.Clients, Selected: rec.Selected, Received: rec.Received,
		Evicted: rec.Evicted, Quarantined: rec.Quarantined, Bytes: rec.Bytes,
		Acc: obs.AccValue(rec.TestAcc)})
	if sc := s.cfg.Scenario; sc != nil {
		if err := sc.EmitRound(s.cfg.ScenarioLog, round); err != nil {
			s.cfg.Logf("server: round %d: scenario log write failed: %v", round+1, err)
		}
		sc.RecordMetrics(s.cfg.Metrics)
	}
	return rec
}

// logAssignments writes one JSONL record for the round's negotiated
// assignments, sorted by client id. The encoding is hand-rolled and
// wall-clock-free so the lines are byte-identical across replays of the
// same session (the golden observable, like ScenarioLog).
func (s *Server) logAssignments(round int, asn map[int]core.CodecAssignment) {
	if s.cfg.AssignLog == nil || len(asn) == 0 {
		return
	}
	ids := make([]int, 0, len(asn))
	for id := range asn {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, `{"round":%d,"assign":[`, round)
	for i, id := range ids {
		a := asn[id]
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"client":%d,"codec":%q,"ratio":%g,"levels":%d}`, id, a.Codec, a.Ratio, a.Levels)
	}
	b.WriteString("]}\n")
	if _, err := io.WriteString(s.cfg.AssignLog, b.String()); err != nil {
		s.cfg.Logf("server: round %d: assignment log write failed: %v", round+1, err)
	}
}

func (s *Server) shutdown(info string) {
	s.mu.Lock()
	s.closing = true
	conns := make([]*clientConn, 0, len(s.roster)+len(s.pending))
	for _, c := range s.roster {
		conns = append(conns, c)
	}
	for _, c := range s.pending {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.closeListener()
	for _, c := range conns {
		c.conn.Send(&Envelope{Type: MsgShutdown, Info: info})
		c.conn.Close()
		s.met.connections.Add(-1)
	}
}

// snapshotFile is the checkpoint file name within CheckpointDir.
const snapshotFile = "session.ckpt"

// sessionSnapshot is the durable session state written after every
// completed round: everything needed to continue from round
// CompletedRound+1 in a fresh process. ParamDim/NumClients/Rounds guard
// a resume against a mismatched model or flag set.
type sessionSnapshot struct {
	CompletedRound  int
	ParamDim        int
	NumClients      int
	Rounds          int
	Global          []float64
	GlobalDelta     []float64
	SelectorLastSel map[int]int
	History         []RoundRecord
	Quarantines     []QuarantineRecord
	// QuarantinesDropped counts records the log cap discarded before this
	// snapshot; zero when decoding pre-cap snapshots.
	QuarantinesDropped int
	BytesReceived      int64
	Evictions          int
	FinalAcc           float64
	RNG                *stats.RNG
	// ShardState is the aggregation tree's geometry and partials (nil
	// when the session runs buffered). Snapshots are taken at round
	// boundaries, where the partials are freshly reset, so its real job
	// is pinning the shard count: a resume under a different -shards
	// value is refused rather than silently re-routing clients.
	ShardState *shard.TreeState
	// Scenario is the fleet-scenario state (battery levels, depletion
	// latches, integration clock) as of the completed round; nil when the
	// session runs without a scenario. Older snapshots decode with nil.
	Scenario *scenario.State
	// Negotiation is the codec negotiator's config and per-client link
	// history; nil when negotiation is disabled. A resume must carry the
	// same negotiation configuration (including enabled-ness) or it is
	// refused — the assignment stream would silently diverge otherwise.
	Negotiation *core.NegotiationState
}

func (s *Server) checkpointPath() string {
	return filepath.Join(s.cfg.CheckpointDir, snapshotFile)
}

func (s *Server) saveCheckpoint(round int, global, globalDelta []float64,
	planner *serverSelector, res *ServerResult) (int64, error) {
	lastSel := make(map[int]int, len(planner.lastSel))
	for id, r := range planner.lastSel {
		lastSel[id] = r
	}
	var treeState *shard.TreeState
	if s.tree != nil {
		treeState = s.tree.Snapshot()
	}
	var scenState *scenario.State
	if s.cfg.Scenario != nil {
		scenState = s.cfg.Scenario.Snapshot()
	}
	var negState *core.NegotiationState
	if s.neg != nil {
		negState = s.neg.Snapshot()
	}
	snap := &sessionSnapshot{
		CompletedRound:     round,
		ParamDim:           len(global),
		NumClients:         s.cfg.NumClients,
		Rounds:             s.cfg.Rounds,
		Global:             global,
		GlobalDelta:        globalDelta,
		SelectorLastSel:    lastSel,
		History:            res.Rounds,
		Quarantines:        s.quarantines,
		QuarantinesDropped: s.quarantinesDropped,
		BytesReceived:      res.BytesReceived,
		Evictions:          res.Evictions,
		FinalAcc:           res.FinalAcc,
		RNG:                s.cfg.RNG,
		ShardState:         treeState,
		Scenario:           scenState,
		Negotiation:        negState,
	}
	if s.cfg.DeltaCheckpoints {
		return s.saveDeltaCheckpoint(snap)
	}
	return checkpoint.SaveSized(s.checkpointPath(), snap)
}

// Section names of a delta-format session checkpoint. The big vectors get
// their own fixed-width sections so positional chunking can dedup the
// parameters that did not move this round; everything else rides in one
// gob "meta" section. "round" is a bare little-endian u64 duplicate of
// CompletedRound so an offline auditor (flserver doctor) can follow round
// continuity without decoding this package's gob types.
const (
	deltaSecMeta   = "meta"
	deltaSecGlobal = "global"
	deltaSecGDelta = "gdelta"
	deltaSecRound  = "round"
)

// encodeDeltaSnapshot splits a snapshot into delta-checkpoint sections.
func encodeDeltaSnapshot(snap *sessionSnapshot) ([]checkpoint.Section, error) {
	global, gdelta := snap.Global, snap.GlobalDelta
	snap.Global, snap.GlobalDelta = nil, nil
	var meta bytes.Buffer
	err := gob.NewEncoder(&meta).Encode(snap)
	snap.Global, snap.GlobalDelta = global, gdelta
	if err != nil {
		return nil, err
	}
	var round [8]byte
	binary.LittleEndian.PutUint64(round[:], uint64(snap.CompletedRound))
	return []checkpoint.Section{
		{Name: deltaSecMeta, Data: meta.Bytes()},
		{Name: deltaSecGlobal, Data: checkpoint.AppendF64s(nil, global)},
		{Name: deltaSecGDelta, Data: checkpoint.AppendF64s(nil, gdelta)},
		{Name: deltaSecRound, Data: round[:]},
	}, nil
}

// decodeDeltaSnapshot is the inverse of encodeDeltaSnapshot.
func decodeDeltaSnapshot(sections []checkpoint.Section) (*sessionSnapshot, error) {
	byName := make(map[string][]byte, len(sections))
	for _, sec := range sections {
		byName[sec.Name] = sec.Data
	}
	for _, name := range []string{deltaSecMeta, deltaSecGlobal, deltaSecGDelta, deltaSecRound} {
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("rpc: delta checkpoint is missing section %q", name)
		}
	}
	var snap sessionSnapshot
	if err := gob.NewDecoder(bytes.NewReader(byName[deltaSecMeta])).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rpc: delta checkpoint meta: %w", err)
	}
	var err error
	if snap.Global, err = checkpoint.F64sFromBytes(byName[deltaSecGlobal]); err != nil {
		return nil, fmt.Errorf("rpc: delta checkpoint global: %w", err)
	}
	if snap.GlobalDelta, err = checkpoint.F64sFromBytes(byName[deltaSecGDelta]); err != nil {
		return nil, fmt.Errorf("rpc: delta checkpoint gdelta: %w", err)
	}
	if rb := byName[deltaSecRound]; len(rb) != 8 {
		return nil, fmt.Errorf("rpc: delta checkpoint round section is %d bytes, want 8", len(rb))
	} else if got := binary.LittleEndian.Uint64(rb); got != uint64(snap.CompletedRound) {
		return nil, fmt.Errorf("rpc: delta checkpoint round section %d disagrees with meta round %d", got, snap.CompletedRound)
	}
	return &snap, nil
}

// saveDeltaCheckpoint writes one delta epoch. The writer is created
// lazily on the first save so a resumed session's writer opens after the
// chain has been read (NewDeltaWriter continues past the latest epoch).
func (s *Server) saveDeltaCheckpoint(snap *sessionSnapshot) (int64, error) {
	if s.deltaW == nil {
		w, err := checkpoint.NewDeltaWriter(s.cfg.CheckpointDir, checkpoint.DeltaOptions{})
		if err != nil {
			return 0, err
		}
		s.deltaW = w
	}
	sections, err := encodeDeltaSnapshot(snap)
	if err != nil {
		return 0, err
	}
	_, size, err := s.deltaW.Write(sections)
	return size, err
}

// loadCheckpoint restores the snapshot for a resumed session. A missing
// file is not an error — the session starts fresh, so a supervisor can
// unconditionally pass Resume — but a corrupt file or a snapshot from a
// different model/configuration is fatal: silently training from
// scratch would masquerade as a resumed session.
func (s *Server) loadCheckpoint(dim int) (*sessionSnapshot, error) {
	path := s.checkpointPath()
	hasFull := checkpoint.Exists(path)
	deltaEpochs, err := checkpoint.DeltaEpochs(s.cfg.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("rpc: resume from %s: %w", s.cfg.CheckpointDir, err)
	}
	hasDelta := len(deltaEpochs) > 0

	var snap *sessionSnapshot
	switch {
	case s.cfg.DeltaCheckpoints && hasFull && !hasDelta:
		// Silently restarting would discard the old session's progress.
		return nil, fmt.Errorf("rpc: resume from %s: directory holds a full-snapshot checkpoint but delta checkpoints are enabled; rerun without -delta-ckpt or start a fresh directory", s.cfg.CheckpointDir)
	case !s.cfg.DeltaCheckpoints && hasDelta:
		return nil, fmt.Errorf("rpc: resume from %s: directory holds a delta checkpoint chain; rerun with -delta-ckpt or start a fresh directory", s.cfg.CheckpointDir)
	case s.cfg.DeltaCheckpoints && !hasDelta:
		s.cfg.Logf("server: no delta checkpoint in %s, starting fresh", s.cfg.CheckpointDir)
		return nil, nil
	case s.cfg.DeltaCheckpoints:
		path = s.cfg.CheckpointDir
		epoch, sections, err := checkpoint.NewDeltaReader(s.cfg.CheckpointDir, 0).ReadLatest()
		if err != nil {
			return nil, fmt.Errorf("rpc: resume from %s: %w", path, err)
		}
		if snap, err = decodeDeltaSnapshot(sections); err != nil {
			return nil, fmt.Errorf("rpc: resume from %s epoch %d: %w", path, epoch, err)
		}
	case !hasFull:
		s.cfg.Logf("server: no checkpoint at %s, starting fresh", path)
		return nil, nil
	default:
		snap = &sessionSnapshot{}
		if err := checkpoint.Load(path, snap); err != nil {
			return nil, fmt.Errorf("rpc: resume from %s: %w", path, err)
		}
	}
	if snap.ParamDim != dim {
		return nil, fmt.Errorf("rpc: resume from %s: snapshot is for a %d-parameter model, this server has %d (model or seed changed?)",
			path, snap.ParamDim, dim)
	}
	if len(snap.Global) != dim || len(snap.GlobalDelta) != dim {
		return nil, fmt.Errorf("rpc: resume from %s: inconsistent vector lengths %d/%d vs dim %d",
			path, len(snap.Global), len(snap.GlobalDelta), dim)
	}
	if snap.CompletedRound < 0 || snap.CompletedRound >= s.cfg.Rounds {
		return nil, fmt.Errorf("rpc: resume from %s: completed round %d outside session of %d rounds",
			path, snap.CompletedRound, s.cfg.Rounds)
	}
	if snap.NumClients != s.cfg.NumClients || snap.Rounds != s.cfg.Rounds {
		s.cfg.Logf("server: resume: snapshot taken with %d clients / %d rounds, now %d / %d",
			snap.NumClients, snap.Rounds, s.cfg.NumClients, s.cfg.Rounds)
	}
	return snap, nil
}

// serverSelector applies Algorithm 1 + the fairness reservation over
// scores reported by remote clients. Client IDs are treated as an opaque
// sparse set — after evictions and re-joins they are not dense 0..n-1.
type serverSelector struct {
	cfg     core.Config
	lastSel map[int]int // client id -> last round it was selected
}

func newServerSelector(cfg core.Config) *serverSelector {
	return &serverSelector{cfg: cfg, lastSel: map[int]int{}}
}

func (s *serverSelector) last(id int) int {
	if r, ok := s.lastSel[id]; ok {
		return r
	}
	return -1
}

// plan maps selected client id → compression ratio.
func (s *serverSelector) plan(round int, scores map[int]float64) map[int]float64 {
	out := map[int]float64{}
	if s.cfg.Compression.InWarmup(round) {
		for id := range scores {
			out[id] = s.cfg.Compression.WarmupRatio
			s.lastSel[id] = round
		}
		return out
	}
	// Dense projection of the sparse id set, sorted for determinism.
	ids := make([]int, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	vec := make([]float64, len(ids))
	for i, id := range ids {
		vec[i] = scores[id]
	}
	reserve := int(0.5 + s.cfg.ExploreFrac*float64(s.cfg.K))
	if reserve > s.cfg.K {
		reserve = s.cfg.K
	}
	var selected []core.ScoredClient
	if kTop := s.cfg.K - reserve; kTop >= 1 {
		selected = core.SelectClients(vec, kTop, s.cfg.Tau)
	}
	chosen := map[int]bool{} // dense index into ids
	for _, sc := range selected {
		chosen[sc.Client] = true
	}
	// Fairness reservation: fill the remaining slots with the clients
	// selected least recently.
	for slot := 0; slot < reserve && len(selected) < len(ids); slot++ {
		best := -1
		for i := range ids {
			if chosen[i] {
				continue
			}
			if best == -1 || s.last(ids[i]) < s.last(ids[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		chosen[best] = true
		selected = append(selected, core.ScoredClient{Client: best, Score: vec[best]})
	}
	for rank, sc := range selected {
		id := ids[sc.Client]
		out[id] = s.cfg.Compression.RatioForRank(rank, len(selected), round)
		s.lastSel[id] = round
	}
	// Fallback: with no fairness reservation (ExploreFrac 0) and every
	// score below τ, Algorithm 1 selects nobody. A zero-participant round
	// would burn a round of the budget without moving the model (and any
	// engine dividing by the participant weight sum would see 0/0), so
	// fall back to warm-up-style full participation at the warm-up ratio
	// — the same defined behaviour the session starts with.
	if len(out) == 0 {
		for id := range scores {
			out[id] = s.cfg.Compression.WarmupRatio
			s.lastSel[id] = round
		}
	}
	return out
}

func nan() float64 { return math.NaN() }
