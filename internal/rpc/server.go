package rpc

import (
	"fmt"
	"log"
	"math"
	"net"
	"sync"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/tensor"
)

// ServerConfig configures a federation server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":7070".
	Addr string
	// NumClients is how many registrations to wait for before round 1.
	NumClients int
	// Rounds is the training budget.
	Rounds int
	// Cfg is the AdaFL configuration (selection + compression).
	Cfg core.Config
	// NewModel builds the shared architecture.
	NewModel func() *nn.Model
	// Test, when non-nil, is evaluated after every EvalEvery rounds.
	Test      *dataset.Dataset
	EvalEvery int
	// Logf receives progress lines (log.Printf if nil).
	Logf func(format string, args ...interface{})
}

// RoundRecord is the server's per-round log entry.
type RoundRecord struct {
	Round    int
	Selected int
	Received int
	TestAcc  float64
	Bytes    int64
}

// ServerResult summarises a completed session.
type ServerResult struct {
	Rounds   []RoundRecord
	FinalAcc float64
	// BytesReceived is the total uplink volume across all clients.
	BytesReceived int64
}

// Server drives synchronous AdaFL over TCP.
type Server struct {
	cfg      ServerConfig
	listener net.Listener

	mu      sync.Mutex
	clients map[int]*clientConn
}

type clientConn struct {
	id      int
	conn    *Conn
	samples int
}

// NewServer binds the listen socket (so callers know the port before
// clients dial) and returns the server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("rpc: need positive NumClients and Rounds")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, listener: ln, clients: map[int]*clientConn{}}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Run accepts NumClients registrations, executes the configured rounds,
// shuts the clients down and returns the session result.
func (s *Server) Run() (*ServerResult, error) {
	defer s.listener.Close()
	if err := s.acceptAll(); err != nil {
		return nil, err
	}

	model := s.cfg.NewModel()
	global := model.ParamVector()
	globalDelta := make([]float64, len(global))
	totalSamples := 0
	for _, c := range s.clients {
		totalSamples += c.samples
	}

	res := &ServerResult{}
	planner := newServerSelector(s.cfg.Cfg, s.cfg.NumClients)
	for round := 0; round < s.cfg.Rounds; round++ {
		rec, err := s.runRound(round, planner, model, global, globalDelta, totalSamples)
		if err != nil {
			return res, err
		}
		res.Rounds = append(res.Rounds, rec)
		res.BytesReceived = rec.Bytes
		if rec.TestAcc == rec.TestAcc && rec.TestAcc > 0 {
			res.FinalAcc = rec.TestAcc
		}
	}
	s.shutdown(fmt.Sprintf("done: %d rounds, final acc %.3f", s.cfg.Rounds, res.FinalAcc))
	return res, nil
}

func (s *Server) acceptAll() error {
	for len(s.clients) < s.cfg.NumClients {
		raw, err := s.listener.Accept()
		if err != nil {
			return err
		}
		conn := NewConn(raw, nil)
		hello, err := conn.Recv()
		if err != nil || hello.Type != MsgHello {
			raw.Close()
			return fmt.Errorf("rpc: bad hello: %v", err)
		}
		if _, dup := s.clients[hello.ClientID]; dup {
			raw.Close()
			return fmt.Errorf("rpc: duplicate client id %d", hello.ClientID)
		}
		s.clients[hello.ClientID] = &clientConn{id: hello.ClientID, conn: conn, samples: hello.NumSamples}
		s.cfg.Logf("server: client %d registered (%d samples)", hello.ClientID, hello.NumSamples)
	}
	return nil
}

func (s *Server) runRound(round int, sel *serverSelector, model *nn.Model,
	global, globalDelta []float64, totalSamples int) (RoundRecord, error) {
	rec := RoundRecord{Round: round, TestAcc: nan()}

	// 1. Broadcast the model + previous global delta.
	for _, c := range s.clients {
		err := c.conn.Send(&Envelope{Type: MsgModel, Round: round, Params: global, GlobalDelta: globalDelta})
		if err != nil {
			return rec, err
		}
	}
	// 2. Collect utility scores.
	scores := make(map[int]float64, len(s.clients))
	for _, c := range s.clients {
		e, err := c.conn.Recv()
		if err != nil || e.Type != MsgScore {
			return rec, fmt.Errorf("rpc: expected score from %d: %v", c.id, err)
		}
		scores[e.ClientID] = e.Score
	}
	// 3. Select and notify.
	plan := sel.plan(round, scores)
	rec.Selected = len(plan)
	for id, c := range s.clients {
		ratio, ok := plan[id]
		if !ok {
			ratio = 0
		}
		if err := c.conn.Send(&Envelope{Type: MsgSelect, Round: round, Ratio: ratio}); err != nil {
			return rec, err
		}
	}
	// 4. Collect updates from selected clients and aggregate (FedAvg).
	agg := make([]float64, len(global))
	weightSum := 0.0
	for id := range plan {
		c := s.clients[id]
		e, err := c.conn.Recv()
		if err != nil || e.Type != MsgUpdate || e.Update == nil {
			return rec, fmt.Errorf("rpc: expected update from %d: %v", id, err)
		}
		w := float64(c.samples) / float64(totalSamples)
		e.Update.AddTo(agg, w)
		weightSum += w
		rec.Received++
	}
	before := tensor.CopyVec(global)
	if weightSum > 0 {
		tensor.Axpy(1/weightSum, agg, global)
	}
	tensor.SubVec(globalDelta, global, before)

	// 5. Evaluate.
	if s.cfg.Test != nil && (round+1)%s.cfg.EvalEvery == 0 {
		model.SetParamVector(global)
		acc, _ := model.EvaluateBatched(s.cfg.Test.X, s.cfg.Test.Labels, 64)
		rec.TestAcc = acc
		s.cfg.Logf("server: round %d acc=%.3f selected=%d", round+1, acc, rec.Selected)
	}
	var bytes int64
	for _, c := range s.clients {
		bytes += c.conn.BytesReceived()
	}
	rec.Bytes = bytes
	return rec, nil
}

func (s *Server) shutdown(info string) {
	for _, c := range s.clients {
		c.conn.Send(&Envelope{Type: MsgShutdown, Info: info})
		c.conn.Close()
	}
}

// serverSelector applies Algorithm 1 + the fairness reservation over
// scores reported by remote clients.
type serverSelector struct {
	cfg     core.Config
	lastSel []int
}

func newServerSelector(cfg core.Config, n int) *serverSelector {
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	return &serverSelector{cfg: cfg, lastSel: last}
}

// plan maps selected client id → compression ratio.
func (s *serverSelector) plan(round int, scores map[int]float64) map[int]float64 {
	n := len(scores)
	out := map[int]float64{}
	if s.cfg.Compression.InWarmup(round) {
		for id := range scores {
			out[id] = s.cfg.Compression.WarmupRatio
			s.lastSel[id] = round
		}
		return out
	}
	vec := make([]float64, n)
	for id, sc := range scores {
		vec[id] = sc
	}
	reserve := int(0.5 + s.cfg.ExploreFrac*float64(s.cfg.K))
	if reserve > s.cfg.K {
		reserve = s.cfg.K
	}
	var selected []core.ScoredClient
	if kTop := s.cfg.K - reserve; kTop >= 1 {
		selected = core.SelectClients(vec, kTop, s.cfg.Tau)
	}
	chosen := map[int]bool{}
	for _, sc := range selected {
		chosen[sc.Client] = true
	}
	for slot := 0; slot < reserve; slot++ {
		best := -1
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			if best == -1 || s.lastSel[i] < s.lastSel[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		chosen[best] = true
		selected = append(selected, core.ScoredClient{Client: best, Score: vec[best]})
	}
	for rank, sc := range selected {
		out[sc.Client] = s.cfg.Compression.RatioForRank(rank, len(selected), round)
		s.lastSel[sc.Client] = round
	}
	return out
}

func nan() float64 { return math.NaN() }
