package rpc

import (
	"testing"
	"time"

	"adafl/internal/stats"
)

// TestBackoffFullJitterSpread: waits drawn from one window must cover
// the window rather than cluster — the property that de-synchronises a
// client fleet redialling a restarted server.
func TestBackoffFullJitterSpread(t *testing.T) {
	const window = 100 * time.Millisecond
	b := NewRetryBackoff(window, window, stats.NewRNG(7))
	const n = 400
	var sum time.Duration
	distinct := map[time.Duration]bool{}
	low, high := 0, 0
	for i := 0; i < n; i++ {
		b.Reset() // hold the window fixed; sample only the jitter
		w := b.Next()
		if w < 0 || w >= window {
			t.Fatalf("wait %v outside [0, %v)", w, window)
		}
		sum += w
		distinct[w] = true
		if w < window/4 {
			low++
		}
		if w > 3*window/4 {
			high++
		}
	}
	mean := sum / n
	if mean < 3*window/10 || mean > 7*window/10 {
		t.Fatalf("jitter mean %v far from window/2 (%v)", mean, window/2)
	}
	if len(distinct) < n/2 {
		t.Fatalf("only %d distinct waits out of %d: not jittered", len(distinct), n)
	}
	// Both tails of the window must actually be used.
	if low < n/20 || high < n/20 {
		t.Fatalf("jitter avoids the window tails: %d low, %d high of %d", low, high, n)
	}
}

// TestBackoffWindowDoublesAndCaps: without jitter the schedule is the
// plain exponential sequence, capped, and reset() restarts it.
func TestBackoffWindowDoublesAndCaps(t *testing.T) {
	b := NewRetryBackoff(100*time.Millisecond, 400*time.Millisecond, nil)
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: wait %v, want %v", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after reset: wait %v, want 100ms", got)
	}
}

// TestBackoffClientsDesynchronised: two clients with different seeds
// must not share a redial schedule.
func TestBackoffClientsDesynchronised(t *testing.T) {
	a := NewRetryBackoff(time.Second, time.Second, stats.NewRNG(1).Split())
	b := NewRetryBackoff(time.Second, time.Second, stats.NewRNG(2).Split())
	same := 0
	const n = 100
	for i := 0; i < n; i++ {
		a.Reset()
		b.Reset()
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > n/10 {
		t.Fatalf("%d of %d redial waits identical across clients", same, n)
	}
}
