package rpc

import (
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"adafl/internal/obs"
)

// parseExposition validates every line of a Prometheus text exposition
// and returns sample name → value. Histogram series keep their label
// block (e.g. `adafl_round_seconds_bucket{le="+Inf"}`) as part of the key.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Errorf("bad TYPE line %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("sample line without value: %q", line)
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		samples[line[:i]] = v
	}
	return samples
}

// TestObservabilityEndToEnd is the acceptance scenario for the
// observability layer: a chaos-style session with metrics and the event
// log enabled — including one client killed mid-session for a real
// eviction — must expose a parseable /metrics endpoint whose counters
// agree with the session result, and a JSONL event log whose per-round
// records match the server's RoundRecord history.
func TestObservabilityEndToEnd(t *testing.T) {
	const rounds = 6
	env := newChaosEnv(3, 400, 12, 16, 21)

	reg := obs.NewRegistry()
	logPath := filepath.Join(t.TempDir(), "events.jsonl")
	events, err := obs.OpenEventLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	dbg, err := obs.NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	scfg := env.serverConfig(rounds)
	scfg.Metrics = reg
	scfg.Events = events
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := make([]ClientConfig, env.clients)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
		cfgs[i].Metrics = reg // shared registry: client metrics ride along
	}
	// Client 2's link dies permanently once it has sent a few KB —
	// enough for registration and an early upload, then a hard cut.
	cfgs[2].Fault = &FaultConfig{CutAfterBytes: 4000}
	cfgs[2].MaxRetries = 0

	clientsDone := make(chan struct{})
	go func() { runClients(cfgs); close(clientsDone) }()
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	<-clientsDone
	if err := events.Close(); err != nil {
		t.Fatalf("event log close: %v", err)
	}
	if len(res.Rounds) != rounds {
		t.Fatalf("session ran %d of %d rounds", len(res.Rounds), rounds)
	}
	if res.Evictions == 0 {
		t.Fatal("cut client was never evicted; scenario lost its fault")
	}

	// --- /metrics over real HTTP ---
	resp, err := http.Get("http://" + dbg.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	samples := parseExposition(t, string(body))

	if got := samples["adafl_rounds_total"]; got != float64(len(res.Rounds)) {
		t.Errorf("adafl_rounds_total = %v, want %d", got, len(res.Rounds))
	}
	if got := samples["adafl_evictions_total"]; got != float64(res.Evictions) {
		t.Errorf("adafl_evictions_total = %v, want %d", got, res.Evictions)
	}
	if got := samples["adafl_quarantines_total"]; got != float64(len(res.Quarantines)) {
		t.Errorf("adafl_quarantines_total = %v, want %d", got, len(res.Quarantines))
	}
	if got := samples[`adafl_bytes_total{dir="up"}`]; got != float64(res.BytesReceived) {
		t.Errorf(`adafl_bytes_total{dir="up"} = %v, want %d`, got, res.BytesReceived)
	}
	if samples[`adafl_bytes_total{dir="down"}`] <= 0 {
		t.Error("no downlink bytes recorded")
	}
	if samples["adafl_registrations_total"] < float64(env.clients) {
		t.Errorf("registrations = %v, want ≥ %d", samples["adafl_registrations_total"], env.clients)
	}
	if samples["adafl_round_seconds_count"] != float64(rounds) {
		t.Errorf("round latency histogram count = %v, want %d", samples["adafl_round_seconds_count"], rounds)
	}
	if samples["adafl_utility_score_count"] <= 0 {
		t.Error("utility-score histogram is empty")
	}
	if samples["adafl_compression_ratio_count"] <= 0 {
		t.Error("compression-ratio histogram is empty")
	}
	if samples["adafl_client_redials_total"] != 0 && samples["adafl_client_bytes_sent_total"] <= 0 {
		t.Error("client metrics inconsistent")
	}
	if got := samples["adafl_connections"]; got != 0 {
		t.Errorf("adafl_connections = %v after shutdown, want 0", got)
	}
	// Every client in this session negotiates the binary codec.
	if samples[`adafl_wire_messages_total{codec="binary"}`] <= 0 {
		t.Error("no messages attributed to the binary codec")
	}
	if got := samples[`adafl_wire_messages_total{codec="gob"}`]; got != 0 {
		t.Errorf(`adafl_wire_messages_total{codec="gob"} = %v on an all-binary fleet`, got)
	}
	if !math.IsNaN(res.FinalAcc) {
		if got := samples["adafl_round_accuracy"]; math.Abs(got-res.FinalAcc) > 1e-9 {
			t.Errorf("adafl_round_accuracy = %v, want %v", got, res.FinalAcc)
		}
	}

	// --- /healthz ---
	hres, err := http.Get("http://" + dbg.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", hres.StatusCode)
	}

	// --- JSONL event log vs RoundRecord history ---
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	byType := map[string][]obs.Event{}
	for _, ev := range evs {
		byType[ev.Type] = append(byType[ev.Type], ev)
	}
	if len(byType["selection"]) != rounds || len(byType["aggregate"]) != rounds {
		t.Errorf("selection/aggregate events: %d/%d, want %d each",
			len(byType["selection"]), len(byType["aggregate"]), rounds)
	}
	if len(byType["evict"]) != res.Evictions {
		t.Errorf("evict events: %d, want %d", len(byType["evict"]), res.Evictions)
	}
	roundEvents := byType["round"]
	if len(roundEvents) != len(res.Rounds) {
		t.Fatalf("round events: %d, want %d", len(roundEvents), len(res.Rounds))
	}
	totalUpdates := 0
	for i, rec := range res.Rounds {
		ev := roundEvents[i]
		if ev.Round != rec.Round || ev.Clients != rec.Clients || ev.Selected != rec.Selected ||
			ev.Received != rec.Received || ev.Evicted != rec.Evicted ||
			ev.Quarantined != rec.Quarantined || ev.Bytes != rec.Bytes {
			t.Errorf("round %d: event %+v does not match record %+v", rec.Round, ev, rec)
		}
		switch {
		case math.IsNaN(rec.TestAcc):
			if ev.Acc != nil {
				t.Errorf("round %d: acc %v for a NaN record", rec.Round, *ev.Acc)
			}
		case ev.Acc == nil:
			t.Errorf("round %d: missing acc (record has %v)", rec.Round, rec.TestAcc)
		case *ev.Acc != rec.TestAcc:
			t.Errorf("round %d: acc %v, want %v", rec.Round, *ev.Acc, rec.TestAcc)
		}
		if ev.TS == "" {
			t.Errorf("round %d: event missing timestamp", rec.Round)
		}
		totalUpdates += rec.Received
	}
	if len(byType["update"]) < totalUpdates {
		t.Errorf("update events: %d, want ≥ %d aggregated updates", len(byType["update"]), totalUpdates)
	}
	for _, sel := range byType["selection"] {
		if len(sel.Ratios) == 0 {
			t.Errorf("round %d: selection event without ratio assignments", sel.Round)
		}
	}
}
