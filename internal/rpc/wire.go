package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"adafl/internal/compress"
)

// Binary wire protocol (negotiated at connect time; gob is the fallback
// so old peers interoperate — see DESIGN.md §Wire protocol):
//
//	frame    := u32 LE payload-length | payload
//	payload  := u8 type | u8 flags(0) | i32 LE clientID | i32 LE round | body
//	body     :=                                 (per type)
//	  Hello     i32 LE numSamples
//	            | [u8 sessionLen | session name]                 (multi-session)
//	  Welcome   (empty)
//	  Score     f64 LE score
//	  Select    f64 LE ratio
//	            | [u8 codecLen | codec name | u32 LE levels]   (negotiated)
//	  Update    sparse section (see internal/compress wire layout)
//	  Shutdown  u32 LE len | UTF-8 info
//	  Model     u32 LE nParams | u32 LE nDelta | nParams × f64 | nDelta × f64
//	  Ping      i32 LE numSamples (progress count)
//	  EdgeHello i32 LE numSamples | u32 LE len | info | u32 LE len | region
//	  EdgePartial i32 LE numSamples | f64 LE weightSum | u32 LE n | n × f64
//	  Reroute   u32 LE len | UTF-8 info (the assigned edge's address)
//	  AsyncPull (empty — round field is ignored; the reply's Round is the
//	            global model version)
//	  AsyncPush sparse section (round field = the model version the delta
//	            was trained from)
//
// The length prefix excludes its own 4 bytes. Explicit framing is what
// makes receive-side accounting exact: a Conn reads exactly 4+len bytes
// per message, never a block of read-ahead, so the bytes{dir} counters
// and the per-message size cap have no gob-bufio slack (the caveat the
// gob path documents in protocol.go).
//
// Negotiation: a binary-capable client opens with the 4-byte preamble
// {0xAD, 0xF1, 0x77, version}. A gob stream can never begin with 0xAD
// (gob's first byte is a message byte count: < 0x80 for small counts or
// >= 0xF8 for the negated-length marker), so the server distinguishes the
// codecs from the first byte alone. A binary-accepting server consumes
// the preamble and echoes it as the acknowledgement; a gob-only server
// (or a pre-binary build) treats the preamble as a corrupt gob stream and
// drops the connection, and the client redials speaking plain gob.

// Wire codec names (ClientConfig.Wire / ServerConfig.Wire / -wire flag).
const (
	WireBinary = "binary"
	WireGob    = "gob"
)

const (
	wireMagic0  = 0xAD
	wireMagic1  = 0xF1
	wireMagic2  = 0x77
	wireVersion = 1
)

// wirePreamble is the client's codec-upgrade request and, echoed back,
// the server's acknowledgement.
var wirePreamble = [4]byte{wireMagic0, wireMagic1, wireMagic2, wireVersion}

// envHeaderBytes is the fixed payload prefix: type, flags, clientID, round.
const envHeaderBytes = 10

// wireChunkBytes sizes the per-connection scratch used to convert float
// runs to wire bytes in bounded pieces. Streaming through the chunk (and
// bufio) instead of materialising whole frames keeps a connection's
// steady-state memory at a few KB even when broadcasting multi-MB models.
const wireChunkBytes = 4096

// defaultWireBufSize is the send-side bufio buffer of a binary Conn.
const defaultWireBufSize = 32 << 10

// errWireFrame marks structurally invalid binary frames (truncation,
// length/body mismatch, unknown message type).
var errWireFrame = fmt.Errorf("rpc: malformed binary frame")

// wirePayloadSize returns the exact encoded payload length of e.
func (e *Envelope) wirePayloadSize() (int, error) {
	n := envHeaderBytes
	switch e.Type {
	case MsgHello:
		n += 4
		if e.Session != "" {
			// Multi-session extension: u8 sessionLen | name. An empty
			// session keeps the legacy 4-byte body so pre-session decoders
			// still accept the frame.
			if len(e.Session) > 255 {
				return 0, fmt.Errorf("rpc: send hello with %d-byte session name", len(e.Session))
			}
			n += 1 + len(e.Session)
		}
	case MsgWelcome:
	case MsgScore:
		n += 8
	case MsgSelect:
		n += 8
		if e.Codec != "" || e.Levels != 0 {
			// Negotiated extension: u8 codecLen | name | u32 levels. A
			// zero-valued assignment keeps the legacy 8-byte body so
			// pre-negotiation decoders still accept the frame.
			if len(e.Codec) > 255 {
				return 0, fmt.Errorf("rpc: send select with %d-byte codec name", len(e.Codec))
			}
			n += 1 + len(e.Codec) + 4
		}
	case MsgShutdown:
		n += 4 + len(e.Info)
	case MsgModel:
		n += 8 + 8*(len(e.Params)+len(e.GlobalDelta))
	case MsgUpdate:
		if e.Update == nil {
			return 0, fmt.Errorf("rpc: send update without payload")
		}
		n += e.Update.BinaryWireSize()
	case MsgPing:
		n += 4
	case MsgEdgeHello:
		n += 4 + 4 + len(e.Info) + 4 + len(e.Region)
	case MsgEdgePartial:
		n += 4 + 8 + 4 + 8*len(e.Params)
	case MsgReroute:
		n += 4 + len(e.Info)
	case MsgAsyncPull:
	case MsgAsyncPush:
		if e.Update == nil {
			return 0, fmt.Errorf("rpc: send async push without payload")
		}
		n += e.Update.BinaryWireSize()
	default:
		return 0, fmt.Errorf("rpc: send unknown message type %v", e.Type)
	}
	return n, nil
}

// sendBinary writes one length-prefixed binary frame. Steady-state sends
// of every message type are allocation-free: the frame header and scalar
// bodies go through the connection's fixed header scratch, float runs
// stream through the chunk scratch, and bufio batches the socket writes.
func (c *Conn) sendBinary(e *Envelope) error {
	size, err := e.wirePayloadSize()
	if err != nil {
		return err
	}
	h := c.sendHdr[:0]
	h = binary.LittleEndian.AppendUint32(h, uint32(size))
	h = append(h, byte(e.Type), 0)
	h = binary.LittleEndian.AppendUint32(h, uint32(int32(e.ClientID)))
	h = binary.LittleEndian.AppendUint32(h, uint32(int32(e.Round)))
	switch e.Type {
	case MsgHello:
		h = binary.LittleEndian.AppendUint32(h, uint32(int32(e.NumSamples)))
		if e.Session != "" {
			h = append(h, byte(len(e.Session)))
			h = append(h, e.Session...)
		}
	case MsgScore:
		h = binary.LittleEndian.AppendUint64(h, math.Float64bits(e.Score))
	case MsgSelect:
		h = binary.LittleEndian.AppendUint64(h, math.Float64bits(e.Ratio))
		if e.Codec != "" || e.Levels != 0 {
			h = append(h, byte(len(e.Codec)))
			h = append(h, e.Codec...)
			h = binary.LittleEndian.AppendUint32(h, uint32(int32(e.Levels)))
		}
	case MsgShutdown:
		h = binary.LittleEndian.AppendUint32(h, uint32(len(e.Info)))
	case MsgModel:
		h = binary.LittleEndian.AppendUint32(h, uint32(len(e.Params)))
		h = binary.LittleEndian.AppendUint32(h, uint32(len(e.GlobalDelta)))
	case MsgPing:
		h = binary.LittleEndian.AppendUint32(h, uint32(int32(e.NumSamples)))
	case MsgEdgeHello:
		h = binary.LittleEndian.AppendUint32(h, uint32(int32(e.NumSamples)))
		h = binary.LittleEndian.AppendUint32(h, uint32(len(e.Info)))
	case MsgEdgePartial:
		h = binary.LittleEndian.AppendUint32(h, uint32(int32(e.NumSamples)))
		h = binary.LittleEndian.AppendUint64(h, math.Float64bits(e.WeightSum))
		h = binary.LittleEndian.AppendUint32(h, uint32(len(e.Params)))
	case MsgReroute:
		h = binary.LittleEndian.AppendUint32(h, uint32(len(e.Info)))
	}
	c.sendHdr = h[:0] // keep any growth for the next send
	if _, err := c.bw.Write(h); err != nil {
		return err
	}
	switch e.Type {
	case MsgShutdown:
		if _, err := c.bw.WriteString(e.Info); err != nil {
			return err
		}
	case MsgModel:
		if err := c.writeF64s(e.Params); err != nil {
			return err
		}
		if err := c.writeF64s(e.GlobalDelta); err != nil {
			return err
		}
	case MsgUpdate:
		if err := e.Update.EncodeBinaryTo(c.bw, c.chunk); err != nil {
			return err
		}
	case MsgEdgeHello:
		if _, err := c.bw.WriteString(e.Info); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(c.chunk, uint32(len(e.Region)))
		if _, err := c.bw.Write(c.chunk[:4]); err != nil {
			return err
		}
		if _, err := c.bw.WriteString(e.Region); err != nil {
			return err
		}
	case MsgEdgePartial:
		if err := c.writeF64s(e.Params); err != nil {
			return err
		}
	case MsgReroute:
		if _, err := c.bw.WriteString(e.Info); err != nil {
			return err
		}
	case MsgAsyncPush:
		if err := e.Update.EncodeBinaryTo(c.bw, c.chunk); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// writeF64s streams vals through the chunk scratch.
func (c *Conn) writeF64s(vals []float64) error {
	for off := 0; off < len(vals); {
		n := len(vals) - off
		if m := len(c.chunk) / 8; n > m {
			n = m
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(c.chunk[8*i:], math.Float64bits(vals[off+i]))
		}
		if _, err := c.bw.Write(c.chunk[:8*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// recvBinary reads exactly one frame. With fresh=false (RecvInto) the
// decoded slices and the Update payload live in connection-owned scratch,
// valid until the next RecvInto on this connection; with fresh=true
// (Recv) they are freshly allocated and safe to retain.
func (c *Conn) recvBinary(e *Envelope, fresh bool) error {
	if _, err := io.ReadFull(c.cr, c.hdr4[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: connection cut mid-length-prefix", errWireFrame)
		}
		return err // clean EOF or a real socket error
	}
	n := int64(binary.LittleEndian.Uint32(c.hdr4[:]))
	if c.maxMsg > 0 && n+4 > c.maxMsg {
		// Exact cap: judged from the declared frame size before a single
		// payload byte is read or allocated.
		return fmt.Errorf("%w (cap %d bytes): %d-byte frame", ErrMessageTooLarge, c.maxMsg, n+4)
	}
	if n < envHeaderBytes {
		return fmt.Errorf("%w: %d-byte payload, header needs %d", errWireFrame, n, envHeaderBytes)
	}
	if int64(cap(c.recvBuf)) < n {
		c.recvBuf = make([]byte, n)
	}
	p := c.recvBuf[:n]
	if m, err := io.ReadFull(c.cr, p); err != nil {
		return fmt.Errorf("%w: connection cut %d bytes into a %d-byte payload: %v",
			errWireFrame, m, n, err)
	}
	return c.decodeFrame(e, p, fresh)
}

func (c *Conn) decodeFrame(e *Envelope, p []byte, fresh bool) error {
	*e = Envelope{
		Type:     MsgType(p[0]),
		ClientID: int(int32(binary.LittleEndian.Uint32(p[2:]))),
		Round:    int(int32(binary.LittleEndian.Uint32(p[6:]))),
	}
	body := p[envHeaderBytes:]
	need := func(n int) error {
		if len(body) != n {
			return fmt.Errorf("%w: %v body of %d bytes, want %d", errWireFrame, e.Type, len(body), n)
		}
		return nil
	}
	switch e.Type {
	case MsgHello:
		if len(body) < 4 {
			return fmt.Errorf("%w: hello body of %d bytes", errWireFrame, len(body))
		}
		e.NumSamples = int(int32(binary.LittleEndian.Uint32(body)))
		if len(body) > 4 {
			// Multi-session extension: u8 sessionLen | name.
			sl := int(body[4])
			if err := needN(e.Type, body[5:], int64(sl)); err != nil {
				return err
			}
			e.Session = string(body[5 : 5+sl])
		}
	case MsgWelcome:
		return need(0)
	case MsgScore:
		if err := need(8); err != nil {
			return err
		}
		e.Score = math.Float64frombits(binary.LittleEndian.Uint64(body))
	case MsgSelect:
		if len(body) < 8 {
			return fmt.Errorf("%w: select body of %d bytes", errWireFrame, len(body))
		}
		e.Ratio = math.Float64frombits(binary.LittleEndian.Uint64(body))
		if len(body) > 8 {
			// Negotiated extension: u8 codecLen | name | u32 levels.
			cl := int(body[8])
			if err := needN(e.Type, body[9:], int64(cl)+4); err != nil {
				return err
			}
			e.Codec = string(body[9 : 9+cl])
			e.Levels = int(int32(binary.LittleEndian.Uint32(body[9+cl:])))
			if e.Levels < 0 {
				return fmt.Errorf("%w: select declares %d quantization levels", errWireFrame, e.Levels)
			}
		}
	case MsgShutdown:
		if len(body) < 4 {
			return fmt.Errorf("%w: shutdown body of %d bytes", errWireFrame, len(body))
		}
		l := binary.LittleEndian.Uint32(body)
		if err := needN(e.Type, body[4:], int64(l)); err != nil {
			return err
		}
		e.Info = string(body[4 : 4+l])
	case MsgModel:
		if len(body) < 8 {
			return fmt.Errorf("%w: model body of %d bytes", errWireFrame, len(body))
		}
		np := binary.LittleEndian.Uint32(body)
		nd := binary.LittleEndian.Uint32(body[4:])
		if err := needN(e.Type, body[8:], 8*(int64(np)+int64(nd))); err != nil {
			return err
		}
		rest := body[8:]
		if fresh {
			e.Params = makeF64s(nil, int(np))
			e.GlobalDelta = makeF64s(nil, int(nd))
		} else {
			c.recvParams = makeF64s(c.recvParams, int(np))
			c.recvDelta = makeF64s(c.recvDelta, int(nd))
			e.Params, e.GlobalDelta = c.recvParams, c.recvDelta
		}
		readF64s(e.Params, rest)
		readF64s(e.GlobalDelta, rest[8*np:])
	case MsgUpdate:
		var sp *compress.Sparse
		if fresh {
			sp = &compress.Sparse{}
		} else {
			if c.recvSparse == nil {
				c.recvSparse = &compress.Sparse{}
			}
			sp = c.recvSparse
		}
		if err := sp.DecodeBinaryInto(body); err != nil {
			return fmt.Errorf("%w: %v", errWireFrame, err)
		}
		e.Update = sp
	case MsgPing:
		if err := need(4); err != nil {
			return err
		}
		e.NumSamples = int(int32(binary.LittleEndian.Uint32(body)))
	case MsgEdgeHello:
		if len(body) < 8 {
			return fmt.Errorf("%w: edge-hello body of %d bytes", errWireFrame, len(body))
		}
		e.NumSamples = int(int32(binary.LittleEndian.Uint32(body)))
		il := int64(binary.LittleEndian.Uint32(body[4:]))
		rest := body[8:]
		if il > int64(len(rest))-4 || il < 0 {
			return fmt.Errorf("%w: edge-hello declares a %d-byte address in a %d-byte body", errWireFrame, il, len(rest))
		}
		e.Info = string(rest[:il])
		rl := int64(binary.LittleEndian.Uint32(rest[il:]))
		if err := needN(e.Type, rest[il+4:], rl); err != nil {
			return err
		}
		e.Region = string(rest[il+4:])
	case MsgEdgePartial:
		if len(body) < 16 {
			return fmt.Errorf("%w: edge-partial body of %d bytes", errWireFrame, len(body))
		}
		e.NumSamples = int(int32(binary.LittleEndian.Uint32(body)))
		e.WeightSum = math.Float64frombits(binary.LittleEndian.Uint64(body[4:]))
		np := binary.LittleEndian.Uint32(body[12:])
		if err := needN(e.Type, body[16:], 8*int64(np)); err != nil {
			return err
		}
		if fresh {
			e.Params = makeF64s(nil, int(np))
		} else {
			c.recvParams = makeF64s(c.recvParams, int(np))
			e.Params = c.recvParams
		}
		readF64s(e.Params, body[16:])
	case MsgReroute:
		if len(body) < 4 {
			return fmt.Errorf("%w: reroute body of %d bytes", errWireFrame, len(body))
		}
		l := binary.LittleEndian.Uint32(body)
		if err := needN(e.Type, body[4:], int64(l)); err != nil {
			return err
		}
		e.Info = string(body[4 : 4+l])
	case MsgAsyncPull:
		return need(0)
	case MsgAsyncPush:
		var sp *compress.Sparse
		if fresh {
			sp = &compress.Sparse{}
		} else {
			if c.recvSparse == nil {
				c.recvSparse = &compress.Sparse{}
			}
			sp = c.recvSparse
		}
		if err := sp.DecodeBinaryInto(body); err != nil {
			return fmt.Errorf("%w: %v", errWireFrame, err)
		}
		e.Update = sp
	default:
		return fmt.Errorf("%w: unknown message type %d", errWireFrame, p[0])
	}
	return nil
}

// needN validates a variable-length body section against its declared
// count without letting a corrupt count drive an allocation.
func needN(t MsgType, rest []byte, want int64) error {
	if int64(len(rest)) != want {
		return fmt.Errorf("%w: %v body carries %d bytes, header declares %d", errWireFrame, t, len(rest), want)
	}
	return nil
}

// makeF64s returns a length-n slice, reusing buf's capacity when it
// suffices. n == 0 preserves nil-ness so binary and gob decodes agree.
func makeF64s(buf []float64, n int) []float64 {
	if n == 0 {
		return nil
	}
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func readF64s(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// clientNegotiate requests the binary codec on a freshly dialed
// connection: preamble out, acknowledgement back. false means the peer
// declined (a gob-only or pre-binary server has, by then, consumed the
// preamble as a corrupt gob stream and dropped the connection), and the
// caller must redial speaking gob.
func clientNegotiate(raw net.Conn, timeout time.Duration) bool {
	if timeout > 0 {
		raw.SetDeadline(time.Now().Add(timeout))
		defer raw.SetDeadline(time.Time{})
	}
	if _, err := raw.Write(wirePreamble[:]); err != nil {
		return false
	}
	var ack [4]byte
	if _, err := io.ReadFull(raw, ack[:]); err != nil {
		return false
	}
	return ack == wirePreamble
}

// serverNegotiate sniffs a freshly accepted connection and returns a Conn
// speaking the codec the client opened with. The first byte alone decides:
// 0xAD can only start a binary preamble (never a gob stream), anything
// else is replayed into a gob decoder. acceptBinary=false (Wire="gob")
// declines preambles by feeding them to gob — the resulting decode error
// closes the connection and the client falls back.
func serverNegotiate(raw net.Conn, acceptBinary bool) (*Conn, error) {
	var first [1]byte
	if _, err := io.ReadFull(raw, first[:]); err != nil {
		return nil, err
	}
	if first[0] != wireMagic0 || !acceptBinary {
		return NewConn(&prefixConn{Conn: raw, prefix: first[:]}, nil), nil
	}
	var rest [3]byte
	if _, err := io.ReadFull(raw, rest[:]); err != nil {
		return nil, err
	}
	if rest != [3]byte{wireMagic1, wireMagic2, wireVersion} {
		// Unknown preamble version (or garbage): decline by dropping the
		// connection; the client's fallback redial speaks plain gob.
		return nil, fmt.Errorf("rpc: unsupported wire preamble %x%x", first, rest)
	}
	if _, err := raw.Write(wirePreamble[:]); err != nil {
		return nil, err
	}
	return NewBinaryConn(raw, nil), nil
}

// Accept negotiates the codec on a freshly accepted connection under the
// server-side wire policy: "" or WireBinary sniffs the client's opening
// byte and speaks whichever codec it opened with; WireGob declines binary
// preambles so the session runs gob. This is the handshake the federation
// server applies per connection, exported for the edge tier's listeners.
func Accept(raw net.Conn, wire string) (*Conn, error) {
	return serverNegotiate(raw, wire != WireGob)
}

// Dial connects to network/addr and negotiates the codec the way
// RunClient's dial path does: "" or WireBinary requests the binary codec
// and redials speaking gob when the peer declines (the peer consumed the
// preamble as a corrupt gob stream and dropped the connection); WireGob
// skips negotiation. timeout bounds each dial attempt (0 means 10s).
func Dial(network, addr, wire string, timeout time.Duration) (*Conn, error) {
	if wire != "" && wire != WireBinary && wire != WireGob {
		return nil, fmt.Errorf("rpc: unknown wire codec %q (want %q or %q)", wire, WireBinary, WireGob)
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	raw, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	if wire != WireGob {
		if clientNegotiate(raw, timeout) {
			return NewBinaryConn(raw, nil), nil
		}
		raw.Close()
		if raw, err = net.DialTimeout(network, addr, timeout); err != nil {
			return nil, err
		}
	}
	return NewConn(raw, nil), nil
}

// prefixConn replays sniffed bytes ahead of the wrapped connection.
type prefixConn struct {
	net.Conn
	prefix []byte
}

func (p *prefixConn) Read(b []byte) (int, error) {
	if len(p.prefix) > 0 {
		n := copy(b, p.prefix)
		p.prefix = p.prefix[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}
