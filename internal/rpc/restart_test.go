package rpc

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adafl/internal/checkpoint"
	"adafl/internal/stats"
)

// TestChaosKillRestartResume is the crash-recovery acceptance scenario:
// the server is killed (no farewells, listener and links torn down)
// after round killAfter, a new server process resumes from the
// checkpoint on the same address, the clients ride out the outage on
// their jittered redial loops, and the session finishes all configured
// rounds with a gapless history and accuracy near a fault-free run.
func TestChaosKillRestartResume(t *testing.T) {
	const (
		rounds    = 10
		killAfter = 4 // completed rounds before the simulated crash
	)
	env := newChaosEnv(4, 600, 16, 32, 71)

	// Fault-free baseline for the accuracy comparison.
	cleanSrv, err := NewServer(env.serverConfig(rounds))
	if err != nil {
		t.Fatal(err)
	}
	cleanCfgs := make([]ClientConfig, 4)
	for i := range cleanCfgs {
		cleanCfgs[i] = env.clientConfig(i, cleanSrv.Addr())
	}
	cleanDone := make(chan struct{})
	go func() { runClients(cleanCfgs); close(cleanDone) }()
	cleanRes, err := cleanSrv.Run()
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	<-cleanDone

	dir := t.TempDir()

	// First server: checkpoints every round, crashes after killAfter of
	// them. Its session RNG sits at a mid-stream position the snapshot
	// must capture.
	scfg1 := env.serverConfig(rounds)
	scfg1.CheckpointDir = dir
	rng1 := stats.NewRNG(5)
	for i := 0; i < 3; i++ {
		rng1.Uint64()
	}
	scfg1.RNG = rng1
	var srv1 *Server
	scfg1.OnRound = func(rec RoundRecord) {
		if rec.Round == killAfter-1 {
			srv1.Kill()
		}
	}
	srv1, err = NewServer(scfg1)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	cfgs := make([]ClientConfig, 4)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, addr)
		// Generous redial budget with small jittered backoff: the fleet
		// must outlive the dead-server window between crash and rebind.
		cfgs[i].MaxRetries = 100
		cfgs[i].RetryBackoff = 20 * time.Millisecond
	}
	type clientOut struct {
		res  []*ClientResult
		errs []error
	}
	outCh := make(chan clientOut, 1)
	go func() {
		r, e := runClients(cfgs)
		outCh <- clientOut{r, e}
	}()

	res1, err := srv1.Run()
	if !errors.Is(err, ErrServerKilled) {
		t.Fatalf("killed server returned %v, want ErrServerKilled", err)
	}
	if len(res1.Rounds) != killAfter {
		t.Fatalf("first server completed %d rounds, want %d", len(res1.Rounds), killAfter)
	}
	if _, err := os.Stat(filepath.Join(dir, "session.ckpt")); err != nil {
		t.Fatalf("no checkpoint on disk after the crash: %v", err)
	}

	// "Restart the process": a new server on the same address resuming
	// from the same checkpoint directory, with a fresh (unadvanced) RNG
	// whose position must come from the snapshot. The rebind retries
	// briefly in case the old listener's port lingers.
	scfg2 := env.serverConfig(rounds)
	scfg2.Addr = addr
	scfg2.CheckpointDir = dir
	scfg2.Resume = true
	rng2 := stats.NewRNG(5)
	scfg2.RNG = rng2
	var srv2 *Server
	for attempt := 0; ; attempt++ {
		srv2, err = NewServer(scfg2)
		if err == nil {
			break
		}
		if attempt >= 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res2, err := srv2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	out := <-outCh

	if res2.ResumedFrom != killAfter {
		t.Fatalf("ResumedFrom = %d, want %d", res2.ResumedFrom, killAfter)
	}
	if len(res2.Rounds) != rounds {
		t.Fatalf("resumed session ended with %d/%d rounds", len(res2.Rounds), rounds)
	}
	for i, rec := range res2.Rounds {
		if rec.Round != i {
			t.Fatalf("round history gap at index %d: record says round %d", i, rec.Round)
		}
	}
	// RNG position restored mid-stream: the resumed RNG must continue
	// the draw sequence exactly where the crashed process left it.
	ref := stats.NewRNG(5)
	for i := 0; i < 3; i++ {
		ref.Uint64()
	}
	if got, want := rng2.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("session RNG position not restored: next draw %d, want %d", got, want)
	}
	// Every client rode out the crash via redial and ended cleanly.
	for i, cerr := range out.errs {
		if cerr != nil {
			t.Errorf("client %d: %v", i, cerr)
		}
	}
	for i, r := range out.res {
		if r == nil || r.Reconnects == 0 {
			t.Errorf("client %d never reconnected across the restart", i)
		}
	}
	if res2.FinalAcc < 0.3 {
		t.Fatalf("resumed session did not learn: acc %.3f", res2.FinalAcc)
	}
	if res2.FinalAcc < cleanRes.FinalAcc-0.3 {
		t.Fatalf("resumed acc %.3f too far below clean acc %.3f", res2.FinalAcc, cleanRes.FinalAcc)
	}
}

// TestResumeCompletedSession: a crash that lands after the final round's
// checkpoint leaves nothing to train. The resumed server must report the
// finished session immediately instead of blocking on a quorum that will
// never re-form.
func TestResumeCompletedSession(t *testing.T) {
	env := newChaosEnv(2, 160, 12, 16, 72)
	const rounds = 2
	dir := t.TempDir()
	scfg := env.serverConfig(rounds)
	scfg.CheckpointDir = dir
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, 2)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	done := make(chan struct{})
	go func() { runClients(cfgs); close(done) }()
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	<-done

	scfg2 := env.serverConfig(rounds)
	scfg2.CheckpointDir = dir
	scfg2.Resume = true
	srv2, err := NewServer(scfg2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res2, err := srv2.Run() // note: no clients dialing
	if err != nil {
		t.Fatalf("resume of completed session: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("completed-session resume took %v: it blocked on quorum", elapsed)
	}
	if len(res2.Rounds) != rounds {
		t.Fatalf("restored history has %d rounds, want %d", len(res2.Rounds), rounds)
	}
	if res2.ResumedFrom != rounds {
		t.Fatalf("ResumedFrom = %d, want %d", res2.ResumedFrom, rounds)
	}
	if res2.FinalAcc != res.FinalAcc {
		t.Fatalf("restored FinalAcc %.6f differs from original %.6f", res2.FinalAcc, res.FinalAcc)
	}
}

// TestResumeCorruptCheckpointIsFatal: a corrupt snapshot must abort the
// resume — silently training from scratch would masquerade as a resumed
// session.
func TestResumeCorruptCheckpointIsFatal(t *testing.T) {
	env := newChaosEnv(2, 160, 12, 16, 73)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "session.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	scfg := env.serverConfig(3)
	scfg.CheckpointDir = dir
	scfg.Resume = true
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.Run()
	if err == nil {
		t.Fatal("resume from corrupt checkpoint succeeded")
	}
	if !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("error %v does not wrap checkpoint.ErrCorrupt", err)
	}
}

// TestSyncDeltaCheckpointResume: the synchronous engine's delta-format
// checkpoints survive a kill/restart cycle — the resumed server restores
// round history and model from the chunked chain — and the format
// refusal matrix keeps delta and full snapshots from silently mixing.
func TestSyncDeltaCheckpointResume(t *testing.T) {
	const (
		rounds    = 6
		killAfter = 3
	)
	env := newChaosEnv(2, 240, 12, 16, 74)
	dir := t.TempDir()

	scfg1 := env.serverConfig(rounds)
	scfg1.CheckpointDir = dir
	scfg1.DeltaCheckpoints = true
	var srv1 *Server
	scfg1.OnRound = func(rec RoundRecord) {
		if rec.Round == killAfter-1 {
			srv1.Kill()
		}
	}
	srv1, err := NewServer(scfg1)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()
	cfgs := make([]ClientConfig, 2)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, addr)
		cfgs[i].MaxRetries = 100
		cfgs[i].RetryBackoff = 20 * time.Millisecond
	}
	clientsDone := make(chan struct{})
	go func() { runClients(cfgs); close(clientsDone) }()
	res1, err := srv1.Run()
	if !errors.Is(err, ErrServerKilled) {
		t.Fatalf("killed server returned %v, want ErrServerKilled", err)
	}
	if len(res1.Rounds) != killAfter {
		t.Fatalf("first server completed %d rounds, want %d", len(res1.Rounds), killAfter)
	}
	epochs, err := checkpoint.DeltaEpochs(dir)
	if err != nil || len(epochs) == 0 {
		t.Fatalf("no delta chain on disk after the crash: epochs %v, err %v", epochs, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "session.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("delta mode wrote a full snapshot too (stat err %v)", err)
	}

	// Refusal matrix: a delta chain must not resume with delta mode off.
	scfgBad := env.serverConfig(rounds)
	scfgBad.CheckpointDir = dir
	scfgBad.Resume = true
	srvBad, err := NewServer(scfgBad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvBad.Run(); err == nil {
		t.Fatal("full-snapshot mode resumed from a delta chain")
	}

	// And a full snapshot must not resume with delta mode on.
	fullDir := t.TempDir()
	if err := checkpoint.Save(filepath.Join(fullDir, "session.ckpt"), &struct{ X int }{1}); err != nil {
		t.Fatal(err)
	}
	scfgBad2 := env.serverConfig(rounds)
	scfgBad2.CheckpointDir = fullDir
	scfgBad2.DeltaCheckpoints = true
	scfgBad2.Resume = true
	srvBad2, err := NewServer(scfgBad2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvBad2.Run(); err == nil {
		t.Fatal("delta mode resumed from a full snapshot")
	}

	// The real restart: same address, delta mode, resume.
	scfg2 := env.serverConfig(rounds)
	scfg2.Addr = addr
	scfg2.CheckpointDir = dir
	scfg2.DeltaCheckpoints = true
	scfg2.Resume = true
	var srv2 *Server
	for attempt := 0; ; attempt++ {
		srv2, err = NewServer(scfg2)
		if err == nil {
			break
		}
		if attempt >= 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res2, err := srv2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	<-clientsDone
	if res2.ResumedFrom != killAfter {
		t.Fatalf("ResumedFrom = %d, want %d", res2.ResumedFrom, killAfter)
	}
	if len(res2.Rounds) != rounds {
		t.Fatalf("resumed session ended with %d/%d rounds", len(res2.Rounds), rounds)
	}
	for i, rec := range res2.Rounds {
		if rec.Round != i {
			t.Fatalf("round history gap at index %d: record says round %d", i, rec.Round)
		}
	}
}
