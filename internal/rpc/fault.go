package rpc

import (
	"errors"
	"flag"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adafl/internal/stats"
)

// FaultConfig describes the link faults to inject under a connection.
// Every chaos scenario the paper's resilience study cares about — slow
// links, lossy links, abrupt client death, truncated messages and network
// partitions — is expressible as a combination of these knobs, so the same
// wrapper drives both the chaos test suite and the cmd/flserver /
// cmd/flclient -fault-* flags.
type FaultConfig struct {
	// Latency is a fixed delay added before every socket write.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per write.
	Jitter time.Duration
	// Bandwidth caps write throughput in bytes/second (0 = unlimited).
	Bandwidth float64
	// DropProb is the per-write probability that the connection is killed,
	// emulating an abrupt device death or hard link loss.
	DropProb float64
	// CutAfterBytes hard-closes the connection once this many bytes have
	// been written — usually mid-message, leaving the peer a truncated gob
	// stream (0 = never).
	CutAfterBytes int64
	// Partition, when non-nil, black-holes reads and writes while shut.
	// Toggle it with Gate.Shut/Gate.Open to model partitions that start
	// and heal at chosen points in the session.
	Partition *Gate
	// Seed drives the injection RNG (jitter and drop decisions).
	Seed uint64
}

// Active reports whether any fault is configured.
func (f *FaultConfig) Active() bool {
	return f != nil && (f.Latency > 0 || f.Jitter > 0 || f.Bandwidth > 0 ||
		f.DropProb > 0 || f.CutAfterBytes > 0 || f.Partition != nil)
}

// Errors surfaced by injected faults. They reach the peer as ordinary
// connection errors, which is the point: the protocol layer must not be
// able to tell injected failures from real ones.
var (
	ErrInjectedDrop = errors.New("rpc: fault injection: connection dropped")
	ErrInjectedCut  = errors.New("rpc: fault injection: connection cut mid-stream")
)

// faultConnSeq distinguishes successive connections wrapped from the same
// FaultConfig. Without it a reconnecting client would replay the exact
// same fault sequence on every dial — a DropProb whose first draw says
// "drop" would then kill every reconnect attempt on its first write,
// turning a probabilistic fault into a deterministic death loop.
var faultConnSeq atomic.Uint64

// WrapFault layers fault injection under a connection. It returns raw
// unchanged when no fault is configured, so the healthy path stays
// wrapper-free.
func WrapFault(raw net.Conn, f *FaultConfig) net.Conn {
	if !f.Active() {
		return raw
	}
	seed := f.Seed + faultConnSeq.Add(1)*0x9e3779b9
	fc := &faultConn{Conn: raw, f: *f, rng: stats.NewRNG(seed), closed: make(chan struct{})}
	if f.Bandwidth > 0 {
		fc.bucket = NewTokenBucket(f.Bandwidth)
	}
	return fc
}

// faultConn implements net.Conn with configurable link pathologies. Writes
// carry the latency/bandwidth/drop/cut faults; partitions block both
// directions, honouring whatever deadline the caller armed.
type faultConn struct {
	net.Conn
	f      FaultConfig
	bucket *TokenBucket

	mu      sync.Mutex // guards rng, written, dead
	rng     *stats.RNG
	written int64
	dead    bool

	dlMu          sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.waitGate(c.deadline(true)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.waitGate(c.deadline(false)); err != nil {
		return 0, err
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	delay := c.f.Latency
	if c.f.Jitter > 0 {
		delay += time.Duration(c.rng.Float64() * float64(c.f.Jitter))
	}
	drop := c.f.DropProb > 0 && c.rng.Float64() < c.f.DropProb
	cut := int64(-1)
	if c.f.CutAfterBytes > 0 {
		if remaining := c.f.CutAfterBytes - c.written; remaining < int64(len(p)) {
			cut = max64(remaining, 0)
		}
	}
	if drop || cut >= 0 {
		c.dead = true
	}
	c.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	switch {
	case drop:
		c.Close()
		return 0, ErrInjectedDrop
	case cut >= 0:
		n := 0
		if cut > 0 {
			if c.bucket != nil {
				c.bucket.Take(int(cut))
			}
			n, _ = c.Conn.Write(p[:cut])
		}
		c.Close()
		c.addWritten(int64(n))
		return n, ErrInjectedCut
	}
	if c.bucket != nil {
		c.bucket.Take(len(p))
	}
	n, err := c.Conn.Write(p)
	c.addWritten(int64(n))
	return n, err
}

func (c *faultConn) addWritten(n int64) {
	c.mu.Lock()
	c.written += n
	c.mu.Unlock()
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.dlMu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDeadline = t
	c.dlMu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.writeDeadline = t
	c.dlMu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *faultConn) deadline(read bool) time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	if read {
		return c.readDeadline
	}
	return c.writeDeadline
}

func (c *faultConn) waitGate(deadline time.Time) error {
	if c.f.Partition == nil {
		return nil
	}
	return c.f.Partition.waitOpen(deadline, c.closed)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Gate models a network partition switch shared by any number of
// connections: while shut, wrapped connections block in Read/Write until
// the gate opens, their deadline fires, or the connection is closed.
type Gate struct {
	mu sync.Mutex
	ch chan struct{} // non-nil while shut; closed (the channel) on open
}

// NewGate returns a gate in the given initial state.
func NewGate(open bool) *Gate {
	g := &Gate{}
	if !open {
		g.ch = make(chan struct{})
	}
	return g
}

// Open heals the partition; blocked I/O resumes.
func (g *Gate) Open() { g.Set(true) }

// Shut partitions the link; subsequent I/O blocks.
func (g *Gate) Shut() { g.Set(false) }

// Set moves the gate to the requested state (idempotent).
func (g *Gate) Set(open bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if open {
		if g.ch != nil {
			close(g.ch)
			g.ch = nil
		}
	} else if g.ch == nil {
		g.ch = make(chan struct{})
	}
}

// IsOpen reports the current state.
func (g *Gate) IsOpen() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ch == nil
}

func (g *Gate) waitOpen(deadline time.Time, cancel <-chan struct{}) error {
	for {
		select {
		case <-cancel:
			return net.ErrClosed
		default:
		}
		g.mu.Lock()
		ch := g.ch
		g.mu.Unlock()
		if ch == nil {
			return nil
		}
		var timerC <-chan time.Time
		var timer *time.Timer
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				return os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case <-ch:
		case <-timerC:
		case <-cancel:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// FaultFlags holds the values of the -fault-* command-line flags shared by
// cmd/flserver and cmd/flclient.
type FaultFlags struct {
	latency   time.Duration
	jitter    time.Duration
	bandwidth float64
	drop      float64
	cut       int64
	partition time.Duration
	seed      uint64
}

// RegisterFaultFlags registers the -fault-* flags on fs and returns the
// holder; call Config after flag parsing to build the FaultConfig.
func RegisterFaultFlags(fs *flag.FlagSet) *FaultFlags {
	ff := &FaultFlags{}
	fs.DurationVar(&ff.latency, "fault-latency", 0, "inject a fixed delay before every socket write")
	fs.DurationVar(&ff.jitter, "fault-jitter", 0, "inject a random extra write delay, uniform in [0, jitter)")
	fs.Float64Var(&ff.bandwidth, "fault-bandwidth", 0, "cap injected link bandwidth in bytes/s (0 = unlimited)")
	fs.Float64Var(&ff.drop, "fault-drop", 0, "per-write probability the connection is killed")
	fs.Int64Var(&ff.cut, "fault-cut-after", 0, "hard-cut the connection after this many bytes written (0 = never)")
	fs.DurationVar(&ff.partition, "fault-partition", 0, "black-hole the link for this long after connect")
	fs.Uint64Var(&ff.seed, "fault-seed", 1, "fault-injection RNG seed")
	return ff
}

// Config builds the FaultConfig the parsed flags describe, or nil when no
// fault was requested. A -fault-partition duration becomes a gate that
// starts shut and heals itself after the configured time.
func (ff *FaultFlags) Config() *FaultConfig {
	cfg := &FaultConfig{
		Latency:       ff.latency,
		Jitter:        ff.jitter,
		Bandwidth:     ff.bandwidth,
		DropProb:      ff.drop,
		CutAfterBytes: ff.cut,
		Seed:          ff.seed,
	}
	if ff.partition > 0 {
		g := NewGate(false)
		time.AfterFunc(ff.partition, g.Open)
		cfg.Partition = g
	}
	if !cfg.Active() {
		return nil
	}
	return cfg
}
