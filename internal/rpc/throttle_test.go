package rpc

import (
	"bytes"
	"testing"
	"time"
)

// virtualize replaces the bucket's sleep with a virtual clock that
// accumulates the requested sleep and refills tokens accordingly, making
// throughput measurements deterministic. It returns a pointer to the
// virtual elapsed time.
func virtualize(tb *TokenBucket) *time.Duration {
	var slept time.Duration
	tb.sleep = func(d time.Duration) {
		slept += d
		tb.mu.Lock()
		tb.tokens += d.Seconds() * tb.rate
		tb.mu.Unlock()
	}
	return &slept
}

func TestTokenBucketBurstPassesWithoutSleep(t *testing.T) {
	tb := NewTokenBucket(1000) // capacity = 1s of tokens = 1000 B
	slept := virtualize(tb)
	tb.Take(500)
	tb.Take(500)
	if *slept != 0 {
		t.Fatalf("burst within capacity slept %v", *slept)
	}
	tb.Take(1) // bucket drained: must wait
	if *slept == 0 {
		t.Fatal("post-burst take did not sleep")
	}
}

func TestTokenBucketSleepRefill(t *testing.T) {
	tb := NewTokenBucket(1000)
	slept := virtualize(tb)
	tb.Take(500) // within initial burst
	if *slept != 0 {
		t.Fatalf("burst should not sleep, slept %v", *slept)
	}
	tb.Take(2000) // needs ~1.5s of tokens beyond the remaining 500
	if *slept < time.Second || *slept > 3*time.Second {
		t.Fatalf("unexpected total sleep %v", *slept)
	}
}

// TestTokenBucketThroughputWithin20Pct pushes many seconds worth of bytes
// through the bucket on the virtual clock and checks sustained throughput
// converges to the configured rate within ±20%.
func TestTokenBucketThroughputWithin20Pct(t *testing.T) {
	const rate = 1e6 // 1 MB/s
	tb := NewTokenBucket(rate)
	slept := virtualize(tb)
	total := 0
	for total < 20e6 { // 20 seconds of traffic in 64 KB writes
		tb.Take(64 << 10)
		total += 64 << 10
	}
	elapsed := slept.Seconds()
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	measured := float64(total) / elapsed
	if measured < 0.8*rate || measured > 1.2*rate {
		t.Fatalf("throughput %.0f B/s outside ±20%% of %.0f B/s", measured, float64(rate))
	}
}

// TestTokenBucketFractionalRateNoLivelock pins the sub-1 B/s fix. The old
// chunking computed the cap as int(rate), which truncates to 0 below
// 1 B/s; the uncapped request then exceeded the bucket capacity and the
// refill loop could never satisfy it — Take spun forever. The goroutine +
// timeout shape matters: on the broken code Take never returns.
func TestTokenBucketFractionalRateNoLivelock(t *testing.T) {
	tb := NewTokenBucket(0.5) // capacity 0.5 B: every single byte overdraws
	slept := virtualize(tb)
	done := make(chan struct{})
	go func() {
		tb.Take(3)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Take(3) at 0.5 B/s did not finish: fractional-rate livelock")
	}
	// 3 bytes at 0.5 B/s starting from a 0.5-token burst ≈ 5s of waiting.
	if *slept < 4*time.Second || *slept > 8*time.Second {
		t.Fatalf("virtual sleep %v, want ≈5s", *slept)
	}
}

// TestTokenBucketOverCapacityTake covers single takes far beyond the
// bucket capacity at both moderate and very large rates: the deficit
// accounting must finish in n/rate time instead of waiting for a token
// balance the capacity cap makes unreachable.
func TestTokenBucketOverCapacityTake(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		n    int
	}{
		{rate: 100, n: 500},      // 5x capacity
		{rate: 1e12, n: 3e12},    // very large rate, 3x capacity
		{rate: 1e12, n: 1 << 30}, // large burst below capacity: free
	} {
		tb := NewTokenBucket(tc.rate)
		slept := virtualize(tb)
		done := make(chan struct{})
		go func() {
			tb.Take(tc.n)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("Take(%d) at %.0f B/s did not finish", tc.n, tc.rate)
		}
		want := (float64(tc.n) - tc.rate) / tc.rate // burst is free
		got := slept.Seconds()
		if want <= 0 {
			if got != 0 {
				t.Errorf("rate %.0f: burst below capacity slept %v", tc.rate, *slept)
			}
			continue
		}
		if got < 0.9*want || got > 1.5*want {
			t.Errorf("rate %.0f: slept %.2fs for %d bytes, want ≈%.2fs", tc.rate, got, tc.n, want)
		}
	}
}

func TestTokenBucketGuards(t *testing.T) {
	for _, rate := range []float64{0, -5} {
		rate := rate
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v accepted", rate)
				}
			}()
			NewTokenBucket(rate)
		}()
	}
}

// TestTokenBucketRealTimeSmoke checks wall-clock shaping on a real sleep:
// taking one second's worth of bytes beyond the burst must block for
// roughly that long. Bounds are loose to tolerate slow CI machines.
func TestTokenBucketRealTimeSmoke(t *testing.T) {
	const rate = 4e6
	tb := NewTokenBucket(rate)
	start := time.Now()
	tb.Take(int(rate))     // burst: free
	tb.Take(int(rate / 2)) // must wait ~0.5s
	elapsed := time.Since(start)
	if elapsed < 350*time.Millisecond {
		t.Fatalf("throttle too fast: %v for 0.5s of tokens", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("throttle too slow: %v for 0.5s of tokens", elapsed)
	}
}

func TestThrottledWriterDelegates(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTokenBucket(1e9) // effectively unlimited
	w := &throttledWriter{w: &buf, tb: tb}
	p := []byte("hello straggler")
	n, err := w.Write(p)
	if err != nil || n != len(p) {
		t.Fatalf("write = (%d, %v)", n, err)
	}
	if buf.String() != string(p) {
		t.Fatalf("payload corrupted: %q", buf.String())
	}
}
