package rpc

import (
	"sync"
	"testing"
	"time"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// chaosEnv is the shared scaffolding for full-session fault-injection
// tests: a synthetic task partitioned across clients, plus base configs
// that individual tests specialise with faults.
type chaosEnv struct {
	seed     uint64
	clients  int
	parts    []*dataset.Dataset
	test     *dataset.Dataset
	newModel func() *nn.Model
	cfg      core.Config
}

func newChaosEnv(clients, samples, imgSize, hidden int, seed uint64) *chaosEnv {
	ds := dataset.SynthMNIST(samples, imgSize, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionIID(train, clients, seed+2)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, imgSize, imgSize}, []int{hidden}, 10, stats.NewRNG(seed+3))
	}
	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 2
	cfg.ScaleRatiosForModel(newModel().NumParams())
	cfg.K = clients - 1
	if cfg.K < 1 {
		cfg.K = 1
	}
	return &chaosEnv{seed: seed, clients: clients, parts: parts, test: test, newModel: newModel, cfg: cfg}
}

func (e *chaosEnv) serverConfig(rounds int) ServerConfig {
	return ServerConfig{
		Addr: "127.0.0.1:0", NumClients: e.clients, Rounds: rounds,
		Cfg: e.cfg, NewModel: e.newModel, Test: e.test, EvalEvery: 1, Logf: quiet,
		StragglerTimeout: time.Second,
	}
}

func (e *chaosEnv) clientConfig(i int, addr string) ClientConfig {
	return ClientConfig{
		Addr: addr, ID: i, Data: e.parts[i], NewModel: e.newModel,
		LocalSteps: 3, BatchSize: 16, LR: 0.1, Momentum: 0.9,
		Utility: e.cfg.Utility, UpBps: 1e6, DownBps: 1e6,
		DGCClip: 10, DGCMsgClip: 2, Seed: e.seed + 50 + uint64(i),
		Logf: quiet,
	}
}

// runClients launches one goroutine per config and returns results and
// errors indexed by position after all clients exit.
func runClients(cfgs []ClientConfig) ([]*ClientResult, []error) {
	results := make([]*ClientResult, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunClient(cfg)
		}()
	}
	wg.Wait()
	return results, errs
}

// waitForClient blocks until id is registered (pending or live) or the
// timeout expires. Called from OnRound to make re-join timing
// deterministic.
func waitForClient(t *testing.T, srv *Server, id int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		_, p := srv.pending[id]
		_, r := srv.roster[id]
		srv.mu.Unlock()
		if p || r {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("client %d never re-registered", id)
}

// TestChaosStragglerAndDeathPartialAggregation is the acceptance
// scenario: of four clients, one is killed mid-round by a mid-message
// cut and another is partitioned past StragglerTimeout. The server must
// finish every configured round with partial aggregation (Received <
// Selected rather than an abort), evict both offenders, re-admit the
// partitioned one once the link heals, and land within tolerance of a
// fault-free run — the repo's analogue of the paper's Figure 1 study.
func TestChaosStragglerAndDeathPartialAggregation(t *testing.T) {
	const rounds = 12
	env := newChaosEnv(4, 600, 16, 32, 11)

	// Fault-free baseline for the accuracy comparison.
	cleanSrv, err := NewServer(env.serverConfig(rounds))
	if err != nil {
		t.Fatal(err)
	}
	var cleanCfgs []ClientConfig
	for i := 0; i < 4; i++ {
		cleanCfgs = append(cleanCfgs, env.clientConfig(i, cleanSrv.Addr()))
	}
	cleanDone := make(chan struct{})
	go func() { runClients(cleanCfgs); close(cleanDone) }()
	cleanRes, err := cleanSrv.Run()
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	<-cleanDone

	// Chaos run. OnRound runs synchronously inside Run, after srv is
	// assigned, so the closure can use it directly.
	gate := NewGate(true)
	scfg := env.serverConfig(rounds)
	var srv *Server
	scfg.OnRound = func(rec RoundRecord) {
		switch rec.Round {
		case 3:
			gate.Shut() // partition client 2 for rounds 5-6
		case 5:
			gate.Open()
		case 6:
			// Hold the round boundary until client 2's re-Hello lands so
			// its re-admission is deterministic.
			waitForClient(t, srv, 2, 10*time.Second)
		}
	}
	srv, err = NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := make([]ClientConfig, 4)
	for i := 0; i < 4; i++ {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	// Client 2: partitioned mid-session; allowed to reconnect.
	cfgs[2].Fault = &FaultConfig{Partition: gate}
	cfgs[2].MaxRetries = 10
	cfgs[2].RetryBackoff = 25 * time.Millisecond
	// Client 3: link hard-cut mid-message during the second warmup
	// upload; no retries, so it stays dead.
	cfgs[3].Fault = &FaultConfig{CutAfterBytes: 150_000}

	type clientOut struct {
		res  []*ClientResult
		errs []error
	}
	outCh := make(chan clientOut, 1)
	go func() {
		res, errs := runClients(cfgs)
		outCh <- clientOut{res, errs}
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatalf("chaos run aborted: %v", err)
	}
	out := <-outCh

	if len(res.Rounds) != rounds {
		t.Fatalf("chaos run completed %d/%d rounds", len(res.Rounds), rounds)
	}
	if res.EndedEarly {
		t.Fatal("chaos run flagged EndedEarly despite healthy majority")
	}
	if res.Evictions < 2 {
		t.Fatalf("evictions = %d, want >= 2 (cut client + partitioned straggler)", res.Evictions)
	}
	partial := false
	for _, rec := range res.Rounds {
		if rec.Received < rec.Selected {
			partial = true
		}
	}
	if !partial {
		t.Fatal("no round reported Received < Selected under injected faults")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Clients != 3 {
		t.Fatalf("final roster = %d, want 3 (client 2 back, client 3 dead)", last.Clients)
	}
	// Healthy clients and the rejoined straggler end via clean shutdown.
	for _, i := range []int{0, 1, 2} {
		if out.errs[i] != nil {
			t.Errorf("client %d: %v", i, out.errs[i])
		}
	}
	if out.res[2] == nil || out.res[2].Reconnects == 0 {
		t.Error("partitioned client never reconnected")
	}
	if out.errs[3] == nil {
		t.Error("cut client unexpectedly survived")
	}
	// Resilience claim: dropout + straggling costs bounded accuracy.
	if res.FinalAcc < 0.3 {
		t.Fatalf("chaos run did not learn: acc %.3f", res.FinalAcc)
	}
	if res.FinalAcc < cleanRes.FinalAcc-0.3 {
		t.Fatalf("chaos acc %.3f too far below clean acc %.3f", res.FinalAcc, cleanRes.FinalAcc)
	}
}

// TestChaosLatencyJitterAllSurvive: moderate injected latency and jitter
// below the straggler deadline must cause zero evictions.
func TestChaosLatencyJitterAllSurvive(t *testing.T) {
	env := newChaosEnv(3, 240, 12, 16, 21)
	scfg := env.serverConfig(5)
	scfg.StragglerTimeout = 2 * time.Second
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, 3)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
		cfgs[i].Fault = &FaultConfig{Latency: 15 * time.Millisecond, Jitter: 25 * time.Millisecond, Seed: uint64(i)}
	}
	outCh := make(chan []error, 1)
	go func() {
		_, errs := runClients(cfgs)
		outCh <- errs
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, cerr := range <-outCh {
		if cerr != nil {
			t.Errorf("client %d: %v", i, cerr)
		}
	}
	if res.Evictions != 0 {
		t.Fatalf("slow-but-alive clients were evicted: %d", res.Evictions)
	}
	if len(res.Rounds) != 5 {
		t.Fatalf("completed %d/5 rounds", len(res.Rounds))
	}
	for _, rec := range res.Rounds {
		if rec.Received != rec.Selected {
			t.Fatalf("round %d: received %d of %d despite no deadline misses", rec.Round, rec.Received, rec.Selected)
		}
	}
}

// TestChaosBandwidthCappedClientSurvives: a client squeezed through an
// injected narrow link still makes the deadline and is never evicted.
func TestChaosBandwidthCappedClientSurvives(t *testing.T) {
	env := newChaosEnv(3, 240, 12, 16, 31)
	scfg := env.serverConfig(4)
	scfg.StragglerTimeout = 3 * time.Second
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, 3)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	cfgs[2].Fault = &FaultConfig{Bandwidth: 50_000} // ~50 KB/s embedded uplink
	outCh := make(chan []error, 1)
	go func() {
		_, errs := runClients(cfgs)
		outCh <- errs
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, cerr := range <-outCh {
		if cerr != nil {
			t.Errorf("client %d: %v", i, cerr)
		}
	}
	if res.Evictions != 0 {
		t.Fatalf("bandwidth-capped client evicted: %d evictions", res.Evictions)
	}
}

// TestChaosProbabilisticDropEvictsAndRecovers: a lossy link that randomly
// kills the connection forces evictions, but reconnect keeps the client
// in the session and the server completes every round regardless.
func TestChaosProbabilisticDropEvictsAndRecovers(t *testing.T) {
	env := newChaosEnv(3, 240, 12, 16, 41)
	const rounds = 10
	scfg := env.serverConfig(rounds)
	// Quorum from the stable clients only: gob's first Send is several
	// raw writes, each rolling the drop dice, so the lossy client may
	// need arbitrarily many redials before a Hello lands — quorum must
	// not hang on it.
	scfg.NumClients = 2
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, 3)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	// MaxRetries bounds *consecutive* failures, so a modest budget
	// tolerates many drops across the session yet gives up quickly once
	// the server is gone and every redial is refused.
	cfgs[1].Fault = &FaultConfig{DropProb: 0.35, Seed: 99}
	cfgs[1].MaxRetries = 6
	cfgs[1].RetryBackoff = 10 * time.Millisecond
	type out struct {
		res  []*ClientResult
		errs []error
	}
	outCh := make(chan out, 1)
	go func() {
		r, e := runClients(cfgs)
		outCh <- out{r, e}
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatalf("server aborted under drop faults: %v", err)
	}
	o := <-outCh
	if len(res.Rounds) != rounds {
		t.Fatalf("completed %d/%d rounds", len(res.Rounds), rounds)
	}
	// The lossy client must have died at least once, seen either as a
	// server-side eviction or a client-side reconnect.
	reconnects := 0
	if o.res[1] != nil {
		reconnects = o.res[1].Reconnects
	}
	if res.Evictions == 0 && reconnects == 0 {
		t.Fatal("drop fault produced neither evictions nor reconnects")
	}
	// The stable clients are untouched.
	for _, i := range []int{0, 2} {
		if o.errs[i] != nil {
			t.Errorf("client %d: %v", i, o.errs[i])
		}
	}
}

// TestChaosLateJoinerAfterPartitionHeals: a client partitioned from the
// start misses quorum, joins when the link heals, and participates in the
// remaining rounds.
func TestChaosLateJoinerAfterPartitionHeals(t *testing.T) {
	env := newChaosEnv(4, 320, 12, 16, 51)
	const rounds = 8
	gate := NewGate(false)
	scfg := env.serverConfig(rounds)
	scfg.NumClients = 3 // quorum without the partitioned client
	var srv *Server
	scfg.OnRound = func(rec RoundRecord) {
		switch rec.Round {
		case 1:
			gate.Open()
		case 2:
			waitForClient(t, srv, 3, 10*time.Second)
		}
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, 4)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	cfgs[3].Fault = &FaultConfig{Partition: gate}
	cfgs[3].MaxRetries = 10
	cfgs[3].RetryBackoff = 25 * time.Millisecond
	type out struct {
		res  []*ClientResult
		errs []error
	}
	outCh := make(chan out, 1)
	go func() {
		r, e := runClients(cfgs)
		outCh <- out{r, e}
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	o := <-outCh
	if len(res.Rounds) != rounds {
		t.Fatalf("completed %d/%d rounds", len(res.Rounds), rounds)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Clients != 4 {
		t.Fatalf("late joiner absent from final roster: %d clients", last.Clients)
	}
	if o.errs[3] != nil {
		t.Errorf("late joiner: %v", o.errs[3])
	}
	if o.res[3] == nil || o.res[3].Rounds == 0 {
		t.Error("late joiner never participated in a round")
	}
}

// TestChaosMinClientsFloorEndsSessionCleanly: when the roster falls below
// MinClients the session stops with a partial result and no error.
func TestChaosMinClientsFloorEndsSessionCleanly(t *testing.T) {
	env := newChaosEnv(2, 160, 12, 16, 61)
	scfg := env.serverConfig(6)
	scfg.MinClients = 2
	scfg.StragglerTimeout = 500 * time.Millisecond
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, 2)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	cfgs[1].Fault = &FaultConfig{CutAfterBytes: 20_000} // dies early, stays dead
	outCh := make(chan []error, 1)
	go func() {
		_, errs := runClients(cfgs)
		outCh <- errs
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatalf("below-floor session must end cleanly, got %v", err)
	}
	<-outCh
	if !res.EndedEarly {
		t.Fatal("session not flagged EndedEarly")
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Evictions)
	}
	if len(res.Rounds) == 0 || len(res.Rounds) >= 6 {
		t.Fatalf("rounds completed = %d, want partial progress", len(res.Rounds))
	}
}
