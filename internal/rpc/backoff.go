package rpc

import (
	"time"

	"adafl/internal/stats"
)

// RetryBackoff produces redial waits with exponential growth and full
// jitter (AWS-style: each wait is uniform in [0, window), with the
// window doubling per consecutive failure up to a cap). Without jitter,
// every client that lost its link to a crashed server redials in
// lockstep after a restart — a thundering herd that the resumed server
// absorbs as one synchronized accept burst per backoff step. Full
// jitter spreads the herd across the whole window.
type RetryBackoff struct {
	initial time.Duration
	max     time.Duration
	window  time.Duration
	rng     *stats.RNG
}

// NewRetryBackoff returns a policy starting at initial and capping the
// window at max. rng drives the jitter; a nil rng disables it (pure
// exponential waits), which tests of the deterministic schedule use.
func NewRetryBackoff(initial, max time.Duration, rng *stats.RNG) *RetryBackoff {
	if initial <= 0 {
		initial = 200 * time.Millisecond
	}
	if max <= 0 {
		max = maxRetryBackoff
	}
	return &RetryBackoff{initial: initial, max: max, window: initial, rng: rng}
}

// Next returns the wait before the upcoming redial attempt and widens
// the window for the one after it.
func (b *RetryBackoff) Next() time.Duration {
	window := b.window
	if b.window *= 2; b.window > b.max {
		b.window = b.max
	}
	if b.rng == nil {
		return window
	}
	return time.Duration(b.rng.Float64() * float64(window))
}

// Reset shrinks the window back to the initial value; called when a
// connection makes progress, so only consecutive failures escalate.
func (b *RetryBackoff) Reset() { b.window = b.initial }
