package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"adafl/internal/core"
)

// negotiatedServerConfig specialises the chaos env for a negotiated
// session: diurnal scenario, negotiation enabled with the defaults, and
// the round's assignments logged to buf.
func negotiatedServerConfig(t *testing.T, env *chaosEnv, rounds int, scenarioLog, assignLog *bytes.Buffer) ServerConfig {
	t.Helper()
	cfg := env.serverConfig(rounds)
	cfg.StragglerTimeout = 10 * time.Second
	cfg.Scenario = scenarioFleet(t, env)
	cfg.ScenarioLog = scenarioLog
	cfg.Negotiation = core.DefaultNegotiation()
	cfg.Negotiation.Enabled = true
	cfg.AssignLog = assignLog
	return cfg
}

// assignTail filters a JSONL assignment log to the records of rounds
// >= from, preserving order — the resume tests compare a resumed
// process's log against this slice of the uninterrupted run's.
func assignTail(t *testing.T, buf []byte, from int) []byte {
	t.Helper()
	var out []byte
	for _, line := range bytes.SplitAfter(buf, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var round int
		if _, err := fmt.Sscanf(string(line), `{"round":%d,`, &round); err != nil {
			t.Fatalf("unparseable assignment record %q: %v", line, err)
		}
		if round >= from {
			out = append(out, line...)
		}
	}
	return out
}

// TestChaosNegotiatedGoldenReplay is the negotiation determinism
// acceptance test: two fresh live-socket sessions under the diurnal
// scenario with per-round codec negotiation enabled, same seeds, must
// produce byte-identical assignment logs and bit-identical global models
// (observed through the per-round test accuracy, an exact function of
// the global parameter vector). Any wall-clock or receipt-order leak
// into the negotiator — or into aggregation — shows up here.
func TestChaosNegotiatedGoldenReplay(t *testing.T) {
	const rounds = 8
	run := func(seed uint64) (*ServerResult, []byte, []byte) {
		env := newChaosEnv(4, 600, 16, 32, seed)
		var scenLog, asnLog bytes.Buffer
		srv, err := NewServer(negotiatedServerConfig(t, env, rounds, &scenLog, &asnLog))
		if err != nil {
			t.Fatal(err)
		}
		cfgs := make([]ClientConfig, env.clients)
		for i := range cfgs {
			cfgs[i] = env.clientConfig(i, srv.Addr())
		}
		done := make(chan []error, 1)
		go func() {
			_, errs := runClients(cfgs)
			done <- errs
		}()
		res, err := srv.Run()
		if err != nil {
			t.Fatalf("negotiated run: %v", err)
		}
		for i, cerr := range <-done {
			if cerr != nil {
				t.Fatalf("client %d: %v", i, cerr)
			}
		}
		return res, asnLog.Bytes(), scenLog.Bytes()
	}

	resA, asnA, scenA := run(91)
	resB, asnB, scenB := run(91)

	if len(asnA) == 0 {
		t.Fatal("no assignments logged; negotiation never ran")
	}
	// Negotiation must actually exercise both codecs under the diurnal
	// bandwidth swings: shallow ratios stay on DGC, throttled links cross
	// SwitchRatio into DAdaQuant.
	if !bytes.Contains(asnA, []byte(`"codec":"dadaquant"`)) {
		t.Fatalf("no dadaquant assignment in log:\n%s", asnA)
	}
	if !bytes.Contains(asnA, []byte(`"codec":"dgc"`)) {
		t.Fatalf("no dgc assignment in log:\n%s", asnA)
	}
	if !bytes.Equal(asnA, asnB) {
		t.Fatalf("assignment logs diverge between identical runs:\nrun A:\n%s\nrun B:\n%s", asnA, asnB)
	}
	if !bytes.Equal(scenA, scenB) {
		t.Fatal("scenario schedules diverge between identical runs")
	}
	if len(resA.Rounds) != rounds || len(resB.Rounds) != rounds {
		t.Fatalf("incomplete sessions: %d and %d rounds", len(resA.Rounds), len(resB.Rounds))
	}
	for i := range resA.Rounds {
		a, b := resA.Rounds[i].TestAcc, resB.Rounds[i].TestAcc
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("round %d accuracy not bit-identical: %v vs %v", i, a, b)
		}
		if resA.Rounds[i].Bytes != resB.Rounds[i].Bytes {
			t.Fatalf("round %d uplink bytes diverge: %d vs %d", i, resA.Rounds[i].Bytes, resB.Rounds[i].Bytes)
		}
	}
	if resA.FinalAcc < 0.25 {
		t.Fatalf("negotiated session did not learn: acc %.3f", resA.FinalAcc)
	}
}

// TestChaosNegotiatedResume: killing a negotiated session mid-run and
// resuming from the checkpoint must replay the remaining rounds'
// assignments byte-identically to an uninterrupted run — the negotiator's
// link state (EWMA bytes, last assignments) travels in the snapshot.
func TestChaosNegotiatedResume(t *testing.T) {
	const (
		rounds    = 8
		killAfter = 3
	)

	// Uninterrupted reference.
	refEnv := newChaosEnv(4, 600, 16, 32, 92)
	var refScen, refAsn bytes.Buffer
	refSrv, err := NewServer(negotiatedServerConfig(t, refEnv, rounds, &refScen, &refAsn))
	if err != nil {
		t.Fatal(err)
	}
	refCfgs := make([]ClientConfig, refEnv.clients)
	for i := range refCfgs {
		refCfgs[i] = refEnv.clientConfig(i, refSrv.Addr())
	}
	refDone := make(chan struct{})
	go func() { runClients(refCfgs); close(refDone) }()
	refRes, err := refSrv.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	<-refDone
	if len(refRes.Rounds) != rounds {
		t.Fatalf("reference completed %d/%d rounds", len(refRes.Rounds), rounds)
	}

	// Killed run: same seeds, checkpointing every round, crash after
	// killAfter rounds.
	env := newChaosEnv(4, 600, 16, 32, 92)
	dir := t.TempDir()
	var killScen, killAsn bytes.Buffer
	scfg1 := negotiatedServerConfig(t, env, rounds, &killScen, &killAsn)
	scfg1.CheckpointDir = dir
	var srv1 *Server
	scfg1.OnRound = func(rec RoundRecord) {
		if rec.Round == killAfter-1 {
			srv1.Kill()
		}
	}
	srv1, err = NewServer(scfg1)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	cfgs := make([]ClientConfig, env.clients)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, addr)
		cfgs[i].MaxRetries = 100
		cfgs[i].RetryBackoff = 20 * time.Millisecond
	}
	clientErrs := make(chan []error, 1)
	go func() {
		_, errs := runClients(cfgs)
		clientErrs <- errs
	}()
	if _, err = srv1.Run(); !errors.Is(err, ErrServerKilled) {
		t.Fatalf("killed server returned %v, want ErrServerKilled", err)
	}

	// Restarted process resuming the negotiated session.
	var resScen, resAsn bytes.Buffer
	scfg2 := negotiatedServerConfig(t, env, rounds, &resScen, &resAsn)
	scfg2.Addr = addr
	scfg2.CheckpointDir = dir
	scfg2.Resume = true
	var srv2 *Server
	for attempt := 0; ; attempt++ {
		srv2, err = NewServer(scfg2)
		if err == nil {
			break
		}
		if attempt >= 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res2, err := srv2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for i, cerr := range <-clientErrs {
		if cerr != nil {
			t.Errorf("client %d: %v", i, cerr)
		}
	}
	if res2.ResumedFrom != killAfter {
		t.Fatalf("ResumedFrom = %d, want %d", res2.ResumedFrom, killAfter)
	}
	if len(res2.Rounds) != rounds {
		t.Fatalf("resumed session ended with %d/%d rounds", len(res2.Rounds), rounds)
	}

	// Golden pins: the killed prefix and the resumed tail together must
	// reproduce the uninterrupted run's assignment stream byte for byte.
	if want := assignTail(t, refAsn.Bytes(), 0)[:len(killAsn.Bytes())]; !bytes.Equal(killAsn.Bytes(), want) {
		t.Fatalf("pre-kill assignments diverge from uninterrupted run:\nwant prefix:\n%s\ngot:\n%s", want, killAsn.Bytes())
	}
	want := assignTail(t, refAsn.Bytes(), killAfter)
	if got := resAsn.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("post-resume assignments diverge from uninterrupted run:\nuninterrupted rounds %d..%d:\n%s\nresumed:\n%s",
			killAfter, rounds-1, want, got)
	}
	if got, wantScen := resScen.Bytes(), lastLines(refScen.Bytes(), rounds-killAfter); !bytes.Equal(got, wantScen) {
		t.Fatalf("post-resume scenario schedule diverges:\nwant:\n%s\ngot:\n%s", wantScen, got)
	}
}

// TestResumeNegotiationMismatchIsFatal: the assignment stream is a pure
// function of (config, history), so resuming a checkpoint across a
// negotiation-config boundary — on, off, or different knobs — must be
// refused rather than silently diverging from the original session.
func TestResumeNegotiationMismatchIsFatal(t *testing.T) {
	runSession := func(t *testing.T, env *chaosEnv, scfg ServerConfig) {
		t.Helper()
		srv, err := NewServer(scfg)
		if err != nil {
			t.Fatal(err)
		}
		cfgs := make([]ClientConfig, env.clients)
		for i := range cfgs {
			cfgs[i] = env.clientConfig(i, srv.Addr())
		}
		done := make(chan struct{})
		go func() { runClients(cfgs); close(done) }()
		if _, err := srv.Run(); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	resume := func(t *testing.T, scfg ServerConfig, dir string) error {
		t.Helper()
		scfg.CheckpointDir = dir
		scfg.Resume = true
		srv, err := NewServer(scfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = srv.Run()
		return err
	}

	t.Run("negotiated checkpoint, plain resume", func(t *testing.T) {
		env := newChaosEnv(2, 160, 12, 16, 93)
		dir := t.TempDir()
		scfg := env.serverConfig(2)
		scfg.CheckpointDir = dir
		scfg.Negotiation = core.DefaultNegotiation()
		scfg.Negotiation.Enabled = true
		runSession(t, env, scfg)
		if err := resume(t, env.serverConfig(4), dir); err == nil {
			t.Fatal("negotiated checkpoint resumed without negotiation")
		}
	})
	t.Run("plain checkpoint, negotiated resume", func(t *testing.T) {
		env := newChaosEnv(2, 160, 12, 16, 94)
		dir := t.TempDir()
		scfg := env.serverConfig(2)
		scfg.CheckpointDir = dir
		runSession(t, env, scfg)
		scfg2 := env.serverConfig(4)
		scfg2.Negotiation = core.DefaultNegotiation()
		scfg2.Negotiation.Enabled = true
		if err := resume(t, scfg2, dir); err == nil {
			t.Fatal("plain checkpoint resumed with negotiation enabled")
		}
	})
	t.Run("different negotiation knobs", func(t *testing.T) {
		env := newChaosEnv(2, 160, 12, 16, 95)
		dir := t.TempDir()
		scfg := env.serverConfig(2)
		scfg.CheckpointDir = dir
		scfg.Negotiation = core.DefaultNegotiation()
		scfg.Negotiation.Enabled = true
		runSession(t, env, scfg)
		scfg2 := env.serverConfig(4)
		scfg2.Negotiation = core.DefaultNegotiation()
		scfg2.Negotiation.Enabled = true
		scfg2.Negotiation.SwitchRatio = 99
		if err := resume(t, scfg2, dir); err == nil {
			t.Fatal("checkpoint resumed under different negotiation knobs")
		}
	})
}
