package rpc

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/stats"
)

// captureConn records writes so a Conn can be used as a frame encoder.
type captureConn struct {
	byteConn
	buf bytes.Buffer
}

func (c *captureConn) Write(p []byte) (int, error) { return c.buf.Write(p) }

// encodeBinaryEnvelope renders e as one binary wire frame.
func encodeBinaryEnvelope(tb testing.TB, e *Envelope) []byte {
	tb.Helper()
	cc := &captureConn{}
	conn := NewBinaryConn(cc, nil)
	if err := conn.Send(e); err != nil {
		tb.Fatalf("encode %v: %v", e.Type, err)
	}
	return cc.buf.Bytes()
}

// repeatReader replays the same bytes forever: an endless stream of
// identical frames for steady-state receive measurements.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// wireFixtures extends the shared fixtures with the binary codec's edge
// cases: nil-vs-empty slices, a dense-identity sparse payload (indices
// omitted on the wire) and an empty shutdown string.
func wireFixtures() []*Envelope {
	fx := fixtureEnvelopes()
	dense := compress.NewSparseDense(make([]float64, 5))
	for i := range dense.Values {
		dense.Values[i] = float64(i) * 0.25
	}
	return append(fx,
		&Envelope{Type: MsgModel, Round: 2, Params: []float64{1, 2, 3}},         // nil GlobalDelta
		&Envelope{Type: MsgUpdate, ClientID: 9, Round: 3, Update: dense},        // dense identity
		&Envelope{Type: MsgUpdate, Round: 1, Update: &compress.Sparse{Dim: 16}}, // empty update
		&Envelope{Type: MsgShutdown},                                            // empty info
		&Envelope{Type: MsgScore, ClientID: -1, Round: 0, Score: math.Inf(1)},   // sentinel id, Inf
		&Envelope{Type: MsgUpdate, Update: &compress.Sparse{Dim: 1 << 20, Indices: []int32{1 << 19}, Values: []float64{-0.5}}},
	)
}

// TestWireRoundTripAllTypes: every message type survives a binary
// encode/decode round trip through a real Conn pair unchanged, including
// NaN/Inf values and nil-vs-empty slice distinctions.
func TestWireRoundTripAllTypes(t *testing.T) {
	for _, want := range wireFixtures() {
		want := want
		a, b := net.Pipe()
		ca, cb := NewBinaryConn(a, nil), NewBinaryConn(b, nil)
		errCh := make(chan error, 1)
		go func() { errCh <- ca.Send(want) }()
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("type %v: recv: %v", want.Type, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("type %v: send: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("type %v round trip mismatch:\n got %+v\nwant %+v", want.Type, got, want)
		}
		ca.Close()
		cb.Close()
	}
}

// TestWireExactByteAccounting pins the binary codec's accounting
// guarantee: both ends count exactly 4 + payload bytes per message — no
// decoder read-ahead, no bufio slack (the documented gob caveat).
func TestWireExactByteAccounting(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewBinaryConn(a, nil), NewBinaryConn(b, nil)
	defer ca.Close()
	defer cb.Close()
	for _, e := range wireFixtures() {
		e := e
		size, err := e.wirePayloadSize()
		if err != nil {
			t.Fatal(err)
		}
		sentBefore, recvBefore := ca.BytesSent(), cb.BytesReceived()
		errCh := make(chan error, 1)
		go func() { errCh <- ca.Send(e) }()
		if _, err := cb.Recv(); err != nil {
			t.Fatalf("type %v: recv: %v", e.Type, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("type %v: send: %v", e.Type, err)
		}
		want := int64(4 + size)
		if got := ca.BytesSent() - sentBefore; got != want {
			t.Errorf("type %v: sender counted %d bytes, frame is %d", e.Type, got, want)
		}
		if got := cb.BytesReceived() - recvBefore; got != want {
			t.Errorf("type %v: receiver counted %d bytes, frame is %d", e.Type, got, want)
		}
	}
}

// TestWireSizeCapExact: the binary cap is judged from the declared frame
// size (prefix included) before any payload byte is read — a frame of
// exactly the cap passes, one byte over fails, and the oversized frame's
// payload is never pulled off the wire.
func TestWireSizeCapExact(t *testing.T) {
	e := &Envelope{Type: MsgModel, Round: 1, Params: make([]float64, 512)}
	for i := range e.Params {
		e.Params[i] = float64(i)
	}
	raw := encodeBinaryEnvelope(t, e)
	frame := int64(len(raw))

	at := NewBinaryConn(&byteConn{r: bytes.NewReader(raw)}, nil)
	at.SetMaxMessage(frame)
	if _, err := at.Recv(); err != nil {
		t.Fatalf("frame of exactly the cap rejected: %v", err)
	}

	over := NewBinaryConn(&byteConn{r: bytes.NewReader(raw)}, nil)
	over.SetMaxMessage(frame - 1)
	_, err := over.Recv()
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("cap-1 error = %v, want ErrMessageTooLarge", err)
	}
	if got := over.BytesReceived(); got != 4 {
		t.Fatalf("capped recv consumed %d bytes, want only the 4-byte prefix", got)
	}

	uncapped := NewBinaryConn(&byteConn{r: bytes.NewReader(raw)}, nil)
	uncapped.SetMaxMessage(0)
	if _, err := uncapped.Recv(); err != nil {
		t.Fatalf("uncapped conn failed: %v", err)
	}
}

// TestWireTruncationErrors: cut streams produce clean errors (clean EOF
// only at a frame boundary), never panics or hangs.
func TestWireTruncationErrors(t *testing.T) {
	raw := encodeBinaryEnvelope(t, fixtureEnvelopes()[1]) // MsgModel
	cuts := []int{0, 1, 3, 4, 5, envHeaderBytes, len(raw) / 2, len(raw) - 1}
	for _, cut := range cuts {
		c := NewBinaryConn(&byteConn{r: bytes.NewReader(raw[:cut])}, nil)
		_, err := c.Recv()
		if err == nil {
			t.Fatalf("cut at %d of %d decoded successfully", cut, len(raw))
		}
		if cut == 0 && err != io.EOF {
			t.Errorf("empty stream: err = %v, want clean io.EOF", err)
		}
		if cut > 0 && err == io.EOF {
			t.Errorf("cut at %d reported a clean EOF", cut)
		}
	}
	// A complete frame followed by a cut one: first decodes, second errors.
	c := NewBinaryConn(&byteConn{r: bytes.NewReader(append(append([]byte{}, raw...), raw[:7]...))}, nil)
	if _, err := c.Recv(); err != nil {
		t.Fatalf("intact first frame: %v", err)
	}
	if _, err := c.Recv(); err == nil || err == io.EOF {
		t.Fatalf("truncated second frame: err = %v", err)
	}
}

// TestWireNegotiate covers the connect-time codec handshake at the
// socket level: upgrade accepted, upgrade declined, and a gob client
// against a sniffing server.
func TestWireNegotiate(t *testing.T) {
	listen := func(t *testing.T, acceptBinary bool) (net.Listener, chan *Conn) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		conns := make(chan *Conn, 1)
		go func() {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			conn, err := serverNegotiate(raw, acceptBinary)
			if err != nil {
				raw.Close()
				close(conns)
				return
			}
			conns <- conn
		}()
		return ln, conns
	}

	t.Run("upgrade", func(t *testing.T) {
		ln, conns := listen(t, true)
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if !clientNegotiate(raw, time.Second) {
			t.Fatal("binary-accepting server declined the preamble")
		}
		cc := NewBinaryConn(raw, nil)
		defer cc.Close()
		sc := <-conns
		if sc.Codec() != WireBinary {
			t.Fatalf("server codec %q, want binary", sc.Codec())
		}
		go cc.Send(&Envelope{Type: MsgHello, ClientID: 4, NumSamples: 77})
		e, err := sc.Recv()
		if err != nil || e.Type != MsgHello || e.NumSamples != 77 {
			t.Fatalf("post-upgrade exchange: %+v, %v", e, err)
		}
	})

	t.Run("declined", func(t *testing.T) {
		ln, conns := listen(t, false)
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer raw.Close()
		// The gob-only server feeds the preamble to its gob decoder, which
		// errors out; here the accept loop then closes the socket, so the
		// client's ack read fails and negotiation reports a decline. The
		// server side runs in a goroutine: serverNegotiate itself blocks
		// until the client's first bytes arrive.
		recvErr := make(chan error, 1)
		go func() {
			sc := <-conns
			_, err := sc.Recv()
			recvErr <- err
			sc.Close()
		}()
		if clientNegotiate(raw, time.Second) {
			t.Fatal("gob-only server accepted the binary preamble")
		}
		if err := <-recvErr; err == nil {
			t.Fatal("gob decoder accepted the binary preamble")
		}
	})

	t.Run("gob-client", func(t *testing.T) {
		ln, conns := listen(t, true)
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cc := NewConn(raw, nil) // plain gob, no preamble
		defer cc.Close()
		go cc.Send(&Envelope{Type: MsgHello, ClientID: 8, NumSamples: 5})
		sc := <-conns
		if sc.Codec() != WireGob {
			t.Fatalf("server codec %q, want gob (sniffed)", sc.Codec())
		}
		// The sniffed first byte is replayed: the hello decodes intact.
		e, err := sc.Recv()
		if err != nil || e.Type != MsgHello || e.ClientID != 8 || e.NumSamples != 5 {
			t.Fatalf("sniffed gob exchange: %+v, %v", e, err)
		}
	})
}

// wireSession runs a deterministic single-client session under the given
// codecs and returns both results plus the server's metrics exposition.
func wireSession(t *testing.T, serverWire, clientWire string) (*ServerResult, *ClientResult, map[string]float64) {
	t.Helper()
	seed := uint64(31)
	ds := dataset.SynthMNIST(200, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{16}, 10, stats.NewRNG(seed+3))
	}
	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 1
	cfg.ScaleRatiosForModel(5000)
	cfg.K = 1

	reg := obs.NewRegistry()
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 4, Wire: serverWire,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 2, Logf: quiet,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *ClientResult, 1)
	go func() {
		res, err := RunClient(ClientConfig{
			Addr: srv.Addr(), ID: 0, Data: train, NewModel: newModel, Wire: clientWire,
			LocalSteps: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9,
			Utility: cfg.Utility, UpBps: 1e6, DownBps: 1e6,
			DGCClip: 10, DGCMsgClip: 2, Seed: seed,
			Logf: quiet,
		})
		if err != nil {
			t.Errorf("client: %v", err)
		}
		done <- res
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	cres := <-done
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return res, cres, parseExposition(t, buf.String())
}

// TestWireFallbackToGob: a default (binary-requesting) client against a
// gob-only server falls back transparently — the session completes, every
// message is attributed to the gob codec, and the one fallback redial is
// not charged against the retry budget.
func TestWireFallbackToGob(t *testing.T) {
	res, cres, samples := wireSession(t, WireGob, "")
	if len(res.Rounds) != 4 {
		t.Fatalf("fallback session ran %d of 4 rounds", len(res.Rounds))
	}
	if cres == nil || cres.Rounds != 4 {
		t.Fatalf("fallback client saw %+v", cres)
	}
	if cres.Reconnects != 0 {
		t.Fatalf("fallback charged %d reconnects against the retry budget", cres.Reconnects)
	}
	if samples[`adafl_wire_messages_total{codec="gob"}`] <= 0 {
		t.Error("no messages attributed to the gob codec")
	}
	if samples[`adafl_wire_messages_total{codec="binary"}`] != 0 {
		t.Errorf("binary messages on a gob-only server: %v",
			samples[`adafl_wire_messages_total{codec="binary"}`])
	}
	if samples["adafl_connections"] != 0 {
		t.Errorf("adafl_connections = %v after shutdown, want 0", samples["adafl_connections"])
	}
}

// TestWireGobBinarySessionsBitIdentical: the binary codec must be a pure
// transport change — a deterministic session run over each codec produces
// bit-identical learning trajectories (f64 values survive both codecs
// exactly), differing only in wire volume.
func TestWireGobBinarySessionsBitIdentical(t *testing.T) {
	bin, binClient, binSamples := wireSession(t, "", "")
	gob, gobClient, _ := wireSession(t, WireGob, WireGob)
	if binSamples[`adafl_wire_messages_total{codec="binary"}`] <= 0 {
		t.Fatal("default session did not negotiate the binary codec")
	}
	if len(bin.Rounds) != len(gob.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(bin.Rounds), len(gob.Rounds))
	}
	for i := range bin.Rounds {
		b, g := bin.Rounds[i], gob.Rounds[i]
		if math.Float64bits(b.TestAcc) != math.Float64bits(g.TestAcc) {
			t.Errorf("round %d: acc %v (binary) vs %v (gob)", i, b.TestAcc, g.TestAcc)
		}
		if b.Selected != g.Selected || b.Received != g.Received {
			t.Errorf("round %d: participation differs: %+v vs %+v", i, b, g)
		}
	}
	if math.Float64bits(bin.FinalAcc) != math.Float64bits(gob.FinalAcc) {
		t.Fatalf("final acc differs: %v (binary) vs %v (gob)", bin.FinalAcc, gob.FinalAcc)
	}
	if binClient.Uploads != gobClient.Uploads {
		t.Fatalf("uploads differ: %d vs %d", binClient.Uploads, gobClient.Uploads)
	}
	// The point of the codec: same session, fewer wire bytes.
	if bin.BytesReceived >= gob.BytesReceived {
		t.Errorf("binary uplink %d bytes ≥ gob %d", bin.BytesReceived, gob.BytesReceived)
	}
}

// allocEnvelopes returns the steady-state hot-path messages at realistic
// sizes: a sparse update and a dense model broadcast.
func allocEnvelopes() (update, model *Envelope) {
	rng := stats.NewRNG(7)
	up := &compress.Sparse{Dim: 8192, Indices: make([]int32, 256), Values: make([]float64, 256)}
	for i := range up.Indices {
		up.Indices[i] = int32(rng.Intn(8192))
		up.Values[i] = rng.NormScaled(0, 0.01)
	}
	params := make([]float64, 2048)
	delta := make([]float64, 2048)
	for i := range params {
		params[i] = rng.NormScaled(0, 1)
		delta[i] = rng.NormScaled(0, 0.01)
	}
	return &Envelope{Type: MsgUpdate, ClientID: 1, Round: 5, Update: up},
		&Envelope{Type: MsgModel, Round: 5, Params: params, GlobalDelta: delta}
}

// TestWireZeroAllocSend pins the tentpole guarantee: steady-state binary
// sends of the hot-path messages allocate nothing.
func TestWireZeroAllocSend(t *testing.T) {
	update, model := allocEnvelopes()
	for _, tc := range []struct {
		name string
		e    *Envelope
	}{{"update", update}, {"model", model}} {
		conn := NewBinaryConn(&byteConn{}, nil)
		if allocs := testing.AllocsPerRun(100, func() {
			if err := conn.Send(tc.e); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("steady-state %s send: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestWireZeroAllocRecvInto pins the receive side: RecvInto decodes the
// hot-path messages into connection-owned scratch with zero allocations.
func TestWireZeroAllocRecvInto(t *testing.T) {
	update, model := allocEnvelopes()
	for _, tc := range []struct {
		name string
		e    *Envelope
	}{{"update", update}, {"model", model}} {
		raw := encodeBinaryEnvelope(t, tc.e)
		conn := NewBinaryConn(&byteConn{r: &repeatReader{data: raw}}, nil)
		var env Envelope
		// Prime the connection scratch (first decode allocates it).
		if err := conn.RecvInto(&env); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if err := conn.RecvInto(&env); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("steady-state %s recv: %v allocs/op, want 0", tc.name, allocs)
		}
		// The scratch decode must still be faithful.
		if env.Round != tc.e.Round || env.Type != tc.e.Type {
			t.Errorf("%s scratch decode corrupted: %+v", tc.name, &env)
		}
	}
}

// TestWireConcurrentSendRecv: Send and Recv stay goroutine-safe on a
// binary conn (the server shares one Conn between round goroutines and
// the shutdown path).
func TestWireConcurrentSendRecv(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewBinaryConn(a, nil), NewBinaryConn(b, nil)
	defer ca.Close()
	defer cb.Close()
	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := ca.Send(&Envelope{Type: MsgScore, ClientID: g, Round: i, Score: 0.5}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	got := 0
	for got < 2*n {
		e, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv after %d: %v", got, err)
		}
		if e.Type != MsgScore || e.Score != 0.5 {
			t.Fatalf("interleaved frame corrupted: %+v", e)
		}
		got++
	}
	wg.Wait()
}

// TestCodecInterop: every message type — including the edge-federation
// vocabulary (ping, edge hello, edge partial, reroute) — decodes to the
// same logical envelope through both codecs. A mixed deployment (binary
// edges, gob fallback clients) must agree on every field either path.
func TestCodecInterop(t *testing.T) {
	roundTrip := func(e *Envelope, mk func(net.Conn, *TokenBucket) *Conn) *Envelope {
		t.Helper()
		a, b := net.Pipe()
		ca, cb := mk(a, nil), mk(b, nil)
		defer ca.Close()
		defer cb.Close()
		errCh := make(chan error, 1)
		go func() { errCh <- ca.Send(e) }()
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("type %v: recv: %v", e.Type, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("type %v: send: %v", e.Type, err)
		}
		return got
	}
	for _, e := range fixtureEnvelopes() {
		viaGob := roundTrip(e, NewConn)
		viaBin := roundTrip(e, NewBinaryConn)
		if !reflect.DeepEqual(viaGob, viaBin) {
			t.Errorf("type %v: codecs disagree:\n gob    %+v\n binary %+v", e.Type, viaGob, viaBin)
		}
		if !reflect.DeepEqual(viaBin, e) {
			t.Errorf("type %v: binary drops information:\n got  %+v\n want %+v", e.Type, viaBin, e)
		}
	}
}

// TestWireHelloSessionLegacyInterop pins the multi-session hello
// extension's compatibility contract: an empty session encodes as the
// legacy 4-byte hello body, and a hand-built legacy frame decodes with
// Session == "" — pre-session peers and session-aware peers interoperate
// in both directions.
func TestWireHelloSessionLegacyInterop(t *testing.T) {
	plain := &Envelope{Type: MsgHello, ClientID: 3, NumSamples: 412}
	if size, err := plain.wirePayloadSize(); err != nil || size != envHeaderBytes+4 {
		t.Fatalf("plain hello payload = %d (%v), want legacy %d", size, err, envHeaderBytes+4)
	}
	raw := encodeBinaryEnvelope(t, plain)
	if len(raw) != 4+envHeaderBytes+4 {
		t.Fatalf("plain hello frame is %d bytes, want %d", len(raw), 4+envHeaderBytes+4)
	}

	// A session-bearing hello grows by exactly 1+len(name) bytes and
	// round-trips the name.
	named := &Envelope{Type: MsgHello, ClientID: 3, NumSamples: 412, Session: "line-b"}
	rawNamed := encodeBinaryEnvelope(t, named)
	if want := len(raw) + 1 + len(named.Session); len(rawNamed) != want {
		t.Fatalf("session hello frame is %d bytes, want %d", len(rawNamed), want)
	}

	// Decode the legacy frame through a binary Conn: Session must stay "".
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cb := NewBinaryConn(b, nil)
	go a.Write(raw)
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != "" || got.NumSamples != 412 || got.ClientID != 3 {
		t.Fatalf("legacy hello decoded as %+v", got)
	}
}
