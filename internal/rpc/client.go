package rpc

import (
	"fmt"
	"log"
	"net"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// ClientConfig configures a federation client process.
type ClientConfig struct {
	// Addr is the server address.
	Addr string
	// ID is the client's unique index (0-based).
	ID int
	// Data is the client's local shard.
	Data *dataset.Dataset
	// NewModel builds the shared architecture.
	NewModel func() *nn.Model
	// LocalSteps/BatchSize/LR/Momentum configure local SGD.
	LocalSteps, BatchSize int
	LR, Momentum          float64
	// Utility configures the locally computed utility score.
	Utility core.UtilityConfig
	// UpBps/DownBps are the link bandwidths the client reports into its
	// utility score; UpBps also drives the uplink throttle when
	// ThrottleUplink is set.
	UpBps, DownBps float64
	ThrottleUplink bool
	// DGC configures the uplink codec.
	DGCMomentum, DGCClip, DGCMsgClip float64
	// Seed drives batching.
	Seed uint64
	// Logf receives progress lines (log.Printf if nil).
	Logf func(format string, args ...interface{})
}

// ClientResult summarises a completed client session.
type ClientResult struct {
	Rounds    int
	Uploads   int
	BytesSent int64
}

// RunClient connects to the server and participates until shutdown.
func RunClient(cfg ClientConfig) (*ClientResult, error) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	raw, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	var throttle *TokenBucket
	if cfg.ThrottleUplink && cfg.UpBps > 0 {
		throttle = NewTokenBucket(cfg.UpBps)
	}
	conn := NewConn(raw, throttle)
	defer conn.Close()

	if err := conn.Send(&Envelope{Type: MsgHello, ClientID: cfg.ID, NumSamples: cfg.Data.Len()}); err != nil {
		return nil, err
	}

	model := cfg.NewModel()
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	iter := dataset.NewIterator(cfg.Data, cfg.BatchSize, stats.NewRNG(cfg.Seed))
	codec := &compress.DGC{Momentum: cfg.DGCMomentum, ClipNorm: cfg.DGCClip, MsgClipFactor: cfg.DGCMsgClip}
	res := &ClientResult{}

	for {
		e, err := conn.Recv()
		if err != nil {
			return res, fmt.Errorf("rpc: client %d recv: %w", cfg.ID, err)
		}
		switch e.Type {
		case MsgShutdown:
			cfg.Logf("client %d: shutdown (%s)", cfg.ID, e.Info)
			res.BytesSent = conn.BytesSent()
			return res, nil
		case MsgModel:
			// Local training from the received global model.
			model.SetParamVector(e.Params)
			for s := 0; s < cfg.LocalSteps; s++ {
				x, labels := iter.Next()
				model.ZeroGrads()
				model.TrainBatch(x, labels)
				opt.Step(model)
			}
			local := model.ParamVector()
			delta := make([]float64, len(local))
			tensor.SubVec(delta, local, e.Params)
			// Utility score against the server-provided ĝ.
			score := cfg.Utility.Score(cfg.UpBps, cfg.DownBps, delta, e.GlobalDelta)
			if tensor.Norm2(e.GlobalDelta) == 0 {
				score = 1 // warm-up: everyone reports full utility
			}
			if err := conn.Send(&Envelope{Type: MsgScore, ClientID: cfg.ID, Round: e.Round, Score: score}); err != nil {
				return res, err
			}
			// Await the selection decision.
			sel, err := conn.Recv()
			if err != nil || sel.Type != MsgSelect {
				return res, fmt.Errorf("rpc: client %d expected select: %v", cfg.ID, err)
			}
			res.Rounds++
			if sel.Ratio <= 0 {
				continue // withheld this round
			}
			msg := codec.Encode(delta, sel.Ratio)
			if err := conn.Send(&Envelope{Type: MsgUpdate, ClientID: cfg.ID, Round: e.Round, Update: msg}); err != nil {
				return res, err
			}
			res.Uploads++
		default:
			return res, fmt.Errorf("rpc: client %d unexpected message %v", cfg.ID, e.Type)
		}
	}
}
