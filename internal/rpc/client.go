package rpc

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// ClientConfig configures a federation client process.
type ClientConfig struct {
	// Addr is the server address.
	Addr string
	// Session routes the registration to a named session on a
	// multi-session control plane ("" = the default session). At most 255
	// bytes on the binary wire.
	Session string
	// Async switches the client to the buffered-asynchronous protocol:
	// instead of lockstep rounds it cycles pull→train→push against an
	// async session (flserver -async) with no selection or negotiation
	// exchange. AsyncRatio sets the uplink compression ratio for async
	// pushes (0 means 1: uncompressed).
	Async      bool
	AsyncRatio float64
	// ID is the client's unique index (0-based).
	ID int
	// Data is the client's local shard.
	Data *dataset.Dataset
	// NewModel builds the shared architecture.
	NewModel func() *nn.Model
	// LocalSteps/BatchSize/LR/Momentum configure local SGD.
	LocalSteps, BatchSize int
	LR, Momentum          float64
	// Utility configures the locally computed utility score.
	Utility core.UtilityConfig
	// UpBps/DownBps are the link bandwidths the client reports into its
	// utility score; UpBps also drives the uplink throttle when
	// ThrottleUplink is set.
	UpBps, DownBps float64
	ThrottleUplink bool
	// Bandwidth, when non-nil, overrides the reported bandwidths per
	// round — the scenario engine's per-class multipliers and bandwidth
	// traces evaluate here (pure function of the round index, so server
	// and client agree without coordination). The static UpBps still
	// drives the uplink throttle.
	Bandwidth func(round int) (upBps, downBps float64)
	// Codec names the default uplink codec: "dgc" (momentum-corrected
	// top-k with error feedback), "dadaquant", "qsgd", "terngrad",
	// "topk" or "identity". "" picks "dgc" in sync mode and "topk" in
	// async mode (DGC's momentum correction presumes lockstep rounds).
	// A negotiated Select assignment overrides it per round.
	Codec string
	// DGC configures the uplink codec.
	DGCMomentum, DGCClip, DGCMsgClip float64
	// Seed drives batching.
	Seed uint64
	// Logf receives progress lines (log.Printf if nil).
	Logf func(format string, args ...interface{})

	// MaxRetries bounds how many consecutive failed redial/re-Hello
	// attempts the client tolerates after losing the connection (0 =
	// fail on first loss). The budget resets whenever a connection makes
	// progress (receives at least one message). Training state —
	// optimizer momentum, batch iterator, DGC residuals — is preserved
	// across reconnects; the model resyncs from the server's next
	// broadcast.
	MaxRetries int
	// RetryBackoff is the initial redial backoff window; the window
	// doubles per consecutive failure, capped at 5s, and each wait is
	// drawn uniformly from [0, window) (full jitter, seeded from Seed)
	// so a fleet redialling a restarted server doesn't reconnect in
	// lockstep. 0 means 200ms.
	RetryBackoff time.Duration
	// DialTimeout bounds each dial attempt. 0 means 10s.
	DialTimeout time.Duration
	// Fault, when non-nil, wraps the dialed connection with injected link
	// faults (chaos testing and demos).
	Fault *FaultConfig

	// Wire selects the wire codec: "" or WireBinary requests the binary
	// codec at connect time and falls back to gob when the server
	// declines (one extra dial, not charged against MaxRetries); WireGob
	// skips negotiation and speaks gob directly.
	Wire string

	// Metrics, when non-nil, receives the client's operational metrics
	// (redials, backoff waits, local-training latency, uploads, bytes
	// sent). Nil disables metrics at zero cost.
	Metrics *obs.Registry
}

// ClientResult summarises a completed client session.
type ClientResult struct {
	Rounds     int
	Uploads    int
	BytesSent  int64
	Reconnects int
}

// errProtocol marks unrecoverable protocol violations: reconnecting
// cannot fix a peer that speaks the wrong protocol.
var errProtocol = errors.New("protocol violation")

const maxRetryBackoff = 5 * time.Second

// RunClient connects to the server and participates until shutdown. Lost
// connections are retried with exponential backoff up to MaxRetries; a
// reconnected client re-registers and resumes at the server's next round.
func RunClient(cfg ClientConfig) (*ClientResult, error) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.Wire != "" && cfg.Wire != WireBinary && cfg.Wire != WireGob {
		return nil, fmt.Errorf("rpc: unknown wire codec %q (want %q or %q)", cfg.Wire, WireBinary, WireGob)
	}
	sess, err := newClientSession(cfg)
	if err != nil {
		return nil, err
	}
	// Jitter from a stream decorrelated from the batch iterator's: both
	// derive from Seed, but Split mixes the state so the redial schedule
	// does not echo the batch order.
	backoff := NewRetryBackoff(cfg.RetryBackoff, maxRetryBackoff, stats.NewRNG(cfg.Seed).Split())
	run := sess.runOnce
	if cfg.Async {
		run = sess.runAsyncOnce
	}
	for retries := 0; ; {
		done, progressed, err := run()
		if done {
			return sess.res, nil
		}
		if progressed {
			// The link worked for a while: this loss is a fresh failure,
			// not part of a consecutive-failure streak.
			retries = 0
			backoff.Reset()
		}
		if errors.Is(err, errProtocol) || retries >= cfg.MaxRetries {
			return sess.res, err
		}
		retries++
		wait := backoff.Next()
		sess.met.redials.Inc()
		sess.met.backoffSec.Observe(wait.Seconds())
		cfg.Logf("client %d: link lost (%v); reconnect %d/%d in %v",
			cfg.ID, err, retries, cfg.MaxRetries, wait)
		time.Sleep(wait)
		sess.res.Reconnects++
	}
}

// rollbackCodec is the deferred-commit surface of an error-feedback codec
// (DGC): an encode stays staged until the upload is known to have landed,
// so a failed or rejected upload can return its mass to the residuals.
type rollbackCodec interface {
	Rollback()
	Commit()
}

// clientSession holds the state that survives reconnects.
type clientSession struct {
	cfg   ClientConfig
	model *nn.Model
	opt   *nn.SGD
	iter  *dataset.Iterator
	codec compress.Codec      // default uplink codec (ClientConfig.Codec)
	dgc   *compress.DGC       // negotiated-dgc instance (the default one when it is a DGC)
	dada  *compress.DAdaQuant // negotiated quantizer, built on first assignment
	// pending is the codec with a staged, uncommitted encode: committed
	// when the next receive proves the server took the upload, rolled
	// back when the connection dies first (the server evicted us or the
	// link failed — either way the update never joined the aggregate).
	pending rollbackCodec
	res     *ClientResult
	met     clientMetrics
	// gobOnly is sticky across reconnects: once the server declines the
	// binary preamble there is no point renegotiating on every redial.
	gobOnly bool
}

// newUplinkCodec builds the named default codec. The stochastic codecs
// get RNG streams decorrelated from the batch iterator's by fixed salts.
func newUplinkCodec(cfg ClientConfig) (compress.Codec, error) {
	name := cfg.Codec
	if name == "" {
		// DGC's momentum correction presumes lockstep rounds: in the
		// continuous async push loop it accumulates across pushes and
		// inflates every delta, so async mode defaults to plain top-k
		// (exact at AsyncRatio 1) instead.
		if cfg.Async {
			name = "topk"
		} else {
			name = "dgc"
		}
	}
	switch name {
	case "dgc":
		d := &compress.DGC{Momentum: cfg.DGCMomentum, ClipNorm: cfg.DGCClip, MsgClipFactor: cfg.DGCMsgClip}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		return d, nil
	case "dadaquant":
		return compress.NewDAdaQuant(15, 63, 8, stats.NewRNG(cfg.Seed^0xdada)), nil
	case "qsgd":
		return compress.NewQSGD(15, stats.NewRNG(cfg.Seed^0x95bd)), nil
	case "terngrad":
		return compress.NewTernGrad(stats.NewRNG(cfg.Seed ^ 0x7e26)), nil
	case "topk":
		return &compress.TopK{}, nil
	case "identity":
		return compress.Identity{}, nil
	}
	return nil, fmt.Errorf("rpc: unknown uplink codec %q", name)
}

func newClientSession(cfg ClientConfig) (*clientSession, error) {
	codec, err := newUplinkCodec(cfg)
	if err != nil {
		return nil, err
	}
	s := &clientSession{
		cfg:     cfg,
		model:   cfg.NewModel(),
		opt:     nn.NewSGD(cfg.LR, cfg.Momentum, 0),
		iter:    dataset.NewIterator(cfg.Data, cfg.BatchSize, stats.NewRNG(cfg.Seed)),
		codec:   codec,
		res:     &ClientResult{},
		met:     newClientMetrics(cfg.Metrics),
		gobOnly: cfg.Wire == WireGob,
	}
	if d, ok := codec.(*compress.DGC); ok {
		s.dgc = d
	}
	if d, ok := codec.(*compress.DAdaQuant); ok {
		s.dada = d
	}
	return s, nil
}

// negotiatedCodec resolves a Select assignment's codec name against the
// session's instances, building them on first use. An empty name is the
// session default; an unknown one is a protocol violation (the server
// and client disagree on the negotiation vocabulary).
func (s *clientSession) negotiatedCodec(name string) (compress.Codec, error) {
	switch name {
	case "", s.codec.Name():
		return s.codec, nil
	case core.CodecDGC:
		if s.dgc == nil {
			s.dgc = &compress.DGC{Momentum: s.cfg.DGCMomentum, ClipNorm: s.cfg.DGCClip, MsgClipFactor: s.cfg.DGCMsgClip}
		}
		return s.dgc, nil
	case core.CodecDAdaQuant:
		if s.dada == nil {
			// Wide bounds: the server's explicit per-round level count
			// (clamped by SetLevels) is the real control.
			s.dada = compress.NewDAdaQuant(1, 1<<20, 8, stats.NewRNG(s.cfg.Seed^0xdada))
		}
		return s.dada, nil
	}
	return nil, fmt.Errorf("unknown negotiated codec %q", name)
}

func (s *clientSession) commitPending() {
	if s.pending != nil {
		s.pending.Commit()
		s.pending = nil
	}
}

func (s *clientSession) rollbackPending() {
	if s.pending != nil {
		s.pending.Rollback()
		s.pending = nil
	}
}

// dial establishes a connection in the session's negotiated codec. A
// declined binary preamble costs one immediate gob redial (the server
// consumed the preamble as a corrupt gob stream and dropped us) and
// downgrades the session; it is not counted against the retry budget —
// the server is alive and answering, just older.
func (s *clientSession) dial() (*Conn, error) {
	cfg := s.cfg
	var throttle *TokenBucket
	if cfg.ThrottleUplink && cfg.UpBps > 0 {
		throttle = NewTokenBucket(cfg.UpBps)
	}
	raw, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	wrapped := WrapFault(raw, cfg.Fault)
	if !s.gobOnly {
		if clientNegotiate(wrapped, cfg.DialTimeout) {
			return NewBinaryConn(wrapped, throttle), nil
		}
		wrapped.Close()
		s.gobOnly = true
		cfg.Logf("client %d: server declined binary wire codec, falling back to gob", cfg.ID)
		if raw, err = net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout); err != nil {
			return nil, err
		}
		wrapped = WrapFault(raw, cfg.Fault)
	}
	return NewConn(wrapped, throttle), nil
}

// runOnce dials, registers and participates until shutdown (done=true) or
// a connection/protocol error (done=false, err != nil). progressed
// reports whether the connection got far enough to receive a message.
func (s *clientSession) runOnce() (done, progressed bool, err error) {
	cfg := s.cfg
	conn, err := s.dial()
	if err != nil {
		return false, false, err
	}
	// The live counter advances by delta at every upload, not only at
	// connection close — a mid-session /metrics scrape must see traffic.
	var counted int64
	countSent := func() {
		total := conn.BytesSent()
		s.met.bytesSent.Add(total - counted)
		counted = total
	}
	defer func() {
		countSent()
		s.res.BytesSent += conn.BytesSent()
		conn.Close()
	}()

	if err := conn.Send(&Envelope{Type: MsgHello, ClientID: cfg.ID, NumSamples: cfg.Data.Len(), Session: cfg.Session}); err != nil {
		return false, false, err
	}

	// Receive scratch: env holds the current broadcast (its Round is read
	// after the selection exchange, so the selection lands in a separate
	// envelope; both share the connection's decode buffers, which is safe
	// because MsgSelect carries no slice payloads).
	var env, sel Envelope
	for {
		e := &env
		if err := conn.RecvInto(e); err != nil {
			// A staged error-feedback encode whose upload was never
			// acknowledged by further traffic returns its mass to the
			// residuals: the server evicted us (quarantine, deadline) or
			// the link died, so the update never joined the aggregate.
			s.rollbackPending()
			return false, progressed, fmt.Errorf("rpc: client %d recv: %w", cfg.ID, err)
		}
		// Any message after an upload proves the server kept us in the
		// session — the staged encode is spent for good.
		s.commitPending()
		progressed = true
		switch e.Type {
		case MsgShutdown:
			cfg.Logf("client %d: shutdown (%s)", cfg.ID, e.Info)
			return true, true, nil
		case MsgWelcome:
			if e.Round > 0 {
				cfg.Logf("client %d: joining in-progress session at round %d", cfg.ID, e.Round+1)
			}
		case MsgPing:
			// Keepalive probe: echo it so the server's liveness watchdog
			// sees a response within the heartbeat interval rather than
			// waiting for the next phase deadline.
			if err := conn.Send(&Envelope{Type: MsgPing, ClientID: cfg.ID, Round: e.Round}); err != nil {
				return false, true, err
			}
		case MsgModel:
			// Guard the broadcast before trusting it: a corrupt stream
			// that still decodes must not panic SetParamVector or the
			// utility score's dot products.
			if len(e.Params) != s.model.NumParams() {
				return false, true, fmt.Errorf("rpc: client %d: broadcast has %d params, model has %d: %w",
					cfg.ID, len(e.Params), s.model.NumParams(), errProtocol)
			}
			if len(e.GlobalDelta) != 0 && len(e.GlobalDelta) != len(e.Params) {
				return false, true, fmt.Errorf("rpc: client %d: global delta length %d vs %d params: %w",
					cfg.ID, len(e.GlobalDelta), len(e.Params), errProtocol)
			}
			// Local training from the received global model.
			s.model.SetParamVector(e.Params)
			trainStart := time.Now()
			for step := 0; step < cfg.LocalSteps; step++ {
				x, labels := s.iter.Next()
				s.model.ZeroGrads()
				s.model.TrainBatch(x, labels)
				s.opt.Step(s.model)
			}
			s.met.trainSec.Observe(time.Since(trainStart).Seconds())
			local := s.model.ParamVector()
			delta := make([]float64, len(local))
			tensor.SubVec(delta, local, e.Params)
			// Utility score against the server-provided ĝ.
			up, down := cfg.UpBps, cfg.DownBps
			if cfg.Bandwidth != nil {
				up, down = cfg.Bandwidth(e.Round)
			}
			score := cfg.Utility.Score(up, down, delta, e.GlobalDelta)
			if tensor.Norm2(e.GlobalDelta) == 0 {
				score = 1 // warm-up: everyone reports full utility
			}
			if err := conn.Send(&Envelope{Type: MsgScore, ClientID: cfg.ID, Round: e.Round, Score: score}); err != nil {
				return false, true, err
			}
			// Await the selection decision.
			if err := conn.RecvInto(&sel); err != nil {
				return false, true, fmt.Errorf("rpc: client %d recv select: %w", cfg.ID, err)
			}
			if sel.Type != MsgSelect {
				return false, true, fmt.Errorf("rpc: client %d expected select, got %v: %w", cfg.ID, sel.Type, errProtocol)
			}
			s.res.Rounds++
			if sel.Ratio <= 0 {
				s.met.withheld.Inc()
				continue // withheld this round
			}
			// Honor the negotiated assignment: codec by name, ratio
			// clamped against hostile or corrupt frames (NaN maps to 1 —
			// upload uncompressed rather than explode), level count
			// applied to the quantizer (which clamps it to its bounds).
			enc, cerr := s.negotiatedCodec(sel.Codec)
			if cerr != nil {
				return false, true, fmt.Errorf("rpc: client %d: %v: %w", cfg.ID, cerr, errProtocol)
			}
			ratio := compress.ClampRatio(sel.Ratio, 1, 1e9)
			if d, ok := enc.(*compress.DAdaQuant); ok {
				d.SetRound(sel.Round)
				d.SetLevels(sel.Levels)
			}
			msg := enc.Encode(delta, ratio)
			if err := conn.Send(&Envelope{Type: MsgUpdate, ClientID: cfg.ID, Round: e.Round, Update: msg}); err != nil {
				// The send never completed: the staged encode rolls back
				// immediately so the redialled session re-transmits it.
				if rb, ok := enc.(rollbackCodec); ok {
					rb.Rollback()
				}
				return false, true, err
			}
			if rb, ok := enc.(rollbackCodec); ok {
				s.pending = rb
			}
			s.res.Uploads++
			s.met.uploads.Inc()
			countSent()
		default:
			return false, true, fmt.Errorf("rpc: client %d unexpected message %v: %w", cfg.ID, e.Type, errProtocol)
		}
	}
}

// runAsyncOnce dials, registers and cycles pull→train→push until
// shutdown. The async protocol has no round barrier: the server answers
// each MsgAsyncPull with the current global (Round carries the model
// version) and folds each MsgAsyncPush into its FedBuff buffer, down-
// weighting it by how many versions the base model has aged while we
// trained. Link losses redial exactly like the synchronous path; the
// model resyncs on the next pull, and a staged error-feedback encode is
// committed by the next received message or rolled back on loss.
func (s *clientSession) runAsyncOnce() (done, progressed bool, err error) {
	cfg := s.cfg
	conn, err := s.dial()
	if err != nil {
		return false, false, err
	}
	var counted int64
	countSent := func() {
		total := conn.BytesSent()
		s.met.bytesSent.Add(total - counted)
		counted = total
	}
	defer func() {
		countSent()
		s.res.BytesSent += conn.BytesSent()
		conn.Close()
	}()

	if err := conn.Send(&Envelope{Type: MsgHello, ClientID: cfg.ID, NumSamples: cfg.Data.Len(), Session: cfg.Session}); err != nil {
		return false, false, err
	}
	ratio := compress.ClampRatio(s.cfg.AsyncRatio, 1, 1e9)
	var env Envelope
	for {
		e := &env
		if err := conn.RecvInto(e); err != nil {
			s.rollbackPending()
			return false, progressed, fmt.Errorf("rpc: client %d recv: %w", cfg.ID, err)
		}
		s.commitPending()
		progressed = true
		switch e.Type {
		case MsgShutdown:
			cfg.Logf("client %d: shutdown (%s)", cfg.ID, e.Info)
			return true, true, nil
		case MsgWelcome:
			if e.Round > 0 {
				cfg.Logf("client %d: joining async session at model version %d", cfg.ID, e.Round)
			}
			if err := conn.Send(&Envelope{Type: MsgAsyncPull, ClientID: cfg.ID}); err != nil {
				return false, true, err
			}
		case MsgPing:
			if err := conn.Send(&Envelope{Type: MsgPing, ClientID: cfg.ID, Round: e.Round}); err != nil {
				return false, true, err
			}
		case MsgModel:
			if len(e.Params) != s.model.NumParams() {
				return false, true, fmt.Errorf("rpc: client %d: broadcast has %d params, model has %d: %w",
					cfg.ID, len(e.Params), s.model.NumParams(), errProtocol)
			}
			version := e.Round
			s.model.SetParamVector(e.Params)
			trainStart := time.Now()
			for step := 0; step < cfg.LocalSteps; step++ {
				x, labels := s.iter.Next()
				s.model.ZeroGrads()
				s.model.TrainBatch(x, labels)
				s.opt.Step(s.model)
			}
			s.met.trainSec.Observe(time.Since(trainStart).Seconds())
			local := s.model.ParamVector()
			delta := make([]float64, len(local))
			tensor.SubVec(delta, local, e.Params)
			msg := s.codec.Encode(delta, ratio)
			// Round pins the version this delta was trained from: the
			// server derives staleness from it when the push is folded.
			if err := conn.Send(&Envelope{Type: MsgAsyncPush, ClientID: cfg.ID, Round: version, Update: msg}); err != nil {
				if rb, ok := s.codec.(rollbackCodec); ok {
					rb.Rollback()
				}
				return false, true, err
			}
			if rb, ok := s.codec.(rollbackCodec); ok {
				s.pending = rb
			}
			s.res.Rounds++
			s.res.Uploads++
			s.met.uploads.Inc()
			countSent()
			if err := conn.Send(&Envelope{Type: MsgAsyncPull, ClientID: cfg.ID}); err != nil {
				return false, true, err
			}
		default:
			return false, true, fmt.Errorf("rpc: client %d unexpected message %v: %w", cfg.ID, e.Type, errProtocol)
		}
	}
}
