package rpc

import (
	"net"
	"sync"
	"testing"
	"time"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

func quiet(string, ...interface{}) {}

func TestTokenBucketRate(t *testing.T) {
	var slept time.Duration
	tb := NewTokenBucket(1000) // 1000 B/s
	tb.sleep = func(d time.Duration) {
		slept += d
		// Simulate time passing by refilling manually.
		tb.mu.Lock()
		tb.tokens += d.Seconds() * tb.rate
		tb.mu.Unlock()
	}
	tb.Take(500) // within initial burst
	if slept != 0 {
		t.Fatalf("burst should not sleep, slept %v", slept)
	}
	tb.Take(2000) // needs ~1.5s of tokens beyond the remaining 500
	if slept < time.Second || slept > 3*time.Second {
		t.Fatalf("unexpected total sleep %v", slept)
	}
}

func TestTokenBucketPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	NewTokenBucket(0)
}

func TestConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, nil), NewConn(b, nil)
	done := make(chan *Envelope, 1)
	go func() {
		e, err := cb.Recv()
		if err != nil {
			t.Error(err)
		}
		done <- e
	}()
	want := &Envelope{Type: MsgScore, ClientID: 3, Round: 7, Score: 0.75}
	if err := ca.Send(want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.Type != want.Type || got.ClientID != 3 || got.Round != 7 || got.Score != 0.75 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if ca.BytesSent() == 0 || cb.BytesReceived() == 0 {
		t.Fatal("byte counters not advancing")
	}
	ca.Close()
	cb.Close()
}

func TestConnSparsePayload(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, nil), NewConn(b, nil)
	defer ca.Close()
	defer cb.Close()
	go func() {
		ca.Send(&Envelope{Type: MsgUpdate, Update: sparseFixture()})
	}()
	e, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Update == nil || e.Update.Dim != 4 || e.Update.Values[1] != -2 {
		t.Fatalf("sparse payload corrupted: %+v", e.Update)
	}
}

func sparseFixture() *compress.Sparse {
	return &compress.Sparse{Dim: 4, Indices: []int32{0, 2}, Values: []float64{1, -2}}
}

// TestEndToEndSession runs a real server and three client goroutines over
// localhost TCP and verifies the federation learns.
func TestEndToEndSession(t *testing.T) {
	const clients = 3
	seed := uint64(5)
	ds := dataset.SynthMNIST(600, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionIID(train, clients, seed+2)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+3))
	}

	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 2
	cfg.ScaleRatiosForModel(9000)
	cfg.K = 2

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: clients, Rounds: 12,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 4, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientResults := make([]*ClientResult, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunClient(ClientConfig{
				Addr: srv.Addr(), ID: i, Data: parts[i], NewModel: newModel,
				LocalSteps: 3, BatchSize: 16, LR: 0.1, Momentum: 0.9,
				Utility: cfg.Utility, UpBps: 1e6, DownBps: 1e6,
				DGCClip: 10, DGCMsgClip: 2, Seed: seed + uint64(i),
				Logf: quiet,
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			clientResults[i] = res
		}()
	}

	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(res.Rounds) != 12 {
		t.Fatalf("rounds recorded %d", len(res.Rounds))
	}
	if res.FinalAcc < 0.4 {
		t.Fatalf("distributed session did not learn: acc %.3f", res.FinalAcc)
	}
	if res.BytesReceived == 0 {
		t.Fatal("no uplink bytes")
	}
	for i, cr := range clientResults {
		if cr == nil {
			t.Fatalf("client %d produced no result", i)
		}
		if cr.Rounds != 12 {
			t.Errorf("client %d saw %d rounds", i, cr.Rounds)
		}
		if cr.Uploads == 0 || cr.Uploads > 12 {
			t.Errorf("client %d uploads %d", i, cr.Uploads)
		}
		if cr.BytesSent == 0 {
			t.Errorf("client %d sent no bytes", i)
		}
	}
	// Selection must have withheld some uploads post-warmup (K=2 of 3).
	totalUploads := 0
	for _, cr := range clientResults {
		totalUploads += cr.Uploads
	}
	if totalUploads >= clients*12 {
		t.Fatalf("no uploads withheld: %d", totalUploads)
	}
}

// TestThrottledClientStillWorks exercises the token-bucket path end to end
// with a generous rate so the test stays fast.
func TestThrottledClientStillWorks(t *testing.T) {
	seed := uint64(9)
	ds := dataset.SynthMNIST(200, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{16}, 10, stats.NewRNG(seed+3))
	}
	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 1
	cfg.ScaleRatiosForModel(5000)
	cfg.K = 1

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 3,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 3, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(ClientConfig{
			Addr: srv.Addr(), ID: 0, Data: train, NewModel: newModel,
			LocalSteps: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9,
			Utility: cfg.Utility, UpBps: 5e6, DownBps: 5e6,
			ThrottleUplink: true,
			DGCClip:        10, DGCMsgClip: 2, Seed: seed,
			Logf: quiet,
		})
		done <- err
	}()
	if _, err := srv.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsDuplicateIDs(t *testing.T) {
	newModel := func() *nn.Model {
		return nn.NewLogistic(4, 2, stats.NewRNG(1))
	}
	cfg := core.DefaultConfig()
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2, Rounds: 1,
		Cfg: cfg, NewModel: newModel, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	dial := func() *Conn {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return NewConn(raw, nil)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Run()
		errCh <- err
	}()
	c1 := dial()
	c1.Send(&Envelope{Type: MsgHello, ClientID: 0, NumSamples: 10})
	c2 := dial()
	c2.Send(&Envelope{Type: MsgHello, ClientID: 0, NumSamples: 10})
	if err := <-errCh; err == nil {
		t.Fatal("duplicate id accepted")
	}
	c1.Close()
	c2.Close()
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("zero clients/rounds accepted")
	}
}
