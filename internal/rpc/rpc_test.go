package rpc

import (
	"net"
	"sync"
	"testing"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

func quiet(string, ...interface{}) {}

func TestConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, nil), NewConn(b, nil)
	done := make(chan *Envelope, 1)
	go func() {
		e, err := cb.Recv()
		if err != nil {
			t.Error(err)
		}
		done <- e
	}()
	want := &Envelope{Type: MsgScore, ClientID: 3, Round: 7, Score: 0.75}
	if err := ca.Send(want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.Type != want.Type || got.ClientID != 3 || got.Round != 7 || got.Score != 0.75 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if ca.BytesSent() == 0 || cb.BytesReceived() == 0 {
		t.Fatal("byte counters not advancing")
	}
	ca.Close()
	cb.Close()
}

func TestConnSparsePayload(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, nil), NewConn(b, nil)
	defer ca.Close()
	defer cb.Close()
	go func() {
		ca.Send(&Envelope{Type: MsgUpdate, Update: sparseFixture()})
	}()
	e, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Update == nil || e.Update.Dim != 4 || e.Update.Values[1] != -2 {
		t.Fatalf("sparse payload corrupted: %+v", e.Update)
	}
}

func sparseFixture() *compress.Sparse {
	return &compress.Sparse{Dim: 4, Indices: []int32{0, 2}, Values: []float64{1, -2}}
}

// TestEndToEndSession runs a real server and three client goroutines over
// localhost TCP and verifies the federation learns.
func TestEndToEndSession(t *testing.T) {
	const clients = 3
	seed := uint64(5)
	ds := dataset.SynthMNIST(600, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionIID(train, clients, seed+2)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+3))
	}

	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 2
	cfg.ScaleRatiosForModel(9000)
	cfg.K = 2

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: clients, Rounds: 12,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 4, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientResults := make([]*ClientResult, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunClient(ClientConfig{
				Addr: srv.Addr(), ID: i, Data: parts[i], NewModel: newModel,
				LocalSteps: 3, BatchSize: 16, LR: 0.1, Momentum: 0.9,
				Utility: cfg.Utility, UpBps: 1e6, DownBps: 1e6,
				DGCClip: 10, DGCMsgClip: 2, Seed: seed + uint64(i),
				Logf: quiet,
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			clientResults[i] = res
		}()
	}

	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(res.Rounds) != 12 {
		t.Fatalf("rounds recorded %d", len(res.Rounds))
	}
	if res.FinalAcc < 0.4 {
		t.Fatalf("distributed session did not learn: acc %.3f", res.FinalAcc)
	}
	if res.BytesReceived == 0 {
		t.Fatal("no uplink bytes")
	}
	for i, cr := range clientResults {
		if cr == nil {
			t.Fatalf("client %d produced no result", i)
		}
		if cr.Rounds != 12 {
			t.Errorf("client %d saw %d rounds", i, cr.Rounds)
		}
		if cr.Uploads == 0 || cr.Uploads > 12 {
			t.Errorf("client %d uploads %d", i, cr.Uploads)
		}
		if cr.BytesSent == 0 {
			t.Errorf("client %d sent no bytes", i)
		}
	}
	// Selection must have withheld some uploads post-warmup (K=2 of 3).
	totalUploads := 0
	for _, cr := range clientResults {
		totalUploads += cr.Uploads
	}
	if totalUploads >= clients*12 {
		t.Fatalf("no uploads withheld: %d", totalUploads)
	}
}

// TestThrottledClientStillWorks exercises the token-bucket path end to end
// with a generous rate so the test stays fast.
func TestThrottledClientStillWorks(t *testing.T) {
	seed := uint64(9)
	ds := dataset.SynthMNIST(200, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{16}, 10, stats.NewRNG(seed+3))
	}
	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 1
	cfg.ScaleRatiosForModel(5000)
	cfg.K = 1

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 3,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 3, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(ClientConfig{
			Addr: srv.Addr(), ID: 0, Data: train, NewModel: newModel,
			LocalSteps: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9,
			Utility: cfg.Utility, UpBps: 5e6, DownBps: 5e6,
			ThrottleUplink: true,
			DGCClip:        10, DGCMsgClip: 2, Seed: seed,
			Logf: quiet,
		})
		done <- err
	}()
	if _, err := srv.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("zero clients/rounds accepted")
	}
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", NumClients: 2, Rounds: 1, MinClients: 3}); err == nil {
		t.Fatal("MinClients > NumClients accepted")
	}
}

// TestServerSelectorSparseIDs regression-tests the eviction aftermath:
// client IDs are no longer dense 0..n-1, and planning over a sparse or
// shifted id set must neither panic nor select absent clients.
func TestServerSelectorSparseIDs(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.K = 2
	cfg.Tau = 0
	cfg.Compression.WarmupRounds = 1
	sel := newServerSelector(cfg)

	// Warm-up over sparse ids selects everyone at the warmup ratio.
	warm := sel.plan(0, map[int]float64{7: 0.9, 42: 0.2, 3: 0.5})
	if len(warm) != 3 {
		t.Fatalf("warmup selected %d of 3", len(warm))
	}
	for _, id := range []int{3, 7, 42} {
		if _, ok := warm[id]; !ok {
			t.Fatalf("warmup missed id %d", id)
		}
	}

	// Post-warmup: ids far beyond len(scores) — the old vec[id] indexing
	// panicked here.
	scores := map[int]float64{5: 0.9, 107: 0.8, 3000: 0.7}
	for round := 1; round < 6; round++ {
		plan := sel.plan(round, scores)
		if len(plan) == 0 || len(plan) > cfg.K {
			t.Fatalf("round %d: plan size %d with K=%d", round, len(plan), cfg.K)
		}
		for id, ratio := range plan {
			if _, ok := scores[id]; !ok {
				t.Fatalf("round %d: selected absent client %d", round, id)
			}
			if ratio < 1 {
				t.Fatalf("round %d: ratio %f < 1", round, ratio)
			}
		}
	}
	// Fairness: over successive rounds every client must get selected at
	// least once despite a fixed score ordering.
	seen := map[int]bool{}
	for round := 1; round < 8; round++ {
		for id := range sel.plan(round, scores) {
			seen[id] = true
		}
	}
	if len(seen) != len(scores) {
		t.Fatalf("rotation starved clients: only %d of %d ever selected", len(seen), len(scores))
	}

	// An empty score set (every client evicted mid-round) plans nothing.
	if plan := sel.plan(9, map[int]float64{}); len(plan) != 0 {
		t.Fatalf("empty scores planned %d clients", len(plan))
	}
}

// TestServerSelectorEmptySelectionFallsBack pins the τ-starvation
// fallback on the wire-protocol selector: with ExploreFrac 0 and every
// reported score below τ, Algorithm 1 selects nobody, and the selector
// must fall back to warm-up-style full participation rather than waste
// the round on an empty plan.
func TestServerSelectorEmptySelectionFallsBack(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.K = 2
	cfg.Tau = 0.9
	cfg.ExploreFrac = 0
	cfg.Compression.WarmupRounds = 1
	sel := newServerSelector(cfg)

	scores := map[int]float64{1: 0.1, 5: 0.2, 9: 0.05} // all below τ
	plan := sel.plan(3, scores)                        // round 3: past warm-up
	if len(plan) != len(scores) {
		t.Fatalf("fallback planned %d of %d clients", len(plan), len(scores))
	}
	for id, ratio := range plan {
		if _, ok := scores[id]; !ok {
			t.Fatalf("fallback selected absent client %d", id)
		}
		if ratio != cfg.Compression.WarmupRatio {
			t.Fatalf("client %d: ratio %v, want warm-up ratio %v", id, ratio, cfg.Compression.WarmupRatio)
		}
	}
	// The fallback must count as a selection for fairness bookkeeping.
	for id := range scores {
		if sel.last(id) != 3 {
			t.Fatalf("client %d: lastSel %d, want 3", id, sel.last(id))
		}
	}
}
