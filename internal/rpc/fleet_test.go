package rpc

import (
	"math"
	"path/filepath"
	"testing"
)

// fleetCfg builds a fast unix-socket fleet configuration.
func fleetCfg(t *testing.T, wire string, clients, rounds int) FleetConfig {
	t.Helper()
	return FleetConfig{
		Network: "unix",
		Addr:    filepath.Join(t.TempDir(), "fleet.sock"),
		Wire:    wire,
		Clients: clients, Rounds: rounds,
		Dim: 2000, Nnz: 100,
		Seed: 11,
	}
}

// TestFleetBinarySockets is the harness smoke test at a few hundred real
// unix-socket clients: every update arrives, uplink accounting is exact
// to the byte, and the steady-state allocation rate stays far below the
// gob baseline's allocs-per-message.
func TestFleetBinarySockets(t *testing.T) {
	const clients, rounds = 200, 3
	cfg := fleetCfg(t, WireBinary, clients, rounds)
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != clients*rounds {
		t.Fatalf("updates = %d, want %d", res.Updates, clients*rounds)
	}
	// Exact frame sizes: update = 4 prefix + 10 header + 9 sparse header
	// + 12 bytes per non-zero; hello = 4 + 10 + 4.
	updateFrame := int64(23 + 12*cfg.Nnz)
	wantUp := res.Updates*updateFrame + int64(clients)*18
	if res.BytesUp != wantUp {
		t.Errorf("uplink %d bytes, want exactly %d", res.BytesUp, wantUp)
	}
	if res.BytesPerUpdate != float64(updateFrame) {
		t.Errorf("bytes/update = %v, want %d", res.BytesPerUpdate, updateFrame)
	}
	// Downlink: per round one 22-byte select per client, plus shutdown.
	if res.BytesDown <= int64(clients*rounds)*22 {
		t.Errorf("downlink %d bytes, want > %d", res.BytesDown, clients*rounds*22)
	}
	if res.Checksum == 0 {
		t.Error("zero checksum: no updates folded into the global")
	}
	// Steady state must be far below one envelope's worth of gob
	// allocations; the wire path itself is allocation-free, the residue
	// is update generation and round bookkeeping.
	if math.IsNaN(res.AllocsPerUpdate) || res.AllocsPerUpdate > 20 {
		t.Errorf("allocs/update = %v, want < 20", res.AllocsPerUpdate)
	}
}

// TestFleetGobBaseline runs the same protocol through the gob codec and
// pins the comparison the binary codec exists to win: more bytes and
// more allocations per update, same aggregate.
func TestFleetGobBaseline(t *testing.T) {
	const clients, rounds = 50, 3
	bin, err := RunFleet(fleetCfg(t, WireBinary, clients, rounds))
	if err != nil {
		t.Fatal(err)
	}
	gob, err := RunFleet(fleetCfg(t, WireGob, clients, rounds))
	if err != nil {
		t.Fatal(err)
	}
	if gob.Updates != bin.Updates {
		t.Fatalf("update counts differ: %d vs %d", gob.Updates, bin.Updates)
	}
	// Wire volume is comparable across codecs (gob varint-packs indices,
	// binary fixes them at 4 bytes); the binary codec's win is the
	// allocation-free decode path, so pin that. The ×3 floor is loose —
	// measured gob runs ~10× — to keep the test robust on busy machines.
	if gob.BytesPerUpdate < float64(bin.BytesPerUpdate)/2 || gob.BytesPerUpdate > 2*bin.BytesPerUpdate {
		t.Errorf("gob %v bytes/update implausible vs binary %v", gob.BytesPerUpdate, bin.BytesPerUpdate)
	}
	if gob.AllocsPerUpdate <= 3*bin.AllocsPerUpdate {
		t.Errorf("gob %v allocs/update not well above binary %v", gob.AllocsPerUpdate, bin.AllocsPerUpdate)
	}
	// Same updates, same weights: the aggregates agree up to summation
	// order (worker assignment is arrival-dependent).
	if diff := math.Abs(gob.Checksum - bin.Checksum); diff > 1e-9*(1+math.Abs(bin.Checksum)) {
		t.Errorf("checksums diverge: %v (gob) vs %v (binary)", gob.Checksum, bin.Checksum)
	}
}

// TestFleetTCP exercises the tcp transport path (the default for
// cross-host runs) at a small fleet.
func TestFleetTCP(t *testing.T) {
	cfg := fleetCfg(t, WireBinary, 20, 2)
	cfg.Network, cfg.Addr = "tcp", "127.0.0.1:0"
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 40 {
		t.Fatalf("updates = %d, want 40", res.Updates)
	}
}

// TestFleetValidation rejects nonsense configurations.
func TestFleetValidation(t *testing.T) {
	if _, err := RunFleet(FleetConfig{Network: "unix", Addr: "/tmp/x", Wire: "msgpack",
		Clients: 1, Rounds: 1, Dim: 10, Nnz: 1}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := RunFleet(FleetConfig{Network: "unix", Addr: "/tmp/x",
		Clients: 0, Rounds: 1, Dim: 10, Nnz: 1}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := RunFleet(FleetConfig{Network: "unix", Addr: "/tmp/x",
		Clients: 1, Rounds: 1, Dim: 10, Nnz: 20}); err == nil {
		t.Fatal("nnz > dim accepted")
	}
}

// TestFleetExternalClients splits the fleet across the process boundary
// shape: a pure server (ExternalClients) fed by RunFleetClients driving
// two disjoint id ranges, agreeing with an all-in-one run on the same
// seed. (In production the halves are separate flfleet processes so one
// file table never holds both socket ends; here goroutines stand in.)
func TestFleetExternalClients(t *testing.T) {
	const clients, rounds = 60, 2
	cfg := fleetCfg(t, WireBinary, clients, rounds)
	cfg.ExternalClients = true

	resCh := make(chan *FleetResult, 1)
	errCh := make(chan error, 3)
	go func() {
		res, err := RunFleet(cfg)
		errCh <- err
		resCh <- res
	}()
	// Two client halves, as two external driver processes would split the
	// id space. dialRetry absorbs the listener not being up yet.
	for _, r := range [][2]int{{0, clients / 2}, {clients / 2, clients}} {
		go func(lo, hi int) {
			errCh <- RunFleetClients(cfg, lo, hi)
		}(r[0], r[1])
	}
	for i := 0; i < 3; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	res := <-resCh
	if res.Updates != clients*rounds {
		t.Fatalf("updates = %d, want %d", res.Updates, clients*rounds)
	}

	solo, err := RunFleet(fleetCfg(t, WireBinary, clients, rounds))
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Checksum - solo.Checksum); diff > 1e-9*(1+math.Abs(solo.Checksum)) {
		t.Errorf("split checksum %v diverges from all-in-one %v", res.Checksum, solo.Checksum)
	}
}

// TestFleetDeterministicChecksum: two identical binary runs fold the
// same updates; their checksums agree up to summation order.
func TestFleetDeterministicChecksum(t *testing.T) {
	a, err := RunFleet(fleetCfg(t, WireBinary, 40, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(fleetCfg(t, WireBinary, 40, 2))
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(a.Checksum - b.Checksum); diff > 1e-9*(1+math.Abs(a.Checksum)) {
		t.Errorf("repeat runs diverge: %v vs %v", a.Checksum, b.Checksum)
	}
}
