package rpc

import (
	"net"
	"testing"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// TestServerClientDisconnectMidRound ensures the server surfaces a clean
// error (rather than hanging) when a registered client vanishes.
func TestServerClientDisconnectMidRound(t *testing.T) {
	newModel := func() *nn.Model { return nn.NewLogistic(4, 2, stats.NewRNG(1)) }
	cfg := core.DefaultConfig()
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 5,
		Cfg: cfg, NewModel: newModel, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Run()
		errCh <- err
	}()
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw, nil)
	if err := c.Send(&Envelope{Type: MsgHello, ClientID: 0, NumSamples: 4}); err != nil {
		t.Fatal(err)
	}
	// Receive the first model broadcast, then vanish without replying.
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := <-errCh; err == nil {
		t.Fatal("server did not report the lost client")
	}
}

// TestClientRejectsUnexpectedMessage ensures protocol violations error out
// instead of being silently misinterpreted.
func TestClientRejectsUnexpectedMessage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(raw, nil)
		conn.Recv()                          // hello
		conn.Send(&Envelope{Type: MsgScore}) // nonsense: server never sends scores
	}()

	ds := tinyDataset(t)
	_, err = RunClient(ClientConfig{
		Addr: ln.Addr().String(), ID: 0, Data: ds,
		NewModel:   func() *nn.Model { return nn.NewImageMLP([]int{1, 16, 16}, []int{8}, 10, stats.NewRNG(2)) },
		LocalSteps: 1, BatchSize: 4, LR: 0.1,
		Utility: core.DefaultUtility(), UpBps: 1e6, DownBps: 1e6,
		Logf: quiet, Seed: 3,
	})
	if err == nil {
		t.Fatal("client accepted a protocol violation")
	}
}

// TestConnRecvAfterClose returns an error, not a hang.
func TestConnRecvAfterClose(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, nil), NewConn(b, nil)
	ca.Close()
	if _, err := cb.Recv(); err == nil {
		t.Fatal("recv on closed pipe succeeded")
	}
}

// tinyDataset builds a minimal client shard for protocol tests.
func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.SynthMNIST(40, 16, 1)
}
