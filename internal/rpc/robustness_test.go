package rpc

import (
	"net"
	"testing"
	"time"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// TestServerClientDisconnectEndsCleanly: when the only client vanishes the
// server evicts it, falls below MinClients and ends the session cleanly —
// a partial result with no error, rather than an abort or a hang.
func TestServerClientDisconnectEndsCleanly(t *testing.T) {
	newModel := func() *nn.Model { return nn.NewLogistic(4, 2, stats.NewRNG(1)) }
	cfg := core.DefaultConfig()
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 5,
		Cfg: cfg, NewModel: newModel, Logf: quiet,
		StragglerTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan *ServerResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := srv.Run()
		resCh <- res
		errCh <- err
	}()
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw, nil)
	if err := c.Send(&Envelope{Type: MsgHello, ClientID: 0, NumSamples: 4}); err != nil {
		t.Fatal(err)
	}
	// Receive the first model broadcast, then vanish without replying.
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatalf("session should end cleanly, got %v", err)
	}
	if !res.EndedEarly {
		t.Fatal("lost-client session not flagged EndedEarly")
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Evictions)
	}
	if len(res.Rounds) >= 5 {
		t.Fatalf("session ran all %d rounds with no clients", len(res.Rounds))
	}
}

// TestServerRejectsDuplicateIDs: a second registration with a live id is
// turned away with a shutdown message, and the session is unharmed.
func TestServerRejectsDuplicateIDs(t *testing.T) {
	newModel := func() *nn.Model { return nn.NewLogistic(4, 2, stats.NewRNG(1)) }
	cfg := core.DefaultConfig()
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2, Rounds: 2,
		Cfg: cfg, NewModel: newModel, Logf: quiet,
		StragglerTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dial := func() *Conn {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return NewConn(raw, nil)
	}
	resCh := make(chan *ServerResult, 1)
	go func() {
		res, err := srv.Run()
		if err != nil {
			t.Errorf("server: %v", err)
		}
		resCh <- res
	}()
	// waitReg blocks until the server has processed id's registration, so
	// the duplicate below deterministically arrives second.
	waitReg := func(id int) {
		t.Helper()
		for i := 0; i < 400; i++ {
			srv.mu.Lock()
			_, p := srv.pending[id]
			_, r := srv.roster[id]
			srv.mu.Unlock()
			if p || r {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("client %d never registered", id)
	}
	c1 := dial()
	if err := c1.Send(&Envelope{Type: MsgHello, ClientID: 0, NumSamples: 10}); err != nil {
		t.Fatal(err)
	}
	waitReg(0)
	c2 := dial()
	if err := c2.Send(&Envelope{Type: MsgHello, ClientID: 0, NumSamples: 10}); err != nil {
		t.Fatal(err)
	}
	// The duplicate is told to go away; the original connection stays up.
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if e, err := c2.Recv(); err == nil && e.Type != MsgShutdown {
		t.Fatalf("duplicate got %v, want shutdown", e.Type)
	}
	c2.Close()
	// Complete the quorum; the raw conns never answer, so the server
	// evicts them and ends the session cleanly.
	c3 := dial()
	if err := c3.Send(&Envelope{Type: MsgHello, ClientID: 1, NumSamples: 10}); err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if !res.EndedEarly {
		t.Fatal("mute-client session not flagged EndedEarly")
	}
	c1.Close()
	c3.Close()
}

// TestClientRejectsUnexpectedMessage ensures protocol violations error out
// instead of being silently misinterpreted — and are not retried.
func TestClientRejectsUnexpectedMessage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		// Negotiate like the real server so the default (binary-capable)
		// client under test upgrades instead of stalling on the preamble.
		conn, err := serverNegotiate(raw, true)
		if err != nil {
			raw.Close()
			return
		}
		conn.Recv()                          // hello
		conn.Send(&Envelope{Type: MsgScore}) // nonsense: server never sends scores
	}()

	ds := tinyDataset(t)
	res, err := RunClient(ClientConfig{
		Addr: ln.Addr().String(), ID: 0, Data: ds,
		NewModel:   func() *nn.Model { return nn.NewImageMLP([]int{1, 16, 16}, []int{8}, 10, stats.NewRNG(2)) },
		LocalSteps: 1, BatchSize: 4, LR: 0.1,
		Utility: core.DefaultUtility(), UpBps: 1e6, DownBps: 1e6,
		Logf: quiet, Seed: 3,
		MaxRetries: 5, RetryBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("client accepted a protocol violation")
	}
	if res.Reconnects != 0 {
		t.Fatalf("protocol violation was retried %d times", res.Reconnects)
	}
}

// TestConnRecvAfterClose returns an error, not a hang.
func TestConnRecvAfterClose(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a, nil), NewConn(b, nil)
	ca.Close()
	if _, err := cb.Recv(); err == nil {
		t.Fatal("recv on closed pipe succeeded")
	}
}

// tinyDataset builds a minimal client shard for protocol tests.
func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.SynthMNIST(40, 16, 1)
}
