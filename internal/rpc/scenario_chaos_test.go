package rpc

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"adafl/internal/scenario"
)

// scenarioFleet loads the bundled diurnal scenario and instantiates it
// over the chaos fleet, with the energy model calibrated to the env's
// local training workload.
func scenarioFleet(t *testing.T, env *chaosEnv) *scenario.Fleet {
	t.Helper()
	sc, err := scenario.Load("../../examples/scenarios/diurnal.json")
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := scenario.NewFleet(sc, env.clients)
	if err != nil {
		t.Fatal(err)
	}
	fleet.SetRoundWork(env.newModel().FLOPsPerSample(), 3*16) // LocalSteps×BatchSize
	return fleet
}

// lastLines returns the trailing n lines of a JSONL buffer.
func lastLines(buf []byte, n int) []byte {
	lines := bytes.SplitAfter(buf, []byte("\n"))
	// SplitAfter leaves a trailing empty element after the final newline.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return bytes.Join(lines, nil)
}

// TestChaosScenarioDiurnalResume is the scenario-engine acceptance run:
// the bundled diurnal scenario (battery depletions around round 2, a
// recharge-driven rejoin, and a correlated "east" regional outage
// starting mid-round) drives a live server session to completion, and a
// kill-and-resume restart mid-scenario must produce the identical
// post-resume availability schedule as an uninterrupted run — byte for
// byte on the scenario round log, which is the schedule's observable.
func TestChaosScenarioDiurnalResume(t *testing.T) {
	const (
		rounds    = 10
		killAfter = 4
	)
	env := newChaosEnv(4, 600, 16, 32, 81)

	// Uninterrupted reference run under the scenario.
	refCfg := env.serverConfig(rounds)
	refCfg.StragglerTimeout = 10 * time.Second
	refCfg.Scenario = scenarioFleet(t, env)
	var refLog bytes.Buffer
	refCfg.ScenarioLog = &refLog
	refSrv, err := NewServer(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refCfgs := make([]ClientConfig, env.clients)
	for i := range refCfgs {
		refCfgs[i] = env.clientConfig(i, refSrv.Addr())
	}
	refDone := make(chan struct{})
	go func() { runClients(refCfgs); close(refDone) }()
	refRes, err := refSrv.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	<-refDone
	if len(refRes.Rounds) != rounds {
		t.Fatalf("reference run completed %d/%d rounds", len(refRes.Rounds), rounds)
	}

	// The scenario must actually bite: depletions, a reduced-availability
	// round, and the east outage all appear in the schedule log.
	if !bytes.Contains(refLog.Bytes(), []byte(`"depleted"`)) {
		t.Fatalf("no battery depletion in scenario log:\n%s", refLog.String())
	}
	if !bytes.Contains(refLog.Bytes(), []byte(`"offline"`)) {
		t.Fatalf("no client ever offline in scenario log:\n%s", refLog.String())
	}
	if !bytes.Contains(refLog.Bytes(), []byte(`"outages":["east"]`)) {
		t.Fatalf("east regional outage missing from scenario log:\n%s", refLog.String())
	}

	// Killed run: same scenario from scratch, checkpointing every round,
	// crash after killAfter rounds.
	dir := t.TempDir()
	scfg1 := env.serverConfig(rounds)
	scfg1.StragglerTimeout = 10 * time.Second
	scfg1.CheckpointDir = dir
	scfg1.Scenario = scenarioFleet(t, env)
	var killedLog bytes.Buffer
	scfg1.ScenarioLog = &killedLog
	var srv1 *Server
	scfg1.OnRound = func(rec RoundRecord) {
		if rec.Round == killAfter-1 {
			srv1.Kill()
		}
	}
	srv1, err = NewServer(scfg1)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	cfgs := make([]ClientConfig, env.clients)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, addr)
		cfgs[i].MaxRetries = 100
		cfgs[i].RetryBackoff = 20 * time.Millisecond
	}
	type clientOut struct {
		res  []*ClientResult
		errs []error
	}
	outCh := make(chan clientOut, 1)
	go func() {
		r, e := runClients(cfgs)
		outCh <- clientOut{r, e}
	}()

	if _, err = srv1.Run(); !errors.Is(err, ErrServerKilled) {
		t.Fatalf("killed server returned %v, want ErrServerKilled", err)
	}

	// Restarted process: a fresh fleet built from the same scenario file
	// whose state must come from the checkpoint, not from round 0.
	scfg2 := env.serverConfig(rounds)
	scfg2.StragglerTimeout = 10 * time.Second
	scfg2.Addr = addr
	scfg2.CheckpointDir = dir
	scfg2.Resume = true
	scfg2.Scenario = scenarioFleet(t, env)
	var resumedLog bytes.Buffer
	scfg2.ScenarioLog = &resumedLog
	var srv2 *Server
	for attempt := 0; ; attempt++ {
		srv2, err = NewServer(scfg2)
		if err == nil {
			break
		}
		if attempt >= 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res2, err := srv2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	out := <-outCh

	if res2.ResumedFrom != killAfter {
		t.Fatalf("ResumedFrom = %d, want %d", res2.ResumedFrom, killAfter)
	}
	if len(res2.Rounds) != rounds {
		t.Fatalf("resumed session ended with %d/%d rounds", len(res2.Rounds), rounds)
	}
	for i, rec := range res2.Rounds {
		if rec.Round != i {
			t.Fatalf("round history gap at index %d: record says round %d", i, rec.Round)
		}
	}
	for i, cerr := range out.errs {
		if cerr != nil {
			t.Errorf("client %d: %v", i, cerr)
		}
	}

	// The golden replay pin: the resumed process's schedule for rounds
	// killAfter..rounds-1 must be byte-identical to the same rounds of
	// the uninterrupted run. Any drift in battery integration across the
	// crash gap, depletion latches or availability evaluation shows here.
	want := lastLines(refLog.Bytes(), rounds-killAfter)
	if got := resumedLog.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("post-resume schedule diverges from uninterrupted run:\nuninterrupted rounds %d..%d:\n%s\nresumed:\n%s",
			killAfter, rounds-1, want, got)
	}
	// And the pre-kill prefix matches too (same scenario from round 0).
	if got, wantPrefix := killedLog.Bytes(), refLog.Bytes()[:len(killedLog.Bytes())]; !bytes.Equal(got, wantPrefix) {
		t.Fatalf("pre-kill schedule diverges from uninterrupted run:\nuninterrupted prefix:\n%s\nkilled:\n%s",
			wantPrefix, got)
	}
}

// TestResumeScenarioMismatchIsFatal: resuming a checkpointed scenario
// session under a different scenario must be refused — splicing two
// schedules together would silently break the replay contract.
func TestResumeScenarioMismatchIsFatal(t *testing.T) {
	env := newChaosEnv(2, 160, 12, 16, 82)
	const rounds = 2
	dir := t.TempDir()

	scfg := env.serverConfig(rounds)
	scfg.CheckpointDir = dir
	scfg.Scenario = scenarioFleet(t, env)
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, env.clients)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	done := make(chan struct{})
	go func() { runClients(cfgs); close(done) }()
	if _, err := srv.Run(); err != nil {
		t.Fatal(err)
	}
	<-done

	other, err := scenario.Load("../../examples/scenarios/regional-outage.json")
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := scenario.NewFleet(other, env.clients)
	if err != nil {
		t.Fatal(err)
	}
	scfg2 := env.serverConfig(rounds + 2)
	scfg2.CheckpointDir = dir
	scfg2.Resume = true
	scfg2.Scenario = fleet
	srv2, err := NewServer(scfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Run(); err == nil {
		t.Fatal("resume under a different scenario accepted")
	}
}
