package rpc

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"adafl/internal/compress"
)

// --- unit level: the screen itself ------------------------------------

func mkUpdate(client int, dim int, idx []int32, vals []float64) roundUpdate {
	return roundUpdate{clientID: client, samples: 100,
		upd: &compress.Sparse{Dim: dim, Indices: idx, Values: vals}}
}

// TestScreenUpdatesBitwiseUnaffected is the acceptance property in
// miniature: aggregating a screened round that contained malformed and
// outlier updates produces a global model bitwise identical to a round
// that only ever saw the honest updates.
func TestScreenUpdatesBitwiseUnaffected(t *testing.T) {
	const dim = 16
	honest := []roundUpdate{
		mkUpdate(0, dim, []int32{1, 5}, []float64{0.2, -0.1}),
		mkUpdate(1, dim, []int32{0, 9}, []float64{-0.3, 0.15}),
		mkUpdate(2, dim, []int32{2, 7}, []float64{0.25, 0.05}),
	}
	attack := []roundUpdate{
		mkUpdate(7, dim, []int32{0, int32(dim)}, []float64{1, 999}), // index out of range
		mkUpdate(8, dim, []int32{0, 1}, []float64{1}),               // length mismatch
		mkUpdate(9, dim, []int32{3, 4}, []float64{4e6, -7e6}),       // norm outlier
		mkUpdate(10, dim, []int32{2}, []float64{math.NaN()}),        // entirely non-finite
		{clientID: 11, samples: 50, upd: nil},                       // nil message
	}
	aggregate := func(ups []roundUpdate) []float64 {
		global := make([]float64, dim)
		for i := range global {
			global[i] = float64(i) * 0.01
		}
		weightSum := 0.0
		agg := make([]float64, dim)
		for _, u := range ups {
			w := float64(u.samples) / 1000.0
			u.upd.AddTo(agg, w)
			weightSum += w
		}
		if weightSum > 0 {
			for i := range global {
				global[i] += agg[i] / weightSum
			}
		}
		return global
	}

	want := aggregate(honest)
	kept, quarantined := screenUpdates(3, dim, 10, append(append([]roundUpdate{}, honest...), attack...), quiet)
	got := aggregate(kept)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("screened aggregation differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if len(quarantined) != len(attack) {
		t.Fatalf("quarantined %d updates, want %d: %+v", len(quarantined), len(attack), quarantined)
	}
	byClient := map[int]QuarantineRecord{}
	for _, q := range quarantined {
		if q.Round != 3 {
			t.Errorf("quarantine record round %d, want 3", q.Round)
		}
		byClient[q.ClientID] = q
	}
	for client, frag := range map[int]string{
		7:  "out of range",
		8:  "indices vs",
		9:  "round median",
		10: "non-finite",
		11: "nil message",
	} {
		q, ok := byClient[client]
		if !ok {
			t.Errorf("client %d not quarantined", client)
			continue
		}
		if !strings.Contains(q.Reason, frag) {
			t.Errorf("client %d: reason %q missing %q", client, q.Reason, frag)
		}
	}
	if byClient[9].Norm == 0 {
		t.Error("norm-gated record did not carry the offending norm")
	}
}

// TestScreenUpdatesScrubsPartialNaN: a mostly-finite update survives
// with its non-finite coordinates zeroed, rather than being dropped.
func TestScreenUpdatesScrubsPartialNaN(t *testing.T) {
	const dim = 8
	u := mkUpdate(0, dim, []int32{0, 1, 2}, []float64{1, math.NaN(), 2})
	kept, quarantined := screenUpdates(0, dim, 0, []roundUpdate{u}, quiet)
	if len(quarantined) != 0 || len(kept) != 1 {
		t.Fatalf("partially non-finite update mishandled: kept %d quarantined %d", len(kept), len(quarantined))
	}
	if v := kept[0].upd.Values[1]; v != 0 {
		t.Fatalf("NaN coordinate not scrubbed: %v", v)
	}
}

// TestScreenUpdatesNormGateNeedsQuorumAndScale: the gate stays out of
// the way with fewer than three updates or an all-zero round.
func TestScreenUpdatesNormGateNeedsQuorumAndScale(t *testing.T) {
	const dim = 4
	big := mkUpdate(0, dim, []int32{0}, []float64{1e9})
	small := mkUpdate(1, dim, []int32{1}, []float64{1e-9})
	kept, quarantined := screenUpdates(0, dim, 2, []roundUpdate{big, small}, quiet)
	if len(kept) != 2 || len(quarantined) != 0 {
		t.Fatalf("gate engaged below the update quorum: kept %d", len(kept))
	}
	zeros := []roundUpdate{
		mkUpdate(0, dim, []int32{0}, []float64{0}),
		mkUpdate(1, dim, []int32{1}, []float64{0}),
		mkUpdate(2, dim, []int32{2}, []float64{0.5}),
	}
	kept, quarantined = screenUpdates(0, dim, 2, zeros, quiet)
	if len(kept) != 3 || len(quarantined) != 0 {
		t.Fatalf("gate fired on a zero-median round: kept %d quarantined %d", len(kept), len(quarantined))
	}
}

// --- end to end: a hostile client against a live server ----------------

// evilResult records what a protocol-conformant but hostile client saw.
type evilResult struct {
	broadcasts [][]float64 // Params of every MsgModel received
	redials    int
	err        error
}

// runEvilClient speaks the wire protocol honestly except for its
// updates, which come from mkUpd. It redials (bounded) when the server
// cuts it off, so a quarantined-then-evicted client can rejoin and the
// test can observe consecutive round broadcasts.
func runEvilClient(addr string, id, samples, maxRedials int,
	mkUpd func(round, dim int) *compress.Sparse) *evilResult {
	res := &evilResult{}
	for attempt := 0; ; attempt++ {
		raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			if attempt >= maxRedials {
				res.err = err
				return res
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if attempt > 0 {
			res.redials++
		}
		conn := NewConn(raw, nil)
		done := func() bool {
			defer conn.Close()
			if err := conn.Send(&Envelope{Type: MsgHello, ClientID: id, NumSamples: samples}); err != nil {
				return false
			}
			for {
				e, err := conn.Recv()
				if err != nil {
					return false
				}
				switch e.Type {
				case MsgShutdown:
					return true
				case MsgWelcome:
					// fine; keep listening
				case MsgModel:
					res.broadcasts = append(res.broadcasts, append([]float64(nil), e.Params...))
					if err := conn.Send(&Envelope{Type: MsgScore, ClientID: id, Round: e.Round, Score: 1}); err != nil {
						return false
					}
					sel, err := conn.Recv()
					if err != nil || sel.Type != MsgSelect {
						return false
					}
					if sel.Ratio <= 0 {
						continue
					}
					upd := mkUpd(e.Round, len(e.Params))
					if err := conn.Send(&Envelope{Type: MsgUpdate, ClientID: id, Round: e.Round, Update: upd}); err != nil {
						return false
					}
				default:
					return false
				}
			}
		}()
		if done {
			return res
		}
		if attempt >= maxRedials {
			return res
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQuarantineMalformedUpdateBitwiseE2E is the acceptance scenario on
// a real socket: the only client in the session ships an update with
// out-of-range indices every round. The server must quarantine it
// (evict + record the reason), keep the session alive through
// re-admission, and broadcast a bit-for-bit unchanged global model the
// next round — proof the poisoned update never touched it.
func TestQuarantineMalformedUpdateBitwiseE2E(t *testing.T) {
	env := newChaosEnv(1, 160, 12, 16, 81)
	scfg := env.serverConfig(2)
	var srv *Server
	scfg.OnRound = func(rec RoundRecord) {
		if rec.Round == 0 {
			waitForClient(t, srv, 0, 10*time.Second)
		}
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	outCh := make(chan *evilResult, 1)
	go func() {
		outCh <- runEvilClient(srv.Addr(), 0, env.parts[0].Len(), 50,
			func(round, dim int) *compress.Sparse {
				return &compress.Sparse{Dim: dim,
					Indices: []int32{0, int32(dim + 7)}, Values: []float64{5, 1e6}}
			})
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatalf("server aborted: %v", err)
	}
	evil := <-outCh

	if len(res.Rounds) != 2 {
		t.Fatalf("completed %d/2 rounds", len(res.Rounds))
	}
	if len(res.Quarantines) != 2 {
		t.Fatalf("quarantines = %d, want one per round: %+v", len(res.Quarantines), res.Quarantines)
	}
	for i, q := range res.Quarantines {
		if q.ClientID != 0 || q.Round != i {
			t.Errorf("quarantine %d: client %d round %d", i, q.ClientID, q.Round)
		}
		if !strings.Contains(q.Reason, "out of range") {
			t.Errorf("quarantine reason %q does not name the bad index", q.Reason)
		}
	}
	for _, rec := range res.Rounds {
		if rec.Quarantined != 1 || rec.Received != 0 {
			t.Errorf("round %d: quarantined %d received %d, want 1/0", rec.Round, rec.Quarantined, rec.Received)
		}
	}
	if res.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2 (one per quarantined round)", res.Evictions)
	}
	// The heart of the test: the round-1 broadcast is bitwise the
	// round-0 broadcast, because the only update ever received was
	// quarantined before aggregation.
	if len(evil.broadcasts) < 2 {
		t.Fatalf("evil client saw %d broadcasts, want 2 (did re-admission fail?)", len(evil.broadcasts))
	}
	p0, p1 := evil.broadcasts[0], evil.broadcasts[1]
	if len(p0) != len(p1) {
		t.Fatalf("broadcast lengths differ: %d vs %d", len(p0), len(p1))
	}
	for i := range p0 {
		if p0[i] != p1[i] {
			t.Fatalf("global model changed at coordinate %d (%v -> %v) despite quarantine", i, p0[i], p1[i])
		}
	}
	if evil.redials == 0 {
		t.Error("evicted client never redialled")
	}
}

// TestQuarantineNormOutlierE2E: three honest clients plus one shipping
// structurally valid updates with absurd magnitudes. The norm gate must
// quarantine the outlier against the round-median norm while the honest
// majority trains on undisturbed.
func TestQuarantineNormOutlierE2E(t *testing.T) {
	env := newChaosEnv(4, 480, 12, 16, 91)
	const rounds = 4
	scfg := env.serverConfig(rounds)
	scfg.MaxUpdateNorm = 5
	var srv *Server
	scfg.OnRound = func(rec RoundRecord) {
		// Hold each boundary until the (repeatedly evicted) outlier has
		// redialled, so it is present — and screened — every round.
		waitForClient(t, srv, 3, 10*time.Second)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, 3)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	honestCh := make(chan []error, 1)
	go func() {
		_, errs := runClients(cfgs)
		honestCh <- errs
	}()
	evilCh := make(chan *evilResult, 1)
	go func() {
		evilCh <- runEvilClient(srv.Addr(), 3, 120, 100,
			func(round, dim int) *compress.Sparse {
				vals := make([]float64, 8)
				idx := make([]int32, 8)
				for i := range vals {
					idx[i] = int32(i)
					vals[i] = 3e7
				}
				return &compress.Sparse{Dim: dim, Indices: idx, Values: vals}
			})
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatalf("server aborted: %v", err)
	}
	<-evilCh
	for i, cerr := range <-honestCh {
		if cerr != nil {
			t.Errorf("honest client %d: %v", i, cerr)
		}
	}
	if len(res.Rounds) != rounds {
		t.Fatalf("completed %d/%d rounds", len(res.Rounds), rounds)
	}
	if len(res.Quarantines) == 0 {
		t.Fatal("norm outlier never quarantined")
	}
	for _, q := range res.Quarantines {
		if q.ClientID != 3 {
			t.Errorf("quarantined honest client %d: %s", q.ClientID, q.Reason)
		}
		if !strings.Contains(q.Reason, "round median") {
			t.Errorf("quarantine reason %q does not cite the median gate", q.Reason)
		}
		if q.Norm == 0 {
			t.Error("outlier record missing its norm")
		}
	}
	// Honest training was not collateral damage.
	if res.FinalAcc < 0.3 {
		t.Fatalf("session with gated outlier failed to learn: acc %.3f", res.FinalAcc)
	}
}
