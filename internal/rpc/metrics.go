package rpc

import "adafl/internal/obs"

// Metric names exposed by the server and client. They are resolved once
// at construction; with a nil registry every instrument is nil and each
// record call is a no-op (see internal/obs), so the round engine pays
// nothing when observability is off.
//
// The full catalogue, with types and label conventions, is documented in
// DESIGN.md §Observability.
type serverMetrics struct {
	rounds        *obs.Counter   // adafl_rounds_total
	evictions     *obs.Counter   // adafl_evictions_total
	quarantines   *obs.Counter   // adafl_quarantines_total
	registrations *obs.Counter   // adafl_registrations_total
	reconnects    *obs.Counter   // adafl_reconnects_total (re-Hello of a known id)
	bytesUp       *obs.Counter   // adafl_bytes_total{dir="up"}
	bytesDown     *obs.Counter   // adafl_bytes_total{dir="down"}
	roundSec      *obs.Histogram // adafl_round_seconds
	scoreSec      *obs.Histogram // adafl_phase_seconds{phase="score"}
	updateSec     *obs.Histogram // adafl_phase_seconds{phase="update"}
	ckptSec       *obs.Histogram // adafl_checkpoint_seconds
	ckptBytes     *obs.Gauge     // adafl_checkpoint_bytes
	scores        *obs.Histogram // adafl_utility_score
	ratios        *obs.Histogram // adafl_compression_ratio (planned, from the selector)
	updRatios     *obs.Histogram // adafl_update_compression_ratio (achieved, from received wire bytes)
	negRatios     *obs.Histogram // adafl_negotiated_ratio (assigned by the negotiator)
	codecDGC      *obs.Counter   // adafl_codec_assigned_total{codec="dgc"}
	codecDAda     *obs.Counter   // adafl_codec_assigned_total{codec="dadaquant"}
	accuracy      *obs.Gauge     // adafl_round_accuracy (last evaluated)
	clients       *obs.Gauge     // adafl_round_clients
	selected      *obs.Gauge     // adafl_round_selected
	received      *obs.Gauge     // adafl_round_received
	connections   *obs.Gauge     // adafl_connections (open, registered client sockets)
	wireBinary    *obs.Counter   // adafl_wire_messages_total{codec="binary"}
	wireGob       *obs.Counter   // adafl_wire_messages_total{codec="gob"}
}

// newServerMetrics resolves the server instrument set. A non-empty
// session merges a session="..." label into every series name, so N
// sessions multiplexed over one control plane each get their own series
// from the shared registry; "" keeps the historical unlabeled names.
func newServerMetrics(r *obs.Registry, session string) serverMetrics {
	l := func(name string) string { return obs.WithLabel(name, "session", session) }
	return serverMetrics{
		rounds:        r.Counter(l("adafl_rounds_total")),
		evictions:     r.Counter(l("adafl_evictions_total")),
		quarantines:   r.Counter(l("adafl_quarantines_total")),
		registrations: r.Counter(l("adafl_registrations_total")),
		reconnects:    r.Counter(l("adafl_reconnects_total")),
		bytesUp:       r.Counter(l(`adafl_bytes_total{dir="up"}`)),
		bytesDown:     r.Counter(l(`adafl_bytes_total{dir="down"}`)),
		roundSec:      r.Histogram(l("adafl_round_seconds"), obs.LatencyBuckets),
		scoreSec:      r.Histogram(l(`adafl_phase_seconds{phase="score"}`), obs.LatencyBuckets),
		updateSec:     r.Histogram(l(`adafl_phase_seconds{phase="update"}`), obs.LatencyBuckets),
		ckptSec:       r.Histogram(l("adafl_checkpoint_seconds"), obs.LatencyBuckets),
		ckptBytes:     r.Gauge(l("adafl_checkpoint_bytes")),
		scores:        r.Histogram(l("adafl_utility_score"), obs.ScoreBuckets),
		ratios:        r.Histogram(l("adafl_compression_ratio"), obs.RatioBuckets),
		updRatios:     r.Histogram(l("adafl_update_compression_ratio"), obs.RatioBuckets),
		negRatios:     r.Histogram(l("adafl_negotiated_ratio"), obs.RatioBuckets),
		codecDGC:      r.Counter(l(`adafl_codec_assigned_total{codec="dgc"}`)),
		codecDAda:     r.Counter(l(`adafl_codec_assigned_total{codec="dadaquant"}`)),
		accuracy:      r.Gauge(l("adafl_round_accuracy")),
		clients:       r.Gauge(l("adafl_round_clients")),
		selected:      r.Gauge(l("adafl_round_selected")),
		received:      r.Gauge(l("adafl_round_received")),
		connections:   r.Gauge(l("adafl_connections")),
		wireBinary:    r.Counter(l(`adafl_wire_messages_total{codec="binary"}`)),
		wireGob:       r.Counter(l(`adafl_wire_messages_total{codec="gob"}`)),
	}
}

// countWire attributes one received message to the connection's
// negotiated codec, so a mixed fleet's gob-fallback share is visible.
func (m *serverMetrics) countWire(c *Conn) {
	if c.Codec() == WireBinary {
		m.wireBinary.Inc()
	} else {
		m.wireGob.Inc()
	}
}

// clientMetrics is the client-process instrument set.
type clientMetrics struct {
	redials    *obs.Counter   // adafl_client_redials_total
	backoffSec *obs.Histogram // adafl_client_backoff_seconds
	bytesSent  *obs.Counter   // adafl_client_bytes_sent_total
	uploads    *obs.Counter   // adafl_client_uploads_total
	withheld   *obs.Counter   // adafl_client_withheld_total
	trainSec   *obs.Histogram // adafl_client_train_seconds
}

func newClientMetrics(r *obs.Registry) clientMetrics {
	return clientMetrics{
		redials:    r.Counter("adafl_client_redials_total"),
		backoffSec: r.Histogram("adafl_client_backoff_seconds", obs.LatencyBuckets),
		bytesSent:  r.Counter("adafl_client_bytes_sent_total"),
		uploads:    r.Counter("adafl_client_uploads_total"),
		withheld:   r.Counter("adafl_client_withheld_total"),
		trainSec:   r.Histogram("adafl_client_train_seconds", obs.LatencyBuckets),
	}
}
