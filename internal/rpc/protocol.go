// Package rpc runs AdaFL over real TCP sockets: a federation server and
// client processes exchanging wire messages, with optional token-bucket
// throttling to emulate constrained embedded uplinks. It stands in for
// the paper's Raspberry Pi cluster deployment and backs the cmd/flserver
// and cmd/flclient binaries.
//
// Two codecs share one message vocabulary: the versioned, length-prefixed
// binary codec (wire.go — the zero-allocation hot path) and gob (the
// compatibility fallback). The codec is negotiated per connection at
// connect time, so binary-capable peers upgrade and everything else keeps
// speaking gob.
package rpc

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adafl/internal/compress"
)

// DefaultMaxMessageBytes caps how many wire bytes a single Recv may
// consume. The largest legitimate message is a dense model broadcast or
// update (a few MB for the paper's 431k-parameter CNN); the cap exists
// so a corrupt or malicious length prefix cannot make the decoder
// allocate unbounded memory and OOM the server.
const DefaultMaxMessageBytes = 64 << 20

// ErrMessageTooLarge is returned by Recv when a single message exceeds
// the connection's size cap.
var ErrMessageTooLarge = errors.New("rpc: message exceeds size cap")

// MsgType discriminates protocol messages.
type MsgType int

// Protocol messages, in round order.
const (
	// MsgHello is the client's registration: ID and sample count.
	MsgHello MsgType = iota
	// MsgModel is the server's round broadcast: global parameters and the
	// previous global delta ĝ for utility scoring.
	MsgModel
	// MsgScore is the client's utility report after local training.
	MsgScore
	// MsgSelect tells a client whether to upload and at what compression
	// ratio (Ratio 0 = withhold this round).
	MsgSelect
	// MsgUpdate carries the client's compressed model delta.
	MsgUpdate
	// MsgShutdown ends the session; Info carries a farewell summary.
	MsgShutdown
	// MsgWelcome acknowledges a registration: Round is the next round the
	// client will participate in, so a client redialling into a resumed
	// or in-progress session learns it is joining at round r+1 rather
	// than assuming a fresh session at round 0.
	MsgWelcome
	// MsgPing is the lightweight keepalive/heartbeat: Round carries the
	// sender's current round and NumSamples its progress (an edge reports
	// its connected-client count). A dead TCP peer surfaces within a
	// heartbeat interval instead of only at the phase deadline. Receivers
	// that have nothing to report may echo the ping unchanged.
	MsgPing
	// MsgEdgeHello registers an edge aggregator with the root: ClientID is
	// the edge ID, Info its client-facing listen address, Region its
	// scenario region, NumSamples the clients currently connected to it.
	MsgEdgeHello
	// MsgEdgePartial streams an edge's folded round aggregate upstream:
	// ClientID is the edge ID, Params the partial's Sum vector, WeightSum
	// the accumulated fold weight and NumSamples the fold count.
	MsgEdgePartial
	// MsgReroute is the welcome extension a root's client bootstrap sends:
	// Info is the address of the edge the client is assigned to and Round
	// the topology epoch the assignment belongs to. Orphans of a dead edge
	// redial the bootstrap and learn their new edge from it.
	MsgReroute
	// MsgAsyncPull is an async-mode client's model request: no round
	// barrier, the client asks for the current global whenever it is ready
	// to train. The server answers with MsgModel whose Round carries the
	// global model version.
	MsgAsyncPull
	// MsgAsyncPush carries an async-mode client's compressed delta.
	// Round is the model version the client trained from (the server
	// derives staleness as currentVersion − Round); Update is the delta.
	MsgAsyncPush
)

// Envelope is the single wire message type. Only the fields relevant to
// the Type are populated.
type Envelope struct {
	Type     MsgType
	ClientID int
	Round    int

	// MsgHello
	NumSamples int

	// MsgHello (multi-session extension). Session names the control-plane
	// session the client wants to join; "" targets the default session, and
	// encodes as the legacy hello body so pre-session peers interoperate.
	Session string

	// MsgModel
	Params      []float64
	GlobalDelta []float64

	// MsgScore / MsgSelect
	Score float64
	Ratio float64

	// MsgSelect (negotiated codec assignment). Codec names the uplink
	// codec the client must use this round ("" = the client's default);
	// Levels is the quantization level count for level-adaptive codecs
	// (0 = codec default). Both zero-valued fields encode as the legacy
	// 8-byte Select body, so pre-negotiation peers interoperate.
	Codec  string
	Levels int

	// MsgUpdate
	Update *compress.Sparse

	// MsgShutdown / MsgEdgeHello / MsgReroute (an address on the edge
	// messages, a farewell summary on shutdown)
	Info string

	// MsgEdgePartial
	WeightSum float64

	// MsgEdgeHello
	Region string
}

// Conn wraps a net.Conn with one of the two codecs and byte accounting.
// Send and Recv are individually goroutine-safe (each direction is
// serialised by its own mutex), so the server's per-client round
// goroutines and a concurrent shutdown path can share one Conn.
type Conn struct {
	raw    net.Conn
	sendMu sync.Mutex
	recvMu sync.Mutex
	cw     *countingWriter
	cr     *countingReader

	// gob codec (nil on a binary connection).
	enc *gob.Encoder
	dec *gob.Decoder

	// Binary codec state. The scratch buffers make steady-state Send and
	// RecvInto allocation-free: frames stream out through sendHdr + chunk
	// + bw, and decoded payloads land in connection-owned slices reused
	// across messages.
	binary  bool
	maxMsg  int64
	bw      *bufio.Writer
	sendHdr []byte
	chunk   []byte
	hdr4    [4]byte
	recvBuf []byte

	recvSparse *compress.Sparse
	recvParams []float64
	recvDelta  []float64
}

// NewConn wraps raw with the gob codec (the compatibility fallback). If
// throttle is non-nil it shapes writes. The receive path is capped at
// DefaultMaxMessageBytes per message; see SetMaxMessage.
func NewConn(raw net.Conn, throttle *TokenBucket) *Conn {
	cw := &countingWriter{w: raw}
	cr := &countingReader{r: raw, limit: DefaultMaxMessageBytes}
	c := &Conn{raw: raw, cw: cw, cr: cr}
	if throttle != nil {
		c.enc = gob.NewEncoder(&throttledWriter{w: cw, tb: throttle})
	} else {
		c.enc = gob.NewEncoder(cw)
	}
	c.dec = gob.NewDecoder(cr)
	return c
}

// NewBinaryConn wraps raw with the binary codec. Both peers must already
// have agreed on it (see clientNegotiate/serverNegotiate); the codec
// itself carries no preamble.
func NewBinaryConn(raw net.Conn, throttle *TokenBucket) *Conn {
	return newBinaryConn(raw, throttle, defaultWireBufSize)
}

// newBinaryConn lets fleet-scale callers shrink the per-connection send
// buffer: 10k simulated clients at the default 32KB would cost 320MB in
// bufio alone.
func newBinaryConn(raw net.Conn, throttle *TokenBucket, bufSize int) *Conn {
	cw := &countingWriter{w: raw}
	// limit stays 0: the binary codec enforces its cap exactly from the
	// frame length prefix (maxMsg), not by counting reads.
	cr := &countingReader{r: raw}
	var w io.Writer = cw
	if throttle != nil {
		w = &throttledWriter{w: cw, tb: throttle}
	}
	return &Conn{
		raw: raw, cw: cw, cr: cr,
		binary:  true,
		maxMsg:  DefaultMaxMessageBytes,
		bw:      bufio.NewWriterSize(w, bufSize),
		sendHdr: make([]byte, 0, 4+envHeaderBytes+16),
		chunk:   make([]byte, wireChunkBytes),
	}
}

// Codec names the connection's negotiated codec (WireBinary or WireGob).
func (c *Conn) Codec() string {
	if c.binary {
		return WireBinary
	}
	return WireGob
}

// Send writes one envelope.
func (c *Conn) Send(e *Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.binary {
		if err := c.sendBinary(e); err != nil {
			return fmt.Errorf("rpc: send %v: %w", e.Type, err)
		}
		return nil
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("rpc: send %v: %w", e.Type, err)
	}
	return nil
}

// Recv reads one envelope. The result is freshly allocated and safe to
// retain. A message whose wire size exceeds the connection's cap
// (SetMaxMessage, DefaultMaxMessageBytes by default) fails with
// ErrMessageTooLarge instead of being materialised.
func (c *Conn) Recv() (*Envelope, error) {
	e := &Envelope{}
	if err := c.recv(e, true); err != nil {
		return nil, err
	}
	return e, nil
}

// RecvInto reads one envelope into e, reusing the connection's decode
// scratch: on a binary connection the slice fields and Update payload are
// connection-owned and valid only until the next RecvInto on this
// connection. This is the zero-allocation receive path; callers that
// retain payloads across messages must use Recv or copy.
func (c *Conn) RecvInto(e *Envelope) error { return c.recv(e, false) }

func (c *Conn) recv(e *Envelope, fresh bool) error {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.binary {
		return c.recvBinary(e, fresh)
	}
	c.cr.beginMessage()
	// Reset before decoding: gob omits zero-valued fields, so a reused
	// envelope would otherwise keep stale fields from its last message.
	*e = Envelope{}
	if err := c.dec.Decode(e); err != nil {
		if c.cr.capped() {
			return fmt.Errorf("%w (cap %d bytes): %v", ErrMessageTooLarge, c.cr.limit, err)
		}
		return err
	}
	return nil
}

// SetMaxMessage overrides the per-message receive cap (bytes). n <= 0
// disables the cap entirely. On the binary codec the cap is exact (the
// declared frame size, prefix included, is judged before any payload
// byte is read); on gob it can over-attribute up to one bufio block of
// read-ahead (see countingReader).
func (c *Conn) SetMaxMessage(n int64) {
	c.maxMsg = n
	c.cr.limit = n
}

// SetReadDeadline bounds the next Recv: a blocked read returns an error
// once t passes. The zero time clears the deadline.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline bounds the next Send the same way.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// BytesSent and BytesReceived report cumulative wire volume. They are safe
// to read while the connection is in use. On a binary connection both
// counts are exact per message: framing reads exactly the bytes each
// message declares, with no decoder read-ahead.
func (c *Conn) BytesSent() int64     { return c.cw.n.Load() }
func (c *Conn) BytesReceived() int64 { return c.cr.n.Load() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

type countingWriter struct {
	w io.Writer
	n atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n atomic.Int64

	// Per-message accounting for the gob receive size cap. Only the Recv
	// goroutine touches these (serialised by recvMu): msg counts bytes
	// consumed since beginMessage, hitCap records that the cap tripped.
	// gob's internal buffering may attribute up to one bufio block of
	// read-ahead to the previous message; the slack is a few KB against a
	// cap measured in MB, irrelevant for OOM protection. The binary codec
	// does not use this mechanism (limit stays 0): its framing makes the
	// cap and the byte counters exact.
	limit  int64
	msg    int64
	hitCap bool
}

func (c *countingReader) beginMessage() {
	c.msg = 0
	c.hitCap = false
}

func (c *countingReader) capped() bool { return c.hitCap }

func (c *countingReader) Read(p []byte) (int, error) {
	if c.limit > 0 && c.msg >= c.limit {
		c.hitCap = true
		return 0, ErrMessageTooLarge
	}
	if c.limit > 0 && int64(len(p)) > c.limit-c.msg {
		p = p[:c.limit-c.msg]
	}
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	c.msg += int64(n)
	return n, err
}
