package rpc

import (
	"bytes"
	"testing"
)

// Codec microbenchmarks: binary vs gob on the two hot-path messages (a
// sparse client update and a dense model broadcast), both directions.
// `make bench-wire` runs these and folds the numbers into BENCH_6.json.

func benchSend(b *testing.B, conn *Conn, e *Envelope) {
	b.Helper()
	size, err := e.wirePayloadSize()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 + size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireSendUpdate(b *testing.B) {
	update, _ := allocEnvelopes()
	benchSend(b, NewBinaryConn(&byteConn{}, nil), update)
}

func BenchmarkGobSendUpdate(b *testing.B) {
	update, _ := allocEnvelopes()
	benchSend(b, NewConn(&byteConn{}, nil), update)
}

func BenchmarkWireSendModel(b *testing.B) {
	_, model := allocEnvelopes()
	benchSend(b, NewBinaryConn(&byteConn{}, nil), model)
}

func BenchmarkGobSendModel(b *testing.B) {
	_, model := allocEnvelopes()
	benchSend(b, NewConn(&byteConn{}, nil), model)
}

func BenchmarkWireRecvUpdate(b *testing.B) {
	update, _ := allocEnvelopes()
	raw := encodeBinaryEnvelope(b, update)
	conn := NewBinaryConn(&byteConn{r: &repeatReader{data: raw}}, nil)
	var env Envelope
	if err := conn.RecvInto(&env); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.RecvInto(&env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGobRecvUpdate pre-encodes a stream of b.N identical updates
// (gob streams are stateful: the type descriptor is sent once, so a
// frame cannot simply be replayed) and decodes them with Conn.Recv — the
// allocating path a gob server actually runs.
func BenchmarkGobRecvUpdate(b *testing.B) {
	update, _ := allocEnvelopes()
	var buf bytes.Buffer
	enc := NewConn(&byteConn{}, nil)
	enc.cw.w = &buf // redirect the discarding conn's writes into the buffer
	for i := 0; i < b.N; i++ {
		if err := enc.Send(update); err != nil {
			b.Fatal(err)
		}
	}
	conn := NewConn(&byteConn{r: &buf}, nil)
	b.SetBytes(int64(buf.Len()) / int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
