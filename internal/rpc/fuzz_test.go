package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"testing"
	"time"

	"adafl/internal/compress"
)

// byteConn adapts a byte buffer into a net.Conn so corrupted wire data can
// be fed straight into Conn.Recv. Writes are discarded, deadlines are
// no-ops.
type byteConn struct {
	r io.Reader
}

func (b *byteConn) Read(p []byte) (int, error)       { return b.r.Read(p) }
func (b *byteConn) Write(p []byte) (int, error)      { return len(p), nil }
func (b *byteConn) Close() error                     { return nil }
func (b *byteConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (b *byteConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (b *byteConn) SetDeadline(time.Time) error      { return nil }
func (b *byteConn) SetReadDeadline(time.Time) error  { return nil }
func (b *byteConn) SetWriteDeadline(time.Time) error { return nil }

// fixtureEnvelopes covers every message type with its relevant fields
// populated (slices non-empty so gob round-trips them structurally).
func fixtureEnvelopes() []*Envelope {
	return []*Envelope{
		{Type: MsgHello, ClientID: 3, NumSamples: 412},
		{Type: MsgModel, Round: 7, Params: []float64{0.5, -1.25, 3}, GlobalDelta: []float64{1e-3, -2e-3}},
		{Type: MsgScore, ClientID: 2, Round: 7, Score: 0.8125},
		{Type: MsgSelect, Round: 7, Ratio: 12.5},
		{Type: MsgSelect, ClientID: 4, Round: 7, Ratio: 20, Codec: "dadaquant", Levels: 15},
		{Type: MsgUpdate, ClientID: 1, Round: 7, Update: &compress.Sparse{Dim: 8, Indices: []int32{0, 3, 7}, Values: []float64{1, -2, 0.5}}},
		{Type: MsgShutdown, Info: "done: 30 rounds"},
		{Type: MsgWelcome, Round: 4},
		{Type: MsgPing, ClientID: 2, Round: 9, NumSamples: 118},
		{Type: MsgEdgeHello, ClientID: 1, NumSamples: 230, Info: "127.0.0.1:9021", Region: "eu-south"},
		{Type: MsgEdgePartial, ClientID: 1, Round: 9, NumSamples: 230, WeightSum: 230, Params: []float64{0.25, -1.5, 1e-9}},
		{Type: MsgReroute, ClientID: 17, Round: 3, Info: "127.0.0.1:9022"},
		{Type: MsgHello, ClientID: 8, NumSamples: 96, Session: "factory-floor"},
		{Type: MsgAsyncPull, ClientID: 6},
		{Type: MsgAsyncPush, ClientID: 6, Round: 12, Update: &compress.Sparse{Dim: 8, Indices: []int32{1, 6}, Values: []float64{-0.75, 2}}},
	}
}

func encodeEnvelope(tb testing.TB, e *Envelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzEnvelopeDecode feeds arbitrary (and, via the corpus, subtly
// corrupted/truncated) byte streams into Conn.Recv and requires
// error-not-panic behaviour. This is the exact failure surface the fault
// injector's mid-message cut produces on a live socket.
func FuzzEnvelopeDecode(f *testing.F) {
	for _, e := range fixtureEnvelopes() {
		raw := encodeEnvelope(f, e)
		f.Add(raw)
		// Truncations: a cut mid-length-prefix, mid-type-descriptor and
		// mid-payload.
		for _, cut := range []int{1, len(raw) / 3, len(raw) - 1} {
			if cut > 0 && cut < len(raw) {
				f.Add(raw[:cut])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x7f}, 64))
	// A legitimate envelope big enough to trip the capped decode pass
	// below, so the size-cap path is part of the fuzzed surface.
	f.Add(encodeEnvelope(f, &Envelope{Type: MsgModel, Params: make([]float64, 2048)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		c := NewConn(&byteConn{r: bytes.NewReader(data)}, nil)
		// Decode until the stream errors out; bound the loop so a stream
		// of tiny valid messages cannot spin for long.
		for i := 0; i < 64; i++ {
			if _, err := c.Recv(); err != nil {
				break // error, not panic: exactly what we want
			}
		}
		// Second pass under a tight receive cap: whatever the bytes
		// claim about slice lengths, Recv must error out (never panic,
		// never materialise the allocation) once the cap is hit.
		capped := NewConn(&byteConn{r: bytes.NewReader(data)}, nil)
		capped.SetMaxMessage(1 << 12)
		for i := 0; i < 64; i++ {
			if _, err := capped.Recv(); err != nil {
				return
			}
		}
	})
}

// FuzzWireDecode is the binary-codec twin of FuzzEnvelopeDecode: frames
// of every message type — plus truncations, bit flips and hostile length
// prefixes — must decode or error, never panic, never allocate from a
// corrupt declared length, on both the allocating and the scratch-reuse
// receive paths.
func FuzzWireDecode(f *testing.F) {
	for _, e := range fixtureEnvelopes() {
		raw := encodeBinaryEnvelope(f, e)
		f.Add(raw)
		// Truncations: mid-length-prefix, mid-header and mid-body.
		for _, cut := range []int{2, 4, 4 + envHeaderBytes/2, len(raw) - 1} {
			if cut > 0 && cut < len(raw) {
				f.Add(raw[:cut])
			}
		}
		// A hostile prefix: maximum declared length over a tiny body.
		hostile := append([]byte(nil), raw...)
		hostile[0], hostile[1], hostile[2], hostile[3] = 0xff, 0xff, 0xff, 0xff
		f.Add(hostile)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})             // zero-length payload
	f.Add([]byte{0x0a, 0x00, 0x00, 0x00, 0xff, 0xff}) // bad type, cut header

	// Hostile edge-federation frames: length fields that lie about the
	// body. Offsets: 4-byte frame prefix, 10-byte header, then the typed
	// body (EdgePartial: numSamples@14 weightSum@18 nParams@26 params@30;
	// EdgeHello: numSamples@14 infoLen@18; Reroute: infoLen@14).
	for _, e := range fixtureEnvelopes() {
		raw := encodeBinaryEnvelope(f, e)
		switch e.Type {
		case MsgEdgePartial:
			mut := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(mut[26:], 0xffffffff) // declared params >> body
			f.Add(mut)
			f.Add(raw[:len(raw)-5]) // truncated mid-params
		case MsgEdgeHello:
			mut := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(mut[18:], 0x7fffffff) // info length lies
			f.Add(mut)
			f.Add(raw[:len(raw)-2]) // truncated mid-region
		case MsgReroute:
			mut := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(mut[14:], 0xfffffff0) // address length lies
			f.Add(mut)
		case MsgSelect:
			if e.Codec == "" {
				continue
			}
			// Hostile negotiation frames (ratio@14, codecLen@22,
			// levels after the name): a codec length that lies about
			// the body, a NaN ratio, and out-of-range level counts.
			mut := append([]byte(nil), raw...)
			mut[22] = 0xff // declared codec name overruns the body
			f.Add(mut)
			mut = append([]byte(nil), raw...)
			binary.LittleEndian.PutUint64(mut[14:], math.Float64bits(math.NaN()))
			f.Add(mut)
			mut = append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(mut[23+len(e.Codec):], 0xffffffff) // negative levels
			f.Add(mut)
			mut = append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(mut[23+len(e.Codec):], 0x7fffffff) // absurd levels
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		c := NewBinaryConn(&byteConn{r: bytes.NewReader(data)}, nil)
		for i := 0; i < 64; i++ {
			e, err := c.Recv()
			if err != nil {
				break // error, not panic
			}
			// Invariants a successful decode must uphold.
			if e.Update != nil && len(e.Update.Indices) != len(e.Update.Values) {
				t.Fatalf("decoded sparse with %d indices, %d values", len(e.Update.Indices), len(e.Update.Values))
			}
		}
		// Scratch-reuse path: same stream through RecvInto.
		into := NewBinaryConn(&byteConn{r: bytes.NewReader(data)}, nil)
		var env Envelope
		for i := 0; i < 64; i++ {
			if err := into.RecvInto(&env); err != nil {
				break
			}
		}
		// Tight cap: the declared frame size must be judged before any
		// allocation or payload read.
		capped := NewBinaryConn(&byteConn{r: bytes.NewReader(data)}, nil)
		capped.SetMaxMessage(1 << 12)
		for i := 0; i < 64; i++ {
			if _, err := capped.Recv(); err != nil {
				return
			}
		}
	})
}

// TestConnRecvSizeCap locks in the OOM guard: a well-formed envelope
// whose wire size exceeds the cap must fail with ErrMessageTooLarge,
// while the same bytes decode fine under the default cap.
func TestConnRecvSizeCap(t *testing.T) {
	big := &Envelope{Type: MsgModel, Round: 1, Params: make([]float64, 4096)}
	for i := range big.Params {
		big.Params[i] = float64(i)
	}
	raw := encodeEnvelope(t, big)

	ok := NewConn(&byteConn{r: bytes.NewReader(raw)}, nil)
	if _, err := ok.Recv(); err != nil {
		t.Fatalf("default cap rejected a %d-byte model broadcast: %v", len(raw), err)
	}

	capped := NewConn(&byteConn{r: bytes.NewReader(raw)}, nil)
	capped.SetMaxMessage(1 << 10)
	_, err := capped.Recv()
	if err == nil {
		t.Fatal("oversized message decoded despite cap")
	}
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("cap violation error %v does not wrap ErrMessageTooLarge", err)
	}

	// Cap disabled: decodes again.
	uncapped := NewConn(&byteConn{r: bytes.NewReader(raw)}, nil)
	uncapped.SetMaxMessage(0)
	if _, err := uncapped.Recv(); err != nil {
		t.Fatalf("uncapped conn failed: %v", err)
	}
}

// TestEnvelopeRoundTripAllTypes is the property test companion to the
// fuzzer: every message type survives an encode/decode round trip through
// a real Conn pair unchanged.
func TestEnvelopeRoundTripAllTypes(t *testing.T) {
	for _, want := range fixtureEnvelopes() {
		want := want
		a, b := net.Pipe()
		ca, cb := NewConn(a, nil), NewConn(b, nil)
		errCh := make(chan error, 1)
		go func() { errCh <- ca.Send(want) }()
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("type %v: recv: %v", want.Type, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("type %v: send: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("type %v round trip mismatch:\n got %+v\nwant %+v", want.Type, got, want)
		}
		ca.Close()
		cb.Close()
	}
}

// TestEnvelopeDecodeCorruptedPayloads locks in the fuzz property for a
// deterministic set of corruptions so `go test` (without -fuzz) still
// exercises the surface.
func TestEnvelopeDecodeCorruptedPayloads(t *testing.T) {
	for _, e := range fixtureEnvelopes() {
		raw := encodeEnvelope(t, e)
		corruptions := [][]byte{
			raw[:len(raw)/2], // truncated mid-message
			raw[1:],          // missing first length byte
			append(bytes.Repeat([]byte{0xee}, 7), raw...), // garbage prefix
		}
		// Single-byte flips across the whole message.
		for i := 0; i < len(raw); i += 3 {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 0x55
			corruptions = append(corruptions, mut)
		}
		for _, data := range corruptions {
			c := NewConn(&byteConn{r: bytes.NewReader(data)}, nil)
			for i := 0; i < 64; i++ {
				got, err := c.Recv()
				if err != nil {
					break // error-not-panic
				}
				// A flipped byte may still decode; the result must at
				// least be a finite, well-formed envelope.
				if got.Update != nil && len(got.Update.Indices) != len(got.Update.Values) {
					// Structurally inconsistent sparse payloads must be
					// caught by the consumer; document that they can
					// arrive rather than panic here.
					break
				}
			}
		}
	}
}
