package rpc

import (
	"net"
	"strings"
	"testing"
	"time"
)

// fakeAsyncServer speaks the server half of the async protocol on one
// listener: welcome at the current version, answer pulls with the
// current params, bump the version per push, and shut the client down
// after `budget` pushes. It negotiates the wire codec through the same
// exported Accept the federation server path uses.
type fakeAsyncServer struct {
	ln      net.Listener
	dim     int
	budget  int
	pings   bool
	rejects bool

	pushes   int
	sessions []string
	done     chan struct{}
}

func startFakeAsync(t *testing.T, dim, budget int, pings, rejects bool) *fakeAsyncServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeAsyncServer{ln: ln, dim: dim, budget: budget, pings: pings, rejects: rejects, done: make(chan struct{})}
	go f.serve()
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fakeAsyncServer) serve() {
	defer close(f.done)
	raw, err := f.ln.Accept()
	if err != nil {
		return
	}
	conn, err := Accept(raw, "")
	if err != nil {
		return
	}
	defer conn.Close()
	hello, err := conn.Recv()
	if err != nil || hello.Type != MsgHello {
		return
	}
	f.sessions = append(f.sessions, hello.Session)
	if f.rejects {
		conn.Send(&Envelope{Type: MsgShutdown, Info: "session full"})
		return
	}
	params := make([]float64, f.dim)
	version := 0
	if err := conn.Send(&Envelope{Type: MsgWelcome, Round: version}); err != nil {
		return
	}
	if f.pings {
		if err := conn.Send(&Envelope{Type: MsgPing, Round: 7}); err != nil {
			return
		}
	}
	for {
		e, err := conn.Recv()
		if err != nil {
			return
		}
		switch e.Type {
		case MsgAsyncPull:
			if f.pushes >= f.budget {
				conn.Send(&Envelope{Type: MsgShutdown, Info: "version budget reached"})
				return
			}
			if err := conn.Send(&Envelope{Type: MsgModel, Round: version, Params: params}); err != nil {
				return
			}
		case MsgAsyncPush:
			if e.Update == nil || e.Round != version {
				return
			}
			f.pushes++
			version++
		case MsgPing:
			// echo of our ping: nothing to do
		default:
			return
		}
	}
}

// TestAsyncClientLoop drives the client's pull→train→push cycle against
// a protocol-exact fake server: the welcome triggers the first pull,
// every model broadcast produces a push pinned to the pulled version,
// pings are echoed mid-stream, and the budget shutdown ends the run
// cleanly with the push count on the result.
func TestAsyncClientLoop(t *testing.T) {
	env := newChaosEnv(1, 120, 12, 8, 91)
	f := startFakeAsync(t, env.newModel().NumParams(), 4, true, false)
	cfg := env.clientConfig(0, f.ln.Addr().String())
	cfg.Async = true
	cfg.Session = "loop-test"
	res, err := RunClient(cfg)
	if err != nil {
		t.Fatalf("async client: %v", err)
	}
	<-f.done
	if f.pushes != 4 {
		t.Fatalf("server folded %d pushes, want 4", f.pushes)
	}
	if res.Rounds != 4 || res.Uploads != 4 {
		t.Fatalf("client result %+v, want 4 rounds / 4 uploads", res)
	}
	if res.BytesSent == 0 {
		t.Fatal("client reported zero bytes sent")
	}
	if len(f.sessions) != 1 || f.sessions[0] != "loop-test" {
		t.Fatalf("hello carried sessions %q, want [loop-test]", f.sessions)
	}
}

// TestAsyncClientRejectedBeforeWelcome: a shutdown in place of the
// welcome (admission cap, unknown session) is a clean no-work exit, not
// an error — the client must not burn its retry budget redialing.
func TestAsyncClientRejectedBeforeWelcome(t *testing.T) {
	env := newChaosEnv(1, 120, 12, 8, 93)
	f := startFakeAsync(t, env.newModel().NumParams(), 0, false, true)
	cfg := env.clientConfig(0, f.ln.Addr().String())
	cfg.Async = true
	res, err := RunClient(cfg)
	if err != nil {
		t.Fatalf("rejected async client must exit cleanly: %v", err)
	}
	<-f.done
	if res.Rounds != 0 || res.Uploads != 0 {
		t.Fatalf("rejected client did work: %+v", res)
	}
}

// TestAsyncClientDimensionMismatch: a broadcast whose parameter vector
// does not match the local model is a protocol error, not something to
// train on.
func TestAsyncClientDimensionMismatch(t *testing.T) {
	env := newChaosEnv(1, 120, 12, 8, 95)
	f := startFakeAsync(t, env.newModel().NumParams()+1, 1, false, false)
	cfg := env.clientConfig(0, f.ln.Addr().String())
	cfg.Async = true
	if _, err := RunClient(cfg); err == nil {
		t.Fatal("client trained on a mis-sized broadcast")
	}
	_ = f
}

// TestManagedServerHasNoListener pins the managed-server contract: no
// listener of its own (Addr empty) and the same config validation as
// the listening constructor.
func TestManagedServerHasNoListener(t *testing.T) {
	env := newChaosEnv(1, 120, 12, 8, 97)
	srv, err := NewManagedServer(env.serverConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != "" {
		t.Fatalf("managed server claims address %q", srv.Addr())
	}
	if _, err := NewManagedServer(ServerConfig{}); err == nil {
		t.Fatal("managed server accepted an empty config")
	}
}

// TestDialNegotiatesAndRejects covers the exported Dial helper: binary
// negotiation against a sniffing acceptor, forced gob, and the unknown-
// codec refusal.
func TestDialNegotiatesAndRejects(t *testing.T) {
	for _, wire := range []string{WireBinary, WireGob} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		echoed := make(chan error, 1)
		go func() {
			raw, err := ln.Accept()
			if err != nil {
				echoed <- err
				return
			}
			conn, err := Accept(raw, "")
			if err != nil {
				echoed <- err
				return
			}
			defer conn.Close()
			e, err := conn.Recv()
			if err != nil {
				echoed <- err
				return
			}
			echoed <- conn.Send(&Envelope{Type: MsgPing, Round: e.Round})
		}()
		conn, err := Dial("tcp", ln.Addr().String(), wire, time.Second)
		if err != nil {
			t.Fatalf("Dial %s: %v", wire, err)
		}
		if err := conn.Send(&Envelope{Type: MsgPing, Round: 3}); err != nil {
			t.Fatalf("send over %s: %v", wire, err)
		}
		e, err := conn.Recv()
		if err != nil || e.Type != MsgPing || e.Round != 3 {
			t.Fatalf("echo over %s: %+v, %v", wire, e, err)
		}
		if err := <-echoed; err != nil {
			t.Fatalf("server side %s: %v", wire, err)
		}
		conn.Close()
		ln.Close()
	}
	if _, err := Dial("tcp", "127.0.0.1:1", "carrier-pigeon", time.Second); err == nil ||
		!strings.Contains(err.Error(), "unknown wire codec") {
		t.Fatalf("unknown codec: %v", err)
	}
}
