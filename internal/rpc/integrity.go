package rpc

import (
	"adafl/internal/compress"
	"adafl/internal/shard"
)

// QuarantineRecord documents one rejected client update: which client,
// which round, why, and the update's L2 norm (0 for structural rejects,
// where the norm is not trustworthy). Quarantined updates are never
// aggregated; the offending client is evicted exactly like a straggler,
// so its weight leaves the FedAvg renormalisation, and may re-register
// at a later round boundary.
//
// The type is internal/shard's record: the buffered screen below and
// the streaming shard workers produce interchangeable records, and gob
// encodes them structurally, so checkpoints from before the shared type
// restore unchanged.
type QuarantineRecord = shard.QuarantineRecord

// roundUpdate pairs a received update with its sender's identity and
// sample count, decoupling the integrity screen from live connections
// so it can be unit-tested bitwise.
type roundUpdate struct {
	clientID int
	samples  int
	upd      *compress.Sparse
}

// screenUpdates validates every received update before aggregation and
// returns the survivors plus quarantine records for the rejects. The
// checks — structural validation, non-finite scrubbing, the
// median-relative L2 norm gate — live in internal/shard (shard.Screen),
// shared verbatim with the streaming shard workers; this wrapper only
// maps roundUpdates onto shard.Items and back, using Item.Tag to carry
// each update's slice index. Kept updates are never reordered and only
// their values are mutated (scrubbing).
func screenUpdates(round, dim int, maxNormMult float64, ups []roundUpdate,
	logf func(format string, args ...interface{})) (keep []roundUpdate, quarantined []QuarantineRecord) {
	items := make([]shard.Item, len(ups))
	for i, u := range ups {
		items[i] = shard.Item{Client: u.clientID, Tag: i, Upd: u.upd}
	}
	keptItems, quarantined := shard.Screen(round, dim, maxNormMult, items, logf)
	keep = make([]roundUpdate, len(keptItems))
	for i, it := range keptItems {
		keep[i] = ups[it.Tag]
	}
	return keep, quarantined
}
