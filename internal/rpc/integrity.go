package rpc

import (
	"fmt"
	"sort"

	"adafl/internal/compress"
)

// QuarantineRecord documents one rejected client update: which client,
// which round, why, and the update's L2 norm (0 for structural rejects,
// where the norm is not trustworthy). Quarantined updates are never
// aggregated; the offending client is evicted exactly like a straggler,
// so its weight leaves the FedAvg renormalisation, and may re-register
// at a later round boundary.
type QuarantineRecord struct {
	Round    int
	ClientID int
	Reason   string
	Norm     float64
}

// roundUpdate pairs a received update with its sender's identity and
// sample count, decoupling the integrity screen from live connections
// so it can be unit-tested bitwise.
type roundUpdate struct {
	clientID int
	samples  int
	upd      *compress.Sparse
}

// screenUpdates validates every received update before aggregation and
// returns the survivors plus quarantine records for the rejects:
//
//  1. Structural validation (compress.Sparse.Validate): declared
//     dimension, index/value pairing, index bounds. A failure here would
//     panic the aggregation or silently corrupt the model.
//  2. Non-finite scrubbing (compress.Sparse.Scrub): NaN/Inf values are
//     zeroed in place; an update with no finite signal at all is
//     quarantined rather than applied as a zero update from a client
//     whose training has diverged.
//  3. L2-norm outlier gate: with maxNormMult > 0 and at least
//     normGateMinUpdates survivors, updates whose norm exceeds
//     maxNormMult times the round's median norm are quarantined. The
//     median is robust to the outliers being gated; the gate is skipped
//     when the median is zero (an all-zero round has no scale to judge
//     against).
//
// screenUpdates mutates only the updates' values (scrubbing) and never
// reorders kept updates.
func screenUpdates(round, dim int, maxNormMult float64, ups []roundUpdate,
	logf func(format string, args ...interface{})) (keep []roundUpdate, quarantined []QuarantineRecord) {
	keep = make([]roundUpdate, 0, len(ups))
	for _, u := range ups {
		if err := u.upd.Validate(dim); err != nil {
			quarantined = append(quarantined, QuarantineRecord{
				Round: round, ClientID: u.clientID, Reason: err.Error(),
			})
			continue
		}
		if n := u.upd.Scrub(); n > 0 {
			if n == u.upd.NNZ() {
				quarantined = append(quarantined, QuarantineRecord{
					Round: round, ClientID: u.clientID,
					Reason: fmt.Sprintf("update entirely non-finite (%d values)", n),
				})
				continue
			}
			logf("server: round %d: scrubbed %d non-finite values from client %d",
				round+1, n, u.clientID)
		}
		keep = append(keep, u)
	}

	if maxNormMult <= 0 || len(keep) < normGateMinUpdates {
		return keep, quarantined
	}
	norms := make([]float64, len(keep))
	for i, u := range keep {
		norms[i] = u.upd.Norm2()
	}
	med := median(norms)
	if med <= 0 {
		return keep, quarantined
	}
	limit := maxNormMult * med
	gated := keep[:0]
	for i, u := range keep {
		if norms[i] > limit {
			quarantined = append(quarantined, QuarantineRecord{
				Round: round, ClientID: u.clientID, Norm: norms[i],
				Reason: fmt.Sprintf("L2 norm %.4g exceeds %.4g (%.3g x round median %.4g)",
					norms[i], limit, maxNormMult, med),
			})
			continue
		}
		gated = append(gated, u)
	}
	return gated, quarantined
}

// normGateMinUpdates is the minimum number of structurally valid
// updates before the norm gate engages: with fewer, the median is
// dominated by the very update under judgment and the gate would be
// deciding against itself.
const normGateMinUpdates = 3

// median returns the median of xs (mean of the middle pair for even
// counts). xs is copied, not mutated.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}
