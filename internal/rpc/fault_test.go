package rpc

import (
	"errors"
	"flag"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// drain keeps reading one side of a pipe so writes on the other side
// never block; it stops when the conn closes.
func drain(c net.Conn) {
	buf := make([]byte, 4096)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

func TestWrapFaultNilPassthrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := WrapFault(a, nil); got != a {
		t.Fatal("nil config should not wrap")
	}
	if got := WrapFault(a, &FaultConfig{}); got != a {
		t.Fatal("empty config should not wrap")
	}
	if got := WrapFault(a, &FaultConfig{Latency: time.Millisecond}); got == a {
		t.Fatal("active config did not wrap")
	}
}

func TestFaultConnLatency(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	go drain(b)
	fc := WrapFault(a, &FaultConfig{Latency: 50 * time.Millisecond})
	defer fc.Close()
	start := time.Now()
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("latency not injected: write took %v", d)
	}
}

func TestFaultConnCutMidStream(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	fc := WrapFault(a, &FaultConfig{CutAfterBytes: 10})
	n, err := fc.Write([]byte("0123456789abcdef")) // 16 bytes, cut at 10
	if !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("want ErrInjectedCut, got %v", err)
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes, want the 10 before the cut", n)
	}
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write after cut succeeded")
	}
	if data := <-got; string(data) != "0123456789" {
		t.Fatalf("peer saw %q", data)
	}
}

func TestFaultConnDropKillsConnection(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	peerClosed := make(chan struct{})
	go func() {
		drain(b)
		close(peerClosed)
	}()
	fc := WrapFault(a, &FaultConfig{DropProb: 1, Seed: 7})
	if _, err := fc.Write([]byte("doomed")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want ErrInjectedDrop, got %v", err)
	}
	select {
	case <-peerClosed:
	case <-time.After(2 * time.Second):
		t.Fatal("drop did not close the underlying conn")
	}
}

func TestGateToggle(t *testing.T) {
	g := NewGate(true)
	if !g.IsOpen() {
		t.Fatal("gate should start open")
	}
	if err := g.waitOpen(time.Time{}, nil); err != nil {
		t.Fatal(err)
	}
	g.Shut()
	if g.IsOpen() {
		t.Fatal("Shut did not close the gate")
	}
	deadline := time.Now().Add(30 * time.Millisecond)
	if err := g.waitOpen(deadline, nil); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		g.Open()
	}()
	if err := g.waitOpen(time.Now().Add(5*time.Second), nil); err != nil {
		t.Fatalf("open should release the waiter: %v", err)
	}
}

func TestFaultConnPartitionHonoursDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	gate := NewGate(false)
	fc := WrapFault(a, &FaultConfig{Partition: gate})
	defer fc.Close()
	fc.SetReadDeadline(time.Now().Add(40 * time.Millisecond))
	start := time.Now()
	_, err := fc.Read(make([]byte, 16))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("partitioned read did not respect the deadline promptly")
	}
}

func TestFaultConnPartitionReleasedByClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	gate := NewGate(false)
	fc := WrapFault(a, &FaultConfig{Partition: gate})
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 16))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("want net.ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not release the partition wait")
	}
}

func TestFaultConnPartitionHeals(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	gate := NewGate(false)
	fc := WrapFault(a, &FaultConfig{Partition: gate})
	defer fc.Close()
	go drain(b)
	wrote := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("delayed"))
		wrote <- err
	}()
	select {
	case <-wrote:
		t.Fatal("write completed through a shut gate")
	case <-time.After(30 * time.Millisecond):
	}
	gate.Open()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("healed partition did not release the write")
	}
}

func TestFaultFlagsConfig(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	ff := RegisterFaultFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg := ff.Config(); cfg != nil {
		t.Fatalf("no flags set should yield nil config, got %+v", cfg)
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	ff2 := RegisterFaultFlags(fs2)
	if err := fs2.Parse([]string{"-fault-latency", "10ms", "-fault-drop", "0.5", "-fault-partition", "50ms"}); err != nil {
		t.Fatal(err)
	}
	cfg := ff2.Config()
	if cfg == nil || cfg.Latency != 10*time.Millisecond || cfg.DropProb != 0.5 {
		t.Fatalf("flags not mapped: %+v", cfg)
	}
	if cfg.Partition == nil || cfg.Partition.IsOpen() {
		t.Fatal("partition gate should start shut")
	}
	// The -fault-partition gate heals itself after the duration.
	deadlineWait := time.Now().Add(5 * time.Second)
	for !cfg.Partition.IsOpen() {
		if time.Now().After(deadlineWait) {
			t.Fatal("partition gate never healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
