package rpc

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adafl/internal/checkpoint"
	"adafl/internal/compress"
	"adafl/internal/obs"
)

// scriptedUpdate returns a deterministic, structurally valid sparse
// update that depends only on the round, so two sessions fed by
// scripted clients see byte-identical uplink traffic.
func scriptedUpdate(round, dim int) *compress.Sparse {
	idx := make([]int32, 8)
	vals := make([]float64, 8)
	for i := range idx {
		idx[i] = int32((round*11 + i*3) % dim)
		vals[i] = 0.01 * float64(i+1) * float64(round+1)
	}
	return &compress.Sparse{Dim: dim, Indices: idx, Values: vals}
}

// TestShardedSessionBitwiseEquivalentToBuffered drives two complete
// server sessions with an identical scripted client — one buffered
// (Shards=0), one streaming through a single shard — and compares every
// model broadcast bit for bit. This is the tentpole equivalence
// contract at the wire level: the streaming tree is invisible to the
// training trajectory.
func TestShardedSessionBitwiseEquivalentToBuffered(t *testing.T) {
	const rounds = 3
	run := func(shards int) [][]float64 {
		env := newChaosEnv(1, 160, 12, 16, 71)
		scfg := env.serverConfig(rounds)
		scfg.Shards = shards
		var srv *Server
		scfg.OnRound = func(rec RoundRecord) { waitForClient(t, srv, 0, 10*time.Second) }
		srv, err := NewServer(scfg)
		if err != nil {
			t.Fatal(err)
		}
		outCh := make(chan *evilResult, 1)
		go func() { outCh <- runEvilClient(srv.Addr(), 0, 120, 50, scriptedUpdate) }()
		res, err := srv.Run()
		if err != nil {
			t.Fatalf("Shards=%d session: %v", shards, err)
		}
		if len(res.Rounds) != rounds {
			t.Fatalf("Shards=%d: completed %d/%d rounds", shards, len(res.Rounds), rounds)
		}
		if len(res.Quarantines) != 0 {
			t.Fatalf("Shards=%d: scripted client quarantined: %+v", shards, res.Quarantines)
		}
		return (<-outCh).broadcasts
	}
	buffered := run(0)
	streamed := run(1)
	if len(buffered) != len(streamed) || len(buffered) < rounds {
		t.Fatalf("broadcast counts differ: %d vs %d", len(buffered), len(streamed))
	}
	for r := range buffered {
		if len(buffered[r]) != len(streamed[r]) {
			t.Fatalf("round %d: broadcast dims differ", r)
		}
		for i := range buffered[r] {
			if buffered[r][i] != streamed[r][i] {
				t.Fatalf("round %d: global[%d] differs bitwise: %v (buffered) vs %v (Shards=1)",
					r, i, buffered[r][i], streamed[r][i])
			}
		}
	}
}

// TestChaosShardedQuarantineAndResumeGuard is the sharded acceptance
// chaos run: four clients stream through two shards while one honest
// client's link is hard-cut mid-session and a hostile client ships
// malformed updates every round. The server must finish every round,
// quarantine the poison inside its shard, evict the cut straggler, and
// write checkpoints carrying the tree geometry — which must then refuse
// a resume under a different shard count.
func TestChaosShardedQuarantineAndResumeGuard(t *testing.T) {
	const rounds = 12
	env := newChaosEnv(4, 600, 12, 16, 83)
	ckptDir := t.TempDir()
	scfg := env.serverConfig(rounds)
	scfg.Shards = 2
	scfg.CheckpointDir = ckptDir
	var srv *Server
	scfg.OnRound = func(rec RoundRecord) {
		// Hold each boundary until the (repeatedly evicted) hostile
		// client has redialled, so it is screened every round.
		waitForClient(t, srv, 3, 10*time.Second)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := make([]ClientConfig, 3)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	// Client 2: link dies permanently after its early uploads (straggler
	// cut mid-session; no retries, stays dead).
	cfgs[2].Fault = &FaultConfig{CutAfterBytes: 20_000}
	cfgs[2].MaxRetries = 0

	honestCh := make(chan []error, 1)
	go func() {
		_, errs := runClients(cfgs)
		honestCh <- errs
	}()
	evilCh := make(chan *evilResult, 1)
	go func() {
		evilCh <- runEvilClient(srv.Addr(), 3, 120, 100,
			func(round, dim int) *compress.Sparse {
				return &compress.Sparse{Dim: dim,
					Indices: []int32{1, int32(dim + 9)}, Values: []float64{2, 4}}
			})
	}()

	res, err := srv.Run()
	if err != nil {
		t.Fatalf("sharded chaos session aborted: %v", err)
	}
	<-evilCh
	errs := <-honestCh
	for _, i := range []int{0, 1} {
		if errs[i] != nil {
			t.Errorf("healthy client %d: %v", i, errs[i])
		}
	}
	if errs[2] == nil {
		t.Error("cut client unexpectedly survived")
	}

	if len(res.Rounds) != rounds {
		t.Fatalf("completed %d/%d rounds", len(res.Rounds), rounds)
	}
	if len(res.Quarantines) < 2 {
		t.Fatalf("quarantines = %d, want one per round the hostile client reached: %+v",
			len(res.Quarantines), res.Quarantines)
	}
	for _, q := range res.Quarantines {
		if q.ClientID != 3 {
			t.Errorf("quarantined honest client %d: %s", q.ClientID, q.Reason)
		}
		if !strings.Contains(q.Reason, "out of range") {
			t.Errorf("quarantine reason %q does not name the bad index", q.Reason)
		}
	}
	if res.Evictions < len(res.Quarantines)+1 {
		t.Errorf("evictions = %d, want >= %d (quarantines + cut straggler)",
			res.Evictions, len(res.Quarantines)+1)
	}
	if res.FinalAcc < 0.3 {
		t.Fatalf("sharded chaos session did not learn: acc %.3f", res.FinalAcc)
	}

	// The checkpoint carries the tree geometry.
	var snap sessionSnapshot
	if err := checkpoint.Load(filepath.Join(ckptDir, snapshotFile), &snap); err != nil {
		t.Fatalf("loading session checkpoint: %v", err)
	}
	if snap.ShardState == nil || snap.ShardState.Shards != 2 {
		t.Fatalf("checkpoint shard state %+v, want Shards=2", snap.ShardState)
	}
	if snap.CompletedRound != rounds-1 {
		t.Fatalf("checkpoint at round %d, want %d", snap.CompletedRound, rounds-1)
	}

	// A resume under a different shard count must be refused: silently
	// re-routing clients would break the determinism contract.
	rcfg := env.serverConfig(rounds + 2)
	rcfg.Shards = 3
	rcfg.CheckpointDir = ckptDir
	rcfg.Resume = true
	rsrv, err := NewServer(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rsrv.Run(); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("resume with mismatched shard count: err = %v, want shard-count refusal", err)
	}
}

// TestShardedObservabilityEndToEnd extends the observability acceptance
// scenario to a sharded session: the shard-labelled instrument families
// (queue depth, fold latency, received/evicted totals, backpressure,
// merge latency) must appear in the /metrics exposition and agree with
// the session result.
func TestShardedObservabilityEndToEnd(t *testing.T) {
	const rounds, shards = 4, 2
	env := newChaosEnv(3, 400, 12, 16, 93)

	reg := obs.NewRegistry()
	dbg, err := obs.NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	scfg := env.serverConfig(rounds)
	scfg.Shards = shards
	scfg.Metrics = reg
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]ClientConfig, env.clients)
	for i := range cfgs {
		cfgs[i] = env.clientConfig(i, srv.Addr())
	}
	clientsDone := make(chan struct{})
	go func() { runClients(cfgs); close(clientsDone) }()
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	<-clientsDone
	if len(res.Rounds) != rounds {
		t.Fatalf("session ran %d of %d rounds", len(res.Rounds), rounds)
	}

	resp, err := http.Get("http://" + dbg.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, string(body))

	folded := 0
	for _, rec := range res.Rounds {
		folded += rec.Received
	}
	ingested := folded + len(res.Quarantines)

	recvTotal, foldCount, evictedTotal := 0.0, 0.0, 0.0
	for i := 0; i < shards; i++ {
		recv, ok := samples[fmt.Sprintf(`adafl_shard_received_total{shard="%d"}`, i)]
		if !ok {
			t.Errorf("shard %d: received_total series missing", i)
		}
		recvTotal += recv
		fc, ok := samples[fmt.Sprintf(`adafl_shard_fold_seconds_count{shard="%d"}`, i)]
		if !ok {
			t.Errorf("shard %d: fold_seconds histogram missing", i)
		}
		foldCount += fc
		evictedTotal += samples[fmt.Sprintf(`adafl_shard_evicted_total{shard="%d"}`, i)]
		if depth, ok := samples[fmt.Sprintf(`adafl_shard_queue_depth{shard="%d"}`, i)]; !ok {
			t.Errorf("shard %d: queue_depth gauge missing", i)
		} else if depth != 0 {
			t.Errorf("shard %d: queue depth %v after session end, want 0", i, depth)
		}
	}
	if recvTotal != float64(ingested) {
		t.Errorf("shard received_total sums to %v, want %d ingested updates", recvTotal, ingested)
	}
	if foldCount != float64(folded) {
		t.Errorf("fold latency observations %v, want %d folds", foldCount, folded)
	}
	if evictedTotal != float64(len(res.Quarantines)) {
		t.Errorf("shard evicted_total %v, want %d quarantines", evictedTotal, len(res.Quarantines))
	}
	if got := samples["adafl_shard_merge_seconds_count"]; got != float64(rounds) {
		t.Errorf("merge latency observations %v, want %d rounds", got, rounds)
	}
	if _, ok := samples["adafl_shard_backpressure_total"]; !ok {
		t.Error("backpressure counter series missing")
	}
	// The round-engine families from the unsharded path still report.
	if got := samples["adafl_rounds_total"]; got != float64(rounds) {
		t.Errorf("adafl_rounds_total = %v, want %d", got, rounds)
	}
	if got := samples["adafl_quarantines_total"]; got != float64(len(res.Quarantines)) {
		t.Errorf("adafl_quarantines_total = %v, want %d", got, len(res.Quarantines))
	}
}
