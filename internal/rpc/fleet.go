package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adafl/internal/compress"
	"adafl/internal/shard"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// Fleet harness: drives tens of thousands of real socket clients through
// lockstep aggregation rounds against an in-process collection server, to
// measure the wire codec at fleet scale (cmd/flfleet -fleet-addr). The
// protocol is the AdaFL message vocabulary stripped to its hot path:
//
//	client → Hello            (once, after connect)
//	server → Select(round)    (the go-ahead broadcast; one shared
//	                           prebuilt frame on the binary codec)
//	client → Update(round)    (deterministic synthetic sparse delta)
//	server → Shutdown         (after the last round)
//
// The server side is the shape the issue's 100k-connection goal needs:
// one reader goroutine per connection parses frames into pooled payload
// buffers and dispatches them to a bounded worker pool; each worker
// decodes into its own scratch Sparse and folds into its own Partial, and
// the round loop merges worker partials in ascending worker order.
// Steady-state per-connection memory is the bufio reader plus a share of
// the payload pool — a few KB — and the decode path allocates nothing.
//
// Gob mode runs the same protocol through allocating Conn.Recv calls: the
// honest baseline the binary numbers in BENCH_6.json are compared against.

// FleetConfig configures one socket-fleet run.
type FleetConfig struct {
	// Network/Addr is the listen and dial target: "unix" + a socket path
	// scales past the ~28k ephemeral-port ceiling of tcp loopback.
	Network, Addr string
	// Wire selects the codec for every connection: WireBinary or WireGob.
	// The fleet constructs both ends directly in the chosen codec; there
	// is no per-connection negotiation to measure.
	Wire string
	// Clients is the fleet size; Rounds the number of lockstep rounds.
	Clients, Rounds int
	// ExternalClients makes RunFleet a pure server: it spawns no
	// in-process clients and instead waits for Clients connections from
	// RunFleetClients processes sharing the same Seed/Dim/Nnz/Wire. This
	// splits the fleet's descriptor load across processes — both socket
	// ends of an in-process fleet live in one file table, so a 10k-client
	// run needs ~20k fds in one process but only ~10k in each half.
	ExternalClients bool
	// Dim/Nnz shape the synthetic sparse updates.
	Dim, Nnz int
	// Workers bounds the decode/fold pool (default GOMAXPROCS).
	Workers int
	// Queue is the dispatch channel depth (default 256).
	Queue int
	// Seed drives deterministic update generation (FleetUpdate).
	Seed uint64
	// Mask optionally gates participation per round: Mask[r][id] false
	// means client id sits round r out — it sends no update and the
	// server does not wait for one. Produced by a scenario schedule
	// (internal/scenario Fleet.Schedule); nil means full participation.
	// RunFleet requires len(Mask) >= Rounds with every row covering all
	// client ids; the client half of a split fleet must carry the same
	// mask so both processes agree on who sits out.
	Mask [][]bool
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...interface{})
}

// FleetResult is one run's measurements.
type FleetResult struct {
	Wire    string `json:"wire"`
	Network string `json:"network"`
	Clients int    `json:"clients"`
	Rounds  int    `json:"rounds"`
	Dim     int    `json:"dim"`
	Nnz     int    `json:"nnz"`
	Workers int    `json:"workers"`

	Updates       int64   `json:"updates"`
	WallSeconds   float64 `json:"wall_seconds"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// BytesUp/BytesDown are total wire volume. BytesPerUpdate is the
	// exact uplink cost of one update frame (hello traffic excluded) —
	// on the binary codec this is 23 + 12·nnz to the byte.
	BytesUp        int64   `json:"bytes_up"`
	BytesDown      int64   `json:"bytes_down"`
	BytesPerUpdate float64 `json:"bytes_per_update"`
	// AllocsPerUpdate is the whole-process malloc count per update over
	// rounds 2..N (round 1 warms scratch buffers and connection state).
	AllocsPerUpdate float64 `json:"allocs_per_update"`
	// Checksum sums the final global vector: comparable across codecs
	// and with the in-process flfleet modes (same update generator).
	Checksum float64 `json:"global_checksum"`
}

// FleetUpdate fills u with the deterministic synthetic update of (seed,
// round, id) — the same scheme cmd/flfleet's in-process producer uses, so
// socket-driven and in-process runs yield comparable checksums. u's
// slices are reused when their capacity suffices.
func FleetUpdate(u *compress.Sparse, seed uint64, round, id, dim, nnz int) {
	rng := stats.NewRNG(seed ^ uint64(round)*0x9e3779b97f4a7c15 ^ uint64(id)*0xbf58476d1ce4e5b9)
	u.Dim = dim
	if cap(u.Indices) < nnz {
		u.Indices = make([]int32, nnz)
	}
	if cap(u.Values) < nnz {
		u.Values = make([]float64, nnz)
	}
	u.Indices = u.Indices[:nnz]
	u.Values = u.Values[:nnz]
	for i := 0; i < nnz; i++ {
		u.Indices[i] = int32(rng.Intn(dim))
		u.Values[i] = rng.NormScaled(0, 0.01)
	}
}

// fleetJob carries one update payload to a decode worker: raw frame bytes
// on the binary codec (buf returns to the pool after decoding), a decoded
// envelope on gob.
type fleetJob struct {
	payload []byte
	buf     *[]byte
	env     *Envelope
}

type fleetRun struct {
	cfg FleetConfig

	work      chan fleetJob
	roundDone chan struct{} // one token per folded update
	readyCh   chan struct{} // one token per processed hello

	pool sync.Pool // *[]byte payload buffers (binary mode)

	bytesUp   atomic.Int64
	bytesDown atomic.Int64

	aborted chan struct{}
	abortMu sync.Mutex
	err     error

	ln net.Listener
	// dialNet/dialAddr are the listener's resolved endpoint ("tcp" with
	// Addr ":0" resolves to an ephemeral port clients must dial).
	dialNet, dialAddr string

	// trackClientConns registers client-side conns in f.conns so an abort
	// can unblock peers stuck in RecvInto. Only RunFleetClients sets it —
	// in RunFleet, f.conns must hold server-side conns exclusively (the
	// broadcast paths iterate it).
	trackClientConns bool

	// connMu guards the slices against the accept loop: broadcast and
	// accounting run after the registration barrier (all appends done),
	// but the abort path can tear down mid-accept. closed makes teardown
	// airtight: a conn accepted after the sweep is closed on arrival.
	connMu  sync.Mutex
	closed  bool
	conns   []net.Conn // raw server-side conns (binary broadcast path)
	gobConn []*Conn    // server-side Conns (gob mode)
}

func (f *fleetRun) addConn(raw net.Conn, conn *Conn) {
	f.connMu.Lock()
	if f.closed {
		f.connMu.Unlock()
		raw.Close()
		return
	}
	f.conns = append(f.conns, raw)
	if conn != nil {
		f.gobConn = append(f.gobConn, conn)
	}
	f.connMu.Unlock()
}

// abort records the first fatal error and unblocks every waiter.
func (f *fleetRun) abort(err error) {
	f.abortMu.Lock()
	defer f.abortMu.Unlock()
	if f.err == nil {
		f.err = err
		close(f.aborted)
	}
}

func (f *fleetRun) failed() error {
	f.abortMu.Lock()
	defer f.abortMu.Unlock()
	return f.err
}

// RunFleet listens on cfg.Network/Addr, connects cfg.Clients in-process
// socket clients, drives cfg.Rounds lockstep rounds and reports the
// measurements. The listener and every socket are closed on return.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if cfg.Wire == "" {
		cfg.Wire = WireBinary
	}
	if cfg.Wire != WireBinary && cfg.Wire != WireGob {
		return nil, fmt.Errorf("rpc: unknown fleet wire codec %q", cfg.Wire)
	}
	if cfg.Clients < 1 || cfg.Rounds < 1 || cfg.Dim < 1 || cfg.Nnz < 1 || cfg.Nnz > cfg.Dim {
		return nil, fmt.Errorf("rpc: fleet needs clients, rounds, dim >= 1 and 1 <= nnz <= dim")
	}
	if cfg.Mask != nil {
		if len(cfg.Mask) < cfg.Rounds {
			return nil, fmt.Errorf("rpc: fleet mask covers %d rounds, need %d", len(cfg.Mask), cfg.Rounds)
		}
		for r := 0; r < cfg.Rounds; r++ {
			if len(cfg.Mask[r]) < cfg.Clients {
				return nil, fmt.Errorf("rpc: fleet mask round %d covers %d clients, need %d", r, len(cfg.Mask[r]), cfg.Clients)
			}
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}

	ln, err := net.Listen(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	f := &fleetRun{
		cfg:       cfg,
		ln:        ln,
		dialNet:   ln.Addr().Network(),
		dialAddr:  ln.Addr().String(),
		work:      make(chan fleetJob, cfg.Queue),
		roundDone: make(chan struct{}, cfg.Clients),
		readyCh:   make(chan struct{}, cfg.Clients),
		aborted:   make(chan struct{}),
	}
	f.pool.New = func() interface{} {
		b := make([]byte, 0, envHeaderBytes+compress.SparseBinarySize(cfg.Nnz)+64)
		return &b
	}

	// Decode/fold workers, each with private scratch and partial.
	weight := 1 / float64(cfg.Clients)
	parts := make([]*shard.Partial, cfg.Workers)
	var workerWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		parts[w] = shard.NewPartial(cfg.Dim)
		workerWG.Add(1)
		go f.worker(parts[w], weight, &workerWG)
	}

	// Accept loop: exactly cfg.Clients connections, one reader each.
	var readerWG sync.WaitGroup
	go func() {
		for i := 0; i < cfg.Clients; i++ {
			raw, err := ln.Accept()
			if err != nil {
				f.abort(fmt.Errorf("rpc: fleet accept %d: %w", i, err))
				return
			}
			readerWG.Add(1)
			if cfg.Wire == WireBinary {
				f.addConn(raw, nil)
				go f.binaryReader(raw, &readerWG)
			} else {
				conn := NewConn(raw, nil)
				f.addConn(raw, conn)
				go f.gobReader(conn, &readerWG)
			}
		}
	}()

	// Client fleet: one goroutine per client, dial concurrency bounded so
	// the listener backlog is not overrun. With ExternalClients the
	// connections arrive from RunFleetClients processes instead.
	var clientWG sync.WaitGroup
	if !cfg.ExternalClients {
		dialSem := make(chan struct{}, 128)
		for id := 0; id < cfg.Clients; id++ {
			clientWG.Add(1)
			go func(id int) {
				defer clientWG.Done()
				if err := f.client(id, dialSem); err != nil {
					f.abort(fmt.Errorf("rpc: fleet client %d: %w", id, err))
				}
			}(id)
		}
	}

	// Registration barrier: every hello processed.
	for i := 0; i < cfg.Clients; i++ {
		select {
		case <-f.readyCh:
		case <-f.aborted:
			return nil, f.teardown(&clientWG, &readerWG, &workerWG)
		}
	}
	helloBytes := f.uplink()
	cfg.Logf("fleet: %d clients connected (%s, %s), starting %d rounds",
		cfg.Clients, cfg.Network, cfg.Wire, cfg.Rounds)

	global := make([]float64, cfg.Dim)
	roundPart := shard.NewPartial(cfg.Dim)
	var memMark runtime.MemStats
	var allocMark uint64
	var totalUpdates, firstRound int64
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		if err := f.broadcastSelect(r); err != nil {
			f.abort(err)
			return nil, f.teardown(&clientWG, &readerWG, &workerWG)
		}
		// Under a mask the server awaits exactly the round's participants;
		// masked-out clients stay connected but send nothing.
		expect := cfg.Clients
		if cfg.Mask != nil {
			expect = 0
			for id := 0; id < cfg.Clients; id++ {
				if cfg.Mask[r][id] {
					expect++
				}
			}
		}
		totalUpdates += int64(expect)
		if r == 0 {
			firstRound = int64(expect)
		}
		for i := 0; i < expect; i++ {
			select {
			case <-f.roundDone:
			case <-f.aborted:
				return nil, f.teardown(&clientWG, &readerWG, &workerWG)
			}
		}
		// Barrier reached: every worker has folded its last update of the
		// round, so the partials are quiescent. Ascending worker order
		// fixes the merge's floating-point summation order.
		for _, p := range parts {
			roundPart.Merge(p)
			p.Reset()
		}
		if roundPart.WeightSum != 0 {
			tensor.Axpy(1/roundPart.WeightSum, roundPart.Sum, global)
		}
		roundPart.Reset()
		if r == 0 {
			// Round 1 warms scratch buffers, pools and connection state;
			// steady-state allocation accounting starts here.
			runtime.ReadMemStats(&memMark)
			allocMark = memMark.Mallocs
		}
		cfg.Logf("fleet: round %d/%d done", r+1, cfg.Rounds)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&memMark)

	f.broadcastShutdown()
	clientWG.Wait()
	readerWG.Wait()
	close(f.work)
	workerWG.Wait()
	for _, c := range f.conns {
		c.Close()
	}
	if err := f.failed(); err != nil {
		return nil, err
	}

	res := &FleetResult{
		Wire: cfg.Wire, Network: cfg.Network,
		Clients: cfg.Clients, Rounds: cfg.Rounds, Dim: cfg.Dim, Nnz: cfg.Nnz,
		Workers:     cfg.Workers,
		Updates:     totalUpdates,
		WallSeconds: wall.Seconds(),
		BytesUp:     f.uplink(),
		BytesDown:   f.downlink(),
	}
	res.UpdatesPerSec = float64(res.Updates) / res.WallSeconds
	res.BytesPerUpdate = float64(res.BytesUp-helloBytes) / float64(res.Updates)
	if steady := totalUpdates - firstRound; cfg.Rounds > 1 && steady > 0 {
		res.AllocsPerUpdate = float64(memMark.Mallocs-allocMark) / float64(steady)
	} else {
		res.AllocsPerUpdate = math.NaN()
	}
	for _, v := range global {
		res.Checksum += v
	}
	return res, nil
}

// teardown closes everything after an abort and reports the first error.
func (f *fleetRun) teardown(clientWG, readerWG, workerWG *sync.WaitGroup) error {
	f.ln.Close() // stops the accept loop before the conn lists are read
	f.connMu.Lock()
	f.closed = true
	conns := f.conns
	f.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	clientWG.Wait()
	readerWG.Wait()
	close(f.work)
	workerWG.Wait()
	return f.failed()
}

// uplink/downlink report total wire volume for the active codec.
func (f *fleetRun) uplink() int64 {
	if f.cfg.Wire == WireBinary {
		return f.bytesUp.Load()
	}
	var n int64
	for _, c := range f.gobConn {
		n += c.BytesReceived()
	}
	return n
}

func (f *fleetRun) downlink() int64 {
	if f.cfg.Wire == WireBinary {
		return f.bytesDown.Load()
	}
	var n int64
	for _, c := range f.gobConn {
		n += c.BytesSent()
	}
	return n
}

// binaryReader parses frames off one connection and dispatches update
// payloads to the worker pool. Per-connection steady-state memory is the
// bufio reader plus whatever pooled payload buffer is in flight.
func (f *fleetRun) binaryReader(raw net.Conn, wg *sync.WaitGroup) {
	defer wg.Done()
	br := bufio.NewReaderSize(raw, 4096)
	frameCap := envHeaderBytes + compress.SparseBinarySize(f.cfg.Nnz) + 64
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			// EOF after shutdown is the clean exit; anything mid-run
			// surfaces as a stalled round via abort from the client side.
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n < envHeaderBytes || n > frameCap {
			f.abort(fmt.Errorf("rpc: fleet frame of %d bytes (cap %d)", n, frameCap))
			raw.Close()
			return
		}
		buf := f.pool.Get().(*[]byte)
		if cap(*buf) < n {
			*buf = make([]byte, n)
		}
		p := (*buf)[:n]
		if _, err := io.ReadFull(br, p); err != nil {
			f.abort(fmt.Errorf("rpc: fleet read: %w", err))
			raw.Close()
			return
		}
		f.bytesUp.Add(int64(4 + n))
		switch MsgType(p[0]) {
		case MsgHello:
			f.pool.Put(buf)
			f.readyCh <- struct{}{}
		case MsgUpdate:
			f.work <- fleetJob{payload: p, buf: buf}
		default:
			f.abort(fmt.Errorf("rpc: fleet got %v from a client", MsgType(p[0])))
			raw.Close()
			return
		}
	}
}

// gobReader is the baseline: the allocating Conn.Recv path per message.
func (f *fleetRun) gobReader(conn *Conn, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		e, err := conn.Recv()
		if err != nil {
			return
		}
		switch e.Type {
		case MsgHello:
			f.readyCh <- struct{}{}
		case MsgUpdate:
			f.work <- fleetJob{env: e}
		default:
			f.abort(fmt.Errorf("rpc: fleet got %v from a client", e.Type))
			conn.Close()
			return
		}
	}
}

// worker decodes and folds updates into its private partial. The scratch
// Sparse is reused across every update this worker sees: the fold
// (Partial.Fold → Sparse.AddTo) reads the delta synchronously and retains
// nothing.
func (f *fleetRun) worker(part *shard.Partial, weight float64, wg *sync.WaitGroup) {
	defer wg.Done()
	scratch := &compress.Sparse{}
	for job := range f.work {
		if job.env != nil { // gob
			part.Fold(shard.Update{Client: job.env.ClientID, Weight: weight, Delta: job.env.Update}, false)
		} else {
			id := int(int32(binary.LittleEndian.Uint32(job.payload[2:])))
			if err := scratch.DecodeBinaryInto(job.payload[envHeaderBytes:]); err != nil {
				f.abort(fmt.Errorf("rpc: fleet decode: %w", err))
				f.pool.Put(job.buf)
				continue
			}
			part.Fold(shard.Update{Client: id, Weight: weight, Delta: scratch}, false)
			f.pool.Put(job.buf)
		}
		f.roundDone <- struct{}{}
	}
}

// broadcastSelect sends the round's go-ahead to every client. On the
// binary codec one shared frame is prebuilt and written to every socket;
// gob encoders are per-connection state, so gob sends through each Conn.
func (f *fleetRun) broadcastSelect(round int) error {
	if f.cfg.Wire == WireGob {
		e := &Envelope{Type: MsgSelect, Round: round, Ratio: 1}
		for _, c := range f.gobConn {
			if err := c.Send(e); err != nil {
				return fmt.Errorf("rpc: fleet select broadcast: %w", err)
			}
		}
		return nil
	}
	frame := make([]byte, 0, 4+envHeaderBytes+8)
	frame = binary.LittleEndian.AppendUint32(frame, envHeaderBytes+8)
	frame = append(frame, byte(MsgSelect), 0)
	frame = binary.LittleEndian.AppendUint32(frame, 0) // ClientID: broadcast
	frame = binary.LittleEndian.AppendUint32(frame, uint32(int32(round)))
	frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(1))
	for _, raw := range f.conns {
		if _, err := raw.Write(frame); err != nil {
			return fmt.Errorf("rpc: fleet select broadcast: %w", err)
		}
		f.bytesDown.Add(int64(len(frame)))
	}
	return nil
}

// broadcastShutdown ends the session; send errors are ignored (a client
// that already vanished is being told to vanish).
func (f *fleetRun) broadcastShutdown() {
	if f.cfg.Wire == WireGob {
		e := &Envelope{Type: MsgShutdown, Info: "fleet done"}
		for _, c := range f.gobConn {
			c.Send(e)
		}
		return
	}
	info := "fleet done"
	frame := make([]byte, 0, 4+envHeaderBytes+4+len(info))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(envHeaderBytes+4+len(info)))
	frame = append(frame, byte(MsgShutdown), 0)
	frame = binary.LittleEndian.AppendUint32(frame, 0)
	frame = binary.LittleEndian.AppendUint32(frame, 0)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(info)))
	frame = append(frame, info...)
	for _, raw := range f.conns {
		if _, err := raw.Write(frame); err == nil {
			f.bytesDown.Add(int64(len(frame)))
		}
	}
}

// client runs one fleet member: dial, hello, then lockstep rounds until
// shutdown. Fleet clients construct their codec directly (no preamble) on
// a small send buffer — 10k clients at the default 32KB would burn 320MB
// in bufio alone.
func (f *fleetRun) client(id int, dialSem chan struct{}) error {
	dialSem <- struct{}{}
	raw, err := f.dialRetry()
	<-dialSem
	if err != nil {
		return err
	}
	var conn *Conn
	if f.cfg.Wire == WireBinary {
		conn = newBinaryConn(raw, nil, 1024)
	} else {
		conn = NewConn(raw, nil)
	}
	defer conn.Close()
	if f.trackClientConns {
		f.addConn(raw, nil)
	}
	if err := conn.Send(&Envelope{Type: MsgHello, ClientID: id, NumSamples: 1}); err != nil {
		return err
	}
	upd := &compress.Sparse{}
	var env Envelope
	for {
		if err := conn.RecvInto(&env); err != nil {
			select {
			case <-f.aborted: // torn down under us: not this client's fault
				return nil
			default:
			}
			return err
		}
		switch env.Type {
		case MsgSelect:
			if !maskAllows(f.cfg.Mask, env.Round, id) {
				continue // sitting this round out per the scenario mask
			}
			FleetUpdate(upd, f.cfg.Seed, env.Round, id, f.cfg.Dim, f.cfg.Nnz)
			if err := conn.Send(&Envelope{Type: MsgUpdate, ClientID: id, Round: env.Round, Update: upd}); err != nil {
				return err
			}
		case MsgShutdown:
			return nil
		default:
			return fmt.Errorf("unexpected %v", env.Type)
		}
	}
}

// RunFleetClients runs the client half of a split fleet: it dials
// cfg.Network/Addr and drives clients [lo, hi) against a RunFleet server
// (ExternalClients: true) in another process, returning once every
// client has been shut down. cfg.Seed, Dim, Nnz and Wire must match the
// server's so the updates — and the server's frame caps — agree.
func RunFleetClients(cfg FleetConfig, lo, hi int) error {
	if cfg.Wire == "" {
		cfg.Wire = WireBinary
	}
	if cfg.Wire != WireBinary && cfg.Wire != WireGob {
		return fmt.Errorf("rpc: unknown fleet wire codec %q", cfg.Wire)
	}
	if lo < 0 || hi <= lo {
		return fmt.Errorf("rpc: fleet client range [%d, %d) is empty", lo, hi)
	}
	if cfg.Dim < 1 || cfg.Nnz < 1 || cfg.Nnz > cfg.Dim {
		return fmt.Errorf("rpc: fleet needs dim >= 1 and 1 <= nnz <= dim")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	f := &fleetRun{
		cfg:              cfg,
		dialNet:          cfg.Network,
		dialAddr:         cfg.Addr,
		aborted:          make(chan struct{}),
		trackClientConns: true,
	}
	// One client's failure must unblock the rest: they sit in RecvInto on
	// healthy sockets and would otherwise wait on a server that is itself
	// stalled waiting for the dead client's update.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-done:
			return
		case <-f.aborted:
		}
		f.connMu.Lock()
		f.closed = true
		conns := f.conns
		f.connMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	cfg.Logf("fleet: dialing clients [%d, %d) against %s %s (%s)",
		lo, hi, cfg.Network, cfg.Addr, cfg.Wire)
	var wg sync.WaitGroup
	dialSem := make(chan struct{}, 128)
	for id := lo; id < hi; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := f.client(id, dialSem); err != nil {
				f.abort(fmt.Errorf("rpc: fleet client %d: %w", id, err))
			}
		}(id)
	}
	wg.Wait()
	return f.failed()
}

// maskAllows reports whether client id participates in round r under the
// optional availability mask; a nil mask or an out-of-range index means
// full participation (split-fleet client processes may carry no mask
// rows beyond the rounds the server validated).
func maskAllows(mask [][]bool, r, id int) bool {
	return mask == nil || r >= len(mask) || id >= len(mask[r]) || mask[r][id]
}

// dialRetry absorbs transient dial failures (listener backlog overruns
// while thousands of clients connect at once).
func (f *fleetRun) dialRetry() (net.Conn, error) {
	var err error
	for attempt := 0; attempt < 300; attempt++ {
		var c net.Conn
		c, err = net.DialTimeout(f.dialNet, f.dialAddr, 10*time.Second)
		if err == nil {
			return c, nil
		}
		select {
		case <-f.aborted:
			return nil, err
		case <-time.After(time.Duration(1+attempt%20) * time.Millisecond):
		}
	}
	return nil, err
}
