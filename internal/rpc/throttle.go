package rpc

import (
	"io"
	"sync"
	"time"
)

// TokenBucket rate-limits bytes to emulate a constrained link on a real
// socket. Capacity is one second's worth of tokens, so short bursts pass
// and sustained throughput converges to Rate bytes/second.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	tokens float64
	last   time.Time
	// sleep is replaceable for tests.
	sleep func(time.Duration)
}

// NewTokenBucket returns a bucket limiting to rate bytes/second.
func NewTokenBucket(rate float64) *TokenBucket {
	if rate <= 0 {
		panic("rpc: non-positive throttle rate")
	}
	return &TokenBucket{rate: rate, tokens: rate, last: time.Now(), sleep: time.Sleep}
}

// Take blocks until n bytes worth of tokens are available.
func (tb *TokenBucket) Take(n int) {
	for n > 0 {
		chunk := n
		if max := int(tb.rate); chunk > max && max > 0 {
			chunk = max
		}
		tb.takeChunk(chunk)
		n -= chunk
	}
}

func (tb *TokenBucket) takeChunk(n int) {
	for {
		tb.mu.Lock()
		now := time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		tb.last = now
		if tb.tokens > tb.rate {
			tb.tokens = tb.rate
		}
		if tb.tokens >= float64(n) {
			tb.tokens -= float64(n)
			tb.mu.Unlock()
			return
		}
		need := (float64(n) - tb.tokens) / tb.rate
		tb.mu.Unlock()
		tb.sleep(time.Duration(need * float64(time.Second)))
	}
}

// throttledWriter shapes writes through a token bucket.
type throttledWriter struct {
	w  io.Writer
	tb *TokenBucket
}

func (t *throttledWriter) Write(p []byte) (int, error) {
	t.tb.Take(len(p))
	return t.w.Write(p)
}
