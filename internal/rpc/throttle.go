package rpc

import (
	"io"
	"math"
	"sync"
	"time"
)

// TokenBucket rate-limits bytes to emulate a constrained link on a real
// socket. Capacity is one second's worth of tokens, so short bursts pass
// and sustained throughput converges to Rate bytes/second.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	tokens float64
	last   time.Time
	// sleep is replaceable for tests.
	sleep func(time.Duration)
}

// NewTokenBucket returns a bucket limiting to rate bytes/second.
func NewTokenBucket(rate float64) *TokenBucket {
	if rate <= 0 {
		panic("rpc: non-positive throttle rate")
	}
	return &TokenBucket{rate: rate, tokens: rate, last: time.Now(), sleep: time.Sleep}
}

// Take blocks until n bytes worth of tokens are available.
//
// Writes larger than the bucket capacity (one second's worth of tokens)
// are split into capacity-sized chunks so concurrent takers interleave
// instead of one writer monopolising the link for many seconds. The
// chunk size is computed in float math: the previous int truncation made
// fractional rates below 1 B/s skip the cap entirely, and a chunk larger
// than capacity can never be satisfied by a bucket whose refill tops out
// at capacity — Take would spin forever (sleep, refill, still short).
// Each iteration still moves at least one byte so sub-1 B/s rates make
// progress rather than looping on zero-byte chunks.
func (tb *TokenBucket) Take(n int) {
	remaining := float64(n)
	for remaining > 0 {
		chunk := remaining
		if chunk > tb.rate {
			chunk = tb.rate
		}
		if chunk < 1 {
			chunk = math.Min(1, remaining)
		}
		tb.takeChunk(chunk)
		remaining -= chunk
	}
}

// takeChunk deducts n tokens, letting the balance go negative, and
// sleeps off the deficit. Running a deficit instead of waiting for the
// balance to reach n keeps the bucket livelock-free for any chunk size:
// the sleep duration depends only on how far below zero the balance is,
// never on reaching a threshold the capacity cap might make unreachable.
func (tb *TokenBucket) takeChunk(n float64) {
	tb.mu.Lock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.rate {
		tb.tokens = tb.rate
	}
	tb.tokens -= n
	deficit := -tb.tokens
	tb.mu.Unlock()
	if deficit > 0 {
		tb.sleep(time.Duration(deficit / tb.rate * float64(time.Second)))
	}
}

// throttledWriter shapes writes through a token bucket.
type throttledWriter struct {
	w  io.Writer
	tb *TokenBucket
}

func (t *throttledWriter) Write(p []byte) (int, error) {
	t.tb.Take(len(p))
	return t.w.Write(p)
}
