package core

import (
	"math"
	"testing"

	"adafl/internal/compress"
	"adafl/internal/dataset"
	"adafl/internal/device"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// newFed builds a fast AdaFL-ready federation over SynthMNIST 16×16 with
// an image MLP.
func newFed(numClients int, iid bool, seed uint64) *fl.Federation {
	ds := dataset.SynthMNIST(800, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	var parts []*dataset.Dataset
	if iid {
		parts = dataset.PartitionIID(train, numClients, seed+2)
	} else {
		parts = dataset.PartitionShards(train, numClients, 2, seed+2)
	}
	net := netsim.UniformNetwork(numClients, netsim.WiFiLink, seed+3)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+4))
	}
	cfg := fl.TrainConfig{LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	return fl.NewFederation(parts, test, net, newModel, cfg, seed+5)
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Compression.WarmupRounds = 3
	// The fast federation uses a ~9k-parameter MLP whose gradient spectrum
	// is flat; scale the ratio ladder accordingly (see ScaleRatiosForModel).
	cfg.ScaleRatiosForModel(9000)
	return cfg
}

func TestSyncAdaFLLearns(t *testing.T) {
	fed := newFed(10, false, 1)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 2)
	e.EvalEvery = 5
	initAcc, _ := fed.Evaluate(e.Global)
	e.RunRounds(35)
	if acc := e.Hist.FinalAcc(); acc < initAcc+0.3 {
		t.Fatalf("AdaFL sync did not learn: %v -> %v", initAcc, acc)
	}
}

func TestSyncAdaFLSelectsAtMostK(t *testing.T) {
	fed := newFed(10, false, 2)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 3)
	e.RunRounds(cfg.Compression.WarmupRounds) // exit warm-up
	for round := 0; round < 5; round++ {
		parts := planner.Plan(e.Round(), e)
		if len(parts) > cfg.K {
			t.Fatalf("round %d selected %d > K=%d", round, len(parts), cfg.K)
		}
		e.RunRound()
	}
}

func TestSyncAdaFLWarmupIsFullParticipation(t *testing.T) {
	fed := newFed(8, true, 3)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 4)
	parts := planner.Plan(0, e)
	if len(parts) != 8 {
		t.Fatalf("warm-up planned %d of 8 clients", len(parts))
	}
	for _, p := range parts {
		if p.Ratio != cfg.Compression.WarmupRatio {
			t.Fatalf("warm-up ratio %v", p.Ratio)
		}
	}
}

func TestSyncAdaFLReducesCommunication(t *testing.T) {
	seed := uint64(4)
	rounds := 50

	base := newFed(10, false, seed)
	eBase := fl.NewSyncEngine(base, fl.FedAvg{}, fl.NewFixedRatePlanner(0.5, 1, 5), 6)
	eBase.RunRounds(rounds)

	ada := newFed(10, false, seed)
	cfg := fastConfig()
	cfg.AttachDGC(ada)
	eAda := fl.NewSyncEngine(ada, fl.FedAvg{}, NewSyncPlanner(cfg), 6)
	eAda.RunRounds(rounds)

	if eAda.TotalUplinkBytes() >= eBase.TotalUplinkBytes()/2 {
		t.Fatalf("AdaFL bytes %d not <50%% of baseline %d",
			eAda.TotalUplinkBytes(), eBase.TotalUplinkBytes())
	}
	// And it must still learn comparably (within 20 points of baseline —
	// single-seed accuracy on the small test split is noisy; the bench
	// harness averages seeds and lands within a few points).
	if eAda.Hist.FinalAcc() < eBase.Hist.FinalAcc()-0.20 {
		t.Fatalf("AdaFL accuracy %v collapsed vs baseline %v",
			eAda.Hist.FinalAcc(), eBase.Hist.FinalAcc())
	}
}

func TestSyncAdaFLRatioSpread(t *testing.T) {
	fed := newFed(10, false, 7)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 8)
	e.RunRounds(15)
	tr := planner.RatioStats
	if tr.Count == 0 {
		t.Fatal("no ratios observed")
	}
	if tr.MinRatio > cfg.Compression.WarmupRatio {
		t.Fatalf("min ratio %v above warm-up", tr.MinRatio)
	}
	if tr.MaxRatio <= cfg.Compression.MinRatio {
		t.Fatalf("max ratio %v never exceeded MinRatio — no adaptation", tr.MaxRatio)
	}
}

func TestAsyncAdaFLLearnsAndGates(t *testing.T) {
	fed := newFed(6, false, 9)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	gate := NewAsyncGate(cfg)
	e := fl.NewAsyncEngine(fed, AsyncApply{Alpha: cfg.AsyncAlpha, Anchor: cfg.AsyncAnchor, Decay: cfg.AsyncDecay}, gate)
	initAcc, _ := fed.Evaluate(e.Global)
	e.Run(30)
	if e.TotalUpdates() == 0 {
		t.Fatal("no updates received")
	}
	if acc := e.Hist.FinalAcc(); acc < initAcc+0.25 {
		t.Fatalf("AdaFL async did not learn: %v -> %v", initAcc, acc)
	}
}

func TestAsyncGateSkipsLowUtility(t *testing.T) {
	fed := newFed(4, false, 10)
	cfg := fastConfig()
	cfg.Tau = 0.95 // nearly impossible threshold after warm-up
	cfg.AttachDGC(fed)
	gate := NewAsyncGate(cfg)
	e := fl.NewAsyncEngine(fed, AsyncApply{Alpha: 0.5, Decay: 0.5}, gate)
	e.Run(30)
	if gate.SkipRate() == 0 {
		t.Fatal("strict threshold never skipped an update")
	}
}

func TestAsyncApplyStalenessDiscount(t *testing.T) {
	a := AsyncApply{Alpha: 1, Decay: 1}
	freshGlobal := []float64{0}
	staleGlobal := []float64{0}
	u := fl.Update{Delta: compress.NewSparseDense([]float64{1}), Staleness: 0}
	a.OnReceive(freshGlobal, nil, u)
	u.Staleness = 9
	a.OnReceive(staleGlobal, nil, u)
	if math.Abs(freshGlobal[0]-1) > 1e-12 {
		t.Fatalf("fresh step %v", freshGlobal[0])
	}
	if math.Abs(staleGlobal[0]-0.1) > 1e-12 {
		t.Fatalf("stale step %v, want 0.1", staleGlobal[0])
	}
}

func TestPerfAccountingRecordsUtilityCycles(t *testing.T) {
	fed := newFed(5, true, 11)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	planner.Perf = device.NewPerfMonitor()
	planner.PerfProfile = device.RaspberryPi4
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 12)
	e.RunRounds(8)
	if planner.Perf.Get("utility-score") == 0 {
		t.Fatal("no utility cycles recorded")
	}
	if planner.Perf.Get("dgc-encode") == 0 {
		t.Fatal("no compression cycles recorded")
	}
	if planner.Perf.Get("dgc-encode") <= planner.Perf.Get("utility-score") {
		t.Fatal("DGC should cost more cycles than utility scoring")
	}
}
