package core

import (
	"math"

	"adafl/internal/compress"
	"adafl/internal/device"
	"adafl/internal/fl"
	"adafl/internal/obs"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// Config bundles the AdaFL hyperparameters.
type Config struct {
	// K is the maximum number of clients selected per synchronous round
	// (the paper uses k ≤ 5 of 10).
	K int
	// Tau is the utility threshold τ ∈ [0, 1].
	Tau float64
	// Utility configures the score f.
	Utility UtilityConfig
	// Compression configures the adaptive ratio controller.
	Compression CompressionController
	// ExploreFrac reserves a fraction of the K selection slots for the
	// least-recently-selected clients. This extends the warm-up phase's
	// equal-participation principle past warm-up: pure top-score selection
	// can lock onto a coalition of mutually-aligned clients and starve
	// non-IID shards. 0 disables the reservation (pure Algorithm 1). The
	// default 0.8 empirically dominates both pure ranking (starvation) and
	// pure round-robin (no utility signal); see the ablation bench.
	ExploreFrac float64
	// AsyncAlpha, AsyncAnchor and AsyncDecay configure the fully-
	// asynchronous server apply step (delta scale, anchor pull, and the
	// polynomial staleness exponent) — see AsyncApply.
	AsyncAlpha, AsyncAnchor, AsyncDecay float64
	// DGCMomentum and DGCClip configure the client-side DGC codecs
	// AttachDGC installs. In the delta-exchange engines the client's model
	// delta already carries the local optimizer's momentum, so the codec's
	// momentum correction defaults to 0 (pure error feedback); momentum
	// correction harmonises sparse updates only when raw per-step
	// gradients are exchanged.
	DGCMomentum, DGCClip float64
	// DGCMsgClip bounds each transmitted message's norm relative to the
	// current delta (see compress.DGC.MsgClipFactor); it rate-limits stale
	// residual dumps from intermittently selected clients.
	DGCMsgClip float64
}

// DefaultConfig returns the configuration behind the paper's headline
// numbers: k ≤ 5 of 10 clients, τ = 0.5, 5 warm-up rounds, 4x–210x ratios.
func DefaultConfig() Config {
	return Config{
		K:           5,
		Tau:         0.3,
		Utility:     DefaultUtility(),
		Compression: DefaultController(),
		ExploreFrac: 0.8,
		AsyncAlpha:  0.6,
		AsyncAnchor: 0.2,
		AsyncDecay:  0.5,
		DGCMomentum: 0,
		DGCClip:     10,
		DGCMsgClip:  2,
	}
}

// ScaleRatiosForModel adjusts the compression bounds to the gradient-skew
// regime of the model in use. The paper's 4x–210x ladder presumes the
// heavy-tailed gradient spectra of deep CNNs, where the top fraction of a
// per-round delta carries most of its mass; for the small dense models the
// fast experiment presets use, the spectra are flat and the same ratios
// would discard most of the update. dim is the model's parameter count:
// below smallModelDim the MaxRatio is capped at maxForSmall.
func (c *Config) ScaleRatiosForModel(dim int) {
	const smallModelDim = 100000
	const maxForSmall = 10
	if dim < smallModelDim && c.Compression.MaxRatio > maxForSmall {
		c.Compression.MaxRatio = maxForSmall
	}
	if c.Compression.MinRatio > c.Compression.MaxRatio {
		c.Compression.MinRatio = c.Compression.MaxRatio
	}
}

// AttachDGC installs a fresh per-client DGC codec on every client of the
// federation (AdaFL's compression builds on DGC; each client needs its own
// accumulator state).
func (c Config) AttachDGC(fed *fl.Federation) {
	probe := compress.DGC{Momentum: c.DGCMomentum, ClipNorm: c.DGCClip, MsgClipFactor: c.DGCMsgClip}
	if err := probe.Validate(); err != nil {
		panic(err)
	}
	for _, cl := range fed.Clients {
		cl.Codec = &compress.DGC{
			Momentum:      c.DGCMomentum,
			ClipNorm:      c.DGCClip,
			MsgClipFactor: c.DGCMsgClip,
		}
	}
}

// SyncPlanner is AdaFL's adaptive node selection for the synchronous
// engine. Each round it scores every client by equation 6 using the
// client's cached local delta against the previous global delta and the
// client's current link bandwidths, applies Algorithm 1, and assigns
// rank-based compression ratios.
//
// During warm-up all clients participate at the warm-up ratio, letting the
// global model absorb every data distribution before specialising.
type SyncPlanner struct {
	Cfg Config
	// Perf, when non-nil, records utility-score and compression cycle
	// counts against the given device profile (the overhead experiment).
	Perf        *device.PerfMonitor
	PerfProfile device.Profile

	// RatioStats tracks the spread of assigned ratios for the tables.
	RatioStats RatioTracker

	// Metrics, when non-nil, receives the utility-score and assigned-ratio
	// histograms (adafl_utility_score, adafl_compression_ratio).
	Metrics *obs.Registry

	// Eligible, when non-nil, restricts selection to clients it reports
	// true for — the scenario engine's availability gate. Ineligible
	// clients are excluded everywhere: warm-up, top-score selection, the
	// fairness reservation and the empty-selection fallback. If no client
	// is eligible the plan is empty and the round runs with no updates.
	Eligible func(client int) bool
	// ScoreMult, when non-nil, scales each client's utility score before
	// Algorithm 1 ranks them — the scenario engine's battery-aware smart
	// sampling (low-battery clients are deprioritised).
	ScoreMult func(client int) float64

	// Negotiator, when non-nil, turns on per-round codec negotiation: the
	// utility-ranked ratios become the baseline a deterministic link-state
	// assignment refines, selected clients may be switched to the
	// DAdaQuant codec, and each client's last assigned ratio feeds back
	// into its utility score (Negotiator.ScoreMult).
	Negotiator *Negotiator
	// BandwidthMult returns the client's bandwidth multiplier for the
	// round (the scenario class×trace product); nil means 1 everywhere.
	// It must be a pure function of (client, round) for replay.
	BandwidthMult func(client, round int) float64
	// NegotiationSeed seeds the planner-owned DAdaQuant codecs'
	// stochastic rounding (one derived stream per client).
	NegotiationSeed uint64

	dadaCodecs map[int]*compress.DAdaQuant

	// lastSel records the round each client last participated, for the
	// ExploreFrac fairness reservation.
	lastSel []int
}

// NewSyncPlanner returns a planner with the given configuration.
func NewSyncPlanner(cfg Config) *SyncPlanner {
	cfg.Compression.Validate()
	return &SyncPlanner{Cfg: cfg}
}

// eligible applies the optional availability gate.
func (p *SyncPlanner) eligible(i int) bool {
	return p.Eligible == nil || p.Eligible(i)
}

// Plan implements fl.RoundPlanner.
func (p *SyncPlanner) Plan(round int, e *fl.SyncEngine) []fl.Participation {
	n := len(e.Fed.Clients)
	if p.lastSel == nil {
		p.lastSel = make([]int, n)
		for i := range p.lastSel {
			p.lastSel[i] = -1
		}
	}
	if p.Cfg.Compression.InWarmup(round) || tensor.Norm2(e.LastGlobalDelta) == 0 {
		out := make([]fl.Participation, 0, n)
		ratio := p.Cfg.Compression.WarmupRatio
		for i := 0; i < n; i++ {
			if !p.eligible(i) {
				continue
			}
			out = append(out, fl.Participation{Client: i, Ratio: ratio})
			p.RatioStats.Observe(ratio)
			p.lastSel[i] = round
			if p.Perf != nil {
				p.Perf.Record("dgc-encode",
					p.PerfProfile.CyclesForFLOPs(device.DGCEncodeFLOPs(len(e.Global))))
			}
		}
		return p.negotiate(round, out)
	}

	scores := make([]float64, n)
	scoreHist := p.Metrics.Histogram("adafl_utility_score", obs.ScoreBuckets)
	for i, c := range e.Fed.Clients {
		if !p.eligible(i) {
			// Below any τ ≥ 0 and never the reservation's pick, so the
			// client cannot enter the plan through either path.
			scores[i] = math.Inf(-1)
			continue
		}
		up, down := e.Fed.Net.Bandwidths(i, e.Now())
		local := c.LastDelta
		if local == nil {
			local = e.LastGlobalDelta // untried client: score as aligned
		}
		scores[i] = p.Cfg.Utility.Score(up, down, local, e.LastGlobalDelta)
		if p.ScoreMult != nil {
			scores[i] *= p.ScoreMult(i)
		}
		if p.Negotiator != nil {
			scores[i] *= p.Negotiator.ScoreMult(i)
		}
		scoreHist.Observe(scores[i])
		if p.Perf != nil {
			p.Perf.Record("utility-score",
				p.PerfProfile.CyclesForFLOPs(device.UtilityScoreFLOPs(len(local))))
		}
	}

	// Reserve part of the budget for the least-recently-selected clients,
	// keeping the rest for pure Algorithm 1 top-score selection.
	reserve := int(math.Ceil(p.Cfg.ExploreFrac * float64(p.Cfg.K)))
	if reserve > p.Cfg.K {
		reserve = p.Cfg.K
	}
	var selected []ScoredClient
	if kTop := p.Cfg.K - reserve; kTop >= 1 {
		selected = SelectClients(scores, kTop, p.Cfg.Tau)
	}
	chosen := make(map[int]bool, p.Cfg.K)
	for _, sc := range selected {
		chosen[sc.Client] = true
	}
	for slot := 0; slot < reserve; slot++ {
		// Pick the unchosen client idle the longest (ties → lowest id).
		best := -1
		for i := 0; i < n; i++ {
			if chosen[i] || !p.eligible(i) {
				continue
			}
			if best == -1 || p.lastSel[i] < p.lastSel[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		chosen[best] = true
		selected = append(selected, ScoredClient{Client: best, Score: scores[best]})
	}

	// Fallback: with ExploreFrac 0 and every score below τ, Algorithm 1
	// selects nobody and the round would burn wall-clock with no updates.
	// Treat the round like warm-up instead: full participation at the
	// warm-up ratio, which also refreshes every client's cached delta so
	// the next round's scores are informed.
	ratioHist := p.Metrics.Histogram("adafl_compression_ratio", obs.RatioBuckets)
	if len(selected) == 0 {
		ratio := p.Cfg.Compression.WarmupRatio
		out := make([]fl.Participation, 0, n)
		for i := 0; i < n; i++ {
			if !p.eligible(i) {
				continue
			}
			out = append(out, fl.Participation{Client: i, Ratio: ratio})
			p.RatioStats.Observe(ratio)
			ratioHist.Observe(ratio)
			p.lastSel[i] = round
		}
		return p.negotiate(round, out)
	}
	out := make([]fl.Participation, 0, len(selected))
	for rank, sc := range selected {
		ratio := p.Cfg.Compression.RatioForRank(rank, len(selected), round)
		out = append(out, fl.Participation{Client: sc.Client, Ratio: ratio})
		p.RatioStats.Observe(ratio)
		ratioHist.Observe(ratio)
		p.lastSel[sc.Client] = round
		if p.Perf != nil {
			p.Perf.Record("dgc-encode",
				p.PerfProfile.CyclesForFLOPs(device.DGCEncodeFLOPs(len(e.LastGlobalDelta))))
		}
	}
	return p.negotiate(round, out)
}

// negotiate refines a planned participation list through the negotiator:
// the utility-ranked ratio becomes the baseline, the round's bandwidth
// multiplier and byte history refine it, and clients switched to the
// quantizing codec get the planner-owned per-client DAdaQuant instance
// attached. A nil negotiator returns the plan untouched, so existing
// sessions replay bit-identically.
func (p *SyncPlanner) negotiate(round int, out []fl.Participation) []fl.Participation {
	if p.Negotiator == nil {
		return out
	}
	plan := make(map[int]float64, len(out))
	for _, pt := range out {
		plan[pt.Client] = pt.Ratio
	}
	var bw func(int) float64
	if p.BandwidthMult != nil {
		bw = func(id int) float64 { return p.BandwidthMult(id, round) }
	}
	asn := p.Negotiator.Assign(round, plan, bw)
	for i := range out {
		a, ok := asn[out[i].Client]
		if !ok {
			continue
		}
		out[i].Ratio = a.Ratio
		if a.Codec == CodecDAdaQuant {
			out[i].Codec = p.dadaCodec(out[i].Client, round, a.Levels)
		}
	}
	return out
}

// dadaCodec returns the planner-owned DAdaQuant instance for the client,
// pinned to the assigned level count and round. Each client gets its own
// derived RNG stream so stochastic rounding replays per client no matter
// which rounds it is selected in.
func (p *SyncPlanner) dadaCodec(client, round, levels int) compress.Codec {
	if p.dadaCodecs == nil {
		p.dadaCodecs = make(map[int]*compress.DAdaQuant)
	}
	d := p.dadaCodecs[client]
	if d == nil {
		cfg := p.Negotiator.Config()
		rng := stats.NewRNG(p.NegotiationSeed + 0x9e3779b97f4a7c15*uint64(client+1))
		d = compress.NewDAdaQuant(cfg.MinLevels, cfg.MaxLevels, cfg.LevelDoubleEvery, rng)
		p.dadaCodecs[client] = d
	}
	d.SetRound(round)
	d.SetLevels(levels)
	return d
}

// AsyncGate is AdaFL's client-side utility gating for the asynchronous
// engine: after local training, the client scores its own delta against
// the last global delta; below-threshold updates are withheld (the client
// idles until the next global model) and transmitted updates are
// compressed according to the score.
type AsyncGate struct {
	Cfg Config
	// Perf mirrors SyncPlanner.Perf.
	Perf        *device.PerfMonitor
	PerfProfile device.Profile

	// Metrics mirrors SyncPlanner.Metrics.
	Metrics *obs.Registry

	RatioStats RatioTracker
	decisions  int
	skipped    int
}

// NewAsyncGate returns a gate with the given configuration.
func NewAsyncGate(cfg Config) *AsyncGate {
	cfg.Compression.Validate()
	return &AsyncGate{Cfg: cfg}
}

// SkipRate reports the fraction of training completions that were withheld.
func (g *AsyncGate) SkipRate() float64 {
	if g.decisions == 0 {
		return 0
	}
	return float64(g.skipped) / float64(g.decisions)
}

// Decide implements fl.AsyncGate.
func (g *AsyncGate) Decide(e *fl.AsyncEngine, client int, delta []float64) (bool, float64) {
	g.decisions++
	// Warm-up: every update flows, lightly compressed.
	if g.Cfg.Compression.InWarmup(e.Version) || tensor.Norm2(e.LastGlobalDelta) == 0 {
		ratio := g.Cfg.Compression.WarmupRatio
		g.RatioStats.Observe(ratio)
		if g.Perf != nil {
			g.Perf.Record("dgc-encode",
				g.PerfProfile.CyclesForFLOPs(device.DGCEncodeFLOPs(len(delta))))
		}
		return true, ratio
	}
	up, down := e.Fed.Net.Bandwidths(client, e.Now())
	score := g.Cfg.Utility.Score(up, down, delta, e.LastGlobalDelta)
	g.Metrics.Histogram("adafl_utility_score", obs.ScoreBuckets).Observe(score)
	if g.Perf != nil {
		g.Perf.Record("utility-score",
			g.PerfProfile.CyclesForFLOPs(device.UtilityScoreFLOPs(len(delta))))
	}
	if score < g.Cfg.Tau {
		g.skipped++
		return false, 0
	}
	ratio := g.Cfg.Compression.RatioForScore(score, e.Version)
	g.RatioStats.Observe(ratio)
	g.Metrics.Histogram("adafl_compression_ratio", obs.RatioBuckets).Observe(ratio)
	if g.Perf != nil {
		g.Perf.Record("dgc-encode",
			g.PerfProfile.CyclesForFLOPs(device.DGCEncodeFLOPs(len(delta))))
	}
	return true, ratio
}

// AsyncApply is AdaFL's fully-asynchronous server step: every received
// (gated, compressed) update is applied immediately — "the server upgrades
// its global model each time it receives a gradient update". The update
// combines the client's sparse delta (scaled by Alpha) with a mild anchor
// pull toward the model version the client trained from (scaled by
// Anchor); both coefficients decay polynomially with staleness. The anchor
// term damps the drift that pure delta application accumulates when many
// clients race, without the full model-mixing of FedAsync that washes out
// minority (non-IID) contributions.
type AsyncApply struct {
	Alpha  float64
	Anchor float64
	Decay  float64
}

// Name implements fl.AsyncStrategy.
func (AsyncApply) Name() string { return "adafl-async" }

// OnReceive implements fl.AsyncStrategy.
func (a AsyncApply) OnReceive(global, downloaded []float64, u fl.Update) bool {
	d := 1.0
	if a.Decay > 0 {
		d = math.Pow(1+float64(u.Staleness), -a.Decay)
	}
	step := a.Alpha * d
	u.Delta.AddTo(global, step)
	if a.Anchor > 0 && downloaded != nil {
		anchor := a.Anchor * d
		for i := range global {
			global[i] += anchor * (downloaded[i] - global[i])
		}
	}
	return true
}

// RatioTracker records the spread of compression ratios AdaFL assigned,
// feeding the "Gradient Size" and "Compress. Ratio" table columns.
type RatioTracker struct {
	Count    int
	MinRatio float64
	MaxRatio float64
	sum      float64
}

// Observe records one assigned ratio.
func (t *RatioTracker) Observe(r float64) {
	if t.Count == 0 || r < t.MinRatio {
		t.MinRatio = r
	}
	if t.Count == 0 || r > t.MaxRatio {
		t.MaxRatio = r
	}
	t.sum += r
	t.Count++
}

// Mean returns the average assigned ratio.
func (t *RatioTracker) Mean() float64 {
	if t.Count == 0 {
		return 0
	}
	return t.sum / float64(t.Count)
}
