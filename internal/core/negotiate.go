package core

import (
	"fmt"
	"math"
	"sort"

	"adafl/internal/compress"
)

// Codec names the negotiator can assign. They travel in the Select
// broadcast, so both ends of a session must agree on the vocabulary.
const (
	CodecDGC       = "dgc"
	CodecDAdaQuant = "dadaquant"
)

// CodecAssignment is the negotiated uplink order for one client in one
// round: which codec to encode with, at what byte-level ratio, and — for
// the quantizing codec — how many levels.
type CodecAssignment struct {
	Codec  string
	Ratio  float64
	Levels int
}

// NegotiationConfig configures per-round codec negotiation (arXiv
// 2405.03248-style server-assigned compression under dynamic bandwidth,
// with DAdaQuant's doubly-adaptive level schedule).
type NegotiationConfig struct {
	// Enabled turns negotiation on; the zero value leaves the session on
	// its static per-client codecs.
	Enabled bool
	// MinLevels and MaxLevels bound the DAdaQuant level count.
	MinLevels, MaxLevels int
	// LevelDoubleEvery is the global schedule period: the scheduled level
	// count doubles once per this many rounds (coarse early, fine late).
	LevelDoubleEvery int
	// SwitchRatio is the effective ratio at which the negotiator switches
	// a client from DGC sparsification to DAdaQuant quantization.
	SwitchRatio float64
	// BytesSmoothing is the EWMA coefficient α ∈ (0, 1] for the observed
	// per-round uplink bytes that feed the byte-pressure term.
	BytesSmoothing float64
	// CostGain scales the utility-score feedback: a client whose last
	// assignment compressed at the deep end of the range gets its score
	// multiplied by up to 1+CostGain, so cheap-to-upload clients rank
	// accordingly. 0 disables the feedback.
	CostGain float64
}

// DefaultNegotiation returns the negotiation defaults: 15–63 levels
// doubling every 8 rounds, quantization past 12x, and a 25% score boost
// at the deep end. The 15-level floor keeps negotiated quantization at
// QSGD fidelity even when a bandwidth collapse scales the era's grid
// down — ternary-coarse grids cost far more accuracy than the bytes they
// save (compare the terngrad row in BENCH_9.json).
func DefaultNegotiation() NegotiationConfig {
	return NegotiationConfig{
		MinLevels:        15,
		MaxLevels:        63,
		LevelDoubleEvery: 8,
		SwitchRatio:      12,
		BytesSmoothing:   0.5,
		CostGain:         0.25,
	}
}

// Validate rejects configurations the negotiator cannot run: NaN or
// non-positive level counts and ratios must be caught at config parse,
// before they reach the deterministic assignment arithmetic.
func (c NegotiationConfig) Validate() error {
	if c.MinLevels < 1 {
		return fmt.Errorf("core: negotiation MinLevels %d must be >= 1", c.MinLevels)
	}
	if c.MaxLevels < c.MinLevels {
		return fmt.Errorf("core: negotiation MaxLevels %d below MinLevels %d", c.MaxLevels, c.MinLevels)
	}
	if c.MaxLevels > 1<<20 {
		return fmt.Errorf("core: negotiation MaxLevels %d exceeds the wire codec's 2^20 cap", c.MaxLevels)
	}
	if c.LevelDoubleEvery < 1 {
		return fmt.Errorf("core: negotiation LevelDoubleEvery %d must be >= 1", c.LevelDoubleEvery)
	}
	if math.IsNaN(c.SwitchRatio) || c.SwitchRatio < 1 {
		return fmt.Errorf("core: negotiation SwitchRatio %v must be >= 1", c.SwitchRatio)
	}
	if math.IsNaN(c.BytesSmoothing) || c.BytesSmoothing <= 0 || c.BytesSmoothing > 1 {
		return fmt.Errorf("core: negotiation BytesSmoothing %v outside (0, 1]", c.BytesSmoothing)
	}
	if math.IsNaN(c.CostGain) || c.CostGain < 0 {
		return fmt.Errorf("core: negotiation CostGain %v must be >= 0", c.CostGain)
	}
	return nil
}

// LinkState is the negotiator's per-client observation history. All of it
// is derived from deterministic inputs (wire bytes of deterministic
// encodes, assignment arithmetic), so it replays byte-identically and can
// join the session checkpoint.
type LinkState struct {
	// EWMABytes smooths the client's observed uplink bytes per accepted
	// round.
	EWMABytes float64
	// LastRatio and LastCodec record the most recent assignment, feeding
	// the utility-score cost multiplier.
	LastRatio float64
	LastCodec string
	// Assigned counts rounds with an assignment.
	Assigned int
}

// NegotiationState is the checkpointable snapshot of a negotiator: its
// config (resume refuses a mismatch — assignments would silently diverge
// from the uninterrupted run otherwise) and the per-client link states.
type NegotiationState struct {
	Config NegotiationConfig
	Links  map[int]LinkState
}

// Negotiator assigns every selected client a codec+ratio each round from
// its observed link state. Assignments are a pure function of (config,
// controller, round, plan, bandwidth multipliers, recorded byte history):
// no wall clock, no RNG — the scenario golden-replay and checkpoint-resume
// tests pin this.
//
// Wall-clock latency history is deliberately *excluded* from decisions
// (it is not replayable); it belongs in the observability histograms only.
type Negotiator struct {
	cfg   NegotiationConfig
	ctrl  CompressionController
	links map[int]*LinkState
}

// NewNegotiator validates cfg and returns a negotiator driving ratios
// from the given compression controller's bounds.
func NewNegotiator(cfg NegotiationConfig, ctrl CompressionController) (*Negotiator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctrl.Validate()
	return &Negotiator{cfg: cfg, ctrl: ctrl, links: make(map[int]*LinkState)}, nil
}

// Config returns the validated configuration.
func (n *Negotiator) Config() NegotiationConfig { return n.cfg }

// maxRatio is the deepest ratio the negotiator may assign: the controller
// ceiling with 2x headroom for bandwidth collapse. Deeper headroom saves
// almost no transfer time beyond this (the message is already small next
// to the model broadcast) but the lost gradient mass measurably delays
// convergence — BENCH_9.json's matrix sits at this operating point.
func (n *Negotiator) maxRatio() float64 { return 2 * n.ctrl.MaxRatio }

func (n *Negotiator) link(id int) *LinkState {
	ls := n.links[id]
	if ls == nil {
		ls = &LinkState{}
		n.links[id] = ls
	}
	return ls
}

// RecordUpload folds one accepted upload's wire bytes into the client's
// EWMA. Per-client state makes the fold order-independent across clients,
// so the rpc server may call it in receipt order without breaking replay.
func (n *Negotiator) RecordUpload(id, bytes int) {
	ls := n.link(id)
	if ls.EWMABytes == 0 {
		ls.EWMABytes = float64(bytes)
		return
	}
	a := n.cfg.BytesSmoothing
	ls.EWMABytes = (1-a)*ls.EWMABytes + a*float64(bytes)
}

// ScoreMult returns the utility-score multiplier fed back from the
// client's last assignment: 1 at MinRatio rising to 1+CostGain at the
// negotiator's ratio ceiling, so clients that upload cheaply rank higher.
func (n *Negotiator) ScoreMult(id int) float64 {
	ls := n.links[id]
	if ls == nil || n.cfg.CostGain == 0 || ls.LastRatio <= n.ctrl.MinRatio {
		return 1
	}
	t := math.Log(ls.LastRatio/n.ctrl.MinRatio) / math.Log(n.maxRatio()/n.ctrl.MinRatio)
	if t > 1 {
		t = 1
	}
	return 1 + n.cfg.CostGain*t
}

// assignOne maps one client's effective ratio to a codec assignment and
// records it in the link state.
func (n *Negotiator) assignOne(round, id int, eff, mult float64) CodecAssignment {
	eff = compress.ClampRatio(eff, 1, n.maxRatio())
	a := CodecAssignment{Codec: CodecDGC, Ratio: eff}
	if eff >= n.cfg.SwitchRatio {
		a.Codec = CodecDAdaQuant
		// Doubly adaptive: the global schedule sets the era's resolution,
		// the client's bandwidth multiplier scales it — a throttled link
		// gets a coarser grid this round.
		base := compress.ScheduledLevels(round, n.cfg.MinLevels, n.cfg.MaxLevels, n.cfg.LevelDoubleEvery)
		lv := int(float64(base)*mult + 0.5)
		if lv < n.cfg.MinLevels {
			lv = n.cfg.MinLevels
		}
		if lv > n.cfg.MaxLevels {
			lv = n.cfg.MaxLevels
		}
		a.Levels = lv
	}
	ls := n.link(id)
	ls.LastRatio = a.Ratio
	ls.LastCodec = a.Codec
	ls.Assigned++
	return a
}

// Assign produces the round's assignments for a utility-ranked plan
// (client → planned ratio; entries at ratio 0 are withheld and skipped).
// bw returns the client's bandwidth multiplier for this round (the
// scenario's class×trace product; nil or non-positive values mean 1).
// Clients are processed in ascending id order so link-state mutation
// order — and therefore the whole session — replays deterministically.
func (n *Negotiator) Assign(round int, plan map[int]float64, bw func(int) float64) map[int]CodecAssignment {
	ids := make([]int, 0, len(plan))
	for id, ratio := range plan {
		if ratio > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)

	// Fleet-mean EWMA for the byte-pressure term.
	mean, cnt := 0.0, 0
	for _, id := range ids {
		if ls := n.links[id]; ls != nil && ls.EWMABytes > 0 {
			mean += ls.EWMABytes
			cnt++
		}
	}
	if cnt > 0 {
		mean /= float64(cnt)
	}

	out := make(map[int]CodecAssignment, len(ids))
	for _, id := range ids {
		mult := 1.0
		if bw != nil {
			if m := bw(id); m > 0 && !math.IsNaN(m) && !math.IsInf(m, 0) {
				mult = m
			}
		}
		// A throttled link (mult < 1) deepens compression with the square
		// root of the collapse, a fat one relaxes it the same way: the
		// linear response over-compresses on deep collapses — once the
		// message is small next to the model broadcast, extra depth stops
		// buying transfer time but keeps costing gradient mass.
		eff := plan[id] / math.Sqrt(mult)
		// Byte pressure: clients observed uploading more than the fleet
		// mean get pushed a little deeper, heavy-tailed senders first.
		if ls := n.links[id]; ls != nil && mean > 0 && ls.EWMABytes > 0 {
			p := math.Sqrt(ls.EWMABytes / mean)
			if p < 0.75 {
				p = 0.75
			}
			if p > 1.5 {
				p = 1.5
			}
			eff *= p
		}
		out[id] = n.assignOne(round, id, eff, mult)
	}
	return out
}

// AssignByLoad is the edge-tier entry point: with no utility ranking or
// scenario fleet at hand, the roster is ranked by observed uplink volume
// (lightest first) and controller ratios are assigned by rank, so the
// heaviest senders compress deepest. Ties (including the all-zero first
// round) break by ascending id, keeping the edge deterministic too.
func (n *Negotiator) AssignByLoad(round int, ids []int) map[int]CodecAssignment {
	ranked := append([]int(nil), ids...)
	sort.Slice(ranked, func(i, j int) bool {
		bi, bj := 0.0, 0.0
		if ls := n.links[ranked[i]]; ls != nil {
			bi = ls.EWMABytes
		}
		if ls := n.links[ranked[j]]; ls != nil {
			bj = ls.EWMABytes
		}
		if bi != bj {
			return bi < bj
		}
		return ranked[i] < ranked[j]
	})
	out := make(map[int]CodecAssignment, len(ranked))
	for rank, id := range ranked {
		ratio := n.ctrl.RatioForRank(rank, len(ranked), round)
		out[id] = n.assignOne(round, id, ratio, 1)
	}
	return out
}

// Snapshot returns a checkpointable copy of the negotiator's state.
func (n *Negotiator) Snapshot() *NegotiationState {
	st := &NegotiationState{Config: n.cfg, Links: make(map[int]LinkState, len(n.links))}
	for id, ls := range n.links {
		st.Links[id] = *ls
	}
	return st
}

// Restore loads a checkpointed state. It refuses a config mismatch: the
// assignment stream is a pure function of (config, history), so resuming
// under different knobs would silently diverge from the uninterrupted
// run the golden tests compare against.
func (n *Negotiator) Restore(st *NegotiationState) error {
	if st == nil {
		return fmt.Errorf("core: nil negotiation state")
	}
	if st.Config != n.cfg {
		return fmt.Errorf("core: negotiation config mismatch: checkpoint %+v, configured %+v", st.Config, n.cfg)
	}
	n.links = make(map[int]*LinkState, len(st.Links))
	for id, ls := range st.Links {
		cp := ls
		n.links[id] = &cp
	}
	return nil
}
