// Package core implements AdaFL, the paper's contribution: a utility- and
// connectivity-guided federated learning framework. It consists of
//
//   - the utility score S_i = f(B_i^down, B_i^up, U(g_i, ĝ)) combining link
//     bandwidth with gradient similarity (equation 6),
//   - adaptive node selection (Algorithm 1): threshold-filter by τ, rank by
//     score, keep the top K,
//   - adaptive gradient compression: per-client DGC compression ratios
//     driven by the utility ranking, from MinRatio (high-utility clients)
//     to MaxRatio (low-utility clients), with a warm-up phase of full
//     participation and low compression,
//   - engine adapters: a fl.RoundPlanner for synchronous AdaFL (top-k
//     participation) and a fl.AsyncGate + fl.AsyncStrategy pair for the
//     fully-asynchronous variant.
package core

import (
	"fmt"
	"math"

	"adafl/internal/tensor"
)

// SimilarityMetric selects how U(g_i, ĝ) is computed. The paper uses
// cosine similarity and notes L2/Euclidean alternatives.
type SimilarityMetric int

// Supported similarity metrics.
const (
	// Cosine maps the angle between gradients to [0, 1].
	Cosine SimilarityMetric = iota
	// NegL2 maps the Euclidean distance between direction-normalised
	// gradients to (0, 1] via 1/(1+d).
	NegL2
)

func (m SimilarityMetric) String() string {
	if m == Cosine {
		return "cosine"
	}
	return "negl2"
}

// UtilityConfig parameterises the utility score f.
type UtilityConfig struct {
	// SimWeight and BwWeight blend the similarity and bandwidth terms;
	// they are normalised internally so only their ratio matters.
	SimWeight, BwWeight float64
	// Metric selects the gradient similarity U.
	Metric SimilarityMetric
	// BwRef is the bandwidth (bytes/s) that saturates the bandwidth term;
	// links at or above BwRef score 1.
	BwRef float64
}

// DefaultUtility returns the configuration used throughout the paper's
// experiments: similarity-dominated scoring with a mild bandwidth term
// saturating at a WiFi-class uplink.
func DefaultUtility() UtilityConfig {
	return UtilityConfig{SimWeight: 0.8, BwWeight: 0.2, Metric: Cosine, BwRef: 2.5e6}
}

// Similarity computes U(g_i, ĝ) ∈ [0, 1].
func (u UtilityConfig) Similarity(local, globalDelta []float64) float64 {
	switch u.Metric {
	case Cosine:
		// Cosine is directionally sensitive: aligned → 1, opposed → 0.
		return (tensor.CosineSimilarity(local, globalDelta) + 1) / 2
	case NegL2:
		ln, gn := tensor.Norm2(local), tensor.Norm2(globalDelta)
		if ln == 0 || gn == 0 {
			return 0.5
		}
		a := tensor.CopyVec(local)
		tensor.ScaleVec(a, 1/ln)
		b := tensor.CopyVec(globalDelta)
		tensor.ScaleVec(b, 1/gn)
		return 1 / (1 + tensor.EuclideanDistance(a, b))
	default:
		panic(fmt.Sprintf("core: unknown similarity metric %d", u.Metric))
	}
}

// Score computes the utility score S_i for a client with the given link
// bandwidths and cached local gradient, against the previous global
// gradient ĝ. The result lies in [0, 1].
func (u UtilityConfig) Score(upBps, downBps float64, local, globalDelta []float64) float64 {
	ws := u.SimWeight + u.BwWeight
	if ws <= 0 {
		panic("core: utility weights sum to zero")
	}
	sim := u.Similarity(local, globalDelta)
	bw := u.bandwidthTerm(upBps, downBps)
	return (u.SimWeight*sim + u.BwWeight*bw) / ws
}

// bandwidthTerm maps the client's constraining (minimum) link bandwidth to
// [0, 1] with saturation at BwRef. A log scale keeps order-of-magnitude
// differences visible without letting gigabit links dominate.
func (u UtilityConfig) bandwidthTerm(upBps, downBps float64) float64 {
	if u.BwRef <= 0 {
		return 1
	}
	bw := math.Min(upBps, downBps)
	if bw <= 0 {
		return 0
	}
	v := math.Log1p(bw) / math.Log1p(u.BwRef)
	if v > 1 {
		v = 1
	}
	return v
}

// ScoredClient pairs a client index with its utility score.
type ScoredClient struct {
	Client int
	Score  float64
}

// SelectClients implements Algorithm 1: filter clients whose score meets
// the threshold τ, sort descending by score, and return the top
// min(K, |filtered|) as ScoredClient values (highest first). Ties keep
// ascending client order for determinism.
func SelectClients(scores []float64, k int, tau float64) []ScoredClient {
	if k < 1 {
		panic("core: K must be at least 1")
	}
	filtered := make([]ScoredClient, 0, len(scores))
	for i, s := range scores {
		if s >= tau {
			filtered = append(filtered, ScoredClient{Client: i, Score: s})
		}
	}
	// Insertion sort by descending score (stable, deterministic; n ≤ 100s).
	for i := 1; i < len(filtered); i++ {
		for j := i; j > 0 && filtered[j].Score > filtered[j-1].Score; j-- {
			filtered[j], filtered[j-1] = filtered[j-1], filtered[j]
		}
	}
	if k > len(filtered) {
		k = len(filtered)
	}
	return filtered[:k]
}
