package core

import (
	"testing"

	"adafl/internal/fl"
)

func TestSyncPlannerRotatesAllClients(t *testing.T) {
	// With the fairness reservation, no client may be starved even under
	// hard non-IID selection pressure.
	fed := newFed(10, false, 30)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 31)
	e.EvalEvery = 0
	e.RunRounds(30)
	for i, n := range e.ClientUpdates {
		// Warm-up alone gives everyone cfg.Compression.WarmupRounds; the
		// reservation must add more on top for everyone.
		if n <= cfg.Compression.WarmupRounds {
			t.Errorf("client %d starved: %d updates in 30 rounds", i, n)
		}
	}
}

func TestSyncPlannerNoExplorationCanStarve(t *testing.T) {
	// The converse: with ExploreFrac=0 the selection is free to starve
	// clients — documenting why the reservation exists. We only assert the
	// mechanism differs (minimum participation drops), not a specific
	// starvation pattern.
	run := func(explore float64) int {
		fed := newFed(10, false, 32)
		cfg := fastConfig()
		cfg.ExploreFrac = explore
		cfg.AttachDGC(fed)
		e := fl.NewSyncEngine(fed, fl.FedAvg{}, NewSyncPlanner(cfg), 33)
		e.EvalEvery = 0
		e.RunRounds(30)
		min := e.ClientUpdates[0]
		for _, n := range e.ClientUpdates {
			if n < min {
				min = n
			}
		}
		return min
	}
	withRes := run(0.4)
	without := run(0)
	if withRes < without {
		t.Fatalf("reservation lowered minimum participation: %d vs %d", withRes, without)
	}
}

// TestSyncPlannerEmptySelectionFallsBack pins the τ-starvation fallback:
// with ExploreFrac 0 and a threshold no score can reach, Algorithm 1
// selects nobody. The planner must fall back to warm-up-style full
// participation (everyone at the warm-up ratio) instead of returning an
// empty plan that wastes the round.
func TestSyncPlannerEmptySelectionFallsBack(t *testing.T) {
	n := 6
	fed := newFed(n, true, 40)
	cfg := fastConfig()
	cfg.Tau = 2 // unreachable: every post-warm-up score is below τ
	cfg.ExploreFrac = 0
	cfg.Compression.WarmupRounds = 2
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 41)
	e.EvalEvery = 0
	e.RunRounds(5)
	for _, row := range e.Hist.Rows[cfg.Compression.WarmupRounds:] {
		if row.Participants != n {
			t.Fatalf("round %d: %d participants, want fallback full participation (%d)",
				row.Round, row.Participants, n)
		}
	}
}

func TestAsyncGateWarmupAdmitsEverything(t *testing.T) {
	fed := newFed(4, true, 34)
	cfg := fastConfig()
	cfg.Tau = 0.99 // would reject everything post-warm-up
	cfg.Compression.WarmupRounds = 1000000
	cfg.AttachDGC(fed)
	gate := NewAsyncGate(cfg)
	e := fl.NewAsyncEngine(fed, AsyncApply{Alpha: 0.5}, gate)
	e.Run(10)
	if gate.SkipRate() != 0 {
		t.Fatalf("warm-up gate skipped %.0f%%", 100*gate.SkipRate())
	}
	if e.TotalUpdates() == 0 {
		t.Fatal("no updates during warm-up")
	}
}

func TestSyncPlannerRecordsSelectionRecency(t *testing.T) {
	fed := newFed(6, true, 35)
	cfg := fastConfig()
	cfg.AttachDGC(fed)
	planner := NewSyncPlanner(cfg)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, 36)
	e.EvalEvery = 0
	e.RunRounds(cfg.Compression.WarmupRounds + 4)
	// lastSel must be populated for every client after warm-up.
	for i, ls := range planner.lastSel {
		if ls < 0 {
			t.Fatalf("client %d never recorded as selected", i)
		}
	}
}
