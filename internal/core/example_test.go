package core_test

import (
	"fmt"

	"adafl/internal/core"
)

// ExampleSelectClients demonstrates Algorithm 1: threshold-filter by τ,
// rank by utility score, keep the top K.
func ExampleSelectClients() {
	scores := []float64{0.91, 0.22, 0.74, 0.55, 0.43}
	for _, sc := range core.SelectClients(scores, 2, 0.5) {
		fmt.Printf("client %d (score %.2f)\n", sc.Client, sc.Score)
	}
	// Output:
	// client 0 (score 0.91)
	// client 2 (score 0.74)
}

// ExampleUtilityConfig_Score shows the utility score combining gradient
// similarity with link bandwidth (equation 6).
func ExampleUtilityConfig_Score() {
	u := core.DefaultUtility()
	globalDelta := []float64{1, 0, 0}

	aligned := []float64{2, 0, 0}  // same direction as ĝ
	opposed := []float64{-1, 0, 0} // opposite direction
	fastLink := 2.5e6              // saturates the bandwidth term
	slowLink := 1e4

	fmt.Printf("aligned/fast : %.2f\n", u.Score(fastLink, fastLink, aligned, globalDelta))
	fmt.Printf("aligned/slow : %.2f\n", u.Score(slowLink, slowLink, aligned, globalDelta))
	fmt.Printf("opposed/fast : %.2f\n", u.Score(fastLink, fastLink, opposed, globalDelta))
	// Output:
	// aligned/fast : 1.00
	// aligned/slow : 0.93
	// opposed/fast : 0.20
}

// ExampleCompressionController shows the rank-based adaptive ratio ladder:
// the highest-utility client compresses least.
func ExampleCompressionController() {
	c := core.DefaultController() // 4x .. 210x, 5 warm-up rounds
	round := 20                   // past warm-up
	for rank := 0; rank < 3; rank++ {
		fmt.Printf("rank %d -> %.0fx\n", rank, c.RatioForRank(rank, 3, round))
	}
	// Output:
	// rank 0 -> 4x
	// rank 1 -> 29x
	// rank 2 -> 210x
}
