package core

import (
	"math"
	"reflect"
	"testing"
)

func TestNegotiationConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*NegotiationConfig)
		ok   bool
	}{
		{"defaults", func(*NegotiationConfig) {}, true},
		{"min levels zero", func(c *NegotiationConfig) { c.MinLevels = 0 }, false},
		{"max below min", func(c *NegotiationConfig) { c.MaxLevels = 2 }, false},
		{"max over wire cap", func(c *NegotiationConfig) { c.MaxLevels = 1<<20 + 1 }, false},
		{"double every zero", func(c *NegotiationConfig) { c.LevelDoubleEvery = 0 }, false},
		{"switch ratio NaN", func(c *NegotiationConfig) { c.SwitchRatio = math.NaN() }, false},
		{"switch ratio sub-1", func(c *NegotiationConfig) { c.SwitchRatio = 0.5 }, false},
		{"smoothing zero", func(c *NegotiationConfig) { c.BytesSmoothing = 0 }, false},
		{"smoothing over 1", func(c *NegotiationConfig) { c.BytesSmoothing = 1.5 }, false},
		{"smoothing NaN", func(c *NegotiationConfig) { c.BytesSmoothing = math.NaN() }, false},
		{"cost gain negative", func(c *NegotiationConfig) { c.CostGain = -1 }, false},
		{"cost gain NaN", func(c *NegotiationConfig) { c.CostGain = math.NaN() }, false},
	}
	for _, c := range cases {
		cfg := DefaultNegotiation()
		c.mut(&cfg)
		err := cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: valid config rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
		if _, nerr := NewNegotiator(cfg, DefaultController()); (nerr == nil) != c.ok {
			t.Errorf("%s: NewNegotiator disagreed with Validate", c.name)
		}
	}
}

func TestNegotiatorAssignSwitchesCodecAtThreshold(t *testing.T) {
	n, err := NewNegotiator(DefaultNegotiation(), DefaultController())
	if err != nil {
		t.Fatal(err)
	}
	plan := map[int]float64{0: 4, 1: 50, 2: 0}
	out := n.Assign(0, plan, nil)
	if _, ok := out[2]; ok {
		t.Fatal("withheld client (ratio 0) assigned")
	}
	if a := out[0]; a.Codec != CodecDGC || a.Ratio != 4 || a.Levels != 0 {
		t.Fatalf("shallow client got %+v, want dgc at 4x", a)
	}
	if a := out[1]; a.Codec != CodecDAdaQuant || a.Levels < 3 {
		t.Fatalf("deep client got %+v, want dadaquant", a)
	}
}

func TestNegotiatorBandwidthDeepensCompression(t *testing.T) {
	n, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	plan := map[int]float64{0: 8, 1: 8}
	bw := func(id int) float64 {
		if id == 0 {
			return 0.25 // throttled link
		}
		return 1
	}
	out := n.Assign(0, plan, bw)
	if out[0].Ratio <= out[1].Ratio {
		t.Fatalf("throttled client not compressed deeper: %v vs %v", out[0].Ratio, out[1].Ratio)
	}
	if out[0].Codec != CodecDAdaQuant {
		t.Fatalf("8x at quarter bandwidth = 32x effective, expected codec switch; got %+v", out[0])
	}
	// A fat link (mult > 1) gets a finer level grid than a throttled one.
	deep := map[int]float64{0: 50, 1: 50}
	out2 := n.Assign(20, deep, func(id int) float64 {
		if id == 0 {
			return 0.5
		}
		return 2
	})
	if out2[0].Levels >= out2[1].Levels {
		t.Fatalf("throttled client levels %d not coarser than fat link's %d", out2[0].Levels, out2[1].Levels)
	}
}

func TestNegotiatorRatioClampedToCeiling(t *testing.T) {
	ctrl := DefaultController()
	n, _ := NewNegotiator(DefaultNegotiation(), ctrl)
	out := n.Assign(0, map[int]float64{0: 1e9}, func(int) float64 { return 1e-9 })
	if out[0].Ratio > 4*ctrl.MaxRatio {
		t.Fatalf("assigned ratio %v exceeds 4x controller ceiling %v", out[0].Ratio, 4*ctrl.MaxRatio)
	}
	// NaN and non-positive bandwidth multipliers degrade to 1, never NaN.
	for _, m := range []float64{math.NaN(), 0, -2, math.Inf(1)} {
		out := n.Assign(0, map[int]float64{0: 8}, func(int) float64 { return m })
		if math.IsNaN(out[0].Ratio) || out[0].Ratio < 1 {
			t.Fatalf("bw mult %v produced ratio %v", m, out[0].Ratio)
		}
	}
}

func TestNegotiatorBytePressure(t *testing.T) {
	n, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	// Client 1 has uploaded 9x the bytes of client 0.
	n.RecordUpload(0, 1000)
	n.RecordUpload(1, 9000)
	out := n.Assign(0, map[int]float64{0: 8, 1: 8}, nil)
	if out[1].Ratio <= out[0].Ratio {
		t.Fatalf("heavy sender not pushed deeper: %v vs %v", out[1].Ratio, out[0].Ratio)
	}
}

func TestNegotiatorScoreMult(t *testing.T) {
	n, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	if m := n.ScoreMult(7); m != 1 {
		t.Fatalf("unseen client multiplier %v, want 1", m)
	}
	n.Assign(0, map[int]float64{0: 4, 1: 800}, nil)
	m0, m1 := n.ScoreMult(0), n.ScoreMult(1)
	if m0 != 1 {
		t.Fatalf("min-ratio client multiplier %v, want 1", m0)
	}
	if m1 <= 1 || m1 > 1.25+1e-12 {
		t.Fatalf("deep-ratio client multiplier %v, want (1, 1.25]", m1)
	}
}

// TestNegotiatorDeterministicReplay pins the core determinism contract:
// the same config, plan stream, bandwidth function and byte history yield
// identical assignments, regardless of the order uploads were recorded in.
func TestNegotiatorDeterministicReplay(t *testing.T) {
	run := func(recordOrder []int) []map[int]CodecAssignment {
		n, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
		var got []map[int]CodecAssignment
		for round := 0; round < 12; round++ {
			plan := map[int]float64{}
			for id := 0; id < 6; id++ {
				if (round+id)%3 != 0 {
					plan[id] = 4 + float64((id*7+round)%40)
				}
			}
			bw := func(id int) float64 { return 0.5 + float64((id+round)%4)*0.5 }
			got = append(got, n.Assign(round, plan, bw))
			// Record uploads in the caller's order — receipt order varies
			// between live runs, the assignments must not.
			for _, id := range recordOrder {
				if _, ok := plan[id]; ok {
					n.RecordUpload(id, 500+id*137+round*31)
				}
			}
		}
		return got
	}
	a := run([]int{0, 1, 2, 3, 4, 5})
	b := run([]int{5, 3, 1, 4, 2, 0})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("assignments depend on upload receipt order")
	}
}

func TestNegotiatorAssignByLoadRanksHeaviestDeepest(t *testing.T) {
	n, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	ids := []int{0, 1, 2}
	n.RecordUpload(0, 100)
	n.RecordUpload(1, 10000)
	n.RecordUpload(2, 1000)
	out := n.AssignByLoad(10, ids)
	if !(out[0].Ratio < out[2].Ratio && out[2].Ratio < out[1].Ratio) {
		t.Fatalf("load ranking broken: %v / %v / %v", out[0].Ratio, out[2].Ratio, out[1].Ratio)
	}
	// First round (all-zero history) ties break by ascending id.
	n2, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	out2 := n2.AssignByLoad(10, []int{2, 0, 1})
	if !(out2[0].Ratio <= out2[1].Ratio && out2[1].Ratio <= out2[2].Ratio) {
		t.Fatalf("tie-break not by id: %v / %v / %v", out2[0].Ratio, out2[1].Ratio, out2[2].Ratio)
	}
}

func TestNegotiatorSnapshotRestoreRoundTrip(t *testing.T) {
	n, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	for round := 0; round < 5; round++ {
		n.Assign(round, map[int]float64{0: 20, 1: 6}, nil)
		n.RecordUpload(0, 800+round*100)
		n.RecordUpload(1, 4000)
	}
	snap := n.Snapshot()

	m, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Mutating the restored negotiator must not write through to the snapshot.
	m.RecordUpload(0, 1)
	if snap.Links[0].EWMABytes == m.links[0].EWMABytes {
		t.Fatal("restore aliases the snapshot's link state")
	}
	// Both continue identically from the same state.
	n2, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	if err := n2.Restore(n.Snapshot()); err != nil {
		t.Fatal(err)
	}
	a := n.Assign(5, map[int]float64{0: 20, 1: 6}, nil)
	b := n2.Assign(5, map[int]float64{0: 20, 1: 6}, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("restored negotiator diverges from the live one")
	}
}

func TestNegotiatorRestoreRefusesMismatch(t *testing.T) {
	n, _ := NewNegotiator(DefaultNegotiation(), DefaultController())
	if err := n.Restore(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	other := DefaultNegotiation()
	other.SwitchRatio = 99
	m, _ := NewNegotiator(other, DefaultController())
	if err := m.Restore(n.Snapshot()); err == nil {
		t.Fatal("config-mismatched checkpoint accepted; assignments would silently diverge")
	}
}
