package core

import (
	"math"
	"testing"
	"testing/quick"

	"adafl/internal/stats"
)

func TestSimilarityCosineRange(t *testing.T) {
	u := DefaultUtility()
	a := []float64{1, 0}
	if s := u.Similarity(a, a); math.Abs(s-1) > 1e-12 {
		t.Fatalf("aligned similarity %v, want 1", s)
	}
	if s := u.Similarity(a, []float64{-1, 0}); math.Abs(s) > 1e-12 {
		t.Fatalf("opposed similarity %v, want 0", s)
	}
	if s := u.Similarity(a, []float64{0, 1}); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("orthogonal similarity %v, want 0.5", s)
	}
}

func TestSimilarityNegL2(t *testing.T) {
	u := UtilityConfig{SimWeight: 1, Metric: NegL2}
	a := []float64{3, 0} // direction (1,0)
	if s := u.Similarity(a, []float64{7, 0}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("same-direction NegL2 %v, want 1 (scale invariant)", s)
	}
	opp := u.Similarity(a, []float64{-1, 0})
	if opp >= 0.5 {
		t.Fatalf("opposed NegL2 %v should be < 0.5", opp)
	}
	if s := u.Similarity(a, []float64{0, 0}); s != 0.5 {
		t.Fatalf("zero-vector NegL2 %v, want neutral 0.5", s)
	}
}

func TestScoreMonotoneInBandwidth(t *testing.T) {
	u := DefaultUtility()
	g := []float64{1, 1}
	low := u.Score(1e4, 1e4, g, g)
	high := u.Score(1e7, 1e7, g, g)
	if high <= low {
		t.Fatalf("score not increasing in bandwidth: %v vs %v", low, high)
	}
}

func TestScoreMonotoneInSimilarity(t *testing.T) {
	u := DefaultUtility()
	ref := []float64{1, 0}
	aligned := u.Score(1e6, 1e6, []float64{1, 0}, ref)
	orthogonal := u.Score(1e6, 1e6, []float64{0, 1}, ref)
	opposed := u.Score(1e6, 1e6, []float64{-1, 0}, ref)
	if !(aligned > orthogonal && orthogonal > opposed) {
		t.Fatalf("score ordering broken: %v, %v, %v", aligned, orthogonal, opposed)
	}
}

func TestScoreInUnitIntervalProperty(t *testing.T) {
	u := DefaultUtility()
	f := func(seed uint64, bwRaw uint32) bool {
		r := stats.NewRNG(seed)
		g := make([]float64, 8)
		h := make([]float64, 8)
		for i := range g {
			g[i] = r.Norm()
			h[i] = r.Norm()
		}
		bw := float64(bwRaw)
		s := u.Score(bw, bw, g, h)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthTermSaturates(t *testing.T) {
	u := DefaultUtility()
	at := u.bandwidthTerm(u.BwRef, u.BwRef)
	above := u.bandwidthTerm(u.BwRef*100, u.BwRef*100)
	if math.Abs(at-1) > 1e-9 || above != 1 {
		t.Fatalf("saturation broken: at=%v above=%v", at, above)
	}
	if u.bandwidthTerm(0, 1e6) != 0 {
		t.Fatal("zero uplink should zero the term")
	}
}

func TestBandwidthTermUsesConstrainingLink(t *testing.T) {
	u := DefaultUtility()
	// (slow up, fast down) must equal (fast up, slow down).
	a := u.bandwidthTerm(1e4, 1e7)
	b := u.bandwidthTerm(1e7, 1e4)
	if a != b {
		t.Fatalf("asymmetric bandwidth term: %v vs %v", a, b)
	}
}

func TestSelectClientsAlgorithm1(t *testing.T) {
	scores := []float64{0.9, 0.2, 0.7, 0.55, 0.4}
	sel := SelectClients(scores, 2, 0.5)
	if len(sel) != 2 {
		t.Fatalf("selected %d, want 2", len(sel))
	}
	if sel[0].Client != 0 || sel[1].Client != 2 {
		t.Fatalf("wrong selection: %+v", sel)
	}
	// Invariants from Algorithm 1's "Subject to" block.
	for _, s := range sel {
		if s.Score < 0.5 {
			t.Fatal("selected below threshold")
		}
	}
	for _, s := range sel {
		for i, sc := range scores {
			if i != 0 && i != 2 && sc > s.Score {
				t.Fatal("unselected client outranks selected")
			}
		}
	}
}

func TestSelectClientsFewerThanK(t *testing.T) {
	sel := SelectClients([]float64{0.1, 0.9, 0.2}, 5, 0.5)
	if len(sel) != 1 || sel[0].Client != 1 {
		t.Fatalf("K'=min(K,|filtered|) broken: %+v", sel)
	}
}

func TestSelectClientsEmptyWhenAllBelowTau(t *testing.T) {
	if sel := SelectClients([]float64{0.1, 0.2}, 3, 0.9); len(sel) != 0 {
		t.Fatalf("selected %d from below-threshold pool", len(sel))
	}
}

func TestSelectClientsDeterministicTies(t *testing.T) {
	a := SelectClients([]float64{0.5, 0.5, 0.5}, 2, 0)
	b := SelectClients([]float64{0.5, 0.5, 0.5}, 2, 0)
	if a[0].Client != b[0].Client || a[1].Client != b[1].Client {
		t.Fatal("tie-breaking nondeterministic")
	}
	if a[0].Client != 0 || a[1].Client != 1 {
		t.Fatalf("ties should keep client order: %+v", a)
	}
}

func TestSelectClientsProperty(t *testing.T) {
	f := func(seed uint64, kRaw, tauRaw uint8) bool {
		r := stats.NewRNG(seed)
		scores := make([]float64, 20)
		for i := range scores {
			scores[i] = r.Float64()
		}
		k := int(kRaw%10) + 1
		tau := float64(tauRaw%100) / 100
		sel := SelectClients(scores, k, tau)
		if len(sel) > k {
			return false
		}
		selSet := map[int]bool{}
		minSel := 2.0
		for _, s := range sel {
			if s.Score < tau || scores[s.Client] != s.Score {
				return false
			}
			selSet[s.Client] = true
			if s.Score < minSel {
				minSel = s.Score
			}
		}
		// No unselected above-threshold client may outrank a selected one.
		for i, sc := range scores {
			if !selSet[i] && sc >= tau && sc > minSel && len(sel) == k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestControllerWarmup(t *testing.T) {
	c := DefaultController()
	if !c.InWarmup(0) || !c.InWarmup(4) || c.InWarmup(5) {
		t.Fatal("warm-up window wrong")
	}
	if r := c.RatioForRank(3, 5, 2); r != c.WarmupRatio {
		t.Fatalf("warm-up ratio %v", r)
	}
	if r := c.RatioForScore(0.9, 2); r != c.WarmupRatio {
		t.Fatalf("warm-up score ratio %v", r)
	}
}

func TestControllerRankInterpolation(t *testing.T) {
	c := DefaultController()
	best := c.RatioForRank(0, 5, 10)
	worst := c.RatioForRank(4, 5, 10)
	mid := c.RatioForRank(2, 5, 10)
	if best != c.MinRatio {
		t.Fatalf("best rank ratio %v, want %v", best, c.MinRatio)
	}
	if math.Abs(worst-c.MaxRatio) > 1e-9 {
		t.Fatalf("worst rank ratio %v, want %v", worst, c.MaxRatio)
	}
	if !(best < mid && mid < worst) {
		t.Fatalf("interpolation not monotone: %v %v %v", best, mid, worst)
	}
	// Geometric midpoint of 4 and 210 is ~29.
	if math.Abs(mid-math.Sqrt(c.MinRatio*c.MaxRatio)) > 1e-6 {
		t.Fatalf("midpoint %v not geometric", mid)
	}
}

func TestControllerScoreMapping(t *testing.T) {
	c := DefaultController()
	if r := c.RatioForScore(1, 10); r != c.MinRatio {
		t.Fatalf("score 1 ratio %v", r)
	}
	if r := c.RatioForScore(0, 10); math.Abs(r-c.MaxRatio) > 1e-9 {
		t.Fatalf("score 0 ratio %v", r)
	}
	if c.RatioForScore(0.8, 10) >= c.RatioForScore(0.3, 10) {
		t.Fatal("higher score should compress less")
	}
	// Out-of-range scores clamp.
	if c.RatioForScore(2, 10) != c.MinRatio || math.Abs(c.RatioForScore(-1, 10)-c.MaxRatio) > 1e-9 {
		t.Fatal("score clamping broken")
	}
}

func TestControllerSingleClient(t *testing.T) {
	c := DefaultController()
	if r := c.RatioForRank(0, 1, 10); r != c.MinRatio {
		t.Fatalf("single-client ratio %v", r)
	}
}

func TestControllerValidate(t *testing.T) {
	bad := CompressionController{MinRatio: 10, MaxRatio: 5, WarmupRatio: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bounds accepted")
		}
	}()
	bad.Validate()
}

func TestRatioTracker(t *testing.T) {
	var tr RatioTracker
	for _, r := range []float64{4, 210, 50} {
		tr.Observe(r)
	}
	if tr.MinRatio != 4 || tr.MaxRatio != 210 || tr.Count != 3 {
		t.Fatalf("tracker state %+v", tr)
	}
	if math.Abs(tr.Mean()-88) > 1e-9 {
		t.Fatalf("mean %v", tr.Mean())
	}
	var empty RatioTracker
	if empty.Mean() != 0 {
		t.Fatal("empty tracker mean")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.K != 5 || c.Tau != 0.3 || c.ExploreFrac != 0.8 || c.AsyncAnchor != 0.2 {
		t.Fatalf("unexpected defaults %+v", c)
	}
	c.Compression.Validate()
}

func TestScaleRatiosForModel(t *testing.T) {
	c := DefaultConfig()
	c.ScaleRatiosForModel(431080) // paper CNN: ladder untouched
	if c.Compression.MaxRatio != 210 {
		t.Fatalf("large model ladder clipped: %v", c.Compression.MaxRatio)
	}
	c2 := DefaultConfig()
	c2.ScaleRatiosForModel(9000) // small MLP: capped
	if c2.Compression.MaxRatio != 10 {
		t.Fatalf("small model ladder %v, want 10", c2.Compression.MaxRatio)
	}
	// MinRatio above the cap collapses to the cap instead of inverting.
	c3 := DefaultConfig()
	c3.Compression.MinRatio = 50
	c3.ScaleRatiosForModel(9000)
	if c3.Compression.MinRatio > c3.Compression.MaxRatio {
		t.Fatalf("inverted ladder: %v > %v", c3.Compression.MinRatio, c3.Compression.MaxRatio)
	}
}

func TestSimilarityMetricString(t *testing.T) {
	if Cosine.String() != "cosine" || NegL2.String() != "negl2" {
		t.Fatal("metric names wrong")
	}
}

func TestSelectClientsPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 accepted")
		}
	}()
	SelectClients([]float64{0.5}, 0, 0)
}
