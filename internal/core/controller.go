package core

import (
	"fmt"
	"math"
)

// CompressionController maps a client's utility ranking (or raw score) and
// the current round to a DGC compression ratio. High-utility clients are
// compressed lightly (down to MinRatio) to preserve information; low-utility
// clients aggressively (up to MaxRatio). During the warm-up phase every
// client uses WarmupRatio so the model initialises from rich updates.
type CompressionController struct {
	// MinRatio and MaxRatio bound the byte-level compression factor
	// (paper: 4x .. 210x sync, 4x .. 105x async).
	MinRatio, MaxRatio float64
	// WarmupRounds is the length of the warm-up phase.
	WarmupRounds int
	// WarmupRatio is the (low) compression used during warm-up.
	WarmupRatio float64
}

// DefaultController returns the sync-table configuration (4x–210x).
func DefaultController() CompressionController {
	return CompressionController{MinRatio: 4, MaxRatio: 210, WarmupRounds: 5, WarmupRatio: 1}
}

// Validate panics on nonsensical configurations.
func (c CompressionController) Validate() {
	if c.MinRatio < 1 || c.MaxRatio < c.MinRatio {
		panic(fmt.Sprintf("core: invalid compression bounds [%v, %v]", c.MinRatio, c.MaxRatio))
	}
	if c.WarmupRatio < 1 {
		panic("core: warm-up ratio below 1")
	}
}

// InWarmup reports whether round is still in the warm-up phase.
func (c CompressionController) InWarmup(round int) bool { return round < c.WarmupRounds }

// RatioForRank interpolates geometrically between MinRatio (rank 0, the
// highest-utility client) and MaxRatio (rank total-1). total must be ≥ 1.
func (c CompressionController) RatioForRank(rank, total, round int) float64 {
	c.Validate()
	if c.InWarmup(round) {
		return c.WarmupRatio
	}
	if total <= 1 || c.MaxRatio == c.MinRatio {
		return c.MinRatio
	}
	t := float64(rank) / float64(total-1)
	return c.MinRatio * math.Pow(c.MaxRatio/c.MinRatio, t)
}

// RatioForScore maps a utility score s ∈ [0, 1] to a ratio: score 1 →
// MinRatio, score 0 → MaxRatio, geometric in between. Used by the
// asynchronous gate, where there is no simultaneous ranking.
func (c CompressionController) RatioForScore(s float64, round int) float64 {
	c.Validate()
	if c.InWarmup(round) {
		return c.WarmupRatio
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return c.MinRatio * math.Pow(c.MaxRatio/c.MinRatio, 1-s)
}
