// Package checkpoint provides crash-safe, integrity-checked snapshot
// files for long-lived training sessions. A snapshot is a gob payload
// wrapped in a fixed header (magic, format version, payload length,
// CRC-32C of the payload) so that a reader can reject truncated,
// bit-flipped or foreign files before handing bytes to the decoder, and
// a length cap keeps a corrupt length prefix from forcing a huge
// allocation.
//
// Save is atomic with respect to crashes: the snapshot is written to a
// temp file in the destination directory, fsynced, then renamed over the
// destination, and the directory itself is fsynced. A process killed at
// any point leaves either the previous complete snapshot or the new
// complete snapshot — never a half-written one (a stale temp file at
// worst, which Save ignores and Load never reads).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// magic identifies a checkpoint file. Changing the on-disk layout bumps
// Version, not the magic.
var magic = [8]byte{'A', 'D', 'F', 'L', 'C', 'K', 'P', 'T'}

// Version is the current snapshot format version.
const Version = 1

// headerLen is magic(8) + version(4) + payload length(8) + crc(4).
const headerLen = 24

// DefaultMaxPayload bounds the payload length a reader will believe.
// Snapshots here are model vectors plus bookkeeping — far below 1 GiB —
// so anything larger is treated as corruption, not data.
const DefaultMaxPayload = 1 << 30

// ErrCorrupt marks a snapshot that failed structural verification:
// wrong magic, impossible length, truncated payload or CRC mismatch.
// Callers distinguish it from I/O errors to decide between "refuse to
// resume" and "retry the read".
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// castagnoli is the CRC-32C table (iSCSI polynomial), hardware
// accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode writes one framed snapshot of v to w.
func Encode(w io.Writer, v interface{}) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(payload.Bytes(), castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: write payload: %w", err)
	}
	return nil
}

// Decode reads one framed snapshot from r into v, verifying magic,
// version, length and CRC before gob sees a single payload byte. It
// uses DefaultMaxPayload as the length cap.
func Decode(r io.Reader, v interface{}) error {
	return DecodeLimited(r, v, DefaultMaxPayload)
}

// DecodeLimited is Decode with an explicit payload length cap. Corrupt
// or truncated input yields an error wrapping ErrCorrupt — never a
// panic and never an allocation driven by an unverified length prefix
// beyond maxPayload.
func DecodeLimited(r io.Reader, v interface{}, maxPayload int64) error {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if ver := binary.LittleEndian.Uint32(hdr[8:12]); ver != Version {
		return fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, ver)
	}
	n := binary.LittleEndian.Uint64(hdr[12:20])
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if n > uint64(maxPayload) {
		return fmt.Errorf("%w: declared payload %d exceeds cap %d", ErrCorrupt, n, maxPayload)
	}
	// Read through a LimitReader in moderate chunks so a declared length
	// larger than the actual data fails with a short read, not a single
	// n-sized up-front allocation.
	payload := make([]byte, 0, min64(int64(n), 1<<20))
	lr := io.LimitReader(r, int64(n))
	buf := make([]byte, 64<<10)
	for {
		k, err := lr.Read(buf)
		payload = append(payload, buf[:k]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%w: read payload: %v", ErrCorrupt, err)
		}
	}
	if uint64(len(payload)) != n {
		return fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrCorrupt, len(payload), n)
	}
	want := binary.LittleEndian.Uint32(hdr[20:24])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		// The CRC passed, so the bytes are what the writer produced; a gob
		// failure here means a writer/reader type mismatch, still corrupt
		// from the caller's point of view.
		return fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	return nil
}

// VerifyFrame checks a full-snapshot file's framing — magic, format
// version, declared length, CRC — without gob-decoding the payload, and
// returns the payload size. Offline auditors (flserver doctor) use it to
// judge integrity of snapshots whose payload types they cannot import.
func VerifyFrame(path string, maxPayload int64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if ver := binary.LittleEndian.Uint32(hdr[8:12]); ver != Version {
		return 0, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, ver)
	}
	n := binary.LittleEndian.Uint64(hdr[12:20])
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if n > uint64(maxPayload) {
		return 0, fmt.Errorf("%w: declared payload %d exceeds cap %d", ErrCorrupt, n, maxPayload)
	}
	crc := crc32.New(castagnoli)
	copied, err := io.Copy(crc, io.LimitReader(f, int64(n)))
	if err != nil {
		return 0, fmt.Errorf("%w: read payload: %v", ErrCorrupt, err)
	}
	if uint64(copied) != n {
		return 0, fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrCorrupt, copied, n)
	}
	if want := binary.LittleEndian.Uint32(hdr[20:24]); crc.Sum32() != want {
		return 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, crc.Sum32(), want)
	}
	return int64(n), nil
}

// Save atomically writes a snapshot of v to path: temp file in the same
// directory, fsync, rename, directory fsync. An existing snapshot at
// path is replaced only once the new one is fully durable.
func Save(path string, v interface{}) error {
	_, err := SaveSized(path, v)
	return err
}

// SaveSized is Save, additionally reporting the snapshot's on-disk size
// (header + payload bytes) so callers can record checkpoint size metrics
// without a second stat of the file.
func SaveSized(path string, v interface{}) (int64, error) {
	return atomicWrite(path, func(w io.Writer) error { return Encode(w, v) })
}

// atomicWrite runs write against a temp file in path's directory, then
// fsyncs, renames over path and fsyncs the directory — the shared crash
// discipline for full snapshots and delta epochs alike. It reports the
// bytes written.
func atomicWrite(path string, write func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := write(cw); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("checkpoint: fsync: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("checkpoint: close: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: rename: %w", err)
	}
	// Make the rename itself durable. Some filesystems reject Sync on a
	// directory handle; a crash then risks losing only the rename, never
	// producing a torn file, so that error is not fatal.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return cw.n, nil
}

// countingWriter tracks bytes written through it for SaveSized.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Load reads the snapshot at path into v, capping the payload length it
// will believe at DefaultMaxPayload (a corrupt length field must never
// drive the allocation).
func Load(path string, v interface{}) error {
	return LoadLimited(path, v, DefaultMaxPayload)
}

// LoadLimited is Load with an explicit payload length cap, for resume
// paths that know how large a legitimate snapshot can be.
func LoadLimited(path string, v interface{}, maxPayload int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return DecodeLimited(f, v, maxPayload)
}

// Exists reports whether a snapshot file is present at path (it does not
// verify its integrity; Load does).
func Exists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Mode().IsRegular()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
