// Delta checkpoints: chunked, content-addressed snapshot epochs for
// control planes that checkpoint many sessions every round. A full
// snapshot of an N-session control plane is dominated by model vectors
// that change only at the indices a sparse round touched, so each epoch
// stores its payload as named sections split into fixed-size chunks;
// a chunk whose SHA-256 matches the same chunk of the previous epoch is
// written as a reference to the epoch that physically holds those bytes
// instead of being rewritten. Periodic full rebases bound chain length,
// and garbage collection deletes epochs no longer reachable from the
// latest one.
//
// Epoch files share the package's crash discipline: CRC-framed payload,
// atomic temp-file/fsync/rename writes. References always point at the
// epoch where the chunk is inline (one-hop resolution — reading epoch E
// never walks a chain), which also keeps GC a single mark pass over the
// latest epoch's table.
//
// Callers that want byte-stable sections across epochs must encode large
// vectors fixed-width (AppendF64s/F64sFromBytes), not with gob: gob's
// varint float encoding shifts every byte position after the first
// changed value, defeating positional chunk dedup.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// deltaMagic identifies a delta epoch file; the layout is versioned by
// DeltaVersion independently of full snapshots.
var deltaMagic = [8]byte{'A', 'D', 'F', 'L', 'D', 'E', 'L', 'T'}

// DeltaVersion is the current delta epoch format version.
const DeltaVersion = 1

const (
	// DefaultChunkSize is the dedup granularity. Small enough that a
	// sparse round leaves most chunks of a model vector untouched, large
	// enough that the 33-41 byte table entry per chunk stays negligible.
	DefaultChunkSize = 4096
	// DefaultRebaseEvery forces a full (all-inline) epoch at this cadence
	// so chains stay short and GC can reclaim old epochs.
	DefaultRebaseEvery = 16
	// maxSections and maxSectionName bound hostile tables before any
	// allocation is driven by them.
	maxSections    = 1 << 12
	maxSectionName = 1 << 10

	chunkInline = 0
	chunkRef    = 1
)

// Section is one named byte range of a delta snapshot (e.g. "meta",
// "global"). Section names must be unique within an epoch.
type Section struct {
	Name string
	Data []byte
}

// DeltaChunk is one table entry of a parsed epoch.
type DeltaChunk struct {
	// Hash is the SHA-256 of the chunk's reconstructed bytes.
	Hash [32]byte
	// Inline reports whether the bytes live in this epoch's blob; if
	// false, SrcEpoch names the epoch that holds them inline.
	Inline   bool
	SrcEpoch uint64

	// offset/size locate inline bytes within the epoch blob.
	offset int
	size   int
}

// DeltaSection is one parsed section table.
type DeltaSection struct {
	Name    string
	DataLen uint64
	Chunks  []DeltaChunk
}

// DeltaEpoch is the parsed form of one epoch file.
type DeltaEpoch struct {
	Epoch uint64
	// BaseEpoch is the epoch this one was diffed against (0 for a full
	// rebase). Informational: references carry their own source epoch,
	// and GC may legitimately delete the base while keeping the sources.
	BaseEpoch uint64
	ChunkSize uint32
	Sections  []DeltaSection

	blob []byte
}

// InlineChunk returns the blob bytes of section s, chunk i, which must
// be inline.
func (e *DeltaEpoch) InlineChunk(s, i int) []byte {
	c := &e.Sections[s].Chunks[i]
	return e.blob[c.offset : c.offset+c.size]
}

// section returns the index of the named section, or -1.
func (e *DeltaEpoch) section(name string) int {
	for i := range e.Sections {
		if e.Sections[i].Name == name {
			return i
		}
	}
	return -1
}

// DeltaOptions tunes a DeltaWriter. Zero values select the defaults.
type DeltaOptions struct {
	ChunkSize   int
	RebaseEvery int
}

func (o DeltaOptions) withDefaults() DeltaOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.RebaseEvery <= 0 {
		o.RebaseEvery = DefaultRebaseEvery
	}
	return o
}

// DeltaWriter appends snapshot epochs to a directory. It is not safe
// for concurrent use; sessions hold one writer each.
type DeltaWriter struct {
	dir  string
	opts DeltaOptions

	// epoch is the last epoch written (0 before the first Write).
	epoch uint64
	// prev is the chunk table of the last epoch, with every reference
	// resolved to its physical epoch, so the next Write can both compare
	// hashes and emit one-hop references. nil forces a rebase: a writer
	// reopened after a crash starts with a full epoch rather than trusting
	// a chain it has not read.
	prev        map[string][]DeltaChunk
	sinceRebase int
}

// NewDeltaWriter opens (creating if needed) a delta chain in dir. If
// epochs already exist the writer resumes after the latest one; its
// first Write is then a full rebase.
func NewDeltaWriter(dir string, opts DeltaOptions) (*DeltaWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: delta dir: %w", err)
	}
	latest, ok, err := LatestDeltaEpoch(dir)
	if err != nil {
		return nil, err
	}
	w := &DeltaWriter{dir: dir, opts: opts.withDefaults()}
	if ok {
		w.epoch = latest
	}
	return w, nil
}

// Epoch returns the last epoch number written (or resumed past).
func (w *DeltaWriter) Epoch() uint64 { return w.epoch }

// Write persists one snapshot epoch and returns its epoch number and
// on-disk size. Chunks unchanged since the previous epoch are written as
// references; every RebaseEvery-th epoch (and the first after open) is
// written in full. After a successful write, epochs unreachable from the
// new one are garbage collected.
func (w *DeltaWriter) Write(sections []Section) (uint64, int64, error) {
	seen := make(map[string]bool, len(sections))
	for _, s := range sections {
		if s.Name == "" || len(s.Name) > maxSectionName {
			return 0, 0, fmt.Errorf("checkpoint: bad section name %q", s.Name)
		}
		if seen[s.Name] {
			return 0, 0, fmt.Errorf("checkpoint: duplicate section %q", s.Name)
		}
		seen[s.Name] = true
	}
	epoch := w.epoch + 1
	rebase := w.prev == nil || w.sinceRebase >= w.opts.RebaseEvery
	cs := w.opts.ChunkSize

	var table bytes.Buffer
	var blob bytes.Buffer
	next := make(map[string][]DeltaChunk, len(sections))

	var baseEpoch uint64
	if !rebase {
		baseEpoch = w.epoch
	}
	writeU16 := func(v uint16) { binary.Write(&table, binary.LittleEndian, v) }
	writeU32 := func(v uint32) { binary.Write(&table, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(&table, binary.LittleEndian, v) }
	writeU32(uint32(cs))
	writeU64(epoch)
	writeU64(baseEpoch)
	writeU32(uint32(len(sections)))
	for _, s := range sections {
		writeU16(uint16(len(s.Name)))
		table.WriteString(s.Name)
		writeU64(uint64(len(s.Data)))
		n := (len(s.Data) + cs - 1) / cs
		writeU32(uint32(n))
		prev := w.prev[s.Name]
		chunks := make([]DeltaChunk, 0, n)
		for i := 0; i < n; i++ {
			lo, hi := i*cs, (i+1)*cs
			if hi > len(s.Data) {
				hi = len(s.Data)
			}
			part := s.Data[lo:hi]
			h := sha256.Sum256(part)
			if !rebase && i < len(prev) && prev[i].Hash == h {
				// Unchanged: reference the epoch that holds the bytes.
				src := prev[i].SrcEpoch
				table.WriteByte(chunkRef)
				table.Write(h[:])
				writeU64(src)
				chunks = append(chunks, DeltaChunk{Hash: h, SrcEpoch: src})
				continue
			}
			table.WriteByte(chunkInline)
			table.Write(h[:])
			off := blob.Len()
			blob.Write(part)
			chunks = append(chunks, DeltaChunk{Hash: h, Inline: true, SrcEpoch: epoch, offset: off, size: len(part)})
		}
		next[s.Name] = chunks
	}

	payloadLen := table.Len() + blob.Len()
	crc := crc32.Checksum(table.Bytes(), castagnoli)
	crc = crc32.Update(crc, castagnoli, blob.Bytes())
	size, err := atomicWrite(filepath.Join(w.dir, deltaFileName(epoch)), func(out io.Writer) error {
		var hdr [headerLen]byte
		copy(hdr[:8], deltaMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], DeltaVersion)
		binary.LittleEndian.PutUint64(hdr[12:20], uint64(payloadLen))
		binary.LittleEndian.PutUint32(hdr[20:24], crc)
		if _, err := out.Write(hdr[:]); err != nil {
			return fmt.Errorf("checkpoint: write delta header: %w", err)
		}
		if _, err := out.Write(table.Bytes()); err != nil {
			return fmt.Errorf("checkpoint: write delta table: %w", err)
		}
		if _, err := out.Write(blob.Bytes()); err != nil {
			return fmt.Errorf("checkpoint: write delta blob: %w", err)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	w.epoch = epoch
	w.prev = next
	if rebase {
		w.sinceRebase = 1
	} else {
		w.sinceRebase++
	}
	w.gc(next, epoch)
	return epoch, size, nil
}

// gc removes epoch files unreachable from the latest epoch: anything
// other than the latest itself and the epochs its references point at.
// Failures are ignored — a leftover file is garbage, not corruption, and
// the next GC pass retries.
func (w *DeltaWriter) gc(table map[string][]DeltaChunk, latest uint64) {
	keep := map[uint64]bool{latest: true}
	for _, chunks := range table {
		for _, c := range chunks {
			if !c.Inline {
				keep[c.SrcEpoch] = true
			}
		}
	}
	epochs, err := DeltaEpochs(w.dir)
	if err != nil {
		return
	}
	// Delete newest-first: references only point backward, so a crash
	// mid-pass can leave an unreferenced old epoch behind but never a
	// surviving epoch whose reference target is already gone.
	for i := len(epochs) - 1; i >= 0; i-- {
		if !keep[epochs[i]] {
			os.Remove(filepath.Join(w.dir, deltaFileName(epochs[i])))
		}
	}
}

func deltaFileName(epoch uint64) string {
	return fmt.Sprintf("delta-%08d.ckpt", epoch)
}

// DeltaEpochs lists the epoch numbers present in dir, ascending.
func DeltaEpochs(dir string) ([]uint64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "delta-*.ckpt"))
	if err != nil {
		return nil, err
	}
	epochs := make([]uint64, 0, len(matches))
	for _, m := range matches {
		var e uint64
		if _, err := fmt.Sscanf(filepath.Base(m), "delta-%d.ckpt", &e); err == nil && e > 0 {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// LatestDeltaEpoch reports the highest epoch present in dir, and whether
// any epoch exists at all.
func LatestDeltaEpoch(dir string) (uint64, bool, error) {
	epochs, err := DeltaEpochs(dir)
	if err != nil || len(epochs) == 0 {
		return 0, false, err
	}
	return epochs[len(epochs)-1], true, nil
}

// ParseDeltaEpoch reads and structurally validates one epoch frame from
// r: magic, version, CRC, table bounds, blob length. Chunk hashes are
// verified by readers/auditors, not here. Corrupt input yields an error
// wrapping ErrCorrupt, never a panic, and no allocation is driven by an
// unverified length beyond maxPayload.
func ParseDeltaEpoch(r io.Reader, maxPayload int64) (*DeltaEpoch, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short delta header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], deltaMagic[:]) {
		return nil, fmt.Errorf("%w: bad delta magic", ErrCorrupt)
	}
	if ver := binary.LittleEndian.Uint32(hdr[8:12]); ver != DeltaVersion {
		return nil, fmt.Errorf("%w: unsupported delta version %d", ErrCorrupt, ver)
	}
	n := binary.LittleEndian.Uint64(hdr[12:20])
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if n > uint64(maxPayload) {
		return nil, fmt.Errorf("%w: declared delta payload %d exceeds cap %d", ErrCorrupt, n, maxPayload)
	}
	payload := make([]byte, 0, min64(int64(n), 1<<20))
	lr := io.LimitReader(r, int64(n))
	buf := make([]byte, 64<<10)
	for {
		k, err := lr.Read(buf)
		payload = append(payload, buf[:k]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: read delta payload: %v", ErrCorrupt, err)
		}
	}
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: truncated delta payload: %d of %d bytes", ErrCorrupt, len(payload), n)
	}
	want := binary.LittleEndian.Uint32(hdr[20:24])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: delta crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return parseDeltaPayload(payload)
}

// parseDeltaPayload decodes the (CRC-verified) payload bytes.
func parseDeltaPayload(p []byte) (*DeltaEpoch, error) {
	off := 0
	need := func(n int) ([]byte, error) {
		if len(p)-off < n {
			return nil, fmt.Errorf("%w: delta table truncated at offset %d", ErrCorrupt, off)
		}
		b := p[off : off+n]
		off += n
		return b, nil
	}
	u16 := func() (uint16, error) {
		b, err := need(2)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(b), nil
	}
	u32 := func() (uint32, error) {
		b, err := need(4)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b), nil
	}
	u64 := func() (uint64, error) {
		b, err := need(8)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b), nil
	}

	cs, err := u32()
	if err != nil {
		return nil, err
	}
	if cs == 0 || cs > 1<<24 {
		return nil, fmt.Errorf("%w: delta chunk size %d out of range", ErrCorrupt, cs)
	}
	epoch, err := u64()
	if err != nil {
		return nil, err
	}
	if epoch == 0 {
		return nil, fmt.Errorf("%w: delta epoch 0", ErrCorrupt)
	}
	base, err := u64()
	if err != nil {
		return nil, err
	}
	if base >= epoch {
		return nil, fmt.Errorf("%w: delta base epoch %d not before epoch %d", ErrCorrupt, base, epoch)
	}
	ns, err := u32()
	if err != nil {
		return nil, err
	}
	if ns > maxSections {
		return nil, fmt.Errorf("%w: %d delta sections exceeds cap", ErrCorrupt, ns)
	}
	e := &DeltaEpoch{Epoch: epoch, BaseEpoch: base, ChunkSize: cs}
	inlineTotal := 0
	names := make(map[string]bool, ns)
	for si := uint32(0); si < ns; si++ {
		nl, err := u16()
		if err != nil {
			return nil, err
		}
		if nl == 0 || nl > maxSectionName {
			return nil, fmt.Errorf("%w: delta section name length %d", ErrCorrupt, nl)
		}
		nb, err := need(int(nl))
		if err != nil {
			return nil, err
		}
		name := string(nb)
		if names[name] {
			return nil, fmt.Errorf("%w: duplicate delta section %q", ErrCorrupt, name)
		}
		names[name] = true
		dataLen, err := u64()
		if err != nil {
			return nil, err
		}
		nc, err := u32()
		if err != nil {
			return nil, err
		}
		wantChunks := (dataLen + uint64(cs) - 1) / uint64(cs)
		if dataLen > math.MaxInt64 || uint64(nc) != wantChunks {
			return nil, fmt.Errorf("%w: section %q declares %d chunks for %d bytes (chunk size %d)", ErrCorrupt, name, nc, dataLen, cs)
		}
		// Every chunk entry consumes at least 33 table bytes; a declared
		// count the remaining payload cannot hold must not size a slice.
		if uint64(nc) > uint64(len(p)-off)/33 {
			return nil, fmt.Errorf("%w: section %q declares %d chunks, table too short", ErrCorrupt, name, nc)
		}
		sec := DeltaSection{Name: name, DataLen: dataLen, Chunks: make([]DeltaChunk, 0, nc)}
		for ci := uint32(0); ci < nc; ci++ {
			kb, err := need(1)
			if err != nil {
				return nil, err
			}
			hb, err := need(32)
			if err != nil {
				return nil, err
			}
			var c DeltaChunk
			copy(c.Hash[:], hb)
			size := int(cs)
			if ci == nc-1 {
				size = int(dataLen - uint64(ci)*uint64(cs))
			}
			switch kb[0] {
			case chunkInline:
				c.Inline = true
				c.SrcEpoch = epoch
				c.offset = inlineTotal
				c.size = size
				inlineTotal += size
			case chunkRef:
				src, err := u64()
				if err != nil {
					return nil, err
				}
				if src == 0 || src >= epoch {
					return nil, fmt.Errorf("%w: section %q chunk %d references epoch %d from epoch %d", ErrCorrupt, name, ci, src, epoch)
				}
				c.SrcEpoch = src
				c.size = size
			default:
				return nil, fmt.Errorf("%w: unknown delta chunk kind %d", ErrCorrupt, kb[0])
			}
			sec.Chunks = append(sec.Chunks, c)
		}
		e.Sections = append(e.Sections, sec)
	}
	if len(p)-off != inlineTotal {
		return nil, fmt.Errorf("%w: delta blob is %d bytes, table promises %d", ErrCorrupt, len(p)-off, inlineTotal)
	}
	e.blob = p[off:]
	return e, nil
}

// DeltaReader reconstructs snapshots from a delta chain, caching parsed
// epochs so a run of reference chunks into one source epoch costs one
// file read. Not safe for concurrent use.
type DeltaReader struct {
	dir        string
	maxPayload int64
	cache      map[uint64]*DeltaEpoch
}

// NewDeltaReader opens a reader over the chain in dir. maxPayload caps
// each epoch file's payload (<=0 selects DefaultMaxPayload); it also
// caps each reconstructed section.
func NewDeltaReader(dir string, maxPayload int64) *DeltaReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &DeltaReader{dir: dir, maxPayload: maxPayload, cache: make(map[uint64]*DeltaEpoch)}
}

func (r *DeltaReader) load(epoch uint64) (*DeltaEpoch, error) {
	if e, ok := r.cache[epoch]; ok {
		return e, nil
	}
	f, err := os.Open(filepath.Join(r.dir, deltaFileName(epoch)))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: delta epoch %d: %w", epoch, err)
	}
	defer f.Close()
	e, err := ParseDeltaEpoch(f, r.maxPayload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: delta epoch %d: %w", epoch, err)
	}
	if e.Epoch != epoch {
		return nil, fmt.Errorf("%w: file %s declares epoch %d", ErrCorrupt, deltaFileName(epoch), e.Epoch)
	}
	r.cache[epoch] = e
	return e, nil
}

// Read reconstructs the named sections of one epoch, verifying every
// chunk hash (inline and referenced) against the epoch's table.
func (r *DeltaReader) Read(epoch uint64) ([]Section, error) {
	e, err := r.load(epoch)
	if err != nil {
		return nil, err
	}
	out := make([]Section, 0, len(e.Sections))
	for si := range e.Sections {
		sec := &e.Sections[si]
		if sec.DataLen > uint64(r.maxPayload) {
			return nil, fmt.Errorf("%w: section %q is %d bytes, cap %d", ErrCorrupt, sec.Name, sec.DataLen, r.maxPayload)
		}
		data := make([]byte, 0, sec.DataLen)
		for ci := range sec.Chunks {
			c := &sec.Chunks[ci]
			var part []byte
			if c.Inline {
				part = e.InlineChunk(si, ci)
			} else {
				src, err := r.load(c.SrcEpoch)
				if err != nil {
					return nil, fmt.Errorf("checkpoint: section %q chunk %d: %w", sec.Name, ci, err)
				}
				part, err = refChunk(src, sec.Name, ci, c)
				if err != nil {
					return nil, err
				}
			}
			if sha256.Sum256(part) != c.Hash {
				return nil, fmt.Errorf("%w: section %q chunk %d hash mismatch", ErrCorrupt, sec.Name, ci)
			}
			data = append(data, part...)
		}
		out = append(out, Section{Name: sec.Name, Data: data})
	}
	return out, nil
}

// ReadLatest reconstructs the newest epoch in the chain, returning its
// epoch number alongside the sections. It reports os.ErrNotExist if the
// directory holds no epochs.
func (r *DeltaReader) ReadLatest() (uint64, []Section, error) {
	latest, ok, err := LatestDeltaEpoch(r.dir)
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, fmt.Errorf("checkpoint: no delta epochs in %s: %w", r.dir, os.ErrNotExist)
	}
	secs, err := r.Read(latest)
	return latest, secs, err
}

// refChunk locates the inline bytes a reference points at: same section
// name, same chunk index, in the source epoch. The one-hop invariant
// means the source chunk must itself be inline with the same hash.
func refChunk(src *DeltaEpoch, name string, ci int, want *DeltaChunk) ([]byte, error) {
	si := src.section(name)
	if si < 0 {
		return nil, fmt.Errorf("%w: epoch %d has no section %q for reference", ErrCorrupt, src.Epoch, name)
	}
	if ci >= len(src.Sections[si].Chunks) {
		return nil, fmt.Errorf("%w: epoch %d section %q has no chunk %d for reference", ErrCorrupt, src.Epoch, name, ci)
	}
	c := &src.Sections[si].Chunks[ci]
	if !c.Inline {
		return nil, fmt.Errorf("%w: reference into epoch %d section %q chunk %d lands on another reference", ErrCorrupt, src.Epoch, name, ci)
	}
	if c.Hash != want.Hash {
		return nil, fmt.Errorf("%w: epoch %d section %q chunk %d hash does not match reference", ErrCorrupt, src.Epoch, name, ci)
	}
	return src.InlineChunk(si, ci), nil
}

// DeltaAudit summarises an offline integrity pass over a delta chain.
type DeltaAudit struct {
	// Epochs present in the directory, ascending.
	Epochs []uint64
	// Latest is the newest epoch (the one a resume would read).
	Latest uint64
	// Chunks and Refs count table entries across all epochs; Bytes is the
	// total on-disk size.
	Chunks int
	Refs   int
	Bytes  int64
}

// AuditDelta verifies every epoch file in dir: frame CRC, table
// structure, inline chunk hashes, and reference resolution (target epoch
// present, chunk inline there, hashes equal). It then fully reconstructs
// the latest epoch. Any inconsistency returns an error wrapping
// ErrCorrupt (or the underlying I/O error).
func AuditDelta(dir string) (*DeltaAudit, error) {
	epochs, err := DeltaEpochs(dir)
	if err != nil {
		return nil, err
	}
	if len(epochs) == 0 {
		return nil, fmt.Errorf("checkpoint: no delta epochs in %s: %w", dir, os.ErrNotExist)
	}
	a := &DeltaAudit{Epochs: epochs, Latest: epochs[len(epochs)-1]}
	r := NewDeltaReader(dir, DefaultMaxPayload)
	for _, epoch := range epochs {
		fi, err := os.Stat(filepath.Join(dir, deltaFileName(epoch)))
		if err == nil {
			a.Bytes += fi.Size()
		}
		e, err := r.load(epoch)
		if err != nil {
			return a, err
		}
		for si := range e.Sections {
			sec := &e.Sections[si]
			for ci := range sec.Chunks {
				c := &sec.Chunks[ci]
				a.Chunks++
				if c.Inline {
					if sha256.Sum256(e.InlineChunk(si, ci)) != c.Hash {
						return a, fmt.Errorf("%w: epoch %d section %q chunk %d inline hash mismatch", ErrCorrupt, epoch, sec.Name, ci)
					}
					continue
				}
				a.Refs++
				src, err := r.load(c.SrcEpoch)
				if err != nil {
					return a, fmt.Errorf("checkpoint: epoch %d section %q chunk %d: %w", epoch, sec.Name, ci, err)
				}
				if _, err := refChunk(src, sec.Name, ci, c); err != nil {
					return a, fmt.Errorf("checkpoint: epoch %d: %w", epoch, err)
				}
			}
		}
	}
	if _, err := r.Read(a.Latest); err != nil {
		return a, err
	}
	return a, nil
}

// AppendF64s appends vals to dst as fixed-width little-endian float64
// bits. Fixed-width encoding keeps unchanged values at unchanged byte
// offsets across epochs, which is what makes chunk-level dedup work for
// model vectors.
func AppendF64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// F64sFromBytes decodes a fixed-width float64 section written by
// AppendF64s.
func F64sFromBytes(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: float section length %d not a multiple of 8", ErrCorrupt, len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}
