package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary byte streams — seeded with valid
// snapshots, truncations and bit flips — into DecodeLimited and requires
// error-not-panic behaviour. This is the failure surface a server hits
// when it restarts onto a snapshot file damaged by a crash, a partial
// disk write or plain bit rot.
func FuzzCheckpointDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, samplePayloadFuzz()); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	for _, cut := range []int{1, headerLen - 1, headerLen, headerLen + 1, len(raw) / 2, len(raw) - 1} {
		if cut > 0 && cut < len(raw) {
			f.Add(raw[:cut])
		}
	}
	for _, i := range []int{0, 9, 13, 21, headerLen + 2} {
		if i < len(raw) {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			t.Skip("oversized input")
		}
		var p payload
		// A tight cap keeps the fuzzer from spending its budget on
		// legitimately large allocations; the cap path itself is part of
		// the surface under test.
		err := DecodeLimited(bytes.NewReader(data), &p, 1<<16)
		if err == nil {
			// The only way to decode successfully is to be a genuine
			// snapshot; re-encode must reproduce a decodable stream.
			var rt bytes.Buffer
			if err := Encode(&rt, p); err != nil {
				t.Fatalf("re-encode of decoded payload failed: %v", err)
			}
		}
	})
}

func samplePayloadFuzz() payload {
	return payload{
		Round:   3,
		Global:  []float64{1, 2.5, -3},
		LastSel: map[int]int{1: 2},
		Note:    "fuzz seed",
	}
}

// FuzzDeltaDecode feeds hostile delta epoch files — valid chains,
// truncations, bit flips, oversized chunk tables and dangling epoch
// references — into ParseDeltaEpoch plus a full reconstruction pass,
// requiring error-not-panic behaviour and no attacker-sized allocation.
func FuzzDeltaDecode(f *testing.F) {
	dir := f.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 32, RebaseEvery: 100})
	if err != nil {
		f.Fatal(err)
	}
	vec := bytes.Repeat([]byte{0xab}, 200)
	if _, _, err := w.Write([]Section{{Name: "meta", Data: []byte("x")}, {Name: "v", Data: vec}}); err != nil {
		f.Fatal(err)
	}
	vec[3] ^= 1
	if _, _, err := w.Write([]Section{{Name: "meta", Data: []byte("y")}, {Name: "v", Data: vec}}); err != nil {
		f.Fatal(err)
	}
	for _, epoch := range []uint64{1, 2} {
		raw, err := os.ReadFile(filepath.Join(dir, deltaFileName(epoch)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		for _, cut := range []int{1, headerLen - 1, headerLen + 3, len(raw) / 2, len(raw) - 1} {
			if cut > 0 && cut < len(raw) {
				f.Add(raw[:cut])
			}
		}
		for _, i := range []int{0, 9, 13, 21, headerLen, headerLen + 5, len(raw) - 2} {
			if i >= 0 && i < len(raw) {
				mut := append([]byte(nil), raw...)
				mut[i] ^= 0xff
				f.Add(mut)
			}
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerLen+64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			t.Skip("oversized input")
		}
		e, err := ParseDeltaEpoch(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		// A structurally valid epoch: drop it into a directory and run the
		// reader and auditor over it — reference resolution against files
		// the attacker controls (or that are absent) must also fail closed.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, deltaFileName(e.Epoch)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r := NewDeltaReader(dir, 1<<16)
		_, _ = r.Read(e.Epoch)
		_, _ = AuditDelta(dir)
	})
}
