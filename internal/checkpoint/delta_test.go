package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeEpoch is a test helper: one Write with error fatal.
func writeEpoch(t *testing.T, w *DeltaWriter, secs []Section) (uint64, int64) {
	t.Helper()
	epoch, n, err := w.Write(secs)
	if err != nil {
		t.Fatalf("delta write: %v", err)
	}
	return epoch, n
}

func sectionsEqual(t *testing.T, got, want []Section) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d sections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("section %d name %q, want %q", i, got[i].Name, want[i].Name)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("section %q data mismatch (%d vs %d bytes)", want[i].Name, len(got[i].Data), len(want[i].Data))
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 64, RebaseEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	vec := make([]byte, 64*40)
	rng.Read(vec)
	meta := []byte(`{"version":1}`)

	secs := []Section{{Name: "meta", Data: meta}, {Name: "global", Data: vec}}
	e1, full := writeEpoch(t, w, secs)
	if e1 != 1 {
		t.Fatalf("first epoch %d", e1)
	}

	// Touch two chunks of the vector; the second epoch must be far
	// smaller than the first and still reconstruct exactly.
	vec2 := append([]byte(nil), vec...)
	vec2[10] ^= 0xff
	vec2[64*30+3] ^= 0xff
	meta2 := []byte(`{"version":2}`)
	secs2 := []Section{{Name: "meta", Data: meta2}, {Name: "global", Data: vec2}}
	e2, delta := writeEpoch(t, w, secs2)
	if e2 != 2 {
		t.Fatalf("second epoch %d", e2)
	}
	if delta >= full/2 {
		t.Fatalf("two-chunk delta wrote %d bytes vs %d full", delta, full)
	}

	r := NewDeltaReader(dir, 0)
	latest, got, err := r.ReadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if latest != 2 {
		t.Fatalf("latest %d", latest)
	}
	sectionsEqual(t, got, secs2)
}

func TestDeltaSectionGrowthAndShrink(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 32, RebaseEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{7}, 100)
	writeEpoch(t, w, []Section{{Name: "s", Data: a}})
	grown := append(append([]byte(nil), a...), bytes.Repeat([]byte{9}, 60)...)
	writeEpoch(t, w, []Section{{Name: "s", Data: grown}})
	r := NewDeltaReader(dir, 0)
	_, got, err := r.ReadLatest()
	if err != nil {
		t.Fatal(err)
	}
	sectionsEqual(t, got, []Section{{Name: "s", Data: grown}})

	shrunk := grown[:40]
	writeEpoch(t, w, []Section{{Name: "s", Data: shrunk}})
	_, got, err = NewDeltaReader(dir, 0).ReadLatest()
	if err != nil {
		t.Fatal(err)
	}
	sectionsEqual(t, got, []Section{{Name: "s", Data: shrunk}})
}

func TestDeltaRebaseAndGC(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 64, RebaseEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]byte, 64*16)
	rand.New(rand.NewSource(2)).Read(vec)
	for i := 0; i < 10; i++ {
		vec[i*64] = byte(i) // one chunk changes per epoch
		writeEpoch(t, w, []Section{{Name: "v", Data: vec}})
	}
	epochs, err := DeltaEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 9 is the latest rebase (epochs 1, 5, 9 rebase with
	// RebaseEvery=4); epoch 10 refs only 9, so GC must have pruned
	// everything except {9, 10}.
	if len(epochs) != 2 || epochs[0] != 9 || epochs[1] != 10 {
		t.Fatalf("after GC epochs = %v, want [9 10]", epochs)
	}
	if _, err := AuditDelta(dir); err != nil {
		t.Fatalf("audit after GC: %v", err)
	}
	_, got, err := NewDeltaReader(dir, 0).ReadLatest()
	if err != nil {
		t.Fatal(err)
	}
	sectionsEqual(t, got, []Section{{Name: "v", Data: vec}})
}

func TestDeltaWriterResumeRebases(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 64, RebaseEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]byte, 64*8)
	writeEpoch(t, w, []Section{{Name: "v", Data: vec}})
	writeEpoch(t, w, []Section{{Name: "v", Data: vec}})

	// A reopened writer must not trust the unread chain: it continues the
	// numbering but writes a full epoch, after which GC prunes the old
	// chain entirely.
	w2, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 64, RebaseEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Epoch() != 2 {
		t.Fatalf("resumed epoch %d", w2.Epoch())
	}
	e3, _ := writeEpoch(t, w2, []Section{{Name: "v", Data: vec}})
	if e3 != 3 {
		t.Fatalf("post-resume epoch %d", e3)
	}
	epochs, _ := DeltaEpochs(dir)
	if len(epochs) != 1 || epochs[0] != 3 {
		t.Fatalf("epochs after resume rebase = %v, want [3]", epochs)
	}
	if _, err := AuditDelta(dir); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAuditDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 64, RebaseEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]byte, 64*8)
	rand.New(rand.NewSource(3)).Read(vec)
	writeEpoch(t, w, []Section{{Name: "v", Data: vec}})
	vec[5] ^= 1
	writeEpoch(t, w, []Section{{Name: "v", Data: vec}})
	if _, err := AuditDelta(dir); err != nil {
		t.Fatalf("clean chain: %v", err)
	}

	// Layer 1: a plain bit flip in the oldest epoch's blob must fail the
	// frame CRC before any chunk logic runs.
	path := filepath.Join(dir, deltaFileName(1))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), orig...)
	b[len(b)-3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AuditDelta(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("audit of bit-flipped chain: %v", err)
	}
	if _, _, err := NewDeltaReader(dir, 0).ReadLatest(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read through bit-flipped reference: %v", err)
	}

	// Layer 2: the same flip with a recomputed frame CRC — the frame now
	// verifies, so the SHA-256 chunk check must catch it instead.
	b = append([]byte(nil), orig...)
	b[len(b)-3] ^= 0x40
	crc := crc32.Checksum(b[headerLen:], castagnoli)
	binary.LittleEndian.PutUint32(b[20:24], crc)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AuditDelta(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("audit of hash-corrupted chain: %v", err)
	}
	if _, _, err := NewDeltaReader(dir, 0).ReadLatest(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read through hash-corrupted reference: %v", err)
	}
}

func TestDeltaAuditDetectsDanglingRef(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 64, RebaseEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]byte, 64*8)
	writeEpoch(t, w, []Section{{Name: "v", Data: vec}})
	writeEpoch(t, w, []Section{{Name: "v", Data: vec}})
	if err := os.Remove(filepath.Join(dir, deltaFileName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := AuditDelta(dir); err == nil {
		t.Fatal("audit accepted a dangling epoch reference")
	}
}

func TestF64SectionRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, 1e300, -1e-300}
	b := AppendF64s(nil, vals)
	got, err := F64sFromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("f64 round trip %v != %v", got[i], vals[i])
		}
	}
	if _, err := F64sFromBytes(b[:len(b)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated f64 section: %v", err)
	}
}

// TestDeltaSteadyStateBytes pins the headline economy claim at the
// package level: with sparse per-epoch changes, steady-state delta
// epochs must cost well under 30% of an equivalent full snapshot.
func TestDeltaSteadyStateBytes(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDeltaWriter(dir, DeltaOptions{ChunkSize: 4096, RebaseEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]byte, 1<<20) // 1 MiB model section
	rand.New(rand.NewSource(4)).Read(vec)
	_, full := writeEpoch(t, w, []Section{{Name: "global", Data: vec}})
	var deltaTotal int64
	const epochs = 8
	for i := 0; i < epochs; i++ {
		// A localized sparse round: ~5% of the vector, contiguous.
		off := (i % 16) * (len(vec) / 20)
		for j := 0; j < len(vec)/20; j++ {
			vec[off+j] ^= byte(i + 1)
		}
		_, n := writeEpoch(t, w, []Section{{Name: "global", Data: vec}})
		deltaTotal += n
	}
	mean := deltaTotal / epochs
	if mean > full*30/100 {
		t.Fatalf("steady-state delta epochs average %d bytes, above 30%% of full snapshot %d", mean, full)
	}
}
