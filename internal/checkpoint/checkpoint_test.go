package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// payload is a representative snapshot body: vectors, a sparse id map
// and scalars, mirroring what the FL server persists.
type payload struct {
	Round   int
	Global  []float64
	LastSel map[int]int
	Note    string
}

func samplePayload() payload {
	return payload{
		Round:   7,
		Global:  []float64{0.5, -1.25, 3.75, 0, 1e-9},
		LastSel: map[int]int{0: 6, 2: 7, 9: 3},
		Note:    "after round 7",
	}
}

func encodeToBytes(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.ckpt")
	want := samplePayload()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !Exists(path) {
		t.Fatal("Exists reports false for a freshly saved snapshot")
	}
}

// TestSaveReplacesAtomically: overwriting an existing snapshot leaves no
// temp debris and the new content wins; pre-existing garbage temp files
// (a simulated crash mid-save) do not disturb a later Save/Load.
func TestSaveReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.ckpt")
	// Crash debris from a hypothetical earlier attempt.
	if err := os.WriteFile(path+".tmp-crashed", []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	first := samplePayload()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := samplePayload()
	second.Round = 8
	second.Global[0] = 99
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, second) {
		t.Fatalf("overwrite did not take: got round %d", got.Round)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "session.ckpt" && !strings.Contains(e.Name(), "crashed") {
			t.Errorf("unexpected debris after Save: %s", e.Name())
		}
	}
}

// TestDecodeTruncated: every strict prefix of a valid snapshot must fail
// with ErrCorrupt, never panic or succeed.
func TestDecodeTruncated(t *testing.T) {
	raw := encodeToBytes(t, samplePayload())
	for cut := 0; cut < len(raw); cut++ {
		var got payload
		err := Decode(bytes.NewReader(raw[:cut]), &got)
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(raw))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

// TestDecodeBitFlips: flipping any single byte must be detected (magic,
// version, length, CRC or payload).
func TestDecodeBitFlips(t *testing.T) {
	raw := encodeToBytes(t, samplePayload())
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		var got payload
		if err := Decode(bytes.NewReader(mut), &got); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestDecodeLengthCap(t *testing.T) {
	raw := encodeToBytes(t, samplePayload())
	// Claim an absurd payload length; the reader must refuse before
	// attempting to materialise it.
	binary.LittleEndian.PutUint64(raw[12:20], 1<<50)
	var got payload
	err := Decode(bytes.NewReader(raw), &got)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized declared payload not rejected: %v", err)
	}
	// And an explicit tighter cap rejects otherwise-valid snapshots.
	raw2 := encodeToBytes(t, samplePayload())
	if err := DecodeLimited(bytes.NewReader(raw2), &got, 4); err == nil {
		t.Fatal("payload above explicit cap accepted")
	}
}

func TestDecodeWrongMagicAndVersion(t *testing.T) {
	raw := encodeToBytes(t, samplePayload())
	bad := append([]byte(nil), raw...)
	copy(bad[:8], []byte("NOTACKPT"))
	var got payload
	if err := Decode(bytes.NewReader(bad), &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign magic accepted: %v", err)
	}
	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[8:12], Version+1)
	if err := Decode(bytes.NewReader(bad), &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	var got payload
	err := Load(filepath.Join(t.TempDir(), "absent.ckpt"), &got)
	if err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error %v is not ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("missing file misreported as corruption")
	}
}
