package experiments

import (
	"fmt"
	"io"

	"adafl/internal/core"
	"adafl/internal/fl"
	"adafl/internal/trace"
)

// AblationResult quantifies the design choices DESIGN.md calls out:
// similarity metric, warm-up length, fixed vs adaptive compression, the
// bandwidth term, and the fairness reservation.
type AblationResult struct {
	// Variants maps variant name → (final accuracy, uplink bytes).
	Acc   map[string]float64
	Bytes map[string]int64
	Table *trace.Table
}

// AblationVariant names a configuration mutation.
type AblationVariant struct {
	Name   string
	Mutate func(cfg *core.Config)
}

// AblationVariants returns the studied variants (first entry is the
// reference configuration).
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "adafl (reference)", Mutate: func(*core.Config) {}},
		{Name: "similarity=L2", Mutate: func(c *core.Config) { c.Utility.Metric = core.NegL2 }},
		{Name: "warmup=0", Mutate: func(c *core.Config) { c.Compression.WarmupRounds = 0 }},
		{Name: "warmup=10", Mutate: func(c *core.Config) { c.Compression.WarmupRounds = 10 }},
		{Name: "fixed-ratio", Mutate: func(c *core.Config) {
			mid := c.Compression.MinRatio
			c.Compression.MinRatio = mid
			c.Compression.MaxRatio = mid
		}},
		{Name: "no-bandwidth-term", Mutate: func(c *core.Config) {
			c.Utility.SimWeight, c.Utility.BwWeight = 1, 0
		}},
		{Name: "no-exploration", Mutate: func(c *core.Config) { c.ExploreFrac = 0 }},
		{Name: "explore=0.4", Mutate: func(c *core.Config) { c.ExploreFrac = 0.4 }},
		{Name: "round-robin", Mutate: func(c *core.Config) { c.ExploreFrac = 1 }},
	}
}

// RunVariant executes one ablation variant on synchronous non-IID MNIST,
// returning the averaged learning curve and run statistics.
func RunVariant(p Preset, v AblationVariant) (Curve, RunStats) {
	return runSyncSeeds(p.Seeds, p.Rounds, func(seed uint64) *fl.SyncEngine {
		fed := p.Federation(MNISTTask, false, seed)
		cfg := p.AdaFLConfig(MNISTTask, 210)
		v.Mutate(&cfg)
		cfg.AttachDGC(fed)
		e := fl.NewSyncEngine(fed, fl.FedAvg{}, core.NewSyncPlanner(cfg), seed+6)
		e.EvalEvery = p.EvalEvery
		return e
	})
}

// RunAblations executes every variant on non-IID MNIST.
func RunAblations(p Preset, w io.Writer) *AblationResult {
	res := &AblationResult{Acc: map[string]float64{}, Bytes: map[string]int64{}}
	t := trace.NewTable(fmt.Sprintf("Ablations (scale=%s, non-IID MNIST)", p.Scale),
		"Variant", "Final acc", "Uplink bytes")
	for _, v := range AblationVariants() {
		_, stats := RunVariant(p, v)
		res.Acc[v.Name] = stats.FinalAcc
		res.Bytes[v.Name] = stats.UplinkBytes
		t.AddRow(v.Name, fmt.Sprintf("%.1f%%", 100*stats.FinalAcc), fmtBytes(int(stats.UplinkBytes)))
	}
	res.Table = t
	if w != nil {
		t.Render(w)
	}
	return res
}
