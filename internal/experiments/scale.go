package experiments

import (
	"fmt"
	"io"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/trace"
)

// ScaleResult reproduces the §V scalability claim: AdaFL remains robust
// from 20 to 100 clients, still saving communication vs FedAvg.
type ScaleResult struct {
	ClientCounts []int
	// AdaAcc/BaseAcc and AdaBytes/BaseBytes are indexed by client count.
	AdaAcc, BaseAcc     []float64
	AdaBytes, BaseBytes []int64
	Table               *trace.Table
}

// RunScale executes the scalability sweep.
func RunScale(p Preset, w io.Writer) *ScaleResult {
	res := &ScaleResult{ClientCounts: []int{20, 50, 100}}
	if p.Scale == Tiny {
		res.ClientCounts = []int{20, 50}
	}

	// Large-N sweeps cap the round budget: the point is robustness across
	// federation sizes, not long-horizon convergence.
	rounds := p.Rounds
	if rounds > 30 {
		rounds = 30
	}

	build := func(n int, ada bool, seed uint64) *fl.SyncEngine {
		q := p
		q.Clients = n
		// Keep per-client shard sizes sensible as N grows.
		if q.Samples < n*60 {
			q.Samples = n * 60
		}
		ds := q.NewDataset(MNISTTask, seed)
		train, test := ds.Split(0.8, seed+1)
		parts := dataset.PartitionShards(train, n, 2, seed+2)
		net := netsim.UniformNetwork(n, netsim.WiFiLink, seed+3)
		fed := fl.NewFederation(parts, test, net, q.NewModelFactory(MNISTTask, seed+4), q.Train, seed+5)
		if ada {
			cfg := q.AdaFLConfig(MNISTTask, 210)
			// K scales with the federation: the paper keeps k ≤ N/2.
			cfg.K = n / 2
			cfg.AttachDGC(fed)
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, core.NewSyncPlanner(cfg), seed+6)
			e.EvalEvery = q.EvalEvery
			return e
		}
		e := fl.NewSyncEngine(fed, fl.FedAvg{}, fl.NewFixedRatePlanner(0.5, 1, seed+8), seed+6)
		e.EvalEvery = q.EvalEvery
		return e
	}

	for _, n := range res.ClientCounts {
		n := n
		_, adaStats := runSyncSeeds(p.Seeds, rounds, func(seed uint64) *fl.SyncEngine {
			return build(n, true, seed)
		})
		_, baseStats := runSyncSeeds(p.Seeds, rounds, func(seed uint64) *fl.SyncEngine {
			return build(n, false, seed)
		})
		res.AdaAcc = append(res.AdaAcc, adaStats.FinalAcc)
		res.BaseAcc = append(res.BaseAcc, baseStats.FinalAcc)
		res.AdaBytes = append(res.AdaBytes, adaStats.UplinkBytes)
		res.BaseBytes = append(res.BaseBytes, baseStats.UplinkBytes)
	}

	t := trace.NewTable(fmt.Sprintf("Scalability (scale=%s, non-IID MNIST)", p.Scale),
		"Clients", "FedAvg acc", "AdaFL acc", "FedAvg uplink", "AdaFL uplink", "Saving")
	for i, n := range res.ClientCounts {
		saving := 1 - float64(res.AdaBytes[i])/float64(res.BaseBytes[i])
		t.AddRow(n,
			fmt.Sprintf("%.1f%%", 100*res.BaseAcc[i]),
			fmt.Sprintf("%.1f%%", 100*res.AdaAcc[i]),
			fmtBytes(int(res.BaseBytes[i])),
			fmtBytes(int(res.AdaBytes[i])),
			fmt.Sprintf("%.0f%%", 100*saving))
	}
	res.Table = t
	if w != nil {
		t.Render(w)
	}
	return res
}
