package experiments

import (
	"fmt"
	"io"

	"adafl/internal/core"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/trace"
)

// ProtocolResult compares protocol-level strategies on a heterogeneous
// fleet under a shared simulated-time budget: synchronous FedAvg (blocked
// by stragglers), FedAT's latency tiers, FedAsync, and async AdaFL. This
// extends the paper's evaluation with the protocol-level related work it
// discusses (§II).
type ProtocolResult struct {
	// AccAtHorizon maps protocol → accuracy at the time budget.
	AccAtHorizon map[string]float64
	Bytes        map[string]int64
	Figure       *trace.Figure
	Table        *trace.Table
}

// heterogeneousFleet builds a fleet with a slow third (devices at 1/3
// speed) and an LTE-constrained third.
func heterogeneousFleet(p Preset, seed uint64) *fl.Federation {
	fed := p.Federation(MNISTTask, false, seed)
	for i, c := range fed.Clients {
		if i%3 == 1 {
			c.Device = c.Device.Scaled(1.0 / 3)
		}
		if i%3 == 2 {
			fed.Net.SetLink(i, netsim.LTELink)
		}
	}
	return fed
}

// RunProtocols executes the protocol comparison.
func RunProtocols(p Preset, w io.Writer) *ProtocolResult {
	res := &ProtocolResult{AccAtHorizon: map[string]float64{}, Bytes: map[string]int64{}}
	horizon := p.AsyncHorizon
	fig := trace.NewFigure(fmt.Sprintf("Protocols on a heterogeneous fleet (scale=%s)", p.Scale),
		"time (s)", "test accuracy")

	// Synchronous FedAvg: run rounds until the simulated clock passes the
	// horizon (stragglers stretch every round).
	{
		var curves []Curve
		var bytes int64
		for _, seed := range p.Seeds {
			fed := heterogeneousFleet(p, seed)
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, fl.NewFixedRatePlanner(1, 1, seed+8), seed+6)
			e.EvalEvery = 1
			for e.Now() < horizon && e.Round() < 10*p.Rounds {
				e.RunRound()
			}
			curves = append(curves, asyncCurve(&e.Hist)) // x = sim time
			bytes = e.TotalUplinkBytes()
		}
		curve := averageCurves(curves)
		curve.ToSeries(fig, "FedAvg(sync)")
		res.AccAtHorizon["FedAvg(sync)"] = curve.Final()
		res.Bytes["FedAvg(sync)"] = bytes
	}

	// FedAT: latency tiers.
	{
		var curves []Curve
		var bytes int64
		for _, seed := range p.Seeds {
			fed := heterogeneousFleet(p, seed)
			e := fl.NewFedATEngine(fed, 3, 0.5)
			e.EvalInterval = float64(p.EvalEvery)
			e.Run(horizon)
			curves = append(curves, asyncCurve(&e.Hist))
			bytes = e.TotalUplinkBytes()
		}
		curve := averageCurves(curves)
		curve.ToSeries(fig, "FedAT")
		res.AccAtHorizon["FedAT"] = curve.Final()
		res.Bytes["FedAT"] = bytes
	}

	// FedAsync.
	{
		var curves []Curve
		var bytes int64
		for _, seed := range p.Seeds {
			fed := heterogeneousFleet(p, seed)
			e := fl.NewAsyncEngine(fed, fl.FedAsync{Alpha: 0.5, Decay: 0.5}, fl.AlwaysUpload{})
			e.EvalInterval = float64(p.EvalEvery)
			e.Run(horizon)
			curves = append(curves, asyncCurve(&e.Hist))
			bytes = e.TotalUplinkBytes()
		}
		curve := averageCurves(curves)
		curve.ToSeries(fig, "FedAsync")
		res.AccAtHorizon["FedAsync"] = curve.Final()
		res.Bytes["FedAsync"] = bytes
	}

	// AdaFL (fully async, gated + compressed).
	{
		var curves []Curve
		var bytes int64
		for _, seed := range p.Seeds {
			fed := heterogeneousFleet(p, seed)
			cfg := p.AdaFLConfig(MNISTTask, 105)
			cfg.AttachDGC(fed)
			gate := core.NewAsyncGate(cfg)
			e := fl.NewAsyncEngine(fed, core.AsyncApply{Alpha: cfg.AsyncAlpha, Anchor: cfg.AsyncAnchor, Decay: cfg.AsyncDecay}, gate)
			e.EvalInterval = float64(p.EvalEvery)
			e.Run(horizon)
			curves = append(curves, asyncCurve(&e.Hist))
			bytes = e.TotalUplinkBytes()
		}
		curve := averageCurves(curves)
		curve.ToSeries(fig, "AdaFL")
		res.AccAtHorizon["AdaFL"] = curve.Final()
		res.Bytes["AdaFL"] = bytes
	}

	res.Figure = fig
	t := trace.NewTable("Protocol comparison at equal time budget",
		"Protocol", "Acc @ horizon", "Uplink bytes")
	for _, name := range []string{"FedAvg(sync)", "FedAT", "FedAsync", "AdaFL"} {
		t.AddRow(name,
			fmt.Sprintf("%.1f%%", 100*res.AccAtHorizon[name]),
			fmtBytes(int(res.Bytes[name])))
	}
	res.Table = t
	if w != nil {
		fig.RenderASCII(w, 64, 12)
		t.Render(w)
	}
	return res
}
