package experiments

import (
	"fmt"
	"io"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/fl"
	"adafl/internal/trace"
)

// MethodRow is one line of Table I / Table II.
type MethodRow struct {
	Method string
	// ParticipRate describes client sampling ("0.5" or "adaptive").
	ParticipRate string
	// UpdateFreq is the mean number of client→server updates per run.
	UpdateFreq int
	// IdealUpdates is the full-participation update budget (rounds × N).
	IdealUpdates int
	// CostReductionPct is the uplink-byte saving relative to
	// full-participation dense transmission (negative = saving), matching
	// the paper's "Cost Reduc." column.
	CostReductionPct float64
	// GradMinBytes/GradMaxBytes bound the observed update sizes.
	GradMinBytes, GradMaxBytes int
	// RatioMin/RatioMax bound the compression ratios used.
	RatioMin, RatioMax float64
	// Acc maps "<task>-<dist>" to mean final accuracy.
	Acc map[string]float64
}

// TableResult bundles the rows with a rendered table.
type TableResult struct {
	Rows  []MethodRow
	Table *trace.Table
}

// Row returns the row for a method name, or nil.
func (t *TableResult) Row(method string) *MethodRow {
	for i := range t.Rows {
		if t.Rows[i].Method == method {
			return &t.Rows[i]
		}
	}
	return nil
}

// RunTable1 reproduces Table I: synchronous methods across MNIST and the
// CIFAR stand-in, IID and non-IID.
func RunTable1(p Preset, w io.Writer) *TableResult {
	res := &TableResult{}
	settings := []struct {
		task Task
		iid  bool
	}{
		{MNISTTask, true}, {MNISTTask, false},
		{CIFARTask, true}, {CIFARTask, false},
	}

	for _, m := range SyncMethods() {
		row := MethodRow{Method: m.Name, ParticipRate: "0.5", Acc: map[string]float64{}}
		if m.AdaFL {
			row.ParticipRate = "adaptive"
		}
		totalUpdates, totalIdeal := 0, 0
		var totalBytes, totalIdealBytes int64
		ratioMin, ratioMax := 0.0, 0.0
		gradMin, gradMax := 0, 0
		for _, s := range settings {
			var lastEngine *fl.SyncEngine
			_, stats := runSyncSeeds(p.Seeds, p.Rounds, func(seed uint64) *fl.SyncEngine {
				lastEngine = m.Build(p, s.task, s.iid, seed)
				return lastEngine
			})
			key := fmt.Sprintf("%s-%s", s.task, distLabel(s.iid))
			row.Acc[key] = stats.FinalAcc
			totalUpdates += stats.Updates
			totalIdeal += p.Rounds * p.Clients
			totalBytes += stats.UplinkBytes
			dim := len(lastEngine.Global)
			dense := compress.DenseBytes(dim)
			totalIdealBytes += int64(p.Rounds * p.Clients * dense)
			if planner, ok := lastEngine.Planner.(*core.SyncPlanner); ok {
				tr := planner.RatioStats
				if ratioMax == 0 || tr.MaxRatio > ratioMax {
					ratioMax = tr.MaxRatio
				}
				if ratioMin == 0 || tr.MinRatio < ratioMin {
					ratioMin = tr.MinRatio
				}
				lo := int(float64(dense) / tr.MaxRatio)
				hi := int(float64(dense) / tr.MinRatio)
				if gradMin == 0 || lo < gradMin {
					gradMin = lo
				}
				if hi > gradMax {
					gradMax = hi
				}
			} else {
				ratioMin, ratioMax = 1, 1
				if gradMax < dense {
					gradMax = dense
				}
				if gradMin == 0 || dense < gradMin {
					gradMin = dense
				}
			}
		}
		row.UpdateFreq = totalUpdates / len(settings)
		row.IdealUpdates = totalIdeal / len(settings)
		row.CostReductionPct = -100 * (1 - float64(totalBytes)/float64(totalIdealBytes))
		row.GradMinBytes, row.GradMaxBytes = gradMin, gradMax
		row.RatioMin, row.RatioMax = ratioMin, ratioMax
		res.Rows = append(res.Rows, row)
	}

	res.Table = renderMethodTable("Table I — Synchronous FL", p, res.Rows)
	if w != nil {
		res.Table.Render(w)
	}
	return res
}

// renderMethodTable formats rows in the paper's Table I/II layout.
func renderMethodTable(title string, p Preset, rows []MethodRow) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("%s (scale=%s, %d clients, %d rounds ≅ %d ideal updates)",
			title, p.Scale, p.Clients, p.Rounds, p.Rounds*p.Clients),
		"Method", "Particip.", "Upd.Freq", "Cost Reduc.", "Grad Size", "Ratio",
		"MNIST IID/non-IID", "CIFAR IID/non-IID")
	for _, r := range rows {
		t.AddRow(
			r.Method,
			r.ParticipRate,
			r.UpdateFreq,
			fmt.Sprintf("%.1f%%", r.CostReductionPct),
			fmt.Sprintf("%s-%s", fmtBytes(r.GradMinBytes), fmtBytes(r.GradMaxBytes)),
			fmt.Sprintf("%.0fx-%.0fx", r.RatioMax, r.RatioMin),
			fmt.Sprintf("%.1f%% / %.1f%%", 100*r.Acc["mnist-iid"], 100*r.Acc["mnist-noniid"]),
			fmt.Sprintf("%.1f%% / %.1f%%", 100*r.Acc["cifar-iid"], 100*r.Acc["cifar-noniid"]),
		)
	}
	return t
}

func fmtBytes(b int) string {
	switch {
	case b >= 1e6:
		return fmt.Sprintf("%.2fMB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.0fKB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
