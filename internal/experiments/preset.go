// Package experiments contains one runner per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index), plus the
// ablation studies. Each runner is parameterised by a Scale preset:
//
//   - Tiny: seconds-fast smoke configuration (CI, go test).
//   - Small: the default bench configuration — MLP models on 16×16
//     synthetic data, enough rounds for the paper's qualitative shapes
//     (who wins, by roughly what factor) to emerge.
//   - Full: the paper-faithful configuration — the exact 431k-parameter
//     CNN on 28×28 data, 80 rounds, 10 repetitions. Hours of CPU.
//
// Runners return structured results and render paper-style tables/figures.
package experiments

import (
	"fmt"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// Scale selects an experiment size preset.
type Scale int

// Available scales.
const (
	Tiny Scale = iota
	Small
	Full
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	default:
		return Tiny, fmt.Errorf("experiments: unknown scale %q (tiny|small|full)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return "full"
	}
}

// Preset bundles every knob an experiment runner needs.
type Preset struct {
	Scale Scale
	// Samples is the synthetic dataset size (before the 80/20 split).
	Samples int
	// ImageSize is the square image edge for SynthMNIST/SynthCIFAR.
	ImageSize int
	// CIFARClasses is the class count of the CIFAR stand-in.
	CIFARClasses int
	// Clients is the federation size N.
	Clients int
	// Rounds is the synchronous round budget.
	Rounds int
	// AsyncHorizon is the asynchronous simulated-time budget in seconds.
	AsyncHorizon float64
	// Seeds lists the repetition seeds (results are averaged).
	Seeds []uint64
	// Train is the shared local-training configuration.
	Train fl.TrainConfig
	// UseCNN switches the model zoo from fast MLPs to the paper's
	// convolutional architectures.
	UseCNN bool
	// ResNetForCIFAR selects ResNetLite instead of VGGLite for the CIFAR
	// task when UseCNN is set — the paper uses ResNet-50/CIFAR-10 in the
	// Figure 1 study and VGG-Net/CIFAR-100 in the tables; RunFig1 flips
	// this on.
	ResNetForCIFAR bool
	// EvalEvery controls evaluation frequency (rounds / sim-seconds).
	EvalEvery int
	// DeviceScale multiplies the clients' device throughput. The MLP
	// surrogates are orders of magnitude cheaper than the paper CNN, so
	// Tiny/Small scale the simulated devices down to keep per-round
	// simulated durations (and hence the async timeline) in the same
	// regime as the paper's Raspberry Pi cadence (~1 s per local round).
	DeviceScale float64
}

// PresetFor returns the preset for a scale.
func PresetFor(s Scale) Preset {
	switch s {
	case Tiny:
		return Preset{
			Scale: Tiny, Samples: 600, ImageSize: 16, CIFARClasses: 8,
			Clients: 10, Rounds: 15, AsyncHorizon: 10,
			Seeds:       []uint64{11},
			Train:       fl.TrainConfig{LocalSteps: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
			EvalEvery:   5,
			DeviceScale: 0.002,
		}
	case Small:
		return Preset{
			Scale: Small, Samples: 1500, ImageSize: 16, CIFARClasses: 10,
			Clients: 10, Rounds: 60, AsyncHorizon: 40,
			Seeds:       []uint64{11, 23},
			Train:       fl.TrainConfig{LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9},
			EvalEvery:   5,
			DeviceScale: 0.002,
		}
	default:
		return Preset{
			Scale: Full, Samples: 12000, ImageSize: 28, CIFARClasses: 20,
			Clients: 10, Rounds: 80, AsyncHorizon: 2000,
			Seeds:  []uint64{11, 23, 37, 41, 53, 61, 71, 83, 97, 101},
			Train:  fl.TrainConfig{LocalSteps: 8, BatchSize: 32, LR: 0.05, Momentum: 0.9},
			UseCNN: true, EvalEvery: 5, DeviceScale: 1,
		}
	}
}

// Task identifies a dataset/model pairing.
type Task int

// Tasks mirrored from the paper.
const (
	// MNISTTask is SynthMNIST with the CNN (Full) or image MLP (Tiny/Small).
	MNISTTask Task = iota
	// CIFARTask is SynthCIFAR with ResNetLite/VGGLite (Full) or MLP.
	CIFARTask
)

func (t Task) String() string {
	if t == MNISTTask {
		return "mnist"
	}
	return "cifar"
}

// NewModelFactory returns the deterministic model constructor for a task
// under this preset.
func (p Preset) NewModelFactory(task Task, seed uint64) func() *nn.Model {
	if p.UseCNN {
		if task == MNISTTask {
			return func() *nn.Model { return nn.NewPaperCNN(stats.NewRNG(seed)) }
		}
		size := p.ImageSize
		classes := p.CIFARClasses
		if p.ResNetForCIFAR {
			return func() *nn.Model { return nn.NewResNetLite(3, size, classes, stats.NewRNG(seed)) }
		}
		return func() *nn.Model { return nn.NewVGGLite(3, size, classes, stats.NewRNG(seed)) }
	}
	size := p.ImageSize
	if task == MNISTTask {
		return func() *nn.Model {
			return nn.NewImageMLP([]int{1, size, size}, []int{32}, 10, stats.NewRNG(seed))
		}
	}
	classes := p.CIFARClasses
	return func() *nn.Model {
		return nn.NewImageMLP([]int{3, size, size}, []int{48}, classes, stats.NewRNG(seed))
	}
}

// NewDataset synthesises the task's dataset.
func (p Preset) NewDataset(task Task, seed uint64) *dataset.Dataset {
	if task == MNISTTask {
		return dataset.SynthMNIST(p.Samples, p.ImageSize, seed)
	}
	return dataset.SynthCIFAR(p.Samples, p.ImageSize, p.CIFARClasses, seed)
}

// Federation builds a complete federation for the task: 80/20 train/test
// split, IID or 2-shard non-IID partition, uniform WiFi-class links.
func (p Preset) Federation(task Task, iid bool, seed uint64) *fl.Federation {
	ds := p.NewDataset(task, seed)
	train, test := ds.Split(0.8, seed+1)
	var parts []*dataset.Dataset
	if iid {
		parts = dataset.PartitionIID(train, p.Clients, seed+2)
	} else {
		parts = dataset.PartitionShards(train, p.Clients, 2, seed+2)
	}
	net := netsim.UniformNetwork(p.Clients, netsim.WiFiLink, seed+3)
	fed := fl.NewFederation(parts, test, net, p.NewModelFactory(task, seed+4), p.Train, seed+5)
	if p.DeviceScale != 1 && p.DeviceScale != 0 {
		for _, c := range fed.Clients {
			c.Device = c.Device.Scaled(p.DeviceScale)
		}
	}
	return fed
}

// AdaFLConfig returns the AdaFL configuration for this preset, with the
// compression ladder scaled to the model's gradient-skew regime.
func (p Preset) AdaFLConfig(task Task, maxRatio float64) core.Config {
	cfg := core.DefaultConfig()
	if maxRatio > 0 {
		cfg.Compression.MaxRatio = maxRatio
	}
	dim := p.NewModelFactory(task, 1)().NumParams()
	cfg.ScaleRatiosForModel(dim)
	if p.Scale == Tiny {
		cfg.Compression.WarmupRounds = 2
	}
	return cfg
}

func distLabel(iid bool) string {
	if iid {
		return "iid"
	}
	return "noniid"
}
