package experiments

import (
	"fmt"
	"io"
	"time"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/device"
	"adafl/internal/fl"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

// OverheadResult reproduces the §V overhead study (Q3): the relative CPU
// cycle expansion that AdaFL's utility scoring and gradient compression
// add on a Raspberry Pi class device, using the paper CNN's 431k-dim
// gradient. Two independent measurements are reported:
//
//   - a perf-style simulated cycle account over a full AdaFL sync run
//     (training cycles vs component cycles, via the device cost model),
//   - real wall-clock microbenchmarks of the actual Go implementations of
//     the utility score and DGC encode on a 431k-dim vector.
type OverheadResult struct {
	// BaselineCycles are the simulated training cycles of the run.
	BaselineCycles float64
	// UtilityCycles / CompressCycles are the added component cycles.
	UtilityCycles, CompressCycles float64
	// UtilityExpansionPct is the paper's headline metric (~0.05%).
	UtilityExpansionPct  float64
	CompressExpansionPct float64
	// WallUtility / WallDGC are measured wall-clock costs per invocation
	// of the real implementation at the paper's gradient dimension.
	WallUtility, WallDGC time.Duration
	Table                *trace.Table
}

// RunOverhead executes the overhead study.
func RunOverhead(p Preset, w io.Writer) *OverheadResult {
	res := &OverheadResult{}
	profile := device.RaspberryPi4

	// Part 1: simulated cycle accounting over an AdaFL sync run. The run
	// (at the preset's scale) provides realistic event counts — how many
	// utility scores and encodes happen per training round — while the
	// per-event cycle costs are normalised to the paper's workload: the
	// 431k-parameter CNN at the Full preset's local batch volume. This is
	// the regime the paper's 0.05% figure describes; at Tiny/Small the
	// surrogate MLP's training is so cheap that a dot product would look
	// misleadingly expensive.
	const paperDim = 431080
	paperCNNFLOPs := 2.38e6 // PaperCNN forward FLOPs per 28×28 sample
	fullTrain := PresetFor(Full).Train
	samplesPerRound := fullTrain.LocalSteps * fullTrain.BatchSize

	perf := device.NewPerfMonitor()
	seed := p.Seeds[0]
	fed := p.Federation(MNISTTask, false, seed)
	for _, c := range fed.Clients {
		c.Device = profile
	}
	cfg := p.AdaFLConfig(MNISTTask, 210)
	cfg.AttachDGC(fed)
	planner := core.NewSyncPlanner(cfg)
	planner.Perf = perf
	planner.PerfProfile = profile
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, seed+6)
	e.EvalEvery = 0 // evaluation is server-side; exclude from device cycles
	actualDim := len(e.Global)
	for r := 0; r < p.Rounds; r++ {
		before := e.TotalUpdates()
		e.RunRound()
		trained := e.TotalUpdates() - before
		perf.Record("training", profile.TrainCycles(paperCNNFLOPs, samplesPerRound)*float64(trained))
	}
	// Rescale the per-event component cycles (recorded at the surrogate
	// model's dimension, linear in dim) to the paper CNN's dimension.
	dimScale := float64(paperDim) / float64(actualDim)
	res.BaselineCycles = perf.Get("training")
	res.UtilityCycles = perf.Get("utility-score") * dimScale
	res.CompressCycles = perf.Get("dgc-encode") * dimScale
	if res.BaselineCycles > 0 {
		res.UtilityExpansionPct = 100 * res.UtilityCycles / res.BaselineCycles
		res.CompressExpansionPct = 100 * res.CompressCycles / res.BaselineCycles
	}

	// Part 2: wall-clock microbenchmarks of the real code paths at the
	// paper's gradient dimension (431,080 parameters).
	rng := stats.NewRNG(42)
	g := make([]float64, paperDim)
	ref := make([]float64, paperDim)
	for i := range g {
		g[i] = rng.Norm()
		ref[i] = rng.Norm()
	}
	util := core.DefaultUtility()
	res.WallUtility = timeIt(func() { util.Score(1e6, 1e6, g, ref) })
	dgc := compress.NewDGC(0, 10)
	res.WallDGC = timeIt(func() { dgc.Encode(g, 210) })

	t := trace.NewTable(
		fmt.Sprintf("Overhead (scale=%s, device=%s, gradient dim for wall-clock=%d)",
			p.Scale, profile.Name, paperDim),
		"Component", "Sim cycles", "Expansion vs training", "Wall-clock @431k dim")
	t.AddRow("training (baseline)", fmt.Sprintf("%.3g", res.BaselineCycles), "-", "-")
	t.AddRow("utility score", fmt.Sprintf("%.3g", res.UtilityCycles),
		fmt.Sprintf("%.4f%%", res.UtilityExpansionPct), res.WallUtility.String())
	t.AddRow("gradient compression", fmt.Sprintf("%.3g", res.CompressCycles),
		fmt.Sprintf("%.4f%%", res.CompressExpansionPct), res.WallDGC.String())
	res.Table = t
	if w != nil {
		t.Render(w)
	}
	return res
}

// timeIt measures the mean duration of fn over a few repetitions.
func timeIt(fn func()) time.Duration {
	const reps = 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / reps
}
