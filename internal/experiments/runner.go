package experiments

import (
	"adafl/internal/fl"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

// Curve is an averaged learning curve: x-positions (rounds or simulated
// seconds) with mean accuracy across the preset's seeds.
type Curve struct {
	X, Y []float64
}

// ToSeries copies the curve into a named figure series.
func (c Curve) ToSeries(fig *trace.Figure, name string) {
	s := fig.AddSeries(name)
	for i := range c.X {
		s.Add(c.X[i], c.Y[i])
	}
}

// Final returns the last y value (0 for an empty curve).
func (c Curve) Final() float64 {
	if len(c.Y) == 0 {
		return 0
	}
	return c.Y[len(c.Y)-1]
}

// averageCurves aligns per-seed curves by index and averages the y values
// (x is taken from the first curve; seeds share eval schedules).
func averageCurves(curves []Curve) Curve {
	if len(curves) == 0 {
		return Curve{}
	}
	n := len(curves[0].X)
	for _, c := range curves {
		if len(c.X) < n {
			n = len(c.X)
		}
	}
	out := Curve{X: make([]float64, n), Y: make([]float64, n)}
	copy(out.X, curves[0].X[:n])
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, c := range curves {
			sum += c.Y[i]
		}
		out.Y[i] = sum / float64(len(curves))
	}
	return out
}

// syncCurve extracts the accuracy-vs-round curve from a sync history.
func syncCurve(h *fl.History) Curve {
	var c Curve
	for _, r := range h.Rows {
		if r.TestAcc == r.TestAcc { // not NaN
			c.X = append(c.X, float64(r.Round))
			c.Y = append(c.Y, r.TestAcc)
		}
	}
	return c
}

// asyncCurve extracts the accuracy-vs-time curve from an async history.
func asyncCurve(h *fl.History) Curve {
	var c Curve
	for _, r := range h.Rows {
		if r.TestAcc == r.TestAcc {
			c.X = append(c.X, r.Time)
			c.Y = append(c.Y, r.TestAcc)
		}
	}
	return c
}

// RunStats captures the communication-side outcome of one run.
type RunStats struct {
	FinalAcc    float64
	BestAcc     float64
	UplinkBytes int64
	Updates     int
}

// syncRun executes one synchronous configuration and returns its history
// plus stats. build creates the engine from a fresh federation for a seed.
type syncRun struct {
	hist  *fl.History
	stats RunStats
}

// runSyncSeeds executes build for every seed, returning the averaged curve
// and mean stats.
func runSyncSeeds(seeds []uint64, rounds int, build func(seed uint64) *fl.SyncEngine) (Curve, RunStats) {
	var curves []Curve
	var agg RunStats
	for _, seed := range seeds {
		e := build(seed)
		e.RunRounds(rounds)
		curves = append(curves, syncCurve(&e.Hist))
		agg.FinalAcc += e.Hist.FinalAcc()
		agg.BestAcc += e.Hist.BestAcc()
		agg.UplinkBytes += e.TotalUplinkBytes()
		agg.Updates += e.TotalUpdates()
	}
	n := float64(len(seeds))
	agg.FinalAcc /= n
	agg.BestAcc /= n
	agg.UplinkBytes = int64(float64(agg.UplinkBytes) / n)
	agg.Updates = int(float64(agg.Updates) / n)
	return averageCurves(curves), agg
}

// runAsyncSeeds mirrors runSyncSeeds for the asynchronous engine.
func runAsyncSeeds(seeds []uint64, horizon float64, build func(seed uint64) *fl.AsyncEngine) (Curve, RunStats) {
	var curves []Curve
	var agg RunStats
	for _, seed := range seeds {
		e := build(seed)
		e.Run(horizon)
		curves = append(curves, asyncCurve(&e.Hist))
		agg.FinalAcc += e.Hist.FinalAcc()
		agg.BestAcc += e.Hist.BestAcc()
		agg.UplinkBytes += e.TotalUplinkBytes()
		agg.Updates += e.TotalUpdates()
	}
	n := float64(len(seeds))
	agg.FinalAcc /= n
	agg.BestAcc /= n
	agg.UplinkBytes = int64(float64(agg.UplinkBytes) / n)
	agg.Updates = int(float64(agg.Updates) / n)
	return averageCurves(curves), agg
}

// unreliableSet deterministically picks ⌈frac·N⌉ unreliable clients.
func unreliableSet(n int, frac float64, seed uint64) map[int]bool {
	k := int(frac*float64(n) + 0.5)
	out := make(map[int]bool, k)
	perm := stats.NewRNG(seed).Perm(n)
	for _, idx := range perm[:k] {
		out[idx] = true
	}
	return out
}
