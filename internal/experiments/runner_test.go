package experiments

import (
	"math"
	"testing"

	"adafl/internal/fl"
	"adafl/internal/trace"
)

func TestAverageCurves(t *testing.T) {
	a := Curve{X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}}
	b := Curve{X: []float64{1, 2, 3}, Y: []float64{0.3, 0.4, 0.5}}
	avg := averageCurves([]Curve{a, b})
	want := []float64{0.2, 0.3, 0.4}
	for i, w := range want {
		if math.Abs(avg.Y[i]-w) > 1e-12 {
			t.Fatalf("avg[%d] = %v, want %v", i, avg.Y[i], w)
		}
	}
	if avg.X[2] != 3 {
		t.Fatal("x positions not preserved")
	}
}

func TestAverageCurvesRagged(t *testing.T) {
	a := Curve{X: []float64{1, 2, 3}, Y: []float64{1, 1, 1}}
	b := Curve{X: []float64{1, 2}, Y: []float64{3, 3}}
	avg := averageCurves([]Curve{a, b})
	if len(avg.X) != 2 {
		t.Fatalf("ragged average length %d, want 2 (shortest)", len(avg.X))
	}
	if avg.Y[0] != 2 {
		t.Fatalf("ragged average value %v", avg.Y[0])
	}
}

func TestAverageCurvesEmpty(t *testing.T) {
	avg := averageCurves(nil)
	if avg.Final() != 0 || len(avg.X) != 0 {
		t.Fatal("empty average not zero")
	}
}

func TestCurveToSeriesAndFinal(t *testing.T) {
	c := Curve{X: []float64{1, 2}, Y: []float64{0.5, 0.9}}
	fig := trace.NewFigure("t", "x", "y")
	c.ToSeries(fig, "s")
	if fig.Series[0].Len() != 2 {
		t.Fatal("series not filled")
	}
	if c.Final() != 0.9 {
		t.Fatalf("Final = %v", c.Final())
	}
}

func TestSyncAndAsyncCurveExtraction(t *testing.T) {
	h := &fl.History{}
	h.Add(fl.RoundStats{Round: 1, Time: 0.5, TestAcc: math.NaN()})
	h.Add(fl.RoundStats{Round: 2, Time: 1.0, TestAcc: 0.4})
	h.Add(fl.RoundStats{Round: 3, Time: 1.5, TestAcc: 0.6})
	sc := syncCurve(h)
	if len(sc.X) != 2 || sc.X[0] != 2 || sc.Y[1] != 0.6 {
		t.Fatalf("sync curve %+v", sc)
	}
	ac := asyncCurve(h)
	if len(ac.X) != 2 || ac.X[0] != 1.0 {
		t.Fatalf("async curve %+v", ac)
	}
}

func TestUnreliableSetSizeAndDeterminism(t *testing.T) {
	a := unreliableSet(10, 0.2, 7)
	if len(a) != 2 {
		t.Fatalf("size %d, want 2", len(a))
	}
	b := unreliableSet(10, 0.2, 7)
	for k := range a {
		if !b[k] {
			t.Fatal("unreliable set not deterministic")
		}
	}
	if len(unreliableSet(10, 0, 7)) != 0 {
		t.Fatal("zero fraction produced members")
	}
}

func TestRunSyncSeedsAveragesStats(t *testing.T) {
	p := tinyPreset()
	p.Rounds = 3
	p.Seeds = []uint64{1, 2}
	curve, stats := runSyncSeeds(p.Seeds, p.Rounds, func(seed uint64) *fl.SyncEngine {
		fed := p.Federation(MNISTTask, true, seed)
		e := fl.NewSyncEngine(fed, fl.FedAvg{}, fl.NewFixedRatePlanner(1, 1, seed), seed)
		e.EvalEvery = 1
		return e
	})
	if len(curve.X) != 3 {
		t.Fatalf("curve length %d", len(curve.X))
	}
	if stats.Updates != 3*p.Clients {
		t.Fatalf("averaged updates %d, want %d", stats.Updates, 3*p.Clients)
	}
	if stats.UplinkBytes == 0 || stats.FinalAcc == 0 {
		t.Fatal("stats not populated")
	}
}
