package experiments

import (
	"fmt"
	"io"

	"adafl/internal/fl"
	"adafl/internal/trace"
)

// Fig1Result reproduces Figure 1: the empirical study of FL resilience.
// Panels (a)–(h) are synchronous (accuracy vs round) over
// {task} × {distribution} × {dropout, data loss} with curves at 0/10/20/50%
// unreliable clients; panels (i)–(l) are asynchronous (accuracy vs time)
// with curves {baseline, 20% dropout, 20% stale (3× slower)}.
type Fig1Result struct {
	Panels []*trace.Figure
	// Insight1Holds: ≤20% dropout costs little accuracy (sync).
	Insight1Gap float64
	// Insight2Holds: staleness hurts more than dropout (async).
	StaleGap, DropGap float64
}

// RunFig1 executes the empirical study at the given preset.
func RunFig1(p Preset, w io.Writer) *Fig1Result {
	res := &Fig1Result{}
	// The paper's Figure 1 pairs the CNN/MNIST task with ResNet-50 on
	// CIFAR-10 (the tables use VGG); select the residual stand-in here.
	p.ResNetForCIFAR = true
	fracs := []float64{0, 0.1, 0.2, 0.5}

	panel := 'a'
	// Synchronous panels.
	for _, task := range []Task{MNISTTask, CIFARTask} {
		for _, iid := range []bool{true, false} {
			for _, mode := range []fl.UnreliableMode{fl.ModeDropout, fl.ModeDataLoss} {
				modeName := "dropout"
				if mode == fl.ModeDataLoss {
					modeName = "dataloss"
				}
				fig := trace.NewFigure(
					fmt.Sprintf("Fig1(%c) sync %s %s %s", panel, task, distLabel(iid), modeName),
					"round", "test accuracy")
				var curve0, curve20 Curve
				for _, frac := range fracs {
					frac := frac
					curve, _ := runSyncSeeds(p.Seeds, p.Rounds, func(seed uint64) *fl.SyncEngine {
						fed := p.Federation(task, iid, seed)
						planner := &fl.UnreliablePlanner{
							Unreliable: unreliableSet(p.Clients, frac, seed+77),
							Mode:       mode,
							Period:     2,
						}
						e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, seed+6)
						e.EvalEvery = p.EvalEvery
						return e
					})
					curve.ToSeries(fig, fmt.Sprintf("%.0f%%", frac*100))
					if frac == 0 {
						curve0 = curve
					}
					if frac == 0.2 {
						curve20 = curve
					}
				}
				if task == MNISTTask && !iid && mode == fl.ModeDropout {
					res.Insight1Gap = curve0.Final() - curve20.Final()
				}
				res.Panels = append(res.Panels, fig)
				panel++
			}
		}
	}

	// Asynchronous panels: staleness (3× slower devices) vs dropout.
	for _, task := range []Task{MNISTTask, CIFARTask} {
		for _, iid := range []bool{true, false} {
			fig := trace.NewFigure(
				fmt.Sprintf("Fig1(%c) async %s %s", panel, task, distLabel(iid)),
				"time (s)", "test accuracy")
			variants := []struct {
				name  string
				frac  float64
				stale bool
			}{
				{"baseline", 0, false},
				{"dropout20%", 0.2, false},
				{"stale20%", 0.2, true},
			}
			var base, drop, stale Curve
			for _, v := range variants {
				v := v
				curve, _ := runAsyncSeeds(p.Seeds, p.AsyncHorizon, func(seed uint64) *fl.AsyncEngine {
					fed := p.Federation(task, iid, seed)
					unrel := unreliableSet(p.Clients, v.frac, seed+77)
					e := fl.NewAsyncEngine(fed, fl.FedAsync{Alpha: 0.5, Decay: 0.5}, fl.AlwaysUpload{})
					e.EvalInterval = float64(p.EvalEvery)
					if v.stale {
						for i := range unrel {
							fed.Clients[i].Device = fed.Clients[i].Device.Scaled(1.0 / 3)
						}
					} else {
						e.Inactive = unrel
					}
					return e
				})
				curve.ToSeries(fig, v.name)
				switch v.name {
				case "baseline":
					base = curve
				case "dropout20%":
					drop = curve
				case "stale20%":
					stale = curve
				}
			}
			if task == MNISTTask && !iid {
				res.DropGap = base.Final() - drop.Final()
				res.StaleGap = base.Final() - stale.Final()
			}
			res.Panels = append(res.Panels, fig)
			panel++
		}
	}

	if w != nil {
		for _, fig := range res.Panels {
			fig.RenderASCII(w, 60, 10)
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "Insight 1 (sync, mnist non-IID): 20%% dropout accuracy gap = %.3f\n", res.Insight1Gap)
		fmt.Fprintf(w, "Insight 2 (async, mnist non-IID): dropout gap = %.3f, staleness gap = %.3f\n",
			res.DropGap, res.StaleGap)
	}
	return res
}
