package experiments

import (
	"fmt"
	"io"

	"adafl/internal/fl"
	"adafl/internal/trace"
)

// Fig3Result reproduces Figure 3: AdaFL vs baselines on MNIST, four panels
// — (a) sync IID, (b) sync non-IID (accuracy vs round), (c) async IID,
// (d) async non-IID (accuracy vs simulated time).
type Fig3Result struct {
	Panels []*trace.Figure
	// FinalAcc[panel][method] records each method's endpoint accuracy.
	FinalAcc []map[string]float64
}

// RunFig3 executes the comparison at the given preset.
func RunFig3(p Preset, w io.Writer) *Fig3Result {
	res := &Fig3Result{}
	task := MNISTTask

	panels := []struct {
		name  string
		iid   bool
		async bool
	}{
		{"Fig3(a) sync IID", true, false},
		{"Fig3(b) sync non-IID", false, false},
		{"Fig3(c) async IID", true, true},
		{"Fig3(d) async non-IID", false, true},
	}
	for _, panel := range panels {
		xlabel := "round"
		if panel.async {
			xlabel = "time (s)"
		}
		fig := trace.NewFigure(panel.name, xlabel, "test accuracy")
		finals := map[string]float64{}
		if !panel.async {
			for _, m := range SyncMethods() {
				m := m
				curve, _ := runSyncSeeds(p.Seeds, p.Rounds, func(seed uint64) *fl.SyncEngine {
					return m.Build(p, task, panel.iid, seed)
				})
				curve.ToSeries(fig, m.Name)
				finals[m.Name] = curve.Final()
			}
		} else {
			for _, m := range AsyncMethods() {
				m := m
				curve, _ := runAsyncSeeds(p.Seeds, p.AsyncHorizon, func(seed uint64) *fl.AsyncEngine {
					return m.Build(p, task, panel.iid, seed)
				})
				curve.ToSeries(fig, m.Name)
				finals[m.Name] = curve.Final()
			}
		}
		res.Panels = append(res.Panels, fig)
		res.FinalAcc = append(res.FinalAcc, finals)
	}

	if w != nil {
		for i, fig := range res.Panels {
			fig.RenderASCII(w, 64, 12)
			fmt.Fprintf(w, "  finals: %v\n\n", res.FinalAcc[i])
		}
	}
	return res
}
