package experiments

import (
	"strings"
	"testing"
)

func TestRunCodecsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.Rounds = 10
	var sb strings.Builder
	res := RunCodecs(p, &sb)
	if len(res.Acc) != 6 {
		t.Fatalf("codec count %d", len(res.Acc))
	}
	// Identity is exact; every lossy codec has nonzero one-shot error.
	if res.Err["identity"] != 0 {
		t.Fatalf("identity error %v", res.Err["identity"])
	}
	for _, name := range []string{"topk@8x", "randomk@8x", "qsgd-4bit", "terngrad"} {
		if res.Err[name] <= 0 {
			t.Errorf("%s: zero one-shot error", name)
		}
	}
	// Identity costs the most bytes.
	for name, b := range res.Bytes {
		if name != "identity" && b >= res.Bytes["identity"] {
			t.Errorf("%s bytes %d not below identity %d", name, b, res.Bytes["identity"])
		}
	}
	if !strings.Contains(sb.String(), "Codec comparison") {
		t.Fatal("table missing")
	}
}

func TestRunDynamicSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.Rounds = 12
	res := RunDynamic(p, nil)
	for _, name := range []string{"fedavg-dense", "static-dgc", "adafl"} {
		if _, ok := res.Acc[name]; !ok {
			t.Fatalf("variant %s missing", name)
		}
		if res.SimTime[name] <= 0 {
			t.Fatalf("variant %s has no simulated time", name)
		}
	}
	// The adaptive strategy must transmit fewer bytes than dense FedAvg.
	if res.Bytes["adafl"] >= res.Bytes["fedavg-dense"] {
		t.Fatalf("adafl bytes %d not below dense %d",
			res.Bytes["adafl"], res.Bytes["fedavg-dense"])
	}
}

func TestRunProtocolsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.AsyncHorizon = 8
	var sb strings.Builder
	res := RunProtocols(p, &sb)
	for _, name := range []string{"FedAvg(sync)", "FedAT", "FedAsync", "AdaFL"} {
		if _, ok := res.AccAtHorizon[name]; !ok {
			t.Fatalf("protocol %s missing", name)
		}
	}
	if len(res.Figure.Series) != 4 {
		t.Fatalf("figure series %d", len(res.Figure.Series))
	}
	if !strings.Contains(sb.String(), "Protocol comparison") {
		t.Fatal("table missing")
	}
}
