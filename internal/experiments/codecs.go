package experiments

import (
	"fmt"
	"io"

	"adafl/internal/compress"
	"adafl/internal/fl"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

// CodecResult compares the gradient codecs (the model-level related-work
// baselines) on two axes: single-shot reconstruction error on a real
// gradient, and end-to-end FL accuracy at a matched byte budget.
type CodecResult struct {
	// Err maps codec → one-shot relative L2 error at the reference ratio.
	Err map[string]float64
	// Acc / Bytes map codec → end-to-end accuracy and uplink volume.
	Acc   map[string]float64
	Bytes map[string]int64
	Table *trace.Table
}

// codecUnderTest pairs a display name with a per-client codec factory.
type codecUnderTest struct {
	name string
	make func(seed uint64) compress.Codec
	// ratio is the requested compression ratio (ignored by fixed-rate
	// quantizers).
	ratio float64
}

func codecsUnderTest() []codecUnderTest {
	return []codecUnderTest{
		{"identity", func(uint64) compress.Codec { return compress.Identity{} }, 1},
		{"topk@8x", func(uint64) compress.Codec { return &compress.TopK{} }, 8},
		{"randomk@8x", func(seed uint64) compress.Codec { return compress.NewRandomK(stats.NewRNG(seed)) }, 8},
		{"dgc@8x", func(uint64) compress.Codec { return &compress.DGC{ClipNorm: 10, MsgClipFactor: 2} }, 8},
		{"qsgd-4bit", func(seed uint64) compress.Codec { return compress.NewQSGD(7, stats.NewRNG(seed)) }, 0},
		{"terngrad", func(seed uint64) compress.Codec { return compress.NewTernGrad(stats.NewRNG(seed)) }, 0},
	}
}

// RunCodecs executes the codec comparison on non-IID MNIST.
func RunCodecs(p Preset, w io.Writer) *CodecResult {
	res := &CodecResult{Err: map[string]float64{}, Acc: map[string]float64{}, Bytes: map[string]int64{}}

	// One-shot error: encode a genuine first-round gradient.
	fed := p.Federation(MNISTTask, false, p.Seeds[0])
	global := fed.NewModel().ParamVector()
	delta, _ := fed.Clients[0].TrainRound(global, nil)
	for _, c := range codecsUnderTest() {
		res.Err[c.name] = compress.ErrorNorm(c.make(12345), delta, c.ratio)
	}

	// End-to-end: full participation, FedAvg, each codec at its ratio.
	for _, c := range codecsUnderTest() {
		c := c
		_, stats := runSyncSeeds(p.Seeds, p.Rounds, func(seed uint64) *fl.SyncEngine {
			f := p.Federation(MNISTTask, false, seed)
			for i, cl := range f.Clients {
				cl.Codec = c.make(seed + uint64(i)*31)
			}
			e := fl.NewSyncEngine(f, fl.FedAvg{}, fl.NewFixedRatePlanner(1, c.ratio, seed+8), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		})
		res.Acc[c.name] = stats.FinalAcc
		res.Bytes[c.name] = stats.UplinkBytes
	}

	t := trace.NewTable(fmt.Sprintf("Codec comparison (scale=%s, non-IID MNIST, full participation)", p.Scale),
		"Codec", "One-shot rel. error", "Final acc", "Uplink bytes")
	for _, c := range codecsUnderTest() {
		t.AddRow(c.name,
			fmt.Sprintf("%.3f", res.Err[c.name]),
			fmt.Sprintf("%.1f%%", 100*res.Acc[c.name]),
			fmtBytes(int(res.Bytes[c.name])))
	}
	res.Table = t
	if w != nil {
		t.Render(w)
	}
	return res
}
