package experiments

import (
	"adafl/internal/core"
	"adafl/internal/fl"
)

// SyncMethod is one row of Table I: a named builder producing a ready
// synchronous engine for a (task, distribution, seed).
type SyncMethod struct {
	Name  string
	Build func(p Preset, task Task, iid bool, seed uint64) *fl.SyncEngine
	// AdaFL reports whether this is the adaptive method (its table row
	// carries the dynamic participation/ratio columns).
	AdaFL bool
}

// SyncMethods returns the paper's synchronous lineup: FedAvg, FedAdam,
// FedProx, SCAFFOLD at participation rate 0.5, and AdaFL.
func SyncMethods() []SyncMethod {
	rate := 0.5
	return []SyncMethod{
		{Name: "FedAvg", Build: func(p Preset, task Task, iid bool, seed uint64) *fl.SyncEngine {
			fed := p.Federation(task, iid, seed)
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, fl.NewFixedRatePlanner(rate, 1, seed+8), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
		{Name: "FedAdam", Build: func(p Preset, task Task, iid bool, seed uint64) *fl.SyncEngine {
			fed := p.Federation(task, iid, seed)
			e := fl.NewSyncEngine(fed, fl.NewFedAdam(0.02), fl.NewFixedRatePlanner(rate, 1, seed+8), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
		{Name: "FedProx", Build: func(p Preset, task Task, iid bool, seed uint64) *fl.SyncEngine {
			fed := p.Federation(task, iid, seed)
			for _, c := range fed.Clients {
				c.Cfg.ProxMu = 0.01
			}
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, fl.NewFixedRatePlanner(rate, 1, seed+8), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
		{Name: "SCAFFOLD", Build: func(p Preset, task Task, iid bool, seed uint64) *fl.SyncEngine {
			fed := p.Federation(task, iid, seed)
			for _, c := range fed.Clients {
				c.Cfg.Scaffold = true
				// SCAFFOLD's control-variate derivation assumes plain SGD;
				// client momentum inflates c_i by ~1/(1-m) and diverges.
				c.Cfg.Momentum = 0
			}
			e := fl.NewSyncEngine(fed, fl.NewScaffold(1, p.Clients), fl.NewFixedRatePlanner(rate, 1, seed+8), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
		{Name: "AdaFL", AdaFL: true, Build: func(p Preset, task Task, iid bool, seed uint64) *fl.SyncEngine {
			fed := p.Federation(task, iid, seed)
			cfg := p.AdaFLConfig(task, 210)
			cfg.AttachDGC(fed)
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, core.NewSyncPlanner(cfg), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
	}
}

// AsyncMethod is one row of Table II.
type AsyncMethod struct {
	Name  string
	Build func(p Preset, task Task, iid bool, seed uint64) *fl.AsyncEngine
	AdaFL bool
}

// AsyncMethods returns the asynchronous lineup: FedAsync and FedBuff at
// the paper's fixed participation rate 0.5 (half the clients are active),
// and fully-asynchronous AdaFL with utility gating over all clients.
func AsyncMethods() []AsyncMethod {
	return []AsyncMethod{
		{Name: "FedAsync", Build: func(p Preset, task Task, iid bool, seed uint64) *fl.AsyncEngine {
			fed := p.Federation(task, iid, seed)
			e := fl.NewAsyncEngine(fed, fl.FedAsync{Alpha: 0.5, Decay: 0.5}, fl.AlwaysUpload{})
			e.EvalInterval = float64(p.EvalEvery)
			e.Inactive = halfInactive(p.Clients, seed)
			return e
		}},
		{Name: "FedBuff", Build: func(p Preset, task Task, iid bool, seed uint64) *fl.AsyncEngine {
			fed := p.Federation(task, iid, seed)
			e := fl.NewAsyncEngine(fed, fl.NewFedBuff(3, 1), fl.AlwaysUpload{})
			e.EvalInterval = float64(p.EvalEvery)
			e.Inactive = halfInactive(p.Clients, seed)
			return e
		}},
		{Name: "AdaFL", AdaFL: true, Build: func(p Preset, task Task, iid bool, seed uint64) *fl.AsyncEngine {
			fed := p.Federation(task, iid, seed)
			cfg := p.AdaFLConfig(task, 105)
			cfg.AttachDGC(fed)
			gate := core.NewAsyncGate(cfg)
			e := fl.NewAsyncEngine(fed, core.AsyncApply{Alpha: cfg.AsyncAlpha, Anchor: cfg.AsyncAnchor, Decay: cfg.AsyncDecay}, gate)
			e.EvalInterval = float64(p.EvalEvery)
			return e
		}},
	}
}

// halfInactive deactivates half the clients, reproducing the baselines'
// fixed participation rate r_p = 0.5.
func halfInactive(n int, seed uint64) map[int]bool {
	return unreliableSet(n, 0.5, seed+99)
}

// DenseFedAsyncAllActive builds the normalisation baseline for Table II's
// cost columns: every client active, dense uploads.
func DenseFedAsyncAllActive(p Preset, task Task, iid bool, seed uint64) *fl.AsyncEngine {
	fed := p.Federation(task, iid, seed)
	e := fl.NewAsyncEngine(fed, fl.FedAsync{Alpha: 0.5, Decay: 0.5}, fl.AlwaysUpload{})
	e.EvalInterval = float64(p.EvalEvery)
	return e
}
