package experiments

import (
	"fmt"
	"io"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

// DynamicResult quantifies the paper's core motivation (§I): static
// compression strategies assume fixed network conditions, while real links
// vary. Under time-varying bandwidth traces it compares
//
//   - dense FedAvg (no compression),
//   - static DGC at a fixed ratio tuned for average conditions,
//   - AdaFL, whose per-round selection and ratios react to live bandwidth.
//
// The headline metrics are accuracy per transmitted megabyte and the
// simulated wall time the same round budget consumed (degraded links slow
// dense rounds down; adaptive compression keeps rounds short).
type DynamicResult struct {
	Acc     map[string]float64
	Bytes   map[string]int64
	SimTime map[string]float64
	Table   *trace.Table
}

// dynamicFederation builds a federation where every client's link rides
// its own random-walk or outage bandwidth trace.
func dynamicFederation(p Preset, seed uint64) *fl.Federation {
	ds := p.NewDataset(MNISTTask, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionShards(train, p.Clients, 2, seed+2)
	rng := stats.NewRNG(seed + 9)
	links := make([]netsim.Link, p.Clients)
	for i := range links {
		l := netsim.WiFiLink
		if i%2 == 0 {
			l.Trace = netsim.RandomWalkTrace(rng.Split(), 5, 1e6, 0.05, 1)
		} else {
			l.Trace = netsim.OutageTrace(10+float64(i), 4, 0.05, 1e6)
		}
		links[i] = l
	}
	net := netsim.NewNetwork(links, seed+3)
	fed := fl.NewFederation(parts, test, net, p.NewModelFactory(MNISTTask, seed+4), p.Train, seed+5)
	if p.DeviceScale != 1 && p.DeviceScale != 0 {
		for _, c := range fed.Clients {
			c.Device = c.Device.Scaled(p.DeviceScale)
		}
	}
	return fed
}

// dynamicVariant names one strategy under dynamic conditions.
type dynamicVariant struct {
	name  string
	build func(seed uint64) *fl.SyncEngine
}

func dynamicVariants(p Preset) []dynamicVariant {
	return []dynamicVariant{
		{"fedavg-dense", func(seed uint64) *fl.SyncEngine {
			fed := dynamicFederation(p, seed)
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, fl.NewFixedRatePlanner(0.5, 1, seed+8), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
		{"static-dgc", func(seed uint64) *fl.SyncEngine {
			fed := dynamicFederation(p, seed)
			cfg := p.AdaFLConfig(MNISTTask, 210)
			// A fixed mid-ladder ratio: what an operator would tune for
			// the average observed bandwidth.
			midRatio := cfg.Compression.MinRatio * 2
			for _, c := range fed.Clients {
				c.Codec = &compress.DGC{ClipNorm: cfg.DGCClip, MsgClipFactor: cfg.DGCMsgClip}
			}
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, fl.NewFixedRatePlanner(0.5, midRatio, seed+8), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
		{"adafl", func(seed uint64) *fl.SyncEngine {
			fed := dynamicFederation(p, seed)
			cfg := p.AdaFLConfig(MNISTTask, 210)
			cfg.AttachDGC(fed)
			e := fl.NewSyncEngine(fed, fl.FedAvg{}, core.NewSyncPlanner(cfg), seed+6)
			e.EvalEvery = p.EvalEvery
			return e
		}},
	}
}

// RunDynamic executes the dynamic-network study.
func RunDynamic(p Preset, w io.Writer) *DynamicResult {
	res := &DynamicResult{Acc: map[string]float64{}, Bytes: map[string]int64{}, SimTime: map[string]float64{}}
	t := trace.NewTable(fmt.Sprintf("Dynamic network (scale=%s, per-client bandwidth traces)", p.Scale),
		"Variant", "Final acc", "Uplink bytes", "Sim time (s)", "Acc per MB")
	for _, v := range dynamicVariants(p) {
		v := v
		var lastEngine *fl.SyncEngine
		_, stats := runSyncSeeds(p.Seeds, p.Rounds, func(seed uint64) *fl.SyncEngine {
			lastEngine = v.build(seed)
			return lastEngine
		})
		e := lastEngine // exposes the final seed's simulated clock
		res.Acc[v.name] = stats.FinalAcc
		res.Bytes[v.name] = stats.UplinkBytes
		res.SimTime[v.name] = e.Now()
		accPerMB := stats.FinalAcc / (float64(stats.UplinkBytes) / 1e6)
		t.AddRow(v.name,
			fmt.Sprintf("%.1f%%", 100*stats.FinalAcc),
			fmtBytes(int(stats.UplinkBytes)),
			fmt.Sprintf("%.1f", e.Now()),
			fmt.Sprintf("%.2f", accPerMB))
	}
	res.Table = t
	if w != nil {
		t.Render(w)
	}
	return res
}
