package experiments

import (
	"fmt"
	"io"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/fl"
)

// RunTable2 reproduces Table II: asynchronous methods (FedAsync, FedBuff,
// AdaFL) across MNIST and the CIFAR stand-in, IID and non-IID.
//
// Update frequency and cost reduction are normalised against the dense
// full-speed update budget: the mean number of updates the baseline
// lineup's fastest run produced, scaled to full participation.
func RunTable2(p Preset, w io.Writer) *TableResult {
	res := &TableResult{}
	settings := []struct {
		task Task
		iid  bool
	}{
		{MNISTTask, true}, {MNISTTask, false},
		{CIFARTask, true}, {CIFARTask, false},
	}

	// The ideal budget: what a dense always-upload federation delivers in
	// the same horizon. Measured once per setting with the FedAsync
	// baseline (all clients active, no gating).
	idealUpdates := make(map[string]int)
	idealBytes := make(map[string]int64)
	for _, s := range settings {
		key := fmt.Sprintf("%s-%s", s.task, distLabel(s.iid))
		var lastEngine *fl.AsyncEngine
		_, stats := runAsyncSeeds(p.Seeds, p.AsyncHorizon, func(seed uint64) *fl.AsyncEngine {
			lastEngine = DenseFedAsyncAllActive(p, s.task, s.iid, seed)
			return lastEngine
		})
		idealUpdates[key] = stats.Updates
		dim := len(lastEngine.Global)
		idealBytes[key] = int64(stats.Updates) * int64(compress.DenseBytes(dim))
	}

	for _, m := range AsyncMethods() {
		row := MethodRow{Method: m.Name, ParticipRate: "0.5", Acc: map[string]float64{}}
		if m.AdaFL {
			row.ParticipRate = "adaptive"
		}
		totalUpdates, totalIdeal := 0, 0
		var totalBytes, totalIdealBytes int64
		ratioMin, ratioMax := 1.0, 1.0
		gradMin, gradMax := 0, 0
		for _, s := range settings {
			key := fmt.Sprintf("%s-%s", s.task, distLabel(s.iid))
			var lastEngine *fl.AsyncEngine
			_, stats := runAsyncSeeds(p.Seeds, p.AsyncHorizon, func(seed uint64) *fl.AsyncEngine {
				lastEngine = m.Build(p, s.task, s.iid, seed)
				return lastEngine
			})
			row.Acc[key] = stats.FinalAcc
			totalUpdates += stats.Updates
			totalIdeal += idealUpdates[key]
			totalBytes += stats.UplinkBytes
			totalIdealBytes += idealBytes[key]
			dim := len(lastEngine.Global)
			dense := compress.DenseBytes(dim)
			if gate, ok := lastEngine.Gate.(*core.AsyncGate); ok && gate.RatioStats.Count > 0 {
				tr := gate.RatioStats
				if tr.MaxRatio > ratioMax {
					ratioMax = tr.MaxRatio
				}
				lo := int(float64(dense) / tr.MaxRatio)
				hi := int(float64(dense) / tr.MinRatio)
				if gradMin == 0 || lo < gradMin {
					gradMin = lo
				}
				if hi > gradMax {
					gradMax = hi
				}
			} else {
				if gradMax < dense {
					gradMax = dense
				}
				if gradMin == 0 || dense < gradMin {
					gradMin = dense
				}
			}
		}
		row.UpdateFreq = totalUpdates / len(settings)
		row.IdealUpdates = totalIdeal / len(settings)
		if totalIdealBytes > 0 {
			row.CostReductionPct = -100 * (1 - float64(totalBytes)/float64(totalIdealBytes))
		}
		row.GradMinBytes, row.GradMaxBytes = gradMin, gradMax
		row.RatioMin, row.RatioMax = ratioMin, ratioMax
		res.Rows = append(res.Rows, row)
	}

	res.Table = renderMethodTable("Table II — Asynchronous FL", p, res.Rows)
	if w != nil {
		res.Table.Render(w)
	}
	return res
}
