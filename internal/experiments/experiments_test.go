package experiments

import (
	"strings"
	"testing"
)

func tinyPreset() Preset { return PresetFor(Tiny) }

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"tiny": Tiny, "small": Small, "full": Full} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestPresetFederationShapes(t *testing.T) {
	p := tinyPreset()
	for _, task := range []Task{MNISTTask, CIFARTask} {
		fed := p.Federation(task, true, 1)
		if len(fed.Clients) != p.Clients {
			t.Fatalf("%s: %d clients", task, len(fed.Clients))
		}
		if fed.Test.Len() == 0 {
			t.Fatalf("%s: empty test set", task)
		}
		m := fed.NewModel()
		if m.NumParams() == 0 {
			t.Fatalf("%s: empty model", task)
		}
	}
}

func TestAdaFLConfigScalesRatios(t *testing.T) {
	p := tinyPreset()
	cfg := p.AdaFLConfig(MNISTTask, 210)
	// Tiny uses a small MLP, so the 210x CNN ladder must be capped.
	if cfg.Compression.MaxRatio > 10 {
		t.Fatalf("ratio not scaled for small model: %v", cfg.Compression.MaxRatio)
	}
	full := PresetFor(Full)
	cfgFull := full.AdaFLConfig(MNISTTask, 210)
	if cfgFull.Compression.MaxRatio != 210 {
		t.Fatalf("full CNN ladder clipped: %v", cfgFull.Compression.MaxRatio)
	}
}

func TestSyncMethodsLineup(t *testing.T) {
	names := []string{}
	adaCount := 0
	for _, m := range SyncMethods() {
		names = append(names, m.Name)
		if m.AdaFL {
			adaCount++
		}
	}
	want := "FedAvg FedAdam FedProx SCAFFOLD AdaFL"
	if strings.Join(names, " ") != want {
		t.Fatalf("lineup %v", names)
	}
	if adaCount != 1 {
		t.Fatalf("AdaFL flag count %d", adaCount)
	}
}

func TestAsyncMethodsLineup(t *testing.T) {
	names := []string{}
	for _, m := range AsyncMethods() {
		names = append(names, m.Name)
	}
	if strings.Join(names, " ") != "FedAsync FedBuff AdaFL" {
		t.Fatalf("lineup %v", names)
	}
}

func TestRunFig1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	// One seed, one task pair keeps this test fast; reduce work further.
	p.Rounds = 8
	p.AsyncHorizon = 6
	var sb strings.Builder
	res := RunFig1(p, &sb)
	if len(res.Panels) != 12 {
		t.Fatalf("Fig1 panels = %d, want 12", len(res.Panels))
	}
	for _, fig := range res.Panels {
		if len(fig.Series) < 3 {
			t.Fatalf("panel %q has %d series", fig.Title, len(fig.Series))
		}
		for _, s := range fig.Series {
			if s.Len() == 0 {
				t.Fatalf("panel %q has empty series %q", fig.Title, s.Name)
			}
		}
	}
	if !strings.Contains(sb.String(), "Insight 1") {
		t.Fatal("insight summary missing")
	}
}

func TestRunFig3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.Rounds = 8
	p.AsyncHorizon = 6
	res := RunFig3(p, nil)
	if len(res.Panels) != 4 {
		t.Fatalf("Fig3 panels = %d", len(res.Panels))
	}
	if len(res.Panels[0].Series) != 5 {
		t.Fatalf("sync panel series = %d, want 5 methods", len(res.Panels[0].Series))
	}
	if len(res.Panels[2].Series) != 3 {
		t.Fatalf("async panel series = %d, want 3 methods", len(res.Panels[2].Series))
	}
	for _, finals := range res.FinalAcc {
		if _, ok := finals["AdaFL"]; !ok {
			t.Fatal("AdaFL missing from finals")
		}
	}
}

func TestRunTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.Rounds = 8
	var sb strings.Builder
	res := RunTable1(p, &sb)
	if len(res.Rows) != 5 {
		t.Fatalf("Table1 rows = %d", len(res.Rows))
	}
	ada := res.Row("AdaFL")
	if ada == nil {
		t.Fatal("AdaFL row missing")
	}
	if ada.ParticipRate != "adaptive" {
		t.Fatalf("AdaFL rate %q", ada.ParticipRate)
	}
	base := res.Row("FedAvg")
	// The core cost claim: AdaFL reduces communication more than the
	// fixed-rate baselines (which sit at ~-50%).
	if ada.CostReductionPct >= base.CostReductionPct {
		t.Fatalf("AdaFL cost %.1f%% not below baseline %.1f%%",
			ada.CostReductionPct, base.CostReductionPct)
	}
	if ada.RatioMax <= ada.RatioMin {
		t.Fatalf("AdaFL ratio range degenerate: %v..%v", ada.RatioMin, ada.RatioMax)
	}
	for _, key := range []string{"mnist-iid", "mnist-noniid", "cifar-iid", "cifar-noniid"} {
		if _, ok := ada.Acc[key]; !ok {
			t.Fatalf("missing accuracy cell %q", key)
		}
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Fatal("table title missing")
	}
}

func TestRunTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.AsyncHorizon = 6
	res := RunTable2(p, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("Table2 rows = %d", len(res.Rows))
	}
	ada := res.Row("AdaFL")
	base := res.Row("FedAsync")
	if ada == nil || base == nil {
		t.Fatal("rows missing")
	}
	if ada.CostReductionPct >= base.CostReductionPct {
		t.Fatalf("AdaFL async cost %.1f%% not below baseline %.1f%%",
			ada.CostReductionPct, base.CostReductionPct)
	}
}

func TestRunOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.Rounds = 6
	res := RunOverhead(p, nil)
	if res.BaselineCycles <= 0 {
		t.Fatal("no training cycles recorded")
	}
	if res.UtilityCycles <= 0 || res.CompressCycles <= 0 {
		t.Fatal("component cycles missing")
	}
	// The paper's qualitative claims: utility overhead is tiny (<1%) and
	// compression costs more than utility scoring.
	if res.UtilityExpansionPct >= 1 {
		t.Fatalf("utility expansion %.3f%% too large", res.UtilityExpansionPct)
	}
	if res.CompressCycles <= res.UtilityCycles {
		t.Fatal("compression should cost more than utility scoring")
	}
	if res.WallUtility <= 0 || res.WallDGC <= 0 {
		t.Fatal("wall-clock measurements missing")
	}
}

func TestRunScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.Rounds = 6
	res := RunScale(p, nil)
	if len(res.ClientCounts) < 2 {
		t.Fatal("scale sweep too small")
	}
	for i := range res.ClientCounts {
		if res.AdaBytes[i] >= res.BaseBytes[i] {
			t.Fatalf("N=%d: AdaFL bytes %d not below FedAvg %d",
				res.ClientCounts[i], res.AdaBytes[i], res.BaseBytes[i])
		}
	}
}

func TestRunAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := tinyPreset()
	p.Rounds = 8
	res := RunAblations(p, nil)
	if len(res.Acc) != len(AblationVariants()) {
		t.Fatalf("ablation count %d", len(res.Acc))
	}
	if _, ok := res.Acc["adafl (reference)"]; !ok {
		t.Fatal("reference variant missing")
	}
	// fixed-ratio at MinRatio everywhere must cost more bytes than the
	// adaptive ladder.
	if res.Bytes["fixed-ratio"] <= res.Bytes["adafl (reference)"] {
		t.Fatalf("fixed-ratio bytes %d not above adaptive %d",
			res.Bytes["fixed-ratio"], res.Bytes["adafl (reference)"])
	}
}

func TestFullPresetUsesPaperModels(t *testing.T) {
	p := PresetFor(Full)
	mnist := p.NewModelFactory(MNISTTask, 1)()
	if mnist.NumParams() != 431080 {
		t.Fatalf("Full MNIST model has %d params, want the paper CNN's 431080", mnist.NumParams())
	}
	cifar := p.NewModelFactory(CIFARTask, 1)()
	if cifar.Classes != p.CIFARClasses {
		t.Fatalf("Full CIFAR model classes %d", cifar.Classes)
	}
	if len(p.Seeds) < 10 {
		t.Fatalf("Full preset has %d seeds, paper repeats 10 times", len(p.Seeds))
	}
}

func TestMethodTableRendering(t *testing.T) {
	rows := []MethodRow{{
		Method: "AdaFL", ParticipRate: "adaptive", UpdateFreq: 233,
		IdealUpdates: 800, CostReductionPct: -70.9,
		GradMinBytes: 8000, GradMaxBytes: 420000,
		RatioMin: 4, RatioMax: 210,
		Acc: map[string]float64{"mnist-iid": 0.934, "mnist-noniid": 0.875,
			"cifar-iid": 0.619, "cifar-noniid": 0.563},
	}}
	tbl := renderMethodTable("Table I — Synchronous FL", tinyPreset(), rows)
	out := tbl.String()
	for _, want := range []string{"AdaFL", "adaptive", "233", "-70.9%", "8KB-420KB", "210x-4x", "93.4% / 87.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestResNetForCIFARSelection(t *testing.T) {
	p := PresetFor(Full)
	vgg := p.NewModelFactory(CIFARTask, 1)()
	p.ResNetForCIFAR = true
	res := p.NewModelFactory(CIFARTask, 1)()
	if vgg.NumParams() == res.NumParams() {
		t.Fatal("ResNetForCIFAR did not switch architectures")
	}
	if !strings.Contains(res.Summary(), "resblock") {
		t.Fatalf("expected residual blocks, got:\n%s", res.Summary())
	}
	if !strings.Contains(vgg.Summary(), "conv3x3") {
		t.Fatalf("expected VGG convs, got:\n%s", vgg.Summary())
	}
}
