package nn

import (
	"bytes"
	"math"
	"testing"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

func TestAvgPoolForwardKnown(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	p := NewAvgPool2D(2)
	y := p.Forward(x, false)
	want := []float64{2.5, 6.5, 10.5, 14.5}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("avgpool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestAvgPoolBackwardSpreadsGradient(t *testing.T) {
	x := tensor.New(1, 1, 2, 2)
	p := NewAvgPool2D(2)
	p.Forward(x, true)
	g := tensor.FromSlice([]float64{8}, 1, 1, 1, 1)
	dx := p.Backward(g)
	for i, v := range dx.Data {
		if v != 2 {
			t.Fatalf("dx[%d] = %v, want 2", i, v)
		}
	}
}

func TestGradCheckAvgPoolModel(t *testing.T) {
	r := stats.NewRNG(20)
	m := NewModel([]int{1, 4, 4}, 2,
		NewConv2D(1, 2, 3, 1, r),
		NewAvgPool2D(2),
		NewTanh(),
		NewFlatten(),
		NewDense(2*2*2, 2, r),
	)
	numericGradCheck(t, m, 2, 21, 1e-4)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(0.5, stats.NewRNG(1))
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout modified input")
		}
	}
}

func TestDropoutTrainKeepsExpectation(t *testing.T) {
	d := NewDropout(0.3, stats.NewRNG(2))
	x := tensor.New(1, 1000)
	x.Fill(1)
	sum := 0.0
	n := 200
	for i := 0; i < n; i++ {
		y := d.Forward(x, true)
		for _, v := range y.Data {
			sum += v
		}
	}
	mean := sum / float64(n*1000)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("inverted dropout expectation %v, want ~1", mean)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.5, stats.NewRNG(3))
	x := tensor.New(1, 100)
	x.Fill(1)
	y := d.Forward(x, true)
	g := tensor.New(1, 100)
	g.Fill(1)
	dx := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 accepted")
		}
	}()
	NewDropout(1, stats.NewRNG(1))
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay{Base: 1, Gamma: 0.1, Every: 10}
	if s.LR(0) != 1 || s.LR(9) != 1 {
		t.Fatal("early steps should keep base")
	}
	if math.Abs(s.LR(10)-0.1) > 1e-12 || math.Abs(s.LR(25)-0.01) > 1e-12 {
		t.Fatalf("decay wrong: %v, %v", s.LR(10), s.LR(25))
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	c := CosineDecay{Base: 1, Floor: 0.1, Horizon: 100}
	if c.LR(0) != 1 {
		t.Fatalf("start %v", c.LR(0))
	}
	if c.LR(100) != 0.1 || c.LR(200) != 0.1 {
		t.Fatal("floor not respected")
	}
	mid := c.LR(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("midpoint %v, want 0.55", mid)
	}
	if !(c.LR(10) > c.LR(50) && c.LR(50) > c.LR(90)) {
		t.Fatal("not monotone decreasing")
	}
}

func TestScheduledSGDUpdatesLR(t *testing.T) {
	m := NewLogistic(1, 2, stats.NewRNG(4))
	m.SetParamVector(make([]float64, m.NumParams()))
	opt := NewScheduledSGD(0, 0, StepDecay{Base: 1, Gamma: 0.5, Every: 1})
	step := func() float64 {
		m.ZeroGrads()
		m.Layers[0].(*Dense).GradW.Fill(1)
		before := m.ParamVector()[0]
		opt.Step(m)
		return before - m.ParamVector()[0]
	}
	d0, d1, d2 := step(), step(), step()
	if math.Abs(d0-1) > 1e-12 || math.Abs(d1-0.5) > 1e-12 || math.Abs(d2-0.25) > 1e-12 {
		t.Fatalf("scheduled steps %v %v %v", d0, d1, d2)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := stats.NewRNG(5)
	m := NewMLP(r, 4, 8, 3)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(stats.NewRNG(99), 4, 8, 3) // different init
	if err := m2.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	a, b := m.ParamVector(), m2.ParamVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestLoadRejectsMismatchedModel(t *testing.T) {
	r := stats.NewRNG(6)
	m := NewMLP(r, 4, 8, 3)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewMLP(stats.NewRNG(7), 4, 9, 3)
	if err := other.LoadParams(&buf); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := stats.NewRNG(8)
	m := NewLogistic(3, 2, r)
	path := t.TempDir() + "/ckpt.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2 := NewLogistic(3, 2, stats.NewRNG(9))
	if err := m2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if m2.ParamVector()[0] != m.ParamVector()[0] {
		t.Fatal("file round trip failed")
	}
}
