package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// checkpoint is the on-disk format: the parameter vector plus enough
// metadata to reject mismatched architectures.
type checkpoint struct {
	NumParams  int
	InputShape []int
	Classes    int
	Params     []float64
}

// SaveParams writes the model's parameters to w in gob format.
func (m *Model) SaveParams(w io.Writer) error {
	cp := checkpoint{
		NumParams:  m.NumParams(),
		InputShape: m.InputShape,
		Classes:    m.Classes,
		Params:     m.ParamVector(),
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParams reads parameters written by SaveParams into the model,
// verifying the architecture fingerprint.
func (m *Model) LoadParams(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if cp.NumParams != m.NumParams() {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", cp.NumParams, m.NumParams())
	}
	if cp.Classes != m.Classes {
		return fmt.Errorf("nn: checkpoint has %d classes, model has %d", cp.Classes, m.Classes)
	}
	if len(cp.InputShape) != len(m.InputShape) {
		return fmt.Errorf("nn: checkpoint input rank %d, model %d", len(cp.InputShape), len(m.InputShape))
	}
	for i, d := range cp.InputShape {
		if m.InputShape[i] != d {
			return fmt.Errorf("nn: checkpoint input shape %v, model %v", cp.InputShape, m.InputShape)
		}
	}
	m.SetParamVector(cp.Params)
	return nil
}

// SaveFile writes the model's parameters to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.SaveParams(f)
}

// LoadFile reads parameters from path into the model.
func (m *Model) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.LoadParams(f)
}
