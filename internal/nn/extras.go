package nn

import (
	"fmt"
	"math"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// AvgPool2D downsamples each channel plane by averaging non-overlapping
// Size×Size windows (stride = Size).
type AvgPool2D struct {
	statelessBase
	Size int

	inShape []int
}

// NewAvgPool2D returns an average-pooling layer.
func NewAvgPool2D(size int) *AvgPool2D {
	if size <= 0 {
		panic("nn: non-positive pool size")
	}
	return &AvgPool2D{Size: size}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("avgpool%dx%d", p.Size, p.Size) }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: avgpool forward shape %v, want rank 4", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	s := p.Size
	if h%s != 0 || w%s != 0 {
		panic(fmt.Sprintf("nn: avgpool input %dx%d not divisible by %d", h, w, s))
	}
	oh, ow := h/s, w/s
	y := tensor.New(n, c, oh, ow)
	inv := 1 / float64(s*s)
	for nc := 0; nc < n*c; nc++ {
		inPlane := x.Data[nc*h*w:][: h*w : h*w]
		outPlane := y.Data[nc*oh*ow:][: oh*ow : oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := 0.0
				for ky := 0; ky < s; ky++ {
					rowOff := (oy*s+ky)*w + ox*s
					for kx := 0; kx < s; kx++ {
						sum += inPlane[rowOff+kx]
					}
				}
				outPlane[oy*ow+ox] = sum * inv
			}
		}
	}
	if train {
		p.inShape = []int{n, c, h, w}
	}
	return y
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: avgpool backward before forward")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	s := p.Size
	oh, ow := h/s, w/s
	dx := tensor.New(n, c, h, w)
	inv := 1 / float64(s*s)
	for nc := 0; nc < n*c; nc++ {
		gPlane := gradOut.Data[nc*oh*ow:][: oh*ow : oh*ow]
		dxPlane := dx.Data[nc*h*w:][: h*w : h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gPlane[oy*ow+ox] * inv
				for ky := 0; ky < s; ky++ {
					rowOff := (oy*s+ky)*w + ox*s
					for kx := 0; kx < s; kx++ {
						dxPlane[rowOff+kx] += g
					}
				}
			}
		}
	}
	return dx
}

// Dropout randomly zeroes activations during training with probability P,
// scaling survivors by 1/(1-P) (inverted dropout) so evaluation needs no
// rescaling.
type Dropout struct {
	statelessBase
	P   float64
	rng *stats.RNG

	mask []float64
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(p float64, rng *stats.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.P) }

// Forward implements Layer.
//
// Evaluation-mode passes leave all layer state untouched (so concurrent
// eval-mode forwards are safe); the mask from the most recent training
// pass is kept for Backward.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x
	}
	y := x.Clone()
	d.mask = make([]float64, len(y.Data))
	keep := 1 - d.P
	scale := 1 / keep
	for i := range y.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			y.Data[i] *= scale
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return gradOut
	}
	dx := gradOut.Clone()
	for i := range dx.Data {
		dx.Data[i] *= d.mask[i]
	}
	return dx
}

// LRSchedule adjusts a learning rate over training steps.
type LRSchedule interface {
	// LR returns the learning rate for step t (0-based).
	LR(t int) float64
}

// ConstantLR keeps the rate fixed.
type ConstantLR float64

// LR implements LRSchedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Gamma every Every steps.
type StepDecay struct {
	Base  float64
	Gamma float64
	Every int
}

// LR implements LRSchedule.
func (s StepDecay) LR(t int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(t/s.Every))
}

// CosineDecay anneals the rate from Base to Floor over Horizon steps.
type CosineDecay struct {
	Base    float64
	Floor   float64
	Horizon int
}

// LR implements LRSchedule.
func (c CosineDecay) LR(t int) float64 {
	if c.Horizon <= 0 || t >= c.Horizon {
		return c.Floor
	}
	frac := float64(t) / float64(c.Horizon)
	return c.Floor + (c.Base-c.Floor)*0.5*(1+math.Cos(math.Pi*frac))
}

// ScheduledSGD wraps SGD with a learning-rate schedule.
type ScheduledSGD struct {
	SGD      *SGD
	Schedule LRSchedule
	step     int
}

// NewScheduledSGD returns SGD driven by the schedule.
func NewScheduledSGD(momentum, weightDecay float64, sched LRSchedule) *ScheduledSGD {
	return &ScheduledSGD{SGD: NewSGD(sched.LR(0), momentum, weightDecay), Schedule: sched}
}

// Step implements Optimizer.
func (s *ScheduledSGD) Step(m *Model) {
	s.SGD.LR = s.Schedule.LR(s.step)
	s.step++
	s.SGD.Step(m)
}
