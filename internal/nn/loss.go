package nn

import (
	"fmt"
	"math"

	"adafl/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (N, K) against integer labels, along with the gradient of the loss with
// respect to the logits. The softmax and loss are fused for numerical
// stability (log-sum-exp with max subtraction).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: logits shape %v, want (N, K)", logits.Shape()))
	}
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the logit gradient
// into a caller-provided (N, K) tensor, so training loops can reuse one
// gradient buffer across steps. Every element of grad is overwritten.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) (loss float64) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: logits shape %v, want (N, K)", logits.Shape()))
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	if grad.Rank() != 2 || grad.Dim(0) != n || grad.Dim(1) != k {
		panic(fmt.Sprintf("nn: loss grad shape %v, want %v", grad.Shape(), logits.Shape()))
	}
	total := 0.0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		gRow := grad.Data[i*k : (i+1)*k]
		lbl := labels[i]
		if lbl < 0 || lbl >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, k))
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logSum := math.Log(sum) + maxv
		total += logSum - row[lbl]
		inv := 1 / (sum * float64(n))
		for j, v := range row {
			gRow[j] = math.Exp(v-maxv) * inv
		}
		gRow[lbl] -= 1 / float64(n)
	}
	return total / float64(n)
}

// Predict returns the argmax class of each row of logits.
func Predict(logits *tensor.Tensor) []int {
	n, k := logits.Dim(0), logits.Dim(1)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := Predict(logits)
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}
