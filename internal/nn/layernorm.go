package nn

import (
	"fmt"
	"math"

	"adafl/internal/tensor"
)

// LayerNorm normalises each sample's feature vector to zero mean and unit
// variance, then applies a learned per-feature affine transform
// (gain γ, bias β). Unlike BatchNorm it carries no running batch
// statistics, which makes it the normalisation of choice for federated
// training: BatchNorm's population statistics diverge across non-IID
// clients, LayerNorm's per-sample statistics do not.
//
// Input shape is (N, D); insert after Flatten or between Dense layers.
type LayerNorm struct {
	D   int
	Eps float64

	Gamma *tensor.Tensor // (D)
	Beta  *tensor.Tensor // (D)

	GradGamma *tensor.Tensor
	GradBeta  *tensor.Tensor

	// Cached forward quantities for backward.
	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm returns a layer normalisation over d features with γ=1,
// β=0.
func NewLayerNorm(d int) *LayerNorm {
	l := &LayerNorm{
		D: d, Eps: 1e-5,
		Gamma:     tensor.New(d),
		Beta:      tensor.New(d),
		GradGamma: tensor.New(d),
		GradBeta:  tensor.New(d),
	}
	l.Gamma.Fill(1)
	return l
}

// Name implements Layer.
func (l *LayerNorm) Name() string { return fmt.Sprintf("layernorm(%d)", l.D) }

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.D {
		panic(fmt.Sprintf("nn: layernorm forward shape %v, want (N, %d)", x.Shape(), l.D))
	}
	n := x.Dim(0)
	y := tensor.New(n, l.D)
	var xhat *tensor.Tensor
	var invStd []float64
	if train {
		xhat = tensor.New(n, l.D)
		invStd = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		row := x.Data[i*l.D : (i+1)*l.D]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(l.D)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(l.D)
		inv := 1 / math.Sqrt(variance+l.Eps)
		out := y.Data[i*l.D : (i+1)*l.D]
		for j, v := range row {
			h := (v - mean) * inv
			out[j] = h*l.Gamma.Data[j] + l.Beta.Data[j]
			if train {
				xhat.Data[i*l.D+j] = h
			}
		}
		if train {
			invStd[i] = inv
		}
	}
	if train {
		l.xhat = xhat
		l.invStd = invStd
	}
	return y
}

// Backward implements Layer. Standard layer-norm gradient: with
// ĥ = (x−µ)/σ and g' = g·γ,
// dx = (g' − mean(g') − ĥ·mean(g'·ĥ)) / σ.
func (l *LayerNorm) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.xhat == nil {
		panic("nn: layernorm backward before forward")
	}
	n := gradOut.Dim(0)
	dx := tensor.New(n, l.D)
	for i := 0; i < n; i++ {
		g := gradOut.Data[i*l.D : (i+1)*l.D]
		h := l.xhat.Data[i*l.D : (i+1)*l.D]
		// Parameter gradients.
		for j := 0; j < l.D; j++ {
			l.GradGamma.Data[j] += g[j] * h[j]
			l.GradBeta.Data[j] += g[j]
		}
		// Input gradient.
		meanG, meanGH := 0.0, 0.0
		for j := 0; j < l.D; j++ {
			gp := g[j] * l.Gamma.Data[j]
			meanG += gp
			meanGH += gp * h[j]
		}
		meanG /= float64(l.D)
		meanGH /= float64(l.D)
		out := dx.Data[i*l.D : (i+1)*l.D]
		for j := 0; j < l.D; j++ {
			gp := g[j] * l.Gamma.Data[j]
			out[j] = (gp - meanG - h[j]*meanGH) * l.invStd[i]
		}
	}
	return dx
}

// Params implements Layer.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gamma, l.Beta} }

// Grads implements Layer.
func (l *LayerNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.GradGamma, l.GradBeta} }

// FLOPsPerSample implements FLOPCounter.
func (l *LayerNorm) FLOPsPerSample() float64 { return 5 * float64(l.D) }
