package nn

import (
	"fmt"
	"math"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// Conv2D is a 2-D convolution (technically cross-correlation, as in every
// deep-learning framework) with stride 1 and optional zero padding, over
// batched input of shape (N, InC, H, W).
//
// The implementation lowers each sample to an im2col patch matrix and
// expresses the convolution as a matrix product — on the 431k-parameter
// paper CNN this is markedly faster than direct tap loops because the
// inner products stream contiguous memory.
type Conv2D struct {
	InC, OutC int
	K         int // square kernel size
	Pad       int

	W *tensor.Tensor // (OutC, InC, K, K)
	B *tensor.Tensor // (OutC)

	GradW *tensor.Tensor
	GradB *tensor.Tensor

	x *tensor.Tensor // cached input

	// Train-mode scratch, reused across steps (the backward pass always
	// completes before the next forward, so recycling cannot alias live
	// data). cols is the im2col patch matrix (CKK × OH·OW) shared by
	// forward and backward; y, dx and dcols make the training hot path
	// allocation-free.
	cols  *tensor.Tensor
	y     *tensor.Tensor
	dx    *tensor.Tensor
	dcols *tensor.Tensor

	// Cached (OutC, CKK) views of W and GradW. The underlying storage of
	// both tensors never reallocates, so the views stay valid for the
	// layer's lifetime.
	wView     *tensor.Tensor
	gradWView *tensor.Tensor
}

// NewConv2D constructs a K×K convolution with He initialisation.
func NewConv2D(inC, outC, k, pad int, r *stats.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Pad: pad,
		W:     tensor.New(outC, inC, k, k),
		B:     tensor.New(outC),
		GradW: tensor.New(outC, inC, k, k),
		GradB: tensor.New(outC),
	}
	fanIn := float64(inC * k * k)
	c.W.RandNorm(r, math.Sqrt(2/fanIn))
	c.wView = c.W.Reshape(outC, inC*k*k)
	c.gradWView = c.GradW.Reshape(outC, inC*k*k)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d->%d,pad=%d)", c.K, c.K, c.InC, c.OutC, c.Pad)
}

func (c *Conv2D) outDims(h, w int) (int, int) {
	return h + 2*c.Pad - c.K + 1, w + 2*c.Pad - c.K + 1
}

// weightView returns the cached (OutC, CKK) view of W. It never writes
// layer state: eval-mode forwards may call it concurrently, so a zero-value
// Conv2D (not built by NewConv2D) just pays for a fresh view.
func (c *Conv2D) weightView() *tensor.Tensor {
	if c.wView != nil {
		return c.wView
	}
	return c.W.Reshape(c.OutC, c.InC*c.K*c.K)
}

func (c *Conv2D) gradWeightView() *tensor.Tensor {
	if c.gradWView != nil {
		return c.gradWView
	}
	return c.GradW.Reshape(c.OutC, c.InC*c.K*c.K)
}

// im2col fills dst (CKK × OH·OW) with the patches of one input plane set.
// Row (ic·K+ky)·K+kx holds, for every output position, the input value the
// kernel tap (ic, ky, kx) reads (0 for padding).
func (c *Conv2D) im2col(dst []float64, in []float64, h, w, oh, ow int) {
	k, pad := c.K, c.Pad
	row := 0
	for ic := 0; ic < c.InC; ic++ {
		plane := in[ic*h*w : (ic+1)*h*w]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				out := dst[row*oh*ow : (row+1)*oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy + ky - pad
					dstRow := out[oy*ow : (oy+1)*ow]
					if iy < 0 || iy >= h {
						for i := range dstRow {
							dstRow[i] = 0
						}
						continue
					}
					src := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox + kx - pad
						if ix < 0 || ix >= w {
							dstRow[ox] = 0
						} else {
							dstRow[ox] = src[ix]
						}
					}
				}
				row++
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: conv forward shape %v, want (N, %d, H, W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.outDims(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output collapsed for input %v kernel %d", x.Shape(), c.K))
	}
	if train {
		c.x = x
	}
	ckk := c.InC * c.K * c.K
	// Training is single-threaded per layer, so the scratch buffer is
	// reused; evaluation-mode forwards may run concurrently (parallel
	// batched evaluation) and borrow a buffer from the shared pool.
	var cols *tensor.Tensor
	var evalScratch []float64
	var y *tensor.Tensor
	if train {
		c.cols = ensureTensor(c.cols, ckk, oh*ow)
		cols = c.cols
		c.y = ensureTensor(c.y, n, c.OutC, oh, ow)
		y = c.y
	} else {
		evalScratch = tensor.GetScratch(ckk * oh * ow)
		cols = tensor.FromSlice(evalScratch, ckk, oh*ow)
		y = tensor.New(n, c.OutC, oh, ow)
	}
	wView := c.weightView()
	// One reusable view header per call; only its Data window moves across
	// samples, avoiding a tensor-header allocation per sample.
	outView := tensor.FromSlice(y.Data[:c.OutC*oh*ow], c.OutC, oh*ow)
	for ni := 0; ni < n; ni++ {
		c.im2col(cols.Data, x.Data[ni*c.InC*h*w:(ni+1)*c.InC*h*w], h, w, oh, ow)
		outView.Data = y.Data[ni*c.OutC*oh*ow : (ni+1)*c.OutC*oh*ow]
		tensor.MatMulInto(outView, wView, cols)
	}
	// Bias.
	plane := oh * ow
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Data[oc]
			if b == 0 {
				continue
			}
			out := y.Data[(ni*c.OutC+oc)*plane : (ni*c.OutC+oc+1)*plane]
			for i := range out {
				out[i] += b
			}
		}
	}
	if evalScratch != nil {
		tensor.PutScratch(evalScratch)
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: conv backward before forward")
	}
	x := c.x
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	k, pad := c.K, c.Pad
	plane := oh * ow
	ckk := c.InC * k * k

	wView := c.weightView()
	gradWView := c.gradWeightView()
	c.dx = ensureTensor(c.dx, n, c.InC, h, w)
	dx := c.dx
	dx.Zero() // col2im scatters with +=
	c.dcols = ensureTensor(c.dcols, ckk, plane)
	dcols := c.dcols

	g := tensor.FromSlice(gradOut.Data[:c.OutC*plane], c.OutC, plane)
	for ni := 0; ni < n; ni++ {
		g.Data = gradOut.Data[ni*c.OutC*plane : (ni+1)*c.OutC*plane]
		// Bias gradient: per-channel sums.
		for oc := 0; oc < c.OutC; oc++ {
			sum := 0.0
			for _, v := range g.Data[oc*plane : (oc+1)*plane] {
				sum += v
			}
			c.GradB.Data[oc] += sum
		}
		// Weight gradient: dW += g @ colsᵀ.
		c.im2col(c.cols.Data, x.Data[ni*c.InC*h*w:(ni+1)*c.InC*h*w], h, w, oh, ow)
		tensor.MatMulTransposeBAdd(gradWView, g, c.cols)
		// Input gradient: dcols = Wᵀ @ g, scattered back (col2im).
		dcols.Zero()
		tensor.MatMulTransposeA(dcols, wView, g)
		dplane := dx.Data[ni*c.InC*h*w : (ni+1)*c.InC*h*w]
		row := 0
		for ic := 0; ic < c.InC; ic++ {
			target := dplane[ic*h*w : (ic+1)*h*w]
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					src := dcols.Data[row*plane : (row+1)*plane]
					for oy := 0; oy < oh; oy++ {
						iy := oy + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						tRow := target[iy*w : (iy+1)*w]
						sRow := src[oy*ow : (oy+1)*ow]
						for ox := 0; ox < ow; ox++ {
							ix := ox + kx - pad
							if ix >= 0 && ix < w {
								tRow[ix] += sRow[ox]
							}
						}
					}
					row++
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.GradW, c.GradB} }

// FLOPsPerSample implements FLOPCounter. The estimate assumes the layer's
// most recent input size; before any forward pass it assumes a 28×28 map.
func (c *Conv2D) FLOPsPerSample() float64 {
	h, w := 28, 28
	if c.x != nil {
		h, w = c.x.Dim(2), c.x.Dim(3)
	}
	oh, ow := c.outDims(h, w)
	return float64(c.OutC*oh*ow) * float64(c.InC*c.K*c.K)
}
