// Package nn is a from-scratch neural-network substrate: layers with exact
// backpropagation, a sequential model container, optimizers, and the model
// zoo used by the AdaFL experiments (including the paper's 2×conv5×5 CNN).
//
// The federated-learning layer above treats a model as a flat parameter
// vector plus a flat gradient vector; this package provides both views.
// Tensors flow through layers batched: (N, D) for dense data and
// (N, C, H, W) for images.
package nn

import "adafl/internal/tensor"

// Layer is a differentiable network stage.
//
// Forward consumes a batch and returns its activation; train reports
// whether the pass is part of training (layers may cache activations for
// the backward pass only when it is). Backward consumes the gradient of the
// loss with respect to the layer's output and returns the gradient with
// respect to its input, accumulating parameter gradients internally.
type Layer interface {
	// Name identifies the layer in diagnostics.
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable tensors (possibly empty).
	// Callers mutate the returned tensors in place to update weights.
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
}

// FLOPCounter is implemented by layers that can estimate their arithmetic
// cost; the device model uses it to derive simulated computation time.
type FLOPCounter interface {
	// FLOPsPerSample returns the approximate multiply-accumulate count of
	// one forward pass for a single sample. Backward cost is modelled as a
	// fixed multiple by the device layer.
	FLOPsPerSample() float64
}

// statelessBase provides the empty Params/Grads implementation shared by
// parameter-free layers.
type statelessBase struct{}

func (statelessBase) Params() []*tensor.Tensor { return nil }
func (statelessBase) Grads() []*tensor.Tensor  { return nil }
