package nn

import (
	"math"

	"adafl/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	statelessBase
	mask []bool

	// Train-mode buffers recycled across steps (see ensureTensor).
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewReLU returns a rectified-linear activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train {
		y := x.Clone()
		for i, v := range y.Data {
			if v <= 0 {
				y.Data[i] = 0
			}
		}
		return y
	}
	r.y = ensureTensor(r.y, x.Shape()...)
	y := r.y
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	mask := r.mask[:len(y.Data)]
	for i, v := range x.Data {
		if v <= 0 {
			y.Data[i] = 0
			mask[i] = false
		} else {
			y.Data[i] = v
			mask[i] = true
		}
	}
	r.mask = mask
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: relu backward before forward")
	}
	r.dx = ensureTensor(r.dx, gradOut.Shape()...)
	dx := r.dx
	for i, g := range gradOut.Data {
		if r.mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Tanh applies the hyperbolic tangent elementwise. It is used by the
// lighter models in the zoo where saturating nonlinearities train more
// stably at high learning rates.
type Tanh struct {
	statelessBase
	out []float64

	// Train-mode buffers recycled across steps (see ensureTensor).
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	var y *tensor.Tensor
	if train {
		t.y = ensureTensor(t.y, x.Shape()...)
		y = t.y
	} else {
		y = tensor.New(x.Shape()...)
	}
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	if train {
		t.out = y.Data
	}
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.out == nil {
		panic("nn: tanh backward before forward")
	}
	t.dx = ensureTensor(t.dx, gradOut.Shape()...)
	dx := t.dx
	for i, g := range gradOut.Data {
		o := t.out[i]
		dx.Data[i] = g * (1 - o*o)
	}
	return dx
}
