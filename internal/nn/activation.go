package nn

import (
	"math"

	"adafl/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	statelessBase
	mask []bool
}

// NewReLU returns a rectified-linear activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	var mask []bool
	if train {
		mask = make([]bool, len(y.Data))
	}
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
		} else if train {
			mask[i] = true
		}
	}
	if train {
		r.mask = mask
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: relu backward before forward")
	}
	dx := gradOut.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Tanh applies the hyperbolic tangent elementwise. It is used by the
// lighter models in the zoo where saturating nonlinearities train more
// stably at high learning rates.
type Tanh struct {
	statelessBase
	out []float64
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = math.Tanh(v)
	}
	if train {
		t.out = y.Data
	}
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.out == nil {
		panic("nn: tanh backward before forward")
	}
	dx := gradOut.Clone()
	for i := range dx.Data {
		o := t.out[i]
		dx.Data[i] *= 1 - o*o
	}
	return dx
}
