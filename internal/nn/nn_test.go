package nn

import (
	"math"
	"testing"
	"testing/quick"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

func TestPaperCNNParamCount(t *testing.T) {
	m := NewPaperCNN(stats.NewRNG(1))
	// conv1 20·1·25+20 + conv2 50·20·25+50 + fc1 800·500+500 + fc2 500·10+10
	const want = 520 + 25050 + 400500 + 5010
	if got := m.NumParams(); got != want {
		t.Fatalf("PaperCNN params = %d, want %d", got, want)
	}
	// Paper reports a 1.64 MB gradient at float32.
	mb := float64(m.NumParams()) * 4 / 1e6
	if mb < 1.6 || mb > 1.8 {
		t.Errorf("PaperCNN float32 gradient = %.2f MB, want ~1.7", mb)
	}
}

func TestPaperCNNForwardShape(t *testing.T) {
	m := NewPaperCNN(stats.NewRNG(2))
	x := tensor.New(2, 1, 28, 28)
	logits := m.Forward(x, false)
	if logits.Dim(0) != 2 || logits.Dim(1) != 10 {
		t.Fatalf("logits shape %v, want (2, 10)", logits.Shape())
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	r := stats.NewRNG(3)
	m := NewMLP(r, 5, 7, 3)
	v := m.ParamVector()
	if len(v) != m.NumParams() {
		t.Fatalf("vector length %d != NumParams %d", len(v), m.NumParams())
	}
	v2 := tensor.CopyVec(v)
	for i := range v2 {
		v2[i] = float64(i)
	}
	m.SetParamVector(v2)
	got := m.ParamVector()
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("round-trip mismatch at %d", i)
		}
	}
}

func TestSetParamVectorPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewLogistic(3, 2, stats.NewRNG(1)).SetParamVector(make([]float64, 5))
}

func TestAddToParams(t *testing.T) {
	m := NewLogistic(2, 2, stats.NewRNG(4))
	before := m.ParamVector()
	delta := make([]float64, len(before))
	for i := range delta {
		delta[i] = 0.5
	}
	m.AddToParams(delta)
	after := m.ParamVector()
	for i := range after {
		if math.Abs(after[i]-before[i]-0.5) > 1e-12 {
			t.Fatalf("AddToParams mismatch at %d", i)
		}
	}
}

func TestZeroGrads(t *testing.T) {
	r := stats.NewRNG(5)
	m := NewMLP(r, 4, 3)
	x := tensor.New(2, 4)
	x.RandNorm(r, 1)
	m.TrainBatch(x, []int{0, 1})
	if tensor.Norm2(m.GradVector()) == 0 {
		t.Fatal("gradients should be nonzero after TrainBatch")
	}
	m.ZeroGrads()
	if tensor.Norm2(m.GradVector()) != 0 {
		t.Fatal("ZeroGrads left residue")
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over K classes: loss = ln K.
	logits := tensor.New(1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln 4", loss)
	}
	// Gradient: softmax (0.25 each) minus one-hot.
	want := []float64{0.25, 0.25, -0.75, 0.25}
	for i, w := range want {
		if math.Abs(grad.Data[i]-w) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", i, grad.Data[i], w)
		}
	}
}

func TestSoftmaxGradRowsSumToZeroProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n, k := 3, 5
		logits := tensor.New(n, k)
		logits.RandNorm(r, 3)
		labels := []int{r.Intn(k), r.Intn(k), r.Intn(k)}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < k; j++ {
				sum += grad.At(i, j)
			}
			if math.Abs(sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStabilityLargeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 1001, 999}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 3, 2,
		5, 0, 0,
	}, 2, 3)
	pred := Predict(logits)
	if pred[0] != 1 || pred[1] != 0 {
		t.Fatalf("predictions %v", pred)
	}
	if acc := Accuracy(logits, []int{1, 2}); acc != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", acc)
	}
}

func TestSGDStepKnown(t *testing.T) {
	r := stats.NewRNG(6)
	m := NewLogistic(2, 2, r)
	m.SetParamVector(make([]float64, m.NumParams())) // zeros
	m.ZeroGrads()
	// Inject a known gradient.
	g := m.Layers[0].(*Dense).GradW
	g.Fill(1)
	NewSGD(0.1, 0, 0).Step(m)
	p := m.ParamVector()
	for i := 0; i < 4; i++ { // W entries
		if math.Abs(p[i]+0.1) > 1e-12 {
			t.Fatalf("param[%d] = %v, want -0.1", i, p[i])
		}
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	r := stats.NewRNG(7)
	m := NewLogistic(1, 2, r)
	m.SetParamVector(make([]float64, m.NumParams()))
	opt := NewSGD(1, 0.9, 0)
	step := func() float64 {
		m.ZeroGrads()
		m.Layers[0].(*Dense).GradW.Fill(1)
		before := m.ParamVector()[0]
		opt.Step(m)
		return before - m.ParamVector()[0]
	}
	d1 := step()
	d2 := step()
	if !(d2 > d1) {
		t.Fatalf("momentum step did not grow: %v then %v", d1, d2)
	}
	if math.Abs(d1-1) > 1e-12 || math.Abs(d2-1.9) > 1e-12 {
		t.Fatalf("steps %v, %v; want 1, 1.9", d1, d2)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	r := stats.NewRNG(8)
	m := NewLogistic(1, 2, r)
	v := m.ParamVector()
	for i := range v {
		v[i] = 1
	}
	m.SetParamVector(v)
	m.ZeroGrads()
	NewSGD(0.1, 0, 0.5).Step(m)
	for _, p := range m.ParamVector() {
		if math.Abs(p-0.95) > 1e-12 {
			t.Fatalf("weight decay produced %v, want 0.95", p)
		}
	}
}

func TestAdamDirection(t *testing.T) {
	a := NewAdam(0.01, 0, 0, 0)
	grad := []float64{1, -2, 0}
	d := a.DirectionVec(grad)
	if d[0] >= 0 || d[1] <= 0 {
		t.Fatalf("Adam direction not descent: %v", d)
	}
	if math.Abs(d[2]) > 1e-6 {
		t.Fatalf("zero gradient produced step %v", d[2])
	}
}

func TestAdamStepMagnitudeBounded(t *testing.T) {
	a := NewAdam(0.01, 0, 0, 0)
	for i := 0; i < 5; i++ {
		d := a.DirectionVec([]float64{100, -0.001})
		for _, v := range d {
			if math.Abs(v) > 0.011 {
				t.Fatalf("Adam step %v exceeds lr bound", v)
			}
		}
	}
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	r := stats.NewRNG(9)
	m := NewLogistic(2, 2, r)
	opt := NewSGD(0.5, 0, 0)
	n := 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		off := -2.0
		if cls == 1 {
			off = 2
		}
		x.Set(off+r.Norm()*0.3, i, 0)
		x.Set(r.Norm()*0.3, i, 1)
	}
	for epoch := 0; epoch < 50; epoch++ {
		m.ZeroGrads()
		m.TrainBatch(x, labels)
		opt.Step(m)
	}
	acc, _ := m.EvaluateBatched(x, labels, 16)
	if acc < 0.95 {
		t.Fatalf("logistic regression accuracy %v on separable data", acc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	r := stats.NewRNG(10)
	m := NewMLP(r, 4, 8, 3)
	opt := NewSGD(0.1, 0.9, 0)
	x := tensor.New(30, 4)
	x.RandNorm(r, 1)
	labels := make([]int, 30)
	for i := range labels {
		labels[i] = i % 3
		x.Set(x.At(i, labels[i])+3, i, labels[i]) // make class recoverable
	}
	m.ZeroGrads()
	first := m.TrainBatch(x, labels)
	opt.Step(m)
	var last float64
	for i := 0; i < 40; i++ {
		m.ZeroGrads()
		last = m.TrainBatch(x, labels)
		opt.Step(m)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestEvaluateBatchedMatchesSingleBatch(t *testing.T) {
	r := stats.NewRNG(11)
	m := NewMLP(r, 3, 5, 2)
	x := tensor.New(10, 3)
	x.RandNorm(r, 1)
	labels := make([]int, 10)
	for i := range labels {
		labels[i] = i % 2
	}
	a1, l1 := m.EvaluateBatched(x, labels, 10)
	a2, l2 := m.EvaluateBatched(x, labels, 3)
	if a1 != a2 || math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("batched eval mismatch: acc %v vs %v, loss %v vs %v", a1, a2, l1, l2)
	}
}

func TestModelSummaryMentionsLayers(t *testing.T) {
	m := NewPaperCNN(stats.NewRNG(12))
	s := m.Summary()
	for _, want := range []string{"conv5x5", "maxpool2x2", "dense(800->500)", "params=431080"} {
		if !contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestZooModelsForwardAndCount(t *testing.T) {
	r := stats.NewRNG(13)
	cases := []struct {
		name  string
		model *Model
	}{
		{"tiny", NewTinyCNN(16, 10, r)},
		{"vgglite", NewVGGLite(3, 16, 20, r)},
		{"resnetlite", NewResNetLite(3, 16, 10, r)},
	}
	for _, c := range cases {
		shape := append([]int{2}, c.model.InputShape...)
		x := tensor.New(shape...)
		x.RandNorm(r, 1)
		logits := c.model.Forward(x, false)
		if logits.Dim(0) != 2 || logits.Dim(1) != c.model.Classes {
			t.Errorf("%s: logits shape %v", c.name, logits.Shape())
		}
		if c.model.NumParams() == 0 {
			t.Errorf("%s: zero parameters", c.name)
		}
		if c.model.FLOPsPerSample() <= 0 {
			t.Errorf("%s: zero FLOPs estimate", c.name)
		}
	}
}

func TestFLOPsOrdering(t *testing.T) {
	r := stats.NewRNG(14)
	paper := NewPaperCNN(r)
	x := tensor.New(1, 1, 28, 28)
	paper.Forward(x, false)
	tiny := NewTinyCNN(16, 10, r)
	xt := tensor.New(1, 1, 16, 16)
	tiny.Forward(xt, false)
	if paper.FLOPsPerSample() <= tiny.FLOPsPerSample() {
		t.Fatalf("paper CNN should cost more than tiny: %v vs %v",
			paper.FLOPsPerSample(), tiny.FLOPsPerSample())
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D(2)
	y := p.Forward(x, false)
	want := []float64{4, 8, 12, 16}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	p := NewMaxPool2D(2)
	p.Forward(x, true)
	g := tensor.FromSlice([]float64{10}, 1, 1, 1, 1)
	dx := p.Backward(g)
	want := []float64{0, 0, 0, 10}
	for i, w := range want {
		if dx.Data[i] != w {
			t.Fatalf("dx[%d] = %v, want %v", i, dx.Data[i], w)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	x := tensor.FromSlice([]float64{-1, 2, -3, 4}, 1, 4)
	relu := NewReLU()
	y := relu.Forward(x, true)
	if y.Data[0] != 0 || y.Data[1] != 2 || y.Data[2] != 0 || y.Data[3] != 4 {
		t.Fatalf("relu forward %v", y.Data)
	}
	g := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4)
	dx := relu.Backward(g)
	if dx.Data[0] != 0 || dx.Data[1] != 1 || dx.Data[2] != 0 || dx.Data[3] != 1 {
		t.Fatalf("relu backward %v", dx.Data)
	}
}

func TestConvKnownValues(t *testing.T) {
	r := stats.NewRNG(15)
	c := NewConv2D(1, 1, 2, 0, r)
	// Kernel [[1,0],[0,1]], bias 1.
	copy(c.W.Data, []float64{1, 0, 0, 1})
	c.B.Data[0] = 1
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := c.Forward(x, false)
	// y[oy][ox] = x[oy][ox] + x[oy+1][ox+1] + 1
	want := []float64{1 + 5 + 1, 2 + 6 + 1, 4 + 8 + 1, 5 + 9 + 1}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("conv[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestDeterministicInitFromSeed(t *testing.T) {
	a := NewPaperCNN(stats.NewRNG(99))
	b := NewPaperCNN(stats.NewRNG(99))
	va, vb := a.ParamVector(), b.ParamVector()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("same-seed models differ at %d", i)
		}
	}
}
