package nn

import (
	"fmt"

	"adafl/internal/tensor"
)

// MaxPool2D downsamples each channel plane by taking the maximum over
// non-overlapping Size×Size windows (stride = Size). Input height and width
// must be divisible by Size, matching the paper CNN's 2×2 pooling.
type MaxPool2D struct {
	statelessBase
	Size int

	argmax  []int // flat input index of each output's max, for backward
	inShape []int

	// Train-mode buffers recycled across steps (see ensureTensor).
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewMaxPool2D returns a pooling layer with the given window size.
func NewMaxPool2D(size int) *MaxPool2D {
	if size <= 0 {
		panic("nn: non-positive pool size")
	}
	return &MaxPool2D{Size: size}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool%dx%d", p.Size, p.Size) }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: maxpool forward shape %v, want rank 4", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	s := p.Size
	if h%s != 0 || w%s != 0 {
		panic(fmt.Sprintf("nn: maxpool input %dx%d not divisible by %d", h, w, s))
	}
	oh, ow := h/s, w/s
	var y *tensor.Tensor
	var argmax []int
	if train {
		p.y = ensureTensor(p.y, n, c, oh, ow)
		y = p.y
		if cap(p.argmax) < n*c*oh*ow {
			p.argmax = make([]int, n*c*oh*ow)
		}
		argmax = p.argmax[:n*c*oh*ow]
	} else {
		y = tensor.New(n, c, oh, ow)
	}
	for nc := 0; nc < n*c; nc++ {
		inPlane := x.Data[nc*h*w:][: h*w : h*w]
		outPlane := y.Data[nc*oh*ow:][: oh*ow : oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := (oy*s)*w + ox*s
				best := inPlane[bestIdx]
				for ky := 0; ky < s; ky++ {
					rowOff := (oy*s+ky)*w + ox*s
					for kx := 0; kx < s; kx++ {
						if v := inPlane[rowOff+kx]; v > best {
							best = v
							bestIdx = rowOff + kx
						}
					}
				}
				outPlane[oy*ow+ox] = best
				if train {
					argmax[nc*oh*ow+oy*ow+ox] = nc*h*w + bestIdx
				}
			}
		}
	}
	if train {
		p.argmax = argmax
		p.inShape = append(p.inShape[:0], n, c, h, w)
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: maxpool backward before forward")
	}
	p.dx = ensureTensor(p.dx, p.inShape...)
	dx := p.dx
	dx.Zero() // gradients scatter with +=
	for i, g := range gradOut.Data {
		dx.Data[p.argmax[i]] += g
	}
	return dx
}

// Flatten reshapes (N, ...) input into (N, D) for the dense head.
type Flatten struct {
	statelessBase
	inShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	return x.Reshape(n, x.Size()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.inShape...)
}
