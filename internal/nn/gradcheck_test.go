package nn

import (
	"math"
	"testing"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// numericGradCheck compares the model's backpropagated parameter gradient
// against a central finite difference of the loss, elementwise, on a small
// random batch. It is the ground-truth correctness test for every layer.
func numericGradCheck(t *testing.T, m *Model, batch int, seed uint64, tol float64) {
	t.Helper()
	r := stats.NewRNG(seed)
	shape := append([]int{batch}, m.InputShape...)
	x := tensor.New(shape...)
	x.RandNorm(r, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = r.Intn(m.Classes)
	}

	m.ZeroGrads()
	m.TrainBatch(x, labels)
	analytic := m.GradVector()

	params := m.ParamVector()
	lossAt := func() float64 {
		logits := m.Forward(x, false)
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	const eps = 1e-5
	// Check a deterministic subsample of parameters to keep runtime sane.
	stride := len(params)/60 + 1
	checked := 0
	for i := 0; i < len(params); i += stride {
		orig := params[i]
		params[i] = orig + eps
		m.SetParamVector(params)
		lp := lossAt()
		params[i] = orig - eps
		m.SetParamVector(params)
		lm := lossAt()
		params[i] = orig
		m.SetParamVector(params)

		numeric := (lp - lm) / (2 * eps)
		diff := math.Abs(numeric - analytic[i])
		scale := math.Max(1, math.Abs(numeric)+math.Abs(analytic[i]))
		if diff/scale > tol {
			t.Fatalf("grad mismatch at param %d: analytic=%.8f numeric=%.8f", i, analytic[i], numeric)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
}

func TestGradCheckLogistic(t *testing.T) {
	r := stats.NewRNG(1)
	numericGradCheck(t, NewLogistic(6, 3, r), 4, 2, 1e-5)
}

func TestGradCheckMLP(t *testing.T) {
	r := stats.NewRNG(3)
	numericGradCheck(t, NewMLP(r, 8, 12, 5), 4, 4, 1e-4)
}

func TestGradCheckDeepMLP(t *testing.T) {
	r := stats.NewRNG(5)
	numericGradCheck(t, NewMLP(r, 6, 10, 8, 4), 3, 6, 1e-4)
}

func TestGradCheckConvModel(t *testing.T) {
	r := stats.NewRNG(7)
	m := NewModel([]int{1, 8, 8}, 3,
		NewConv2D(1, 4, 3, 1, r),
		NewMaxPool2D(2),
		NewReLU(),
		NewFlatten(),
		NewDense(4*4*4, 3, r),
	)
	numericGradCheck(t, m, 2, 8, 1e-4)
}

func TestGradCheckConvNoPad(t *testing.T) {
	r := stats.NewRNG(9)
	m := NewModel([]int{2, 6, 6}, 2,
		NewConv2D(2, 3, 3, 0, r), // -> 3×4×4
		NewMaxPool2D(2),
		NewReLU(),
		NewFlatten(),
		NewDense(3*2*2, 2, r),
	)
	numericGradCheck(t, m, 2, 10, 1e-4)
}

func TestGradCheckTanh(t *testing.T) {
	r := stats.NewRNG(11)
	m := NewModel([]int{5}, 3,
		NewDense(5, 7, r),
		NewTanh(),
		NewDense(7, 3, r),
	)
	numericGradCheck(t, m, 4, 12, 1e-4)
}

func TestGradCheckResidualBlock(t *testing.T) {
	r := stats.NewRNG(13)
	m := NewModel([]int{2, 4, 4}, 2,
		NewConv2D(1, 2, 1, 0, r), // cheap channel lift done outside; keep block input 2ch
		NewResidualBlock(2, r),
		NewFlatten(),
		NewDense(2*4*4, 2, r),
	)
	// Fix the input channel mismatch: use 1-channel input lifted to 2.
	m.InputShape = []int{1, 4, 4}
	numericGradCheck(t, m, 2, 14, 1e-4)
}

func TestGradCheckPaperCNNTopologyMini(t *testing.T) {
	// A shrunken version of the paper CNN's exact topology (two valid
	// 5×5 convs + pools + dense) to keep the finite-difference check fast.
	r := stats.NewRNG(15)
	m := NewModel([]int{1, 16, 16}, 4,
		NewConv2D(1, 3, 5, 0, r), // -> 3×12×12
		NewMaxPool2D(2),          // -> 3×6×6
		NewReLU(),
		NewConv2D(3, 4, 3, 0, r), // -> 4×4×4
		NewMaxPool2D(2),          // -> 4×2×2
		NewReLU(),
		NewFlatten(),
		NewDense(16, 8, r),
		NewReLU(),
		NewDense(8, 4, r),
	)
	numericGradCheck(t, m, 2, 16, 1e-4)
}
