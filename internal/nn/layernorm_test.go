package nn

import (
	"math"
	"testing"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

func TestLayerNormForwardNormalises(t *testing.T) {
	l := NewLayerNorm(4)
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 10, 10, 10}, 2, 4)
	y := l.Forward(x, false)
	// Row 0: zero mean, ~unit variance under γ=1, β=0.
	mean := 0.0
	for _, v := range y.Data[:4] {
		mean += v
	}
	if math.Abs(mean/4) > 1e-9 {
		t.Fatalf("row mean %v, want 0", mean/4)
	}
	variance := 0.0
	for _, v := range y.Data[:4] {
		variance += v * v
	}
	if math.Abs(variance/4-1) > 1e-3 {
		t.Fatalf("row variance %v, want ~1", variance/4)
	}
	// Row 1 is constant: output must be ~0 (no NaN from zero variance).
	for _, v := range y.Data[4:] {
		if math.IsNaN(v) || math.Abs(v) > 1e-2 {
			t.Fatalf("constant row produced %v", v)
		}
	}
}

func TestLayerNormAffine(t *testing.T) {
	l := NewLayerNorm(2)
	l.Gamma.Data[0], l.Gamma.Data[1] = 2, 3
	l.Beta.Data[0], l.Beta.Data[1] = 10, -10
	x := tensor.FromSlice([]float64{-1, 1}, 1, 2)
	y := l.Forward(x, false)
	// ĥ = (-1, 1) (mean 0, var 1), so y = (2·-1+10, 3·1-10).
	if math.Abs(y.Data[0]-8) > 1e-3 || math.Abs(y.Data[1]+7) > 1e-3 {
		t.Fatalf("affine output %v", y.Data)
	}
}

func TestGradCheckLayerNormModel(t *testing.T) {
	r := stats.NewRNG(40)
	m := NewModel([]int{6}, 3,
		NewDense(6, 8, r),
		NewLayerNorm(8),
		NewReLU(),
		NewDense(8, 3, r),
	)
	numericGradCheck(t, m, 3, 41, 1e-4)
}

func TestLayerNormShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong width accepted")
		}
	}()
	NewLayerNorm(4).Forward(tensor.New(1, 5), false)
}

func TestLayerNormTrainsInModel(t *testing.T) {
	r := stats.NewRNG(42)
	m := NewModel([]int{1, 6, 6}, 4,
		NewFlatten(),
		NewDense(36, 24, r),
		NewLayerNorm(24),
		NewReLU(),
		NewDense(24, 4, r),
	)
	trainingSmokeTest(t, m, 43)
}
