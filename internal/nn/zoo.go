package nn

import (
	"fmt"

	"adafl/internal/stats"
)

// The model zoo. Each constructor takes an RNG so that federated clients
// and the server can build byte-identical initial models from a shared
// seed.

// NewPaperCNN builds the exact CNN the paper evaluates on MNIST
// (Wang et al. [27]): two 5×5 convolutions with 20 and 50 output channels,
// each followed by 2×2 max pooling, then a 500-unit dense layer and the
// classifier head. On 28×28×1 input it has ~431k parameters, matching the
// paper's 1.64 MB float32 gradient size.
func NewPaperCNN(r *stats.RNG) *Model {
	return NewModel([]int{1, 28, 28}, 10,
		NewConv2D(1, 20, 5, 0, r), // -> 20×24×24
		NewMaxPool2D(2),           // -> 20×12×12
		NewReLU(),
		NewConv2D(20, 50, 5, 0, r), // -> 50×8×8
		NewMaxPool2D(2),            // -> 50×4×4
		NewReLU(),
		NewFlatten(), // -> 800
		NewDense(800, 500, r),
		NewReLU(),
		NewDense(500, 10, r),
	)
}

// NewTinyCNN builds a scaled-down CNN over size×size single-channel input
// (size must be divisible by 4). It preserves the paper CNN's topology
// (conv-pool-conv-pool-dense) at a fraction of the cost, for fast test and
// bench presets.
func NewTinyCNN(size, classes int, r *stats.RNG) *Model {
	if size%4 != 0 {
		panic(fmt.Sprintf("nn: TinyCNN size %d not divisible by 4", size))
	}
	q := size / 4
	return NewModel([]int{1, size, size}, classes,
		NewConv2D(1, 8, 3, 1, r),
		NewMaxPool2D(2),
		NewReLU(),
		NewConv2D(8, 16, 3, 1, r),
		NewMaxPool2D(2),
		NewReLU(),
		NewFlatten(),
		NewDense(16*q*q, 32, r),
		NewReLU(),
		NewDense(32, classes, r),
	)
}

// NewMLP builds a multilayer perceptron over flat input. sizes lists the
// layer widths starting with the input dimension and ending with the class
// count, e.g. NewMLP(r, 64, 32, 10).
func NewMLP(r *stats.RNG, sizes ...int) *Model {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	layers := make([]Layer, 0, 2*len(sizes))
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewDense(sizes[i], sizes[i+1], r))
		if i+2 < len(sizes) {
			layers = append(layers, NewReLU())
		}
	}
	return NewModel([]int{sizes[0]}, sizes[len(sizes)-1], layers...)
}

// NewImageMLP builds a Flatten + MLP stack over image-shaped input, the
// cheap model used wherever experiments need many repetitions (the conv
// models dominate runtime otherwise). hidden lists the hidden widths.
func NewImageMLP(inputShape []int, hidden []int, classes int, r *stats.RNG) *Model {
	in := 1
	for _, d := range inputShape {
		in *= d
	}
	layers := []Layer{NewFlatten()}
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, r), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, classes, r))
	return NewModel(inputShape, classes, layers...)
}

// NewLogistic builds a linear softmax classifier — the cheapest member of
// the zoo, used by unit tests that need an exactly analysable model.
func NewLogistic(in, classes int, r *stats.RNG) *Model {
	return NewModel([]int{in}, classes, NewDense(in, classes, r))
}

// NewVGGLite builds a VGG-style network (stacked 3×3 conv pairs with
// pooling) over size×size×inC input, standing in for the paper's VGG-Net
// on CIFAR-100. size must be divisible by 4.
func NewVGGLite(inC, size, classes int, r *stats.RNG) *Model {
	if size%4 != 0 {
		panic(fmt.Sprintf("nn: VGGLite size %d not divisible by 4", size))
	}
	q := size / 4
	return NewModel([]int{inC, size, size}, classes,
		NewConv2D(inC, 16, 3, 1, r),
		NewReLU(),
		NewConv2D(16, 16, 3, 1, r),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(16, 32, 3, 1, r),
		NewReLU(),
		NewConv2D(32, 32, 3, 1, r),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(32*q*q, 128, r),
		NewReLU(),
		NewDense(128, classes, r),
	)
}

// NewResNetLite builds a small residual network over size×size×inC input,
// standing in for the paper's ResNet-50 on CIFAR-10. size must be divisible
// by 4.
func NewResNetLite(inC, size, classes int, r *stats.RNG) *Model {
	if size%4 != 0 {
		panic(fmt.Sprintf("nn: ResNetLite size %d not divisible by 4", size))
	}
	q := size / 4
	return NewModel([]int{inC, size, size}, classes,
		NewConv2D(inC, 16, 3, 1, r),
		NewReLU(),
		NewResidualBlock(16, r),
		NewMaxPool2D(2),
		NewResidualBlock(16, r),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(16*q*q, classes, r),
	)
}
