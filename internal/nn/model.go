package nn

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"adafl/internal/tensor"
)

// Model is a sequential stack of layers with flat parameter/gradient vector
// views, which is the interface the federated-learning layer consumes.
type Model struct {
	Layers []Layer
	// InputShape is the per-sample input shape (without the batch
	// dimension), e.g. [1, 28, 28] for the paper CNN.
	InputShape []int
	Classes    int

	// lossGrad is the reused logit-gradient buffer of TrainBatch. Training
	// is single-threaded per model, so one scratch tensor suffices.
	lossGrad *tensor.Tensor
}

// NewModel wraps layers into a model. inputShape is the per-sample shape.
func NewModel(inputShape []int, classes int, layers ...Layer) *Model {
	return &Model{Layers: layers, InputShape: append([]int(nil), inputShape...), Classes: classes}
}

// Forward runs a batch through all layers and returns the logits.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient back through all layers,
// accumulating parameter gradients.
func (m *Model) Backward(grad *tensor.Tensor) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
}

// TrainBatch performs one forward/backward pass on (x, labels), leaving the
// accumulated gradients in the model, and returns the batch loss.
// Callers are responsible for zeroing gradients between steps.
func (m *Model) TrainBatch(x *tensor.Tensor, labels []int) float64 {
	logits := m.Forward(x, true)
	m.lossGrad = ensureTensor(m.lossGrad, logits.Dim(0), logits.Dim(1))
	loss := SoftmaxCrossEntropyInto(m.lossGrad, logits, labels)
	m.Backward(m.lossGrad)
	return loss
}

// NumParams returns the total number of trainable scalars.
func (m *Model) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			n += p.Size()
		}
	}
	return n
}

// ParamVector flattens all trainable parameters into a single vector in
// deterministic layer order.
func (m *Model) ParamVector() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			out = append(out, p.Data...)
		}
	}
	return out
}

// SetParamVector loads a flat vector produced by ParamVector back into the
// model's parameter tensors. It panics on length mismatch.
func (m *Model) SetParamVector(v []float64) {
	off := 0
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			n := copy(p.Data, v[off:off+p.Size()])
			off += n
		}
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: parameter vector length %d, model has %d", len(v), off))
	}
}

// GradVector flattens all accumulated gradients into a single vector
// aligned with ParamVector.
func (m *Model) GradVector() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, l := range m.Layers {
		for _, g := range l.Grads() {
			out = append(out, g.Data...)
		}
	}
	return out
}

// ZeroGrads clears all accumulated gradients.
func (m *Model) ZeroGrads() {
	for _, l := range m.Layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}

// AddToParams applies params += delta over the flat parameter view.
func (m *Model) AddToParams(delta []float64) {
	off := 0
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			for i := range p.Data {
				p.Data[i] += delta[off+i]
			}
			off += p.Size()
		}
	}
	if off != len(delta) {
		panic(fmt.Sprintf("nn: delta vector length %d, model has %d", len(delta), off))
	}
}

// FLOPsPerSample sums the cost estimates of all counting layers.
func (m *Model) FLOPsPerSample() float64 {
	total := 0.0
	for _, l := range m.Layers {
		if fc, ok := l.(FLOPCounter); ok {
			total += fc.FLOPsPerSample()
		}
	}
	return total
}

// Summary returns a one-line-per-layer description.
func (m *Model) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model: input=%v classes=%d params=%d\n", m.InputShape, m.Classes, m.NumParams())
	for i, l := range m.Layers {
		fmt.Fprintf(&b, "  %2d: %s\n", i, l.Name())
	}
	return b.String()
}

// EvaluateBatched computes accuracy and mean loss over (x, labels) in
// batches of batchSize. Batches are evaluated in parallel across CPUs —
// evaluation-mode forward passes touch no layer state — and reduced in
// deterministic batch order.
func (m *Model) EvaluateBatched(x *tensor.Tensor, labels []int, batchSize int) (acc, loss float64) {
	n := x.Dim(0)
	if n == 0 {
		return 0, 0
	}
	if batchSize <= 0 {
		batchSize = n
	}
	perSample := x.Size() / n
	numBatches := (n + batchSize - 1) / batchSize
	type partial struct {
		correct int
		loss    float64
	}
	partials := make([]partial, numBatches)

	workers := runtime.GOMAXPROCS(0)
	if workers > numBatches {
		workers = numBatches
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1))
				if b >= numBatches {
					return
				}
				start := b * batchSize
				end := min(start+batchSize, n)
				shape := append([]int{end - start}, m.InputShape...)
				batch := tensor.FromSlice(x.Data[start*perSample:end*perSample], shape...)
				logits := m.Forward(batch, false)
				l, _ := SoftmaxCrossEntropy(logits, labels[start:end])
				p := partial{loss: l * float64(end-start)}
				for i, pred := range Predict(logits) {
					if pred == labels[start+i] {
						p.correct++
					}
				}
				partials[b] = p
			}
		}()
	}
	wg.Wait()

	correct := 0
	totalLoss := 0.0
	for _, p := range partials {
		correct += p.correct
		totalLoss += p.loss
	}
	return float64(correct) / float64(n), totalLoss / float64(n)
}
