package nn

import (
	"fmt"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// ResidualBlock computes y = relu(conv2(relu(conv1(x))) + x) with 3×3
// same-padding convolutions, the basic building block of the ResNetLite
// stand-in for the paper's ResNet-50. Channel count is preserved so the
// skip connection is an identity.
type ResidualBlock struct {
	C int

	conv1, conv2 *Conv2D
	relu1        *ReLU

	sumMask []bool // relu mask over (conv path + skip)
}

// NewResidualBlock returns an identity-skip residual block over c channels.
func NewResidualBlock(c int, r *stats.RNG) *ResidualBlock {
	return &ResidualBlock{
		C:     c,
		conv1: NewConv2D(c, c, 3, 1, r),
		conv2: NewConv2D(c, c, 3, 1, r),
		relu1: NewReLU(),
	}
}

// Name implements Layer.
func (b *ResidualBlock) Name() string { return fmt.Sprintf("resblock(%dch)", b.C) }

// Forward implements Layer.
func (b *ResidualBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := b.conv1.Forward(x, train)
	h = b.relu1.Forward(h, train)
	h = b.conv2.Forward(h, train)
	y := h.Clone()
	y.AddInPlace(x)
	var mask []bool
	if train {
		mask = make([]bool, len(y.Data))
	}
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
		} else if train {
			mask[i] = true
		}
	}
	if train {
		b.sumMask = mask
	}
	return y
}

// Backward implements Layer.
func (b *ResidualBlock) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if b.sumMask == nil {
		panic("nn: residual backward before forward")
	}
	g := gradOut.Clone()
	for i := range g.Data {
		if !b.sumMask[i] {
			g.Data[i] = 0
		}
	}
	// g flows both through the conv path and the skip.
	dPath := b.conv2.Backward(g)
	dPath = b.relu1.Backward(dPath)
	dPath = b.conv1.Backward(dPath)
	dPath.AddInPlace(g)
	return dPath
}

// Params implements Layer.
func (b *ResidualBlock) Params() []*tensor.Tensor {
	return append(b.conv1.Params(), b.conv2.Params()...)
}

// Grads implements Layer.
func (b *ResidualBlock) Grads() []*tensor.Tensor {
	return append(b.conv1.Grads(), b.conv2.Grads()...)
}

// FLOPsPerSample implements FLOPCounter.
func (b *ResidualBlock) FLOPsPerSample() float64 {
	return b.conv1.FLOPsPerSample() + b.conv2.FLOPsPerSample()
}
