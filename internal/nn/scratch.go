package nn

import "adafl/internal/tensor"

// ensureTensor returns a tensor of exactly the given shape, reusing t's
// backing storage when the element count matches. Layers use it for their
// train-mode activation and gradient buffers: within one training step the
// backward pass completes before the next forward, so per-layer buffers can
// be recycled across steps without aliasing live data. The contents are NOT
// cleared — callers that accumulate must Zero() explicitly.
//
// Eval-mode forwards must not use per-layer buffers: Model.EvaluateBatched
// runs eval forwards concurrently on a shared model.
func ensureTensor(t *tensor.Tensor, shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if t == nil || len(t.Data) != n {
		return tensor.New(shape...)
	}
	if sameShape(t.Shape(), shape) {
		return t
	}
	return tensor.FromSlice(t.Data, shape...)
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
