package nn

import "math"

// Optimizer updates a model's parameters from its accumulated gradients.
type Optimizer interface {
	// Step applies one update using the model's current gradients and then
	// leaves the gradients untouched (callers zero them).
	Step(m *Model)
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay — the client-side optimizer throughout the paper's experiments.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step implements Optimizer.
func (s *SGD) Step(m *Model) {
	grad := m.GradVector()
	params := m.ParamVector()
	if s.WeightDecay != 0 {
		for i := range grad {
			grad[i] += s.WeightDecay * params[i]
		}
	}
	if s.Momentum != 0 {
		if s.velocity == nil {
			s.velocity = make([]float64, len(grad))
		}
		for i := range grad {
			s.velocity[i] = s.Momentum*s.velocity[i] + grad[i]
			params[i] -= s.LR * s.velocity[i]
		}
	} else {
		for i := range grad {
			params[i] -= s.LR * grad[i]
		}
	}
	m.SetParamVector(params)
}

// Adam is the adaptive-moment optimizer; the server side of FedAdam uses
// the same vector-space update via AdamVec.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	mVec []float64
	vVec []float64
}

// NewAdam returns an Adam optimizer with the usual defaults for zero
// hyperparameters (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr, beta1, beta2, eps float64) *Adam {
	if beta1 == 0 {
		beta1 = 0.9
	}
	if beta2 == 0 {
		beta2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	return &Adam{LR: lr, Beta1: beta1, Beta2: beta2, Eps: eps}
}

// Step implements Optimizer.
func (a *Adam) Step(m *Model) {
	params := m.ParamVector()
	grad := m.GradVector()
	step := a.DirectionVec(grad)
	for i := range params {
		params[i] += step[i]
	}
	m.SetParamVector(params)
}

// DirectionVec returns the Adam parameter delta (already multiplied by the
// learning rate and negated for descent) for a raw gradient vector. This is
// the form server-side adaptive aggregation (FedAdam) consumes: it treats
// the average client delta as a pseudo-gradient.
func (a *Adam) DirectionVec(grad []float64) []float64 {
	if a.mVec == nil {
		a.mVec = make([]float64, len(grad))
		a.vVec = make([]float64, len(grad))
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	out := make([]float64, len(grad))
	for i, g := range grad {
		a.mVec[i] = a.Beta1*a.mVec[i] + (1-a.Beta1)*g
		a.vVec[i] = a.Beta2*a.vVec[i] + (1-a.Beta2)*g*g
		mHat := a.mVec[i] / bc1
		vHat := a.vVec[i] / bc2
		out[i] = -a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
	return out
}
