package nn

import (
	"testing"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// BenchmarkConvForwardBackward measures one train-mode forward+backward
// through the paper CNN's two convolution layers on a batch of 8 — the
// GEMM-dominated core of every simulated client step.
func BenchmarkConvForwardBackward(b *testing.B) {
	r := stats.NewRNG(1)
	conv1 := NewConv2D(1, 20, 5, 0, r)  // 28×28 -> 24×24
	conv2 := NewConv2D(20, 50, 5, 0, r) // 24×24 -> 20×20 (no pool, pure conv cost)
	x := tensor.New(8, 1, 28, 28)
	x.RandNorm(stats.NewRNG(2), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := conv1.Forward(x, true)
		y := conv2.Forward(h, true)
		g := conv2.Backward(y)
		conv1.Backward(g)
	}
}

// BenchmarkConvForwardEval measures an eval-mode forward (the path
// model evaluation fans out across goroutines), tracking the scratch
// allocations the shared buffer pool is meant to remove.
func BenchmarkConvForwardEval(b *testing.B) {
	r := stats.NewRNG(3)
	conv := NewConv2D(1, 20, 5, 0, r)
	x := tensor.New(8, 1, 28, 28)
	x.RandNorm(stats.NewRNG(4), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

// BenchmarkDenseForwardBackward measures the dense head at paper shape.
func BenchmarkDenseForwardBackward(b *testing.B) {
	r := stats.NewRNG(5)
	d := NewDense(800, 500, r)
	x := tensor.New(8, 800)
	x.RandNorm(stats.NewRNG(6), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := d.Forward(x, true)
		d.Backward(y)
	}
}
