package nn

import (
	"testing"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// trainingSmokeTest runs a few optimizer steps on random-but-learnable
// data and asserts the loss decreases — the cheapest end-to-end sanity
// check that a zoo architecture's backward pass is wired correctly.
func trainingSmokeTest(t *testing.T, m *Model, seed uint64) {
	t.Helper()
	r := stats.NewRNG(seed)
	batch := 8
	shape := append([]int{batch}, m.InputShape...)
	x := tensor.New(shape...)
	x.RandNorm(r, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % m.Classes
		// Plant a recoverable signal: bias the first pixels by the label.
		perSample := x.Size() / batch
		x.Data[i*perSample] += float64(labels[i])
	}
	opt := NewSGD(0.05, 0.9, 0)
	m.ZeroGrads()
	first := m.TrainBatch(x, labels)
	opt.Step(m)
	last := first
	for s := 0; s < 25; s++ {
		m.ZeroGrads()
		last = m.TrainBatch(x, labels)
		opt.Step(m)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestVGGLiteTrains(t *testing.T) {
	trainingSmokeTest(t, NewVGGLite(3, 8, 4, stats.NewRNG(1)), 2)
}

func TestResNetLiteTrains(t *testing.T) {
	trainingSmokeTest(t, NewResNetLite(3, 8, 4, stats.NewRNG(3)), 4)
}

func TestTinyCNNTrains(t *testing.T) {
	trainingSmokeTest(t, NewTinyCNN(8, 4, stats.NewRNG(5)), 6)
}

func TestImageMLPTrains(t *testing.T) {
	trainingSmokeTest(t, NewImageMLP([]int{1, 6, 6}, []int{16}, 4, stats.NewRNG(7)), 8)
}

func TestPaperCNNTrainsOneStep(t *testing.T) {
	// One step on the full 431k model to confirm the real architecture's
	// gradients flow; kept to a single small batch for speed.
	m := NewPaperCNN(stats.NewRNG(9))
	r := stats.NewRNG(10)
	x := tensor.New(2, 1, 28, 28)
	x.RandNorm(r, 1)
	labels := []int{3, 7}
	opt := NewSGD(0.01, 0, 0)
	m.ZeroGrads()
	first := m.TrainBatch(x, labels)
	opt.Step(m)
	m.ZeroGrads()
	second := m.TrainBatch(x, labels)
	if second >= first {
		t.Fatalf("paper CNN loss did not decrease: %v -> %v", first, second)
	}
}
