package nn

import (
	"fmt"
	"math"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// Dense is a fully-connected layer computing y = xW + b for batched input
// x of shape (N, In).
type Dense struct {
	In, Out int

	W *tensor.Tensor // (In, Out)
	B *tensor.Tensor // (Out)

	GradW *tensor.Tensor
	GradB *tensor.Tensor

	x *tensor.Tensor // cached input for backward

	// Train-mode output and input-gradient buffers, recycled across steps
	// (see ensureTensor); eval forwards allocate fresh so they stay safe
	// under EvaluateBatched's concurrency.
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewDense constructs a dense layer with He-initialised weights drawn from
// r and zero biases.
func NewDense(in, out int, r *stats.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:     tensor.New(in, out),
		B:     tensor.New(out),
		GradW: tensor.New(in, out),
		GradB: tensor.New(out),
	}
	d.W.RandNorm(r, math.Sqrt(2/float64(in)))
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: dense forward shape %v, want (N, %d)", x.Shape(), d.In))
	}
	var y *tensor.Tensor
	if train {
		d.x = x
		d.y = ensureTensor(d.y, n, d.Out)
		y = d.y
	} else {
		y = tensor.New(n, d.Out)
	}
	tensor.MatMulInto(y, x, d.W)
	for i := 0; i < n; i++ {
		row := y.Data[i*d.Out : (i+1)*d.Out]
		for j, b := range d.B.Data {
			row[j] += b
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: dense backward before forward")
	}
	n := gradOut.Dim(0)
	// dW += xᵀ gradOut ; db += column sums ; dx = gradOut Wᵀ
	tensor.MatMulTransposeA(d.GradW, d.x, gradOut)
	for i := 0; i < n; i++ {
		row := gradOut.Data[i*d.Out : (i+1)*d.Out]
		for j, g := range row {
			d.GradB.Data[j] += g
		}
	}
	d.dx = ensureTensor(d.dx, n, d.In)
	dx := d.dx
	tensor.MatMulTransposeB(dx, gradOut, d.W)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.GradW, d.GradB} }

// FLOPsPerSample implements FLOPCounter.
func (d *Dense) FLOPsPerSample() float64 { return float64(d.In) * float64(d.Out) }
