// Package stats provides deterministic pseudo-random number generation and
// small statistical utilities used across the simulator. Every stochastic
// component in the repository draws from a stats.RNG seeded explicitly, so
// that experiments are exactly reproducible run to run.
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RNG is a splitmix64-based pseudo-random generator. It is deliberately not
// math/rand: we want a tiny, allocation-free generator whose sequence is
// stable across Go releases, so recorded experiment outputs stay comparable.
type RNG struct {
	state uint64
	// spare holds a cached second Gaussian sample from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// rngGobLen is state(8) + spare(8) + spareOK(1).
const rngGobLen = 17

// GobEncode implements gob.GobEncoder, capturing the generator's exact
// position (including the cached Box-Muller spare) so checkpointed
// sessions resume their random streams mid-sequence rather than
// replaying from the seed.
func (r *RNG) GobEncode() ([]byte, error) {
	buf := make([]byte, rngGobLen)
	binary.LittleEndian.PutUint64(buf[0:8], r.state)
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(r.spare))
	if r.spareOK {
		buf[16] = 1
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (r *RNG) GobDecode(data []byte) error {
	if len(data) != rngGobLen {
		return fmt.Errorf("stats: RNG state is %d bytes, want %d", len(data), rngGobLen)
	}
	r.state = binary.LittleEndian.Uint64(data[0:8])
	r.spare = math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
	r.spareOK = data[16] == 1
	return nil
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's by mixing a large odd constant into the state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64()*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		mag := math.Sqrt(-2 * math.Log(u))
		r.spare = mag * math.Sin(2*math.Pi*v)
		r.spareOK = true
		return mag * math.Cos(2*math.Pi*v)
	}
}

// NormScaled returns a normal sample with the given mean and stddev.
func (r *RNG) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Dirichlet draws a sample from a symmetric Dirichlet distribution with
// concentration alpha over k categories. It uses the Gamma(alpha, 1)
// normalisation construction with Marsaglia-Tsang gamma sampling.
func (r *RNG) Dirichlet(alpha float64, k int) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := 0; i < k; i++ {
		g := r.gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (can happen for very small alpha); fall back to
		// a one-hot sample, which is the alpha->0 limit of the Dirichlet.
		out[r.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gamma samples Gamma(shape, 1) using Marsaglia-Tsang, with the standard
// boosting trick for shape < 1.
func (r *RNG) gamma(shape float64) float64 {
	if shape <= 0 {
		panic("stats: gamma with non-positive shape")
	}
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
