package stats

import (
	"math"
	"testing"
)

// TestSummarizeSingleElement: with one sample every location statistic
// collapses onto it and the n-1 spread estimate is defined as zero.
func TestSummarizeSingleElement(t *testing.T) {
	s := Summarize([]float64{7.5})
	if s.N != 1 || s.Mean != 7.5 || s.Min != 7.5 || s.Max != 7.5 || s.Median != 7.5 {
		t.Fatalf("single-element summary: %+v", s)
	}
	if s.Std != 0 {
		t.Fatalf("single-element std = %v, want 0", s.Std)
	}
}

// TestSummarizeAllEqual: a constant sample has zero spread at every n
// (the n-1 divisor must not introduce rounding noise) and the confidence
// interval is exactly zero, not a small positive artifact.
func TestSummarizeAllEqual(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = -2.25
		}
		s := Summarize(xs)
		if s.Mean != -2.25 || s.Min != -2.25 || s.Max != -2.25 || s.Median != -2.25 {
			t.Fatalf("n=%d: all-equal summary %+v", n, s)
		}
		if s.Std != 0 {
			t.Fatalf("n=%d: all-equal std = %v, want 0", n, s.Std)
		}
		if ci := CI95(xs); ci != 0 {
			t.Fatalf("n=%d: all-equal CI95 = %v, want 0", n, ci)
		}
	}
}

// TestSummarizeMedianParity pins both parities with unsorted input: the
// median must come from a sorted copy, not the caller's ordering.
func TestSummarizeMedianParity(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Fatalf("odd median = %v, want 5", m)
	}
	if m := Summarize([]float64{9, 1, 5, 3}).Median; m != 4 {
		t.Fatalf("even median = %v, want 4", m)
	}
}

// TestSummarizeDoesNotMutateInput: Summarize sorts internally; the
// caller's slice order must survive.
func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input reordered: %v", xs)
	}
}

// TestCI95Empty: fewer than two samples give no spread estimate.
func TestCI95Empty(t *testing.T) {
	if ci := CI95(nil); ci != 0 {
		t.Fatalf("CI95(nil) = %v, want 0", ci)
	}
	if ci := CI95([]float64{}); ci != 0 {
		t.Fatalf("CI95(empty) = %v, want 0", ci)
	}
}

// TestCI95ShrinksWithN: quadrupling the sample size of the same
// distribution should roughly halve the interval (1/√n scaling).
func TestCI95ShrinksWithN(t *testing.T) {
	small := []float64{1, 2, 1, 2}
	big := make([]float64, 0, 16)
	for i := 0; i < 4; i++ {
		big = append(big, small...)
	}
	ciSmall, ciBig := CI95(small), CI95(big)
	if ciBig >= ciSmall {
		t.Fatalf("CI95 did not shrink: n=4 %v vs n=16 %v", ciSmall, ciBig)
	}
	if ratio := ciSmall / ciBig; math.Abs(ratio-2) > 0.25 {
		t.Fatalf("CI95 ratio %v, want ≈2 for 4x the sample", ratio)
	}
}

// TestArgMaxEdges completes the ArgMax contract: single element, all
// equal (first index), and max at the boundary positions.
func TestArgMaxEdges(t *testing.T) {
	if i := ArgMax([]float64{42}); i != 0 {
		t.Fatalf("single-element ArgMax = %d", i)
	}
	if i := ArgMax([]float64{3, 3, 3}); i != 0 {
		t.Fatalf("all-equal ArgMax = %d, want first index", i)
	}
	if i := ArgMax([]float64{9, 1, 2}); i != 0 {
		t.Fatalf("max-at-front ArgMax = %d", i)
	}
	if i := ArgMax([]float64{1, 2, 9}); i != 2 {
		t.Fatalf("max-at-back ArgMax = %d", i)
	}
	if i := ArgMax([]float64{-5, -1, -3}); i != 1 {
		t.Fatalf("all-negative ArgMax = %d", i)
	}
}
