package stats

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64UniformMoments(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.01 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12.0)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := NewRNG(9)
	for _, alpha := range []float64{0.1, 0.5, 1, 10} {
		p := r.Dirichlet(alpha, 10)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("alpha=%v: negative probability %v", alpha, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("alpha=%v: probabilities sum to %v", alpha, sum)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha should produce much spikier distributions than large
	// alpha; compare average max probability.
	r := NewRNG(17)
	avgMax := func(alpha float64) float64 {
		total := 0.0
		for i := 0; i < 200; i++ {
			p := r.Dirichlet(alpha, 10)
			total += p[ArgMax(p)]
		}
		return total / 200
	}
	spiky, flat := avgMax(0.1), avgMax(100)
	if spiky < flat+0.2 {
		t.Errorf("alpha=0.1 avg max %v not clearly spikier than alpha=100 avg max %v", spiky, flat)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(23)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(31)
	child := r.Split()
	// The child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream mirrored parent %d times", same)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestMeanAndCI(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean([2 4]) != 3")
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of single sample should be 0")
	}
	if CI95([]float64{1, 2, 3, 4}) <= 0 {
		t.Error("CI95 of spread sample should be positive")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) != -1")
	}
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Error("ArgMax ties should return first index")
	}
}

// Property: summarize bounds — Min <= Median <= Max and Min <= Mean <= Max.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Keep magnitudes modest so sums of squares cannot overflow.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: permutations always contain every index exactly once.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := NewRNG(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormScaled(t *testing.T) {
	r := NewRNG(51)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormScaled(5, 2)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("scaled mean %v, want ~5", mean)
	}
}

func TestDirichletSmallAlpha(t *testing.T) {
	// Exercises the shape<1 gamma boosting path.
	r := NewRNG(52)
	p := r.Dirichlet(0.01, 5)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("tiny-alpha Dirichlet sums to %v", sum)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(53)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make([]bool, 8)
	for _, x := range v {
		if seen[x] {
			t.Fatal("shuffle duplicated an element")
		}
		seen[x] = true
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestRNGGobStateRoundTrip(t *testing.T) {
	r := NewRNG(97)
	// Advance past a Norm call so the Box-Muller spare is cached: the
	// serialized position must include it, not just the splitmix state.
	for i := 0; i < 13; i++ {
		r.Uint64()
	}
	r.Norm()
	state, err := r.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	clone := NewRNG(0)
	if err := clone.GobDecode(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := r.Norm(), clone.Norm(); a != b {
			t.Fatalf("restored stream diverged at step %d: %v vs %v", i, a, b)
		}
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("restored uint stream diverged at step %d", i)
		}
	}
	if err := clone.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestRNGGobThroughGob(t *testing.T) {
	r := NewRNG(7)
	r.Uint64()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatal(err)
	}
	var clone RNG
	if err := gob.NewDecoder(&buf).Decode(&clone); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if r.Uint64() != clone.Uint64() {
			t.Fatalf("gob round trip diverged at step %d", i)
		}
	}
}
