package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics over xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean of the sample.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := Summarize(xs)
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// ArgMax returns the index of the maximum element (first on ties), or -1
// for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
