package edge

import (
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"adafl/internal/checkpoint"
	"adafl/internal/netsim"
	"adafl/internal/obs"
	"adafl/internal/rpc"
	"adafl/internal/shard"
	"adafl/internal/tensor"
)

// DefaultHeartbeatTimeout is how long the root tolerates silence from a
// registered edge before declaring it dead (8× the default ping
// interval).
const DefaultHeartbeatTimeout = 2 * time.Second

// ErrRootKilled is returned by Root.Run after Kill — the crash hook the
// kill-and-resume suite uses.
var ErrRootKilled = fmt.Errorf("edge: root killed")

// rootCheckpointFile is the snapshot name under RootConfig.CheckpointDir.
const rootCheckpointFile = "root.ckpt"

// RootConfig configures the top of the two-tier tree.
type RootConfig struct {
	// EdgeAddr is the edge-facing listen address; ClientAddr the client
	// bootstrap listen address ("" binds ephemeral loopback ports).
	EdgeAddr   string
	ClientAddr string
	// NumEdges is the expected edge roster size; the session starts once
	// that many edges have registered.
	NumEdges int
	// Clients is the fleet size: assignment vector length and the client
	// quorum the session waits for before round 0.
	Clients int
	// Rounds is the session length; Dim the model dimension.
	Rounds int
	Dim    int
	// Wire selects the codec for both listeners ("" = binary with gob
	// fallback).
	Wire string
	// HeartbeatTimeout is the silence window after which a registered
	// edge is declared dead (0 = 2s). PartialTimeout bounds the per-round
	// collect (0 = 60s). QuorumTimeout bounds the initial registration
	// and client-quorum waits (0 = 60s). RerouteGrace bounds the
	// post-reroute wait for orphans to resurface on their new edges
	// before the next round's go-ahead (0 = 3s).
	HeartbeatTimeout time.Duration
	PartialTimeout   time.Duration
	QuorumTimeout    time.Duration
	RerouteGrace     time.Duration
	// CheckpointDir enables root snapshots ("" disables): topology epoch,
	// per-edge assignment, down set, global params — the whole tree.
	CheckpointDir string
	// Resume restores from CheckpointDir's snapshot when one exists. A
	// snapshot whose Dim/NumEdges/Clients/Rounds disagree with this
	// config is refused with a hard error.
	Resume bool
	// Cost parameterises reroute planning (see CostModel).
	Cost CostModel
	// LinkFor maps a registering edge to its access and uplink link
	// models (nil = WiFi access, Ethernet uplink for everyone).
	LinkFor func(id int, region string) (access, uplink netsim.Link)
	// Metrics/Events/Logf are the observability hooks (all optional).
	Metrics *obs.Registry
	Events  *obs.EventLog
	Logf    func(format string, args ...interface{})
	// OnRound, when non-nil, observes each completed round (test hook).
	OnRound func(round int, global []float64)
}

// RootRound summarises one completed round at the root.
type RootRound struct {
	Round     int
	Edges     int // partials merged
	Folded    int // client updates inside those partials
	Rerouted  int // clients reassigned during the round
	WeightSum float64
}

// RootResult is the session outcome.
type RootResult struct {
	Global   []float64
	History  []RootRound
	Reroutes int // reroute plans executed
	Orphans  int // clients moved across all reroutes
	Epoch    int // final topology epoch
	Resumed  int // rounds restored from the snapshot (0 on a fresh run)
}

// rootSnapshot is the checkpointed tree state. Down is a sorted slice
// (not a map) so the gob bytes are deterministic.
type rootSnapshot struct {
	CompletedRound int
	Dim            int
	NumEdges       int
	Clients        int
	Rounds         int
	Epoch          int
	Specs          []specSnapshot
	Assign         []int
	Down           []int
	Global         []float64
	History        []RootRound
	Reroutes       int
	Orphans        int
}

// specSnapshot is EdgeSpec flattened for gob: netsim.Link carries an
// unencodable *Trace, and a bandwidth trace is transient simulator state
// a resumed root re-derives from its own config anyway.
type specSnapshot struct {
	ID     int
	Addr   string
	Region string
	Access linkSnapshot
	Uplink linkSnapshot
}

type linkSnapshot struct {
	UpBps, DownBps, LatencyS, JitterS, LossProb float64
}

func snapLink(l netsim.Link) linkSnapshot {
	return linkSnapshot{UpBps: l.UpBps, DownBps: l.DownBps,
		LatencyS: l.LatencyS, JitterS: l.JitterS, LossProb: l.LossProb}
}

func (s linkSnapshot) link() netsim.Link {
	return netsim.Link{UpBps: s.UpBps, DownBps: s.DownBps,
		LatencyS: s.LatencyS, JitterS: s.JitterS, LossProb: s.LossProb}
}

func snapSpecs(specs []EdgeSpec) []specSnapshot {
	out := make([]specSnapshot, len(specs))
	for i, s := range specs {
		out[i] = specSnapshot{ID: s.ID, Addr: s.Addr, Region: s.Region,
			Access: snapLink(s.Access), Uplink: snapLink(s.Uplink)}
	}
	return out
}

func restoreSpecs(snaps []specSnapshot) []EdgeSpec {
	out := make([]EdgeSpec, len(snaps))
	for i, s := range snaps {
		out[i] = EdgeSpec{ID: s.ID, Addr: s.Addr, Region: s.Region,
			Access: s.Access.link(), Uplink: s.Uplink.link()}
	}
	return out
}

const (
	evPartial = iota
	evDown
)

type rootEv struct {
	kind  int
	edge  int
	gen   int
	round int
	part  *shard.Partial
	err   error
}

// rootEdge is one registered edge connection. gen disambiguates a stale
// connection's death from the replacement that superseded it.
type rootEdge struct {
	id       int
	gen      int
	conn     *rpc.Conn
	lastSeen time.Time
	clients  int
	addr     string
	region   string
}

// Root is the top-tier aggregator: it admits NumEdges regional edges,
// plans the client→edge assignment over the cost graph, answers client
// bootstrap requests with MsgReroute, drives rounds by broadcasting the
// go-ahead and merging edge partials in ascending edge ID (the
// bit-determinism contract), and — the headline — detects a dead edge via
// missed heartbeats or a wire error mid-round, completes the round with
// partial aggregation, and reassigns the orphans to the cheapest
// surviving siblings via Dijkstra over the live cost graph.
type Root struct {
	cfg      RootConfig
	edgeLn   net.Listener
	clientLn net.Listener

	mu          sync.Mutex
	edges       map[int]*rootEdge
	topo        *Topology
	assignReady bool
	pendingJoin map[int]bool // down edges that re-registered, admitted at the round boundary
	round       int
	gen         int
	reroutes    int
	orphans     int
	killed      bool

	ev       chan rootEv
	done     chan struct{}
	doneOnce sync.Once

	met rootMetrics
}

// NewRoot validates the config and binds both listeners so the addresses
// are known before any edge or client starts.
func NewRoot(cfg RootConfig) (*Root, error) {
	if cfg.Dim <= 0 || cfg.NumEdges <= 0 || cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("edge: root needs positive Dim, NumEdges, Clients, Rounds")
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.PartialTimeout <= 0 {
		cfg.PartialTimeout = 60 * time.Second
	}
	if cfg.QuorumTimeout <= 0 {
		cfg.QuorumTimeout = 60 * time.Second
	}
	if cfg.RerouteGrace <= 0 {
		cfg.RerouteGrace = 3 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.LinkFor == nil {
		cfg.LinkFor = func(int, string) (netsim.Link, netsim.Link) {
			return netsim.WiFiLink, netsim.EthernetLink
		}
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("edge: checkpoint dir: %w", err)
		}
	}
	edgeAddr, clientAddr := cfg.EdgeAddr, cfg.ClientAddr
	if edgeAddr == "" {
		edgeAddr = "127.0.0.1:0"
	}
	if clientAddr == "" {
		clientAddr = "127.0.0.1:0"
	}
	edgeLn, err := net.Listen("tcp", edgeAddr)
	if err != nil {
		return nil, err
	}
	clientLn, err := net.Listen("tcp", clientAddr)
	if err != nil {
		edgeLn.Close()
		return nil, err
	}
	return &Root{
		cfg:      cfg,
		edgeLn:   edgeLn,
		clientLn: clientLn,
		edges:    map[int]*rootEdge{},

		pendingJoin: map[int]bool{},
		ev:          make(chan rootEv, 64),
		done:        make(chan struct{}),
		met:         newRootMetrics(cfg.Metrics),
	}, nil
}

// EdgeAddr returns the bound edge-facing address.
func (r *Root) EdgeAddr() string { return r.edgeLn.Addr().String() }

// BootstrapAddr returns the bound client bootstrap address.
func (r *Root) BootstrapAddr() string { return r.clientLn.Addr().String() }

// Kill simulates a root crash: both listeners and every edge connection
// drop with no farewells. Run returns ErrRootKilled.
func (r *Root) Kill() {
	r.mu.Lock()
	r.killed = true
	conns := make([]*rpc.Conn, 0, len(r.edges))
	for _, re := range r.edges {
		conns = append(conns, re.conn)
	}
	r.mu.Unlock()
	r.doneOnce.Do(func() { close(r.done) })
	r.edgeLn.Close()
	r.clientLn.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (r *Root) isKilled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.killed
}

func (r *Root) checkpointPath() string {
	return filepath.Join(r.cfg.CheckpointDir, rootCheckpointFile)
}

// Run drives the session: restore-or-plan, registration and client
// quorum, then Rounds rounds of select → collect → merge → checkpoint.
func (r *Root) Run() (*RootResult, error) {
	defer func() {
		r.doneOnce.Do(func() { close(r.done) })
		r.edgeLn.Close()
		r.clientLn.Close()
		// Drop every edge link so edges observe the exit (a clean finish
		// already said goodbye via broadcastShutdown; an error exit must
		// not leave them blocked on a live socket).
		r.mu.Lock()
		conns := make([]*rpc.Conn, 0, len(r.edges))
		for _, re := range r.edges {
			conns = append(conns, re.conn)
		}
		r.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()

	global := make([]float64, r.cfg.Dim)
	var history []RootRound
	start := 0
	resumed := 0
	if r.cfg.Resume && r.cfg.CheckpointDir != "" && checkpoint.Exists(r.checkpointPath()) {
		snap, err := r.loadCheckpoint()
		if err != nil {
			return nil, err
		}
		copy(global, snap.Global)
		history = snap.History
		start = snap.CompletedRound + 1
		resumed = start
		r.cfg.Logf("root: resumed at round %d (epoch %d, %d edges down, %d reroutes so far)",
			start+1, snap.Epoch, len(snap.Down), snap.Reroutes)
	}

	go r.acceptLoop(r.edgeLn, r.admitEdge)
	go r.acceptLoop(r.clientLn, r.admitClient)
	go r.watchdog()

	if start >= r.cfg.Rounds {
		// Nothing left to do: the snapshot covers the whole session.
		return r.result(global, history, resumed), nil
	}
	if err := r.awaitEdges(start); err != nil {
		return nil, err
	}
	if err := r.planIfNeeded(); err != nil {
		return nil, err
	}
	if err := r.awaitClients(); err != nil {
		return nil, err
	}

	merged := shard.NewPartial(r.cfg.Dim)
	for round := start; round < r.cfg.Rounds; round++ {
		rec, err := r.runRound(round, merged, global)
		if err != nil {
			return nil, err
		}
		history = append(history, rec)
		r.met.rounds.Inc()
		if r.cfg.CheckpointDir != "" {
			if err := r.saveCheckpoint(round, global, history); err != nil {
				return nil, fmt.Errorf("root: checkpoint round %d: %w", round+1, err)
			}
		}
		if r.cfg.OnRound != nil {
			r.cfg.OnRound(round, global)
		}
		if r.isKilled() {
			return nil, ErrRootKilled
		}
		r.cfg.Events.Flush()
		if rec.Rerouted > 0 && round < r.cfg.Rounds-1 {
			r.awaitRerouted()
		}
	}

	r.broadcastShutdown(fmt.Sprintf("session done: %d rounds", r.cfg.Rounds))
	return r.result(global, history, resumed), nil
}

func (r *Root) result(global []float64, history []RootRound, resumed int) *RootResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	epoch := 0
	if r.topo != nil {
		epoch = r.topo.Epoch
	}
	return &RootResult{
		Global: global, History: history,
		Reroutes: r.reroutes, Orphans: r.orphans, Epoch: epoch, Resumed: resumed,
	}
}

// loadCheckpoint restores the tree snapshot, refusing any topology that
// disagrees with the config — resuming a 3-edge session as a 4-edge one
// would silently misassign every client.
func (r *Root) loadCheckpoint() (*rootSnapshot, error) {
	var snap rootSnapshot
	if err := checkpoint.Load(r.checkpointPath(), &snap); err != nil {
		return nil, fmt.Errorf("root: load checkpoint: %w", err)
	}
	if snap.Dim != r.cfg.Dim || snap.NumEdges != r.cfg.NumEdges ||
		snap.Clients != r.cfg.Clients || snap.Rounds != r.cfg.Rounds {
		return nil, fmt.Errorf(
			"root: refusing to resume: checkpoint topology (dim=%d edges=%d clients=%d rounds=%d) does not match config (dim=%d edges=%d clients=%d rounds=%d)",
			snap.Dim, snap.NumEdges, snap.Clients, snap.Rounds,
			r.cfg.Dim, r.cfg.NumEdges, r.cfg.Clients, r.cfg.Rounds)
	}
	if len(snap.Assign) != snap.Clients || len(snap.Global) != snap.Dim {
		return nil, fmt.Errorf("root: corrupt checkpoint: %d assignments for %d clients, %d params for dim %d",
			len(snap.Assign), snap.Clients, len(snap.Global), snap.Dim)
	}
	topo := &Topology{
		Epoch:  snap.Epoch,
		Specs:  restoreSpecs(snap.Specs),
		Assign: append([]int(nil), snap.Assign...),
		Down:   map[int]bool{},
	}
	for _, id := range snap.Down {
		topo.Down[id] = true
	}
	r.mu.Lock()
	r.topo = topo
	r.assignReady = true
	r.reroutes = snap.Reroutes
	r.orphans = snap.Orphans
	r.round = snap.CompletedRound + 1
	r.mu.Unlock()
	return &snap, nil
}

func (r *Root) saveCheckpoint(round int, global []float64, history []RootRound) error {
	r.mu.Lock()
	down := make([]int, 0, len(r.topo.Down))
	for id := range r.topo.Down {
		down = append(down, id)
	}
	sort.Ints(down)
	snap := rootSnapshot{
		CompletedRound: round,
		Dim:            r.cfg.Dim,
		NumEdges:       r.cfg.NumEdges,
		Clients:        r.cfg.Clients,
		Rounds:         r.cfg.Rounds,
		Epoch:          r.topo.Epoch,
		Specs:          snapSpecs(r.topo.Specs),
		Assign:         append([]int(nil), r.topo.Assign...),
		Down:           down,
		Global:         global,
		History:        history,
		Reroutes:       r.reroutes,
		Orphans:        r.orphans,
	}
	r.mu.Unlock()
	size, err := checkpoint.SaveSized(r.checkpointPath(), &snap)
	if err != nil {
		return err
	}
	r.cfg.Events.Emit(obs.Event{Type: "checkpoint", Round: round, Client: -1, Bytes: size})
	return nil
}

// awaitEdges blocks until the expected roster is registered: NumEdges
// distinct edges on a fresh start, every live checkpointed edge on
// resume. On resume, live edges that never resurface within the quorum
// window are declared dead and their clients rerouted — a resumed root
// must not hang forever on an edge that died while it was down.
func (r *Root) awaitEdges(round int) error {
	deadline := time.Now().Add(r.cfg.QuorumTimeout)
	for {
		r.mu.Lock()
		var ready bool
		var missing []int
		if r.topo == nil {
			ready = len(r.edges) >= r.cfg.NumEdges
		} else {
			ready = true
			for _, s := range r.topo.Live() {
				if r.edges[s.ID] == nil {
					ready = false
					missing = append(missing, s.ID)
				}
			}
		}
		killed := r.killed
		r.mu.Unlock()
		if killed {
			return ErrRootKilled
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			if r.topo == nil {
				return fmt.Errorf("root: only %d of %d edges registered within %v",
					len(r.edges), r.cfg.NumEdges, r.cfg.QuorumTimeout)
			}
			sort.Ints(missing)
			for _, id := range missing {
				if _, err := r.rerouteDead(round, id, "edge never re-registered after resume"); err != nil {
					return err
				}
			}
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// planIfNeeded builds the topology from the registered roster and plans
// the initial assignment (fresh starts only; resume restores both).
func (r *Root) planIfNeeded() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.topo != nil {
		return nil
	}
	specs := make([]EdgeSpec, 0, len(r.edges))
	for id, re := range r.edges {
		access, uplink := r.cfg.LinkFor(id, re.region)
		specs = append(specs, EdgeSpec{
			ID: id, Addr: re.addr, Region: re.region, Access: access, Uplink: uplink,
		})
	}
	topo, err := NewTopology(specs, r.cfg.Clients)
	if err != nil {
		return err
	}
	if err := topo.Plan(r.cfg.Cost); err != nil {
		return err
	}
	r.topo = topo
	r.assignReady = true
	r.cfg.Logf("root: planned %d clients over %d edges (epoch %d)",
		r.cfg.Clients, len(topo.Specs), topo.Epoch)
	return nil
}

func (r *Root) currentRound() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.round
}

// awaitClients blocks until the edges report a combined client roster
// covering the fleet, so round 0 selects everyone (counts arrive via
// heartbeats, so this lags by at most one ping interval). Edge deaths
// during the wait are drained and rerouted — an edge that registers and
// immediately goes silent must not pin its clients to a dead address.
func (r *Root) awaitClients() error {
	deadline := time.Now().Add(r.cfg.QuorumTimeout)
	for {
		if err := r.drainEvents(r.currentRound()); err != nil {
			return err
		}
		r.mu.Lock()
		n := 0
		for _, re := range r.edges {
			n += re.clients
		}
		killed := r.killed
		r.mu.Unlock()
		if killed {
			return ErrRootKilled
		}
		if n >= r.cfg.Clients {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("root: only %d of %d clients surfaced within %v",
				n, r.cfg.Clients, r.cfg.QuorumTimeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitRerouted gives orphans a bounded window to resurface on their new
// edges before the next go-ahead, so a reroute costs at most one round of
// their participation. Best-effort: the session proceeds at the deadline
// regardless.
func (r *Root) awaitRerouted() {
	deadline := time.Now().Add(r.cfg.RerouteGrace)
	for time.Now().Before(deadline) {
		r.mu.Lock()
		n := 0
		for _, re := range r.edges {
			n += re.clients
		}
		killed := r.killed
		r.mu.Unlock()
		if killed || n >= r.cfg.Clients {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runRound drives one round: admit boundary rejoins, drain stale death
// reports, broadcast the go-ahead, collect partials (rerouting on any
// death), merge ascending edge ID, apply.
func (r *Root) runRound(round int, merged *shard.Partial, global []float64) (RootRound, error) {
	r.mu.Lock()
	r.round = round
	orphansBefore := r.orphans
	rejoins := make([]int, 0, len(r.pendingJoin))
	for id := range r.pendingJoin {
		if r.edges[id] != nil {
			rejoins = append(rejoins, id)
		}
		delete(r.pendingJoin, id)
	}
	sort.Ints(rejoins)
	for _, id := range rejoins {
		r.topo.Rejoin(id)
	}
	r.mu.Unlock()
	for _, id := range rejoins {
		r.cfg.Logf("root: edge %d re-admitted at round %d boundary", id, round+1)
		r.cfg.Events.Emit(obs.Event{Type: "edge_up", Round: round, Client: -1, Edge: id})
		r.met.edgesLive.Inc()
	}

	// Deaths detected between rounds are handled before the go-ahead.
	if err := r.drainEvents(round); err != nil {
		return RootRound{}, err
	}

	r.mu.Lock()
	type target struct {
		id, gen int
		conn    *rpc.Conn
	}
	var targets []target
	var missing []int
	for _, s := range r.topo.Live() {
		if re := r.edges[s.ID]; re != nil {
			targets = append(targets, target{id: re.id, gen: re.gen, conn: re.conn})
		} else {
			missing = append(missing, s.ID)
		}
	}
	r.mu.Unlock()
	for _, id := range missing {
		if _, err := r.rerouteDead(round, id, "not connected at round start"); err != nil {
			return RootRound{}, err
		}
	}

	sel := &rpc.Envelope{Type: rpc.MsgSelect, Round: round, Ratio: 1}
	pending := map[int]bool{}
	for _, t := range targets {
		if err := t.conn.Send(sel); err != nil {
			if err := r.handleDown(round, t.id, t.gen, fmt.Errorf("select broadcast: %w", err)); err != nil {
				return RootRound{}, err
			}
			continue
		}
		pending[t.id] = true
	}
	if len(pending) == 0 {
		return RootRound{}, fmt.Errorf("root: round %d: no live edges to select", round+1)
	}

	parts := map[int]*shard.Partial{}
	timeout := time.NewTimer(r.cfg.PartialTimeout)
	defer timeout.Stop()
collect:
	for len(pending) > 0 {
		select {
		case e := <-r.ev:
			if err := r.handleEvent(round, e, pending, parts); err != nil {
				return RootRound{}, err
			}
		case <-timeout.C:
			laggards := make([]int, 0, len(pending))
			for id := range pending {
				laggards = append(laggards, id)
			}
			sort.Ints(laggards)
			for _, id := range laggards {
				delete(pending, id)
				r.mu.Lock()
				re := r.edges[id]
				r.mu.Unlock()
				gen := -1
				if re != nil {
					gen = re.gen
					re.conn.Close() // the reader's death report is gen-checked away
				}
				if err := r.handleDown(round, id, gen, fmt.Errorf("no partial within %v", r.cfg.PartialTimeout)); err != nil {
					return RootRound{}, err
				}
			}
			break collect
		case <-r.done:
			return RootRound{}, ErrRootKilled
		}
	}

	// The determinism contract: merge in ascending edge ID, whatever
	// order the partials arrived in.
	ids := make([]int, 0, len(parts))
	for id := range parts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	merged.Reset()
	for _, id := range ids {
		merged.Merge(parts[id])
	}
	if merged.WeightSum > 0 {
		tensor.Axpy(1/merged.WeightSum, merged.Sum, global)
	}

	r.mu.Lock()
	rerouted := r.orphans - orphansBefore
	r.mu.Unlock()
	rec := RootRound{
		Round: round, Edges: len(parts), Folded: merged.Count,
		Rerouted: rerouted, WeightSum: merged.WeightSum,
	}
	r.cfg.Logf("root: round %d: merged %d partials (%d updates, weight %.0f), %d clients rerouted",
		round+1, rec.Edges, rec.Folded, rec.WeightSum, rec.Rerouted)
	r.cfg.Events.Emit(obs.Event{Type: "round", Round: round, Client: -1,
		Clients: r.cfg.Clients, Received: rec.Folded, Selected: rec.Edges})
	return rec, nil
}

// drainEvents handles every queued death report without blocking (stale
// partials from earlier rounds are discarded).
func (r *Root) drainEvents(round int) error {
	for {
		select {
		case e := <-r.ev:
			if err := r.handleEvent(round, e, nil, nil); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// handleEvent processes one reader event during (or between) rounds.
// pending/parts are nil between rounds.
func (r *Root) handleEvent(round int, e rootEv, pending map[int]bool, parts map[int]*shard.Partial) error {
	switch e.kind {
	case evPartial:
		if pending == nil || !pending[e.edge] {
			r.cfg.Logf("root: discarding unexpected partial from edge %d (round %d)", e.edge, e.round+1)
			return nil
		}
		if err := validatePartial(e, round, r.cfg.Dim); err != nil {
			r.cfg.Logf("root: rejecting partial from edge %d: %v", e.edge, err)
			return nil
		}
		parts[e.edge] = e.part
		delete(pending, e.edge)
		partialCounter(r.cfg.Metrics, e.edge).Inc()
	case evDown:
		if pending != nil {
			delete(pending, e.edge)
		}
		if err := r.handleDown(round, e.edge, e.gen, e.err); err != nil {
			return err
		}
	}
	return nil
}

func validatePartial(e rootEv, round, dim int) error {
	switch {
	case e.round != round:
		return fmt.Errorf("stale round %d (want %d)", e.round+1, round+1)
	case e.part.Dim != dim:
		return fmt.Errorf("dimension %d (want %d)", e.part.Dim, dim)
	case math.IsNaN(e.part.WeightSum) || math.IsInf(e.part.WeightSum, 0) || e.part.WeightSum < 0:
		return fmt.Errorf("non-finite or negative weight sum %v", e.part.WeightSum)
	case e.part.Count < 0:
		return fmt.Errorf("negative fold count %d", e.part.Count)
	}
	return nil
}

// handleDown retires one edge connection (gen-checked: a report about a
// connection that has already been replaced is ignored) and reroutes its
// clients.
func (r *Root) handleDown(round, id, gen int, cause error) error {
	r.mu.Lock()
	re := r.edges[id]
	if re == nil || (gen >= 0 && re.gen != gen) {
		r.mu.Unlock()
		return nil // stale report: the edge already re-registered
	}
	delete(r.edges, id)
	r.mu.Unlock()
	re.conn.Close()
	r.cfg.Logf("root: edge %d down at round %d: %v", id, round+1, cause)
	reason := "down"
	if cause != nil {
		reason = cause.Error()
	}
	r.cfg.Events.Emit(obs.Event{Type: "edge_down", Round: round, Client: -1, Edge: id, Reason: reason})
	r.met.edgesDown.Inc()
	_, err := r.rerouteDead(round, id, reason)
	return err
}

// rerouteDead marks the edge down in the topology and reassigns its
// orphans to the cheapest surviving siblings. Fatal when no live edge
// remains — the session cannot make progress.
func (r *Root) rerouteDead(round, id int, reason string) (int, error) {
	r.mu.Lock()
	if r.topo == nil || r.topo.Down[id] {
		r.mu.Unlock()
		return 0, nil
	}
	orphans, err := r.topo.Reroute(id, r.cfg.Cost)
	epoch := 0
	if err == nil {
		r.reroutes++
		r.orphans += len(orphans)
		epoch = r.topo.Epoch
	}
	r.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("root: round %d: reroute of edge %d: %w", round+1, id, err)
	}
	r.cfg.Logf("root: rerouted %d orphans of edge %d (%s); epoch now %d",
		len(orphans), id, reason, epoch)
	r.cfg.Events.Emit(obs.Event{Type: "reroute", Round: round, Client: -1, Edge: id,
		Clients: len(orphans), Reason: reason})
	r.met.reroutes.Inc()
	r.met.orphans.Add(int64(len(orphans)))
	return len(orphans), nil
}

// acceptLoop feeds one listener's connections to admit until close.
func (r *Root) acceptLoop(ln net.Listener, admit func(net.Conn)) {
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		go admit(raw)
	}
}

// admitEdge handles one edge registration: negotiate, read the edge
// hello, install (or replace) the roster entry, welcome, spawn the
// reader. Unknown edges (post-plan) and roster overflow are turned away.
func (r *Root) admitEdge(raw net.Conn) {
	raw.SetDeadline(time.Now().Add(5 * time.Second))
	conn, err := rpc.Accept(raw, r.cfg.Wire)
	if err != nil {
		raw.Close()
		return
	}
	env, err := conn.Recv()
	if err != nil || env.Type != rpc.MsgEdgeHello {
		conn.Close()
		return
	}
	id := env.ClientID
	r.mu.Lock()
	if r.killed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	reject := ""
	if r.topo != nil && r.topo.Spec(id) == nil {
		reject = fmt.Sprintf("unknown edge %d in a planned topology", id)
	} else if r.topo == nil && len(r.edges) >= r.cfg.NumEdges && r.edges[id] == nil {
		reject = fmt.Sprintf("edge roster full (%d)", r.cfg.NumEdges)
	}
	if reject != "" {
		r.mu.Unlock()
		conn.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: reject})
		conn.Close()
		return
	}
	if old := r.edges[id]; old != nil {
		old.conn.Close()
	}
	r.gen++
	re := &rootEdge{
		id: id, gen: r.gen, conn: conn, lastSeen: time.Now(),
		clients: env.NumSamples, addr: env.Info, region: env.Region,
	}
	r.edges[id] = re
	if r.topo != nil {
		if s := r.topo.Spec(id); s != nil {
			s.Addr = env.Info
		}
		if r.topo.Down[id] {
			r.pendingJoin[id] = true
		}
	}
	round := r.round
	r.mu.Unlock()
	raw.SetDeadline(time.Time{})
	if err := conn.Send(&rpc.Envelope{Type: rpc.MsgWelcome, Round: round - 1}); err != nil {
		conn.Close()
		return
	}
	r.cfg.Logf("root: edge %d registered from %s (region %q, %d clients)",
		id, env.Info, env.Region, env.NumSamples)
	r.cfg.Events.Emit(obs.Event{Type: "edge_up", Round: round, Client: -1, Edge: id})
	r.met.edgesLive.Inc()
	go r.readEdge(re)
}

// readEdge consumes one edge connection: heartbeats refresh liveness and
// the reported client count; partials are copied out of the codec
// scratch and posted to the round loop; any error posts a gen-tagged
// death report.
func (r *Root) readEdge(re *rootEdge) {
	for {
		env, err := re.conn.Recv()
		if err != nil {
			re.conn.Close()
			r.post(rootEv{kind: evDown, edge: re.id, gen: re.gen, err: err})
			return
		}
		r.mu.Lock()
		re.lastSeen = time.Now()
		if env.Type == rpc.MsgPing {
			re.clients = env.NumSamples
		}
		r.mu.Unlock()
		if env.Type == rpc.MsgEdgePartial {
			// The binary codec reuses Params as scratch on the next Recv
			// (the next heartbeat): deep-copy before posting.
			part := &shard.Partial{
				Dim:       len(env.Params),
				Sum:       append([]float64(nil), env.Params...),
				WeightSum: env.WeightSum,
				Count:     env.NumSamples,
			}
			r.post(rootEv{kind: evPartial, edge: re.id, gen: re.gen, round: env.Round, part: part})
		}
	}
}

// post delivers a reader event unless the session is over.
func (r *Root) post(e rootEv) {
	select {
	case r.ev <- e:
	case <-r.done:
	}
}

// watchdog closes connections that have gone silent past the heartbeat
// timeout; the reader's error path turns the close into a death report.
func (r *Root) watchdog() {
	interval := r.cfg.HeartbeatTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		}
		r.mu.Lock()
		var stale []*rootEdge
		for _, re := range r.edges {
			if time.Since(re.lastSeen) > r.cfg.HeartbeatTimeout {
				stale = append(stale, re)
			}
		}
		r.mu.Unlock()
		for _, re := range stale {
			r.cfg.Logf("root: edge %d silent past %v; closing", re.id, r.cfg.HeartbeatTimeout)
			re.conn.Close()
		}
	}
}

// admitClient answers one bootstrap request: read the hello, wait for the
// assignment to be ready, reply with the client's edge address and the
// topology epoch, close. Orphans redialling after a reroute take the same
// path and learn their new edge.
func (r *Root) admitClient(raw net.Conn) {
	raw.SetDeadline(time.Now().Add(5 * time.Second))
	conn, err := rpc.Accept(raw, r.cfg.Wire)
	if err != nil {
		raw.Close()
		return
	}
	env, err := conn.Recv()
	if err != nil || env.Type != rpc.MsgHello {
		conn.Close()
		return
	}
	id := env.ClientID
	deadline := time.Now().Add(r.cfg.QuorumTimeout)
	for {
		r.mu.Lock()
		ready, killed := r.assignReady, r.killed
		addr, epoch := "", 0
		known := false
		if ready && id >= 0 && id < len(r.topo.Assign) {
			if s := r.topo.Spec(r.topo.Assign[id]); s != nil {
				addr, epoch, known = s.Addr, r.topo.Epoch, true
			}
		}
		r.mu.Unlock()
		if killed {
			conn.Close()
			return
		}
		if ready {
			raw.SetDeadline(time.Now().Add(5 * time.Second))
			if !known {
				conn.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: fmt.Sprintf("client %d outside the fleet", id)})
			} else {
				conn.Send(&rpc.Envelope{Type: rpc.MsgReroute, ClientID: id, Round: epoch, Info: addr})
			}
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			conn.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// broadcastShutdown ends the session for every connected edge.
func (r *Root) broadcastShutdown(info string) {
	r.mu.Lock()
	conns := make([]*rpc.Conn, 0, len(r.edges))
	for _, re := range r.edges {
		conns = append(conns, re.conn)
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: info})
		c.Close()
	}
}
