package edge

import (
	"fmt"
	"sync"
	"time"

	"adafl/internal/compress"
	"adafl/internal/rpc"
	"adafl/internal/stats"
)

// ClientsConfig configures a fleet of edge-federated clients driven by
// RunClients: each dials the root's bootstrap address, learns its edge
// from the MsgReroute reply, and trains against that edge with the fleet
// hot-path protocol. When the edge dies the client falls back to the
// bootstrap with full-jitter backoff and learns its replacement — the
// whole reroute story from the client's side is "redial the bootstrap".
type ClientsConfig struct {
	// Bootstrap is the root's client-facing address.
	Bootstrap string
	// Lo/Hi bound the client ID range [Lo, Hi).
	Lo, Hi int
	// Dim/Nnz/Seed parameterise the deterministic synthetic updates
	// (rpc.FleetUpdate), matching the flat fleet harness.
	Dim, Nnz int
	Seed     uint64
	// Wire selects the codec ("" = binary with gob fallback).
	Wire string
	// MaxRetries bounds consecutive failed bootstrap cycles per client
	// (0 = 25); the budget resets whenever a round completes.
	MaxRetries int
	// RetryBackoff is the initial redial window (full jitter; 0 = 50ms).
	RetryBackoff time.Duration
	// DialTimeout bounds each dial (0 = 5s).
	DialTimeout time.Duration
	// Logf is the optional debug sink.
	Logf func(format string, args ...interface{})
}

// RunClients runs clients [Lo, Hi) to session end and returns the first
// per-client failure, if any. It blocks until every client is done.
func RunClients(cfg ClientsConfig) error {
	if cfg.Hi <= cfg.Lo {
		return fmt.Errorf("edge: empty client range [%d, %d)", cfg.Lo, cfg.Hi)
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 25
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Hi-cfg.Lo)
	for id := cfg.Lo; id < cfg.Hi; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := runClient(cfg, id); err != nil {
				errs <- fmt.Errorf("client %d: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

func runClient(cfg ClientsConfig, id int) error {
	backoff := rpc.NewRetryBackoff(cfg.RetryBackoff, 0,
		stats.NewRNG(cfg.Seed^uint64(id)*0x94d049bb133111eb).Split())
	upd := &compress.Sparse{}
	var lastErr error
	for retries := 0; retries <= cfg.MaxRetries; retries++ {
		if retries > 0 {
			time.Sleep(backoff.Next())
		}
		done, progressed, err := runClientOnce(cfg, id, upd)
		if done {
			return nil
		}
		lastErr = err
		if progressed {
			retries = 0
			backoff.Reset()
		}
	}
	return fmt.Errorf("retries exhausted: %w", lastErr)
}

// runClientOnce runs one bootstrap cycle: learn the edge, train on it
// until shutdown (done) or a link error. progressed reports whether at
// least one round completed, which refills the caller's retry budget —
// an orphan that redials a few times while the root notices its edge
// died must not burn the budget a genuine outage needs.
func runClientOnce(cfg ClientsConfig, id int, upd *compress.Sparse) (done, progressed bool, err error) {
	boot, err := rpc.Dial("tcp", cfg.Bootstrap, cfg.Wire, cfg.DialTimeout)
	if err != nil {
		return false, false, err
	}
	if err := boot.Send(&rpc.Envelope{Type: rpc.MsgHello, ClientID: id}); err != nil {
		boot.Close()
		return false, false, err
	}
	env, err := boot.Recv()
	boot.Close()
	if err != nil {
		return false, false, err
	}
	switch env.Type {
	case rpc.MsgReroute:
		// fall through to the edge dial below
	case rpc.MsgShutdown:
		return true, false, nil
	default:
		return false, false, fmt.Errorf("bootstrap: unexpected %v", env.Type)
	}
	addr := env.Info

	conn, err := rpc.Dial("tcp", addr, cfg.Wire, cfg.DialTimeout)
	if err != nil {
		return false, false, err
	}
	defer conn.Close()
	if err := conn.Send(&rpc.Envelope{Type: rpc.MsgHello, ClientID: id}); err != nil {
		return false, false, err
	}
	for {
		env, err := conn.Recv()
		if err != nil {
			return false, progressed, err
		}
		switch env.Type {
		case rpc.MsgSelect:
			// A negotiated select carries a ratio; shrink the synthetic
			// update accordingly (deterministic given the assignment) so
			// the edge's load ranking has real bytes to observe.
			nnz := cfg.Nnz
			if env.Ratio > 1 {
				if k := compress.KForRatio(cfg.Dim, env.Ratio); k < nnz {
					nnz = k
				}
			}
			rpc.FleetUpdate(upd, cfg.Seed, env.Round, id, cfg.Dim, nnz)
			if err := conn.Send(&rpc.Envelope{Type: rpc.MsgUpdate, ClientID: id, Round: env.Round, Update: upd}); err != nil {
				return false, progressed, err
			}
			progressed = true
		case rpc.MsgPing:
			if err := conn.Send(&rpc.Envelope{Type: rpc.MsgPing, ClientID: id, Round: env.Round}); err != nil {
				return false, progressed, err
			}
		case rpc.MsgShutdown:
			return true, progressed, nil
		default:
			return false, progressed, fmt.Errorf("edge %s: unexpected %v", addr, env.Type)
		}
	}
}
