package edge

import "adafl/internal/obs"

// Metric names follow the repo convention (adafl_ prefix, labels embedded
// in the name as {k="v"} blocks — obs.Registry treats the whole string as
// the instrument key and WritePrometheus emits it verbatim, which is
// exactly the Prometheus exposition format for a labelled series).

type edgeMetrics struct {
	clients     *obs.Gauge   // connected clients right now
	folded      *obs.Counter // client updates folded into partials
	partials    *obs.Counter // partials shipped upstream
	quarantines *obs.Counter // updates rejected by the screen
	heartbeats  *obs.Counter // pings sent to the root
}

func newEdgeMetrics(r *obs.Registry, id int) edgeMetrics {
	l := label(id)
	return edgeMetrics{
		clients:     r.Gauge("adafl_edge_clients" + l),
		folded:      r.Counter("adafl_edge_folded_total" + l),
		partials:    r.Counter("adafl_edge_partials_total" + l),
		quarantines: r.Counter("adafl_edge_quarantines_total" + l),
		heartbeats:  r.Counter("adafl_edge_heartbeats_total" + l),
	}
}

type rootMetrics struct {
	edgesLive *obs.Counter // edge_up transitions
	edgesDown *obs.Counter // edge_down transitions
	reroutes  *obs.Counter // reroute plans executed
	orphans   *obs.Counter // clients moved by reroutes
	rounds    *obs.Counter // rounds completed
}

func newRootMetrics(r *obs.Registry) rootMetrics {
	return rootMetrics{
		edgesLive: r.Counter("adafl_root_edge_up_total"),
		edgesDown: r.Counter("adafl_root_edge_down_total"),
		reroutes:  r.Counter("adafl_root_reroutes_total"),
		orphans:   r.Counter("adafl_root_rerouted_clients_total"),
		rounds:    r.Counter("adafl_root_rounds_total"),
	}
}

// partialCounter returns the per-edge partial counter on demand (edge
// IDs are only known at registration time).
func partialCounter(r *obs.Registry, id int) *obs.Counter {
	return r.Counter("adafl_root_partials_total" + label(id))
}

func label(id int) string { return `{edge="` + itoa(id) + `"}` }
