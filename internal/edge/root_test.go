package edge

import (
	"math"
	"testing"

	"adafl/internal/shard"
)

func mkPartial(dim int, weight float64, count int) *shard.Partial {
	return &shard.Partial{Dim: dim, Sum: make([]float64, dim), WeightSum: weight, Count: count}
}

// TestPartialValidation pins the root's ingest guards: duplicate partials
// from the same edge in the same round, stale rounds, mismatched
// dimensions and non-finite weights are all rejected without disturbing
// the accepted set.
func TestPartialValidation(t *testing.T) {
	r := &Root{cfg: RootConfig{Dim: 4, Logf: t.Logf}}
	pending := map[int]bool{1: true, 2: true}
	parts := map[int]*shard.Partial{}

	first := mkPartial(4, 2, 2)
	if err := r.handleEvent(5, rootEv{kind: evPartial, edge: 1, round: 5, part: first}, pending, parts); err != nil {
		t.Fatal(err)
	}
	if parts[1] != first || pending[1] {
		t.Fatal("valid partial was not accepted")
	}

	// A duplicate from the same edge for the same round: edge 1 is no
	// longer pending, so the replay is discarded and the accepted
	// partial is untouched.
	dup := mkPartial(4, 99, 9)
	if err := r.handleEvent(5, rootEv{kind: evPartial, edge: 1, round: 5, part: dup}, pending, parts); err != nil {
		t.Fatal(err)
	}
	if parts[1] != first {
		t.Error("duplicate partial replaced the accepted one")
	}

	for name, ev := range map[string]rootEv{
		"stale round":  {kind: evPartial, edge: 2, round: 4, part: mkPartial(4, 1, 1)},
		"wrong dim":    {kind: evPartial, edge: 2, round: 5, part: mkPartial(5, 1, 1)},
		"nan weight":   {kind: evPartial, edge: 2, round: 5, part: mkPartial(4, math.NaN(), 1)},
		"inf weight":   {kind: evPartial, edge: 2, round: 5, part: mkPartial(4, math.Inf(1), 1)},
		"neg weight":   {kind: evPartial, edge: 2, round: 5, part: mkPartial(4, -1, 1)},
		"neg count":    {kind: evPartial, edge: 2, round: 5, part: mkPartial(4, 1, -1)},
		"unknown edge": {kind: evPartial, edge: 7, round: 5, part: mkPartial(4, 1, 1)},
	} {
		if err := r.handleEvent(5, ev, pending, parts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := parts[ev.edge]; ok && ev.edge != 1 {
			t.Errorf("%s: hostile partial was accepted", name)
		}
	}
	if !pending[2] {
		t.Error("edge 2 left pending despite every partial being rejected")
	}
}
