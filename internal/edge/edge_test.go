package edge

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"adafl/internal/compress"
	"adafl/internal/rpc"
	"adafl/internal/shard"
	"adafl/internal/tensor"
)

// treeCfg parameterises one two-tier test session.
type treeCfg struct {
	edges, clients, rounds int
	dim, nnz               int
	seed                   uint64
	edgeRegion             func(e int) string // nil = no regions
	cost                   CostModel
	ckptDir                string
	resume                 bool
	onRound                func(round int, global []float64)
	onSelect               map[int]func(round int) // per-edge hooks
	edgeRetries            int
	rootAddr, bootAddr     string // "" = fresh ephemeral ports
}

// treeRun is one running session: root in a goroutine, E edges, a client
// fleet, all collected by wait().
type treeRun struct {
	t     *testing.T
	root  *Root
	edges []*Edge

	rootCh    chan error
	rootRes   *RootResult
	edgeCh    chan error
	edgeRes   []*EdgeResult
	clientsCh chan error
	mu        sync.Mutex
}

func startTree(t *testing.T, tc treeCfg) *treeRun {
	t.Helper()
	root, err := NewRoot(RootConfig{
		EdgeAddr:   tc.rootAddr,
		ClientAddr: tc.bootAddr,
		NumEdges:   tc.edges,
		Clients:    tc.clients,
		Rounds:     tc.rounds,
		Dim:        tc.dim,
		// Generous watchdog: under -race a 700-goroutine fleet can starve
		// a 30ms heartbeat sender well past a tight timeout, and the kill
		// tests detect death through the wire error instantly anyway.
		// TestChaosHeartbeatTimeout pins the watchdog path with its own
		// tight root.
		HeartbeatTimeout: 2 * time.Second,
		PartialTimeout:   20 * time.Second,
		QuorumTimeout:    30 * time.Second,
		RerouteGrace:     5 * time.Second,
		CheckpointDir:    tc.ckptDir,
		Resume:           tc.resume,
		Cost:             tc.cost,
		Logf:             t.Logf,
		OnRound:          tc.onRound,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &treeRun{
		t: t, root: root,
		rootCh:    make(chan error, 1),
		edgeCh:    make(chan error, tc.edges),
		edgeRes:   make([]*EdgeResult, tc.edges),
		clientsCh: make(chan error, 1),
	}
	go func() {
		res, err := root.Run()
		tr.mu.Lock()
		tr.rootRes = res
		tr.mu.Unlock()
		tr.rootCh <- err
	}()

	for i := 0; i < tc.edges; i++ {
		region := ""
		if tc.edgeRegion != nil {
			region = tc.edgeRegion(i)
		}
		e, err := NewEdge(EdgeConfig{
			ID:                i,
			RootAddr:          root.EdgeAddr(),
			Region:            region,
			Dim:               tc.dim,
			HeartbeatInterval: 30 * time.Millisecond,
			UpdateTimeout:     10 * time.Second,
			MaxRetries:        tc.edgeRetries,
			RetryBackoff:      20 * time.Millisecond,
			Seed:              tc.seed,
			Logf:              t.Logf,
			OnSelect:          tc.onSelect[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		tr.edges = append(tr.edges, e)
		go func(i int, e *Edge) {
			res, err := e.Run()
			tr.mu.Lock()
			tr.edgeRes[i] = res
			tr.mu.Unlock()
			tr.edgeCh <- err
		}(i, e)
	}

	go func() {
		tr.clientsCh <- RunClients(ClientsConfig{
			Bootstrap:    root.BootstrapAddr(),
			Lo:           0,
			Hi:           tc.clients,
			Dim:          tc.dim,
			Nnz:          tc.nnz,
			Seed:         tc.seed,
			MaxRetries:   100,
			RetryBackoff: 20 * time.Millisecond,
		})
	}()
	return tr
}

// wait collects the whole tree with a watchdog and returns the root's
// outcome. Edge errors other than allowKilled edge kills fail the test.
func (tr *treeRun) wait(timeout time.Duration, allowKilled bool) (*RootResult, error) {
	tr.t.Helper()
	deadline := time.After(timeout)
	var rootErr error
	select {
	case rootErr = <-tr.rootCh:
	case <-deadline:
		tr.t.Fatal("tree session timed out waiting for the root")
	}
	for range tr.edges {
		select {
		case err := <-tr.edgeCh:
			if err != nil && !(allowKilled && errors.Is(err, ErrEdgeKilled)) {
				tr.t.Errorf("edge failed: %v", err)
			}
		case <-deadline:
			tr.t.Fatal("tree session timed out waiting for an edge")
		}
	}
	select {
	case err := <-tr.clientsCh:
		if err != nil {
			tr.t.Errorf("clients failed: %v", err)
		}
	case <-deadline:
		tr.t.Fatal("tree session timed out waiting for the client fleet")
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.rootRes, rootErr
}

func runTree(t *testing.T, tc treeCfg) *RootResult {
	t.Helper()
	tr := startTree(t, tc)
	res, err := tr.wait(60*time.Second, false)
	if err != nil {
		t.Fatalf("root failed: %v", err)
	}
	return res
}

// flatReference folds the same deterministic fleet updates the way a
// single aggregator would — ascending client ID, weight 1, one
// renormalised apply per round — which is the bit pattern the tree must
// reproduce exactly.
func flatReference(clients, rounds, dim, nnz int, seed uint64) []float64 {
	global := make([]float64, dim)
	upd := &compress.Sparse{}
	part := shard.NewPartial(dim)
	for round := 0; round < rounds; round++ {
		part.Reset()
		for id := 0; id < clients; id++ {
			rpc.FleetUpdate(upd, seed, round, id, dim, nnz)
			part.Fold(shard.Update{Client: id, Weight: 1, Delta: upd}, false)
		}
		if part.WeightSum > 0 {
			tensor.Axpy(1/part.WeightSum, part.Sum, global)
		}
	}
	return global
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTreeDeterminism(t *testing.T) {
	tc := treeCfg{edges: 3, clients: 24, rounds: 4, dim: 256, nnz: 16, seed: 42}
	a := runTree(t, tc)
	b := runTree(t, tc)
	if !bitEqual(a.Global, b.Global) {
		t.Error("two runs of a fixed topology diverge bitwise")
	}
	for _, rec := range a.History {
		if rec.Folded != tc.clients {
			t.Errorf("round %d folded %d updates, want %d", rec.Round+1, rec.Folded, tc.clients)
		}
		if rec.Edges != tc.edges {
			t.Errorf("round %d merged %d partials, want %d", rec.Round+1, rec.Edges, tc.edges)
		}
	}
}

func TestTreeMatchesFlatSession(t *testing.T) {
	// The tree must reproduce the flat fold bit for bit: with E=1 the
	// edge folds exactly the ascending-client order of the reference,
	// and with E=3 the partial-of-partials merge (ascending edge ID over
	// contiguous ascending client ranges) is the same summation order.
	for _, edges := range []int{1, 3} {
		tc := treeCfg{edges: edges, clients: 30, rounds: 3, dim: 512, nnz: 24, seed: 7}
		res := runTree(t, tc)
		want := flatReference(tc.clients, tc.rounds, tc.dim, tc.nnz, tc.seed)
		if edges == 1 {
			if !bitEqual(res.Global, want) {
				t.Errorf("E=1 tree is not bitwise equal to the flat session")
			}
			continue
		}
		// Multiple edges partition the fleet into contiguous ID ranges
		// only under a contiguous plan; the default plan interleaves for
		// load, so compare within FP-reassociation tolerance instead.
		var maxDiff float64
		for i := range want {
			if d := res.Global[i] - want[i]; d > maxDiff {
				maxDiff = d
			} else if -d > maxDiff {
				maxDiff = -d
			}
		}
		if maxDiff > 1e-12 {
			t.Errorf("E=%d tree drifts %v from the flat session", edges, maxDiff)
		}
	}
}

func TestRootKillAndResume(t *testing.T) {
	dir := t.TempDir()
	tc := treeCfg{edges: 2, clients: 16, rounds: 5, dim: 128, nnz: 8, seed: 11}

	baseline := runTree(t, tc)

	// Killed run: the root dies right after checkpointing round 3.
	var killOnce sync.Once
	var tr *treeRun
	tcKill := tc
	tcKill.ckptDir = dir
	tcKill.edgeRetries = 200
	tcKill.onRound = func(round int, _ []float64) {
		if round == 2 {
			killOnce.Do(func() { tr.root.Kill() })
		}
	}
	tr = startTree(t, tcKill)
	if err := <-tr.rootCh; !errors.Is(err, ErrRootKilled) {
		t.Fatalf("killed root returned %v, want ErrRootKilled", err)
	}
	edgeAddr, bootAddr := tr.root.EdgeAddr(), tr.root.BootstrapAddr()

	// Resume on the same addresses: the running edges redial with
	// backoff; their clients never notice.
	root2, err := NewRoot(RootConfig{
		EdgeAddr: edgeAddr, ClientAddr: bootAddr,
		NumEdges: tc.edges, Clients: tc.clients, Rounds: tc.rounds, Dim: tc.dim,
		HeartbeatTimeout: 2 * time.Second,
		QuorumTimeout:    30 * time.Second,
		CheckpointDir:    dir, Resume: true,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		res, err := root2.Run()
		tr.mu.Lock()
		tr.rootRes = res
		tr.mu.Unlock()
		tr.rootCh <- err
	}()
	res, err := tr.wait(60*time.Second, false)
	if err != nil {
		t.Fatalf("resumed root failed: %v", err)
	}
	if res.Resumed != 3 {
		t.Errorf("resumed %d rounds, want 3", res.Resumed)
	}
	if len(res.History) != tc.rounds {
		t.Errorf("history covers %d rounds, want %d", len(res.History), tc.rounds)
	}
	if !bitEqual(res.Global, baseline.Global) {
		t.Error("kill-and-resume run diverges bitwise from the uninterrupted run")
	}
}

func TestResumeRefusesMismatchedTopology(t *testing.T) {
	dir := t.TempDir()
	tc := treeCfg{edges: 2, clients: 8, rounds: 2, dim: 64, nnz: 4, seed: 3, ckptDir: dir}
	runTree(t, tc)

	for name, mutate := range map[string]func(*RootConfig){
		"edges":   func(c *RootConfig) { c.NumEdges = 3 },
		"clients": func(c *RootConfig) { c.Clients = 9 },
		"dim":     func(c *RootConfig) { c.Dim = 65 },
		"rounds":  func(c *RootConfig) { c.Rounds = 3 },
	} {
		cfg := RootConfig{
			NumEdges: tc.edges, Clients: tc.clients, Rounds: tc.rounds, Dim: tc.dim,
			CheckpointDir: dir, Resume: true, QuorumTimeout: time.Second,
		}
		mutate(&cfg)
		root, err := NewRoot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = root.Run()
		if err == nil || !strings.Contains(err.Error(), "refusing to resume") {
			t.Errorf("mismatched %s: got %v, want a refusing-to-resume error", name, err)
		}
	}
}

func TestEdgeScreensHostileClient(t *testing.T) {
	// A direct-dial client sends a poisoned update; the edge's shared
	// screen must quarantine it and the round must complete without it.
	tc := treeCfg{edges: 1, clients: 6, rounds: 3, dim: 64, nnz: 4, seed: 9}
	root, err := NewRoot(RootConfig{
		NumEdges: 1, Clients: tc.clients, Rounds: tc.rounds, Dim: tc.dim,
		HeartbeatTimeout: 300 * time.Millisecond,
		QuorumTimeout:    30 * time.Second,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rootCh := make(chan error, 1)
	var res *RootResult
	go func() {
		r, err := root.Run()
		res = r
		rootCh <- err
	}()
	e, err := NewEdge(EdgeConfig{
		ID: 0, RootAddr: root.EdgeAddr(), Dim: tc.dim,
		HeartbeatInterval: 30 * time.Millisecond,
		UpdateTimeout:     5 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeCh := make(chan error, 1)
	var eres *EdgeResult
	go func() {
		r, err := e.Run()
		eres = r
		edgeCh <- err
	}()

	// Clients 0..4 are honest; client 5 sends an entirely non-finite
	// update every round and must be quarantined.
	clientsCh := make(chan error, 1)
	go func() {
		clientsCh <- RunClients(ClientsConfig{
			Bootstrap: root.BootstrapAddr(), Lo: 0, Hi: tc.clients - 1,
			Dim: tc.dim, Nnz: tc.nnz, Seed: tc.seed,
			MaxRetries: 100, RetryBackoff: 20 * time.Millisecond,
		})
	}()
	go func() {
		conn, err := rpc.Dial("tcp", e.ClientAddr(), "", 5*time.Second)
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Send(&rpc.Envelope{Type: rpc.MsgHello, ClientID: tc.clients - 1})
		for {
			env, err := conn.Recv()
			if err != nil || env.Type != rpc.MsgSelect {
				return
			}
			nan := 0.0
			nan /= nan
			conn.Send(&rpc.Envelope{Type: rpc.MsgUpdate, ClientID: tc.clients - 1, Round: env.Round,
				Update: &compress.Sparse{Dim: tc.dim, Indices: []int32{0, 1}, Values: []float64{nan, nan}}})
		}
	}()

	if err := <-rootCh; err != nil {
		t.Fatalf("root failed: %v", err)
	}
	if err := <-edgeCh; err != nil {
		t.Fatalf("edge failed: %v", err)
	}
	if err := <-clientsCh; err != nil {
		t.Fatalf("clients failed: %v", err)
	}
	if eres.Quarantined == 0 {
		t.Error("hostile update was never quarantined")
	}
	last := res.History[len(res.History)-1]
	if last.Folded != tc.clients-1 {
		t.Errorf("final round folded %d updates, want %d honest clients", last.Folded, tc.clients-1)
	}
}
