package edge

import (
	"math"
	"strings"
	"testing"

	"adafl/internal/netsim"
)

func specN(id int, region string, upBps float64) EdgeSpec {
	return EdgeSpec{
		ID:     id,
		Region: region,
		Access: netsim.Link{UpBps: 2.5e6, DownBps: 5e6, LatencyS: 0.01},
		Uplink: netsim.Link{UpBps: upBps, DownBps: upBps, LatencyS: 0.002},
	}
}

func TestLinkCost(t *testing.T) {
	l := netsim.Link{UpBps: 1e6, LatencyS: 0.01}
	if got, want := LinkCost(l, 1e6), 1.01; math.Abs(got-want) > 1e-12 {
		t.Errorf("LinkCost = %v, want %v", got, want)
	}
	if got := LinkCost(netsim.Link{UpBps: 0, LatencyS: 0.01}, 100); !math.IsInf(got, 1) {
		t.Errorf("dark uplink cost = %v, want +Inf", got)
	}
}

func TestDijkstraMultiHopRelay(t *testing.T) {
	// Edge 1's direct uplink is dark, but it shares region "a" with edge
	// 0: the only finite path to the root runs through the lateral link.
	specs := []EdgeSpec{specN(0, "a", 12.5e6), specN(1, "a", 0), specN(2, "b", 12.5e6)}
	g := buildGraph(specs, nil, CostModel{})
	dist := g.Dijkstra("root")
	d0, ok0 := dist[nodeID(0)]
	d1, ok1 := dist[nodeID(1)]
	if !ok0 || !ok1 {
		t.Fatalf("edges unreachable: dist=%v", dist)
	}
	if d1 <= d0 {
		t.Errorf("relayed edge should cost more than its relay: d1=%v d0=%v", d1, d0)
	}
	lateral := LinkCost(specs[0].Access, CostModel{}.partialBytes())
	if want := d0 + lateral; math.Abs(d1-want) > 1e-12 {
		t.Errorf("relay cost = %v, want d0+lateral = %v", d1, want)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	// Edge 1 has a dark uplink and no same-region sibling: no finite path.
	specs := []EdgeSpec{specN(0, "a", 12.5e6), specN(1, "b", 0)}
	dist := buildGraph(specs, nil, CostModel{}).Dijkstra("root")
	if _, ok := dist[nodeID(1)]; ok {
		t.Errorf("isolated edge should be absent from dist, got %v", dist[nodeID(1)])
	}
	if _, ok := dist[nodeID(0)]; !ok {
		t.Errorf("edge 0 should be reachable")
	}
}

func TestDijkstraRemove(t *testing.T) {
	g := NewGraph()
	g.AddLink("root", "a", 1)
	g.AddLink("a", "b", 1)
	g.Remove("a")
	if dist := g.Dijkstra("root"); len(dist) != 1 {
		t.Errorf("after Remove(a) only root should be reachable, got %v", dist)
	}
}

func TestPlanSpreadsLoad(t *testing.T) {
	topo, err := NewTopology([]EdgeSpec{specN(0, "", 12.5e6), specN(1, "", 12.5e6)}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Plan(CostModel{}); err != nil {
		t.Fatal(err)
	}
	load := topo.load()
	if load[0] != 5 || load[1] != 5 {
		t.Errorf("identical edges should split the fleet evenly, got %v", load)
	}
	// Client 0 breaks the all-zero-load tie toward the lowest edge ID.
	if topo.Assign[0] != 0 {
		t.Errorf("client 0 on edge %d, want the tie broken to edge 0", topo.Assign[0])
	}
}

func TestPlanDeterministic(t *testing.T) {
	specs := []EdgeSpec{specN(2, "b", 12.5e6), specN(0, "a", 12.5e6), specN(1, "a", 6e6)}
	cm := CostModel{CrossRegionPenalty: 5, RegionOf: func(c int) string {
		if c%2 == 0 {
			return "a"
		}
		return "b"
	}}
	plan := func() []int {
		topo, err := NewTopology(specs, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.Plan(cm); err != nil {
			t.Fatal(err)
		}
		return topo.Assign
	}
	a, b := plan(), plan()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic at client %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRegionAffinity(t *testing.T) {
	topo, err := NewTopology([]EdgeSpec{specN(0, "a", 12.5e6), specN(1, "b", 12.5e6)}, 8)
	if err != nil {
		t.Fatal(err)
	}
	cm := CostModel{CrossRegionPenalty: 100, RegionOf: func(c int) string {
		if c < 4 {
			return "a"
		}
		return "b"
	}}
	if err := topo.Plan(cm); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		want := 0
		if c >= 4 {
			want = 1
		}
		if topo.Assign[c] != want {
			t.Errorf("client %d on edge %d, want %d (region affinity)", c, topo.Assign[c], want)
		}
	}
}

func TestRerouteToSurvivors(t *testing.T) {
	topo, err := NewTopology([]EdgeSpec{specN(0, "a", 12.5e6), specN(1, "a", 12.5e6), specN(2, "b", 12.5e6)}, 9)
	if err != nil {
		t.Fatal(err)
	}
	cm := CostModel{}
	if err := topo.Plan(cm); err != nil {
		t.Fatal(err)
	}
	epoch := topo.Epoch
	victims := topo.Clients(1)
	orphans, err := topo.Reroute(1, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != len(victims) {
		t.Fatalf("rerouted %d orphans, want %d", len(orphans), len(victims))
	}
	if topo.Epoch <= epoch {
		t.Errorf("epoch did not advance: %d -> %d", epoch, topo.Epoch)
	}
	for _, c := range orphans {
		if e := topo.Assign[c]; e == 1 || e < 0 {
			t.Errorf("orphan %d still on edge %d", c, e)
		}
	}
	if got := len(topo.Live()); got != 2 {
		t.Errorf("%d live edges after reroute, want 2", got)
	}
}

func TestRerouteExcludesOutageRegion(t *testing.T) {
	topo, err := NewTopology([]EdgeSpec{specN(0, "a", 12.5e6), specN(1, "b", 12.5e6), specN(2, "c", 12.5e6)}, 6)
	if err != nil {
		t.Fatal(err)
	}
	cm := CostModel{RegionDown: func(r string) bool { return r == "b" }}
	if err := topo.Plan(cm); err != nil {
		t.Fatal(err)
	}
	for c, e := range topo.Assign {
		if e == 1 {
			t.Errorf("client %d assigned to edge 1 in dark region b", c)
		}
	}
	if _, err := topo.Reroute(0, cm); err != nil {
		t.Fatal(err)
	}
	for c, e := range topo.Assign {
		if e != 2 {
			t.Errorf("client %d on edge %d, want 2 (only survivor outside the outage)", c, e)
		}
	}
}

func TestRerouteNoSurvivor(t *testing.T) {
	topo, err := NewTopology([]EdgeSpec{specN(0, "a", 12.5e6), specN(1, "a", 12.5e6)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Plan(CostModel{}); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Reroute(0, CostModel{}); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Reroute(1, CostModel{}); err == nil || !strings.Contains(err.Error(), "no surviving edge") {
		t.Errorf("rerouting the last edge should fail, got %v", err)
	}
}

func TestRerouteAllUplinksDark(t *testing.T) {
	// Survivor exists but cannot reach the root: distinct regions, dark
	// uplink, so there is no lateral relay either.
	topo, err := NewTopology([]EdgeSpec{specN(0, "a", 12.5e6), specN(1, "b", 0)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Plan(CostModel{}); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Reroute(0, CostModel{}); err == nil || !strings.Contains(err.Error(), "all uplinks dark") {
		t.Errorf("want an all-uplinks-dark error, got %v", err)
	}
}

func TestRejoin(t *testing.T) {
	topo, err := NewTopology([]EdgeSpec{specN(0, "a", 12.5e6), specN(1, "a", 12.5e6)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Plan(CostModel{}); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Reroute(1, CostModel{}); err != nil {
		t.Fatal(err)
	}
	epoch := topo.Epoch
	topo.Rejoin(1)
	if topo.Down[1] {
		t.Errorf("edge 1 still down after Rejoin")
	}
	if topo.Epoch <= epoch {
		t.Errorf("Rejoin should advance the epoch")
	}
	topo.Rejoin(1) // idempotent on an up edge
	if topo.Epoch != epoch+1 {
		t.Errorf("Rejoin of an up edge should not advance the epoch")
	}
}

func TestNewTopologyRejectsDuplicates(t *testing.T) {
	if _, err := NewTopology([]EdgeSpec{specN(3, "a", 1), specN(3, "b", 1)}, 2); err == nil {
		t.Error("duplicate edge IDs should be rejected")
	}
	if _, err := NewTopology(nil, 2); err == nil {
		t.Error("empty topology should be rejected")
	}
}
