// Package edge implements the two-tier federation: regional edge
// aggregators accept fleet clients over the existing wire protocol, fold
// their updates into shard.Partials through the shared screen/quarantine
// path, and stream only the partial upstream to a root that merges
// partial-of-partials bit-deterministically (ascending edge ID, fixed
// fold order). The headline property is robustness: edges heartbeat the
// root, a dead edge is detected within a heartbeat timeout, and the root
// replans over a live cost graph (Dijkstra; link costs from
// internal/netsim bandwidth/latency plus scenario region state) to
// reassign the orphaned clients to the cheapest surviving siblings while
// the round completes with partial aggregation. See DESIGN.md §Edge
// federation for the topology, the heartbeat/reroute state machine and
// the determinism contract.
package edge

import (
	"container/heap"
	"math"
	"sort"

	"adafl/internal/netsim"
)

// Arc is one directed, weighted edge of the cost graph.
type Arc struct {
	To   string
	Cost float64
}

// Graph is the live cost topology the root replans over when an edge
// dies: a small weighted graph over string node IDs ("root", "edge:N").
// It is rebuilt per reroute from the surviving topology, so there is no
// incremental-update state to corrupt.
type Graph struct {
	adj map[string][]Arc
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{adj: map[string][]Arc{}} }

// AddNode ensures id exists (isolated until arcs are added).
func (g *Graph) AddNode(id string) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = nil
	}
}

// AddArc adds a directed arc from→to.
func (g *Graph) AddArc(from, to string, cost float64) {
	g.AddNode(from)
	g.AddNode(to)
	g.adj[from] = append(g.adj[from], Arc{To: to, Cost: cost})
}

// AddLink adds arcs both ways (a physical link).
func (g *Graph) AddLink(a, b string, cost float64) {
	g.AddArc(a, b, cost)
	g.AddArc(b, a, cost)
}

// Remove deletes a node and every arc touching it — how a dead edge
// leaves the live topology before the next plan.
func (g *Graph) Remove(id string) {
	delete(g.adj, id)
	for n, arcs := range g.adj {
		keep := arcs[:0]
		for _, a := range arcs {
			if a.To != id {
				keep = append(keep, a)
			}
		}
		g.adj[n] = keep
	}
}

// Dijkstra returns the cheapest-path cost from src to every reachable
// node (src included at 0). Unreachable nodes are absent. Arcs with
// non-finite or negative cost are treated as absent.
func (g *Graph) Dijkstra(src string) map[string]float64 {
	dist := map[string]float64{}
	if _, ok := g.adj[src]; !ok {
		return dist
	}
	pq := &costHeap{{node: src, cost: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(costItem)
		if d, ok := dist[it.node]; ok && d <= it.cost {
			continue
		}
		dist[it.node] = it.cost
		for _, a := range g.adj[it.node] {
			if a.Cost < 0 || math.IsInf(a.Cost, 1) || math.IsNaN(a.Cost) {
				continue
			}
			next := it.cost + a.Cost
			if d, ok := dist[a.To]; !ok || next < d {
				heap.Push(pq, costItem{node: a.To, cost: next})
			}
		}
	}
	return dist
}

type costItem struct {
	node string
	cost float64
}

type costHeap []costItem

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// LinkCost scores shipping size bytes over l: propagation delay plus
// serialisation time at the uplink bandwidth — netsim's transfer-time
// model without jitter or loss, so replanning is deterministic. A link
// with no uplink bandwidth costs +Inf (unusable; Dijkstra skips it,
// which is how an edge whose direct backhaul is gone gets scored through
// a regional relay instead).
func LinkCost(l netsim.Link, size int64) float64 {
	if l.UpBps <= 0 {
		return math.Inf(1)
	}
	return l.LatencyS + float64(size)/l.UpBps
}

// CostModel parameterises client reassignment. The total cost of putting
// client c on surviving edge e is
//
//	LinkCost(e.Access, UpdateBytes)        the client's per-round uplink
//	+ upstream(e)                          e's cheapest path to the root
//	                                       (Dijkstra over the live graph,
//	                                       PartialBytes per hop)
//	+ CrossRegionPenalty                   if c's region != e's region
//	+ LoadPenalty · load(e)                clients already on e, so
//	                                       orphans spread instead of
//	                                       dogpiling the single cheapest
//	                                       survivor
//
// which folds the link quality the adaptive-selection work scores
// clients by into the rerouting decision.
type CostModel struct {
	// UpdateBytes is the expected per-round uplink volume of one client
	// (a sparse update frame). 0 means 4KB.
	UpdateBytes int64
	// PartialBytes is the edge→root partial frame size (8·dim + header).
	// 0 means 64KB.
	PartialBytes int64
	// LoadPenalty is the cost added per already-assigned client. 0 means
	// 0.001 (one millisecond-equivalent per client), enough to balance
	// ties without overriding real link differences.
	LoadPenalty float64
	// CrossRegionPenalty is added when a client is assigned outside its
	// own region. 0 disables it.
	CrossRegionPenalty float64
	// RegionOf maps a client to its scenario region ("" = none); nil
	// means no region affinity.
	RegionOf func(client int) string
	// RegionDown reports whether a region is currently dark (scenario
	// outage state): edges in a dark region are not reassignment
	// candidates. nil means no region is dark.
	RegionDown func(region string) bool
}

func (cm CostModel) updateBytes() int64 {
	if cm.UpdateBytes > 0 {
		return cm.UpdateBytes
	}
	return 4 << 10
}

func (cm CostModel) partialBytes() int64 {
	if cm.PartialBytes > 0 {
		return cm.PartialBytes
	}
	return 64 << 10
}

func (cm CostModel) loadPenalty() float64 {
	if cm.LoadPenalty > 0 {
		return cm.LoadPenalty
	}
	return 1e-3
}

// buildGraph assembles the live cost graph: every up edge links to the
// root over its uplink, and edges sharing a region link laterally at the
// cheaper of their access costs (the regional backhaul assumption) —
// which is what gives Dijkstra real work: an edge whose direct uplink is
// gone or degraded is still reachable, and scored, through a same-region
// sibling.
func buildGraph(specs []EdgeSpec, down map[int]bool, cm CostModel) *Graph {
	g := NewGraph()
	g.AddNode("root")
	live := make([]EdgeSpec, 0, len(specs))
	for _, s := range specs {
		if !down[s.ID] {
			live = append(live, s)
		}
	}
	for _, s := range live {
		g.AddLink(nodeID(s.ID), "root", LinkCost(s.Uplink, cm.partialBytes()))
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			a, b := live[i], live[j]
			if a.Region == "" || a.Region != b.Region {
				continue
			}
			lateral := math.Min(LinkCost(a.Access, cm.partialBytes()), LinkCost(b.Access, cm.partialBytes()))
			g.AddLink(nodeID(a.ID), nodeID(b.ID), lateral)
		}
	}
	return g
}

func nodeID(edge int) string { return "edge:" + itoa(edge) }

// itoa avoids strconv for the two-digit edge IDs the hot reroute path
// formats.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// planAssign assigns each of clients (processed in ascending order) to
// the cheapest candidate edge under cm, mutating load as it goes so
// consecutive assignments spread. candidates must be sorted by ID; ties
// break toward the lowest edge ID, so the plan is deterministic. Returns
// nil and false when no candidate is reachable.
func planAssign(clients []int, candidates []EdgeSpec, upstream map[string]float64,
	load map[int]int, cm CostModel) (map[int]int, bool) {
	sort.Ints(clients)
	assign := make(map[int]int, len(clients))
	for _, c := range clients {
		bestID, bestCost := -1, math.Inf(1)
		for _, e := range candidates {
			up, ok := upstream[nodeID(e.ID)]
			if !ok {
				continue // unreachable from the root
			}
			cost := LinkCost(e.Access, cm.updateBytes()) + up + cm.loadPenalty()*float64(load[e.ID])
			if cm.RegionOf != nil && cm.CrossRegionPenalty > 0 {
				if r := cm.RegionOf(c); r != "" && r != e.Region {
					cost += cm.CrossRegionPenalty
				}
			}
			if cost < bestCost {
				bestID, bestCost = e.ID, cost
			}
		}
		if bestID < 0 {
			return nil, false
		}
		assign[c] = bestID
		load[bestID]++
	}
	return assign, true
}
