package edge

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"adafl/internal/core"
	"adafl/internal/obs"
	"adafl/internal/rpc"
	"adafl/internal/shard"
	"adafl/internal/stats"
)

// DefaultHeartbeatInterval paces an edge's pings to the root; the root's
// watchdog default (DefaultHeartbeatTimeout) is a small multiple of it.
const DefaultHeartbeatInterval = 250 * time.Millisecond

// DefaultUpdateTimeout bounds an edge's per-round client collect.
const DefaultUpdateTimeout = 30 * time.Second

// ErrEdgeKilled is returned by Edge.Run after Kill: the crash-simulation
// hook the chaos suite uses.
var ErrEdgeKilled = fmt.Errorf("edge: killed")

// EdgeConfig configures one regional edge aggregator.
type EdgeConfig struct {
	// ID is the edge's unique identity in the tree (its merge position:
	// the root folds partials in ascending edge ID).
	ID int
	// ClientAddr is the client-facing listen address ("" binds an
	// ephemeral loopback port; the bound address is reported to the root
	// in the edge hello either way).
	ClientAddr string
	// RootAddr is the root's edge-facing address.
	RootAddr string
	// Region is the edge's scenario region ("" = none); the root's
	// reroute planner uses it for affinity and outage exclusion.
	Region string
	// Dim is the model dimension every folded update must declare.
	Dim int
	// Wire selects the codec for both the root dial and accepted client
	// connections ("" = binary with gob fallback).
	Wire string
	// MaxUpdateNorm configures the shared integrity screen (0 disables
	// the norm gate; structural validation and scrubbing are always on).
	MaxUpdateNorm float64
	// HeartbeatInterval paces pings to the root (0 = 250ms).
	HeartbeatInterval time.Duration
	// UpdateTimeout bounds the per-round client collect (0 = 30s).
	UpdateTimeout time.Duration
	// DialTimeout bounds each root dial (0 = 10s).
	DialTimeout time.Duration
	// MaxRetries bounds consecutive failed root redials (0 = fail on
	// first loss); the budget resets when a connection makes progress.
	MaxRetries int
	// RetryBackoff is the initial redial backoff window (full jitter,
	// doubling, capped; 0 = 200ms).
	RetryBackoff time.Duration
	// Seed feeds the redial jitter.
	Seed uint64
	// Metrics/Events/Logf are the observability hooks (all optional).
	Metrics *obs.Registry
	Events  *obs.EventLog
	Logf    func(format string, args ...interface{})
	// OnSelect, when non-nil, runs when the root's round go-ahead
	// arrives, before the edge broadcasts it to its clients — the chaos
	// suite's mid-round kill hook.
	OnSelect func(round int)
	// Negotiation, when Enabled, turns on per-round codec negotiation on
	// the edge's client-facing select broadcasts: the roster is ranked by
	// observed uplink volume (EWMA wire bytes) and the heaviest senders
	// are assigned the deepest compression (core.AssignByLoad). Without
	// it every client gets the legacy Ratio-1 select.
	Negotiation core.NegotiationConfig
}

// EdgeResult summarises one edge session.
type EdgeResult struct {
	// Rounds is the number of partials shipped upstream.
	Rounds int
	// Folded is the total client updates folded across all rounds.
	Folded int64
	// Quarantined counts updates rejected by the integrity screen.
	Quarantined int
	// PeakClients is the largest concurrent client roster.
	PeakClients int
}

// Edge is one regional aggregator: it fronts a set of fleet clients over
// the wire protocol, folds each round's updates into a shard.Partial in
// ascending client ID (the determinism contract), and streams only the
// partial to the root. It heartbeats the root and survives root restarts
// by redialling with full-jitter backoff; its clients stay connected
// throughout.
type Edge struct {
	cfg EdgeConfig
	ln  net.Listener

	mu      sync.Mutex
	clients map[int]*edgeClient
	root    *rpc.Conn // current root connection (replaced on redial)
	killed  bool
	closing bool

	round int // current round, written by the run loop, read by heartbeats (under mu)
	res   EdgeResult

	neg *core.Negotiator // client-facing codec negotiator (nil when disabled)
	met edgeMetrics
}

type edgeClient struct {
	id   int
	conn *rpc.Conn
}

// NewEdge binds the client listener (so the address is known before the
// root hello) and returns the edge.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("edge: need a positive Dim")
	}
	if cfg.RootAddr == "" {
		return nil, fmt.Errorf("edge: need RootAddr")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.UpdateTimeout <= 0 {
		cfg.UpdateTimeout = DefaultUpdateTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	addr := cfg.ClientAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var neg *core.Negotiator
	if cfg.Negotiation.Enabled {
		var err error
		// The edge has no utility-ranked plan; load ranking drives the
		// default controller's ratio ladder.
		neg, err = core.NewNegotiator(cfg.Negotiation, core.DefaultController())
		if err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Edge{
		cfg:     cfg,
		ln:      ln,
		clients: map[int]*edgeClient{},
		neg:     neg,
		met:     newEdgeMetrics(cfg.Metrics, cfg.ID),
	}, nil
}

// ClientAddr returns the bound client-facing address.
func (e *Edge) ClientAddr() string { return e.ln.Addr().String() }

// Kill simulates an edge crash: listener, root link and every client
// connection are torn down with no farewells. Run returns ErrEdgeKilled.
func (e *Edge) Kill() {
	e.mu.Lock()
	e.killed = true
	e.closing = true
	root := e.root
	conns := make([]*rpc.Conn, 0, len(e.clients))
	for _, c := range e.clients {
		conns = append(conns, c.conn)
	}
	e.mu.Unlock()
	e.ln.Close()
	if root != nil {
		root.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

func (e *Edge) isKilled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.killed
}

// Run registers with the root and serves rounds until the root shuts the
// session down (clients are shut down in turn), the redial budget is
// exhausted, or Kill. Root restarts are absorbed: the edge re-registers
// with backoff while its clients stay connected.
func (e *Edge) Run() (*EdgeResult, error) {
	go e.acceptLoop()
	defer e.ln.Close()

	backoff := rpc.NewRetryBackoff(e.cfg.RetryBackoff, 0, stats.NewRNG(e.cfg.Seed^uint64(e.cfg.ID)*0x9e3779b97f4a7c15).Split())
	part := shard.NewPartial(e.cfg.Dim)
	for retries := 0; ; {
		done, progressed, err := e.serveRoot(part)
		if done {
			e.shutdownClients("session done")
			e.mu.Lock()
			res := e.res
			e.mu.Unlock()
			return &res, nil
		}
		if e.isKilled() {
			return nil, ErrEdgeKilled
		}
		if progressed {
			retries = 0
			backoff.Reset()
		}
		if retries >= e.cfg.MaxRetries {
			e.shutdownClients("edge lost its root")
			return nil, fmt.Errorf("edge %d: root link lost and retries exhausted: %w", e.cfg.ID, err)
		}
		retries++
		wait := backoff.Next()
		e.cfg.Logf("edge %d: root link lost (%v); reconnect %d/%d in %v",
			e.cfg.ID, err, retries, e.cfg.MaxRetries, wait)
		time.Sleep(wait)
	}
}

// serveRoot runs one root connection: hello, heartbeats, rounds, until
// shutdown (done) or a link error.
func (e *Edge) serveRoot(part *shard.Partial) (done, progressed bool, err error) {
	conn, err := rpc.Dial("tcp", e.cfg.RootAddr, e.cfg.Wire, e.cfg.DialTimeout)
	if err != nil {
		return false, false, err
	}
	e.mu.Lock()
	if e.killed {
		e.mu.Unlock()
		conn.Close()
		return false, false, ErrEdgeKilled
	}
	e.root = conn
	n := len(e.clients)
	e.mu.Unlock()
	defer conn.Close()

	hello := &rpc.Envelope{
		Type: rpc.MsgEdgeHello, ClientID: e.cfg.ID, NumSamples: n,
		Info: e.ClientAddr(), Region: e.cfg.Region,
	}
	if err := conn.Send(hello); err != nil {
		return false, false, err
	}

	// Heartbeats carry the current round and client count; they stop
	// when this connection is replaced or closed.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go e.heartbeat(conn, hbStop)

	for {
		env, err := conn.Recv()
		if err != nil {
			return false, progressed, err
		}
		progressed = true
		switch env.Type {
		case rpc.MsgWelcome:
			e.cfg.Logf("edge %d: registered with root (next round %d)", e.cfg.ID, env.Round+1)
		case rpc.MsgPing:
			// Root-originated probe: echo it.
			if err := conn.Send(&rpc.Envelope{Type: rpc.MsgPing, ClientID: e.cfg.ID, Round: env.Round}); err != nil {
				return false, progressed, err
			}
		case rpc.MsgSelect:
			if err := e.runRound(conn, env.Round, part); err != nil {
				return false, progressed, err
			}
		case rpc.MsgShutdown:
			e.cfg.Logf("edge %d: shutdown (%s)", e.cfg.ID, env.Info)
			return true, true, nil
		default:
			return false, progressed, fmt.Errorf("edge %d: unexpected %v from root", e.cfg.ID, env.Type)
		}
	}
}

// heartbeat pings the root every interval with the edge's round and
// connected-client count, until stop closes or a send fails.
func (e *Edge) heartbeat(conn *rpc.Conn, stop <-chan struct{}) {
	t := time.NewTicker(e.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		e.mu.Lock()
		round, n := e.round, len(e.clients)
		e.mu.Unlock()
		if err := conn.Send(&rpc.Envelope{Type: rpc.MsgPing, ClientID: e.cfg.ID, Round: round, NumSamples: n}); err != nil {
			return
		}
		e.met.heartbeats.Inc()
	}
}

// runRound drives one round: broadcast the go-ahead to the current
// roster, collect updates under the deadline, screen + fold ascending
// client ID, ship the partial upstream.
func (e *Edge) runRound(root *rpc.Conn, round int, part *shard.Partial) error {
	if e.cfg.OnSelect != nil {
		e.cfg.OnSelect(round)
	}
	e.mu.Lock()
	e.round = round
	roster := make([]*edgeClient, 0, len(e.clients))
	for _, c := range e.clients {
		roster = append(roster, c)
	}
	if len(roster) > e.res.PeakClients {
		e.res.PeakClients = len(roster)
	}
	e.mu.Unlock()
	e.met.clients.Set(float64(len(roster)))

	// Negotiated path: rank the roster by observed uplink volume and
	// assign the heaviest senders the deepest compression. Without a
	// negotiator every client gets the legacy Ratio-1 select.
	var assigns map[int]core.CodecAssignment
	if e.neg != nil {
		ids := make([]int, 0, len(roster))
		for _, c := range roster {
			ids = append(ids, c.id)
		}
		assigns = e.neg.AssignByLoad(round, ids)
	}
	live := roster[:0]
	for _, c := range roster {
		sel := &rpc.Envelope{Type: rpc.MsgSelect, Round: round, Ratio: 1}
		if a, ok := assigns[c.id]; ok {
			sel.Ratio, sel.Codec, sel.Levels = a.Ratio, a.Codec, a.Levels
		}
		if err := c.conn.Send(sel); err != nil {
			e.dropClient(c, fmt.Errorf("select broadcast: %w", err))
			continue
		}
		live = append(live, c)
	}

	type recvResult struct {
		c   *edgeClient
		env *rpc.Envelope
		err error
	}
	results := make(chan recvResult, len(live))
	deadline := time.Now().Add(e.cfg.UpdateTimeout)
	for _, c := range live {
		go func(c *edgeClient) {
			c.conn.SetReadDeadline(deadline)
			env, err := c.conn.Recv()
			c.conn.SetReadDeadline(time.Time{})
			results <- recvResult{c: c, env: env, err: err}
		}(c)
	}
	items := make([]shard.Item, 0, len(live))
	for range live {
		r := <-results
		switch {
		case r.err != nil:
			e.dropClient(r.c, r.err)
		case r.env.Type != rpc.MsgUpdate || r.env.Round != round:
			e.dropClient(r.c, fmt.Errorf("expected round-%d update, got %v round %d", round, r.env.Type, r.env.Round))
		default:
			if e.neg != nil && r.env.Update != nil {
				// Per-client EWMA fold: order-independent across clients,
				// so receipt order cannot perturb future assignments.
				e.neg.RecordUpload(r.c.id, r.env.Update.WireBytes())
			}
			items = append(items, shard.Item{Client: r.c.id, Upd: r.env.Update})
		}
	}

	// The determinism contract: screen and fold in ascending client ID,
	// whatever order the updates arrived in.
	sort.Slice(items, func(i, j int) bool { return items[i].Client < items[j].Client })
	kept, quarantined := shard.Screen(round, e.cfg.Dim, e.cfg.MaxUpdateNorm, items, e.cfg.Logf)
	for _, q := range quarantined {
		e.met.quarantines.Inc()
		e.cfg.Events.Emit(obs.Event{Type: "quarantine", Round: round, Client: q.ClientID,
			Reason: q.Reason, Norm: q.Norm, Edge: e.cfg.ID})
		e.mu.Lock()
		c := e.clients[q.ClientID]
		e.mu.Unlock()
		if c != nil {
			e.dropClient(c, fmt.Errorf("quarantined update: %s", q.Reason))
		}
	}
	part.Reset()
	for _, u := range kept {
		part.Fold(shard.Update{Client: u.Client, Weight: 1, Delta: u.Upd}, false)
	}

	if err := root.Send(&rpc.Envelope{
		Type: rpc.MsgEdgePartial, ClientID: e.cfg.ID, Round: round,
		NumSamples: part.Count, WeightSum: part.WeightSum, Params: part.Sum,
	}); err != nil {
		return err
	}
	e.mu.Lock()
	e.res.Rounds++
	e.res.Folded += int64(part.Count)
	e.res.Quarantined += len(quarantined)
	e.mu.Unlock()
	e.met.folded.Add(int64(part.Count))
	e.met.partials.Inc()
	return nil
}

// acceptLoop admits clients: negotiate the codec, read the hello,
// register. A re-hello of a live ID replaces the old connection.
func (e *Edge) acceptLoop() {
	for {
		raw, err := e.ln.Accept()
		if err != nil {
			return // listener closed: shutdown or kill
		}
		go e.admit(raw)
	}
}

func (e *Edge) admit(raw net.Conn) {
	raw.SetDeadline(time.Now().Add(5 * time.Second))
	conn, err := rpc.Accept(raw, e.cfg.Wire)
	if err != nil {
		raw.Close()
		return
	}
	env, err := conn.Recv()
	if err != nil || env.Type != rpc.MsgHello {
		conn.Close()
		return
	}
	raw.SetDeadline(time.Time{})
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		conn.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: "edge closing"})
		conn.Close()
		return
	}
	if old := e.clients[env.ClientID]; old != nil {
		old.conn.Close()
	}
	e.clients[env.ClientID] = &edgeClient{id: env.ClientID, conn: conn}
	n := len(e.clients)
	e.mu.Unlock()
	e.met.clients.Set(float64(n))
}

// dropClient evicts one client from the roster.
func (e *Edge) dropClient(c *edgeClient, err error) {
	c.conn.Close()
	e.mu.Lock()
	if cur := e.clients[c.id]; cur == c {
		delete(e.clients, c.id)
	}
	n := len(e.clients)
	e.mu.Unlock()
	e.met.clients.Set(float64(n))
	e.cfg.Logf("edge %d: dropped client %d: %v", e.cfg.ID, c.id, err)
}

// shutdownClients tells every connected client the session is over.
func (e *Edge) shutdownClients(info string) {
	e.mu.Lock()
	e.closing = true
	conns := make([]*rpc.Conn, 0, len(e.clients))
	for _, c := range e.clients {
		conns = append(conns, c.conn)
	}
	e.clients = map[int]*edgeClient{}
	e.mu.Unlock()
	for _, c := range conns {
		c.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: info})
		c.Close()
	}
}
