package edge

import (
	"fmt"
	"sort"

	"adafl/internal/netsim"
)

// EdgeSpec describes one edge aggregator in the topology: identity,
// client-facing address, scenario region and link models. Addr is
// refreshed from the edge's hello on every (re)registration; the rest is
// pinned for the session and checkpointed with the topology.
type EdgeSpec struct {
	ID     int
	Addr   string
	Region string
	// Access models the client↔edge link; Uplink the edge→root backhaul.
	// Both feed the reroute cost model (LinkCost).
	Access netsim.Link
	Uplink netsim.Link
}

// Topology is the root's view of the tree: the edge roster, which edges
// are down, and the client→edge assignment. Epoch increments on every
// assignment change (initial plan, reroute), so clients and checkpoints
// can detect stale assignments.
type Topology struct {
	Epoch int
	// Specs is the edge roster in ascending ID order.
	Specs []EdgeSpec
	// Assign maps client ID → edge ID (-1 = unassigned).
	Assign []int
	// Down marks edges currently out of the tree.
	Down map[int]bool
}

// NewTopology builds a topology over the given specs (sorted by ID;
// duplicate IDs rejected) with every client unassigned.
func NewTopology(specs []EdgeSpec, clients int) (*Topology, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("edge: topology needs at least one edge")
	}
	sorted := append([]EdgeSpec(nil), specs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, s := range sorted {
		if i > 0 && sorted[i-1].ID == s.ID {
			return nil, fmt.Errorf("edge: duplicate edge ID %d in topology", s.ID)
		}
	}
	assign := make([]int, clients)
	for i := range assign {
		assign[i] = -1
	}
	return &Topology{Specs: sorted, Assign: assign, Down: map[int]bool{}}, nil
}

// Spec returns the spec for edge id (nil when unknown).
func (t *Topology) Spec(id int) *EdgeSpec {
	for i := range t.Specs {
		if t.Specs[i].ID == id {
			return &t.Specs[i]
		}
	}
	return nil
}

// Live returns the up edges in ascending ID order.
func (t *Topology) Live() []EdgeSpec {
	live := make([]EdgeSpec, 0, len(t.Specs))
	for _, s := range t.Specs {
		if !t.Down[s.ID] {
			live = append(live, s)
		}
	}
	return live
}

// Clients returns the IDs assigned to edge id, ascending.
func (t *Topology) Clients(id int) []int {
	var out []int
	for c, e := range t.Assign {
		if e == id {
			out = append(out, c)
		}
	}
	return out
}

// candidates returns the live edges eligible to receive clients under
// cm (regions in outage excluded), ascending ID.
func (t *Topology) candidates(cm CostModel) []EdgeSpec {
	out := make([]EdgeSpec, 0, len(t.Specs))
	for _, s := range t.Live() {
		if cm.RegionDown != nil && s.Region != "" && cm.RegionDown(s.Region) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// load counts current assignments per edge.
func (t *Topology) load() map[int]int {
	load := map[int]int{}
	for _, e := range t.Assign {
		if e >= 0 {
			load[e]++
		}
	}
	return load
}

// Plan computes the initial assignment of every client over the full
// live topology and advances the epoch. Deterministic: clients ascend,
// ties break toward the lowest edge ID, the load penalty spreads the
// fleet.
func (t *Topology) Plan(cm CostModel) error {
	clients := make([]int, len(t.Assign))
	for i := range clients {
		clients[i] = i
	}
	return t.assignClients(clients, cm)
}

// Reroute marks edge dead down and reassigns its orphaned clients to the
// cheapest surviving siblings: Dijkstra from the root over the rebuilt
// live graph scores each survivor's upstream path, then every orphan
// (ascending) takes the argmin of access + upstream + penalties. The
// epoch advances; the orphan list (ascending) is returned.
func (t *Topology) Reroute(dead int, cm CostModel) ([]int, error) {
	if t.Spec(dead) == nil {
		return nil, fmt.Errorf("edge: reroute of unknown edge %d", dead)
	}
	t.Down[dead] = true
	orphans := t.Clients(dead)
	if len(orphans) == 0 {
		t.Epoch++
		return nil, nil
	}
	if err := t.assignClients(orphans, cm); err != nil {
		return nil, err
	}
	return orphans, nil
}

// Rejoin readmits a previously down edge (no clients move back; it
// refills on the next reroute or via new arrivals). The epoch advances
// so bootstrapping clients see a fresh topology.
func (t *Topology) Rejoin(id int) {
	if t.Down[id] {
		delete(t.Down, id)
		t.Epoch++
	}
}

func (t *Topology) assignClients(clients []int, cm CostModel) error {
	cands := t.candidates(cm)
	if len(cands) == 0 {
		return fmt.Errorf("edge: no surviving edge to assign %d clients to", len(clients))
	}
	g := buildGraph(t.Specs, t.Down, cm)
	upstream := g.Dijkstra("root")
	assign, ok := planAssign(clients, cands, upstream, t.load(), cm)
	if !ok {
		return fmt.Errorf("edge: no reachable edge for reassignment (all uplinks dark)")
	}
	for c, e := range assign {
		t.Assign[c] = e
	}
	t.Epoch++
	return nil
}
