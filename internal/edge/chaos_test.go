package edge

import (
	"sync"
	"testing"
	"time"

	"adafl/internal/rpc"
)

// TestChaosEdgeKillReroute is the headline robustness scenario: three
// regional edges front a 700-client fleet, with region affinity
// concentrating 500 clients on edge 1. Edge 1 is killed the instant the
// round-3 go-ahead reaches it — genuinely mid-round — and the session
// must detect the death, complete the round with partial aggregation,
// reroute all 500 orphans to the surviving siblings, and finish every
// remaining round with the full fleet back, landing within tolerance of
// the no-failure run.
func TestChaosEdgeKillReroute(t *testing.T) {
	const (
		edges   = 3
		clients = 700
		rounds  = 6
		dim     = 2000
		nnz     = 50
		seed    = 1337
		victims = 500 // region-b clients concentrated on edge 1
	)
	regionOfEdge := func(e int) string { return []string{"a", "b", "c"}[e] }
	regionOfClient := func(c int) string {
		switch {
		case c < 100:
			return "a"
		case c < 100+victims:
			return "b"
		default:
			return "c"
		}
	}
	cost := CostModel{CrossRegionPenalty: 100, RegionOf: regionOfClient}

	baselineCfg := treeCfg{
		edges: edges, clients: clients, rounds: rounds, dim: dim, nnz: nnz,
		seed: seed, edgeRegion: regionOfEdge, cost: cost,
	}
	baseline := runTree(t, baselineCfg)
	for _, rec := range baseline.History {
		if rec.Folded != clients {
			t.Fatalf("baseline round %d folded %d, want %d", rec.Round+1, rec.Folded, clients)
		}
	}

	var tr *treeRun
	var killOnce sync.Once
	chaosCfg := baselineCfg
	chaosCfg.onSelect = map[int]func(int){
		1: func(round int) {
			if round == 2 {
				killOnce.Do(func() { tr.edges[1].Kill() })
			}
		},
	}
	tr = startTree(t, chaosCfg)
	res, err := tr.wait(120*time.Second, true)
	if err != nil {
		t.Fatalf("chaos session failed: %v", err)
	}

	if len(res.History) != rounds {
		t.Fatalf("completed %d rounds, want %d", len(res.History), rounds)
	}
	if res.Reroutes < 1 {
		t.Errorf("no reroute was executed")
	}
	if res.Orphans != victims {
		t.Errorf("rerouted %d orphans, want %d", res.Orphans, victims)
	}
	kill := res.History[2]
	if kill.Edges >= edges {
		t.Errorf("kill round merged %d partials — the dead edge contributed", kill.Edges)
	}
	if kill.Rerouted != victims {
		t.Errorf("kill round rerouted %d clients, want %d", kill.Rerouted, victims)
	}
	final := res.History[rounds-1]
	if final.Folded != clients {
		t.Errorf("final round folded %d updates, want the full fleet of %d back", final.Folded, clients)
	}
	if final.Edges != edges-1 {
		t.Errorf("final round merged %d partials, want %d survivors", final.Edges, edges-1)
	}

	// Accuracy proxy: the chaos run's model must land within tolerance of
	// the no-failure run. The only divergence is the kill round's missing
	// contributions (updates are mean-zero and the aggregation is a
	// per-round average), so the gap stays tiny.
	var maxDiff float64
	for i := range baseline.Global {
		d := res.Global[i] - baseline.Global[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.05 {
		t.Errorf("chaos run drifted %v from the no-failure run (tolerance 0.05)", maxDiff)
	}
	t.Logf("chaos drift vs no-failure run: %v (max coordinate)", maxDiff)
}

// TestChaosHeartbeatTimeout exercises the watchdog path: a registered
// edge that goes silent (no heartbeats, no partials, but a live socket)
// must be declared dead within the heartbeat timeout and rerouted — the
// failure mode a wire error never reports.
func TestChaosHeartbeatTimeout(t *testing.T) {
	const clients = 12
	root, err := NewRoot(RootConfig{
		NumEdges: 2, Clients: clients, Rounds: 3, Dim: 64,
		HeartbeatTimeout: 250 * time.Millisecond,
		PartialTimeout:   20 * time.Second,
		QuorumTimeout:    30 * time.Second,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rootCh := make(chan error, 1)
	var res *RootResult
	go func() {
		r, err := root.Run()
		res = r
		rootCh <- err
	}()

	e, err := NewEdge(EdgeConfig{
		ID: 0, RootAddr: root.EdgeAddr(), Dim: 64,
		HeartbeatInterval: 30 * time.Millisecond,
		UpdateTimeout:     5 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeCh := make(chan error, 1)
	go func() { _, err := e.Run(); edgeCh <- err }()

	// The silent edge: registers as edge 1 with zero clients, then never
	// speaks again. Only the watchdog can retire it.
	mute, err := rpc.Dial("tcp", root.EdgeAddr(), "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	if err := mute.Send(&rpc.Envelope{Type: rpc.MsgEdgeHello, ClientID: 1, Info: "127.0.0.1:1", Region: "z"}); err != nil {
		t.Fatal(err)
	}

	clientsCh := make(chan error, 1)
	go func() {
		clientsCh <- RunClients(ClientsConfig{
			Bootstrap: root.BootstrapAddr(), Lo: 0, Hi: clients,
			Dim: 64, Nnz: 4, Seed: 5,
			MaxRetries: 100, RetryBackoff: 20 * time.Millisecond,
		})
	}()

	if err := <-rootCh; err != nil {
		t.Fatalf("root failed: %v", err)
	}
	if err := <-edgeCh; err != nil {
		t.Fatalf("edge failed: %v", err)
	}
	if err := <-clientsCh; err != nil {
		t.Fatalf("clients failed: %v", err)
	}
	if res.Reroutes < 1 {
		t.Error("silent edge was never declared dead")
	}
	if last := res.History[len(res.History)-1]; last.Folded != clients {
		t.Errorf("final round folded %d, want %d", last.Folded, clients)
	}
}
