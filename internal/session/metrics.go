package session

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"adafl/internal/checkpoint"
	"adafl/internal/obs"
)

// StalenessBuckets is the bucket layout of adafl_async_staleness:
// staleness is a small version delta, so linear unit buckets resolve the
// whole useful range (a 5× straggler against K fresh peers lands well
// under 20).
var StalenessBuckets = obs.LinearBuckets(0, 1, 20)

// asyncMetrics is the async engine's instrument set, one series family
// per session via the session="..." label (obs.WithLabel). Nil-registry
// instruments are nil and every record is a no-op.
type asyncMetrics struct {
	versions      *obs.Counter   // adafl_async_versions_total
	pulls         *obs.Counter   // adafl_async_pulls_total
	pushes        *obs.Counter   // adafl_async_pushes_total
	stale         *obs.Counter   // adafl_async_stale_rejected_total
	staleness     *obs.Histogram // adafl_async_staleness (accepted pushes)
	quarantines   *obs.Counter   // adafl_quarantines_total
	registrations *obs.Counter   // adafl_registrations_total
	reconnects    *obs.Counter   // adafl_reconnects_total
	connections   *obs.Gauge     // adafl_connections
	accuracy      *obs.Gauge     // adafl_round_accuracy (per version)
	ckptSec       *obs.Histogram // adafl_checkpoint_seconds
	ckptBytes     *obs.Gauge     // adafl_checkpoint_bytes (delta epoch size)
}

func newAsyncMetrics(r *obs.Registry, session string) asyncMetrics {
	l := func(name string) string { return obs.WithLabel(name, "session", session) }
	return asyncMetrics{
		versions:      r.Counter(l("adafl_async_versions_total")),
		pulls:         r.Counter(l("adafl_async_pulls_total")),
		pushes:        r.Counter(l("adafl_async_pushes_total")),
		stale:         r.Counter(l("adafl_async_stale_rejected_total")),
		staleness:     r.Histogram(l("adafl_async_staleness"), StalenessBuckets),
		quarantines:   r.Counter(l("adafl_quarantines_total")),
		registrations: r.Counter(l("adafl_registrations_total")),
		reconnects:    r.Counter(l("adafl_reconnects_total")),
		connections:   r.Gauge(l("adafl_connections")),
		accuracy:      r.Gauge(l("adafl_round_accuracy")),
		ckptSec:       r.Histogram(l("adafl_checkpoint_seconds"), obs.LatencyBuckets),
		ckptBytes:     r.Gauge(l("adafl_checkpoint_bytes")),
	}
}

// Delta-checkpoint section names, shared with the sync engine's layout
// (internal/rpc uses the same literals): "meta" is engine-specific gob,
// "global" the fixed-width model vector, "round" a bare little-endian
// u64 the doctor reads without knowing the engine's types.
const (
	secMeta   = "meta"
	secGlobal = "global"
	secRound  = "round"
)

// encodeAsyncSnapshot splits an async snapshot into delta sections.
func encodeAsyncSnapshot(snap *asyncSnapshot, params []float64) ([]checkpoint.Section, error) {
	var meta bytes.Buffer
	if err := gob.NewEncoder(&meta).Encode(snap); err != nil {
		return nil, err
	}
	var round [8]byte
	binary.LittleEndian.PutUint64(round[:], uint64(snap.Version))
	return []checkpoint.Section{
		{Name: secMeta, Data: meta.Bytes()},
		{Name: secGlobal, Data: checkpoint.AppendF64s(nil, params)},
		{Name: secRound, Data: round[:]},
	}, nil
}

// decodeAsyncSnapshot is the inverse; it returns the meta snapshot and
// the restored global vector.
func decodeAsyncSnapshot(sections []checkpoint.Section) (*asyncSnapshot, []float64, error) {
	byName := make(map[string][]byte, len(sections))
	for _, sec := range sections {
		byName[sec.Name] = sec.Data
	}
	for _, name := range []string{secMeta, secGlobal, secRound} {
		if _, ok := byName[name]; !ok {
			return nil, nil, fmt.Errorf("delta checkpoint is missing section %q", name)
		}
	}
	var snap asyncSnapshot
	if err := gob.NewDecoder(bytes.NewReader(byName[secMeta])).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("delta checkpoint meta: %w", err)
	}
	params, err := checkpoint.F64sFromBytes(byName[secGlobal])
	if err != nil {
		return nil, nil, fmt.Errorf("delta checkpoint global: %w", err)
	}
	if rb := byName[secRound]; len(rb) != 8 {
		return nil, nil, fmt.Errorf("delta checkpoint round section is %d bytes, want 8", len(rb))
	} else if got := binary.LittleEndian.Uint64(rb); got != uint64(snap.Version) {
		return nil, nil, fmt.Errorf("delta checkpoint round section %d disagrees with meta version %d", got, snap.Version)
	}
	return &snap, params, nil
}
