package session

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adafl/internal/checkpoint"
	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/fl"
	"adafl/internal/obs"
	"adafl/internal/rpc"
)

// TestAsyncBufferMatchesFedBuff pins the wire-mode buffer to the
// in-process fl.FedBuff strategy: fed the same deltas at the same
// stalenesses, both must produce the same next global (the shard tree
// folds Σwᵢdᵢ before one Axpy while FedBuff applies per-delta Axpys, so
// the comparison is near-exact rather than bitwise).
func TestAsyncBufferMatchesFedBuff(t *testing.T) {
	env := newTestEnv(1, 40, 12, 4, 13)
	const (
		k   = 3
		eta = 0.5
	)
	a, err := NewAsync(AsyncConfig{NewModel: env.newModel, K: k, Eta: eta, Versions: 10, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer a.tree.Close()
	// Advance the published version so staleness has room below it.
	params, _ := a.snapshot()
	base := append([]float64(nil), params...)
	a.publish(params, 5)

	staleness := []int{0, 2, 4}
	deltas := make([][]float64, k)
	for i := range deltas {
		d := make([]float64, a.dim)
		for j := range d {
			d[j] = math.Sin(float64(i+1) * float64(j+1) * 0.37)
		}
		deltas[i] = d
	}

	ref := fl.NewFedBuff(k, eta)
	global := append([]float64(nil), base...)
	for i, d := range deltas {
		ref.OnReceive(global, nil, fl.Update{Delta: compress.NewSparseDense(d), Staleness: staleness[i]})
	}

	for i, d := range deltas {
		a.fold(arrival{client: i, base: 5 - staleness[i], delta: compress.NewSparseDense(d)})
	}
	got, version := a.snapshot()
	if version != 6 {
		t.Fatalf("buffer of %d arrivals advanced to version %d, want 6", k, version)
	}
	for i := range got {
		if diff := math.Abs(got[i] - global[i]); diff > 1e-12*(1+math.Abs(global[i])) {
			t.Fatalf("param %d: wire buffer %v, fl.FedBuff %v (diff %g)", i, got[i], global[i], diff)
		}
	}
	if w := fl.StalenessWeight(3); math.Abs(w-1/math.Sqrt(4)) > 1e-15 {
		t.Fatalf("StalenessWeight(3) = %v, want 1/sqrt(4)", w)
	}
}

// TestAsyncStragglerNoEvictions is the acceptance scenario: ten async
// clients, one behind a 5×-slower injected link. The straggler must
// never be evicted — its cost appears only as staleness-histogram mass —
// and the session must land within tolerance of a lockstep (synchronous
// round) run on the same task.
func TestAsyncStragglerNoEvictions(t *testing.T) {
	const clients = 10
	const versions = 48 // one version per K arrivals; generous budget so the acc floor is stable
	const syncRounds = 12
	env := newTestEnv(clients, 600, 12, 16, 31)

	// Lockstep baseline: the synchronous round engine on the same task.
	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 2
	cfg.ScaleRatiosForModel(env.newModel().NumParams())
	cfg.K = clients - 1
	srv, err := rpc.NewServer(rpc.ServerConfig{
		Addr: "127.0.0.1:0", NumClients: clients, Rounds: syncRounds,
		Cfg: cfg, NewModel: env.newModel, Test: env.test, EvalEvery: 1,
		Logf: quiet, StragglerTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var syncCfgs []rpc.ClientConfig
	for i := 0; i < clients; i++ {
		c := env.asyncClient(i, srv.Addr(), "")
		c.Async = false
		c.Utility = cfg.Utility
		c.UpBps, c.DownBps = 1e6, 1e6
		syncCfgs = append(syncCfgs, c)
	}
	syncDone := make(chan struct{})
	go func() { runClients(syncCfgs); close(syncDone) }()
	syncRes, err := srv.Run()
	if err != nil {
		t.Fatalf("lockstep baseline: %v", err)
	}
	<-syncDone

	// Async run: same task, one client behind a slow link.
	reg := obs.NewRegistry()
	a, err := NewAsync(AsyncConfig{
		Name: "edge", NewModel: env.newModel, Test: env.test,
		K: clients - 2, Versions: versions, Metrics: reg, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("edge", a); err != nil {
		t.Fatal(err)
	}
	go m.Serve()
	defer m.Close()
	cfgs := make([]rpc.ClientConfig, clients)
	for i := range cfgs {
		cfgs[i] = env.asyncClient(i, m.Addr(), "edge")
	}
	// Client 9: every message delayed — roughly a 5× slower cycle.
	cfgs[9].Fault = &rpc.FaultConfig{Latency: 40 * time.Millisecond}
	clientsDone := make(chan struct{})
	go func() { runClients(cfgs); close(clientsDone) }()
	res, err := a.Run()
	if err != nil {
		t.Fatalf("async session: %v", err)
	}
	<-clientsDone

	t.Logf("lockstep acc %.3f, async acc %.3f, staleness counts %v", syncRes.FinalAcc, res.FinalAcc, res.StalenessCounts)
	if res.Versions != versions {
		t.Fatalf("async session produced %d/%d versions", res.Versions, versions)
	}
	if res.Evictions != 0 {
		t.Fatalf("straggler evicted: %d evictions (async mode must never evict for slowness)", res.Evictions)
	}
	staleMass := 0
	for s, n := range res.StalenessCounts {
		if s >= 1 {
			staleMass += n
		}
	}
	if staleMass == 0 {
		t.Fatal("no staleness mass recorded: the straggler's cost vanished instead of showing up in the histogram")
	}
	if res.FinalAcc < 0.3 {
		t.Fatalf("async session did not learn: acc %.3f", res.FinalAcc)
	}
	if res.FinalAcc < syncRes.FinalAcc-0.3 {
		t.Fatalf("async acc %.3f too far below lockstep acc %.3f", res.FinalAcc, syncRes.FinalAcc)
	}
}

// chaosDir returns the checkpoint directory for the kill-and-resume
// test: ADAFL_CHAOS_CKPT_DIR when set (CI keeps it and runs the doctor
// CLI against it afterwards), else a per-test temp dir.
func chaosDir(t *testing.T) string {
	if dir := os.Getenv("ADAFL_CHAOS_CKPT_DIR"); dir != "" {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// TestAsyncKillAndResume is the async chaos scenario: the engine is
// killed mid-stream (buffered arrivals lost, no farewells), then a new
// session resumes from the delta chain and finishes the budget. The
// combined event log must show a gapless version history and the doctor
// must find the surviving checkpoint consistent.
func TestAsyncKillAndResume(t *testing.T) {
	const clients = 4
	env := newTestEnv(clients, 320, 12, 8, 41)
	dir := chaosDir(t)
	eventPath := filepath.Join(dir, "events.jsonl")

	openLog := func() (*os.File, *obs.EventLog) {
		f, err := os.OpenFile(eventPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		return f, obs.NewEventLogWriter(f)
	}

	// Phase 1: run until the chain holds a few versions, then crash.
	f1, log1 := openLog()
	a1, err := NewAsync(AsyncConfig{
		Name: "chaos", NewModel: env.newModel, Test: env.test, EvalEvery: 2,
		K: 3, Versions: 1000, CheckpointDir: dir, Events: log1, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Register("chaos", a1); err != nil {
		t.Fatal(err)
	}
	go m1.Serve()
	cfgs := make([]rpc.ClientConfig, clients)
	for i := range cfgs {
		cfgs[i] = env.asyncClient(i, m1.Addr(), "chaos")
	}
	phase1Done := make(chan struct{})
	go func() { runClients(cfgs); close(phase1Done) }()
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for a1.Version() < 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		a1.Kill()
	}()
	res1, err := a1.Run()
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("killed session returned %v, want ErrKilled", err)
	}
	<-phase1Done
	m1.Close()
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}
	f1.Close()
	if res1.Versions < 3 {
		t.Fatalf("phase 1 died at version %d before the kill threshold", res1.Versions)
	}

	// A populated chain without Resume must be refused, not intermixed.
	if _, err := NewAsync(AsyncConfig{
		Name: "chaos", NewModel: env.newModel, K: 3, Versions: 1000,
		CheckpointDir: dir, Logf: quiet,
	}); err == nil {
		t.Fatal("NewAsync accepted a populated checkpoint dir without Resume")
	}

	// Phase 2: resume from the chain and finish a fixed budget.
	target := res1.Versions + 4
	f2, log2 := openLog()
	a2, err := NewAsync(AsyncConfig{
		Name: "chaos", NewModel: env.newModel, Test: env.test, EvalEvery: 2,
		K: 3, Versions: target, CheckpointDir: dir, Resume: true,
		Events: log2, Logf: quiet,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if a2.Version() != res1.Versions {
		t.Fatalf("resumed at version %d, chain ends at %d", a2.Version(), res1.Versions)
	}
	m2, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Register("chaos", a2); err != nil {
		t.Fatal(err)
	}
	go m2.Serve()
	defer m2.Close()
	for i := range cfgs {
		cfgs[i] = env.asyncClient(i, m2.Addr(), "chaos")
	}
	phase2Done := make(chan struct{})
	go func() { runClients(cfgs); close(phase2Done) }()
	res2, err := a2.Run()
	if err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	<-phase2Done
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if res2.ResumedFrom != res1.Versions {
		t.Fatalf("ResumedFrom = %d, want %d", res2.ResumedFrom, res1.Versions)
	}
	if res2.Versions != target {
		t.Fatalf("resumed session ended at version %d, want %d", res2.Versions, target)
	}
	if res2.Pushes <= res1.Pushes {
		t.Fatalf("resumed push counter %d did not carry over phase 1's %d", res2.Pushes, res1.Pushes)
	}

	// The doctor must find the surviving chain and the stitched event log
	// consistent: gapless versions across the crash.
	rep, err := Doctor(dir, eventPath, nil)
	if err != nil {
		t.Fatalf("doctor: %v", err)
	}
	if !rep.Healthy() {
		t.Fatalf("doctor found problems in a healthy crash-resume chain: %v", rep.Problems)
	}
	if rep.Round != target {
		t.Fatalf("doctor read round %d, want %d", rep.Round, target)
	}
	if rep.Events == 0 {
		t.Fatal("doctor examined no events despite a populated log")
	}
}

// TestMultiSessionIsolation pins the isolation contract: session B (one
// deterministic client) must produce a bitwise-identical global whether
// it runs alone or multiplexed next to session A, where an attacker is
// busy getting quarantined.
func TestMultiSessionIsolation(t *testing.T) {
	benv := newTestEnv(1, 200, 12, 8, 77)
	aenv := newTestEnv(4, 300, 12, 8, 177)

	runB := func(alongside bool) []float64 {
		m, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		b, err := NewAsync(AsyncConfig{Name: "b", NewModel: benv.newModel, K: 1, Versions: 5, Logf: quiet})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register("b", b); err != nil {
			t.Fatal(err)
		}
		var (
			a     *AsyncSession
			aDone chan *AsyncResult
		)
		attackerDone := make(chan error, 1)
		if alongside {
			a, err = NewAsync(AsyncConfig{
				Name: "a", NewModel: aenv.newModel, K: 4, Versions: 1000,
				MaxUpdateNorm: 8, Logf: quiet,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Register("a", a); err != nil {
				t.Fatal(err)
			}
			aDone = make(chan *AsyncResult, 1)
			go func() {
				res, _ := a.Run()
				aDone <- res
			}()
		}
		go m.Serve()
		if alongside {
			for i := 0; i < 3; i++ {
				cfg := aenv.asyncClient(i, m.Addr(), "a")
				go rpc.RunClient(cfg)
			}
			attacker := aenv.asyncClient(3, m.Addr(), "a")
			attacker.LR = 1e5 // absurd norm: the integrity screen must fire
			go func() {
				_, err := rpc.RunClient(attacker)
				attackerDone <- err
			}()
		}
		bDone := make(chan error, 1)
		go func() {
			cfg := benv.asyncClient(0, m.Addr(), "b")
			// The client races its next pipelined send against the final
			// farewell; a redial resolves it to a clean "session over".
			cfg.MaxRetries = 3
			cfg.RetryBackoff = 10 * time.Millisecond
			_, err := rpc.RunClient(cfg)
			bDone <- err
		}()
		bres, err := b.Run()
		if err != nil {
			t.Fatalf("session b: %v", err)
		}
		if cerr := <-bDone; cerr != nil {
			t.Fatalf("session b client: %v", cerr)
		}
		if bres.Versions != 5 {
			t.Fatalf("session b ended at version %d, want 5", bres.Versions)
		}
		if alongside {
			// The quarantine eviction closes the attacker's connection, so
			// its client exiting proves the screen fired.
			select {
			case <-attackerDone:
			case <-time.After(30 * time.Second):
				t.Fatal("attacker was never quarantined")
			}
			a.Kill()
			ares := <-aDone
			if len(ares.Quarantines) == 0 || ares.Evictions == 0 {
				t.Fatalf("session a recorded no quarantine (evictions=%d)", ares.Evictions)
			}
		}
		params, _ := b.snapshot()
		return append([]float64(nil), params...)
	}

	alone := runB(false)
	multiplexed := runB(true)
	if len(alone) != len(multiplexed) {
		t.Fatalf("dim mismatch: %d vs %d", len(alone), len(multiplexed))
	}
	for i := range alone {
		if alone[i] != multiplexed[i] {
			t.Fatalf("param %d differs bitwise: alone %v, multiplexed %v — session a leaked into session b",
				i, alone[i], multiplexed[i])
		}
	}
}

// TestDeltaCheckpointSteadyStateBytes pins the acceptance bound: with
// block-sparse updates, each steady-state delta epoch must cost at most
// 30% of a full snapshot, for two concurrently checkpointing sessions.
func TestDeltaCheckpointSteadyStateBytes(t *testing.T) {
	env := newTestEnv(1, 40, 16, 64, 51)
	for _, name := range []string{"alpha", "beta"} {
		dir := t.TempDir()
		a, err := NewAsync(AsyncConfig{
			Name: name, NewModel: env.newModel, K: 1, Versions: 100,
			CheckpointDir: dir, RebaseEvery: 64, Logf: quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Ten versions of block-sparse progress: only the first 256
		// parameters move, so positional chunking dedups the rest.
		for v := 0; v < 10; v++ {
			d := make([]float64, a.dim)
			for j := 0; j < 256; j++ {
				d[j] = float64(v+1) * 1e-3
			}
			a.fold(arrival{client: 0, base: a.Version(), delta: compress.NewSparseDense(d)})
		}
		a.tree.Close()
		// GC leaves only the reachable epochs: the full base every delta
		// references, and the latest (steady-state) epoch.
		epochs, err := checkpoint.DeltaEpochs(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(epochs) < 2 || epochs[len(epochs)-1] != 10 {
			t.Fatalf("session %s: surviving epochs %v, want a base plus the 10th", name, epochs)
		}
		size := func(epoch uint64) int64 {
			fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("delta-%08d.ckpt", epoch)))
			if err != nil {
				t.Fatal(err)
			}
			return fi.Size()
		}
		full := size(epochs[0]) // the first epoch is a full rebase
		steady := size(epochs[len(epochs)-1])
		if steady > full*30/100 {
			t.Fatalf("session %s: steady-state epoch %d bytes exceeds 30%% of full snapshot %d bytes", name, steady, full)
		}
	}
}
