package session

import (
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adafl/internal/checkpoint"
	"adafl/internal/compress"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/rpc"
	"adafl/internal/shard"
	"adafl/internal/tensor"
)

// ErrKilled is returned by AsyncSession.Run when Kill interrupted it:
// the crash-simulation hook for restart/resume testing.
var ErrKilled = fmt.Errorf("session: killed")

// AsyncConfig configures a buffered-asynchronous (FedBuff) session.
// Clients cycle pull→train→push with no round barrier; the server folds
// each arriving delta into a shard.Partial-backed buffer, weighting it
// by fl.StalenessWeight of how many model versions its base has aged,
// and applies the buffer once K updates have arrived. Stragglers are
// never evicted for slowness — their cost shows up as staleness-
// histogram mass, not as lost clients.
type AsyncConfig struct {
	// Name labels this session in metrics (session="...") and logs; ""
	// keeps unlabeled series.
	Name string
	// NewModel builds the shared architecture.
	NewModel func() *nn.Model
	// Test, when non-nil, is evaluated after every EvalEvery versions.
	Test *dataset.Dataset
	// EvalEvery is the evaluation cadence in model versions (0 means 1).
	EvalEvery int
	// K is the FedBuff buffer size: arrivals per model-version apply.
	K int
	// MaxStaleness rejects a push whose base model is more than this many
	// versions old (rejected = dropped with a metric and an event, the
	// client stays connected and re-pulls). 0 accepts any staleness.
	MaxStaleness int
	// Eta is the server learning rate applied to the weighted buffer
	// mean (0 means 1).
	Eta float64
	// Versions is the training budget: the session shuts down after
	// producing this many model versions.
	Versions int
	// MaxClients is the admission cap (0 = unbounded).
	MaxClients int
	// MaxUpdateNorm enables the shard tree's causal median-relative norm
	// gate; quarantined senders are evicted. 0 disables it.
	MaxUpdateNorm float64
	// Shards is the fold-worker count (0 means 1).
	Shards int
	// ShardQueueDepth overrides the per-shard ingest queue depth.
	ShardQueueDepth int
	// CheckpointDir, when non-empty, persists every model version as a
	// delta-checkpoint epoch (checkpoint.DeltaWriter — async sessions
	// always use the chunked content-hash delta format).
	CheckpointDir string
	// Resume restores the latest delta epoch in CheckpointDir and
	// continues from its model version. Without Resume, a directory that
	// already holds a chain is refused rather than silently intermixed.
	Resume bool
	// RebaseEvery overrides the delta chain's full-rebase cadence
	// (0 = checkpoint.DefaultRebaseEvery).
	RebaseEvery int
	// WriteTimeout bounds each per-client send (0 means 10s).
	WriteTimeout time.Duration
	// Metrics, when non-nil, receives the async instrument set, labeled
	// session=Name (catalogue in DESIGN.md §Async mode).
	Metrics *obs.Registry
	// Events, when non-nil, receives one JSONL record per push, stale
	// rejection, quarantine, version apply and checkpoint; flushed at
	// every version boundary.
	Events *obs.EventLog
	// Logf receives progress lines (log.Printf if nil).
	Logf func(format string, args ...interface{})
}

// AsyncResult summarises a completed async session.
type AsyncResult struct {
	// Versions is the model version the session ended at.
	Versions int
	// FinalAcc is the last evaluated test accuracy (0 if never evaluated).
	FinalAcc float64
	// Pushes counts updates accepted into the buffer (quarantined folds
	// included — they are screened inside the shard workers).
	Pushes int
	// StaleRejected counts pushes dropped for exceeding MaxStaleness.
	StaleRejected int
	// StalenessCounts histograms accepted pushes by staleness (version
	// delta between the global and the push's base model).
	StalenessCounts map[int]int
	// Quarantines lists updates rejected by the integrity screen.
	Quarantines []shard.QuarantineRecord
	// Evictions counts clients dropped for quarantined updates. Slowness
	// never evicts in async mode.
	Evictions int
	// BytesReceived is the total uplink volume across all clients.
	BytesReceived int64
	// ResumedFrom is the model version the session resumed at (-1 for a
	// fresh session).
	ResumedFrom int
}

// arrival is one MsgAsyncPush handed from a connection goroutine to the
// engine. The delta is freshly allocated (conn.Recv, not the scratch
// path), so it survives the channel crossing.
type arrival struct {
	client int
	base   int // model version the delta was trained from
	delta  *compress.Sparse
}

// AsyncSession is the buffered-asynchronous engine. Construction
// (including resume) happens in NewAsync; Deliver admits connections
// from a Manager at any time after that; Run executes the engine until
// the version budget or Kill.
type AsyncSession struct {
	cfg AsyncConfig
	met asyncMetrics
	dim int

	model *nn.Model
	tree  *shard.Tree

	// Published model snapshot: an immutable (params, version) pair
	// replaced wholesale at each apply, so pull handlers serve it without
	// engine coordination.
	snapMu      sync.RWMutex
	snapParams  []float64
	snapVersion int

	arrivals chan arrival
	killCh   chan struct{}
	killOnce sync.Once
	// stopped is closed when the engine stops draining arrivals (normal
	// completion or Kill), releasing connection goroutines blocked on the
	// arrivals channel.
	stopped chan struct{}

	connMu  sync.Mutex
	conns   map[int]*rpc.Conn
	closing bool
	seen    map[int]bool

	wg        sync.WaitGroup // connection serve goroutines
	connBytes atomic.Int64   // uplink bytes of closed connections

	deltaW   *checkpoint.DeltaWriter
	buffered int // arrivals folded since the last apply
	res      *AsyncResult
}

// asyncSnapshot is the gob "meta" section of an async delta checkpoint.
// The global vector rides in its own fixed-width section so positional
// chunking can dedup unchanged parameters.
type asyncSnapshot struct {
	Version         int
	ParamDim        int
	K               int
	FinalAcc        float64
	Pushes          int
	StaleRejected   int
	Evictions       int
	StalenessCounts map[int]int
	Quarantines     []shard.QuarantineRecord
	BytesReceived   int64
}

// NewAsync validates the config, restores the delta chain when resuming
// and returns the session ready to accept Deliver calls.
func NewAsync(cfg AsyncConfig) (*AsyncSession, error) {
	if cfg.NewModel == nil {
		return nil, fmt.Errorf("session: async needs NewModel")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("session: async buffer size K must be >= 1, got %d", cfg.K)
	}
	if cfg.Versions < 1 {
		return nil, fmt.Errorf("session: async needs a positive Versions budget, got %d", cfg.Versions)
	}
	if cfg.MaxStaleness < 0 {
		return nil, fmt.Errorf("session: negative MaxStaleness %d", cfg.MaxStaleness)
	}
	if cfg.Eta == 0 {
		cfg.Eta = 1
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	model := cfg.NewModel()
	global := model.ParamVector()
	a := &AsyncSession{
		cfg:      cfg,
		met:      newAsyncMetrics(cfg.Metrics, cfg.Name),
		dim:      len(global),
		model:    model,
		arrivals: make(chan arrival, cfg.K),
		killCh:   make(chan struct{}),
		stopped:  make(chan struct{}),
		conns:    map[int]*rpc.Conn{},
		seen:     map[int]bool{},
		res:      &AsyncResult{ResumedFrom: -1, StalenessCounts: map[int]int{}},
	}
	version := 0
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("session: checkpoint dir: %w", err)
		}
		latest, ok, err := checkpoint.LatestDeltaEpoch(cfg.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("session: checkpoint dir: %w", err)
		}
		switch {
		case ok && !cfg.Resume:
			return nil, fmt.Errorf("session: %s already holds a delta chain (epoch %d); pass Resume or use a fresh directory", cfg.CheckpointDir, latest)
		case ok:
			_, sections, err := checkpoint.NewDeltaReader(cfg.CheckpointDir, 0).ReadLatest()
			if err != nil {
				return nil, fmt.Errorf("session: resume from %s: %w", cfg.CheckpointDir, err)
			}
			snap, restored, err := decodeAsyncSnapshot(sections)
			if err != nil {
				return nil, fmt.Errorf("session: resume from %s: %w", cfg.CheckpointDir, err)
			}
			if snap.ParamDim != a.dim {
				return nil, fmt.Errorf("session: resume from %s: snapshot is for a %d-parameter model, this session has %d",
					cfg.CheckpointDir, snap.ParamDim, a.dim)
			}
			copy(global, restored)
			version = snap.Version
			a.res.FinalAcc = snap.FinalAcc
			a.res.Pushes = snap.Pushes
			a.res.StaleRejected = snap.StaleRejected
			a.res.Evictions = snap.Evictions
			a.res.BytesReceived = snap.BytesReceived
			a.connBytes.Store(snap.BytesReceived)
			if snap.StalenessCounts != nil {
				a.res.StalenessCounts = snap.StalenessCounts
			}
			a.res.Quarantines = snap.Quarantines
			a.res.ResumedFrom = version
			cfg.Logf("session %q: resumed async session at model version %d", cfg.Name, version)
		default:
			if cfg.Resume {
				cfg.Logf("session %q: no delta checkpoint in %s, starting fresh", cfg.Name, cfg.CheckpointDir)
			}
		}
		w, err := checkpoint.NewDeltaWriter(cfg.CheckpointDir, checkpoint.DeltaOptions{RebaseEvery: cfg.RebaseEvery})
		if err != nil {
			return nil, fmt.Errorf("session: checkpoint dir: %w", err)
		}
		a.deltaW = w
	}
	if version >= cfg.Versions {
		return nil, fmt.Errorf("session: resume from %s: version %d already meets the %d-version budget",
			cfg.CheckpointDir, version, cfg.Versions)
	}
	a.tree = shard.NewTree(shard.Config{
		Shards:      cfg.Shards,
		Dim:         a.dim,
		QueueDepth:  cfg.ShardQueueDepth,
		MaxNormMult: cfg.MaxUpdateNorm,
		Metrics:     cfg.Metrics,
		Logf:        shard.Logf(cfg.Logf),
	})
	a.publish(append([]float64(nil), global...), version)
	return a, nil
}

// publish replaces the served model snapshot. params must not be
// mutated after the call.
func (a *AsyncSession) publish(params []float64, version int) {
	a.snapMu.Lock()
	a.snapParams, a.snapVersion = params, version
	a.snapMu.Unlock()
}

// snapshot returns the current immutable (params, version) pair.
func (a *AsyncSession) snapshot() ([]float64, int) {
	a.snapMu.RLock()
	defer a.snapMu.RUnlock()
	return a.snapParams, a.snapVersion
}

// Version returns the current model version.
func (a *AsyncSession) Version() int {
	_, v := a.snapshot()
	return v
}

// Deliver admits a negotiated connection whose hello has been read
// (the Manager's routing contract). Safe any time after NewAsync.
func (a *AsyncSession) Deliver(conn *rpc.Conn, hello *rpc.Envelope) error {
	id := hello.ClientID
	conn.SetReadDeadline(time.Time{})
	a.connMu.Lock()
	if a.closing {
		a.connMu.Unlock()
		conn.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: "session over"})
		conn.Close()
		return fmt.Errorf("session: session over")
	}
	if _, dup := a.conns[id]; dup {
		a.connMu.Unlock()
		a.cfg.Logf("session %q: rejecting duplicate client id %d", a.cfg.Name, id)
		conn.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: fmt.Sprintf("duplicate client id %d", id)})
		conn.Close()
		return fmt.Errorf("session: duplicate client id %d", id)
	}
	if limit := a.cfg.MaxClients; limit > 0 && len(a.conns) >= limit {
		a.connMu.Unlock()
		a.cfg.Logf("session %q: rejecting client %d: session at its admission cap (%d clients)", a.cfg.Name, id, limit)
		conn.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: fmt.Sprintf("session full (%d clients)", limit)})
		conn.Close()
		return fmt.Errorf("session: session full (%d clients)", limit)
	}
	a.conns[id] = conn
	rejoin := a.seen[id]
	a.seen[id] = true
	a.connMu.Unlock()
	a.met.registrations.Inc()
	if rejoin {
		a.met.reconnects.Inc()
	}
	a.met.connections.Add(1)
	_, version := a.snapshot()
	conn.SetWriteDeadline(time.Now().Add(a.cfg.WriteTimeout))
	if err := conn.Send(&rpc.Envelope{Type: rpc.MsgWelcome, Round: version}); err != nil {
		a.removeConn(id, conn)
		conn.Close()
		return fmt.Errorf("session: welcome client %d: %w", id, err)
	}
	conn.SetWriteDeadline(time.Time{})
	a.cfg.Logf("session %q: client %d registered (%d samples) at model version %d", a.cfg.Name, id, hello.NumSamples, version)
	a.wg.Add(1)
	go a.serve(id, conn)
	return nil
}

// removeConn detaches a connection from the roster (idempotent: only the
// mapping that still points at this conn is removed) and folds its
// uplink bytes into the session accounting.
func (a *AsyncSession) removeConn(id int, conn *rpc.Conn) {
	a.connMu.Lock()
	owned := a.conns[id] == conn
	if owned {
		delete(a.conns, id)
	}
	a.connMu.Unlock()
	if owned {
		a.connBytes.Add(conn.BytesReceived())
		a.met.connections.Add(-1)
	}
}

// serve is the per-connection receive loop: answer pulls from the
// published snapshot, relay pushes to the engine, echo pings. It exits
// on any wire error (the client redials and re-registers) or when the
// engine stops.
func (a *AsyncSession) serve(id int, conn *rpc.Conn) {
	defer a.wg.Done()
	defer conn.Close()
	defer a.removeConn(id, conn)
	for {
		e, err := conn.Recv() // fresh: push deltas outlive this iteration
		if err != nil {
			return
		}
		switch e.Type {
		case rpc.MsgAsyncPull:
			params, version := a.snapshot()
			a.met.pulls.Inc()
			conn.SetWriteDeadline(time.Now().Add(a.cfg.WriteTimeout))
			if err := conn.Send(&rpc.Envelope{Type: rpc.MsgModel, Round: version, Params: params}); err != nil {
				return
			}
			conn.SetWriteDeadline(time.Time{})
		case rpc.MsgAsyncPush:
			if e.Update == nil {
				a.cfg.Logf("session %q: client %d push without update", a.cfg.Name, id)
				return
			}
			select {
			case a.arrivals <- arrival{client: id, base: e.Round, delta: e.Update}:
			case <-a.stopped:
				return
			}
		case rpc.MsgPing:
			conn.SetWriteDeadline(time.Now().Add(a.cfg.WriteTimeout))
			if err := conn.Send(&rpc.Envelope{Type: rpc.MsgPing, Round: e.Round}); err != nil {
				return
			}
			conn.SetWriteDeadline(time.Time{})
		default:
			a.cfg.Logf("session %q: client %d sent unexpected %v", a.cfg.Name, id, e.Type)
			return
		}
	}
}

// Kill simulates a server crash for restart testing: every connection is
// torn down with no farewell and Run returns ErrKilled. State not yet
// checkpointed (the partial FedBuff buffer) is lost, as in a real crash.
func (a *AsyncSession) Kill() {
	a.killOnce.Do(func() { close(a.killCh) })
	a.connMu.Lock()
	a.closing = true
	conns := make([]*rpc.Conn, 0, len(a.conns))
	for _, c := range a.conns {
		conns = append(conns, c)
	}
	a.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Run executes the engine: fold arrivals, apply every K-th, checkpoint,
// until the version budget is met (clean shutdown with farewells) or
// Kill (ErrKilled). The caller runs exactly one Run per session.
func (a *AsyncSession) Run() (*AsyncResult, error) {
	defer a.tree.Close()
	res := a.res
	for {
		if _, v := a.snapshot(); v >= a.cfg.Versions {
			break
		}
		select {
		case <-a.killCh:
			close(a.stopped)
			a.wg.Wait()
			res.Versions = a.Version()
			res.BytesReceived = a.connBytes.Load()
			return res, ErrKilled
		case arr := <-a.arrivals:
			a.fold(arr)
		}
	}
	close(a.stopped)
	a.shutdownConns(fmt.Sprintf("done: %d model versions, final acc %.3f", a.Version(), res.FinalAcc))
	a.wg.Wait()
	res.Versions = a.Version()
	res.BytesReceived = a.connBytes.Load()
	return res, nil
}

// fold ingests one arrival, applying the buffer when it reaches K.
func (a *AsyncSession) fold(arr arrival) {
	_, version := a.snapshot()
	staleness := version - arr.base
	if staleness < 0 {
		// A base version from the future is protocol junk, not staleness.
		a.cfg.Logf("session %q: client %d pushed base version %d ahead of global %d, dropping",
			a.cfg.Name, arr.client, arr.base, version)
		return
	}
	if max := a.cfg.MaxStaleness; max > 0 && staleness > max {
		a.res.StaleRejected++
		a.met.stale.Inc()
		a.cfg.Events.Emit(obs.Event{Type: "stale", Round: version, Client: arr.client,
			Reason: fmt.Sprintf("staleness %d > %d", staleness, max)})
		return
	}
	a.met.staleness.Observe(float64(staleness))
	a.res.StalenessCounts[staleness]++
	a.tree.Ingest(version, shard.Update{
		Client: arr.client,
		Weight: fl.StalenessWeight(staleness),
		Delta:  arr.delta,
	})
	a.buffered++
	a.res.Pushes++
	a.met.pushes.Inc()
	a.cfg.Events.Emit(obs.Event{Type: "push", Round: version, Client: arr.client,
		Bytes: int64(arr.delta.WireBytes()), Norm: float64(staleness)})
	if a.buffered >= a.cfg.K {
		a.apply()
	}
}

// apply drains the buffer into a new model version: the FedBuff weighted
// mean global += Eta·Σwᵢdᵢ/Σwᵢ, with wᵢ = fl.StalenessWeight — pinned
// equal to fl.FedBuff by TestAsyncBufferMatchesFedBuff.
func (a *AsyncSession) apply() {
	part, quarantined := a.tree.Finish()
	a.buffered = 0
	params, version := a.snapshot()
	for _, q := range quarantined {
		a.met.quarantines.Inc()
		a.res.Evictions++
		a.cfg.Events.Emit(obs.Event{Type: "quarantine", Round: version, Client: q.ClientID,
			Reason: q.Reason, Norm: q.Norm})
		a.cfg.Logf("session %q: quarantined update from client %d: %s", a.cfg.Name, q.ClientID, q.Reason)
		a.evict(q.ClientID)
	}
	a.res.Quarantines = append(a.res.Quarantines, quarantined...)
	if part.Count == 0 || part.WeightSum <= 0 {
		// The whole buffer was quarantined: no version advances, the
		// global is bitwise unaffected by the rejected mass.
		return
	}
	next := append([]float64(nil), params...)
	tensor.Axpy(a.cfg.Eta/part.WeightSum, part.Sum, next)
	version++
	a.publish(next, version)
	a.met.versions.Inc()

	acc := math.NaN()
	if a.cfg.Test != nil && version%a.cfg.EvalEvery == 0 {
		a.model.SetParamVector(next)
		acc, _ = a.model.EvaluateBatched(a.cfg.Test.X, a.cfg.Test.Labels, 64)
		a.res.FinalAcc = acc
		a.met.accuracy.Set(acc)
		a.cfg.Logf("session %q: version %d acc=%.3f buffered=%d", a.cfg.Name, version, acc, part.Count)
	}
	a.cfg.Events.Emit(obs.Event{Type: "version", Round: version, Client: -1,
		Received: part.Count, Acc: obs.AccValue(acc)})

	if a.deltaW != nil {
		start := time.Now()
		size, err := a.saveCheckpoint(version)
		if err != nil {
			a.cfg.Logf("session %q: checkpoint at version %d failed (continuing): %v", a.cfg.Name, version, err)
		} else {
			sec := time.Since(start).Seconds()
			a.met.ckptSec.Observe(sec)
			a.met.ckptBytes.Set(float64(size))
			a.cfg.Events.Emit(obs.Event{Type: "checkpoint", Round: version, Client: -1, Bytes: size, Seconds: sec})
		}
	}
	if err := a.cfg.Events.Flush(); err != nil {
		a.cfg.Logf("session %q: event log flush failed: %v", a.cfg.Name, err)
	}
}

// evict closes a quarantined sender's connection; serve's cleanup path
// detaches it. Unlike the synchronous engine this is the only eviction
// cause — slowness just accrues staleness.
func (a *AsyncSession) evict(id int) {
	a.connMu.Lock()
	conn := a.conns[id]
	a.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// asyncDeltaSections mirrors the sync engine's delta layout: a gob meta
// section, the fixed-width global vector and a bare little-endian u64
// "round" (the model version) an offline auditor can read generically.
func (a *AsyncSession) saveCheckpoint(version int) (int64, error) {
	params, _ := a.snapshot()
	live := a.connBytes.Load()
	a.connMu.Lock()
	for _, c := range a.conns {
		live += c.BytesReceived()
	}
	a.connMu.Unlock()
	snap := &asyncSnapshot{
		Version:         version,
		ParamDim:        a.dim,
		K:               a.cfg.K,
		FinalAcc:        a.res.FinalAcc,
		Pushes:          a.res.Pushes,
		StaleRejected:   a.res.StaleRejected,
		Evictions:       a.res.Evictions,
		StalenessCounts: a.res.StalenessCounts,
		Quarantines:     a.res.Quarantines,
		BytesReceived:   live,
	}
	sections, err := encodeAsyncSnapshot(snap, params)
	if err != nil {
		return 0, err
	}
	_, size, err := a.deltaW.Write(sections)
	return size, err
}

// shutdownConns sends farewells and closes every connection.
func (a *AsyncSession) shutdownConns(info string) {
	a.connMu.Lock()
	a.closing = true
	conns := make([]*rpc.Conn, 0, len(a.conns))
	for _, c := range a.conns {
		conns = append(conns, c)
	}
	a.connMu.Unlock()
	for _, c := range conns {
		c.SetWriteDeadline(time.Now().Add(a.cfg.WriteTimeout))
		c.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: info})
		c.Close()
	}
}
