package session

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"adafl/internal/checkpoint"
	"adafl/internal/obs"
)

// DoctorReport is the outcome of an offline checkpoint/event-log audit.
type DoctorReport struct {
	// Format is "delta" (epoch chain) or "full" (session.ckpt).
	Format string
	// Epochs lists the delta epochs present (delta format only).
	Epochs []uint64
	// Round is the checkpoint's completed round / model version, read
	// from the generic little-endian "round" section (delta format) —
	// -1 when unavailable (full format, whose payload types the doctor
	// does not decode).
	Round int
	// Chunks/Refs/Bytes summarise the delta chain (delta format only).
	Chunks, Refs int
	Bytes        int64
	// Events is the number of event-log records examined (0 when no log
	// was given).
	Events int
	// Problems lists every inconsistency found; empty means healthy.
	Problems []string
}

// Healthy reports whether the audit found no problems.
func (r *DoctorReport) Healthy() bool { return len(r.Problems) == 0 }

// Doctor audits a checkpoint directory — and, when eventPath is
// non-empty, its JSONL event log — offline:
//
//   - delta chains: every epoch's frame CRC, structural validity and
//     chunk SHA-256s; cross-epoch reference resolution (dangling or
//     hash-mismatched refs fail); full reconstruction of the latest
//     epoch; presence and consistency of the "round" section.
//   - full snapshots: frame magic/version/length/CRC.
//   - event log: round/version records must advance gaplessly (each
//     distinct value one above the previous; duplicates allowed — a
//     crash between checkpoint and re-run replays a round), and the
//     checkpoint's round must sit at the log's tail.
//
// Problems are findings, not errors: the error return is reserved for
// the audit itself being impossible (unreadable directory, no
// checkpoint at all). Callers gate exit codes on report.Healthy().
func Doctor(dir, eventPath string, w io.Writer) (*DoctorReport, error) {
	if w == nil {
		w = io.Discard
	}
	rep := &DoctorReport{Round: -1}
	epochs, err := checkpoint.DeltaEpochs(dir)
	if err != nil {
		return nil, fmt.Errorf("doctor: %w", err)
	}
	fullPath := filepath.Join(dir, "session.ckpt")
	hasFull := checkpoint.Exists(fullPath)
	switch {
	case len(epochs) > 0:
		rep.Format = "delta"
		rep.Epochs = epochs
		if hasFull {
			rep.Problems = append(rep.Problems, fmt.Sprintf("directory holds both a delta chain and a full snapshot %s", fullPath))
		}
		auditDelta(dir, rep, w)
	case hasFull:
		rep.Format = "full"
		if size, err := checkpoint.VerifyFrame(fullPath, 0); err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("full snapshot: %v", err))
		} else {
			rep.Bytes = size
			fmt.Fprintf(w, "doctor: full snapshot %s: frame ok (%d payload bytes)\n", fullPath, size)
		}
	default:
		return nil, fmt.Errorf("doctor: no checkpoint (delta chain or session.ckpt) in %s", dir)
	}
	if eventPath != "" {
		auditEvents(eventPath, rep, w)
	}
	if rep.Healthy() {
		fmt.Fprintf(w, "doctor: %s checkpoint in %s is consistent\n", rep.Format, dir)
	} else {
		for _, p := range rep.Problems {
			fmt.Fprintf(w, "doctor: PROBLEM: %s\n", p)
		}
	}
	return rep, nil
}

// auditDelta verifies the chain and extracts the latest epoch's round.
func auditDelta(dir string, rep *DoctorReport, w io.Writer) {
	audit, err := checkpoint.AuditDelta(dir)
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("delta chain: %v", err))
		return
	}
	rep.Chunks, rep.Refs, rep.Bytes = audit.Chunks, audit.Refs, audit.Bytes
	fmt.Fprintf(w, "doctor: delta chain %v: %d chunks (%d cross-epoch refs), %d bytes on disk\n",
		audit.Epochs, audit.Chunks, audit.Refs, audit.Bytes)
	_, sections, err := checkpoint.NewDeltaReader(dir, 0).ReadLatest()
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("reconstruct latest epoch: %v", err))
		return
	}
	var roundSec []byte
	var hasGlobal bool
	for _, sec := range sections {
		switch sec.Name {
		case secRound:
			roundSec = sec.Data
		case secGlobal:
			hasGlobal = true
			if len(sec.Data)%8 != 0 {
				rep.Problems = append(rep.Problems, fmt.Sprintf("global section is %d bytes, not a multiple of 8", len(sec.Data)))
			}
		}
	}
	if !hasGlobal {
		rep.Problems = append(rep.Problems, `latest epoch has no "global" section`)
	}
	switch {
	case roundSec == nil:
		rep.Problems = append(rep.Problems, `latest epoch has no "round" section`)
	case len(roundSec) != 8:
		rep.Problems = append(rep.Problems, fmt.Sprintf("round section is %d bytes, want 8", len(roundSec)))
	default:
		rep.Round = int(binary.LittleEndian.Uint64(roundSec))
		fmt.Fprintf(w, "doctor: latest epoch %d holds round/version %d\n", audit.Latest, rep.Round)
	}
}

// auditEvents checks the event log's round continuity and its agreement
// with the checkpoint's round.
func auditEvents(path string, rep *DoctorReport, w io.Writer) {
	f, err := os.Open(path)
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("event log: %v", err))
		return
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("event log: %v", err))
		return
	}
	rep.Events = len(events)
	// One record per completed round/version: the sync engine emits
	// "round", the async engine "version". Values must advance gaplessly;
	// an exact repeat is legal (a crash after the event flush but before
	// the checkpoint re-runs that round after resume).
	prev := -1
	gapless := true
	var rounds []int
	for _, e := range events {
		if e.Type != "round" && e.Type != "version" {
			continue
		}
		rounds = append(rounds, e.Round)
		if prev >= 0 && e.Round != prev && e.Round != prev+1 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("event log: round %d follows %d (gap or regression)", e.Round, prev))
			gapless = false
		}
		prev = e.Round
	}
	if gapless && len(rounds) > 0 {
		fmt.Fprintf(w, "doctor: event log: %d records, %d round/version marks, gapless %d..%d\n",
			len(events), len(rounds), rounds[0], prev)
	}
	if rep.Round >= 0 && len(rounds) > 0 {
		// The sync engine's "round" events are 0-based while the async
		// engine's "version" events match the checkpoint's version
		// directly; both flush the event before the next round starts, so
		// the checkpoint round may lead the log by at most one mark.
		sorted := append([]int(nil), rounds...)
		sort.Ints(sorted)
		max := sorted[len(sorted)-1]
		if rep.Round > max+1 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("checkpoint round %d is ahead of the event log's last mark %d", rep.Round, max))
		}
		if max > rep.Round+1 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("event log reaches round %d but the checkpoint stopped at %d", max, rep.Round))
		}
	}
}
