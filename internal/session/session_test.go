package session

import (
	"strings"
	"sync"
	"testing"
	"time"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/rpc"
	"adafl/internal/stats"
)

func quiet(string, ...interface{}) {}

// testEnv is the shared scaffolding: a synthetic task partitioned across
// clients plus a seeded model constructor, mirroring the rpc package's
// chaos environment.
type testEnv struct {
	seed     uint64
	clients  int
	parts    []*dataset.Dataset
	test     *dataset.Dataset
	newModel func() *nn.Model
}

func newTestEnv(clients, samples, imgSize, hidden int, seed uint64) *testEnv {
	ds := dataset.SynthMNIST(samples, imgSize, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionIID(train, clients, seed+2)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, imgSize, imgSize}, []int{hidden}, 10, stats.NewRNG(seed+3))
	}
	return &testEnv{seed: seed, clients: clients, parts: parts, test: test, newModel: newModel}
}

// asyncClient builds an async-mode client config targeting a session.
func (e *testEnv) asyncClient(i int, addr, session string) rpc.ClientConfig {
	return rpc.ClientConfig{
		Addr: addr, Session: session, Async: true, ID: i,
		Data: e.parts[i], NewModel: e.newModel,
		LocalSteps: 3, BatchSize: 16, LR: 0.1, Momentum: 0.9,
		DGCClip: 10, DGCMsgClip: 2,
		Seed: e.seed + 50 + uint64(i),
		Logf: quiet,
	}
}

// runClients launches one goroutine per config and returns results and
// errors indexed by position after all clients exit.
func runClients(cfgs []rpc.ClientConfig) ([]*rpc.ClientResult, []error) {
	results := make([]*rpc.ClientResult, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = rpc.RunClient(cfg)
		}()
	}
	wg.Wait()
	return results, errs
}

// connCount reports the session's live connection count (test-only peek).
func connCount(a *AsyncSession) int {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	return len(a.conns)
}

func TestManagerRegisterValidation(t *testing.T) {
	m, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	env := newTestEnv(1, 40, 12, 4, 3)
	a, err := NewAsync(AsyncConfig{NewModel: env.newModel, K: 1, Versions: 1, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer a.tree.Close()
	if err := m.Register("", a); err != nil {
		t.Fatalf("default registration: %v", err)
	}
	if err := m.Register(DefaultSession, a); err == nil {
		t.Fatal(`"" and "default" must collide`)
	}
	if err := m.Register("x", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := m.Register(strings.Repeat("n", maxSessionName+1), a); err == nil {
		t.Fatal("oversized session name accepted")
	}
	m.Deregister("")
	if err := m.Register(DefaultSession, a); err != nil {
		t.Fatalf("re-register after deregister: %v", err)
	}
	if _, err := NewManager(Config{Addr: "127.0.0.1:0", Wire: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown wire codec accepted")
	}
}

// TestManagerUnknownSessionRejected: a hello naming an unregistered
// session is turned away with a shutdown notice; the client exits
// cleanly having done no work.
func TestManagerUnknownSessionRejected(t *testing.T) {
	env := newTestEnv(1, 40, 12, 4, 5)
	m, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	go m.Serve()
	defer m.Close()
	res, err := rpc.RunClient(env.asyncClient(0, m.Addr(), "no-such-session"))
	if err != nil {
		t.Fatalf("rejected client must exit cleanly: %v", err)
	}
	if res.Rounds != 0 || res.Uploads != 0 {
		t.Fatalf("rejected client did work: %+v", res)
	}
}

// TestManagerAdmissionCap: an async session with MaxClients=1 turns the
// second registration away while the first keeps training.
func TestManagerAdmissionCap(t *testing.T) {
	env := newTestEnv(2, 120, 12, 4, 7)
	a, err := NewAsync(AsyncConfig{NewModel: env.newModel, K: 1, Versions: 1000, MaxClients: 1, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("capped", a); err != nil {
		t.Fatal(err)
	}
	go m.Serve()
	defer m.Close()
	runDone := make(chan struct{})
	go func() { a.Run(); close(runDone) }()
	firstDone := make(chan struct{})
	go func() {
		rpc.RunClient(env.asyncClient(0, m.Addr(), "capped"))
		close(firstDone)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for connCount(a) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first client never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	res, err := rpc.RunClient(env.asyncClient(1, m.Addr(), "capped"))
	if err != nil {
		t.Fatalf("capped-out client must exit cleanly: %v", err)
	}
	if res.Rounds != 0 {
		t.Fatalf("capped-out client trained: %+v", res)
	}
	a.Kill()
	<-runDone
	<-firstDone
}

// TestManagerSyncManagedServer: the synchronous round engine plugs into
// the control plane through rpc.NewManagedServer — a full 3-round
// session completes over a Manager-owned listener.
func TestManagerSyncManagedServer(t *testing.T) {
	env := newTestEnv(2, 240, 12, 16, 9)
	cfg := core.DefaultConfig()
	cfg.Compression.WarmupRounds = 1
	cfg.ScaleRatiosForModel(env.newModel().NumParams())
	cfg.K = 1
	srv, err := rpc.NewManagedServer(rpc.ServerConfig{
		Session: "sync", NumClients: 2, Rounds: 3,
		Cfg: cfg, NewModel: env.newModel, Test: env.test, EvalEvery: 1,
		Logf: quiet, StragglerTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != "" {
		t.Fatalf("managed server claims its own address %q", srv.Addr())
	}
	m, err := NewManager(Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("sync", srv); err != nil {
		t.Fatal(err)
	}
	go m.Serve()
	defer m.Close()
	cfgs := make([]rpc.ClientConfig, 2)
	for i := range cfgs {
		cfgs[i] = rpc.ClientConfig{
			Addr: m.Addr(), Session: "sync", ID: i,
			Data: env.parts[i], NewModel: env.newModel,
			LocalSteps: 3, BatchSize: 16, LR: 0.1, Momentum: 0.9,
			Utility: cfg.Utility, UpBps: 1e6, DownBps: 1e6,
			DGCClip: 10, DGCMsgClip: 2, Seed: env.seed + 50 + uint64(i),
			Logf: quiet,
		}
	}
	errCh := make(chan []error, 1)
	go func() {
		_, errs := runClients(cfgs)
		errCh <- errs
	}()
	res, err := srv.Run()
	if err != nil {
		t.Fatalf("managed sync session: %v", err)
	}
	for i, cerr := range <-errCh {
		if cerr != nil {
			t.Errorf("client %d: %v", i, cerr)
		}
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("completed %d/3 rounds", len(res.Rounds))
	}
}
