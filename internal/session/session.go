// Package session is the multi-session control plane: one TCP listener
// multiplexing N named federation sessions. The manager owns the socket,
// negotiates the wire codec per connection, reads the registration hello
// and routes it by the hello's Session field — "" targets the default
// session, so single-session clients interoperate unchanged. Each
// session is an independent engine with its own global model, aggregator
// state, quarantine log and (session-labeled) metrics: the synchronous
// round engine (rpc.NewManagedServer) and the buffered-asynchronous
// FedBuff engine (AsyncSession) both plug in through the Handler
// interface.
//
// Isolation contract: sessions share only the listener, the hello
// router and (optionally) one obs.Registry, whose series are disjoint by
// session label. An update, eviction or quarantine in one session cannot
// perturb another session's aggregation — pinned bitwise by
// TestMultiSessionIsolation.
package session

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"adafl/internal/rpc"
)

// DefaultSession is the session name an empty hello Session routes to.
const DefaultSession = "default"

// helloTimeout bounds codec negotiation plus the hello read on a freshly
// accepted connection, so a dialer that never speaks cannot pin a router
// goroutine.
const helloTimeout = 5 * time.Second

// maxSessionName is the wire limit: the binary hello carries the session
// name behind a one-byte length.
const maxSessionName = 255

// Handler is a session engine the manager routes connections to. Deliver
// receives an admitted, codec-negotiated connection whose hello has
// already been read; the engine owns the connection from then on. The
// hello envelope is only valid during the call. Both rpc.Server (via
// rpc.NewManagedServer) and AsyncSession implement it.
type Handler interface {
	Deliver(conn *rpc.Conn, hello *rpc.Envelope) error
}

// Config configures a Manager.
type Config struct {
	// Addr is the listen address, e.g. ":7070".
	Addr string
	// Wire selects the accepted wire codecs exactly like
	// rpc.ServerConfig.Wire: "" or rpc.WireBinary sniffs per connection,
	// rpc.WireGob declines binary preambles.
	Wire string
	// Fault, when non-nil, wraps every accepted connection with injected
	// link faults.
	Fault *rpc.FaultConfig
	// Logf receives progress lines (log.Printf if nil).
	Logf func(format string, args ...interface{})
}

// Manager multiplexes one listener across named sessions. Register the
// sessions, start Serve in a goroutine, then run each session's engine;
// Close stops accepting and drains in-flight handshakes.
type Manager struct {
	cfg      Config
	listener net.Listener

	mu       sync.Mutex
	sessions map[string]Handler
	closing  bool

	wg sync.WaitGroup // in-flight route goroutines
}

// NewManager binds the listen socket and returns the manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Wire != "" && cfg.Wire != rpc.WireBinary && cfg.Wire != rpc.WireGob {
		return nil, fmt.Errorf("session: unknown wire codec %q (want %q or %q)", cfg.Wire, rpc.WireBinary, rpc.WireGob)
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg, listener: ln, sessions: map[string]Handler{}}, nil
}

// Register adds a named session ("" registers the default session).
// Registration is allowed while Serve is live — a control plane can
// admit new sessions without dropping the listener.
func (m *Manager) Register(name string, h Handler) error {
	if name == "" {
		name = DefaultSession
	}
	if len(name) > maxSessionName {
		return fmt.Errorf("session: name %q exceeds %d bytes", name, maxSessionName)
	}
	if h == nil {
		return fmt.Errorf("session: nil handler for %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sessions[name]; dup {
		return fmt.Errorf("session: %q already registered", name)
	}
	m.sessions[name] = h
	return nil
}

// Deregister removes a named session; later hellos for it are turned
// away with a shutdown notice. Connections already delivered are
// unaffected (the session engine owns them).
func (m *Manager) Deregister(name string) {
	if name == "" {
		name = DefaultSession
	}
	m.mu.Lock()
	delete(m.sessions, name)
	m.mu.Unlock()
}

// Addr returns the bound listen address.
func (m *Manager) Addr() string { return m.listener.Addr().String() }

// Serve accepts and routes connections until Close. It returns nil after
// a Close, or the terminal listener error.
func (m *Manager) Serve() error {
	for {
		raw, err := m.listener.Accept()
		if err != nil {
			m.mu.Lock()
			closing := m.closing
			m.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		m.wg.Add(1)
		go m.route(raw)
	}
}

// route negotiates the codec, reads the hello and hands the connection
// to the named session. Rejections (unknown session, engine refusal) are
// the engine's or the notice's problem — the router never blocks the
// accept loop.
func (m *Manager) route(raw net.Conn) {
	defer m.wg.Done()
	wrapped := rpc.WrapFault(raw, m.cfg.Fault)
	wrapped.SetReadDeadline(time.Now().Add(helloTimeout))
	conn, err := rpc.Accept(wrapped, m.cfg.Wire)
	if err != nil {
		wrapped.Close()
		return
	}
	hello, err := conn.Recv()
	if err != nil || hello.Type != rpc.MsgHello {
		conn.Close()
		return
	}
	name := hello.Session
	if name == "" {
		name = DefaultSession
	}
	m.mu.Lock()
	h := m.sessions[name]
	m.mu.Unlock()
	if h == nil {
		m.cfg.Logf("session: rejecting client %d: unknown session %q", hello.ClientID, name)
		conn.SetWriteDeadline(time.Now().Add(helloTimeout))
		conn.Send(&rpc.Envelope{Type: rpc.MsgShutdown, Info: fmt.Sprintf("unknown session %q", name)})
		conn.Close()
		return
	}
	if err := h.Deliver(conn, hello); err != nil {
		m.cfg.Logf("session: %q declined client %d: %v", name, hello.ClientID, err)
	}
}

// Close stops accepting, waits for in-flight handshakes to drain and
// returns. Registered sessions keep running; shut them down through
// their own engines.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closing = true
	m.mu.Unlock()
	m.listener.Close()
	m.wg.Wait()
}
