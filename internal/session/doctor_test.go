package session

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adafl/internal/checkpoint"
	"adafl/internal/obs"
)

// writeDeltaChain writes n async-snapshot epochs to dir, each advancing
// the version and perturbing a small prefix of the global vector.
func writeDeltaChain(t *testing.T, dir string, n, dim int) {
	t.Helper()
	w, err := checkpoint.NewDeltaWriter(dir, checkpoint.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, dim)
	for v := 1; v <= n; v++ {
		for j := 0; j < 32; j++ {
			params[j] = float64(v) * 0.01
		}
		snap := &asyncSnapshot{Version: v, ParamDim: dim, K: 2, Pushes: v * 2}
		sections, err := encodeAsyncSnapshot(snap, params)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := w.Write(sections); err != nil {
			t.Fatal(err)
		}
	}
}

// writeEventLog writes one "version" mark per value to path.
func writeEventLog(t *testing.T, path string, versions []int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l := obs.NewEventLogWriter(f)
	for _, v := range versions {
		l.Emit(obs.Event{Type: "version", Round: v, Client: -1})
	}
	l.Emit(obs.Event{Type: "push", Round: versions[len(versions)-1], Client: 0})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestDoctorHealthyDeltaChain(t *testing.T) {
	dir := t.TempDir()
	writeDeltaChain(t, dir, 4, 1024)
	events := filepath.Join(t.TempDir(), "events.jsonl")
	writeEventLog(t, events, []int{1, 2, 3, 3, 4}) // duplicate 3 is legal (crash replay)
	var out strings.Builder
	rep, err := Doctor(dir, events, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("healthy chain reported problems: %v", rep.Problems)
	}
	if rep.Format != "delta" || rep.Round != 4 || len(rep.Epochs) == 0 {
		t.Fatalf("report misread the chain: %+v", rep)
	}
	if rep.Events == 0 || rep.Chunks == 0 {
		t.Fatalf("report missing audit detail: %+v", rep)
	}
	if !strings.Contains(out.String(), "consistent") {
		t.Fatalf("summary line missing from output:\n%s", out.String())
	}
}

func TestDoctorDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	writeDeltaChain(t, dir, 3, 1024)
	// Flip one bit in the middle of the latest epoch's payload.
	epochs, err := checkpoint.DeltaEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("delta-%08d.ckpt", epochs[len(epochs)-1]))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Doctor(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("doctor passed a bit-flipped chunk")
	}
}

func TestDoctorDetectsEventGap(t *testing.T) {
	dir := t.TempDir()
	writeDeltaChain(t, dir, 5, 512)
	events := filepath.Join(t.TempDir(), "events.jsonl")
	writeEventLog(t, events, []int{1, 2, 4, 5}) // version 3 vanished
	rep, err := Doctor(dir, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("doctor passed an event log with a version gap")
	}
}

func TestDoctorDetectsLaggingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	writeDeltaChain(t, dir, 2, 512)
	events := filepath.Join(t.TempDir(), "events.jsonl")
	writeEventLog(t, events, []int{1, 2, 3, 4, 5}) // log far ahead of the chain
	rep, err := Doctor(dir, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("doctor passed a checkpoint two versions behind its event log")
	}
}

func TestDoctorFullSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.ckpt")
	if err := checkpoint.Save(path, &asyncSnapshot{Version: 7, ParamDim: 3}); err != nil {
		t.Fatal(err)
	}
	rep, err := Doctor(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || rep.Format != "full" {
		t.Fatalf("healthy full snapshot misjudged: %+v", rep)
	}
	// Truncate it: the frame check must fail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Doctor(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("doctor passed a truncated full snapshot")
	}
}

func TestDoctorEmptyDirIsAnError(t *testing.T) {
	if _, err := Doctor(t.TempDir(), "", nil); err == nil {
		t.Fatal("doctor audited an empty directory without error")
	}
}
