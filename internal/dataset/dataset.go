// Package dataset provides synthetic image-classification tasks standing in
// for MNIST and CIFAR (the module is fully offline), plus the IID and
// non-IID client partitioners the paper's experiments use.
//
// The generators are procedural and seeded: SynthMNIST renders noisy
// seven-segment digit glyphs, SynthCIFAR composes class-specific oriented
// colour textures. Both yield tasks on which the nn models' accuracy climbs
// with training, which is the property the FL experiments need.
package dataset

import (
	"fmt"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// Dataset is a labelled batch of samples with a common per-sample shape.
type Dataset struct {
	// X has shape (N, shape...), e.g. (N, 1, 28, 28).
	X *tensor.Tensor
	// Labels holds the class index of each sample.
	Labels []int
	// Classes is the number of distinct classes.
	Classes int
	// Shape is the per-sample input shape.
	Shape []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// sampleSize returns the flat element count of one sample.
func (d *Dataset) sampleSize() int {
	n := 1
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// Sample returns a copy-free view of sample i as a flat slice.
func (d *Dataset) Sample(i int) []float64 {
	ss := d.sampleSize()
	return d.X.Data[i*ss : (i+1)*ss]
}

// Subset gathers the given sample indices into a new dataset (copying).
func (d *Dataset) Subset(indices []int) *Dataset {
	ss := d.sampleSize()
	// An empty subset keeps a 1-row backing tensor (tensor shapes must be
	// positive) with zero labels; Len() correctly reports 0.
	rows := max(len(indices), 1)
	out := &Dataset{
		X:       tensor.New(append([]int{rows}, d.Shape...)...),
		Labels:  make([]int, len(indices)),
		Classes: d.Classes,
		Shape:   append([]int(nil), d.Shape...),
	}
	for j, idx := range indices {
		copy(out.X.Data[j*ss:(j+1)*ss], d.Sample(idx))
		out.Labels[j] = d.Labels[idx]
	}
	return out
}

// Split divides the dataset into a training set with trainFrac of the
// samples and a test set with the remainder, after a seeded shuffle.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: trainFrac %v out of (0,1)", trainFrac))
	}
	perm := stats.NewRNG(seed).Perm(d.Len())
	cut := int(float64(d.Len()) * trainFrac)
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// Batch copies samples [start, end) into a tensor + label slice suitable
// for Model.TrainBatch.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	ss := d.sampleSize()
	x := tensor.New(append([]int{len(indices)}, d.Shape...)...)
	labels := make([]int, len(indices))
	for j, idx := range indices {
		copy(x.Data[j*ss:(j+1)*ss], d.Sample(idx))
		labels[j] = d.Labels[idx]
	}
	return x, labels
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, l := range d.Labels {
		counts[l]++
	}
	return counts
}

// Iterator yields shuffled mini-batches, reshuffling every epoch.
type Iterator struct {
	ds        *Dataset
	batchSize int
	rng       *stats.RNG
	perm      []int
	pos       int
}

// NewIterator returns a batch iterator over ds with the given batch size.
func NewIterator(ds *Dataset, batchSize int, rng *stats.RNG) *Iterator {
	if batchSize <= 0 {
		panic("dataset: non-positive batch size")
	}
	it := &Iterator{ds: ds, batchSize: batchSize, rng: rng}
	it.reshuffle()
	return it
}

func (it *Iterator) reshuffle() {
	it.perm = it.rng.Perm(it.ds.Len())
	it.pos = 0
}

// Next returns the next mini-batch, wrapping (and reshuffling) at the end
// of the epoch. The final batch of an epoch may be smaller than batchSize.
func (it *Iterator) Next() (*tensor.Tensor, []int) {
	if it.ds.Len() == 0 {
		panic("dataset: iterating empty dataset")
	}
	if it.pos >= len(it.perm) {
		it.reshuffle()
	}
	end := min(it.pos+it.batchSize, len(it.perm))
	batch := it.perm[it.pos:end]
	it.pos = end
	return it.ds.Batch(batch)
}
