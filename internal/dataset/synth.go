package dataset

import (
	"fmt"
	"math"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// segmentMap encodes which of the seven segments (a..g) each digit lights,
// in the order: a(top), b(top-right), c(bottom-right), d(bottom),
// e(bottom-left), f(top-left), g(middle).
var segmentMap = [10][7]bool{
	{true, true, true, true, true, true, false},     // 0
	{false, true, true, false, false, false, false}, // 1
	{true, true, false, true, true, false, true},    // 2
	{true, true, true, true, false, false, true},    // 3
	{false, true, true, false, false, true, true},   // 4
	{true, false, true, true, false, true, true},    // 5
	{true, false, true, true, true, true, true},     // 6
	{true, true, true, false, false, false, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// SynthMNIST renders n noisy seven-segment digit images of the given
// square size (≥ 12) into a 10-class dataset. Each sample applies a random
// translation, per-pixel Gaussian noise and a random contrast factor, so
// the task requires genuine feature learning rather than pixel lookup.
func SynthMNIST(n, size int, seed uint64) *Dataset {
	if size < 12 {
		panic(fmt.Sprintf("dataset: SynthMNIST size %d too small", size))
	}
	r := stats.NewRNG(seed)
	ds := &Dataset{
		X:       tensor.New(n, 1, size, size),
		Labels:  make([]int, n),
		Classes: 10,
		Shape:   []int{1, size, size},
	}
	for i := 0; i < n; i++ {
		digit := r.Intn(10)
		ds.Labels[i] = digit
		img := ds.X.Data[i*size*size : (i+1)*size*size]
		renderDigit(img, size, digit, r)
	}
	return ds
}

// renderDigit draws one jittered glyph into a size×size buffer.
func renderDigit(img []float64, size, digit int, r *stats.RNG) {
	// Glyph box occupies roughly the central 60% of the canvas; jitter
	// shifts it by up to ±size/8 in each axis.
	margin := size / 5
	jx := r.Intn(size/4+1) - size/8
	jy := r.Intn(size/4+1) - size/8
	x0, y0 := margin+jx, margin+jy
	x1, y1 := size-margin+jx, size-margin+jy
	thickness := max(size/10, 1)
	contrast := 0.7 + 0.6*r.Float64()

	fill := func(ax, ay, bx, by int) {
		for y := ay; y < by; y++ {
			if y < 0 || y >= size {
				continue
			}
			for x := ax; x < bx; x++ {
				if x < 0 || x >= size {
					continue
				}
				img[y*size+x] = contrast
			}
		}
	}
	midY := (y0 + y1) / 2
	segs := segmentMap[digit]
	if segs[0] { // a: top
		fill(x0, y0, x1, y0+thickness)
	}
	if segs[1] { // b: top-right
		fill(x1-thickness, y0, x1, midY)
	}
	if segs[2] { // c: bottom-right
		fill(x1-thickness, midY, x1, y1)
	}
	if segs[3] { // d: bottom
		fill(x0, y1-thickness, x1, y1)
	}
	if segs[4] { // e: bottom-left
		fill(x0, midY, x0+thickness, y1)
	}
	if segs[5] { // f: top-left
		fill(x0, y0, x0+thickness, midY)
	}
	if segs[6] { // g: middle
		fill(x0, midY-thickness/2, x1, midY+max(thickness/2, 1))
	}
	// Additive pixel noise.
	for i := range img {
		img[i] += r.Norm() * 0.15
	}
}

// SynthCIFAR composes n small colour images of the given square size into
// a classes-way task. Each class is a distinct combination of texture
// orientation, spatial frequency and colour mixing, with sample-level phase
// jitter and noise — a colour-texture recognition problem standing in for
// CIFAR-10/100.
func SynthCIFAR(n, size, classes int, seed uint64) *Dataset {
	if classes < 2 {
		panic("dataset: SynthCIFAR needs at least 2 classes")
	}
	r := stats.NewRNG(seed)
	ds := &Dataset{
		X:       tensor.New(n, 3, size, size),
		Labels:  make([]int, n),
		Classes: classes,
		Shape:   []int{3, size, size},
	}
	plane := size * size
	for i := 0; i < n; i++ {
		cls := r.Intn(classes)
		ds.Labels[i] = cls
		// Class-determined texture parameters.
		orient := float64(cls%8) * 0.3926990816987241 // π/8 steps
		freq := 1 + float64((cls/8)%4)
		colr := float64(cls%3)/3 + 0.3
		colg := float64((cls+1)%3)/3 + 0.3
		colb := float64((cls+2)%3)/3 + 0.3
		phase := r.Float64() * 6.283185307179586
		base := ds.X.Data[i*3*plane:]
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				u := float64(x)/float64(size) - 0.5
				v := float64(y)/float64(size) - 0.5
				t := u*math.Cos(orient) + v*math.Sin(orient)
				val := 0.5 + 0.5*math.Sin(2*3.141592653589793*freq*t*4+phase)
				idx := y*size + x
				base[idx] = val*colr + r.Norm()*0.1
				base[plane+idx] = val*colg + r.Norm()*0.1
				base[2*plane+idx] = val*colb + r.Norm()*0.1
			}
		}
	}
	return ds
}
