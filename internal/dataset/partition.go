package dataset

import (
	"fmt"
	"sort"

	"adafl/internal/stats"
)

// PartitionIID shuffles the dataset and splits it into numClients shards of
// (nearly) equal size, so every client's label distribution matches the
// global one in expectation.
func PartitionIID(ds *Dataset, numClients int, seed uint64) []*Dataset {
	if numClients <= 0 {
		panic("dataset: non-positive client count")
	}
	perm := stats.NewRNG(seed).Perm(ds.Len())
	out := make([]*Dataset, numClients)
	for c := 0; c < numClients; c++ {
		lo := c * ds.Len() / numClients
		hi := (c + 1) * ds.Len() / numClients
		out[c] = ds.Subset(perm[lo:hi])
	}
	return out
}

// PartitionShards implements the McMahan et al. non-IID split: samples are
// sorted by label, cut into numClients*shardsPerClient contiguous shards,
// and each client receives shardsPerClient random shards. With
// shardsPerClient=2 most clients see only ~2 classes.
func PartitionShards(ds *Dataset, numClients, shardsPerClient int, seed uint64) []*Dataset {
	if numClients <= 0 || shardsPerClient <= 0 {
		panic("dataset: invalid shard partition parameters")
	}
	totalShards := numClients * shardsPerClient
	if ds.Len() < totalShards {
		panic(fmt.Sprintf("dataset: %d samples cannot form %d shards", ds.Len(), totalShards))
	}
	// Sort indices by label (stable on original order for determinism).
	byLabel := make([]int, ds.Len())
	for i := range byLabel {
		byLabel[i] = i
	}
	sort.SliceStable(byLabel, func(a, b int) bool { return ds.Labels[byLabel[a]] < ds.Labels[byLabel[b]] })

	shardPerm := stats.NewRNG(seed).Perm(totalShards)
	out := make([]*Dataset, numClients)
	for c := 0; c < numClients; c++ {
		var indices []int
		for s := 0; s < shardsPerClient; s++ {
			shard := shardPerm[c*shardsPerClient+s]
			lo := shard * ds.Len() / totalShards
			hi := (shard + 1) * ds.Len() / totalShards
			indices = append(indices, byLabel[lo:hi]...)
		}
		out[c] = ds.Subset(indices)
	}
	return out
}

// PartitionDirichlet assigns each sample to a client by drawing, per class,
// a client-proportion vector from Dirichlet(alpha). Small alpha produces
// extreme label skew; large alpha approaches IID.
func PartitionDirichlet(ds *Dataset, numClients int, alpha float64, seed uint64) []*Dataset {
	if numClients <= 0 {
		panic("dataset: non-positive client count")
	}
	r := stats.NewRNG(seed)
	// Collect indices per class.
	perClass := make([][]int, ds.Classes)
	for i, l := range ds.Labels {
		perClass[l] = append(perClass[l], i)
	}
	clientIdx := make([][]int, numClients)
	for _, indices := range perClass {
		if len(indices) == 0 {
			continue
		}
		r.Shuffle(len(indices), func(i, j int) { indices[i], indices[j] = indices[j], indices[i] })
		props := r.Dirichlet(alpha, numClients)
		// Convert proportions to contiguous cut points over this class.
		start := 0
		for c := 0; c < numClients; c++ {
			take := int(props[c] * float64(len(indices)))
			if c == numClients-1 {
				take = len(indices) - start
			}
			take = min(take, len(indices)-start)
			clientIdx[c] = append(clientIdx[c], indices[start:start+take]...)
			start += take
		}
	}
	out := make([]*Dataset, numClients)
	for c := 0; c < numClients; c++ {
		out[c] = ds.Subset(clientIdx[c])
	}
	return out
}

// SkewStat quantifies label skew of a partition as the mean total-variation
// distance between each client's label distribution and the global one
// (0 = perfectly IID, →1 = disjoint labels).
func SkewStat(global *Dataset, parts []*Dataset) float64 {
	gCounts := global.ClassCounts()
	gDist := make([]float64, len(gCounts))
	for i, c := range gCounts {
		gDist[i] = float64(c) / float64(global.Len())
	}
	total := 0.0
	counted := 0
	for _, p := range parts {
		if p.Len() == 0 {
			continue
		}
		tv := 0.0
		for i, c := range p.ClassCounts() {
			tv += abs(float64(c)/float64(p.Len()) - gDist[i])
		}
		total += tv / 2
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
