package dataset_test

import (
	"fmt"

	"adafl/internal/dataset"
)

// ExamplePartitionShards shows the McMahan-style non-IID split: with two
// shards per client, most clients see only about two digit classes.
func ExamplePartitionShards() {
	ds := dataset.SynthMNIST(1000, 16, 7)
	parts := dataset.PartitionShards(ds, 5, 2, 7)
	for i, p := range parts {
		distinct := 0
		for _, c := range p.ClassCounts() {
			if c > 0 {
				distinct++
			}
		}
		fmt.Printf("client %d: %d samples, %d distinct classes\n", i, p.Len(), distinct)
	}
	// Output:
	// client 0: 200 samples, 4 distinct classes
	// client 1: 200 samples, 3 distinct classes
	// client 2: 200 samples, 3 distinct classes
	// client 3: 200 samples, 3 distinct classes
	// client 4: 200 samples, 3 distinct classes
}
