package dataset

import (
	"testing"
	"testing/quick"

	"adafl/internal/nn"
	"adafl/internal/stats"
)

func TestSynthMNISTBasics(t *testing.T) {
	ds := SynthMNIST(200, 28, 1)
	if ds.Len() != 200 || ds.Classes != 10 {
		t.Fatalf("unexpected dataset: len=%d classes=%d", ds.Len(), ds.Classes)
	}
	counts := ds.ClassCounts()
	for cls, c := range counts {
		if c == 0 {
			t.Errorf("class %d absent from 200 samples", cls)
		}
	}
	// Pixels should be roughly in a sane range (noise can exceed [0,1]).
	for _, v := range ds.X.Data[:28*28] {
		if v < -2 || v > 3 {
			t.Fatalf("wild pixel value %v", v)
		}
	}
}

func TestSynthMNISTDeterministic(t *testing.T) {
	a := SynthMNIST(50, 16, 7)
	b := SynthMNIST(50, 16, 7)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := SynthMNIST(50, 16, 8)
	diff := false
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSynthCIFARBasics(t *testing.T) {
	ds := SynthCIFAR(100, 16, 20, 3)
	if ds.Len() != 100 || ds.Classes != 20 {
		t.Fatalf("unexpected dataset: len=%d classes=%d", ds.Len(), ds.Classes)
	}
	if ds.Shape[0] != 3 || ds.Shape[1] != 16 {
		t.Fatalf("unexpected shape %v", ds.Shape)
	}
}

func TestSynthMNISTLearnable(t *testing.T) {
	// The defining property of the substitution: a small model must be able
	// to learn the task well above chance within a few epochs.
	ds := SynthMNIST(600, 16, 11)
	train, test := ds.Split(0.8, 1)
	r := stats.NewRNG(2)
	m := nn.NewMLP(r, 16*16, 64, 10)
	opt := nn.NewSGD(0.1, 0.9, 0)
	it := NewIterator(train, 32, stats.NewRNG(3))
	steps := 8 * train.Len() / 32
	for s := 0; s < steps; s++ {
		x, labels := it.Next()
		x = x.Reshape(x.Dim(0), 16*16)
		m.ZeroGrads()
		m.TrainBatch(x, labels)
		opt.Step(m)
	}
	flatTest := test.X.Reshape(test.Len(), 16*16)
	acc, _ := m.EvaluateBatched(flatTest, test.Labels, 64)
	if acc < 0.6 {
		t.Fatalf("SynthMNIST not learnable: accuracy %.3f after %d steps", acc, steps)
	}
}

func TestSynthCIFARLearnable(t *testing.T) {
	ds := SynthCIFAR(600, 12, 8, 13)
	train, test := ds.Split(0.8, 1)
	r := stats.NewRNG(4)
	m := nn.NewMLP(r, 3*12*12, 64, 8)
	opt := nn.NewSGD(0.05, 0.9, 0)
	it := NewIterator(train, 32, stats.NewRNG(5))
	steps := 10 * train.Len() / 32
	for s := 0; s < steps; s++ {
		x, labels := it.Next()
		x = x.Reshape(x.Dim(0), 3*12*12)
		m.ZeroGrads()
		m.TrainBatch(x, labels)
		opt.Step(m)
	}
	flatTest := test.X.Reshape(test.Len(), 3*12*12)
	acc, _ := m.EvaluateBatched(flatTest, test.Labels, 64)
	if acc < 0.5 {
		t.Fatalf("SynthCIFAR not learnable: accuracy %.3f (chance 0.125)", acc)
	}
}

func TestSubsetCopiesData(t *testing.T) {
	ds := SynthMNIST(10, 16, 1)
	sub := ds.Subset([]int{0, 1})
	sub.X.Data[0] = 99
	if ds.X.Data[0] == 99 {
		t.Fatal("Subset aliases parent data")
	}
	if sub.Len() != 2 || sub.Labels[1] != ds.Labels[1] {
		t.Fatal("Subset wrong contents")
	}
}

func TestSubsetEmpty(t *testing.T) {
	ds := SynthMNIST(10, 16, 1)
	sub := ds.Subset(nil)
	if sub.Len() != 0 {
		t.Fatalf("empty subset has length %d", sub.Len())
	}
}

func TestSplitPartitionsAllSamples(t *testing.T) {
	ds := SynthMNIST(100, 16, 2)
	train, test := ds.Split(0.7, 9)
	if train.Len() != 70 || test.Len() != 30 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
}

func TestBatchContents(t *testing.T) {
	ds := SynthMNIST(10, 16, 3)
	x, labels := ds.Batch([]int{3, 7})
	if x.Dim(0) != 2 || len(labels) != 2 {
		t.Fatal("batch wrong size")
	}
	if labels[0] != ds.Labels[3] || labels[1] != ds.Labels[7] {
		t.Fatal("batch labels wrong")
	}
	for i, v := range ds.Sample(3) {
		if x.Data[i] != v {
			t.Fatal("batch data wrong")
		}
	}
}

func TestIteratorCoversEpoch(t *testing.T) {
	ds := SynthMNIST(10, 16, 4)
	it := NewIterator(ds, 3, stats.NewRNG(1))
	seen := 0
	for i := 0; i < 4; i++ { // 3+3+3+1 covers one epoch
		_, labels := it.Next()
		seen += len(labels)
	}
	if seen != 10 {
		t.Fatalf("epoch covered %d samples, want 10", seen)
	}
}

func TestPartitionIIDSizesAndCoverage(t *testing.T) {
	ds := SynthMNIST(100, 16, 5)
	parts := PartitionIID(ds, 7, 1)
	total := 0
	for _, p := range parts {
		total += p.Len()
		if p.Len() < 100/7 || p.Len() > 100/7+1 {
			t.Errorf("uneven IID part size %d", p.Len())
		}
	}
	if total != 100 {
		t.Fatalf("IID partition covers %d samples", total)
	}
}

func TestPartitionShardsLabelSkew(t *testing.T) {
	ds := SynthMNIST(1000, 16, 6)
	iid := PartitionIID(ds, 10, 1)
	shard := PartitionShards(ds, 10, 2, 1)
	iidSkew := SkewStat(ds, iid)
	shardSkew := SkewStat(ds, shard)
	if shardSkew < iidSkew+0.3 {
		t.Fatalf("shard partition not clearly skewed: iid=%.3f shard=%.3f", iidSkew, shardSkew)
	}
	// Each 2-shard client should hold at most ~3 distinct labels.
	for _, p := range shard {
		distinct := 0
		for _, c := range p.ClassCounts() {
			if c > 0 {
				distinct++
			}
		}
		if distinct > 4 {
			t.Errorf("shard client has %d distinct labels", distinct)
		}
	}
}

func TestPartitionDirichletAlphaControlsSkew(t *testing.T) {
	ds := SynthMNIST(2000, 16, 7)
	spiky := PartitionDirichlet(ds, 10, 0.1, 1)
	flat := PartitionDirichlet(ds, 10, 100, 1)
	if SkewStat(ds, spiky) < SkewStat(ds, flat)+0.2 {
		t.Fatalf("Dirichlet alpha did not control skew: %.3f vs %.3f",
			SkewStat(ds, spiky), SkewStat(ds, flat))
	}
}

func TestPartitionDirichletCoversAll(t *testing.T) {
	ds := SynthMNIST(500, 16, 8)
	parts := PartitionDirichlet(ds, 5, 0.5, 2)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 500 {
		t.Fatalf("Dirichlet partition covers %d samples, want 500", total)
	}
}

func TestPartitionPropertyNoSampleLost(t *testing.T) {
	f := func(seed uint64, clientsRaw uint8) bool {
		clients := int(clientsRaw%9) + 2
		ds := SynthMNIST(120, 16, seed)
		for _, parts := range [][]*Dataset{
			PartitionIID(ds, clients, seed),
			PartitionDirichlet(ds, clients, 0.5, seed),
		} {
			total := 0
			for _, p := range parts {
				total += p.Len()
			}
			if total != ds.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSkewStatIIDNearZero(t *testing.T) {
	ds := SynthMNIST(5000, 16, 9)
	parts := PartitionIID(ds, 5, 3)
	if s := SkewStat(ds, parts); s > 0.1 {
		t.Fatalf("IID skew %v too high", s)
	}
}
