// Package obs is the observability layer: a concurrency-safe metrics
// registry (atomic counters, gauges and fixed-bucket histograms) with a
// Prometheus-text-format exposition writer, a structured JSONL round-event
// log, and an optional HTTP debug server. Everything is stdlib-only.
//
// The whole package is designed to be zero-cost when disabled: a nil
// *Registry hands out nil instruments, and every instrument method is a
// no-op on a nil receiver, so instrumented code can record unconditionally
// without allocations or branches beyond the nil check. The same holds for
// a nil *EventLog.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a caller bug; they are applied as-is so
// tests can detect them in the exposition).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds are ascending upper bucket bounds, with an implicit +Inf
// bucket. Observations are lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; counts[i] = observations <= bounds[i]
	total   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample. NaN samples are dropped: they carry no
// magnitude information and would poison the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observations (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n ascending bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Default bucket layouts for the metrics this repo emits. Utility scores
// live in [0, 1]; compression ratios on the paper's 4x–210x ladder;
// latencies from sub-millisecond local phases to straggler-timeout scale;
// sizes from a KB-scale sparse update to a dense model broadcast.
var (
	ScoreBuckets   = LinearBuckets(0.05, 0.05, 19)
	RatioBuckets   = ExpBuckets(1, 2, 9)
	LatencyBuckets = ExpBuckets(0.001, 2, 16)
	SizeBuckets    = ExpBuckets(1<<10, 4, 11)
)

// Registry owns named instruments and renders them in Prometheus text
// exposition format. Instrument names may carry a label block, e.g.
// `adafl_bytes_total{dir="up"}`; series sharing the family name (the part
// before '{') share one # TYPE header. Lookups are idempotent: the first
// call creates the instrument, later calls return the same one.
//
// A nil *Registry is valid and returns nil instruments everywhere.
type Registry struct {
	mu    sync.Mutex
	order []string
	items map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: map[string]interface{}{}}
}

func (r *Registry) lookup(name string, make func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if it, ok := r.items[name]; ok {
		return it
	}
	it := make()
	r.items[name] = it
	r.order = append(r.order, name)
	return it
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	it := r.lookup(name, func() interface{} { return &Counter{} })
	c, ok := it.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, it))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	it := r.lookup(name, func() interface{} { return &Gauge{} })
	g, ok := it.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, it))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	it := r.lookup(name, func() interface{} {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	})
	h, ok := it.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, it))
	}
	return h
}

// family splits a series name into its family (the metric name proper)
// and the label block, if any.
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format (version 0.0.4), in registration order, emitting one
// # TYPE header per family. Safe to call while instruments are updated.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	items := make(map[string]interface{}, len(r.items))
	for k, v := range r.items {
		items[k] = v
	}
	r.mu.Unlock()

	typed := map[string]bool{}
	header := func(name, kind string) error {
		fam, _ := family(name)
		if typed[fam] {
			return nil
		}
		typed[fam] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind)
		return err
	}
	for _, name := range order {
		var err error
		switch it := items[name].(type) {
		case *Counter:
			if err = header(name, "counter"); err == nil {
				_, err = fmt.Fprintf(w, "%s %d\n", name, it.Value())
			}
		case *Gauge:
			if err = header(name, "gauge"); err == nil {
				_, err = fmt.Fprintf(w, "%s %s\n", name, promFloat(it.Value()))
			}
		case *Histogram:
			if err = header(name, "histogram"); err != nil {
				break
			}
			fam, labels := family(name)
			cum := int64(0)
			for i, b := range it.bounds {
				cum += it.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					fam, mergeLabels(labels, fmt.Sprintf(`le="%s"`, promFloat(b))), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
				fam, mergeLabels(labels, `le="+Inf"`), it.Count()); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", fam, labels, promFloat(it.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", fam, labels, it.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeLabels merges an extra label into an existing (possibly empty)
// label block: ({a="b"}, le="1") -> {a="b",le="1"}.
func mergeLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

// WithLabel returns name with one extra label merged into its label
// block: WithLabel(`adafl_bytes_total{dir="up"}`, "session", "a") →
// `adafl_bytes_total{dir="up",session="a"}`. This is how a multi-session
// control plane derives per-session series from the shared instrument
// catalogue; an empty value returns the name unchanged so single-session
// servers keep their historical series names.
func WithLabel(name, key, value string) string {
	if value == "" {
		return name
	}
	fam, labels := family(name)
	return fam + mergeLabels(labels, fmt.Sprintf("%s=%q", key, value))
}

// promFloat renders a float the way Prometheus expects (no exponent for
// integral values it can avoid, +Inf/-Inf spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
