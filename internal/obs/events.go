package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"
)

// Event is one structured record in the round-event log. Type is the
// discriminator; the remaining fields are populated per type:
//
//	selection   Round, Scores (client id -> utility score),
//	            Ratios (selected client id -> compression ratio)
//	update      Round, Client, Bytes (wire bytes of the sparse update)
//	evict       Round, Client, Reason
//	quarantine  Round, Client, Reason, Norm
//	aggregate   Round, Received, Seconds (aggregation+eval latency)
//	round       Round, Clients, Selected, Received, Evicted,
//	            Quarantined, Bytes, Acc — mirrors the server RoundRecord
//	checkpoint  Round, Bytes, Seconds
//	edge_up     Round, Edge (an edge registered or rejoined)
//	edge_down   Round, Edge, Reason (heartbeat timeout or wire error)
//	reroute     Round, Edge (the dead edge), Clients (orphans moved),
//	            Reason (the reassignment summary)
//
// Client is -1 on records that do not concern a single client. Acc is
// omitted (not emitted) when the round was not evaluated.
type Event struct {
	TS     string          `json:"ts,omitempty"`
	Type   string          `json:"type"`
	Round  int             `json:"round"`
	Client int             `json:"client"`
	Reason string          `json:"reason,omitempty"`
	Scores map[int]float64 `json:"scores,omitempty"`
	Ratios map[int]float64 `json:"ratios,omitempty"`

	Bytes   int64   `json:"bytes,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	Norm    float64 `json:"norm,omitempty"`

	Clients     int      `json:"clients,omitempty"`
	Selected    int      `json:"selected,omitempty"`
	Received    int      `json:"received,omitempty"`
	Evicted     int      `json:"evicted,omitempty"`
	Quarantined int      `json:"quarantined,omitempty"`
	Acc         *float64 `json:"acc,omitempty"`

	// Edge identifies the edge aggregator an event concerns (-1 or
	// omitted on flat-session records). Emitted by the two-tier engine:
	// edge_up, edge_down, reroute, edge_partial.
	Edge int `json:"edge,omitempty"`
}

// AccValue wraps a test accuracy for Event.Acc, mapping NaN (no
// evaluation this round) to nil so the record stays valid JSON.
func AccValue(acc float64) *float64 {
	if math.IsNaN(acc) {
		return nil
	}
	return &acc
}

// EventLog appends Events as JSONL (one JSON object per line) through a
// buffered writer. Emit never blocks training on fsync: records buffer in
// memory and reach the OS on Flush, which the round engine calls at round
// boundaries — the natural crash-consistency points. A crash can lose at
// most the buffered tail of the current round and can tear at most the
// final line; ReadEvents skips a torn trailing line.
//
// A nil *EventLog is valid: Emit, Flush and Close are no-ops.
type EventLog struct {
	mu  sync.Mutex
	f   *os.File // nil when writing to a plain io.Writer
	w   *bufio.Writer
	err error
	now func() time.Time
}

// OpenEventLog opens (creating or appending to) the JSONL event log at
// path.
func OpenEventLog(path string) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open event log: %w", err)
	}
	return &EventLog{f: f, w: bufio.NewWriterSize(f, 64<<10), now: time.Now}, nil
}

// NewEventLogWriter returns an EventLog writing to w (tests, pipes).
func NewEventLogWriter(w io.Writer) *EventLog {
	return &EventLog{w: bufio.NewWriterSize(w, 64<<10), now: time.Now}
}

// Emit appends one event. The timestamp is stamped here (RFC3339Nano)
// unless the caller pre-filled it. Errors are sticky and reported by Err
// and Close; a logging subsystem must never take down training.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if e.TS == "" {
		e.TS = l.now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(&e)
	if err != nil {
		l.err = fmt.Errorf("obs: marshal event: %w", err)
		return
	}
	if _, err := l.w.Write(b); err != nil {
		l.err = err
		return
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = err
	}
}

// Flush pushes buffered records to the OS and, when backed by a file,
// fsyncs so a completed round's records survive a crash.
func (l *EventLog) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *EventLog) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
	}
	return nil
}

// Err returns the first write or marshal error, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the log, returning the first error seen.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// ReadEvents parses a JSONL event stream. A torn final line (the tail a
// crash can leave behind) is skipped; a malformed line anywhere else is
// an error.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []Event
	var pendingErr error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the final one: real corruption.
			return out, pendingErr
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("obs: malformed event line: %w", err)
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
