package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer exposes a registry over HTTP for scraping and debugging:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard net/http/pprof handlers
//
// It binds its own mux (never http.DefaultServeMux) so importing this
// package does not leak pprof onto an application's default mux.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugServer binds addr (e.g. ":9090" or "127.0.0.1:0") and serves in
// a background goroutine until Close.
func NewDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen: %w", err)
	}
	s := &DebugServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
