package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEventLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	acc := 0.75
	l.Emit(Event{Type: "selection", Round: 0, Client: -1,
		Scores: map[int]float64{0: 0.9, 1: 0.4}, Ratios: map[int]float64{0: 4}})
	l.Emit(Event{Type: "update", Round: 0, Client: 0, Bytes: 1234})
	l.Emit(Event{Type: "round", Round: 0, Client: -1, Clients: 2, Selected: 1,
		Received: 1, Bytes: 1234, Acc: &acc})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("read %d events, want 3", len(evs))
	}
	if evs[0].Type != "selection" || evs[0].Scores[1] != 0.4 || evs[0].Ratios[0] != 4 {
		t.Fatalf("selection event mangled: %+v", evs[0])
	}
	if evs[1].Client != 0 || evs[1].Bytes != 1234 {
		t.Fatalf("update event mangled: %+v", evs[1])
	}
	if evs[2].Acc == nil || *evs[2].Acc != 0.75 || evs[2].Clients != 2 {
		t.Fatalf("round event mangled: %+v", evs[2])
	}
	for _, e := range evs {
		if e.TS == "" {
			t.Fatal("event missing timestamp")
		}
	}
}

func TestEventLogAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	for i := 0; i < 2; i++ {
		l, err := OpenEventLog(path)
		if err != nil {
			t.Fatal(err)
		}
		l.Emit(Event{Type: "round", Round: i, Client: -1})
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Round != 0 || evs[1].Round != 1 {
		t.Fatalf("reopen did not append: %+v", evs)
	}
}

func TestReadEventsSkipsTornTrailingLine(t *testing.T) {
	in := `{"type":"round","round":0,"client":-1}` + "\n" +
		`{"type":"round","round":1,"cli` // torn mid-record by a crash
	evs, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatalf("torn trailing line must be skipped, got %v", err)
	}
	if len(evs) != 1 || evs[0].Round != 0 {
		t.Fatalf("events = %+v, want the one complete record", evs)
	}

	// The same garbage mid-file is corruption, not a crash artefact.
	bad := `{"type":"round","round":0,"client":-1}` + "\n" + "not json\n" +
		`{"type":"round","round":1,"client":-1}` + "\n"
	if _, err := ReadEvents(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-file corruption must error")
	}
}

func TestNilEventLogNoOps(t *testing.T) {
	var l *EventLog
	l.Emit(Event{Type: "round"})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogBuffersUntilFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Emit(Event{Type: "update", Round: 0, Client: 1})
	if b, _ := os.ReadFile(path); len(b) != 0 {
		t.Fatalf("record reached disk before Flush: %q", b)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || len(b) == 0 {
		t.Fatalf("flush did not persist the record: %q, %v", b, err)
	}
}

func TestAccValue(t *testing.T) {
	if AccValue(nan()) != nil {
		t.Fatal("NaN accuracy must map to nil")
	}
	if v := AccValue(0.5); v == nil || *v != 0.5 {
		t.Fatal("finite accuracy must round-trip")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
