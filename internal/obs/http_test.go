package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adafl_rounds_total").Add(7)
	srv, err := NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "adafl_rounds_total 7") ||
		!strings.Contains(body, "# TYPE adafl_rounds_total counter") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (len %d)", code, len(body))
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	srv, err := NewDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics with nil registry = %d", resp.StatusCode)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := NewDebugServer("256.0.0.1:bad", nil); err == nil {
		t.Fatal("bad address must error")
	}
}
