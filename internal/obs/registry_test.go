package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LinearBuckets(1, 1, 3))
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", buf.String(), err)
	}
}

// TestNilInstrumentsAllocationFree pins the zero-cost-when-disabled
// contract: recording into nil instruments must not allocate.
func TestNilInstrumentsAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ScoreBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("nil-instrument ops allocated %.1f times per run", allocs)
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("adafl_rounds_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("adafl_rounds_total") != c {
		t.Fatal("second lookup must return the same counter")
	}

	g := r.Gauge("adafl_round_accuracy")
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}

	h := r.Histogram("adafl_utility_score", []float64{0.25, 0.5, 0.75})
	for _, v := range []float64{0.1, 0.3, 0.6, 0.9, 0.5} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-2.4) > 1e-12 {
		t.Fatalf("histogram sum = %v, want 2.4", h.Sum())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter must panic")
		}
	}()
	r.Gauge("x")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`adafl_bytes_total{dir="up"}`).Add(100)
	r.Counter(`adafl_bytes_total{dir="down"}`).Add(200)
	r.Gauge("adafl_round_participants").Set(4)
	h := r.Histogram("adafl_round_seconds", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE adafl_bytes_total counter\n",
		`adafl_bytes_total{dir="up"} 100` + "\n",
		`adafl_bytes_total{dir="down"} 200` + "\n",
		"# TYPE adafl_round_participants gauge\n",
		"adafl_round_participants 4\n",
		"# TYPE adafl_round_seconds histogram\n",
		`adafl_round_seconds_bucket{le="0.5"} 1` + "\n",
		`adafl_round_seconds_bucket{le="1"} 2` + "\n",
		`adafl_round_seconds_bucket{le="+Inf"} 3` + "\n",
		"adafl_round_seconds_sum 5.9\n",
		"adafl_round_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE adafl_bytes_total"); n != 1 {
		t.Errorf("family header emitted %d times, want once", n)
	}
	checkPrometheusParses(t, out)
}

// checkPrometheusParses runs a minimal text-format validation over every
// exposition line: `# TYPE name kind` comments and `series value` samples.
func checkPrometheusParses(t *testing.T, out string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("bad TYPE line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("bad metric kind in %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("sample line without value: %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil && line[i+1:] != "+Inf" {
			t.Errorf("unparseable sample value in %q: %v", line, err)
		}
		series := line[:i]
		if j := strings.IndexByte(series, '{'); j >= 0 && !strings.HasSuffix(series, "}") {
			t.Errorf("unterminated label block in %q", line)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared_total").Inc()
				r.Gauge(fmt.Sprintf("g_%d", i%2)).Set(float64(j))
				r.Histogram("h", ScoreBuckets).Observe(float64(j%20) / 20)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", ScoreBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("linear buckets %v", lin)
	}
	exp := ExpBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exp buckets %v", exp)
	}
	for _, bs := range [][]float64{ScoreBuckets, RatioBuckets, LatencyBuckets, SizeBuckets} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("buckets not ascending: %v", bs)
			}
		}
	}
}
