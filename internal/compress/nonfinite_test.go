package compress

import (
	"math"
	"testing"
	"time"
)

// run executes f with a deadline: the pre-fix quickselect could loop
// forever once a NaN corrupted the partition invariants, so these tests
// must not trust the selection path to return.
func run(t *testing.T, name string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		f()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not finish: selection hung on non-finite input", name)
	}
}

func assertFinite(t *testing.T, s *Sparse) {
	t.Helper()
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("transmitted non-finite value %v at index %d", v, s.Indices[i])
		}
	}
}

// TestSelectTopKNaNRanksAsZero pins the headline case: a NaN in the
// input must neither hang the quickselect nor displace real coordinates.
func TestSelectTopKNaNRanksAsZero(t *testing.T) {
	run(t, "SelectTopK", func() {
		v := []float64{math.NaN(), 5, 4, 3, 2, 1}
		s := SelectTopK(v, 2)
		if len(s.Indices) != 2 || s.Indices[0] != 1 || s.Indices[1] != 2 {
			t.Fatalf("indices = %v, want [1 2]", s.Indices)
		}
		if s.Values[0] != 5 || s.Values[1] != 4 {
			t.Fatalf("values = %v, want [5 4]", s.Values)
		}
		assertFinite(t, s)
	})
}

// TestSelectTopKInfNotEmitted checks that ±Inf — which passes every
// magnitude threshold — is treated as zero magnitude, not transmitted.
func TestSelectTopKInfNotEmitted(t *testing.T) {
	run(t, "SelectTopK", func() {
		v := []float64{math.Inf(1), -7, math.Inf(-1), 6, 0.5, -0.25}
		s := SelectTopK(v, 2)
		if len(s.Indices) != 2 || s.Indices[0] != 1 || s.Indices[1] != 3 {
			t.Fatalf("indices = %v, want [1 3]", s.Indices)
		}
		assertFinite(t, s)
	})
}

// TestSelectTopKAllNonFinite degenerates to an empty message: every
// coordinate has zero magnitude, and zeros at the threshold may fill up
// to k slots — but non-finite values must not be among them.
func TestSelectTopKAllNonFinite(t *testing.T) {
	run(t, "SelectTopK", func() {
		v := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.NaN()}
		s := SelectTopK(v, 2)
		if len(s.Values) != 0 {
			t.Fatalf("selected %v from all-non-finite input", s.Values)
		}
	})
}

// TestSelectTopKDensePathScrubs covers k ≥ dim, where selection degrades
// to a dense copy that must still drop non-finite coordinates.
func TestSelectTopKDensePathScrubs(t *testing.T) {
	v := []float64{1, math.NaN(), -2, math.Inf(1)}
	s := SelectTopK(v, len(v))
	if len(s.Indices) != 2 || s.Indices[0] != 0 || s.Indices[1] != 2 {
		t.Fatalf("indices = %v, want [0 2]", s.Indices)
	}
	assertFinite(t, s)
}

// TestTopKCodecNonFinite drives the same property through the TopK codec
// at both sparse and dense ratios.
func TestTopKCodecNonFinite(t *testing.T) {
	grad := []float64{math.NaN(), 5, math.Inf(1), 3, 2, math.Inf(-1), 1, 0}
	codec := &TopK{}
	run(t, "TopK.Encode", func() {
		for _, ratio := range []float64{1, 2, 4} {
			s := codec.Encode(grad, ratio)
			assertFinite(t, s)
			if s.NNZ() == 0 {
				t.Fatalf("ratio %v: finite coordinates were dropped entirely", ratio)
			}
		}
	})
}

// TestDGCEncodeNonFinite checks the stateful codec end to end: encoding a
// gradient with NaN/±Inf must terminate, transmit only finite values, and
// leave the error-feedback accumulators clean so later rounds with good
// gradients are not poisoned by the one bad round.
func TestDGCEncodeNonFinite(t *testing.T) {
	d := &DGC{Momentum: 0.9, ClipNorm: 10, MsgClipFactor: 2}
	bad := []float64{math.NaN(), 4, math.Inf(1), -3, 2, math.Inf(-1), 1, 0.5}
	run(t, "DGC.Encode", func() {
		s := d.Encode(bad, 2)
		assertFinite(t, s)
	})
	if n := d.AccumulatedNorm(); math.IsNaN(n) || math.IsInf(n, 0) {
		t.Fatalf("accumulator poisoned after non-finite gradient: norm = %v", n)
	}
	// A clean follow-up round must also be clean on the wire.
	good := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	run(t, "DGC.Encode", func() {
		s := d.Encode(good, 2)
		assertFinite(t, s)
		if s.NNZ() == 0 {
			t.Fatal("clean round transmitted nothing")
		}
	})
}
