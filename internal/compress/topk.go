package compress

import (
	"math"
	"sort"

	"adafl/internal/tensor"
)

// finite reports whether x is neither NaN nor ±Inf. The selection path
// treats non-finite coordinates as zero magnitude: a NaN inside the
// quickselect partition compares false against everything and can leave
// the pivot ordering — and with it the loop bounds — inconsistent, and a
// ±Inf would pass every threshold and be transmitted verbatim, poisoning
// the server-side aggregate.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// topKThreshold returns the magnitude of the k-th largest |v| using an
// iterative quickselect over scratch (O(n) expected). Non-finite entries
// rank as zero magnitude. k must be in [1, len(v)] and scratch must have
// length len(v); its contents are clobbered.
func topKThreshold(v []float64, k int, scratch []float64) float64 {
	abs := scratch[:len(v)]
	for i, x := range v {
		if x < 0 {
			x = -x
		}
		if !finite(x) {
			x = 0
		}
		abs[i] = x
	}
	// Select the element at rank len-k in ascending order.
	target := len(abs) - k
	lo, hi := 0, len(abs)-1
	for lo < hi {
		pivot := abs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for abs[i] < pivot {
				i++
			}
			for abs[j] > pivot {
				j--
			}
			if i <= j {
				abs[i], abs[j] = abs[j], abs[i]
				i++
				j--
			}
		}
		if target <= j {
			hi = j
		} else if target >= i {
			lo = i
		} else {
			break
		}
	}
	return abs[target]
}

// SelectTopK builds a sparse message from the k largest-magnitude
// coordinates of v. Ties at the threshold are resolved by coordinate order
// and the result is truncated to exactly k entries. The quickselect scratch
// is borrowed from the shared tensor pool; stateful codecs that encode
// every round should prefer SelectTopKScratch with their own buffer.
func SelectTopK(v []float64, k int) *Sparse {
	if k <= 0 {
		panic("compress: non-positive k")
	}
	if k >= len(v) {
		return denseFinite(v)
	}
	scratch := tensor.GetScratch(len(v))
	s := SelectTopKScratch(v, k, scratch)
	tensor.PutScratch(scratch)
	return s
}

// SelectTopKScratch is SelectTopK with a caller-provided quickselect
// scratch buffer of capacity ≥ len(v), whose contents are clobbered. A nil
// or too-small scratch falls back to the shared pool.
func SelectTopKScratch(v []float64, k int, scratch []float64) *Sparse {
	if k <= 0 {
		panic("compress: non-positive k")
	}
	if k >= len(v) {
		return denseFinite(v)
	}
	if cap(scratch) < len(v) {
		return SelectTopK(v, k)
	}
	thr := topKThreshold(v, k, scratch[:len(v)])
	s := &Sparse{Dim: len(v), Indices: make([]int32, 0, k), Values: make([]float64, 0, k)}
	// First take strictly-above-threshold entries, then fill with
	// at-threshold entries until k (handles duplicates of the threshold).
	// Non-finite entries are never transmitted: +Inf would pass any
	// threshold and NaN compares false everywhere, so both are skipped
	// explicitly (they ranked as zero magnitude in topKThreshold).
	for i, x := range v {
		if !finite(x) {
			continue
		}
		a := x
		if a < 0 {
			a = -a
		}
		if a > thr {
			s.Indices = append(s.Indices, int32(i))
			s.Values = append(s.Values, x)
		}
	}
	for i, x := range v {
		if len(s.Indices) >= k {
			break
		}
		a := x
		if a < 0 {
			a = -a
		}
		if a == thr {
			s.Indices = append(s.Indices, int32(i))
			s.Values = append(s.Values, x)
		}
	}
	// Keep coordinates sorted for deterministic wire images.
	sort.Sort(byIndex{s})
	return s
}

// denseFinite is the k ≥ len(v) fast path: every finite coordinate is
// transmitted, non-finite ones are dropped (zero magnitude). With an
// all-finite input it is equivalent to NewSparseDense.
func denseFinite(v []float64) *Sparse {
	s := &Sparse{Dim: len(v), Indices: make([]int32, 0, len(v)), Values: make([]float64, 0, len(v))}
	for i, x := range v {
		if !finite(x) {
			continue
		}
		s.Indices = append(s.Indices, int32(i))
		s.Values = append(s.Values, x)
	}
	return s
}

type byIndex struct{ s *Sparse }

func (b byIndex) Len() int           { return len(b.s.Indices) }
func (b byIndex) Less(i, j int) bool { return b.s.Indices[i] < b.s.Indices[j] }
func (b byIndex) Swap(i, j int) {
	b.s.Indices[i], b.s.Indices[j] = b.s.Indices[j], b.s.Indices[i]
	b.s.Values[i], b.s.Values[j] = b.s.Values[j], b.s.Values[i]
}

// Codec compresses a gradient vector into a sparse message. Encode may be
// stateful (error accumulation); Ratio is the requested byte-level
// compression factor for this call, letting AdaFL vary it round to round.
type Codec interface {
	Name() string
	Encode(grad []float64, ratio float64) *Sparse
	// Reset clears any client-local state (accumulators).
	Reset()
}

// Identity transmits the gradient uncompressed regardless of ratio.
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// Encode implements Codec.
func (Identity) Encode(grad []float64, _ float64) *Sparse { return NewSparseDense(grad) }

// Reset implements Codec.
func (Identity) Reset() {}

// TopK is magnitude sparsification without error feedback: the classic
// baseline that simply drops small coordinates. The only state is the
// reused quickselect scratch buffer, so one instance must not be shared
// between concurrently-encoding clients.
type TopK struct {
	scratch []float64
}

// Name implements Codec.
func (*TopK) Name() string { return "topk" }

// Encode implements Codec.
func (t *TopK) Encode(grad []float64, ratio float64) *Sparse {
	if cap(t.scratch) < len(grad) {
		t.scratch = make([]float64, len(grad))
	}
	return SelectTopKScratch(grad, KForRatio(len(grad), ratio), t.scratch)
}

// Reset implements Codec.
func (t *TopK) Reset() {}
