package compress

import (
	"fmt"
	"math"

	"adafl/internal/tensor"
)

// DGC implements Deep Gradient Compression (Lin et al. 2017), the codec
// AdaFL's adaptive compression builds on. Per encode call it:
//
//  1. clips the incoming gradient to ClipNorm (local gradient clipping,
//     preventing explosion under aggressive sparsification),
//  2. applies momentum correction: u ← m·u + g, v ← v + u, so delayed
//     small coordinates accumulate momentum-consistent mass instead of
//     being repeatedly discarded,
//  3. transmits the top-k coordinates of the accumulator v and clears the
//     transmitted coordinates of both u and v (error feedback).
//
// The struct is per-client state; one DGC instance must not be shared
// between clients.
type DGC struct {
	// Momentum is the correction factor m (typically the trainer's own
	// momentum coefficient).
	Momentum float64
	// ClipNorm bounds the L2 norm of each incoming gradient before
	// accumulation; 0 disables clipping.
	ClipNorm float64
	// ResidualDecay ∈ [0, 1] multiplies the untransmitted accumulator
	// before each new gradient is added. 1 is classic DGC (keep all
	// residual mass); lower values fade stale residuals, which stabilises
	// intermittent senders — clients that are selected only occasionally
	// would otherwise dump large out-of-date accumulations. A zero value
	// is treated as 1 so the zero struct behaves like classic DGC.
	ResidualDecay float64
	// MsgClipFactor, when positive, bounds the L2 norm of each transmitted
	// message to MsgClipFactor·‖g‖ (the current incoming gradient's norm).
	// The clipped-away portion stays in the accumulator, so mass is
	// conserved but large stale residuals drain over several rounds
	// instead of being dumped at once. 0 disables message clipping.
	MsgClipFactor float64

	u, v []float64

	// gbuf holds the clipped working copy of each incoming gradient and
	// scratch the quickselect buffer; both are recycled across Encode calls
	// so a steady-state encode allocates only the outgoing message.
	gbuf, scratch []float64

	// Deferred-commit staging: Encode clears the transmitted coordinates of
	// u/v optimistically, but the upload can still fail or be quarantined.
	// The cleared mass is staged here until Commit (upload accepted) or
	// Rollback (upload lost/rejected) — without it, a rejected round would
	// silently destroy the error-feedback residual instead of retrying it.
	pendingIdx  []int32
	pendingVals []float64
	pendingU    []float64
	pending     bool
}

// NewDGC returns a DGC codec with the given momentum correction factor and
// clipping threshold.
func NewDGC(momentum, clipNorm float64) *DGC {
	return &DGC{Momentum: momentum, ClipNorm: clipNorm}
}

// Name implements Codec.
func (d *DGC) Name() string { return "dgc" }

// Reset implements Codec.
func (d *DGC) Reset() {
	d.u, d.v = nil, nil
	d.pending = false
}

// Validate rejects configurations whose error-feedback arithmetic would
// drift or explode: ResidualDecay outside [0, 1] (0 is the documented
// "treat as 1" zero-struct default), a momentum at or above 1 (the u
// accumulator diverges), or NaN/negative clip bounds. Call it where
// configs are parsed; Encode itself stays unchecked on the hot path.
func (d *DGC) Validate() error {
	if math.IsNaN(d.ResidualDecay) || d.ResidualDecay < 0 || d.ResidualDecay > 1 {
		return fmt.Errorf("compress: DGC ResidualDecay %v outside [0, 1]", d.ResidualDecay)
	}
	if math.IsNaN(d.Momentum) || d.Momentum < 0 || d.Momentum >= 1 {
		return fmt.Errorf("compress: DGC Momentum %v outside [0, 1)", d.Momentum)
	}
	if math.IsNaN(d.ClipNorm) || d.ClipNorm < 0 {
		return fmt.Errorf("compress: DGC ClipNorm %v negative or NaN", d.ClipNorm)
	}
	if math.IsNaN(d.MsgClipFactor) || d.MsgClipFactor < 0 {
		return fmt.Errorf("compress: DGC MsgClipFactor %v negative or NaN", d.MsgClipFactor)
	}
	return nil
}

// AccumulatedNorm exposes the L2 norm of the residual accumulator, used by
// tests and diagnostics to verify error feedback drains over time.
func (d *DGC) AccumulatedNorm() float64 { return tensor.Norm2(d.v) }

// Encode implements Codec.
func (d *DGC) Encode(grad []float64, ratio float64) *Sparse {
	if d.u == nil {
		d.u = make([]float64, len(grad))
		d.v = make([]float64, len(grad))
	}
	if len(d.u) != len(grad) {
		panic("compress: DGC gradient dimension changed")
	}
	if cap(d.gbuf) < len(grad) {
		d.gbuf = make([]float64, len(grad))
	}
	g := d.gbuf[:len(grad)]
	copy(g, grad)
	// Scrub non-finite coordinates before anything touches the
	// accumulators: a single NaN would propagate through ClipNorm's norm
	// and the u/v updates, permanently poisoning the error-feedback state
	// for every later round. Zero keeps the coordinate's residual intact.
	for i, x := range g {
		if !finite(x) {
			g[i] = 0
		}
	}
	if d.ClipNorm > 0 {
		tensor.ClipNorm(g, d.ClipNorm)
	}
	decay := d.ResidualDecay
	if decay == 0 {
		decay = 1
	}
	for i, x := range g {
		d.u[i] = d.Momentum*d.u[i] + x
		d.v[i] = decay*d.v[i] + d.u[i]
	}
	k := KForRatio(len(grad), ratio)
	if cap(d.scratch) < len(grad) {
		d.scratch = make([]float64, len(grad))
	}
	msg := SelectTopKScratch(d.v, k, d.scratch)
	if d.MsgClipFactor > 0 {
		bound := d.MsgClipFactor * tensor.Norm2(g)
		if n := tensor.Norm2(msg.Values); n > bound && n > 0 {
			tensor.ScaleVec(msg.Values, bound/n)
		}
	}
	// Stage the state this clear destroys, then clear. A later Rollback
	// restores it exactly; Commit (or the next Encode) discards the stage.
	d.pendingIdx = append(d.pendingIdx[:0], msg.Indices...)
	d.pendingVals = append(d.pendingVals[:0], msg.Values...)
	if cap(d.pendingU) < len(msg.Indices) {
		d.pendingU = make([]float64, len(msg.Indices))
	}
	d.pendingU = d.pendingU[:len(msg.Indices)]
	for i, idx := range msg.Indices {
		d.pendingU[i] = d.u[idx]
	}
	d.pending = true
	for i, idx := range msg.Indices {
		d.u[idx] = 0
		d.v[idx] -= msg.Values[i]
	}
	return msg
}

// Commit finalises the most recent Encode: the transmitted mass was
// accepted by the server and the staged undo state is discarded. Calling
// Commit (or Rollback) twice is a no-op.
func (d *DGC) Commit() { d.pending = false }

// Rollback undoes the most recent Encode's error-feedback clear: the
// transmitted values are returned to the accumulator v and the momentum
// state u is restored, so a failed or quarantined upload's mass is
// re-transmitted by the next accepted round instead of being destroyed.
// Only the latest Encode can be rolled back; a newer Encode implicitly
// commits its predecessor.
func (d *DGC) Rollback() {
	if !d.pending {
		return
	}
	for i, idx := range d.pendingIdx {
		d.u[idx] = d.pendingU[i]
		d.v[idx] += d.pendingVals[i]
	}
	d.pending = false
}
