package compress_test

import (
	"fmt"

	"adafl/internal/compress"
)

// ExampleSelectTopK sparsifies a gradient to its largest-magnitude
// coordinates.
func ExampleSelectTopK() {
	grad := []float64{0.1, -5, 0.3, 4, -0.2}
	msg := compress.SelectTopK(grad, 2)
	fmt.Println("kept coordinates:", msg.Indices)
	fmt.Println("values:", msg.Values)
	fmt.Println("wire bytes:", msg.WireBytes(), "of", compress.DenseBytes(len(grad)))
	// Output:
	// kept coordinates: [1 3]
	// values: [-5 4]
	// wire bytes: 24 of 28
}

// ExampleDGC shows error feedback: coordinates dropped in one round are
// accumulated and can be transmitted later.
func ExampleDGC() {
	dgc := compress.NewDGC(0, 0) // no momentum correction, no clipping
	grad := []float64{1.0, 0.4, 0.1, 0.05}

	first := dgc.Encode(grad, 4) // keep only the top coordinate
	fmt.Println("round 1 sends:", first.Indices)

	// Even with a zero gradient this round, the accumulated residual from
	// round 1 (0.4 at index 1) is transmitted.
	second := dgc.Encode(make([]float64, 4), 4)
	fmt.Println("round 2 sends:", second.Indices)
	// Output:
	// round 1 sends: [0]
	// round 2 sends: [1]
}

// ExampleKForRatio converts a byte-level compression target into a
// coordinate budget.
func ExampleKForRatio() {
	dim := 431080 // the paper CNN's parameter count
	fmt.Println("k at 210x:", compress.KForRatio(dim, 210))
	fmt.Println("k at 4x  :", compress.KForRatio(dim, 4))
	// Output:
	// k at 210x: 1026
	// k at 4x  : 53885
}
