package compress

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire layout for a Sparse message (all integers little-endian):
//
//	u32 dim
//	u32 nnz
//	u8  flags        bit0: dense identity — indices 0..dim-1 are implied
//	                 and the index run is omitted
//	                 bit1: quantized — a u32 level count and f64 norm
//	                 follow, and values travel bit-packed
//	[u32 levels]     quantizer level count s (quantized only)
//	[f64 norm]       quantizer scale scalar (quantized only)
//	[nnz × u32]      indices (absent when the dense-identity bit is set)
//	nnz × f64        values (plain), or ⌈nnz·bits/8⌉ packed sign+level
//	                 integers (quantized; bits = QuantBitsFor(levels))
//
// Plain values travel as float64 so a binary session is bit-identical to a
// gob session: the accounting layer (WireBytes) keeps charging float32 per
// coordinate, matching the paper's 4-byte parameters, but the simulator's
// arithmetic must not change with the codec. Quantized values are packed
// losslessly because every quantized value is exactly sign·norm·l/s (the
// Sparse.QuantLevels contract): the decoder recomputes the identical
// float64 expression the codecs use, so binary and gob sessions stay
// bit-identical for quantized codecs too — while the frame actually
// shrinks to the packed size WireBytes has always charged. The layout is
// owned here so internal/rpc (the envelope codec) and any future mmap'd
// spill format agree on it.

// sparseFlagDense marks the dense-identity layout (index run omitted).
const sparseFlagDense = 1

// sparseFlagQuant marks a packed quantized payload (levels + norm header,
// bit-packed values).
const sparseFlagQuant = 2

// sparseBinaryHeader is the fixed prefix: dim + nnz + flags.
const sparseBinaryHeader = 4 + 4 + 1

// sparseQuantHeader is the extra prefix of a quantized payload: levels + norm.
const sparseQuantHeader = 4 + 8

// maxQuantLevels bounds the level count a decoder accepts. 2^20 levels is
// already a 22-bit quantizer — far past the point where quantization beats
// shipping floats — so anything larger is a hostile or corrupt frame.
const maxQuantLevels = 1 << 20

// SparseBinarySize bounds the binary encoding of an nnz-element sparse
// vector with explicit indices (the dense-identity form is smaller, and a
// packed quantized payload is smaller beyond a few coordinates but carries
// a sparseQuantHeader-byte extension — callers adding slack of 12+ bytes,
// as the fleet harness does, bound every layout).
// Fleet-scale receivers size their frame caps and payload pools from it.
func SparseBinarySize(nnz int) int { return sparseBinaryHeader + 12*nnz }

// ErrBinaryTruncated reports a sparse binary payload shorter than its own
// header claims. It is the clean-truncation error the fault injector's
// mid-message cut must surface as.
var ErrBinaryTruncated = fmt.Errorf("%w: truncated binary payload", ErrMalformed)

// denseIdentity reports whether Indices is exactly 0..Dim-1, the shape
// NewSparseDense produces; such a message omits its index run on the wire.
func (s *Sparse) denseIdentity() bool {
	if len(s.Indices) != s.Dim {
		return false
	}
	for i, idx := range s.Indices {
		if int(idx) != i {
			return false
		}
	}
	return true
}

// quantized reports whether the message travels in the packed quantized
// layout: QuantBits set with a usable level count.
func (s *Sparse) quantized() bool {
	return s.QuantBits > 0 && s.QuantLevels >= 1 && s.QuantLevels <= maxQuantLevels
}

// quantLevel recovers the (level, sign) integer pair a quantized value was
// built from, clamping anything out of contract (non-finite values, levels
// past s) onto the grid. Zero keeps its sign bit so ±0 round-trips.
func quantLevel(v, norm float64, levels int) (l, sign uint64) {
	if math.Signbit(v) {
		sign = 1
	}
	if norm == 0 || math.IsNaN(v) {
		return 0, sign
	}
	a := math.Round(math.Abs(v) / norm * float64(levels))
	if !(a >= 0) {
		return 0, sign
	}
	if a > float64(levels) {
		a = float64(levels)
	}
	return uint64(a), sign
}

// quantValue is the decoder's inverse: the exact float64 expression the
// quantizing codecs use, so reconstruction is bit-identical to the values
// the sender held.
func quantValue(l, sign uint64, norm float64, levels int) float64 {
	val := norm * float64(l) / float64(levels)
	if sign == 1 {
		val = -val
	}
	return val
}

// BinaryWireSize returns the exact encoded size of AppendBinary's output.
func (s *Sparse) BinaryWireSize() int {
	n := sparseBinaryHeader
	if s.quantized() {
		n += sparseQuantHeader + (len(s.Values)*QuantBitsFor(s.QuantLevels)+7)/8
	} else {
		n += 8 * len(s.Values)
	}
	if !s.denseIdentity() {
		n += 4 * len(s.Indices)
	}
	return n
}

// AppendBinary appends the binary encoding of s to dst and returns the
// extended slice. It allocates only when dst lacks capacity.
func (s *Sparse) AppendBinary(dst []byte) []byte {
	dense := s.denseIdentity()
	quant := s.quantized()
	var hdr [sparseBinaryHeader + sparseQuantHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.Dim))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.Values)))
	if dense {
		hdr[8] |= sparseFlagDense
	}
	n := sparseBinaryHeader
	if quant {
		hdr[8] |= sparseFlagQuant
		binary.LittleEndian.PutUint32(hdr[9:], uint32(s.QuantLevels))
		binary.LittleEndian.PutUint64(hdr[13:], math.Float64bits(s.QuantNorm))
		n += sparseQuantHeader
	}
	dst = append(dst, hdr[:n]...)
	if !dense {
		var b [4]byte
		for _, idx := range s.Indices {
			binary.LittleEndian.PutUint32(b[:], uint32(idx))
			dst = append(dst, b[:]...)
		}
	}
	if quant {
		bits := uint(QuantBitsFor(s.QuantLevels))
		var acc uint64
		var nbits uint
		for _, v := range s.Values {
			l, sign := quantLevel(v, s.QuantNorm, s.QuantLevels)
			acc |= (l | sign<<(bits-1)) << nbits
			nbits += bits
			for nbits >= 8 {
				dst = append(dst, byte(acc))
				acc >>= 8
				nbits -= 8
			}
		}
		if nbits > 0 {
			dst = append(dst, byte(acc))
		}
		return dst
	}
	var b [8]byte
	for _, v := range s.Values {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// EncodeBinaryTo streams the binary encoding of s to w through chunk, a
// caller-owned scratch buffer (len ≥ 16, ideally a few KB). Streaming
// through a bounded chunk instead of materialising the frame keeps a
// connection's send path allocation-free without retaining an
// update-sized buffer per peer.
func (s *Sparse) EncodeBinaryTo(w io.Writer, chunk []byte) error {
	if len(chunk) < 16 {
		return fmt.Errorf("compress: EncodeBinaryTo scratch of %d bytes, need >= 16", len(chunk))
	}
	dense := s.denseIdentity()
	quant := s.quantized()
	binary.LittleEndian.PutUint32(chunk[0:], uint32(s.Dim))
	binary.LittleEndian.PutUint32(chunk[4:], uint32(len(s.Values)))
	chunk[8] = 0
	if dense {
		chunk[8] |= sparseFlagDense
	}
	hdr := sparseBinaryHeader
	if quant {
		chunk[8] |= sparseFlagQuant
		// The combined header (21 bytes) can exceed the 16-byte scratch
		// floor, so flush the fixed part before building the extension.
		if _, err := w.Write(chunk[:sparseBinaryHeader]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(chunk[0:], uint32(s.QuantLevels))
		binary.LittleEndian.PutUint64(chunk[4:], math.Float64bits(s.QuantNorm))
		hdr = sparseQuantHeader
	}
	if _, err := w.Write(chunk[:hdr]); err != nil {
		return err
	}
	if !dense {
		for off := 0; off < len(s.Indices); {
			n := len(s.Indices) - off
			if m := len(chunk) / 4; n > m {
				n = m
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(chunk[4*i:], uint32(s.Indices[off+i]))
			}
			if _, err := w.Write(chunk[:4*n]); err != nil {
				return err
			}
			off += n
		}
	}
	if quant {
		bits := uint(QuantBitsFor(s.QuantLevels))
		var acc uint64
		var nbits uint
		fill := 0
		for _, v := range s.Values {
			l, sign := quantLevel(v, s.QuantNorm, s.QuantLevels)
			acc |= (l | sign<<(bits-1)) << nbits
			nbits += bits
			for nbits >= 8 {
				chunk[fill] = byte(acc)
				acc >>= 8
				nbits -= 8
				fill++
				if fill == len(chunk) {
					if _, err := w.Write(chunk); err != nil {
						return err
					}
					fill = 0
				}
			}
		}
		if nbits > 0 {
			chunk[fill] = byte(acc)
			fill++
		}
		if fill > 0 {
			if _, err := w.Write(chunk[:fill]); err != nil {
				return err
			}
		}
		return nil
	}
	for off := 0; off < len(s.Values); {
		n := len(s.Values) - off
		if m := len(chunk) / 8; n > m {
			n = m
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(s.Values[off+i]))
		}
		if _, err := w.Write(chunk[:8*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// DecodeBinaryInto decodes a sparse binary payload produced by
// AppendBinary into s, reusing s's slices when capacity allows (the
// zero-allocation receive path). data must be exactly one encoded
// message. The declared nnz is validated against len(data) before any
// allocation, so a corrupt count cannot force an oversized allocation;
// structural validation beyond shape (index bounds versus the receiver's
// model) stays with Sparse.Validate.
func (s *Sparse) DecodeBinaryInto(data []byte) error {
	if len(data) < sparseBinaryHeader {
		return ErrBinaryTruncated
	}
	dim := binary.LittleEndian.Uint32(data[0:])
	nnz := binary.LittleEndian.Uint32(data[4:])
	flags := data[8]
	rest := data[sparseBinaryHeader:]

	if dim > math.MaxInt32 {
		return fmt.Errorf("%w: dim %d overflows int32", ErrMalformed, dim)
	}
	dense := flags&sparseFlagDense != 0
	quant := flags&sparseFlagQuant != 0

	levels, bits := 0, 0
	var norm float64
	if quant {
		if len(rest) < sparseQuantHeader {
			return ErrBinaryTruncated
		}
		levels = int(binary.LittleEndian.Uint32(rest[0:]))
		norm = math.Float64frombits(binary.LittleEndian.Uint64(rest[4:]))
		rest = rest[sparseQuantHeader:]
		if levels < 1 || levels > maxQuantLevels {
			return fmt.Errorf("%w: quantizer level count %d outside [1, %d]",
				ErrMalformed, levels, maxQuantLevels)
		}
		if math.IsNaN(norm) || math.IsInf(norm, 0) || norm < 0 {
			return fmt.Errorf("%w: quantizer norm %v not finite and non-negative", ErrMalformed, norm)
		}
		bits = QuantBitsFor(levels)
	}

	// Exact-length validation before any allocation: a lying count can
	// neither force an oversized allocation nor smuggle trailing bytes.
	var want uint64
	if quant {
		want = (uint64(nnz)*uint64(bits) + 7) / 8
	} else {
		want = uint64(nnz) * 8
	}
	if !dense {
		want += uint64(nnz) * 4
	}
	if want != uint64(len(rest)) {
		if want > uint64(len(rest)) {
			return ErrBinaryTruncated
		}
		return fmt.Errorf("%w: %d trailing bytes after %d coordinates",
			ErrMalformed, uint64(len(rest))-want, nnz)
	}
	if dense && nnz != dim {
		return fmt.Errorf("%w: dense flag with nnz %d != dim %d", ErrMalformed, nnz, dim)
	}

	n := int(nnz)
	s.Dim = int(dim)
	s.QuantBits, s.QuantLevels, s.QuantNorm = 0, 0, 0
	if quant {
		s.QuantBits, s.QuantLevels, s.QuantNorm = bits, levels, norm
	}
	if cap(s.Indices) < n {
		s.Indices = make([]int32, n)
	} else {
		s.Indices = s.Indices[:n]
	}
	if cap(s.Values) < n {
		s.Values = make([]float64, n)
	} else {
		s.Values = s.Values[:n]
	}
	if dense {
		for i := range s.Indices {
			s.Indices[i] = int32(i)
		}
	} else {
		for i := range s.Indices {
			s.Indices[i] = int32(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		rest = rest[4*n:]
	}
	if quant {
		b := uint(bits)
		mask := uint64(1)<<(b-1) - 1
		var acc uint64
		var nbits uint
		pos := 0
		for i := range s.Values {
			for nbits < b {
				acc |= uint64(rest[pos]) << nbits
				pos++
				nbits += 8
			}
			chunkBits := acc & (uint64(1)<<b - 1)
			acc >>= b
			nbits -= b
			l := chunkBits & mask
			sign := chunkBits >> (b - 1)
			if l > uint64(levels) {
				return fmt.Errorf("%w: quantized level %d exceeds level count %d",
					ErrMalformed, l, levels)
			}
			s.Values[i] = quantValue(l, sign, norm, levels)
		}
		return nil
	}
	for i := range s.Values {
		s.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return nil
}
