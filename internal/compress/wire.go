package compress

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire layout for a Sparse message (all integers little-endian):
//
//	u32 dim
//	u32 nnz
//	u8  flags        bit0: dense identity — indices 0..dim-1 are implied
//	                 and the index run is omitted
//	[nnz × u32]      indices (absent when the dense-identity bit is set)
//	nnz × f64        values
//
// Values travel as float64 so a binary session is bit-identical to a gob
// session: the accounting layer (WireBytes) keeps charging float32 per
// coordinate, matching the paper's 4-byte parameters, but the simulator's
// arithmetic must not change with the codec. The layout is owned here so
// internal/rpc (the envelope codec) and any future mmap'd spill format
// agree on it.

// sparseFlagDense marks the dense-identity layout (index run omitted).
const sparseFlagDense = 1

// sparseBinaryHeader is the fixed prefix: dim + nnz + flags.
const sparseBinaryHeader = 4 + 4 + 1

// SparseBinarySize bounds the binary encoding of an nnz-element sparse
// vector with explicit indices (the dense-identity form is smaller).
// Fleet-scale receivers size their frame caps and payload pools from it.
func SparseBinarySize(nnz int) int { return sparseBinaryHeader + 12*nnz }

// ErrBinaryTruncated reports a sparse binary payload shorter than its own
// header claims. It is the clean-truncation error the fault injector's
// mid-message cut must surface as.
var ErrBinaryTruncated = fmt.Errorf("%w: truncated binary payload", ErrMalformed)

// denseIdentity reports whether Indices is exactly 0..Dim-1, the shape
// NewSparseDense produces; such a message omits its index run on the wire.
func (s *Sparse) denseIdentity() bool {
	if len(s.Indices) != s.Dim {
		return false
	}
	for i, idx := range s.Indices {
		if int(idx) != i {
			return false
		}
	}
	return true
}

// BinaryWireSize returns the exact encoded size of AppendBinary's output.
func (s *Sparse) BinaryWireSize() int {
	n := sparseBinaryHeader + 8*len(s.Values)
	if !s.denseIdentity() {
		n += 4 * len(s.Indices)
	}
	return n
}

// AppendBinary appends the binary encoding of s to dst and returns the
// extended slice. It allocates only when dst lacks capacity.
func (s *Sparse) AppendBinary(dst []byte) []byte {
	dense := s.denseIdentity()
	var hdr [sparseBinaryHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.Dim))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.Values)))
	if dense {
		hdr[8] = sparseFlagDense
	}
	dst = append(dst, hdr[:]...)
	if !dense {
		var b [4]byte
		for _, idx := range s.Indices {
			binary.LittleEndian.PutUint32(b[:], uint32(idx))
			dst = append(dst, b[:]...)
		}
	}
	var b [8]byte
	for _, v := range s.Values {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// EncodeBinaryTo streams the binary encoding of s to w through chunk, a
// caller-owned scratch buffer (len ≥ 16, ideally a few KB). Streaming
// through a bounded chunk instead of materialising the frame keeps a
// connection's send path allocation-free without retaining an
// update-sized buffer per peer.
func (s *Sparse) EncodeBinaryTo(w io.Writer, chunk []byte) error {
	if len(chunk) < 16 {
		return fmt.Errorf("compress: EncodeBinaryTo scratch of %d bytes, need >= 16", len(chunk))
	}
	dense := s.denseIdentity()
	binary.LittleEndian.PutUint32(chunk[0:], uint32(s.Dim))
	binary.LittleEndian.PutUint32(chunk[4:], uint32(len(s.Values)))
	if dense {
		chunk[8] = sparseFlagDense
	} else {
		chunk[8] = 0
	}
	if _, err := w.Write(chunk[:sparseBinaryHeader]); err != nil {
		return err
	}
	if !dense {
		for off := 0; off < len(s.Indices); {
			n := len(s.Indices) - off
			if m := len(chunk) / 4; n > m {
				n = m
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(chunk[4*i:], uint32(s.Indices[off+i]))
			}
			if _, err := w.Write(chunk[:4*n]); err != nil {
				return err
			}
			off += n
		}
	}
	for off := 0; off < len(s.Values); {
		n := len(s.Values) - off
		if m := len(chunk) / 8; n > m {
			n = m
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(s.Values[off+i]))
		}
		if _, err := w.Write(chunk[:8*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// DecodeBinaryInto decodes a sparse binary payload produced by
// AppendBinary into s, reusing s's slices when capacity allows (the
// zero-allocation receive path). data must be exactly one encoded
// message. The declared nnz is validated against len(data) before any
// allocation, so a corrupt count cannot force an oversized allocation;
// structural validation beyond shape (index bounds versus the receiver's
// model) stays with Sparse.Validate.
func (s *Sparse) DecodeBinaryInto(data []byte) error {
	if len(data) < sparseBinaryHeader {
		return ErrBinaryTruncated
	}
	dim := binary.LittleEndian.Uint32(data[0:])
	nnz := binary.LittleEndian.Uint32(data[4:])
	flags := data[8]
	rest := data[sparseBinaryHeader:]

	if dim > math.MaxInt32 {
		return fmt.Errorf("%w: dim %d overflows int32", ErrMalformed, dim)
	}
	dense := flags&sparseFlagDense != 0
	per := 8
	if !dense {
		per = 12
	}
	if uint64(nnz)*uint64(per) != uint64(len(rest)) {
		if uint64(nnz)*uint64(per) > uint64(len(rest)) {
			return ErrBinaryTruncated
		}
		return fmt.Errorf("%w: %d trailing bytes after %d coordinates",
			ErrMalformed, len(rest)-int(nnz)*per, nnz)
	}
	if dense && nnz != dim {
		return fmt.Errorf("%w: dense flag with nnz %d != dim %d", ErrMalformed, nnz, dim)
	}

	n := int(nnz)
	s.Dim = int(dim)
	s.quantizedBits = 0
	if cap(s.Indices) < n {
		s.Indices = make([]int32, n)
	} else {
		s.Indices = s.Indices[:n]
	}
	if cap(s.Values) < n {
		s.Values = make([]float64, n)
	} else {
		s.Values = s.Values[:n]
	}
	if dense {
		for i := range s.Indices {
			s.Indices[i] = int32(i)
		}
	} else {
		for i := range s.Indices {
			s.Indices[i] = int32(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		rest = rest[4*n:]
	}
	for i := range s.Values {
		s.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return nil
}
