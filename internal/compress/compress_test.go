package compress

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

func TestSparseDenseRoundTrip(t *testing.T) {
	v := []float64{1, 0, -2, 3}
	s := NewSparseDense(v)
	d := s.Dense()
	for i := range v {
		if d[i] != v[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	if s.NNZ() != 4 || s.Dim != 4 {
		t.Fatal("dense sparse has wrong counts")
	}
}

func TestSparseAddTo(t *testing.T) {
	s := &Sparse{Dim: 4, Indices: []int32{1, 3}, Values: []float64{2, -1}}
	dst := []float64{10, 10, 10, 10}
	s.AddTo(dst, 0.5)
	want := []float64{10, 11, 10, 9.5}
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("AddTo[%d] = %v, want %v", i, dst[i], w)
		}
	}
}

func TestWireBytesDenseVsSparse(t *testing.T) {
	dense := NewSparseDense(make([]float64, 100))
	if dense.WireBytes() != 8+400 {
		t.Fatalf("dense wire bytes %d", dense.WireBytes())
	}
	sparse := &Sparse{Dim: 100, Indices: make([]int32, 10), Values: make([]float64, 10)}
	if sparse.WireBytes() != 8+10*8 {
		t.Fatalf("sparse wire bytes %d", sparse.WireBytes())
	}
}

func TestCompressionRatioMatchesKForRatio(t *testing.T) {
	dim := 431080 // paper CNN dimension
	for _, ratio := range []float64{4, 50, 210} {
		k := KForRatio(dim, ratio)
		s := &Sparse{Dim: dim, Indices: make([]int32, k), Values: make([]float64, k)}
		got := s.CompressionRatio()
		if got < ratio*0.9 || got > ratio*1.2 {
			t.Errorf("ratio %v: achieved %v with k=%d", ratio, got, k)
		}
	}
}

func TestKForRatioBounds(t *testing.T) {
	if KForRatio(100, 1) != 100 {
		t.Error("ratio 1 should keep everything")
	}
	if KForRatio(100, 0.5) != 100 {
		t.Error("ratio < 1 should keep everything")
	}
	if KForRatio(10, 1e9) != 1 {
		t.Error("huge ratio should clamp k to 1")
	}
}

func TestPaperGradientSizes(t *testing.T) {
	// Table I: 1.64 MB dense; 8 KB at 210x; 420 KB at 4x.
	dim := 431080
	if mb := float64(DenseBytes(dim)) / 1e6; mb < 1.6 || mb > 1.8 {
		t.Fatalf("dense gradient %.2f MB", mb)
	}
	k210 := KForRatio(dim, 210)
	s := &Sparse{Dim: dim, Indices: make([]int32, k210), Values: make([]float64, k210)}
	if kb := float64(s.WireBytes()) / 1e3; kb < 6 || kb > 10 {
		t.Fatalf("210x gradient %.1f KB, want ~8", kb)
	}
	k4 := KForRatio(dim, 4)
	s4 := &Sparse{Dim: dim, Indices: make([]int32, k4), Values: make([]float64, k4)}
	if kb := float64(s4.WireBytes()) / 1e3; kb < 380 || kb > 460 {
		t.Fatalf("4x gradient %.1f KB, want ~430", kb)
	}
}

func TestSelectTopKExact(t *testing.T) {
	v := []float64{0.1, -5, 3, 0, -2, 4}
	s := SelectTopK(v, 3)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	got := map[int32]float64{}
	for i, idx := range s.Indices {
		got[idx] = s.Values[i]
	}
	if got[1] != -5 || got[5] != 4 || got[2] != 3 {
		t.Fatalf("wrong top-3: %v", got)
	}
}

func TestSelectTopKAllWhenKLarge(t *testing.T) {
	v := []float64{1, 2}
	s := SelectTopK(v, 10)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
}

func TestSelectTopKTies(t *testing.T) {
	v := []float64{1, 1, 1, 1, 1}
	s := SelectTopK(v, 2)
	if s.NNZ() != 2 {
		t.Fatalf("tie handling produced %d entries", s.NNZ())
	}
}

func TestSelectTopKSortedIndices(t *testing.T) {
	r := stats.NewRNG(1)
	v := make([]float64, 500)
	for i := range v {
		v[i] = r.Norm()
	}
	s := SelectTopK(v, 50)
	if !sort.SliceIsSorted(s.Indices, func(i, j int) bool { return s.Indices[i] < s.Indices[j] }) {
		t.Fatal("indices not sorted")
	}
}

func TestSelectTopKProperty(t *testing.T) {
	// Property: the smallest selected magnitude is >= the largest
	// unselected magnitude.
	f := func(seed uint64, kRaw uint8) bool {
		r := stats.NewRNG(seed)
		v := make([]float64, 64)
		for i := range v {
			v[i] = r.Norm()
		}
		k := int(kRaw%63) + 1
		s := SelectTopK(v, k)
		if s.NNZ() != k {
			return false
		}
		selected := make(map[int32]bool)
		minSel := math.Inf(1)
		for i, idx := range s.Indices {
			selected[idx] = true
			if a := math.Abs(s.Values[i]); a < minSel {
				minSel = a
			}
		}
		for i, x := range v {
			if !selected[int32(i)] && math.Abs(x) > minSel+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentityCodec(t *testing.T) {
	var c Identity
	v := []float64{1, 2, 3}
	s := c.Encode(v, 100)
	if s.NNZ() != 3 {
		t.Fatal("identity compressed")
	}
	if s.CompressionRatio() != 1 {
		t.Fatalf("identity ratio %v", s.CompressionRatio())
	}
}

func TestTopKCodecRespectsRatio(t *testing.T) {
	var c TopK
	r := stats.NewRNG(2)
	v := make([]float64, 10000)
	for i := range v {
		v[i] = r.Norm()
	}
	s := c.Encode(v, 20)
	if got := s.CompressionRatio(); got < 18 || got > 25 {
		t.Fatalf("achieved ratio %v for requested 20", got)
	}
}

func TestDGCErrorFeedbackLosesNothing(t *testing.T) {
	// Invariant: transmitted mass + residual accumulator = total injected
	// gradient mass (with momentum 0 and no clipping).
	d := NewDGC(0, 0)
	r := stats.NewRNG(3)
	dim := 200
	total := make([]float64, dim)
	received := make([]float64, dim)
	for round := 0; round < 20; round++ {
		g := make([]float64, dim)
		for i := range g {
			g[i] = r.Norm()
		}
		tensor.Axpy(1, g, total)
		msg := d.Encode(g, 10)
		msg.AddTo(received, 1)
	}
	// received + residual v must equal total.
	for i := range total {
		got := received[i] + d.v[i]
		if math.Abs(got-total[i]) > 1e-9 {
			t.Fatalf("mass lost at %d: %v vs %v", i, got, total[i])
		}
	}
}

func TestDGCResidualEventuallyTransmitted(t *testing.T) {
	// A coordinate with small persistent gradient must eventually be
	// selected thanks to accumulation.
	d := NewDGC(0, 0)
	dim := 100
	sentSmall := false
	sign := 1.0
	for round := 0; round < 400 && !sentSmall; round++ {
		g := make([]float64, dim)
		g[0] = 0.01 // persistently small but consistent coordinate
		for i := 1; i < dim; i++ {
			g[i] = sign // oscillating large coordinates cancel over time
		}
		sign = -sign
		msg := d.Encode(g, 100) // keeps ~1-2 coords per round
		for _, idx := range msg.Indices {
			if idx == 0 {
				sentSmall = true
			}
		}
	}
	if !sentSmall {
		t.Fatal("accumulated small coordinate never transmitted")
	}
}

func TestDGCMomentumCorrection(t *testing.T) {
	// With momentum m, a constant unit gradient accumulates faster than
	// without: after 2 rounds u = 1+m, v = 1 + (2+m) ... just verify the
	// accumulator grows strictly faster with momentum.
	dim := 10
	plain := NewDGC(0, 0)
	mom := NewDGC(0.9, 0)
	g := make([]float64, dim)
	g[3] = 1e-6 // tiny coordinate that is never selected
	for i := range g {
		if i != 3 {
			g[i] = 1
		}
	}
	for round := 0; round < 5; round++ {
		plain.Encode(g, 50)
		mom.Encode(g, 50)
	}
	if math.Abs(mom.v[3]) <= math.Abs(plain.v[3]) {
		t.Fatalf("momentum correction not accelerating accumulation: %v vs %v",
			mom.v[3], plain.v[3])
	}
}

func TestDGCClipping(t *testing.T) {
	d := NewDGC(0, 1)      // clip to unit norm
	g := []float64{30, 40} // norm 50 -> clipped to 1
	msg := d.Encode(g, 1)
	norm := tensor.Norm2(msg.Dense())
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("clipped transmission norm %v, want 1", norm)
	}
}

func TestDGCReset(t *testing.T) {
	d := NewDGC(0.5, 0)
	d.Encode([]float64{1, 2, 3}, 3)
	d.Reset()
	if d.AccumulatedNorm() != 0 {
		t.Fatal("reset did not clear accumulator")
	}
}

func TestDGCDimensionChangePanics(t *testing.T) {
	d := NewDGC(0, 0)
	d.Encode([]float64{1, 2}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension change did not panic")
		}
	}()
	d.Encode([]float64{1, 2, 3}, 1)
}

func TestQSGDUnbiasedExpectation(t *testing.T) {
	q := NewQSGD(4, stats.NewRNG(5))
	g := []float64{0.3, -0.7, 0.1, 0.9}
	dim := len(g)
	sum := make([]float64, dim)
	n := 20000
	for i := 0; i < n; i++ {
		msg := q.Encode(g, 0)
		tensor.Axpy(1, msg.Dense(), sum)
	}
	for i := range g {
		mean := sum[i] / float64(n)
		if math.Abs(mean-g[i]) > 0.02 {
			t.Fatalf("QSGD biased at %d: mean %v, want %v", i, mean, g[i])
		}
	}
}

func TestQSGDWireBytesSmaller(t *testing.T) {
	q := NewQSGD(4, stats.NewRNG(6))
	g := make([]float64, 1000)
	for i := range g {
		g[i] = float64(i%7) - 3
	}
	msg := q.Encode(g, 0)
	if msg.WireBytes() >= DenseBytes(1000) {
		t.Fatalf("QSGD wire %d not smaller than dense %d", msg.WireBytes(), DenseBytes(1000))
	}
	// 4 levels -> 1 sign + 3 magnitude bits = 4 bits/coord = 500 bytes.
	want := 8 + 4 + 500
	if msg.WireBytes() != want {
		t.Fatalf("QSGD wire %d, want %d", msg.WireBytes(), want)
	}
}

func TestQSGDZeroGradient(t *testing.T) {
	q := NewQSGD(4, stats.NewRNG(7))
	msg := q.Encode(make([]float64, 10), 0)
	for _, v := range msg.Values {
		if v != 0 {
			t.Fatal("zero gradient quantized to nonzero")
		}
	}
}

func TestTopKThresholdMatchesSort(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := stats.NewRNG(seed)
		v := make([]float64, 100)
		for i := range v {
			v[i] = r.Norm()
		}
		k := int(kRaw%99) + 1
		got := topKThreshold(v, k, make([]float64, len(v)))
		abs := make([]float64, len(v))
		for i, x := range v {
			abs[i] = math.Abs(x)
		}
		sort.Float64s(abs)
		want := abs[len(abs)-k]
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDGCMsgClipConservesMass(t *testing.T) {
	// With message clipping the invariant still holds: transmitted mass +
	// residual accumulator = total injected mass.
	d := &DGC{MsgClipFactor: 1.5}
	r := stats.NewRNG(77)
	dim := 150
	total := make([]float64, dim)
	received := make([]float64, dim)
	for round := 0; round < 25; round++ {
		g := make([]float64, dim)
		for i := range g {
			g[i] = r.Norm()
		}
		tensor.Axpy(1, g, total)
		msg := d.Encode(g, 20)
		msg.AddTo(received, 1)
	}
	for i := range total {
		got := received[i] + d.v[i]
		if math.Abs(got-total[i]) > 1e-9 {
			t.Fatalf("mass lost at %d: %v vs %v", i, got, total[i])
		}
	}
}

func TestDGCMsgClipBoundsMessageNorm(t *testing.T) {
	d := &DGC{MsgClipFactor: 1}
	dim := 50
	// Build a huge residual by feeding large gradients at max compression.
	big := make([]float64, dim)
	for i := range big {
		big[i] = 10
	}
	for round := 0; round < 10; round++ {
		d.Encode(big, 1e9) // keeps only 1 coordinate per round
	}
	// Now a small gradient: the dumped message must be bounded by the
	// current gradient's norm, not the residual's.
	small := make([]float64, dim)
	small[0] = 0.1
	msg := d.Encode(small, 2)
	if n := tensor.Norm2(msg.Values); n > 0.1+1e-9 {
		t.Fatalf("message norm %v exceeds clip bound 0.1", n)
	}
}

func TestDGCResidualDecayShrinksAccumulator(t *testing.T) {
	keep := &DGC{}
	fade := &DGC{ResidualDecay: 0.5}
	g := make([]float64, 20)
	for i := range g {
		g[i] = 1
	}
	for round := 0; round < 10; round++ {
		keep.Encode(g, 1e9)
		fade.Encode(g, 1e9)
	}
	if fade.AccumulatedNorm() >= keep.AccumulatedNorm() {
		t.Fatalf("decay did not shrink residual: %v vs %v",
			fade.AccumulatedNorm(), keep.AccumulatedNorm())
	}
}

func TestSparseValidate(t *testing.T) {
	const dim = 8
	good := &Sparse{Dim: dim, Indices: []int32{0, 3, 7}, Values: []float64{1, -2, 0.5}}
	if err := good.Validate(dim); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	cases := []struct {
		name string
		msg  *Sparse
	}{
		{"nil", nil},
		{"dim mismatch", &Sparse{Dim: dim + 1, Indices: []int32{0}, Values: []float64{1}}},
		{"length mismatch", &Sparse{Dim: dim, Indices: []int32{0, 1}, Values: []float64{1}}},
		{"too many coords", &Sparse{Dim: 2, Indices: []int32{0, 1, 1}, Values: []float64{1, 2, 3}}},
		{"index too large", &Sparse{Dim: dim, Indices: []int32{0, int32(dim)}, Values: []float64{1, 2}}},
		{"negative index", &Sparse{Dim: dim, Indices: []int32{-1}, Values: []float64{1}}},
	}
	for _, c := range cases {
		err := c.msg.Validate(dim)
		if err == nil {
			t.Errorf("%s: malformed message accepted", c.name)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v does not wrap ErrMalformed", c.name, err)
		}
	}
	// A malformed "too many coords" case must be caught for the dense dim
	// too: Validate is what stands between the wire and AddTo's panic.
	if err := cases[4].msg.Validate(dim); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestSparseScrub(t *testing.T) {
	s := &Sparse{
		Dim:     6,
		Indices: []int32{0, 1, 2, 3, 4},
		Values:  []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), -2},
	}
	if n := s.Scrub(); n != 3 {
		t.Fatalf("scrubbed %d values, want 3", n)
	}
	want := []float64{1, 0, 0, 0, -2}
	for i, v := range s.Values {
		if v != want[i] {
			t.Fatalf("value %d = %v after scrub, want %v", i, v, want[i])
		}
	}
	if n := s.Scrub(); n != 0 {
		t.Fatalf("second scrub found %d values, want 0", n)
	}
}

func TestSparseNorm2(t *testing.T) {
	s := &Sparse{Dim: 4, Indices: []int32{0, 2}, Values: []float64{3, 4}}
	if got := s.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}
