package compress

import (
	"math"
	"testing"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

func TestTernGradValuesAreTernary(t *testing.T) {
	tg := NewTernGrad(stats.NewRNG(1))
	g := []float64{0.5, -1.5, 0.2, 1.5, 0}
	msg := tg.Encode(g, 0)
	s := 1.5
	for i, v := range msg.Values {
		if v != 0 && v != s && v != -s {
			t.Fatalf("value[%d] = %v not in {0, ±%v}", i, v, s)
		}
	}
}

func TestTernGradUnbiased(t *testing.T) {
	tg := NewTernGrad(stats.NewRNG(2))
	g := []float64{0.3, -0.7, 1.0, 0.1}
	sum := make([]float64, len(g))
	n := 30000
	for i := 0; i < n; i++ {
		msg := tg.Encode(g, 0)
		tensor.Axpy(1, msg.Dense(), sum)
	}
	for i := range g {
		mean := sum[i] / float64(n)
		if math.Abs(mean-g[i]) > 0.03 {
			t.Fatalf("biased at %d: mean %v, want %v", i, mean, g[i])
		}
	}
}

func TestTernGradWireBytes(t *testing.T) {
	tg := NewTernGrad(stats.NewRNG(3))
	g := make([]float64, 1600)
	for i := range g {
		g[i] = float64(i%5) - 2
	}
	msg := tg.Encode(g, 0)
	// header + scale + 2 bits/coord = 8 + 4 + 400.
	if msg.WireBytes() != 8+4+400 {
		t.Fatalf("wire bytes %d", msg.WireBytes())
	}
	if msg.CompressionRatio() < 10 {
		t.Fatalf("ratio %v, want ~15x", msg.CompressionRatio())
	}
}

func TestTernGradZeroGradient(t *testing.T) {
	tg := NewTernGrad(stats.NewRNG(4))
	msg := tg.Encode(make([]float64, 8), 0)
	for _, v := range msg.Values {
		if v != 0 {
			t.Fatal("zero gradient produced nonzero output")
		}
	}
}

func TestRandomKCount(t *testing.T) {
	rk := NewRandomK(stats.NewRNG(5))
	g := make([]float64, 1000)
	for i := range g {
		g[i] = 1
	}
	msg := rk.Encode(g, 20)
	want := KForRatio(1000, 20)
	if msg.NNZ() != want {
		t.Fatalf("NNZ %d, want %d", msg.NNZ(), want)
	}
}

func TestRandomKUnbiasedScaling(t *testing.T) {
	rk := NewRandomK(stats.NewRNG(6))
	g := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	sum := make([]float64, len(g))
	n := 40000
	for i := 0; i < n; i++ {
		msg := rk.Encode(g, 4)
		tensor.Axpy(1, msg.Dense(), sum)
	}
	for i := range g {
		mean := sum[i] / float64(n)
		if math.Abs(mean-g[i]) > 0.15 {
			t.Fatalf("biased at %d: mean %v, want %v", i, mean, g[i])
		}
	}
}

func TestRandomKIndicesSortedUnique(t *testing.T) {
	rk := NewRandomK(stats.NewRNG(7))
	g := make([]float64, 200)
	msg := rk.Encode(g, 10)
	seen := map[int32]bool{}
	prev := int32(-1)
	for _, idx := range msg.Indices {
		if idx <= prev {
			t.Fatal("indices not strictly increasing")
		}
		if seen[idx] {
			t.Fatal("duplicate index")
		}
		seen[idx] = true
		prev = idx
	}
}

func TestErrorNormOrdering(t *testing.T) {
	// On a heavy-tailed gradient, top-k must beat random-k at the same
	// budget, and identity must be exact.
	r := stats.NewRNG(8)
	g := make([]float64, 2000)
	for i := range g {
		g[i] = r.Norm()
		if i%50 == 0 {
			g[i] *= 20 // heavy tail
		}
	}
	idErr := ErrorNorm(Identity{}, g, 10)
	topErr := ErrorNorm(&TopK{}, g, 10)
	rkErr := ErrorNorm(&RandomK{rng: stats.NewRNG(9), Scale: false}, g, 10)
	if idErr != 0 {
		t.Fatalf("identity error %v", idErr)
	}
	if !(topErr < rkErr) {
		t.Fatalf("top-k error %v not below random-k %v", topErr, rkErr)
	}
}
