package compress

import (
	"bytes"
	"math"
	"testing"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// TestQuantizedWireBytesMessageGranularity pins the bugfixed accounting:
// quantized bit costs are ceiled to bytes once per message, not once per
// coordinate. The old accounting charged each coordinate at least a byte,
// so a 3-bit sparse payload of 100 coordinates billed 100 value bytes
// where the packed wire carries ⌈300/8⌉ = 38.
func TestQuantizedWireBytesMessageGranularity(t *testing.T) {
	cases := []struct {
		name string
		msg  *Sparse
		want int
	}{
		{
			// header 8 + norm 4 + ⌈100·3/8⌉ = 38 + 100 indices · 4 = 450.
			"sparse quantized",
			&Sparse{Dim: 1000, Indices: make([]int32, 100), Values: make([]float64, 100),
				QuantBits: 3, QuantLevels: 3, QuantNorm: 1},
			8 + 4 + 38 + 400,
		},
		{
			// Dense quantized omits the index run: 8 + 4 + ⌈3000/8⌉ = 387.
			"dense quantized",
			&Sparse{Dim: 1000, Indices: make([]int32, 1000), Values: make([]float64, 1000),
				QuantBits: 3, QuantLevels: 3, QuantNorm: 1},
			8 + 4 + 375,
		},
		{
			// One 5-bit coordinate still costs a whole byte.
			"single coordinate",
			&Sparse{Dim: 1000, Indices: make([]int32, 1), Values: make([]float64, 1),
				QuantBits: 5, QuantLevels: 15, QuantNorm: 1},
			8 + 4 + 1 + 4,
		},
	}
	for _, c := range cases {
		if got := c.msg.WireBytes(); got != c.want {
			t.Errorf("%s: WireBytes = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestQuantizedCompressionRatioUsesQuantCost(t *testing.T) {
	// TernGrad at dim 1000: 2 bits/coord packed = 8+4+250 = 262 wire bytes
	// against 4008 dense, a ~15x ratio. The pre-fix accounting (1 byte per
	// coordinate floor) reported under 4x.
	g := make([]float64, 1000)
	for i := range g {
		g[i] = float64(i%5) - 2
	}
	msg := NewTernGrad(stats.NewRNG(9)).Encode(g, 0)
	if got := msg.WireBytes(); got != 8+4+250 {
		t.Fatalf("terngrad wire bytes %d, want 262", got)
	}
	if r := msg.CompressionRatio(); r < 15 || r > 16 {
		t.Fatalf("terngrad compression ratio %v, want ~15.3", r)
	}
}

func TestScheduledLevels(t *testing.T) {
	cases := []struct {
		round, min, max, every, want int
	}{
		{0, 3, 63, 8, 3},
		{7, 3, 63, 8, 3},
		{8, 3, 63, 8, 6},
		{16, 3, 63, 8, 12},
		{24, 3, 63, 8, 24},
		{32, 3, 63, 8, 48},
		{40, 3, 63, 8, 63}, // 96 saturates at max
		{1000, 3, 63, 8, 63},
		{5, 0, 0, 0, 1},  // degenerate bounds clamp to [1, 1]
		{10, 4, 2, 1, 4}, // max < min clamps to min
	}
	for _, c := range cases {
		if got := ScheduledLevels(c.round, c.min, c.max, c.every); got != c.want {
			t.Errorf("ScheduledLevels(%d, %d, %d, %d) = %d, want %d",
				c.round, c.min, c.max, c.every, got, c.want)
		}
	}
}

func TestDAdaQuantLevelsResolution(t *testing.T) {
	d := NewDAdaQuant(3, 63, 8, stats.NewRNG(1))
	if d.Levels() != 3 {
		t.Fatalf("round 0 levels %d, want 3", d.Levels())
	}
	d.SetRound(16)
	if d.Levels() != 12 {
		t.Fatalf("round 16 scheduled levels %d, want 12", d.Levels())
	}
	// A negotiated assignment overrides the schedule, clamped to bounds.
	d.SetLevels(200)
	if d.Levels() != 63 {
		t.Fatalf("SetLevels(200) resolved to %d, want clamp 63", d.Levels())
	}
	d.SetLevels(1)
	if d.Levels() != 3 {
		t.Fatalf("SetLevels(1) resolved to %d, want clamp 3", d.Levels())
	}
	// Zero returns control to the schedule.
	d.SetLevels(0)
	if d.Levels() != 12 {
		t.Fatalf("SetLevels(0) resolved to %d, want schedule 12", d.Levels())
	}
	d.Reset()
	if d.Levels() != 3 {
		t.Fatalf("Reset did not clear schedule/pin: levels %d", d.Levels())
	}
}

// TestDAdaQuantWireBytesValueIndependent pins the determinism contract the
// golden-replay tests rely on: the wire cost is a function of (dim, ratio,
// levels) only, never of the gradient values.
func TestDAdaQuantWireBytesValueIndependent(t *testing.T) {
	dim := 500
	r := stats.NewRNG(11)
	for _, ratio := range []float64{1, 4, 12, 50, 400} {
		var want int
		for trial := 0; trial < 4; trial++ {
			d := NewDAdaQuant(3, 63, 8, stats.NewRNG(uint64(trial)))
			d.SetRound(9)
			g := make([]float64, dim)
			for i := range g {
				g[i] = r.Norm() * math.Pow(10, float64(trial-2))
			}
			got := d.Encode(g, ratio).WireBytes()
			if trial == 0 {
				want = got
			} else if got != want {
				t.Fatalf("ratio %v: wire bytes %d on trial %d, want %d", ratio, got, trial, want)
			}
		}
	}
}

func TestDAdaQuantSparsifiesDeepRatios(t *testing.T) {
	dim := 1000
	r := stats.NewRNG(13)
	g := make([]float64, dim)
	for i := range g {
		g[i] = r.Norm()
	}
	d := NewDAdaQuant(3, 3, 8, stats.NewRNG(14)) // 3 levels = 3 bits
	// At ratio 4 dense quantization (8+4+375 vs budget 1002) suffices.
	if msg := d.Encode(g, 4); msg.NNZ() != dim {
		t.Fatalf("ratio 4 sparsified to %d coords, dense quantization reaches it", msg.NNZ())
	}
	// At ratio 100 the budget is ~40 bytes: the codec must go sparse and
	// stay within ~budget.
	msg := d.Encode(g, 100)
	if msg.NNZ() >= dim {
		t.Fatal("ratio 100 not sparsified")
	}
	if got := msg.CompressionRatio(); got < 80 {
		t.Fatalf("ratio 100 achieved only %.1fx", got)
	}
	// An empty message is never produced, even at absurd depth.
	if msg := d.Encode(g, math.Inf(1)); msg.NNZ() < 1 {
		t.Fatal("infinite ratio produced an empty message")
	}
}

func TestDAdaQuantUnbiased(t *testing.T) {
	d := NewDAdaQuant(4, 4, 1, stats.NewRNG(17))
	g := []float64{0.4, -0.8, 0.05, 1.1}
	sum := make([]float64, len(g))
	n := 20000
	for i := 0; i < n; i++ {
		tensor.Axpy(1, d.Encode(g, 1).Dense(), sum)
	}
	for i := range g {
		mean := sum[i] / float64(n)
		if math.Abs(mean-g[i]) > 0.02 {
			t.Fatalf("biased at %d: mean %v, want %v", i, mean, g[i])
		}
	}
}

// TestQuantizedBinaryRoundTripBitIdentical checks the cross-codec wire
// contract: a quantized message survives the packed binary layout with
// bit-identical float64 values, for every quantizing codec, so binary and
// gob sessions converge to the same global model bit for bit.
func TestQuantizedBinaryRoundTripBitIdentical(t *testing.T) {
	r := stats.NewRNG(23)
	g := make([]float64, 300)
	for i := range g {
		g[i] = r.Norm()
	}
	dada := NewDAdaQuant(3, 63, 8, stats.NewRNG(24))
	dada.SetRound(20)
	codecs := []struct {
		name string
		msg  *Sparse
	}{
		{"qsgd", NewQSGD(15, stats.NewRNG(25)).Encode(g, 0)},
		{"terngrad", NewTernGrad(stats.NewRNG(26)).Encode(g, 0)},
		{"dadaquant-dense", dada.Encode(g, 2)},
		{"dadaquant-sparse", dada.Encode(g, 60)},
	}
	for _, c := range codecs {
		enc := c.msg.AppendBinary(nil)
		if len(enc) != c.msg.BinaryWireSize() {
			t.Errorf("%s: encoded %d bytes, BinaryWireSize says %d", c.name, len(enc), c.msg.BinaryWireSize())
		}
		var buf bytes.Buffer
		if err := c.msg.EncodeBinaryTo(&buf, make([]byte, 64)); err != nil {
			t.Fatalf("%s: stream encode: %v", c.name, err)
		}
		if !bytes.Equal(buf.Bytes(), enc) {
			t.Errorf("%s: streamed encoding differs from AppendBinary", c.name)
		}
		var dec Sparse
		if err := dec.DecodeBinaryInto(enc); err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if dec.QuantBits != c.msg.QuantBits || dec.QuantLevels != c.msg.QuantLevels ||
			dec.QuantNorm != c.msg.QuantNorm {
			t.Fatalf("%s: quant header lost: got (%d,%d,%v)", c.name, dec.QuantBits, dec.QuantLevels, dec.QuantNorm)
		}
		if dec.WireBytes() != c.msg.WireBytes() {
			t.Errorf("%s: WireBytes changed across the wire: %d vs %d", c.name, dec.WireBytes(), c.msg.WireBytes())
		}
		for i, v := range c.msg.Values {
			if math.Float64bits(dec.Values[i]) != math.Float64bits(v) {
				t.Fatalf("%s: value %d not bit-identical: %x vs %x",
					c.name, i, math.Float64bits(dec.Values[i]), math.Float64bits(v))
			}
		}
	}
}

func TestKForRatioQuantizedBounds(t *testing.T) {
	cases := []struct {
		dim   int
		ratio float64
		bits  int
		want  int
	}{
		{100, 1, 3, 100},          // no compression keeps everything
		{100, 0.5, 3, 100},        // sub-1 same
		{100, math.NaN(), 3, 100}, // NaN degrades to "no compression"
		{10, math.Inf(1), 3, 1},   // +Inf keeps one coordinate
		{100, 1e12, 3, 1},         // absurd depth clamps to 1
	}
	for _, c := range cases {
		if got := KForRatioQuantized(c.dim, c.ratio, c.bits); got != c.want {
			t.Errorf("KForRatioQuantized(%d, %v, %d) = %d, want %d", c.dim, c.ratio, c.bits, got, c.want)
		}
	}
	// Mid-range: k must keep the quantized wire size within the budget.
	dim, ratio, bits := 10000, 25.0, 4
	k := KForRatioQuantized(dim, ratio, bits)
	wire := headerBytes + BytesPerValue + k*BytesPerIndex + (k*bits+7)/8
	if float64(wire) > float64(DenseBytes(dim))/ratio+float64(BytesPerIndex) {
		t.Fatalf("k=%d gives %d wire bytes, over budget %v", k, wire, float64(DenseBytes(dim))/ratio)
	}
}

func TestClampRatio(t *testing.T) {
	cases := []struct {
		in, lo, hi, want float64
	}{
		{5, 1, 10, 5},
		{0.5, 1, 10, 1},
		{-3, 1, 10, 1},
		{50, 1, 10, 10},
		{math.NaN(), 1, 10, 1},
		{math.Inf(1), 1, 10, 10},
		{math.Inf(-1), 1, 10, 1},
	}
	for _, c := range cases {
		if got := ClampRatio(c.in, c.lo, c.hi); got != c.want {
			t.Errorf("ClampRatio(%v, %v, %v) = %v, want %v", c.in, c.lo, c.hi, got, c.want)
		}
	}
}

func TestDGCValidate(t *testing.T) {
	cases := []struct {
		name string
		d    DGC
		ok   bool
	}{
		{"zero struct", DGC{}, true},
		{"classic", DGC{Momentum: 0.9, ClipNorm: 1, ResidualDecay: 1, MsgClipFactor: 2}, true},
		{"decay over 1", DGC{ResidualDecay: 1.5}, false},
		{"decay negative", DGC{ResidualDecay: -0.1}, false},
		{"decay NaN", DGC{ResidualDecay: math.NaN()}, false},
		{"momentum 1", DGC{Momentum: 1}, false},
		{"momentum NaN", DGC{Momentum: math.NaN()}, false},
		{"clip negative", DGC{ClipNorm: -1}, false},
		{"clip NaN", DGC{ClipNorm: math.NaN()}, false},
		{"msgclip negative", DGC{MsgClipFactor: -2}, false},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: valid config rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

// TestDGCRollbackPreservesResidual pins the bugfix: a rejected or lost
// upload must not destroy the error-feedback residual. Before the fix,
// Encode cleared the transmitted coordinates unconditionally, so a
// quarantined round silently threw the staged mass away.
func TestDGCRollbackPreservesResidual(t *testing.T) {
	d := NewDGC(0, 0)
	r := stats.NewRNG(31)
	dim := 100
	g := make([]float64, dim)
	for i := range g {
		g[i] = r.Norm()
	}
	received := make([]float64, dim)
	d.Encode(g, 10).AddTo(received, 1)
	d.Commit()
	before := d.AccumulatedNorm()

	// Round 2: the upload is rejected (quarantine). Rollback must restore
	// the accumulator to exactly its pre-clear state: mass in v equals the
	// committed residual plus the full new gradient.
	g2 := make([]float64, dim)
	for i := range g2 {
		g2[i] = r.Norm()
	}
	msg := d.Encode(g2, 10)
	sent := tensor.Norm2(msg.Values)
	if sent == 0 {
		t.Fatal("nothing transmitted; test is vacuous")
	}
	cleared := d.AccumulatedNorm()
	d.Rollback()
	restored := d.AccumulatedNorm()
	if restored <= cleared {
		t.Fatalf("rollback did not restore mass: %v (cleared) vs %v (restored)", cleared, restored)
	}
	if restored < before {
		t.Fatalf("rolled-back residual %v below pre-round residual %v", restored, before)
	}
	// Exact mass conservation: the round-1 delivery plus the rolled-back
	// residual account for everything ever injected.
	want := make([]float64, dim)
	tensor.Axpy(1, g, want)
	tensor.Axpy(1, g2, want)
	for i, w := range want {
		if math.Abs(received[i]+d.v[i]-w) > 1e-9 {
			t.Fatalf("mass[%d] = %v after rollback, want %v", i, received[i]+d.v[i], w)
		}
	}
	// Idempotence: a second Rollback (or a late Commit) is a no-op.
	d.Rollback()
	d.Commit()
	for i, w := range want {
		if math.Abs(received[i]+d.v[i]-w) > 1e-9 {
			t.Fatalf("double rollback corrupted residual[%d]", i)
		}
	}
}

func TestDGCRollbackMassRetransmitted(t *testing.T) {
	// End-to-end: with one rejected round rolled back, the receiver still
	// converges to the full injected mass — nothing is lost across the
	// failure.
	d := NewDGC(0, 0)
	r := stats.NewRNG(37)
	dim := 50
	total := make([]float64, dim)
	received := make([]float64, dim)
	for round := 0; round < 30; round++ {
		g := make([]float64, dim)
		for i := range g {
			g[i] = r.Norm()
		}
		tensor.Axpy(1, g, total)
		msg := d.Encode(g, 5)
		if round == 10 {
			d.Rollback() // upload lost: server never saw msg
			continue
		}
		msg.AddTo(received, 1)
		d.Commit()
	}
	for i := range total {
		got := received[i] + d.v[i]
		if math.Abs(got-total[i]) > 1e-9 {
			t.Fatalf("mass lost at %d across rejected round: %v vs %v", i, got, total[i])
		}
	}
}

// TestDAdaQuantResidualCarriesUnsentMass pins DAdaQuant's error feedback:
// a deep-ratio encode keeps the coordinates it could not send in the
// residual, a shallow (dense) encode flushes the whole residual, and no
// mass is silently dropped between consecutive deep rounds.
func TestDAdaQuantResidualCarriesUnsentMass(t *testing.T) {
	dim := 64
	g := make([]float64, dim)
	for i := range g {
		g[i] = float64(dim - i) // distinct magnitudes: top-k is indices 0..k-1
	}
	d := NewDAdaQuant(3, 3, 8, stats.NewRNG(5))
	msg := d.Encode(g, 50)
	if msg.NNZ() >= dim {
		t.Fatal("ratio 50 not sparsified; test is vacuous")
	}
	sent := make(map[int32]bool, msg.NNZ())
	for _, idx := range msg.Indices {
		sent[idx] = true
	}
	for i := range g {
		if sent[int32(i)] {
			if d.v[i] != 0 {
				t.Fatalf("sent coord %d left residual %v", i, d.v[i])
			}
		} else if d.v[i] != g[i] {
			t.Fatalf("unsent coord %d: residual %v, want %v", i, d.v[i], g[i])
		}
	}
	// A dense (ratio-1) encode must flush the residual: its norm covers the
	// carried mass even with a zero fresh gradient, and the residual clears.
	zero := make([]float64, dim)
	carried := tensor.Norm2(d.v)
	out := d.Encode(zero, 1)
	if out.QuantNorm != carried {
		t.Fatalf("dense flush norm %v, want carried residual norm %v", out.QuantNorm, carried)
	}
	for i, v := range d.v {
		if v != 0 {
			t.Fatalf("residual[%d] = %v after dense flush", i, v)
		}
	}
}

// TestDAdaQuantRollbackRestoresResidual mirrors the DGC rollback bugfix
// for the quantizing codec: a lost or quarantined upload returns the full
// accumulated gradient to the residual, so nothing is destroyed, and a
// stale second rollback is a no-op.
func TestDAdaQuantRollbackRestoresResidual(t *testing.T) {
	dim := 64
	r := stats.NewRNG(41)
	g := make([]float64, dim)
	for i := range g {
		g[i] = r.Norm()
	}
	d := NewDAdaQuant(3, 3, 8, stats.NewRNG(6))
	if msg := d.Encode(g, 50); msg.NNZ() >= dim {
		t.Fatal("not sparsified; test is vacuous")
	}
	d.Rollback()
	for i := range g {
		if d.v[i] != g[i] {
			t.Fatalf("rollback: residual[%d] = %v, want %v", i, d.v[i], g[i])
		}
	}
	d.Rollback() // idempotent
	d.Commit()   // late commit after rollback is a no-op too
	for i := range g {
		if d.v[i] != g[i] {
			t.Fatalf("stale rollback/commit corrupted residual[%d]", i)
		}
	}
	// The dense path stages as well: encode at ratio 1, roll back, and the
	// accumulated mass (g twice over now) is all still there.
	d.Encode(g, 1)
	d.Rollback()
	for i := range g {
		if math.Abs(d.v[i]-2*g[i]) > 1e-12 {
			t.Fatalf("dense rollback: residual[%d] = %v, want %v", i, d.v[i], 2*g[i])
		}
	}
	// A newer Encode implicitly commits its predecessor: after a committed
	// dense flush, rollback restores only the latest round's gradient.
	d.Encode(g, 1) // flushes 3g, clears v
	d.Encode(g, 50)
	d.Rollback()
	for i := range g {
		if math.Abs(d.v[i]-g[i]) > 1e-12 {
			t.Fatalf("implicit commit: residual[%d] = %v, want %v", i, d.v[i], g[i])
		}
	}
}

func TestDGCEncodeImplicitlyCommits(t *testing.T) {
	// Only the latest Encode can be rolled back: a new Encode discards its
	// predecessor's stage, so a stale Rollback cannot double-credit.
	d := NewDGC(0, 0)
	g := []float64{1, 2, 3, 4}
	d.Encode(g, 2)
	d.Encode(g, 2)
	norm := d.AccumulatedNorm()
	d.Rollback() // undoes only the second encode
	d.Rollback() // no-op
	if d.AccumulatedNorm() < norm {
		t.Fatal("stale rollback shrank the accumulator")
	}
}
