package compress

import (
	"sort"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// TernGrad (Wen et al. 2017) quantizes every gradient coordinate to
// {-s, 0, +s} where s = max|g|, with stochastic rounding that keeps the
// estimate unbiased: P(bᵢ=1) = |gᵢ|/s. It is the second model-level
// baseline the paper's related work discusses (alongside QSGD).
//
// Wire format: the scale scalar plus 2 bits per coordinate.
type TernGrad struct {
	rng *stats.RNG
}

// NewTernGrad returns a TernGrad codec using rng for stochastic rounding.
func NewTernGrad(rng *stats.RNG) *TernGrad {
	return &TernGrad{rng: rng}
}

// Name implements Codec.
func (t *TernGrad) Name() string { return "terngrad" }

// Reset implements Codec.
func (t *TernGrad) Reset() {}

// Encode implements Codec. The ratio argument is ignored: TernGrad's
// compression factor is fixed at ~16x (2 bits vs 32).
func (t *TernGrad) Encode(grad []float64, _ float64) *Sparse {
	s := 0.0
	for _, g := range grad {
		a := g
		if a < 0 {
			a = -a
		}
		if a > s {
			s = a
		}
	}
	out := NewSparseDense(grad)
	// Values are sign·s·l/1 for l ∈ {0, 1}: a 1-level quantizer at 2 bits.
	out.QuantBits = 2
	out.QuantLevels = 1
	out.QuantNorm = s
	if s == 0 {
		for i := range out.Values {
			out.Values[i] = 0
		}
		return out
	}
	for i, g := range grad {
		a := g
		if a < 0 {
			a = -a
		}
		v := 0.0
		if t.rng.Float64() < a/s {
			if g >= 0 {
				v = s
			} else {
				v = -s
			}
		}
		out.Values[i] = v
	}
	return out
}

// RandomK transmits k uniformly random coordinates scaled by d/k to stay
// unbiased — the naive sparsification baseline that top-k methods are
// measured against.
type RandomK struct {
	rng *stats.RNG
	// Scale compensates the subsampling so E[decode] = grad; disable for
	// raw subsampling.
	Scale bool
}

// NewRandomK returns a random-k codec with unbiased scaling enabled.
func NewRandomK(rng *stats.RNG) *RandomK {
	return &RandomK{rng: rng, Scale: true}
}

// Name implements Codec.
func (r *RandomK) Name() string { return "randomk" }

// Reset implements Codec.
func (r *RandomK) Reset() {}

// Encode implements Codec.
func (r *RandomK) Encode(grad []float64, ratio float64) *Sparse {
	k := KForRatio(len(grad), ratio)
	if k >= len(grad) {
		return NewSparseDense(grad)
	}
	perm := r.rng.Perm(len(grad))[:k]
	// Sort indices for a deterministic wire image.
	sort.Ints(perm)
	s := &Sparse{Dim: len(grad), Indices: make([]int32, k), Values: make([]float64, k)}
	scale := 1.0
	if r.Scale {
		scale = float64(len(grad)) / float64(k)
	}
	for i, idx := range perm {
		s.Indices[i] = int32(idx)
		s.Values[i] = grad[idx] * scale
	}
	return s
}

// ErrorNorm measures the relative L2 error of a codec's single-shot
// encoding of grad at the given ratio: ‖decode − grad‖/‖grad‖. Used by
// the codec-comparison experiment and tests.
func ErrorNorm(c Codec, grad []float64, ratio float64) float64 {
	msg := c.Encode(grad, ratio)
	dec := msg.Dense()
	diff := make([]float64, len(grad))
	tensor.SubVec(diff, dec, grad)
	gn := tensor.Norm2(grad)
	if gn == 0 {
		return 0
	}
	return tensor.Norm2(diff) / gn
}
