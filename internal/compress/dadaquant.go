package compress

import (
	"math"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// DAdaQuant is a doubly-adaptive stochastic quantizer in the style of
// DAdaQuant (Hönig et al., arXiv 2111.00465): the level count adapts both
// over *time* — a global schedule that starts coarse and doubles as
// training progresses, spending bytes where they buy the most accuracy —
// and per *client* — the negotiator assigns each client a level count from
// its observed link state via SetLevels. Rounding reuses QSGD's unbiased
// stochastic scheme.
//
// When the requested ratio is deeper than dense quantization alone can
// reach (32/bits), Encode sparsifies to the top-k coordinates first and
// quantizes the survivors, so one codec covers the whole ratio range the
// negotiator can ask for. The message's wire cost is deterministic given
// (dim, ratio, levels): k never depends on the gradient values, which the
// scenario golden-replay tests rely on.
type DAdaQuant struct {
	// MinLevels and MaxLevels bound the level count s (both ≥ 1).
	MinLevels, MaxLevels int
	// DoubleEvery is the global schedule period: the scheduled level count
	// is MinLevels doubled once per DoubleEvery rounds, saturating at
	// MaxLevels.
	DoubleEvery int

	rng     *stats.RNG
	round   int
	levels  int
	scratch []float64

	// v is the error-feedback residual: gradient mass a deep-ratio top-k
	// encode leaves unsent is carried into the next encode instead of
	// dropped — without it, consecutive deep-compression rounds (a
	// bandwidth collapse) silently discard most of the update. A dense
	// quantized encode flushes the whole residual. Like DGC, the clear
	// performed by the latest Encode stays staged until Commit or Rollback,
	// so a rejected or lost upload's mass is re-transmitted rather than
	// destroyed; a newer Encode implicitly commits its predecessor.
	v        []float64
	pendingV []float64
	pending  bool
}

// NewDAdaQuant returns a doubly-adaptive quantizer with the given level
// bounds and doubling period, drawing stochastic-rounding randomness from
// rng. It panics on non-positive levels or period, or min > max — the
// same contract as NewQSGD.
func NewDAdaQuant(minLevels, maxLevels, doubleEvery int, rng *stats.RNG) *DAdaQuant {
	if minLevels < 1 || maxLevels < minLevels {
		panic("compress: DAdaQuant needs 1 <= MinLevels <= MaxLevels")
	}
	if doubleEvery < 1 {
		panic("compress: DAdaQuant needs DoubleEvery >= 1")
	}
	return &DAdaQuant{MinLevels: minLevels, MaxLevels: maxLevels, DoubleEvery: doubleEvery, rng: rng}
}

// Name implements Codec.
func (d *DAdaQuant) Name() string { return "dadaquant" }

// Reset implements Codec.
func (d *DAdaQuant) Reset() {
	d.round, d.levels = 0, 0
	d.v = nil
	d.pending = false
}

// SetRound advances the global schedule; the client calls it with the
// server's round number before each Encode.
func (d *DAdaQuant) SetRound(r int) {
	if r > 0 {
		d.round = r
	}
}

// SetLevels pins the per-client level count assigned by the negotiator,
// clamped to [MinLevels, MaxLevels]. 0 returns to the global schedule.
func (d *DAdaQuant) SetLevels(l int) {
	if l > 0 {
		if l < d.MinLevels {
			l = d.MinLevels
		}
		if l > d.MaxLevels {
			l = d.MaxLevels
		}
	} else {
		l = 0
	}
	d.levels = l
}

// Levels resolves the level count in effect: the negotiated assignment if
// one is pinned, the global schedule otherwise.
func (d *DAdaQuant) Levels() int {
	if d.levels > 0 {
		return d.levels
	}
	return ScheduledLevels(d.round, d.MinLevels, d.MaxLevels, d.DoubleEvery)
}

// ScheduledLevels is DAdaQuant's global time schedule as a pure function:
// the level count starts at min and doubles once per `every` rounds,
// saturating at max. Shared with the server-side negotiator so both ends
// agree on the schedule without exchanging it.
func ScheduledLevels(round, min, max, every int) int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if every < 1 {
		every = 1
	}
	lv := min
	for r := every; r <= round && lv < max; r += every {
		lv *= 2
	}
	if lv > max {
		lv = max
	}
	return lv
}

// KForRatioQuantized returns how many coordinates a quantized-sparse
// message may keep so its wire size (header + norm scalar + k indices +
// ⌈k·bits/8⌉ packed values) stays within a factor ratio of dense.
// Clamped to [1, dim] with the same NaN/Inf handling as KForRatio.
func KForRatioQuantized(dim int, ratio float64, bits int) int {
	if math.IsNaN(ratio) || ratio <= 1 {
		return dim
	}
	if math.IsInf(ratio, 1) {
		return 1
	}
	budget := float64(DenseBytes(dim))/ratio - float64(headerBytes+BytesPerValue)
	k := int(budget * 8 / float64(8*BytesPerIndex+bits))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// Encode implements Codec. The level count comes from Levels(); the ratio
// selects between dense quantization (when bits alone reach it) and
// top-k + quantization (when it is deeper). The gradient is folded into
// the error-feedback residual first, so unsent mass from deep-ratio
// rounds rides along until a shallower round flushes it.
func (d *DAdaQuant) Encode(grad []float64, ratio float64) *Sparse {
	lv := d.Levels()
	bits := QuantBitsFor(lv)
	dim := len(grad)
	if len(d.v) != dim {
		d.v = make([]float64, dim)
	}
	for i, x := range grad {
		d.v[i] += x
	}
	// Stage the accumulated gradient: Rollback restores it wholesale (the
	// upload never joined the aggregate, so its mass returns to the
	// residual); the next Encode's restage implicitly commits this one.
	d.pendingV = append(d.pendingV[:0], d.v...)
	d.pending = true
	denseQuantCost := headerBytes + BytesPerValue + (dim*bits+7)/8
	budget := DenseBytes(dim)
	if !math.IsNaN(ratio) && ratio > 1 {
		budget = int(float64(DenseBytes(dim)) / ratio)
	}
	if denseQuantCost <= budget || math.IsNaN(ratio) || ratio <= 1 {
		return d.flushDense(lv, bits)
	}
	k := KForRatioQuantized(dim, ratio, bits)
	if k >= dim {
		return d.flushDense(lv, bits)
	}
	if cap(d.scratch) < dim {
		d.scratch = make([]float64, dim)
	}
	msg := SelectTopKScratch(d.v, k, d.scratch)
	for _, idx := range msg.Indices {
		d.v[idx] = 0
	}
	norm := tensor.Norm2(msg.Values)
	msg.QuantBits = bits
	msg.QuantLevels = lv
	msg.QuantNorm = norm
	if norm == 0 {
		return msg
	}
	s := float64(lv)
	for i, v := range msg.Values {
		msg.Values[i] = quantizeStochastic(d.rng, norm, s, v)
	}
	return msg
}

// flushDense quantizes the full accumulated gradient and clears the
// residual.
func (d *DAdaQuant) flushDense(lv, bits int) *Sparse {
	norm := tensor.Norm2(d.v)
	out := NewSparseDense(d.v)
	out.QuantBits = bits
	out.QuantLevels = lv
	out.QuantNorm = norm
	for i := range d.v {
		d.v[i] = 0
	}
	if norm == 0 {
		return out
	}
	s := float64(lv)
	for i, g := range out.Values {
		out.Values[i] = quantizeStochastic(d.rng, norm, s, g)
	}
	return out
}

// Commit finalises the most recent Encode: the server accepted the upload
// and the staged residual snapshot is discarded. Idempotent.
func (d *DAdaQuant) Commit() { d.pending = false }

// Rollback undoes the most recent Encode's residual clear: the whole
// accumulated gradient (sent and unsent mass alike) returns to the
// residual, so a failed or quarantined upload is re-transmitted by the
// next accepted round instead of being destroyed. Only the latest Encode
// can be rolled back.
func (d *DAdaQuant) Rollback() {
	if !d.pending {
		return
	}
	copy(d.v, d.pendingV)
	d.pending = false
}
