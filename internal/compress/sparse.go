// Package compress implements the gradient codecs of the paper: identity
// (no compression), magnitude top-k sparsification, Deep Gradient
// Compression (Lin et al., the base of AdaFL's adaptive compression) with
// momentum correction, local accumulation and gradient clipping, and a
// QSGD-style quantizer used as a model-level baseline.
//
// Every codec produces a Sparse (or quantized) message with exact wire-size
// accounting, because communication cost is the paper's primary metric.
// Values are stored as float64 for computation but counted as float32 on
// the wire, matching the paper's 4-byte parameters (431k params = 1.64 MB).
package compress

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// BytesPerValue is the wire size of one gradient value (float32).
const BytesPerValue = 4

// BytesPerIndex is the wire size of one sparse coordinate (uint32).
const BytesPerIndex = 4

// headerBytes covers the dimension + count framing of a sparse message.
const headerBytes = 8

// Sparse is a sparse gradient message: values at explicit coordinates of a
// dim-length vector.
type Sparse struct {
	Dim     int
	Indices []int32
	Values  []float64

	// QuantBits, when nonzero, marks a quantized message whose values cost
	// that many bits per coordinate on the wire (sign bit + magnitude bits);
	// WireBytes accounts for the packed representation at message
	// granularity. Set by the QSGD/TernGrad/DAdaQuant codecs. The fields are
	// exported so quantized accounting survives both wire codecs.
	QuantBits int
	// QuantLevels is the quantizer's level count s: every value is exactly
	// sign·QuantNorm·l/s for an integer level l ∈ [0, s]. The binary wire
	// codec relies on this contract to bit-pack values losslessly.
	QuantLevels int
	// QuantNorm is the scale scalar shipped alongside a quantized message.
	QuantNorm float64
}

// NewSparseDense wraps a dense vector as a degenerate sparse message
// carrying every coordinate (used by the identity codec).
func NewSparseDense(v []float64) *Sparse {
	idx := make([]int32, len(v))
	for i := range idx {
		idx[i] = int32(i)
	}
	vals := make([]float64, len(v))
	copy(vals, v)
	return &Sparse{Dim: len(v), Indices: idx, Values: vals}
}

// NNZ returns the number of transmitted coordinates.
func (s *Sparse) NNZ() int { return len(s.Indices) }

// WireBytes returns the exact on-wire size of the message. A dense message
// (NNZ == Dim) omits the index array, as a real implementation would.
// Quantized messages (QuantBits > 0) are charged the packed representation:
// the bit cost is ceiled to bytes once per message, not per coordinate, so
// a 3-bit 1000-coordinate payload costs ⌈3000/8⌉ = 375 bytes, not 1000.
func (s *Sparse) WireBytes() int {
	if s.QuantBits > 0 {
		// Packed quantized form: norm scalar + bit-packed coordinates,
		// plus the index run when the message is also sparsified.
		n := headerBytes + BytesPerValue + (s.NNZ()*s.QuantBits+7)/8
		if s.NNZ() != s.Dim {
			n += s.NNZ() * BytesPerIndex
		}
		return n
	}
	if s.NNZ() == s.Dim {
		return headerBytes + s.Dim*BytesPerValue
	}
	return headerBytes + s.NNZ()*(BytesPerIndex+BytesPerValue)
}

// Dense materialises the message as a full vector.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Dim)
	for i, idx := range s.Indices {
		out[idx] = s.Values[i]
	}
	return out
}

// ErrMalformed marks a structurally invalid sparse message: a receiver
// must never feed one to AddTo/Dense, where out-of-range indices panic
// and mismatched arrays silently corrupt the accumulator.
var ErrMalformed = errors.New("compress: malformed sparse message")

// validateCalls counts Validate invocations so tests can pin the
// "validated exactly once per update" contract of the aggregation paths.
// One relaxed atomic add per message is noise next to the O(nnz) bounds
// scan Validate performs anyway.
var validateCalls atomic.Int64

// ValidateCalls returns the process-wide number of Validate invocations.
// It is a diagnostic hook for regression tests; production code should
// not branch on it.
func ValidateCalls() int64 { return validateCalls.Load() }

// Validate checks s against the receiver's model dimension: the declared
// Dim must match, Indices and Values must pair up, the coordinate count
// cannot exceed the dimension, and every index must lie in [0, dim). A
// nil or failing message must be rejected (quarantined) before
// aggregation; Validate never mutates s.
func (s *Sparse) Validate(dim int) error {
	validateCalls.Add(1)
	if s == nil {
		return fmt.Errorf("%w: nil message", ErrMalformed)
	}
	if s.Dim != dim {
		return fmt.Errorf("%w: dim %d, expected %d", ErrMalformed, s.Dim, dim)
	}
	if len(s.Indices) != len(s.Values) {
		return fmt.Errorf("%w: %d indices vs %d values", ErrMalformed, len(s.Indices), len(s.Values))
	}
	if len(s.Indices) > dim {
		return fmt.Errorf("%w: %d coordinates exceed dim %d", ErrMalformed, len(s.Indices), dim)
	}
	for i, idx := range s.Indices {
		if idx < 0 || int(idx) >= dim {
			return fmt.Errorf("%w: index %d at position %d out of range [0, %d)", ErrMalformed, idx, i, dim)
		}
	}
	return nil
}

// Scrub zeroes non-finite (NaN/±Inf) values in place and returns how
// many it replaced. A single poisoned coordinate would otherwise spread
// through the aggregated global model and every subsequent round.
func (s *Sparse) Scrub() int {
	n := 0
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			s.Values[i] = 0
			n++
		}
	}
	return n
}

// Norm2 returns the L2 norm of the message's values (the norm of the
// dense vector it represents, assuming indices are distinct).
func (s *Sparse) Norm2() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// AddTo accumulates scale * message into dst, which must have length Dim.
func (s *Sparse) AddTo(dst []float64, scale float64) {
	if len(dst) != s.Dim {
		panic(fmt.Sprintf("compress: AddTo dim %d, message dim %d", len(dst), s.Dim))
	}
	for i, idx := range s.Indices {
		dst[idx] += scale * s.Values[i]
	}
}

// CompressionRatio returns the byte-level compression factor relative to a
// dense transmission (the metric the paper's tables report).
func (s *Sparse) CompressionRatio() float64 {
	full := float64(headerBytes + s.Dim*BytesPerValue)
	return full / float64(s.WireBytes())
}

// DenseBytes returns the wire size of an uncompressed dim-length gradient.
func DenseBytes(dim int) int { return headerBytes + dim*BytesPerValue }

// KForRatio returns the number of coordinates to keep so that the sparse
// wire size is (approximately) a factor ratio smaller than dense. The
// result is clamped to [1, dim]: even an absurdly deep (or +Inf) ratio
// keeps one coordinate, so a negotiated ratio can never produce an empty
// message that wastes the client's round. A NaN or sub-1 ratio means "no
// compression" and returns dim (the conversion int(NaN) is unspecified in
// Go, so NaN must be caught before the arithmetic).
func KForRatio(dim int, ratio float64) int {
	if math.IsNaN(ratio) || ratio <= 1 {
		return dim
	}
	if math.IsInf(ratio, 1) {
		return 1
	}
	k := int(float64(dim*BytesPerValue) / (ratio * float64(BytesPerIndex+BytesPerValue)))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// ClampRatio forces a compression ratio into [lo, hi]. NaN collapses to lo,
// so a poisoned negotiation input degrades to the mildest valid setting
// instead of propagating. Used wherever a ratio crosses a trust boundary
// (negotiated assignments, wire-decoded Select frames, flag parsing).
func ClampRatio(ratio, lo, hi float64) float64 {
	if math.IsNaN(ratio) || ratio < lo {
		return lo
	}
	if ratio > hi {
		return hi
	}
	return ratio
}
