package compress

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestSparseBinaryRoundTrip(t *testing.T) {
	cases := []*Sparse{
		{Dim: 8, Indices: []int32{0, 3, 7}, Values: []float64{1, -2, 0.5}},
		{Dim: 5, Indices: []int32{}, Values: []float64{}},
		{Dim: 4, Indices: []int32{2}, Values: []float64{math.Inf(1)}},
		NewSparseDense([]float64{0.25, -0.5, 1e-300, 42}),
	}
	for _, want := range cases {
		raw := want.AppendBinary(nil)
		if len(raw) != want.BinaryWireSize() {
			t.Errorf("BinaryWireSize %d, encoded %d bytes", want.BinaryWireSize(), len(raw))
		}
		var got Sparse
		if err := got.DecodeBinaryInto(raw); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Dim != want.Dim || len(got.Indices) != len(want.Indices) {
			t.Fatalf("shape mismatch: got %+v want %+v", got, *want)
		}
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] {
				t.Fatalf("index %d: %d vs %d", i, got.Indices[i], want.Indices[i])
			}
		}
		for i := range want.Values {
			if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
				t.Fatalf("value %d: %v vs %v (not bit-identical)", i, got.Values[i], want.Values[i])
			}
		}
	}
}

// TestSparseBinaryDenseOmitsIndices pins the dense-identity optimisation:
// an identity-index message drops its index run and reconstructs it.
func TestSparseBinaryDenseOmitsIndices(t *testing.T) {
	dense := NewSparseDense(make([]float64, 100))
	sparse := &Sparse{Dim: 100, Indices: make([]int32, 100), Values: make([]float64, 100)}
	for i := range sparse.Indices {
		sparse.Indices[i] = int32(99 - i) // same nnz, non-identity order
	}
	if d, s := dense.BinaryWireSize(), sparse.BinaryWireSize(); d >= s {
		t.Fatalf("dense encoding %d bytes not smaller than explicit %d", d, s)
	}
	var got Sparse
	if err := got.DecodeBinaryInto(dense.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	for i, idx := range got.Indices {
		if int(idx) != i {
			t.Fatalf("reconstructed index %d = %d", i, idx)
		}
	}
}

// TestSparseBinaryDecodeReuse pins the zero-allocation contract: decoding
// into a Sparse whose slices have capacity must not allocate.
func TestSparseBinaryDecodeReuse(t *testing.T) {
	msg := &Sparse{Dim: 1000, Indices: make([]int32, 64), Values: make([]float64, 64)}
	for i := range msg.Indices {
		msg.Indices[i] = int32(i * 15)
		msg.Values[i] = float64(i) * 0.5
	}
	raw := msg.AppendBinary(nil)
	scratch := &Sparse{Indices: make([]int32, 0, 64), Values: make([]float64, 0, 64)}
	if err := scratch.DecodeBinaryInto(raw); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := scratch.DecodeBinaryInto(raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeBinaryInto allocates %.1f per op with capacity available", allocs)
	}
}

// TestSparseBinaryStreamMatchesAppend: the chunked streaming encoder and
// the appending encoder must produce identical bytes, for every chunk
// size that forces partial index/value runs.
func TestSparseBinaryStreamMatchesAppend(t *testing.T) {
	msg := &Sparse{Dim: 500, Indices: make([]int32, 97), Values: make([]float64, 97)}
	for i := range msg.Indices {
		msg.Indices[i] = int32(i * 5)
		msg.Values[i] = float64(i) - 48.5
	}
	want := msg.AppendBinary(nil)
	for _, chunkLen := range []int{16, 24, 64, 4096} {
		var buf bytes.Buffer
		if err := msg.EncodeBinaryTo(&buf, make([]byte, chunkLen)); err != nil {
			t.Fatalf("chunk %d: %v", chunkLen, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("chunk %d: streamed bytes differ from AppendBinary", chunkLen)
		}
	}
}

func TestSparseBinaryDecodeMalformed(t *testing.T) {
	good := (&Sparse{Dim: 8, Indices: []int32{1, 2}, Values: []float64{3, 4}}).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":         {},
		"short header":  good[:5],
		"cut mid-index": good[:11],
		"cut mid-value": good[:len(good)-3],
		"trailing junk": append(append([]byte(nil), good...), 0xEE),
		// nnz claims more coordinates than the payload carries: must be
		// rejected before any allocation is sized from it.
		"oversized nnz": func() []byte {
			b := append([]byte(nil), good...)
			b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}(),
		"dense flag with nnz != dim": func() []byte {
			b := append([]byte(nil), good...)
			b[8] = sparseFlagDense
			return b[:sparseBinaryHeader+16] // keep 2×f64 for nnz=2
		}(),
	}
	for name, data := range cases {
		var s Sparse
		if err := s.DecodeBinaryInto(data); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}
