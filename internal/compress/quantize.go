package compress

import (
	"math"

	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// QSGD is a stochastic uniform quantizer (Alistarh et al. 2017) used as the
// model-level quantization baseline in the related-work comparison. Each
// coordinate is quantized to one of Levels magnitude buckets of ‖g‖₂ with
// unbiased stochastic rounding.
//
// QSGD does not produce a Sparse message natively; Encode returns a dense
// Sparse whose WireBytes are overridden through the Quantized wrapper.
type QSGD struct {
	// Levels is the number of quantization levels s (≥ 1). 2^b - 1 levels
	// correspond to b bits per coordinate plus a sign bit.
	Levels int

	rng *stats.RNG
}

// NewQSGD returns a QSGD codec with the given level count and RNG for
// stochastic rounding.
func NewQSGD(levels int, rng *stats.RNG) *QSGD {
	if levels < 1 {
		panic("compress: QSGD needs at least 1 level")
	}
	return &QSGD{Levels: levels, rng: rng}
}

// Name implements Codec.
func (q *QSGD) Name() string { return "qsgd" }

// Reset implements Codec.
func (q *QSGD) Reset() {}

// BitsPerCoordinate returns the wire cost of one quantized coordinate:
// sign bit plus ⌈log2(Levels+1)⌉ magnitude bits.
func (q *QSGD) BitsPerCoordinate() int {
	return QuantBitsFor(q.Levels)
}

// QuantBitsFor returns the per-coordinate wire cost of an s-level
// quantizer: a sign bit plus ⌈log2(s+1)⌉ magnitude bits (levels 0..s).
func QuantBitsFor(levels int) int {
	return 1 + int(math.Ceil(math.Log2(float64(levels)+1)))
}

// quantizeStochastic rounds g onto the levels-grid scaled by norm with
// unbiased stochastic rounding and returns the reconstructed value,
// exactly sign·norm·l/levels. The rng is drawn exactly once per call so
// callers' draw sequences stay deterministic regardless of the value.
// Shared by QSGD and DAdaQuant.
func quantizeStochastic(rng *stats.RNG, norm, levels, g float64) float64 {
	a := math.Abs(g) / norm * levels
	l := math.Floor(a)
	if rng.Float64() < a-l {
		l++
	}
	val := norm * l / levels
	if g < 0 {
		val = -val
	}
	return val
}

// Encode implements Codec. The ratio argument is ignored: QSGD's
// compression factor is fixed by its level count.
func (q *QSGD) Encode(grad []float64, _ float64) *Sparse {
	norm := tensor.Norm2(grad)
	out := NewSparseDense(grad)
	out.QuantBits = q.BitsPerCoordinate()
	out.QuantLevels = q.Levels
	out.QuantNorm = norm
	if norm == 0 {
		return out
	}
	s := float64(q.Levels)
	for i, g := range grad {
		out.Values[i] = quantizeStochastic(q.rng, norm, s, g)
	}
	return out
}
