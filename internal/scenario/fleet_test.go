package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, body string) *Scenario {
	t.Helper()
	sc, err := Parse(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// batteryScenario: one mains class and one battery class that depletes
// after two 60 s rounds of idle drain and recharges from t = 300 s.
func batteryScenario(t *testing.T) *Scenario {
	return mustParse(t, `{
		"name": "batt", "seed": 9, "round_seconds": 60,
		"classes": [
			{"name": "mains", "weight": 1},
			{"name": "batt", "weight": 1, "battery": {
				"capacity_j": 100, "initial_frac": 0.35,
				"train_watts": 2, "idle_watts": 0.5, "tx_joules_per_mb": 20,
				"recharge": [{"start_s": 300, "end_s": 600, "period_s": 1200, "watts": 2}]
			}}
		]
	}`)
}

func TestClassCountsLargestRemainder(t *testing.T) {
	classes := []Class{{Weight: 1}, {Weight: 1}, {Weight: 2}}
	counts := classCounts(classes, 10)
	if counts[0]+counts[1]+counts[2] != 10 {
		t.Fatalf("counts %v do not sum to 10", counts)
	}
	if counts[2] != 5 {
		t.Fatalf("weight-2 class got %d of 10", counts[2])
	}
	// One client still gets a class even when its weight share rounds to 0.
	tiny := classCounts([]Class{{Weight: 1000}, {Weight: 1}}, 3)
	if tiny[0]+tiny[1] != 3 {
		t.Fatalf("tiny counts %v", tiny)
	}
}

func TestFleetDeterministicConstruction(t *testing.T) {
	sc := batteryScenario(t)
	a, err := NewFleet(sc, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewFleet(sc, 16)
	for i := 0; i < 16; i++ {
		if a.class[i] != b.class[i] || a.quantile[i] != b.quantile[i] ||
			a.phase[i] != b.phase[i] || a.region[i] != b.region[i] {
			t.Fatalf("client %d differs between identically seeded fleets", i)
		}
	}
}

func TestFleetBatteryDepletionAndRecharge(t *testing.T) {
	f, err := NewFleet(batteryScenario(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Find the battery client.
	batt := -1
	for i := 0; i < 2; i++ {
		if f.ClassName(i) == "batt" {
			batt = i
		}
	}
	if batt == -1 {
		t.Fatal("no battery client in 2-client fleet with weight 1:1")
	}
	mains := 1 - batt

	downAt, upAt := -1, -1
	for r := 0; r < 10; r++ {
		f.BeginRound(r)
		if !f.Available(mains) {
			t.Fatalf("mains client offline at round %d", r)
		}
		if !f.Available(batt) && downAt == -1 {
			downAt = r
		}
		if downAt != -1 && upAt == -1 && f.Available(batt) {
			upAt = r
		}
	}
	// 35 J at 0.5 W idle over 60 s rounds: 5 J after round 1's
	// integration, 0 at round 2; recharge window opens at 300 s, so the
	// round-6 integration (covering [300, 360)) brings it back.
	if downAt != 2 {
		t.Fatalf("battery client went down at round %d, want 2", downAt)
	}
	if upAt != 6 {
		t.Fatalf("battery client rejoined at round %d, want 6", upAt)
	}
}

func TestFleetScoreMultTracksBatteryLevel(t *testing.T) {
	f, err := NewFleet(batteryScenario(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	batt := 0
	if f.ClassName(0) == "mains" {
		batt = 1
	}
	f.BeginRound(0)
	if got := f.ScoreMult(1 - batt); got != 1 {
		t.Fatalf("mains score mult = %v", got)
	}
	// Level 0.35 → 0.25 + 0.75·0.35.
	want := 0.25 + 0.75*0.35
	if got := f.ScoreMult(batt); math.Abs(got-want) > 1e-12 {
		t.Fatalf("battery score mult = %v, want %v", got, want)
	}
	f.BeginRound(2) // depleted
	if got := f.ScoreMult(batt); got != 0 {
		t.Fatalf("depleted score mult = %v, want 0", got)
	}
	// Out-of-fleet ids are mains-powered bystanders.
	if f.ScoreMult(99) != 1 || !f.Available(99) {
		t.Fatal("out-of-range id not treated as available mains")
	}
}

func TestFleetAccountDrainsTrainAndTx(t *testing.T) {
	f, err := NewFleet(batteryScenario(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	batt := 0
	if f.ClassName(0) == "mains" {
		batt = 1
	}
	f.BeginRound(0)
	before := f.BatteryLevel(batt)
	// 5 s of training at 2 W plus 0.5 MB at 20 J/MB = 20 J = 0.2 capacity.
	f.Account(batt, 5, 500_000)
	if got := before - f.BatteryLevel(batt); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("account drained %v of capacity, want 0.2", got)
	}
}

func TestFleetRegionalOutage(t *testing.T) {
	sc := mustParse(t, `{
		"name": "out", "seed": 3, "round_seconds": 30,
		"classes": [{"name": "a", "weight": 1}],
		"churn": {"regions": ["r0", "r1"],
			"outages": [{"region": "r0", "start_s": 75, "duration_s": 60}]}
	}`)
	f, err := NewFleet(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The outage [75, 135) overlaps rounds 2 ([60,90)), 3 ([90,120)) and
	// 4 ([120,150)) — including round 2, where it starts mid-round.
	for r := 0; r < 7; r++ {
		f.BeginRound(r)
		for i := 0; i < 8; i++ {
			inRegion := f.region[i] == 0
			wantDown := inRegion && r >= 2 && r <= 4
			if f.Available(i) == wantDown {
				t.Fatalf("round %d client %d (region %d): available = %v", r, i, f.region[i], f.Available(i))
			}
		}
	}
	// Both regions are populated (round-robin over a seeded shuffle).
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		seen[f.region[i]]++
	}
	if seen[0] != 4 || seen[1] != 4 {
		t.Fatalf("region split %v, want 4/4", seen)
	}
}

func TestFleetSnapshotRestoreRoundTrip(t *testing.T) {
	sc := batteryScenario(t)
	a, err := NewFleet(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	a.SetRoundWork(1e6, 64)
	for r := 0; r < 4; r++ {
		a.BeginRound(r)
		for i := 0; i < 6; i++ {
			if a.Available(i) {
				a.Account(i, a.TrainSeconds(i), 5000)
			}
		}
	}
	st := a.Snapshot()

	b, _ := NewFleet(sc, 6)
	b.SetRoundWork(1e6, 64)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	// Continuing both fleets produces identical logs.
	var la, lb bytes.Buffer
	for r := 4; r < 10; r++ {
		a.BeginRound(r)
		b.BeginRound(r)
		a.EmitRound(&la, r)
		b.EmitRound(&lb, r)
	}
	if !bytes.Equal(la.Bytes(), lb.Bytes()) {
		t.Fatalf("restored fleet diverged:\n%s\nvs\n%s", la.String(), lb.String())
	}
}

func TestFleetRestoreRejectsMismatch(t *testing.T) {
	sc := batteryScenario(t)
	f, _ := NewFleet(sc, 4)
	st := f.Snapshot()

	other := batteryScenario(t)
	other.Name = "other"
	g, _ := NewFleet(other, 4)
	if err := g.Restore(st); err == nil {
		t.Fatal("restore across scenario names accepted")
	}
	sized, _ := NewFleet(sc, 5)
	if err := sized.Restore(st); err == nil {
		t.Fatal("restore across fleet sizes accepted")
	}
	if err := f.Restore(nil); err == nil {
		t.Fatal("nil state accepted")
	}
}

func TestFleetScheduleMatchesLiveReplay(t *testing.T) {
	sc := batteryScenario(t)
	f, err := NewFleet(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := f.Schedule(8, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule must not have mutated f...
	if f.round != 0 || f.applied != 0 {
		t.Fatal("Schedule mutated the fleet")
	}
	// ...and must match a live fleet replaying the same accounting rule.
	live, _ := NewFleet(sc, 6)
	for r := 0; r < 8; r++ {
		live.BeginRound(r)
		for i := 0; i < 6; i++ {
			if live.Available(i) != masks[r][i] {
				t.Fatalf("round %d client %d: mask %v, live %v", r, i, masks[r][i], live.Available(i))
			}
			if live.Available(i) {
				live.Account(i, live.TrainSeconds(i), 5000)
			}
		}
	}
}

func TestFleetLinkBandwidth(t *testing.T) {
	sc := mustParse(t, `{
		"name": "bw", "seed": 1, "round_seconds": 10,
		"classes": [{"name": "slow", "weight": 1, "bandwidth_mult": 0.5}],
		"bandwidth": {"trace": [{"at_s": 20, "mult": 0.2}]}
	}`)
	f, err := NewFleet(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	up, down := f.LinkBandwidth(0, 0, 1000, 2000)
	if up != 500 || down != 1000 {
		t.Fatalf("round 0 bandwidth %v/%v, want class mult only", up, down)
	}
	// Round 2 starts at t=20, where the trace multiplier 0.2 kicks in.
	up, _ = f.LinkBandwidth(0, 2, 1000, 2000)
	if math.Abs(up-100) > 1e-9 {
		t.Fatalf("round 2 up %v, want 100", up)
	}
}

func TestEmitRoundDeterministicAndSorted(t *testing.T) {
	f, err := NewFleet(batteryScenario(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f.BeginRound(0)
	if err := f.EmitRound(&buf, 0); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasPrefix(line, `{"scenario":"batt","round":0,"available":[0,1,2,3]`) {
		t.Fatalf("unexpected round log: %s", line)
	}
	if !strings.HasSuffix(line, "\n") {
		t.Fatal("round log not newline-terminated")
	}
	// Nil writer is a no-op, for engines without a log sink.
	if err := f.EmitRound(nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestNewFleetRejectsBadInputs(t *testing.T) {
	sc := batteryScenario(t)
	if _, err := NewFleet(sc, 0); err == nil {
		t.Fatal("zero fleet size accepted")
	}
	bad := *sc
	bad.RoundSeconds = -1
	if _, err := NewFleet(&bad, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
}
