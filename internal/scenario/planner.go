package scenario

import (
	"io"

	"adafl/internal/compress"
	"adafl/internal/fl"
)

// ConfigureFederation applies the scenario's heterogeneous device-class
// assignment to a simulated federation: each client gets its class's
// compute profile (scaled by compute_scale) and its link bandwidth is set
// through LinkBandwidth for round 0 — class multiplier times the
// round-clock trace. The base (pre-scenario) link speeds are captured so
// Planner.Plan can re-derive each later round's bandwidth from the same
// round clock the server-side negotiator evaluates; the engine-time
// netsim trace is deliberately NOT attached, because the two clocks run
// at different scales and the negotiation determinism contract is stated
// on the round clock. Call it once after building the federation, before
// the first round.
func (f *Fleet) ConfigureFederation(fed *fl.Federation) {
	n := len(fed.Clients)
	if n > f.n {
		n = f.n
	}
	f.baseUp = make([]float64, n)
	f.baseDown = make([]float64, n)
	for i := 0; i < n; i++ {
		fed.Clients[i].Device = f.Profile(i)
		link := fed.Net.Link(i)
		f.baseUp[i], f.baseDown[i] = link.UpBps, link.DownBps
		link.UpBps, link.DownBps = f.LinkBandwidth(i, 0, link.UpBps, link.DownBps)
		fed.Net.SetLink(i, link)
	}
}

// Planner wraps a RoundPlanner with the scenario schedule: each round it
// advances the fleet clock, lets the inner planner choose from the
// full roster, drops participants the scenario has offline, charges each
// remaining participant's battery for the round's training and estimated
// uplink bytes, and emits the deterministic round log. Pair it with
// core.SyncPlanner's Eligible/ScoreMult hooks so selection itself also
// respects availability and battery level; the wrapper's filter is the
// backstop that keeps scenario semantics for planners without hooks
// (FixedRatePlanner and friends).
type Planner struct {
	Fleet *Fleet
	Inner fl.RoundPlanner
	// Log, when non-nil, receives the per-round schedule JSONL.
	Log io.Writer
}

// Plan implements fl.RoundPlanner.
func (p *Planner) Plan(round int, e *fl.SyncEngine) []fl.Participation {
	f := p.Fleet
	f.BeginRound(round)
	f.ApplyRoundLinks(e.Fed.Net, round)
	parts := p.Inner.Plan(round, e)
	kept := parts[:0]
	for _, part := range parts {
		if !f.Available(part.Client) {
			continue
		}
		est := int64(compress.SparseBinarySize(estimateNNZ(len(e.Global), part.Ratio)))
		f.Account(part.Client, f.TrainSeconds(part.Client), est)
		kept = append(kept, part)
	}
	f.EmitRound(p.Log, round)
	f.RecordMetrics(e.Metrics)
	return kept
}

// estimateNNZ is the expected sparse-update size at a compression ratio.
func estimateNNZ(dim int, ratio float64) int {
	if ratio <= 1 {
		return dim
	}
	nnz := int(float64(dim) / ratio)
	if nnz < 1 {
		nnz = 1
	}
	return nnz
}
