package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"adafl/internal/device"
	"adafl/internal/netsim"
	"adafl/internal/obs"
	"adafl/internal/stats"
)

// Fleet is a scenario instantiated over n clients: the deterministic
// runtime state the engines consult each round. All randomness is drawn
// up-front from the scenario seed in a fixed order at construction; from
// then on availability, battery levels and bandwidths are pure functions
// of (round index, accounted drains), so two fleets built from the same
// config replay bit-identically, and a fleet restored from a checkpoint
// rejoins the schedule exactly.
//
// Fleet is not safe for concurrent use; the engines drive it from the
// round loop (BeginRound / Available / Account / EmitRound in order).
type Fleet struct {
	sc *Scenario
	n  int

	class    []int     // client -> class index
	quantile []float64 // client -> diurnal availability quantile in [0,1)
	phase    []float64 // client -> diurnal phase offset (seconds)
	region   []int     // client -> region index (-1 = none)
	batt     []device.Battery
	down     []bool // battery-depletion latch (hysteresis via RejoinFrac)

	trace *netsim.Trace // shared bandwidth trace (nil = none)

	// baseUp/baseDown remember the pre-scenario link speeds captured by
	// ConfigureFederation so ApplyRoundLinks can re-derive each round's
	// bandwidth from the round clock instead of compounding multipliers.
	baseUp, baseDown []float64

	round   int     // current round (set by BeginRound)
	applied float64 // scenario time through which idle/recharge is integrated

	depletions int64 // cumulative depletion events
	offline    int64 // cumulative (client, round) unavailability count

	flopsPerSample float64
	samples        int
}

// NewFleet instantiates the scenario over n clients.
func NewFleet(sc *Scenario, n int) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("scenario: fleet size %d", n)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		sc:       sc,
		n:        n,
		class:    make([]int, n),
		quantile: make([]float64, n),
		phase:    make([]float64, n),
		region:   make([]int, n),
		batt:     make([]device.Battery, n),
		down:     make([]bool, n),
	}

	// One RNG, fixed draw order: class shuffle, quantiles, phases,
	// region shuffle. Changing this order changes every schedule, so it
	// is part of the determinism contract (DESIGN.md §Scenario engine).
	rng := stats.NewRNG(sc.Seed)

	// Largest-remainder class allocation, then a seeded shuffle so class
	// membership isn't id-ordered.
	counts := classCounts(sc.Classes, n)
	idx := 0
	for ci, cnt := range counts {
		for k := 0; k < cnt; k++ {
			f.class[idx] = ci
			idx++
		}
	}
	rng.Shuffle(n, func(i, j int) { f.class[i], f.class[j] = f.class[j], f.class[i] })

	var spread float64
	if sc.Churn != nil && sc.Churn.Diurnal != nil {
		spread = sc.Churn.Diurnal.PhaseSpreadS
	}
	for i := 0; i < n; i++ {
		f.quantile[i] = rng.Float64()
		f.phase[i] = (rng.Float64()*2 - 1) * spread
	}

	var regions []string
	if sc.Churn != nil {
		regions = sc.Churn.Regions
	}
	if len(regions) == 0 {
		for i := range f.region {
			f.region[i] = -1
		}
	} else {
		perm := rng.Perm(n)
		for k, id := range perm {
			f.region[id] = k % len(regions)
		}
	}

	for i := 0; i < n; i++ {
		if spec := sc.Classes[f.class[i]].Battery; spec != nil {
			f.batt[i] = device.Battery{
				CapacityJ:  spec.CapacityJ,
				LevelJ:     spec.CapacityJ * spec.InitialFrac,
				TrainW:     spec.TrainWatts,
				IdleW:      spec.IdleWatts,
				TxJPerByte: spec.TxJoulesPerMB / 1e6,
			}
			f.down[i] = f.batt[i].Depleted()
		}
	}

	if bw := sc.Bandwidth; bw != nil {
		if len(bw.Trace) > 0 {
			steps := make([]netsim.TraceStep, len(bw.Trace))
			for i, s := range bw.Trace {
				steps[i] = netsim.TraceStep{At: s.AtS, Multiplier: s.Mult}
			}
			f.trace = netsim.NewTrace(steps...)
		} else if d := bw.Diurnal; d != nil {
			f.trace = netsim.DiurnalTrace(d.PeriodS, d.MinMult, d.MaxMult, d.StepS, d.HorizonS)
		}
	}
	return f, nil
}

// classCounts splits n clients over the classes proportionally to weight
// using largest remainders (deterministic, exact total).
func classCounts(classes []Class, n int) []int {
	total := 0.0
	for _, c := range classes {
		total += c.Weight
	}
	counts := make([]int, len(classes))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(classes))
	assigned := 0
	for i, c := range classes {
		exact := float64(n) * c.Weight / total
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; assigned < n; k, assigned = (k+1)%len(rems), assigned+1 {
		counts[rems[k].idx]++
	}
	return counts
}

// Config returns the validated scenario the fleet was built from.
func (f *Fleet) Config() *Scenario { return f.sc }

// Size returns the fleet size.
func (f *Fleet) Size() int { return f.n }

// SetRoundWork tells the energy model what one round of local training
// costs: the model's forward FLOPs per sample and the number of samples
// trained per round. Train drains use each class's device profile over
// this workload.
func (f *Fleet) SetRoundWork(flopsPerSample float64, samples int) {
	f.flopsPerSample = flopsPerSample
	f.samples = samples
}

// Profile returns client id's device profile (class profile scaled by
// compute_scale). Ids outside the fleet get the default profile.
func (f *Fleet) Profile(id int) device.Profile {
	if id < 0 || id >= f.n {
		return profiles[defaultProfile]
	}
	c := f.sc.Classes[f.class[id]]
	return profiles[c.Profile].Scaled(c.ComputeScale)
}

// ClassName returns client id's class name ("" outside the fleet).
func (f *Fleet) ClassName(id int) string {
	if id < 0 || id >= f.n {
		return ""
	}
	return f.sc.Classes[f.class[id]].Name
}

// TrainSeconds returns the wall-time of one round of local training on
// client id's device under the workload set by SetRoundWork.
func (f *Fleet) TrainSeconds(id int) float64 {
	if f.flopsPerSample == 0 || f.samples == 0 {
		return 0
	}
	return f.Profile(id).TrainSeconds(f.flopsPerSample, f.samples)
}

// BeginRound advances the scenario clock to the start of round r,
// integrating idle drain and recharge windows in closed form over the
// elapsed gap (which makes resume-after-kill exact: the integration only
// depends on the interval, not on how many processes observed it), then
// re-evaluates each battery client's depletion latch.
func (f *Fleet) BeginRound(r int) {
	f.round = r
	now := float64(r) * f.sc.RoundSeconds
	if now > f.applied {
		for i := range f.batt {
			b := &f.batt[i]
			if b.Mains() {
				continue
			}
			b.DrainIdle(now - f.applied)
			if spec := f.sc.Classes[f.class[i]].Battery; spec != nil {
				for _, rw := range spec.Recharge {
					b.Charge(rw.window().EnergyOver(f.applied, now))
				}
			}
		}
		f.applied = now
	}
	for i := range f.batt {
		b := &f.batt[i]
		if b.Mains() {
			continue
		}
		if !f.down[i] && b.Depleted() {
			f.down[i] = true
			f.depletions++
		} else if f.down[i] && b.Level() >= f.sc.RejoinFrac {
			f.down[i] = false
		}
	}
}

// now returns the scenario time at the start of the current round.
func (f *Fleet) now() float64 { return float64(f.round) * f.sc.RoundSeconds }

// Available reports whether client id is online in the current round
// (set by BeginRound): not battery-down, not inside a regional outage,
// and inside its diurnal availability band. Ids outside the fleet are
// always available (mains-powered bystanders).
func (f *Fleet) Available(id int) bool {
	if id < 0 || id >= f.n {
		return true
	}
	if f.down[id] {
		return false
	}
	if f.inOutage(id) {
		return false
	}
	return f.diurnalUp(id)
}

// inOutage reports whether id's region has an outage overlapping the
// current round's window [r·T, (r+1)·T) — an outage that begins
// mid-round takes the region out for that whole round.
func (f *Fleet) inOutage(id int) bool {
	if f.region[id] < 0 || f.sc.Churn == nil {
		return false
	}
	t0 := f.now()
	t1 := t0 + f.sc.RoundSeconds
	name := f.sc.Churn.Regions[f.region[id]]
	for _, o := range f.sc.Churn.Outages {
		if o.Region == name && o.StartS < t1 && o.StartS+o.DurationS > t0 {
			return true
		}
	}
	return false
}

// Regions returns the scenario's region names (nil when it defines
// none). The returned slice is the scenario's own; callers must not
// mutate it. The two-tier federation's region→edge mapping derives from
// this together with RegionName.
func (f *Fleet) Regions() []string {
	if f.sc.Churn == nil {
		return nil
	}
	return f.sc.Churn.Regions
}

// RegionName returns the region client id belongs to ("" for ids outside
// the fleet or when the scenario defines no regions).
func (f *Fleet) RegionName(id int) string {
	if id < 0 || id >= f.n || f.region[id] < 0 {
		return ""
	}
	return f.sc.Churn.Regions[f.region[id]]
}

// RegionInOutage reports whether the named region has an outage
// overlapping round's window [r·T, (r+1)·T) — the root's reroute planner
// excludes edges in a region that is currently dark.
func (f *Fleet) RegionInOutage(name string, round int) bool {
	if f.sc.Churn == nil || name == "" {
		return false
	}
	t0 := float64(round) * f.sc.RoundSeconds
	t1 := t0 + f.sc.RoundSeconds
	for _, o := range f.sc.Churn.Outages {
		if o.Region == name && o.StartS < t1 && o.StartS+o.DurationS > t0 {
			return true
		}
	}
	return false
}

// diurnalUp evaluates the availability wave for id at the current round
// start: the fleet-wide available fraction p(t) follows a raised cosine
// between max_frac and min_frac, and id is up iff its fixed quantile
// falls below p(t + phase_id).
func (f *Fleet) diurnalUp(id int) bool {
	if f.sc.Churn == nil || f.sc.Churn.Diurnal == nil {
		return true
	}
	d := f.sc.Churn.Diurnal
	t := f.now() + f.phase[id]
	p := d.MinFrac + (d.MaxFrac-d.MinFrac)*(1+math.Cos(2*math.Pi*t/d.PeriodS))/2
	return f.quantile[id] < p
}

// BatteryLevel returns client id's state of charge in [0, 1] (1 for
// mains clients and ids outside the fleet).
func (f *Fleet) BatteryLevel(id int) float64 {
	if id < 0 || id >= f.n {
		return 1
	}
	return f.batt[id].Level()
}

// ScoreMult returns the utility-score multiplier for client id: 1 for
// mains clients, scaled linearly from BatteryScoreFloor (empty) to 1
// (full) for battery clients, 0 when depleted — the scenario's
// "smart sampling" bias toward high-battery clients.
func (f *Fleet) ScoreMult(id int) float64 {
	if id < 0 || id >= f.n {
		return 1
	}
	b := f.batt[id]
	if b.Mains() {
		return 1
	}
	if f.down[id] || b.Depleted() {
		return 0
	}
	floor := f.sc.BatteryScoreFloor
	return floor + (1-floor)*b.Level()
}

// LinkBandwidth maps a base link bandwidth through client id's class
// multiplier and the scenario bandwidth trace at the given round. It is
// a pure function (no state change), so server and clients can evaluate
// it independently and agree.
func (f *Fleet) LinkBandwidth(id, round int, baseUp, baseDown float64) (up, down float64) {
	mult := 1.0
	if id >= 0 && id < f.n {
		mult = f.sc.Classes[f.class[id]].BandwidthMult
	}
	if f.trace != nil {
		mult *= f.trace.MultiplierAt(float64(round) * f.sc.RoundSeconds)
	}
	return baseUp * mult, baseDown * mult
}

// Trace returns the scenario's shared bandwidth trace (nil when the
// config has none), for attaching to netsim links.
func (f *Fleet) Trace() *netsim.Trace { return f.trace }

// ApplyRoundLinks re-derives every configured link's bandwidth for the
// given round through LinkBandwidth, so simulated transfer durations
// follow the same round-clock trace the server-side negotiator and any
// out-of-band observer evaluate. No-op until ConfigureFederation has
// captured the base link speeds.
func (f *Fleet) ApplyRoundLinks(net *netsim.Network, round int) {
	if f.baseUp == nil {
		return
	}
	for i := 0; i < len(f.baseUp); i++ {
		link := net.Link(i)
		link.UpBps, link.DownBps = f.LinkBandwidth(i, round, f.baseUp[i], f.baseDown[i])
		net.SetLink(i, link)
	}
}

// Account charges client id's battery for one round of work: trainSec
// seconds of training plus txBytes of uplink transmission. Call it once
// per delivered update; unavailable clients only pay idle drain.
func (f *Fleet) Account(id int, trainSec float64, txBytes int64) {
	if id < 0 || id >= f.n {
		return
	}
	b := &f.batt[id]
	b.DrainTrain(trainSec)
	b.DrainTx(txBytes)
}

// State is the checkpointable scenario state: everything that is not a
// pure function of (config, seed, round). It joins the session snapshot
// so -resume replays mid-scenario.
type State struct {
	Name       string
	Seed       uint64
	Clients    int
	Round      int
	AppliedS   float64
	LevelsJ    []float64
	Down       []bool
	Depletions int64
	Offline    int64
}

// Snapshot captures the fleet's mutable state for the session checkpoint.
func (f *Fleet) Snapshot() *State {
	st := &State{
		Name:       f.sc.Name,
		Seed:       f.sc.Seed,
		Clients:    f.n,
		Round:      f.round,
		AppliedS:   f.applied,
		LevelsJ:    make([]float64, f.n),
		Down:       append([]bool(nil), f.down...),
		Depletions: f.depletions,
		Offline:    f.offline,
	}
	for i, b := range f.batt {
		st.LevelsJ[i] = b.LevelJ
	}
	return st
}

// Restore rejoins a checkpointed schedule. The snapshot must come from
// the same scenario (name, seed) over the same fleet size; anything else
// is a hard error, matching the checkpoint layer's mismatch policy.
func (f *Fleet) Restore(st *State) error {
	if st == nil {
		return fmt.Errorf("scenario: nil state")
	}
	if st.Name != f.sc.Name || st.Seed != f.sc.Seed {
		return fmt.Errorf("scenario: snapshot from scenario %q seed %d, running %q seed %d",
			st.Name, st.Seed, f.sc.Name, f.sc.Seed)
	}
	if st.Clients != f.n || len(st.LevelsJ) != f.n || len(st.Down) != f.n {
		return fmt.Errorf("scenario: snapshot fleet size %d, running %d", st.Clients, f.n)
	}
	f.round = st.Round
	f.applied = st.AppliedS
	for i := range f.batt {
		f.batt[i].LevelJ = st.LevelsJ[i]
	}
	copy(f.down, st.Down)
	f.depletions = st.Depletions
	f.offline = st.Offline
	return nil
}

// roundLog is the deterministic per-round record EmitRound writes: it
// depends only on (config, seed, round, accounted drains), never on
// wall-clock time, so two runs of the same scenario produce byte-equal
// logs — the observable the golden replay tests pin.
type roundLog struct {
	Scenario     string   `json:"scenario"`
	Round        int      `json:"round"`
	Available    []int    `json:"available"`
	Offline      []int    `json:"offline,omitempty"`
	Depleted     []int    `json:"depleted,omitempty"`
	Outages      []string `json:"outages,omitempty"`
	BatteryMilli []int    `json:"battery_milli,omitempty"`
}

// EmitRound writes one JSONL record describing the current round's
// schedule to w (no-op when w is nil) and bumps the offline counters.
// Battery levels are reported in thousandths to keep the encoding
// platform-stable.
func (f *Fleet) EmitRound(w io.Writer, round int) error {
	rec := roundLog{Scenario: f.sc.Name, Round: round}
	hasBattery := false
	for i := 0; i < f.n; i++ {
		if f.Available(i) {
			rec.Available = append(rec.Available, i)
		} else {
			rec.Offline = append(rec.Offline, i)
			f.offline++
		}
		if f.down[i] {
			rec.Depleted = append(rec.Depleted, i)
		}
		if !f.batt[i].Mains() {
			hasBattery = true
		}
	}
	if f.sc.Churn != nil {
		t0 := f.now()
		t1 := t0 + f.sc.RoundSeconds
		for _, o := range f.sc.Churn.Outages {
			if o.StartS < t1 && o.StartS+o.DurationS > t0 {
				rec.Outages = append(rec.Outages, o.Region)
			}
		}
	}
	if hasBattery {
		rec.BatteryMilli = make([]int, f.n)
		for i := range rec.BatteryMilli {
			rec.BatteryMilli[i] = int(math.Round(f.batt[i].Level() * 1000))
		}
	}
	if w == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}

// RecordMetrics publishes scenario-labelled churn/energy gauges and
// counters to the registry (nil-safe, like all obs instruments).
func (f *Fleet) RecordMetrics(reg *obs.Registry) {
	label := fmt.Sprintf(`{scenario=%q}`, f.sc.Name)
	avail := 0
	var levelSum float64
	battery := 0
	for i := 0; i < f.n; i++ {
		if f.Available(i) {
			avail++
		}
		if !f.batt[i].Mains() {
			battery++
			levelSum += f.batt[i].Level()
		}
	}
	reg.Gauge("adafl_scenario_available" + label).Set(float64(avail))
	reg.Gauge("adafl_scenario_offline_total" + label).Set(float64(f.offline))
	reg.Gauge("adafl_scenario_depletions_total" + label).Set(float64(f.depletions))
	if battery > 0 {
		reg.Gauge("adafl_scenario_battery_level_mean" + label).Set(levelSum / float64(battery))
	}
}

// Schedule simulates rounds of the scenario under full participation
// (every available client trains and ships estBytes each round) on a
// fresh copy, returning the per-round availability masks. Both halves of
// a split socket fleet derive the same schedule from the same file, so
// the server knows how many updates to expect and each client knows when
// to stay silent.
func (f *Fleet) Schedule(rounds int, estBytes int64) ([][]bool, error) {
	sim, err := NewFleet(f.sc, f.n)
	if err != nil {
		return nil, err
	}
	sim.SetRoundWork(f.flopsPerSample, f.samples)
	masks := make([][]bool, rounds)
	for r := 0; r < rounds; r++ {
		sim.BeginRound(r)
		mask := make([]bool, f.n)
		for i := 0; i < f.n; i++ {
			if sim.Available(i) {
				mask[i] = true
				sim.Account(i, sim.TrainSeconds(i), estBytes)
			}
		}
		masks[r] = mask
	}
	return masks, nil
}
