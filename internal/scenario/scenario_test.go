package scenario

import (
	"errors"
	"strings"
	"testing"
)

// minimal returns a valid config body for mutation in table tests.
func minimal() string {
	return `{
		"name": "t", "seed": 1, "round_seconds": 60,
		"classes": [{"name": "a", "weight": 1}]
	}`
}

func TestParseMinimalDefaults(t *testing.T) {
	sc, err := Parse(strings.NewReader(minimal()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.BatteryScoreFloor != defaultScoreFloor {
		t.Errorf("score floor default = %v", sc.BatteryScoreFloor)
	}
	if sc.RejoinFrac != defaultRejoinFrac {
		t.Errorf("rejoin default = %v", sc.RejoinFrac)
	}
	c := sc.Classes[0]
	if c.Profile != "rpi4" || c.ComputeScale != 1 || c.BandwidthMult != 1 {
		t.Errorf("class defaults not applied: %+v", c)
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"truncated", `{"name": "t", "se`},
		{"not json", "hello"},
		{"unknown field", `{"name": "t", "round_seconds": 1, "classes": [{"name":"a","weight":1}], "bogus": 1}`},
		{"trailing data", minimal() + `{"again": true}`},
		{"nan literal", `{"name": "t", "round_seconds": NaN, "classes": []}`},
		{"huge exponent", `{"name": "t", "round_seconds": 1e999, "classes": []}`},
		{"wrong type", `{"name": 3}`},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.input))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, ErrSyntax) {
			t.Errorf("%s: error %v does not wrap ErrSyntax", c.name, err)
		}
	}
}

func TestParseValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		field string // substring the FieldError must mention
	}{
		{"missing name", `{"round_seconds": 1, "classes": [{"name":"a","weight":1}]}`, "name"},
		{"zero round seconds", `{"name":"t","round_seconds": 0, "classes": [{"name":"a","weight":1}]}`, "round_seconds"},
		{"negative round seconds", `{"name":"t","round_seconds": -5, "classes": [{"name":"a","weight":1}]}`, "round_seconds"},
		{"no classes", `{"name":"t","round_seconds": 1, "classes": []}`, "classes"},
		{"negative weight", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":-1}]}`, "weight"},
		{"unknown profile", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1,"profile":"cray"}]}`, "profile"},
		{"negative compute scale", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1,"compute_scale":-2}]}`, "compute_scale"},
		{"score floor out of range", `{"name":"t","round_seconds": 1, "battery_score_floor": 2, "classes": [{"name":"a","weight":1}]}`, "battery_score_floor"},
		{"battery no capacity", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1,"battery":{"train_watts":1}}]}`, "capacity_j"},
		{"battery initial frac", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1,"battery":{"capacity_j":10,"initial_frac":3}}]}`, "initial_frac"},
		{"recharge end before start", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1,"battery":{"capacity_j":10,"recharge":[{"start_s":10,"end_s":5,"watts":1}]}}]}`, "recharge"},
		{"diurnal zero period", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1}], "churn": {"diurnal": {"period_s": 0, "min_frac": 0.5}}}`, "period_s"},
		{"diurnal frac range", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1}], "churn": {"diurnal": {"period_s": 10, "min_frac": 2}}}`, "min_frac"},
		{"outage undeclared region", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1}], "churn": {"regions": ["x"], "outages": [{"region":"y","start_s":0,"duration_s":1}]}}`, "region"},
		{"outage zero duration", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1}], "churn": {"regions": ["x"], "outages": [{"region":"x","start_s":0,"duration_s":0}]}}`, "duration_s"},
		{"duplicate region", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1}], "churn": {"regions": ["x","x"]}}`, "regions"},
		{"bandwidth both", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1}], "bandwidth": {"trace":[{"at_s":0,"mult":1}], "diurnal":{"period_s":1,"min_mult":1,"max_mult":1,"step_s":1,"horizon_s":1}}}`, "bandwidth"},
		{"trace zero mult", `{"name":"t","round_seconds": 1, "classes": [{"name":"a","weight":1}], "bandwidth": {"trace":[{"at_s":0,"mult":0}]}}`, "mult"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.input))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v does not wrap ErrInvalid", c.name, err)
			continue
		}
		var fe *FieldError
		if errors.As(err, &fe) && !strings.Contains(fe.Field, c.field) {
			t.Errorf("%s: field %q does not mention %q", c.name, fe.Field, c.field)
		}
	}
}

func TestLoadBundledScenarios(t *testing.T) {
	for _, path := range []string{
		"../../examples/scenarios/diurnal.json",
		"../../examples/scenarios/regional-outage.json",
	} {
		sc, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if sc.Name == "" {
			t.Fatalf("%s: empty name", path)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/scenario.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
