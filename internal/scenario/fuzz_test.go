package scenario

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// FuzzScenarioDecode throws hostile, truncated and NaN-valued inputs at
// the config parser: Parse must never panic, every rejection must carry a
// typed error (ErrSyntax or ErrInvalid), and any accepted config must
// instantiate into a fleet and survive a few rounds without panicking —
// the config layer is the scenario engine's only untrusted input.
func FuzzScenarioDecode(f *testing.F) {
	f.Add([]byte(minimal()))
	for _, path := range []string{
		"../../examples/scenarios/diurnal.json",
		"../../examples/scenarios/regional-outage.json",
	} {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"t","round_seconds":1e999,"classes":[{"name":"a","weight":1}]}`))
	f.Add([]byte(`{"name":"t","round_seconds":NaN}`))
	f.Add([]byte(`{"name":"t","round_seconds":1,"classes":[{"name":"a","weight":1,"battery":{"capacity_j":-1}}]}`))
	f.Add([]byte(`{"name":"t","seed":18446744073709551615,"round_seconds":0.0001,"classes":[{"name":"a","weight":1e-300}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrSyntax) && !errors.Is(err, ErrInvalid) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		// Accepted configs must be safely instantiable: the validator is
		// the only gate between a hostile file and the round loop.
		fleet, err := NewFleet(sc, 4)
		if err != nil {
			t.Fatalf("validated config rejected by NewFleet: %v", err)
		}
		fleet.SetRoundWork(1e6, 32)
		for r := 0; r < 3; r++ {
			fleet.BeginRound(r)
			for i := 0; i < 4; i++ {
				if fleet.Available(i) {
					fleet.Account(i, fleet.TrainSeconds(i), 1000)
				}
				fleet.ScoreMult(i)
				fleet.LinkBandwidth(i, r, 1e6, 1e6)
			}
			if err := fleet.EmitRound(nil, r); err != nil {
				t.Fatalf("EmitRound: %v", err)
			}
		}
		if err := fleet.Restore(fleet.Snapshot()); err != nil {
			t.Fatalf("self snapshot does not restore: %v", err)
		}
	})
}
