// Package scenario is the declarative fleet-condition engine: one JSON
// file describes heterogeneous device classes with battery/energy models,
// diurnal availability waves, correlated regional outages, and per-class
// bandwidth shaping, and every consumer of the file — flsim, a live
// flserver/flclient session, cmd/flfleet, and the chaos suite — replays
// the identical schedule from the scenario seed. The whole run is
// bit-deterministic: scenario state is a pure function of (config, seed,
// round index, accounted drains), never of wall-clock time or runtime
// randomness, which is what lets a killed-and-resumed session rejoin the
// schedule mid-scenario exactly where an uninterrupted run would be.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"adafl/internal/device"
)

// Typed parse/validation errors. Parse returns errors wrapping ErrSyntax
// when the input is not well-formed JSON for the schema, and errors
// wrapping ErrInvalid when the JSON decoded but the values are
// semantically unacceptable (NaN/Inf, negative weights, unknown
// profiles, outages naming undeclared regions, ...).
var (
	ErrSyntax  = errors.New("scenario: syntax error")
	ErrInvalid = errors.New("scenario: invalid config")
)

// FieldError is a validation failure pinned to a config field; it
// unwraps to ErrInvalid.
type FieldError struct {
	Field  string
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("scenario: %s: %s", e.Field, e.Reason)
}

func (e *FieldError) Unwrap() error { return ErrInvalid }

func fieldErr(field, format string, args ...any) error {
	return &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Scenario is the root of the declarative config. The zero value is not
// usable; build one with Parse/Load (which validate) or fill it in code
// and call Validate yourself.
type Scenario struct {
	// Name labels metric families and log lines; restores refuse a
	// checkpoint recorded under a different name.
	Name string `json:"name"`
	// Seed drives every random assignment (class mix, availability
	// quantiles, phases, regions). Same seed, same schedule — always.
	Seed uint64 `json:"seed"`
	// RoundSeconds maps round indices onto the scenario clock: round r
	// spans [r·RoundSeconds, (r+1)·RoundSeconds).
	RoundSeconds float64 `json:"round_seconds"`
	// BatteryScoreFloor is the utility-score multiplier of an almost-empty
	// battery; a full battery multiplies by 1, levels interpolate
	// linearly ("smart sampling": low-battery clients are deprioritised,
	// not excluded, until they actually deplete). Default 0.25.
	BatteryScoreFloor float64 `json:"battery_score_floor,omitempty"`
	// RejoinFrac is the state-of-charge a depleted client must recharge
	// to before it comes back online (hysteresis against flapping at
	// 0%). Default 0.1.
	RejoinFrac float64 `json:"rejoin_frac,omitempty"`
	// Classes is the heterogeneous device-class mix; clients are assigned
	// classes proportionally to Weight.
	Classes []Class `json:"classes"`
	// Churn describes availability over time.
	Churn *Churn `json:"churn,omitempty"`
	// Bandwidth shapes link bandwidth over time (applied on top of each
	// class's static multiplier).
	Bandwidth *Bandwidth `json:"bandwidth,omitempty"`
}

// Class is one device class in the fleet mix.
type Class struct {
	Name string `json:"name"`
	// Weight is the class's share of the fleet (normalised over classes).
	Weight float64 `json:"weight"`
	// Profile names the compute profile: rpi3, rpi4 or workstation
	// (default rpi4).
	Profile string `json:"profile,omitempty"`
	// ComputeScale multiplies the profile's throughput (default 1; 0.5 =
	// half speed).
	ComputeScale float64 `json:"compute_scale,omitempty"`
	// BandwidthMult statically scales the class's link bandwidth
	// (default 1).
	BandwidthMult float64 `json:"bandwidth_mult,omitempty"`
	// Battery, when present, puts the class on battery power; absent
	// means mains.
	Battery *BatterySpec `json:"battery,omitempty"`
}

// BatterySpec configures the energy model of a battery-powered class.
type BatterySpec struct {
	CapacityJ float64 `json:"capacity_j"`
	// InitialFrac is the starting state of charge (default 1).
	InitialFrac float64 `json:"initial_frac,omitempty"`
	// TrainWatts is the draw during local training.
	TrainWatts float64 `json:"train_watts"`
	// IdleWatts is the baseline draw (default 0).
	IdleWatts float64 `json:"idle_watts,omitempty"`
	// TxJoulesPerMB is the uplink transmit energy per megabyte sent.
	TxJoulesPerMB float64 `json:"tx_joules_per_mb,omitempty"`
	// Recharge lists plug-in windows (the diurnal overnight charge).
	Recharge []RechargeSpec `json:"recharge,omitempty"`
}

// RechargeSpec is one (possibly periodic) plug-in window.
type RechargeSpec struct {
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`
	PeriodS float64 `json:"period_s,omitempty"`
	Watts   float64 `json:"watts"`
}

// Churn describes time-varying availability.
type Churn struct {
	// Diurnal, when present, drives a fleet-wide availability wave.
	Diurnal *Diurnal `json:"diurnal,omitempty"`
	// Regions declares the correlated-outage groups; clients are spread
	// over them deterministically from the seed.
	Regions []string `json:"regions,omitempty"`
	// Outages lists correlated regional outages; a client in the named
	// region is offline for every round its window overlaps.
	Outages []Outage `json:"outages,omitempty"`
}

// Diurnal is a raised-cosine availability wave: the available fraction of
// the fleet swings between MaxFrac (peak, at t = 0) and MinFrac (trough,
// half a period later).
type Diurnal struct {
	PeriodS float64 `json:"period_s"`
	MinFrac float64 `json:"min_frac"`
	// MaxFrac defaults to 1.
	MaxFrac float64 `json:"max_frac,omitempty"`
	// PhaseSpreadS jitters each client's personal phase uniformly in
	// [-PhaseSpreadS, +PhaseSpreadS] (seeded), smearing the wave so the
	// fleet doesn't blink in lockstep. Default 0.
	PhaseSpreadS float64 `json:"phase_spread_s,omitempty"`
}

// Outage is one correlated regional outage window [StartS, StartS+DurationS).
type Outage struct {
	Region    string  `json:"region"`
	StartS    float64 `json:"start_s"`
	DurationS float64 `json:"duration_s"`
}

// Bandwidth shapes link bandwidth over scenario time.
type Bandwidth struct {
	// Trace is an explicit piecewise-constant multiplier schedule.
	Trace []Step `json:"trace,omitempty"`
	// Diurnal generates a raised-cosine multiplier wave instead.
	Diurnal *BandwidthDiurnal `json:"diurnal,omitempty"`
}

// Step sets the bandwidth multiplier from AtS onward.
type Step struct {
	AtS  float64 `json:"at_s"`
	Mult float64 `json:"mult"`
}

// BandwidthDiurnal generates a day/night bandwidth wave: multiplier
// swings between MaxMult (at t = 0) and MinMult, sampled every StepS
// seconds out to HorizonS.
type BandwidthDiurnal struct {
	PeriodS  float64 `json:"period_s"`
	MinMult  float64 `json:"min_mult"`
	MaxMult  float64 `json:"max_mult"`
	StepS    float64 `json:"step_s"`
	HorizonS float64 `json:"horizon_s"`
}

// Defaults applied by Validate.
const (
	defaultScoreFloor = 0.25
	defaultRejoinFrac = 0.1
	defaultProfile    = "rpi4"
)

// Profiles the config may name.
var profiles = map[string]device.Profile{
	"rpi3":        device.RaspberryPi3,
	"rpi4":        device.RaspberryPi4,
	"workstation": device.Workstation,
}

// Parse decodes and validates a scenario from JSON. Unknown fields,
// trailing data and malformed JSON yield errors wrapping ErrSyntax;
// semantic problems yield errors wrapping ErrInvalid. Parse never
// panics, whatever the input.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after scenario object", ErrSyntax)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return sc, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks the config semantically and fills in defaults
// (BatteryScoreFloor, RejoinFrac, class profile/scales, diurnal
// MaxFrac). All errors wrap ErrInvalid.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fieldErr("name", "required")
	}
	if !finite(sc.RoundSeconds) || sc.RoundSeconds <= 0 {
		return fieldErr("round_seconds", "must be positive and finite, got %v", sc.RoundSeconds)
	}
	if sc.BatteryScoreFloor == 0 {
		sc.BatteryScoreFloor = defaultScoreFloor
	}
	if !finite(sc.BatteryScoreFloor) || sc.BatteryScoreFloor < 0 || sc.BatteryScoreFloor > 1 {
		return fieldErr("battery_score_floor", "must be in [0, 1], got %v", sc.BatteryScoreFloor)
	}
	if sc.RejoinFrac == 0 {
		sc.RejoinFrac = defaultRejoinFrac
	}
	if !finite(sc.RejoinFrac) || sc.RejoinFrac < 0 || sc.RejoinFrac > 1 {
		return fieldErr("rejoin_frac", "must be in [0, 1], got %v", sc.RejoinFrac)
	}
	if len(sc.Classes) == 0 {
		return fieldErr("classes", "at least one class required")
	}
	var weight float64
	for i := range sc.Classes {
		if err := sc.Classes[i].validate(i); err != nil {
			return err
		}
		weight += sc.Classes[i].Weight
	}
	if weight <= 0 {
		return fieldErr("classes", "total weight must be positive")
	}
	if sc.Churn != nil {
		if err := sc.Churn.validate(); err != nil {
			return err
		}
	}
	if sc.Bandwidth != nil {
		if err := sc.Bandwidth.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Class) validate(i int) error {
	field := func(f string) string { return fmt.Sprintf("classes[%d].%s", i, f) }
	if c.Name == "" {
		return fieldErr(field("name"), "required")
	}
	if !finite(c.Weight) || c.Weight <= 0 {
		return fieldErr(field("weight"), "must be positive and finite, got %v", c.Weight)
	}
	if c.Profile == "" {
		c.Profile = defaultProfile
	}
	if _, ok := profiles[c.Profile]; !ok {
		return fieldErr(field("profile"), "unknown profile %q (want rpi3, rpi4 or workstation)", c.Profile)
	}
	if c.ComputeScale == 0 {
		c.ComputeScale = 1
	}
	if !finite(c.ComputeScale) || c.ComputeScale <= 0 {
		return fieldErr(field("compute_scale"), "must be positive and finite, got %v", c.ComputeScale)
	}
	if c.BandwidthMult == 0 {
		c.BandwidthMult = 1
	}
	if !finite(c.BandwidthMult) || c.BandwidthMult <= 0 {
		return fieldErr(field("bandwidth_mult"), "must be positive and finite, got %v", c.BandwidthMult)
	}
	if c.Battery != nil {
		if err := c.Battery.validate(field("battery")); err != nil {
			return err
		}
	}
	return nil
}

func (b *BatterySpec) validate(field string) error {
	if !finite(b.CapacityJ) || b.CapacityJ <= 0 {
		return fieldErr(field+".capacity_j", "must be positive and finite, got %v", b.CapacityJ)
	}
	if b.InitialFrac == 0 {
		b.InitialFrac = 1
	}
	if !finite(b.InitialFrac) || b.InitialFrac < 0 || b.InitialFrac > 1 {
		return fieldErr(field+".initial_frac", "must be in [0, 1], got %v", b.InitialFrac)
	}
	for name, v := range map[string]float64{
		"train_watts":      b.TrainWatts,
		"idle_watts":       b.IdleWatts,
		"tx_joules_per_mb": b.TxJoulesPerMB,
	} {
		if !finite(v) || v < 0 {
			return fieldErr(field+"."+name, "must be non-negative and finite, got %v", v)
		}
	}
	for i, r := range b.Recharge {
		w := r.window()
		if err := w.Validate(); err != nil {
			return fieldErr(fmt.Sprintf("%s.recharge[%d]", field, i), "%v", err)
		}
	}
	return nil
}

func (r RechargeSpec) window() device.RechargeWindow {
	return device.RechargeWindow{StartS: r.StartS, EndS: r.EndS, PeriodS: r.PeriodS, Watts: r.Watts}
}

func (c *Churn) validate() error {
	if c.Diurnal != nil {
		d := c.Diurnal
		if d.MaxFrac == 0 {
			d.MaxFrac = 1
		}
		if !finite(d.PeriodS) || d.PeriodS <= 0 {
			return fieldErr("churn.diurnal.period_s", "must be positive and finite, got %v", d.PeriodS)
		}
		if !finite(d.MinFrac) || d.MinFrac < 0 || d.MinFrac > 1 {
			return fieldErr("churn.diurnal.min_frac", "must be in [0, 1], got %v", d.MinFrac)
		}
		if !finite(d.MaxFrac) || d.MaxFrac < d.MinFrac || d.MaxFrac > 1 {
			return fieldErr("churn.diurnal.max_frac", "must be in [min_frac, 1], got %v", d.MaxFrac)
		}
		if !finite(d.PhaseSpreadS) || d.PhaseSpreadS < 0 {
			return fieldErr("churn.diurnal.phase_spread_s", "must be non-negative and finite, got %v", d.PhaseSpreadS)
		}
	}
	regions := make(map[string]bool, len(c.Regions))
	for i, r := range c.Regions {
		if r == "" {
			return fieldErr(fmt.Sprintf("churn.regions[%d]", i), "empty region name")
		}
		if regions[r] {
			return fieldErr(fmt.Sprintf("churn.regions[%d]", i), "duplicate region %q", r)
		}
		regions[r] = true
	}
	for i, o := range c.Outages {
		field := fmt.Sprintf("churn.outages[%d]", i)
		if !regions[o.Region] {
			return fieldErr(field+".region", "outage names undeclared region %q", o.Region)
		}
		if !finite(o.StartS) || o.StartS < 0 {
			return fieldErr(field+".start_s", "must be non-negative and finite, got %v", o.StartS)
		}
		if !finite(o.DurationS) || o.DurationS <= 0 {
			return fieldErr(field+".duration_s", "must be positive and finite, got %v", o.DurationS)
		}
	}
	return nil
}

func (b *Bandwidth) validate() error {
	if len(b.Trace) > 0 && b.Diurnal != nil {
		return fieldErr("bandwidth", "trace and diurnal are mutually exclusive")
	}
	for i, s := range b.Trace {
		field := fmt.Sprintf("bandwidth.trace[%d]", i)
		if !finite(s.AtS) || s.AtS < 0 {
			return fieldErr(field+".at_s", "must be non-negative and finite, got %v", s.AtS)
		}
		if !finite(s.Mult) || s.Mult <= 0 {
			return fieldErr(field+".mult", "must be positive and finite, got %v", s.Mult)
		}
	}
	if d := b.Diurnal; d != nil {
		if !finite(d.PeriodS) || d.PeriodS <= 0 {
			return fieldErr("bandwidth.diurnal.period_s", "must be positive and finite, got %v", d.PeriodS)
		}
		if !finite(d.MinMult) || d.MinMult <= 0 {
			return fieldErr("bandwidth.diurnal.min_mult", "must be positive and finite, got %v", d.MinMult)
		}
		if !finite(d.MaxMult) || d.MaxMult < d.MinMult {
			return fieldErr("bandwidth.diurnal.max_mult", "must be >= min_mult and finite, got %v", d.MaxMult)
		}
		if !finite(d.StepS) || d.StepS <= 0 {
			return fieldErr("bandwidth.diurnal.step_s", "must be positive and finite, got %v", d.StepS)
		}
		if !finite(d.HorizonS) || d.HorizonS < 0 {
			return fieldErr("bandwidth.diurnal.horizon_s", "must be non-negative and finite, got %v", d.HorizonS)
		}
	}
	return nil
}
