package scenario

import (
	"bytes"
	"testing"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// Golden scenario-replay tests: the two bundled scenarios run end to end
// through the synchronous engine, and the scenario round logs — the
// deterministic observable of the schedule (availability, depletions,
// outages, battery levels) — must be byte-identical across runs at a
// fixed seed. This is the determinism contract of DESIGN.md §Scenario
// engine, pinned at the byte level.

// runScenarioSession drives a full simulated FL session under the given
// scenario file and returns the scenario round log plus the final global
// parameter vector.
func runScenarioSession(t *testing.T, path string, clients, rounds int) ([]byte, []float64) {
	t.Helper()
	sc, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(sc, clients)
	if err != nil {
		t.Fatal(err)
	}

	const seed = 11
	ds := dataset.SynthMNIST(400, 12, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionIID(train, clients, seed+2)
	net := netsim.UniformNetwork(clients, netsim.WiFiLink, seed+3)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 12, 12}, []int{16}, 10, stats.NewRNG(seed+4))
	}
	cfg := fl.TrainConfig{LocalSteps: 2, BatchSize: 8, LR: 0.1, Momentum: 0.9}
	fed := fl.NewFederation(parts, test, net, newModel, cfg, seed+5)

	fleet.ConfigureFederation(fed)
	fleet.SetRoundWork(fed.NewModel().FLOPsPerSample(), cfg.LocalSteps*cfg.BatchSize)

	adaCfg := core.DefaultConfig()
	adaCfg.ScaleRatiosForModel(len(fed.NewModel().ParamVector()))
	adaCfg.AttachDGC(fed)
	inner := core.NewSyncPlanner(adaCfg)
	inner.Eligible = fleet.Available
	inner.ScoreMult = fleet.ScoreMult

	var log bytes.Buffer
	planner := &Planner{Fleet: fleet, Inner: inner, Log: &log}
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, seed+6)
	e.RunRounds(rounds)
	return log.Bytes(), append([]float64(nil), e.Global...)
}

func TestGoldenReplayDiurnal(t *testing.T) {
	const path = "../../examples/scenarios/diurnal.json"
	logA, globalA := runScenarioSession(t, path, 8, 10)
	logB, globalB := runScenarioSession(t, path, 8, 10)
	if len(logA) == 0 {
		t.Fatal("empty scenario log")
	}
	if !bytes.Equal(logA, logB) {
		t.Fatalf("diurnal scenario logs differ across identically seeded runs:\n%s\nvs\n%s", logA, logB)
	}
	for i := range globalA {
		if globalA[i] != globalB[i] {
			t.Fatalf("global models diverge at param %d", i)
		}
	}
	// The wave plus battery depletion must actually bite: some round runs
	// with reduced availability.
	if !bytes.Contains(logA, []byte(`"offline"`)) {
		t.Fatalf("diurnal scenario never took a client offline:\n%s", logA)
	}
	if !bytes.Contains(logA, []byte(`"outages":["east"]`)) {
		t.Fatalf("regional outage never surfaced:\n%s", logA)
	}
	if !bytes.Contains(logA, []byte(`"depleted"`)) {
		t.Fatalf("no battery depletion in diurnal scenario:\n%s", logA)
	}
}

func TestGoldenReplayRegionalOutage(t *testing.T) {
	const path = "../../examples/scenarios/regional-outage.json"
	logA, _ := runScenarioSession(t, path, 6, 8)
	logB, _ := runScenarioSession(t, path, 6, 8)
	if !bytes.Equal(logA, logB) {
		t.Fatalf("regional-outage scenario logs differ across identically seeded runs:\n%s\nvs\n%s", logA, logB)
	}
	if !bytes.Contains(logA, []byte(`"outages":["north"]`)) {
		t.Fatalf("north outage never surfaced:\n%s", logA)
	}
}

// TestGoldenReplayResumeMidScenario pins the resume contract at the
// engine level: a fleet snapshotted mid-scenario and restored into a
// fresh process must produce the identical post-resume schedule as an
// uninterrupted fleet — byte for byte, including battery integration
// across the gap.
func TestGoldenReplayResumeMidScenario(t *testing.T) {
	sc, err := Load("../../examples/scenarios/diurnal.json")
	if err != nil {
		t.Fatal(err)
	}
	const n, split, rounds = 8, 4, 12
	account := func(f *Fleet, r int) {
		f.BeginRound(r)
		for i := 0; i < n; i++ {
			if f.Available(i) {
				f.Account(i, f.TrainSeconds(i), 4000)
			}
		}
	}

	// Uninterrupted run.
	full, _ := NewFleet(sc, n)
	full.SetRoundWork(2e6, 16)
	var wantLog bytes.Buffer
	for r := 0; r < rounds; r++ {
		account(full, r)
		if r >= split {
			full.EmitRound(&wantLog, r)
		}
	}

	// Killed-and-resumed run: snapshot after round split-1, restore into
	// a fresh fleet, continue.
	first, _ := NewFleet(sc, n)
	first.SetRoundWork(2e6, 16)
	for r := 0; r < split; r++ {
		account(first, r)
	}
	resumed, _ := NewFleet(sc, n)
	resumed.SetRoundWork(2e6, 16)
	if err := resumed.Restore(first.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var gotLog bytes.Buffer
	for r := split; r < rounds; r++ {
		account(resumed, r)
		resumed.EmitRound(&gotLog, r)
	}

	if !bytes.Equal(wantLog.Bytes(), gotLog.Bytes()) {
		t.Fatalf("post-resume schedule diverges from uninterrupted run:\nuninterrupted:\n%s\nresumed:\n%s",
			wantLog.String(), gotLog.String())
	}
}
