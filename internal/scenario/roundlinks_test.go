package scenario

import (
	"testing"

	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// TestRoundLinksFollowRoundClock pins the clock contract introduced with
// codec negotiation: the scenario's bandwidth trace modulates the netsim
// links on the *round* clock (round x round_seconds) — the same pure
// function the server-side negotiator evaluates through LinkBandwidth —
// not on the engine's simulated-transfer clock, which advances orders of
// magnitude slower and would leave the trace stuck on its first plateau.
func TestRoundLinksFollowRoundClock(t *testing.T) {
	sc, err := Load("../../examples/scenarios/fluctuating.json")
	if err != nil {
		t.Fatal(err)
	}
	const clients = 6
	fleet, err := NewFleet(sc, clients)
	if err != nil {
		t.Fatal(err)
	}

	const seed = 19
	ds := dataset.SynthMNIST(200, 12, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionIID(train, clients, seed+2)
	net := netsim.UniformNetwork(clients, netsim.LTELink, seed+3)
	base := make([]netsim.Link, clients)
	for i := range base {
		base[i] = net.Link(i)
	}
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 12, 12}, []int{8}, 10, stats.NewRNG(seed+4))
	}
	cfg := fl.TrainConfig{LocalSteps: 1, BatchSize: 8, LR: 0.1}
	fed := fl.NewFederation(parts, test, net, newModel, cfg, seed+5)

	fleet.ConfigureFederation(fed)
	// The engine-time trace must not be attached: the round-clock
	// re-application below would compound with it.
	for i := 0; i < clients; i++ {
		if fed.Net.Link(i).Trace != nil {
			t.Fatalf("client %d link still carries the engine-time trace", i)
		}
	}

	planner := &Planner{Fleet: fleet, Inner: fl.NewFixedRatePlanner(1, 1, seed+7)}
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, planner, seed+6)
	// fluctuating.json: rounds 0-2 sit on the 1.0x plateau, rounds 3-6 on
	// the 0.15x collapse (round_seconds=60, trace step at 180s).
	for round, wantMult := range map[int]float64{0: 1.0, 1: 1.0, 4: 0.15} {
		planner.Plan(round, e)
		for i := 0; i < clients; i++ {
			wantUp, wantDown := fleet.LinkBandwidth(i, round, base[i].UpBps, base[i].DownBps)
			got := fed.Net.Link(i)
			if got.UpBps != wantUp || got.DownBps != wantDown {
				t.Fatalf("round %d client %d: link %.0f/%.0f, want %.0f/%.0f",
					round, i, got.UpBps, got.DownBps, wantUp, wantDown)
			}
			classMult := sc.Classes[fleet.class[i]].BandwidthMult
			if want := base[i].UpBps * classMult * wantMult; got.UpBps != want {
				t.Fatalf("round %d client %d: UpBps %.0f, want base x class x trace = %.0f",
					round, i, got.UpBps, want)
			}
		}
	}
	// The collapse must actually lengthen simulated transfers: the same
	// payload takes 1/0.15 the bandwidth-limited time it takes on the
	// plateau.
	planner.Plan(0, e)
	plateau := fed.Net.Link(0)
	planner.Plan(4, e)
	collapsed := fed.Net.Link(0)
	if collapsed.UpBps >= plateau.UpBps {
		t.Fatalf("collapse round uplink %.0f not below plateau %.0f", collapsed.UpBps, plateau.UpBps)
	}
}
