// Package shard implements sharded hierarchical streaming aggregation:
// a configurable tree in which client updates stream into S in-process
// shard workers that fold each sparse update into a running partial
// aggregate the moment it arrives, and a root reducer merges the S
// partials with exact weight renormalisation at the round barrier.
//
// The buffered server aggregation holds every update of a round in
// memory and applies them once at the barrier — O(clients) memory and
// one goroutine of CPU. The tree replaces that with S dense partials
// (constant memory per shard: a running weighted-sum vector plus a
// weight scalar, and SCAFFOLD control partials where foldable) and S
// cores of fold throughput, which is what lets one server absorb
// 10k-client fleets (see cmd/flfleet and BENCH_5.json).
//
// Determinism contract: routing is client-id mod S, each worker folds
// its queue in FIFO order, and the root merges partials in ascending
// shard order. For a fixed shard count and a fixed per-shard arrival
// order the result is therefore bit-for-bit reproducible; with S=1 it
// is bitwise identical to the buffered two-phase FedAvg. Changing S (or
// interleaving arrivals differently across clients of the same shard)
// reassociates floating-point sums and changes results only within the
// usual accumulation tolerance. See DESIGN.md §Sharded aggregation.
//
// Integrity runs inside the shards: each update is structurally
// validated exactly once at fold time, scrubbed of non-finite values,
// and judged by a causal median-relative norm gate; rejects surface as
// QuarantineRecords at the barrier so the caller can evict the sender.
//
// Backpressure is per shard: each worker owns a bounded channel, and an
// Ingest into a full queue blocks the ingesting (per-client) goroutine
// — slow shards throttle their own clients instead of buffering without
// bound. Blocked enqueues are counted in adafl_shard_backpressure_total.
package shard

import (
	"fmt"
	"time"

	"adafl/internal/obs"
)

// DefaultQueueDepth bounds each shard's ingest queue when the caller
// does not configure one.
const DefaultQueueDepth = 128

// Config configures a Tree.
type Config struct {
	// Shards is S, the number of fold workers (≥ 1).
	Shards int
	// Dim is the model dimension every update must validate against.
	Dim int
	// QueueDepth is the per-shard ingest queue bound; 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// Unweighted folds every update with scale 1 (SCAFFOLD) instead of
	// its Weight (FedAvg/FedAdam).
	Unweighted bool
	// MaxNormMult enables the causal norm gate: an update whose L2 norm
	// exceeds MaxNormMult times the median of the norms its shard has
	// already accepted this round is quarantined. 0 disables the gate.
	MaxNormMult float64
	// Metrics, when non-nil, receives the shard-labelled instrument set
	// (queue depth, fold latency, received/evicted counts, backpressure).
	// Nil disables metrics at zero cost.
	Metrics *obs.Registry
	// Logf receives scrub notices; nil discards them.
	Logf Logf
}

// Tree is an S-shard streaming aggregation tree. Ingest may be called
// from many goroutines concurrently; Finish, Snapshot, Restore and
// Close require that no Ingest is in flight (the engines call them at
// the round barrier, after every collector has reported).
type Tree struct {
	cfg     Config
	workers []*worker
	met     treeMetrics
	closed  bool

	// testFoldDelay stalls every fold; tests use it to force a full
	// queue and observe backpressure deterministically.
	testFoldDelay time.Duration
}

// NewTree validates cfg, starts the S workers and returns the tree.
// Callers must Close it to reclaim the worker goroutines.
func NewTree(cfg Config) *Tree {
	if cfg.Shards < 1 {
		panic("shard: need at least one shard")
	}
	if cfg.Dim <= 0 {
		panic("shard: need a positive model dimension")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Logf == nil {
		cfg.Logf = quiet
	}
	t := &Tree{cfg: cfg, met: newTreeMetrics(cfg.Metrics)}
	for i := 0; i < cfg.Shards; i++ {
		w := &worker{
			id:   i,
			ch:   make(chan message, cfg.QueueDepth),
			done: make(chan struct{}),
			part: NewPartial(cfg.Dim),
			gate: onlineGate{mult: cfg.MaxNormMult},
			met:  newShardMetrics(cfg.Metrics, i),
		}
		t.workers = append(t.workers, w)
		go w.run(t)
	}
	return t
}

// NumShards returns S.
func (t *Tree) NumShards() int { return len(t.workers) }

// Route returns the shard index an update from the given client folds
// into. The mapping (client mod S, shifted into range for negative ids)
// is part of the determinism contract: a fixed fleet always shards the
// same way.
func (t *Tree) Route(client int) int {
	s := len(t.workers)
	return ((client % s) + s) % s
}

type ctlOp int

const (
	opFold     ctlOp = iota
	opFinish         // drain, report, reset for the next round
	opSnapshot       // drain, report a deep copy, keep state
	opRestore        // replace partial + gate state
)

type message struct {
	op    ctlOp
	round int
	upd   Update
	state *ShardState       // opRestore
	reply chan workerReport // opFinish/opSnapshot
}

type workerReport struct {
	part  *Partial
	norms []float64
	quars []QuarantineRecord
}

// Ingest routes one update to its shard, blocking when that shard's
// queue is full (counted as backpressure). round tags any quarantine
// record the update may produce.
func (t *Tree) Ingest(round int, u Update) {
	w := t.workers[t.Route(u.Client)]
	m := message{op: opFold, round: round, upd: u}
	select {
	case w.ch <- m:
	default:
		t.met.backpressure.Inc()
		w.ch <- m
	}
	w.met.queueDepth.Set(float64(len(w.ch)))
}

// Finish is the round barrier: it waits for every queued update to
// fold, merges the S partials in ascending shard order, collects the
// round's quarantine records (ordered by shard, then fold order) and
// resets every worker for the next round. The returned Partial is owned
// by the caller.
func (t *Tree) Finish() (*Partial, []QuarantineRecord) {
	reports := t.collect(opFinish)
	start := time.Now()
	root := NewPartial(t.cfg.Dim)
	var quars []QuarantineRecord
	for _, rep := range reports {
		root.Merge(rep.part)
		quars = append(quars, rep.quars...)
	}
	t.met.mergeSec.Observe(time.Since(start).Seconds())
	return root, quars
}

// Snapshot captures the mid-tree state — every shard's partial and norm
// gate — without disturbing the round in progress, so a checkpoint can
// restore partially-folded rounds. Quarantine records are not part of
// the snapshot; they are reported (once) at Finish.
func (t *Tree) Snapshot() *TreeState {
	reports := t.collect(opSnapshot)
	st := &TreeState{Shards: len(t.workers), Dim: t.cfg.Dim}
	for _, rep := range reports {
		st.Partials = append(st.Partials, ShardState{
			Sum:       rep.part.Sum,
			WeightSum: rep.part.WeightSum,
			Count:     rep.part.Count,
			CtrlSum:   rep.part.CtrlSum,
			CtrlCount: rep.part.CtrlCount,
			Norms:     rep.norms,
		})
	}
	return st
}

// Restore replaces the tree's mid-round state with a snapshot taken by
// a tree of the same geometry (shard count and dimension).
func (t *Tree) Restore(st *TreeState) error {
	if st == nil {
		return nil
	}
	if st.Shards != len(t.workers) {
		return fmt.Errorf("shard: snapshot has %d shards, tree has %d (restart with the same -shards)",
			st.Shards, len(t.workers))
	}
	if st.Dim != t.cfg.Dim {
		return fmt.Errorf("shard: snapshot dimension %d, tree dimension %d", st.Dim, t.cfg.Dim)
	}
	if len(st.Partials) != st.Shards {
		return fmt.Errorf("shard: snapshot carries %d partials for %d shards", len(st.Partials), st.Shards)
	}
	for i, w := range t.workers {
		s := st.Partials[i]
		if len(s.Sum) != t.cfg.Dim || (s.CtrlSum != nil && len(s.CtrlSum) != t.cfg.Dim) {
			return fmt.Errorf("shard: snapshot partial %d has inconsistent vector lengths", i)
		}
		sc := s // per-worker copy
		w.ch <- message{op: opRestore, state: &sc}
	}
	return nil
}

// collect sends op to every worker and gathers the reports in shard
// order. The per-worker FIFO guarantees all previously queued folds
// complete first.
func (t *Tree) collect(op ctlOp) []workerReport {
	replies := make([]chan workerReport, len(t.workers))
	for i, w := range t.workers {
		replies[i] = make(chan workerReport, 1)
		w.ch <- message{op: op, reply: replies[i]}
	}
	out := make([]workerReport, len(t.workers))
	for i, ch := range replies {
		out[i] = <-ch
	}
	return out
}

// Close drains the workers and reclaims their goroutines. The tree must
// not be used afterwards. Close is idempotent.
func (t *Tree) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, w := range t.workers {
		close(w.ch)
	}
	for _, w := range t.workers {
		<-w.done
	}
}

// TreeState is the gob-serialisable snapshot of a tree's mid-round
// state; it joins the session checkpoint so -resume restores mid-tree
// partials.
type TreeState struct {
	Shards   int
	Dim      int
	Partials []ShardState
}

// ShardState is one shard's snapshot: its partial aggregate plus the
// accepted-norm history backing the causal norm gate.
type ShardState struct {
	Sum       []float64
	WeightSum float64
	Count     int
	CtrlSum   []float64
	CtrlCount int
	Norms     []float64
}

// worker owns one shard: a bounded FIFO queue and the state folded from
// it. All fields below ch/done are touched only by the worker goroutine.
type worker struct {
	id   int
	ch   chan message
	done chan struct{}

	part  *Partial
	gate  onlineGate
	quars []QuarantineRecord
	met   shardMetrics
}

func (w *worker) run(t *Tree) {
	defer close(w.done)
	timed := w.met.foldSec != nil
	for m := range w.ch {
		switch m.op {
		case opFold:
			if t.testFoldDelay > 0 {
				time.Sleep(t.testFoldDelay)
			}
			if timed {
				start := time.Now()
				w.fold(m.round, m.upd, &t.cfg)
				w.met.foldSec.Observe(time.Since(start).Seconds())
			} else {
				w.fold(m.round, m.upd, &t.cfg)
			}
			w.met.queueDepth.Set(float64(len(w.ch)))
		case opFinish:
			m.reply <- workerReport{part: w.part, quars: w.quars}
			w.part = NewPartial(t.cfg.Dim)
			w.gate.reset()
			w.quars = nil
			// The barrier guarantees no folds are in flight; reset the
			// depth gauge so a control message is not read as backlog.
			w.met.queueDepth.Set(0)
		case opSnapshot:
			m.reply <- workerReport{
				part:  w.part.Clone(),
				norms: append([]float64(nil), w.gate.norms...),
			}
		case opRestore:
			s := m.state
			w.part = &Partial{Dim: t.cfg.Dim,
				Sum:       append([]float64(nil), s.Sum...),
				WeightSum: s.WeightSum, Count: s.Count, CtrlCount: s.CtrlCount}
			if s.CtrlSum != nil {
				w.part.CtrlSum = append([]float64(nil), s.CtrlSum...)
			}
			w.gate.norms = append(w.gate.norms[:0], s.Norms...)
			w.quars = nil
		}
	}
}

// fold runs the streaming integrity screen and folds survivors. Each
// update is validated exactly once, here.
func (w *worker) fold(round int, u Update, cfg *Config) {
	w.met.received.Inc()
	if err := u.Delta.Validate(cfg.Dim); err != nil {
		w.reject(round, u.Client, err.Error(), 0)
		return
	}
	if n := u.Delta.Scrub(); n > 0 {
		if n == u.Delta.NNZ() {
			w.reject(round, u.Client, fmt.Sprintf("update entirely non-finite (%d values)", n), 0)
			return
		}
		cfg.Logf("shard %d: round %d: scrubbed %d non-finite values from client %d",
			w.id, round+1, n, u.Client)
	}
	if cfg.MaxNormMult > 0 {
		norm := u.Delta.Norm2()
		if ok, med := w.gate.admit(norm); !ok {
			w.reject(round, u.Client,
				fmt.Sprintf("L2 norm %.4g exceeds %.4g (%.3g x shard median %.4g)",
					norm, cfg.MaxNormMult*med, cfg.MaxNormMult, med), norm)
			return
		}
	}
	w.part.Fold(u, cfg.Unweighted)
}

func (w *worker) reject(round, client int, reason string, norm float64) {
	w.met.evicted.Inc()
	w.quars = append(w.quars, QuarantineRecord{Round: round, ClientID: client, Reason: reason, Norm: norm})
}
