package shard

import (
	"math"
	"testing"

	"adafl/internal/compress"
)

// FuzzShardMerge drives the streaming tree with adversarially generated
// update batches — random shard counts, random weights, sparse indices
// including duplicates and out-of-range ones — and cross-checks the
// merged root partial against the buffered reference fold over the same
// surviving updates. The invariants under fuzz:
//
//   - the tree never panics or deadlocks on malformed input;
//   - every update is either folded or quarantined, never both, never
//     neither;
//   - the merged sums match the reference within reassociation
//     tolerance, and the weight sums match exactly as a sum of the
//     kept updates' weights per shard.
func FuzzShardMerge(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(4), uint8(8))
	f.Add(uint64(7), uint8(3), uint8(20), uint8(16))
	f.Add(uint64(42), uint8(8), uint8(50), uint8(3))
	// Edge-partial shaped batches: the two-tier root folds per-edge
	// partials whose client batches can carry duplicate IDs (a client
	// replayed after a reroute) and single-shard topologies (one edge).
	f.Add(uint64(1337), uint8(1), uint8(63), uint8(40))
	f.Add(uint64(2026), uint8(5), uint8(48), uint8(24))
	f.Fuzz(func(t *testing.T, seed uint64, shards, nups, dim8 uint8) {
		s := int(shards)%8 + 1
		n := int(nups) % 64
		dim := int(dim8)%48 + 2
		rng := newFuzzRNG(seed)

		ups := make([]Update, n)
		for c := range ups {
			nnz := int(rng.next() % uint64(dim+2)) // can exceed dim → invalid
			idx := make([]int32, nnz)
			vals := make([]float64, nnz)
			for i := range idx {
				// ~1/16 of indices land out of range, duplicates allowed.
				idx[i] = int32(rng.next() % uint64(dim+dim/16+1))
				switch rng.next() % 16 {
				case 0:
					vals[i] = math.NaN()
				case 1:
					vals[i] = math.Inf(1)
				default:
					vals[i] = float64(int64(rng.next()%2000)-1000) / 100
				}
			}
			d := dim
			if rng.next()%16 == 0 {
				d++ // declared-dim mismatch → invalid
			}
			ups[c] = Update{
				Client: c,
				Weight: float64(rng.next()%100) / 10,
				Delta:  &compress.Sparse{Dim: d, Indices: idx, Values: vals},
			}
		}
		// ~1/4 of updates duplicate the previous entry's client ID and
		// delta content (fresh slices: Scrub mutates in place), modelling
		// a rerouted client whose round replayed through a second edge.
		// The tree must fold every instance, never dedup; identical
		// content keeps validity uniform per ID so the quarantine-set
		// reconstruction below stays sound.
		for c := 1; c < n; c++ {
			if rng.next()%4 != 0 {
				continue
			}
			prev := ups[c-1]
			ups[c] = Update{
				Client: prev.Client,
				Weight: float64(rng.next()%100) / 10,
				Delta: &compress.Sparse{Dim: prev.Delta.Dim,
					Indices: append([]int32(nil), prev.Delta.Indices...),
					Values:  append([]float64(nil), prev.Delta.Values...)},
			}
		}

		tree := NewTree(Config{Shards: s, Dim: dim})
		defer tree.Close()
		for _, u := range ups {
			tree.Ingest(0, u)
		}
		got, quars := tree.Finish()

		if got.Count+len(quars) != n {
			t.Fatalf("folded %d + quarantined %d != %d ingested", got.Count, len(quars), n)
		}

		// Rebuild the survivor set and fold it with the buffered
		// reference, per shard then merged in shard order, to mirror the
		// tree's summation topology exactly. Scrub already zeroed the
		// tree's copies in place, so the reference sees identical values.
		quarantinedSet := map[int]bool{}
		for _, q := range quars {
			quarantinedSet[q.ClientID] = true
		}
		perShard := make([]*Partial, s)
		for i := range perShard {
			perShard[i] = NewPartial(dim)
		}
		for _, u := range ups {
			if quarantinedSet[u.Client] {
				continue
			}
			perShard[tree.Route(u.Client)].Fold(u, false)
		}
		want := NewPartial(dim)
		for _, p := range perShard {
			want.Merge(p)
		}

		if got.Count != want.Count {
			t.Fatalf("count %d vs reference %d", got.Count, want.Count)
		}
		if got.WeightSum != want.WeightSum {
			t.Fatalf("weight sum %v vs reference %v", got.WeightSum, want.WeightSum)
		}
		for i := range want.Sum {
			if d := math.Abs(got.Sum[i] - want.Sum[i]); d > 1e-9*(1+math.Abs(want.Sum[i])) {
				t.Fatalf("Sum[%d]: %v vs reference %v", i, got.Sum[i], want.Sum[i])
			}
		}
	})
}

// newFuzzRNG is a tiny splitmix64 so the fuzz body derives all its
// randomness from the fuzzer-controlled seed (test code must not call
// math/rand's global source under -fuzz).
type fuzzRNG struct{ s uint64 }

func newFuzzRNG(seed uint64) *fuzzRNG { return &fuzzRNG{s: seed} }

func (r *fuzzRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
